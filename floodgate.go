// Package floodgate is a from-scratch reproduction of "Floodgate:
// Taming Incast in Datacenter Networks" (Liu et al., CoNEXT 2021): a
// switch-based per-hop, per-destination flow control evaluated on a
// packet-level event-driven datacenter simulator, together with the
// congestion-control protocols it is carried on (DCQCN, DCTCP, TIMELY,
// HPCC, Swift) and the flow-control baselines the paper compares
// against (BFC, NDP, PFC-with-tag).
//
// Three levels of API:
//
//   - Experiments: RunExperiment replays any table or figure of the
//     paper's evaluation and returns the same rows/series.
//
//   - Scenarios: Run executes one simulation assembled from a
//     topology, a Scheme (congestion control × flow control) and a
//     workload; schemes and workloads are composable.
//
//   - Devices: NewNetwork exposes the raw simulator (switches, hosts,
//     flows) for custom studies.
//
// Everything is deterministic given (configuration, seed).
package floodgate

import (
	"floodgate/internal/app"
	"floodgate/internal/core"
	"floodgate/internal/device"
	"floodgate/internal/exp"
	"floodgate/internal/fault"
	"floodgate/internal/metrics"
	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/trace"
	"floodgate/internal/units"
	"floodgate/internal/workload"
)

// NodeID identifies a host or switch; FlowID one transfer.
type (
	NodeID = packet.NodeID
	FlowID = packet.FlowID
)

// ---- Units ----

// Core quantities (picosecond time, bits per second, bytes).
type (
	Time     = units.Time
	Duration = units.Duration
	BitRate  = units.BitRate
	ByteSize = units.ByteSize
)

// Common constants re-exported for configuration literals.
const (
	Nanosecond  = units.Nanosecond
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second
	Kbps        = units.Kbps
	Mbps        = units.Mbps
	Gbps        = units.Gbps
	KB          = units.KB
	MB          = units.MB
)

// ---- Experiments (the paper's evaluation) ----

// Options scales experiments between smoke test and paper scale (see
// DESIGN.md §"slow-motion scaling") and sets the run-level parallelism
// (Options.Parallelism: 0 = all cores, 1 = serial; output is
// bit-identical at every setting).
type Options = exp.Options

// Table is one rendered experiment result.
type Table = exp.Table

// Experiment is a registered paper figure/table reproduction.
type Experiment = exp.Experiment

// Experiments lists every reproducible figure and table in paper order.
func Experiments() []Experiment { return exp.List() }

// RunExperiment reproduces one figure/table by id (e.g. "fig10",
// "table2"); see Experiments for the catalogue. Independent
// simulations within the experiment run across a worker pool sized by
// Options.Parallelism.
func RunExperiment(id string, o Options) ([]Table, error) {
	return exp.RunByID(id, o)
}

// RunExperiments executes several experiments, overlapping all their
// simulations through one shared worker pool, and emits each
// experiment's tables strictly in the order given. With
// Options.Parallelism = 1 experiments run back to back, serially.
func RunExperiments(ids []string, o Options, emit func(id string, tables []Table, err error)) {
	exp.RunExperiments(ids, o, emit)
}

// ---- Scenarios ----

// Scheme is a transport/flow-control combination.
type Scheme = exp.Scheme

// Scheme constructors (the paper's §6 comparisons plus the §8/§2.3
// extensions DCTCP and Swift).
var (
	DCQCN  = exp.DCQCN
	DCTCP  = exp.DCTCP
	TIMELY = exp.TIMELY
	HPCC   = exp.HPCC
	SWIFT  = exp.SWIFT
	NDP    = exp.NDP
	BFC    = exp.BFC
)

// WithFloodgate layers the practical Floodgate design over a scheme.
func WithFloodgate(o Options, s Scheme, baseBDP ByteSize) Scheme {
	return exp.WithFloodgate(o, s, baseBDP)
}

// WithIdeal layers the strawman (ideal) Floodgate design over a scheme.
func WithIdeal(o Options, s Scheme, baseBDP ByteSize) Scheme {
	return exp.WithIdeal(o, s, baseBDP)
}

// WithPFCTag layers the reactive PFC-with-tag derivative over a scheme.
func WithPFCTag(s Scheme, oneHopBDP ByteSize) Scheme { return exp.WithPFCTag(s, oneHopBDP) }

// FloodgateConfig is the switch-module configuration (§4 parameters).
type FloodgateConfig = core.Config

// Floodgate design modes.
const (
	Practical = core.Practical
	Ideal     = core.Ideal
)

// DefaultFloodgateConfig returns the paper's §6 binding.
func DefaultFloodgateConfig(baseBDP ByteSize) FloodgateConfig { return core.DefaultConfig(baseBDP) }

// IdealFloodgateConfig returns the strawman binding.
func IdealFloodgateConfig(baseBDP ByteSize) FloodgateConfig { return core.IdealConfig(baseBDP) }

// WithFloodgateConfig layers an explicit Floodgate configuration.
func WithFloodgateConfig(s Scheme, cfg FloodgateConfig, suffix string) Scheme {
	return exp.WithFloodgateCfg(s, cfg, suffix)
}

// RunConfig assembles one simulation run; RunResult carries its
// statistics collector.
type (
	RunConfig = exp.RunConfig
	RunResult = exp.RunResult
)

// Run executes one simulation run to completion (workload window plus
// drain) and returns the collected statistics.
func Run(rc RunConfig) *RunResult { return exp.Run(rc) }

// RunMany executes independent simulation runs across a worker pool
// sized by the first config's Options.Parallelism (0 = all cores) and
// returns results by submission index. Results are bit-identical to
// calling Run in a loop; see DESIGN.md §"Parallel execution".
func RunMany(rcs []RunConfig) []*RunResult { return exp.RunMany(rcs) }

// ---- Faults ----

// FaultPlan schedules deterministic link/switch failures for a run
// (RunConfig.Faults or Network.InstallFaults): timed link-down/up and
// switch-restart events plus optional Gilbert–Elliott burst loss.
// Same plan + same seed = bit-identical runs at any parallelism.
type (
	FaultPlan      = fault.Plan
	FaultEvent     = fault.Event
	FaultLink      = fault.Link
	FaultKind      = fault.Kind
	GilbertElliott = fault.GilbertElliott
)

// Fault event kinds.
const (
	FaultLinkDown      = fault.LinkDown
	FaultLinkUp        = fault.LinkUp
	FaultSwitchRestart = fault.SwitchRestart
)

// FaultFlap builds the event sequence for a repeatedly flapping link;
// BurstWithMeanLoss builds a bursty loss chain with a given mean rate.
var (
	FaultFlap         = fault.Flap
	BurstWithMeanLoss = fault.BurstWithMeanLoss
)

// FaultStats summarizes a run's fault-plane activity
// (Network.FaultStats); StallDiagnosis explains a tripped progress
// watchdog (RunResult.Diagnosis); RunError is the structured panic the
// executor recovers at the run boundary.
type (
	FaultStats     = device.FaultStats
	StallDiagnosis = exp.StallDiagnosis
	RunError       = exp.RunError
)

// FaultScenarioNames lists the named fault scenarios of the
// "faultmatrix" experiment (floodsim -faults).
var FaultScenarioNames = exp.FaultScenarioNames

// RunFaultScenario runs one named fault scenario against DCQCN and
// DCQCN+Floodgate and returns the resulting matrix rows.
func RunFaultScenario(name string, o Options) ([]Table, error) {
	return exp.RunFaultScenario(name, o)
}

// RecoveredPanics reports how many experiment runs panicked and were
// isolated into errors by the parallel executor.
var RecoveredPanics = exp.RecoveredPanics

// ---- Topologies ----

// Topology is an immutable fabric with routing; Port classes follow
// the paper's reporting buckets (ToR-Up, Core, ToR-Down, ...).
type (
	Topology        = topo.Topology
	LeafSpineConfig = topo.LeafSpineConfig
	FatTreeConfig   = topo.FatTreeConfig
	TestbedConfig   = topo.TestbedConfig
	ClosConfig      = topo.ClosConfig
	PortClass       = topo.PortClass
)

// Paper topologies, plus the large-fabric presets the structural
// router makes affordable (FatTree16/32, the multi-pod Clos family).
var (
	DefaultLeafSpine = topo.DefaultLeafSpine
	DefaultFatTree   = topo.DefaultFatTree
	DefaultTestbed   = topo.DefaultTestbed
	DefaultClos      = topo.DefaultClos
	Clos100k         = topo.Clos100k
	FatTree16        = topo.FatTree16
	FatTree32        = topo.FatTree32
)

// TopoPresets lists the -topo preset names with one-line descriptions,
// in menu order (floodsim -topo list; only scaleincast reads
// Options.Topo).
var TopoPresets = exp.TopoPresets

// Port classes for per-hop statistics.
const (
	ClassToRUp   = topo.ClassToRUp
	ClassToRDown = topo.ClassToRDown
	ClassCore    = topo.ClassCore
	ClassAggUp   = topo.ClassAggUp
	ClassAggDown = topo.ClassAggDown
)

// ---- Workloads ----

// CDF is a flow-size distribution; FlowSpec one pre-generated arrival.
type (
	CDF           = workload.CDF
	FlowSpec      = workload.FlowSpec
	PoissonConfig = workload.PoissonConfig
	IncastConfig  = workload.IncastConfig
)

// The paper's four Fig 7 workloads.
var (
	Memcached = workload.Memcached
	WebServer = workload.WebServer
	Hadoop    = workload.Hadoop
	WebSearch = workload.WebSearch
	Workloads = workload.Workloads
)

// Workload generators.
var (
	Poisson          = workload.Poisson
	Incast           = workload.Incast
	SuccessiveIncast = workload.SuccessiveIncast
	MergeSpecs       = workload.Merge
	CrossRackSenders = workload.CrossRackSenders
)

// Flow files: stream FlowSpecs from NDJSON (one integer-valued JSON
// object per line, sorted by start_ps) instead of materializing them;
// WriteFlowSpecs freezes a generated workload to the same format
// byte-stably. Wire a reader into a run via RunConfig.Source.
type (
	SpecSource = workload.SpecSource
	SpecReader = workload.SpecReader
)

var (
	OpenSpecFile   = workload.OpenSpecFile
	NewSpecReader  = workload.NewSpecReader
	WriteFlowSpecs = workload.WriteSpecs
)

// RunFlowFile replays an NDJSON flow file against DCQCN and
// DCQCN+Floodgate and reports per-scheme FCT and goodput
// (floodsim -flows-from).
func RunFlowFile(path string, o Options) ([]Table, error) { return exp.RunFlowFile(path, o) }

// ---- Application plane (closed loop) ----

// The app plane (RunConfig.App) issues partition-aggregate requests
// with deadlines over the simulated fabric: timeouts retry under a
// pluggable policy, hedges race slow attempts, budgets and circuit
// breakers bound the retry storm, and RunResult.SLO scores what the
// application saw. The "sloincast" experiment is its standard harness.
type (
	AppConfig   = app.Config
	AppBreaker  = app.Breaker
	RetryPolicy = app.RetryPolicy
	FixedRetry  = app.FixedRetry
	ExpBackoff  = app.ExpBackoff
	Hedged      = app.Hedged
	AppRecord   = app.Record
	SLO         = app.SLO
)

// NewRand returns the deterministic random source used throughout.
func NewRand(seed uint64) *sim.Rand { return sim.NewRand(seed) }

// ---- Raw devices ----

// NetworkConfig configures the raw simulator; Network is the wired
// fabric; Flow one transfer.
type (
	NetworkConfig = device.Config
	Network       = device.Network
	Flow          = device.Flow
)

// NewNetwork wires a network from the config (Topo and Engine are
// required; see device.Config).
func NewNetwork(cfg NetworkConfig) *Network { return device.New(cfg) }

// NewEngine returns a fresh event engine.
func NewEngine() *sim.Engine { return sim.NewEngine() }

// Scheduler selects the engine's event-queue implementation
// (Options.Scheduler). The default SchedWheel is a hierarchical timing
// wheel; SchedHeap is the plain binary-heap baseline. Both execute
// events in the identical order, so outputs never depend on the choice.
type Scheduler = sim.Scheduler

const (
	SchedWheel = sim.SchedWheel
	SchedHeap  = sim.SchedHeap
)

// NewEngineWith returns a fresh event engine on a specific scheduler.
func NewEngineWith(s Scheduler) *sim.Engine { return sim.NewEngineWith(s) }

// NewFloodgate returns the per-switch Floodgate module factory for use
// in a NetworkConfig.
func NewFloodgate(cfg FloodgateConfig) device.FCFactory { return core.New(cfg) }

// ---- Statistics ----

// Collector accumulates a run's measurements; Category tags flows for
// the victim analysis.
type (
	Collector = stats.Collector
	Category  = stats.Category
	FCTSample = stats.FCTSample
)

// Flow categories.
const (
	CatIncast       = stats.CatIncast
	CatVictimIncast = stats.CatVictimIncast
	CatVictimPFC    = stats.CatVictimPFC
)

// NewCollector returns a collector with the given time-series bin.
func NewCollector(bin Duration) *Collector { return stats.NewCollector(bin) }

// FCTStats reduces samples to (average, p99).
var FCTStats = stats.FCTStats

// ---- Tracing ----

// TraceBuffer is the simulator's flight recorder; TraceFilter selects
// what it retains; TraceEvent is one lifecycle point.
type (
	TraceBuffer = trace.Buffer
	TraceFilter = trace.Filter
	TraceEvent  = trace.Event
	TraceOp     = trace.Op
)

// Trace lifecycle points.
const (
	TraceSend    = trace.OpSend
	TraceEnqueue = trace.OpEnqueue
	TracePark    = trace.OpPark
	TraceTx      = trace.OpTx
	TraceDeliver = trace.OpDeliver
	TraceDrop    = trace.OpDrop
	TraceCredit  = trace.OpCredit
	TracePause   = trace.OpPause
	TraceResume  = trace.OpResume
	TraceRetx    = trace.OpRetx
	TraceRTO     = trace.OpRTO
)

// NewTraceBuffer returns a ring retaining the newest `capacity`
// matching events; attach it via NetworkConfig.Trace or RunConfig via
// the raw API.
func NewTraceBuffer(capacity int, f TraceFilter) *TraceBuffer { return trace.NewBuffer(capacity, f) }

// ---- Observability ----

// ObsConfig (Options.Obs / NewNetwork + MetricsRegistry) switches on
// per-run metrics sampling and timeline export: NDJSON/CSV time series
// of engine, device and Floodgate instruments plus a Chrome
// trace_event JSON that loads in Perfetto. Enabling it never changes a
// run's tables, and output files are byte-identical at any
// Options.Parallelism (see DESIGN.md §8).
type ObsConfig = exp.ObsConfig

// Metrics instruments for custom studies over the raw device API:
// register on a MetricsRegistry, attach the bundle via
// NetworkConfig.Metrics, sample with MetricsSampler.
type (
	MetricsRegistry  = metrics.Registry
	MetricsSampler   = metrics.Sampler
	MetricsCounter   = metrics.Counter
	MetricsGauge     = metrics.Gauge
	MetricsHistogram = metrics.Histogram
	NetMetrics       = device.NetMetrics
	ObsManifest      = metrics.Manifest
)

// NewMetricsRegistry returns an empty instrument registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewNetMetrics registers the device/Floodgate instrument bundle.
func NewNetMetrics(r *MetricsRegistry) NetMetrics { return device.NewNetMetrics(r) }

// NewMetricsSampler snapshots every registered instrument on a fixed
// simulation-clock period; call Start after registration is complete.
func NewMetricsSampler(eng *sim.Engine, r *MetricsRegistry, period Duration) *MetricsSampler {
	return metrics.NewSampler(eng, r, period)
}

// WriteChromeTrace renders trace events in Chrome trace_event JSON
// (open in Perfetto or chrome://tracing).
var WriteChromeTrace = metrics.WriteChromeTrace

// WriteObsManifest writes an experiment's observability manifest
// (run parameters + table content hash) and returns its path.
var WriteObsManifest = exp.WriteObsManifest

// TablesHash folds rendered tables into the manifest's content hash.
var TablesHash = exp.TablesHash

// FromNanos converts a nanosecond count (e.g. time.Duration's
// Nanoseconds) to a simulation Duration.
var FromNanos = units.FromNanos
