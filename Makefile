GO ?= go

.PHONY: build test race vet lint bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the parallel executor (the rest of the suite is
# single-goroutine per run; exp is where concurrency lives). The
# simdebug tag arms the packet-pool lifecycle assertions, so the same
# run also catches double-release / use-after-release bugs.
race:
	$(GO) test -race -tags simdebug -timeout 3600s ./internal/exp/...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus floodlint, the in-tree analyzer suite
# that enforces the determinism, pooling and units invariants
# (see DESIGN.md §7). Nonzero exit on any finding.
lint: vet
	$(GO) run ./cmd/floodlint ./...

# Engine microbenchmarks (push/pop, zero-alloc callbacks, cancel) plus
# the per-figure benchmarks at the package root.
bench:
	$(GO) test -bench=BenchmarkEngineCore -benchmem ./internal/sim
	$(GO) test -bench=. -benchmem .

ci: build lint test race
