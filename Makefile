GO ?= go

.PHONY: build test race vet lint bench bench-json obs-smoke fault-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the parallel executor (the rest of the suite is
# single-goroutine per run; exp is where concurrency lives). The
# simdebug tag arms the packet-pool lifecycle assertions, so the same
# run also catches double-release / use-after-release bugs.
race:
	$(GO) test -race -tags simdebug -timeout 3600s ./internal/exp/...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus floodlint, the in-tree analyzer suite
# that enforces the determinism, pooling and units invariants
# (see DESIGN.md §7). Nonzero exit on any finding.
lint: vet
	$(GO) run ./cmd/floodlint ./...

# Engine microbenchmarks (push/pop, zero-alloc callbacks, cancel) plus
# the per-figure benchmarks at the package root.
bench:
	$(GO) test -bench=BenchmarkEngineCore -benchmem ./internal/sim
	$(GO) test -bench=. -benchmem .

# Machine-readable engine + metrics benchmark snapshot for regression
# tracking; format documented in EXPERIMENTS.md.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineCore|BenchmarkMetrics' -benchmem \
		./internal/sim ./internal/metrics | $(GO) run ./cmd/benchjson -o BENCH_PR3.json

# Observability smoke: one real experiment with -obs enabled; asserts
# the NDJSON/manifest parse and the manifest's table hash matches the
# rendered tables (plus obs-on/off and cross-parallelism byte-identity).
obs-smoke:
	$(GO) test -run 'TestObs' -count=1 ./internal/exp

# Fault-injection smoke: short seeded recovery runs (combined 20% loss,
# link flaps, switch restart, wedged-run watchdog, cross-parallelism
# bit-identity) under the race detector with the simdebug pool
# lifecycle assertions armed.
fault-smoke:
	$(GO) test -race -tags simdebug -count=1 ./internal/fault
	$(GO) test -race -tags simdebug -count=1 -timeout 1200s \
		-run 'TestFloodgateRecovers|TestFloodgateResyncs|TestWatchdog|TestFaultedRunsBitIdentical|TestRunConfigValidation|TestRunJobsIsolates' \
		./internal/sim ./internal/exp

ci: build lint test race obs-smoke fault-smoke
