GO ?= go

.PHONY: build test race vet lint lint-fix-baseline bench bench-json bench-smoke bench-compare profile obs-smoke fault-smoke shard-smoke forensics-smoke app-smoke scale-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency layer: the run-level worker pool AND the
# sharded conservative-window executor (shardexec.go barriers, cross-
# shard mailboxes) both live in internal/exp — the rest of the suite is
# single-goroutine per shard, enforced by the floodlint goroutine rule.
# The simdebug tag arms the packet-pool lifecycle assertions, so the
# same run also catches double-release / use-after-release bugs.
race:
	$(GO) test -race -tags simdebug -timeout 3600s ./internal/exp/...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus floodlint, the in-tree analyzer suite
# that enforces the determinism, pooling, units, shard-safety and
# event-ordering invariants (see DESIGN.md §7). Writes floodlint.sarif
# for CI annotation; exit is nonzero on any finding not grandfathered
# in .floodlint.baseline.json.
lint: vet
	$(GO) run ./cmd/floodlint -sarif floodlint.sarif ./...

# Regenerate the lint baseline: the current findings become the
# grandfathered set. Review the diff before committing — a shrinking
# baseline is progress, a growing one is debt that needs a reason.
lint-fix-baseline:
	$(GO) run ./cmd/floodlint -write-baseline ./...

# Engine microbenchmarks (push/pop, zero-alloc callbacks, cancel) plus
# the per-figure benchmarks at the package root.
bench:
	$(GO) test -bench=BenchmarkEngineCore -benchmem ./internal/sim
	$(GO) test -bench=. -benchmem .

# Machine-readable benchmark snapshot for regression tracking: engine
# and metrics micro benchmarks plus the BenchmarkRun* macro benchmarks
# (whole simulations) and the route-memory pair; format documented in
# EXPERIMENTS.md. benchjson exits non-zero if a hot-path benchmark
# allocates or the structural router loses its 100x memory edge.
bench-json:
	{ $(GO) test -run '^$$' -bench 'BenchmarkEngineCore|BenchmarkMetrics' -benchmem \
		./internal/sim ./internal/metrics; \
	  $(GO) test -run '^$$' -bench 'BenchmarkRun|BenchmarkForensicsOff|BenchmarkRouteMemory' -benchmem -benchtime 10x \
		./internal/exp; } | $(GO) run ./cmd/benchjson -o BENCH_PR10.json

# One-iteration macro benchmarks: catches bit-rot in the benchmark
# harness (and hot-path allocation regressions via benchjson's gate,
# including the BenchmarkForensicsOff/BenchmarkRunIncast pair rule that
# asserts disabled forensics hooks are allocation-free) without the
# minutes-long stable-measurement runs.
bench-smoke:
	{ $(GO) test -run '^$$' -bench 'BenchmarkEngineCore|BenchmarkMetrics' -benchmem -benchtime 100x \
		./internal/sim ./internal/metrics; \
	  $(GO) test -run '^$$' -bench 'BenchmarkRun|BenchmarkForensicsOff|BenchmarkRouteMemory' -benchmem -benchtime 1x \
		./internal/exp; } | $(GO) run ./cmd/benchjson > /dev/null

# Regression compare: a fresh benchmark run diffed against the
# committed BENCH_PR10.json snapshot, best-of-3 on both the micro and
# macro passes — benchjson collapses repeated names to the fastest run
# of each, because scheduling noise and CPU steal on shared hardware
# only ever add time, so the minimum is the honest estimate. The wide
# tolerance (35%) absorbs the remaining noise — this gate exists to
# catch step-change regressions (an accidental O(n^2), a hot path
# starting to allocate), not single-digit drift; the committed
# snapshots track that across PRs. Allocation counts are
# deterministic, so the pair rules and the zero-alloc gates stay exact.
bench-compare:
	{ $(GO) test -run '^$$' -bench 'BenchmarkEngineCore|BenchmarkMetrics' -benchmem -count 3 \
		./internal/sim ./internal/metrics; \
	  $(GO) test -run '^$$' -bench 'BenchmarkRun|BenchmarkForensicsOff|BenchmarkRouteMemory' -benchmem -benchtime 5x -count 3 \
		./internal/exp; } | $(GO) run ./cmd/benchjson -compare BENCH_PR10.json -tol 35 > /dev/null

# CPU + heap profile of the macro incast benchmark; inspect with
# `go tool pprof cpu.out`. floodsim -cpuprofile/-memprofile profile a
# full experiment instead.
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkRunIncast' -benchtime 50x \
		-cpuprofile cpu.out -memprofile mem.out ./internal/exp
	@echo "profiles written: cpu.out mem.out (go tool pprof <file>)"

# Observability smoke: one real experiment with -obs enabled; asserts
# the NDJSON/manifest parse and the manifest's table hash matches the
# rendered tables (plus obs-on/off and cross-parallelism byte-identity).
obs-smoke:
	$(GO) test -run 'TestObs' -count=1 ./internal/exp

# Fault-injection smoke: short seeded recovery runs (combined 20% loss,
# link flaps, switch restart, wedged-run watchdog, cross-parallelism
# bit-identity) under the race detector with the simdebug pool
# lifecycle assertions armed.
fault-smoke:
	$(GO) test -race -tags simdebug -count=1 ./internal/fault
	$(GO) test -race -tags simdebug -count=1 -timeout 1200s \
		-run 'TestFloodgateRecovers|TestFloodgateResyncs|TestWatchdog|TestFaultedRunsBitIdentical|TestRunConfigValidation|TestRunJobsIsolates' \
		./internal/sim ./internal/exp

# Sharded-executor smoke: a tiny 2-shard fig2 experiment end to end
# through floodsim (exercises partitioning, barrier windows and the
# mailbox exchange on a real figure), plus the quick shard unit gates
# under the race detector with simdebug pool assertions. The full
# shards × par × scheduler bit-identity matrix runs in `make race`
# (TestShardDeterminism / TestShardFaultMatrixBitIdentical).
shard-smoke:
	$(GO) run ./cmd/floodsim -exp fig2 -scale 0.1 -shards 2 > /dev/null
	$(GO) test -race -tags simdebug -count=1 \
		-run 'TestShardWatchdog|TestShardCrossCut|TestShardOversub|TestShardValidation' \
		./internal/exp

# Forensics smoke: one real experiment through floodsim with the causal
# tracing layer on; asserts the CLI wiring end to end (the NDJSON report
# lands next to the obs artifacts) and that the flag pairing error path
# stays a usage error. Byte-identity across shards/schedulers is pinned
# by TestForensicsShardSchedDeterminism in `make test`.
forensics-smoke:
	$(GO) run ./cmd/floodsim -exp fig2 -scale 0.1 -obs .forensics-smoke -forensics > /dev/null
	@ls .forensics-smoke/fig2/*.forensics.ndjson > /dev/null || \
		{ echo "forensics-smoke: no .forensics.ndjson written"; exit 1; }
	@rm -rf .forensics-smoke

# Application-plane smoke: a tiny closed-loop sloincast run end to end
# through floodsim (deadline timers, retries, breaker, SLO table), plus
# the experiment's acceptance gates — timeouts actually fire under
# DCQCN with retry amplification above 1, Floodgate stays clean, and
# the rendered SLO table parses column for column. The full
# shards x par x scheduler bit-identity matrix for the app plane runs
# in `make test` (TestSLOIncastShardDeterminism).
app-smoke:
	$(GO) run ./cmd/floodsim -exp sloincast -scale 0.1 > /dev/null
	$(GO) test -count=1 ./internal/app
	$(GO) test -count=1 -run 'TestSLOIncastDifferentiates|TestSLOIncastSmoke|TestRunFlowFile' ./internal/exp
	$(GO) test -count=1 -run 'TestSpec' ./internal/workload

# Structural-routing smoke: the scaleincast experiment end to end
# through floodsim on the small Clos preset (exercises -topo wiring,
# structural inference at freeze, the route-memory table) plus the
# quick router gates — full-pair BFS equivalence on every builder,
# dense fallback selection, the >= 100x k=16 memory ratio, and the
# scale gauges. The 102,400-host acceptance run and the sampled
# equivalence check on the big fabrics stay in `make test`
# (TestScaleIncastCompletes, TestRouterEquivalenceSampled).
scale-smoke:
	$(GO) run ./cmd/floodsim -exp scaleincast -topo clos > /dev/null
	$(GO) test -count=1 -run 'TestRouterEquivalence$$|TestRouterSelection|TestRouteBytesRatio|TestNextPortsRejectsNonHost' ./internal/topo
	$(GO) test -count=1 -run 'TestScaleIncastSmoke|TestScaleGauges|TestScaleTopoPresets|TestExperimentFabricsUseStructuralRouter' ./internal/exp

ci: build lint test race obs-smoke fault-smoke shard-smoke forensics-smoke app-smoke scale-smoke bench-smoke bench-compare
