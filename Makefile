GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the parallel executor (the rest of the suite is
# single-goroutine per run; exp is where concurrency lives).
race:
	$(GO) test -race -timeout 3600s ./internal/exp/...

vet:
	$(GO) vet ./...

# Engine microbenchmarks (push/pop, zero-alloc callbacks, cancel) plus
# the per-figure benchmarks at the package root.
bench:
	$(GO) test -bench=BenchmarkEngineCore -benchmem ./internal/sim
	$(GO) test -bench=. -benchmem .

ci: build vet test race
