// Command floodsim reproduces the paper's evaluation from the command
// line: every table and figure is a named experiment that prints the
// corresponding rows.
//
//	floodsim -list
//	floodsim -exp fig10 -scale 0.25
//	floodsim -exp all -scale 0.5 -seed 7 -par 8
//	floodsim -exp fig6 -obs out/ -sample 10us
//	floodsim -exp fig2 -obs out/ -forensics
//	floodsim -faults list
//	floodsim -faults storm -seed 7
//	floodsim -topo list
//	floodsim -exp scaleincast -topo clos100k
//
// -topo selects a large-fabric preset for the scaleincast experiment
// (structural routing makes the 102,400-host Clos affordable); other
// experiments pin the paper fabrics and ignore it.
//
// -faults runs one named fault-injection scenario (link flaps, switch
// restarts, Gilbert–Elliott burst loss, ...) from the fault matrix
// against DCQCN and DCQCN+Floodgate; `-faults list` prints the menu,
// and `-exp faultmatrix` runs the whole matrix.
//
// With -obs, every simulation additionally writes NDJSON/CSV metric
// time series and a Chrome trace_event timeline (open in Perfetto)
// under <dir>/<experiment>/, plus a manifest.json recording the run
// parameters and a hash of the printed tables. These files are
// byte-identical at every -par setting.
//
// -forensics (requires -obs) adds causal flow forensics: every run
// also writes <label>.forensics.ndjson — a per-flow FCT time budget
// (serialization, queueing, PFC, VOQ-parked, credit-in-flight, ...)
// plus detected incast episodes — and the fig2/faultmatrix tables gain
// attribution columns with a "why was p99 slow" summary.
//
// Scale 1 is the paper's 160-host 100/400 Gbps fabric (slow; see
// DESIGN.md for the slow-motion scale model that keeps smaller runs
// faithful in shape). Independent simulations run across a worker
// pool (-par, default all cores); the printed tables are bit-identical
// at every parallelism, and -par 1 reproduces the serial path exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"floodgate"
)

func main() {
	var (
		expID      = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale      = flag.Float64("scale", 0.25, "fabric scale in (0,1]; 1 = paper scale")
		seed       = flag.Uint64("seed", 1, "workload/simulation seed")
		par        = flag.Int("par", 0, "max concurrent simulations; 0 = all cores, 1 = serial")
		shards     = flag.Int("shards", 1, "engine shards per simulation (conservative-window PDES); output is identical at any count")
		list       = flag.Bool("list", false, "list available experiments")
		obsDir     = flag.String("obs", "", "write per-run metrics/timeline files under this directory")
		sample     = flag.Duration("sample", 0, "metrics sampling period on the simulation clock (e.g. 10us); 0 = default")
		faults     = flag.String("faults", "", "run one fault-injection scenario, or 'list'")
		topoName   = flag.String("topo", "", "large-fabric preset for -exp scaleincast (clos, clos100k, fattree16, fattree32), or 'list'")
		forensics  = flag.Bool("forensics", false, "causal flow forensics: FCT time-budget attribution + incast episodes (requires -obs; writes <label>.forensics.ndjson)")
		sched      = flag.String("sched", "wheel", "event scheduler: wheel (default) or heap; output is identical")
		appOn      = flag.Bool("app", false, "overlay the closed-loop application plane on experiments that support it (adds SLO columns to faultmatrix); 'sloincast' runs it regardless")
		flowsFrom  = flag.String("flows-from", "", "replay an NDJSON flow file (one {src,dst,size,start_ps,cat} object per line, sorted by start_ps)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	switch *sched {
	case "wheel", "heap":
	default:
		fmt.Fprintf(os.Stderr, "floodsim: unknown -sched %q (want wheel or heap)\n", *sched)
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "floodsim: -shards must be non-negative, got %d\n", *shards)
		os.Exit(2)
	}
	if *shards > 1 && *obsDir != "" {
		fmt.Fprintln(os.Stderr, "floodsim: -obs does not compose with -shards > 1 (per-shard metric export is not merged; see DESIGN.md §10)")
		os.Exit(2)
	}
	if err := validateConcurrency(*par, *shards, runtime.GOMAXPROCS(0)); err != nil {
		fmt.Fprintln(os.Stderr, "floodsim:", err)
		os.Exit(2)
	}
	if err := validateForensics(*forensics, *obsDir); err != nil {
		fmt.Fprintln(os.Stderr, "floodsim:", err)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "floodsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "floodsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "floodsim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "floodsim:", err)
			}
		}()
	}

	if *topoName == "list" {
		fmt.Println("topology presets (floodsim -exp scaleincast -topo <name>):")
		for _, p := range floodgate.TopoPresets() {
			fmt.Printf("  %-10s %s\n", p[0], p[1])
		}
		return
	}
	if err := validateTopo(*topoName); err != nil {
		fmt.Fprintln(os.Stderr, "floodsim:", err)
		os.Exit(2)
	}

	if *faults == "list" {
		fmt.Println("fault scenarios (floodsim -faults <name>):")
		for _, n := range floodgate.FaultScenarioNames() {
			fmt.Printf("  %s\n", n)
		}
		return
	}
	schedOpt := floodgate.SchedWheel
	if *sched == "heap" {
		schedOpt = floodgate.SchedHeap
	}

	if *flowsFrom != "" {
		o := floodgate.Options{Scale: *scale, Seed: *seed, Parallelism: *par, Scheduler: schedOpt, Shards: *shards}
		start := time.Now() //lint:allow walltime progress reporting times the real run, not the simulation
		tables, err := floodgate.RunFlowFile(*flowsFrom, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "floodsim:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("[flows-from %s done in %v at scale %.2f]\n", *flowsFrom,
			time.Since(start).Round(time.Millisecond), *scale) //lint:allow walltime progress reporting times the real run, not the simulation
		return
	}

	if *faults != "" {
		o := floodgate.Options{Scale: *scale, Seed: *seed, Parallelism: *par, Scheduler: schedOpt, Shards: *shards, App: *appOn}
		start := time.Now() //lint:allow walltime progress reporting times the real run, not the simulation
		tables, err := floodgate.RunFaultScenario(*faults, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "floodsim:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("[faults/%s done in %v at scale %.2f]\n", *faults,
			time.Since(start).Round(time.Millisecond), *scale) //lint:allow walltime progress reporting times the real run, not the simulation
		return
	}

	if *list || *expID == "" {
		fmt.Println("available experiments:")
		for _, e := range floodgate.Experiments() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		if *expID == "" && !*list {
			fmt.Println("\nusage: floodsim -exp <id|all> [-scale S] [-seed N] [-par N]")
			os.Exit(2)
		}
		return
	}

	o := floodgate.Options{Scale: *scale, Seed: *seed, Parallelism: *par, Scheduler: schedOpt, Shards: *shards, App: *appOn, Topo: *topoName}
	if *obsDir != "" {
		o.Obs = floodgate.ObsConfig{Dir: *obsDir, Period: floodgate.FromNanos(sample.Nanoseconds())}
	}
	o.Obs.Forensics = *forensics
	print := func(id string, tables []floodgate.Table, elapsed time.Duration) {
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("[%s done in %v at scale %.2f]\n\n", id, elapsed.Round(time.Millisecond), *scale)
	}

	if *expID == "all" {
		var ids []string
		for _, e := range floodgate.Experiments() {
			if e.ID == "fig8" {
				continue // the per-CC variants cover it without tripling runtime
			}
			ids = append(ids, e.ID)
		}
		// Whole experiments overlap through the shared pool; tables still
		// print in paper order. Elapsed is measured from the batch start:
		// with overlap, per-experiment wall time is not meaningful.
		start := time.Now() //lint:allow walltime progress reporting times the real run, not the simulation
		failed := false
		floodgate.RunExperiments(ids, o, func(id string, tables []floodgate.Table, err error) {
			if err != nil {
				fmt.Fprintln(os.Stderr, "floodsim:", err)
				failed = true
				return
			}
			print(id, tables, time.Since(start)) //lint:allow walltime progress reporting times the real run, not the simulation
		})
		if failed {
			os.Exit(1)
		}
		return
	}

	start := time.Now() //lint:allow walltime progress reporting times the real run, not the simulation
	tables, err := floodgate.RunExperiment(*expID, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floodsim:", err)
		os.Exit(1)
	}
	print(*expID, tables, time.Since(start)) //lint:allow walltime progress reporting times the real run, not the simulation
}

// validateConcurrency rejects explicit concurrency settings the exp
// executor would otherwise only clamp with a warning: every simulation
// runs one goroutine per shard, so a -par x -shards product above
// GOMAXPROCS cannot execute as requested — the executor would quietly
// cap the concurrent runs below what was asked for. An explicit -par
// is a statement of intent, so an impossible product is a usage error
// here. -par 0 keeps the executor's auto-sizing (cores divided by the
// shard count), and -shards alone is never rejected: shards above the
// core count merely time-slice, which is slower but still bit-exact
// (that is what lets the 1-core CI container smoke-test -shards 2).
// validateForensics rejects -forensics without an -obs directory: the
// forensics report is file output (NDJSON beside the run's metric
// files), so without a destination directory the flag would silently
// record attribution and throw it away. Pairing the flags keeps the
// CLI contract honest; the exp API allows Forensics without Dir for
// in-process consumers (tests read RunResult.Forensics directly).
func validateForensics(forensics bool, obsDir string) error {
	if forensics && obsDir == "" {
		return fmt.Errorf("-forensics needs -obs <dir> to write the report: add -obs out/ (the NDJSON lands at <dir>/<experiment>/<label>.forensics.ndjson)")
	}
	return nil
}

// validateTopo rejects unknown -topo preset names up front, before
// any experiment runs; only scaleincast reads the preset (other
// experiments pin the paper fabrics), so a typo would otherwise
// surface minutes into an -exp all batch.
func validateTopo(name string) error {
	if name == "" {
		return nil
	}
	var names []string
	for _, p := range floodgate.TopoPresets() {
		if p[0] == name {
			return nil
		}
		names = append(names, p[0])
	}
	return fmt.Errorf("unknown -topo %q (have %v, or 'list')", name, names)
}

func validateConcurrency(par, shards, maxProcs int) error {
	if shards <= 1 || par < 1 {
		return nil
	}
	if par*shards > maxProcs {
		return fmt.Errorf("-par %d x -shards %d = %d goroutines oversubscribes GOMAXPROCS=%d; lower one of them, or use -par 0 to auto-size", par, shards, par*shards, maxProcs)
	}
	return nil
}
