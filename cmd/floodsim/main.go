// Command floodsim reproduces the paper's evaluation from the command
// line: every table and figure is a named experiment that prints the
// corresponding rows.
//
//	floodsim -list
//	floodsim -exp fig10 -scale 0.25
//	floodsim -exp all -scale 0.5 -seed 7
//
// Scale 1 is the paper's 160-host 100/400 Gbps fabric (slow; see
// DESIGN.md for the slow-motion scale model that keeps smaller runs
// faithful in shape).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"floodgate"
)

func main() {
	var (
		expID = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale = flag.Float64("scale", 0.25, "fabric scale in (0,1]; 1 = paper scale")
		seed  = flag.Uint64("seed", 1, "workload/simulation seed")
		list  = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("available experiments:")
		for _, e := range floodgate.Experiments() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		if *expID == "" && !*list {
			fmt.Println("\nusage: floodsim -exp <id|all> [-scale S] [-seed N]")
			os.Exit(2)
		}
		return
	}

	o := floodgate.Options{Scale: *scale, Seed: *seed}
	run := func(id string) error {
		start := time.Now()
		tables, err := floodgate.RunExperiment(id, o)
		if err != nil {
			return err
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("[%s done in %v at scale %.2f]\n\n", id, time.Since(start).Round(time.Millisecond), *scale)
		return nil
	}

	if *expID == "all" {
		for _, e := range floodgate.Experiments() {
			if e.ID == "fig8" {
				continue // the per-CC variants cover it without tripling runtime
			}
			if err := run(e.ID); err != nil {
				fmt.Fprintln(os.Stderr, "floodsim:", err)
				os.Exit(1)
			}
		}
		return
	}
	if err := run(*expID); err != nil {
		fmt.Fprintln(os.Stderr, "floodsim:", err)
		os.Exit(1)
	}
}
