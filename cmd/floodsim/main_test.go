package main

import (
	"strings"
	"testing"
)

// TestValidateConcurrency pins the usage contract: an explicit -par
// whose par x shards product exceeds GOMAXPROCS — or a -shards count a
// single run cannot execute in parallel — is a usage error, while
// -par 0 defers to the executor's auto-sizing.
func TestValidateConcurrency(t *testing.T) {
	cases := []struct {
		name            string
		par, shards, mp int
		wantErr         string // "" = accept
	}{
		{"serial default", 0, 1, 8, ""},
		{"unsharded any par", 16, 1, 8, ""}, // run-level pool clamps itself; no shard goroutines
		{"auto par with shards", 0, 4, 8, ""},
		{"auto par absorbs any shard count", 0, 16, 8, ""}, // time-sliced but bit-exact (1-core CI)
		{"exact fit", 2, 4, 8, ""},
		{"serial run of wide shards", 1, 8, 8, ""},
		{"oversubscribed product", 4, 4, 8, "oversubscribes GOMAXPROCS=8"},
		{"barely oversubscribed", 3, 3, 8, "oversubscribes GOMAXPROCS=8"},
		{"explicit serial still oversubscribed", 1, 9, 8, "oversubscribes GOMAXPROCS=8"},
		{"zero shards falls back to serial", 4, 0, 2, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateConcurrency(tc.par, tc.shards, tc.mp)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateConcurrency(%d, %d, %d) = %v, want accept", tc.par, tc.shards, tc.mp, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateConcurrency(%d, %d, %d) accepted, want error containing %q", tc.par, tc.shards, tc.mp, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error = %q, want it to mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateForensics pins the flag-pairing contract: -forensics is
// file output, so it is a usage error without an -obs directory, and
// the message must tell the user the fix.
func TestValidateForensics(t *testing.T) {
	cases := []struct {
		name      string
		forensics bool
		obsDir    string
		wantErr   string // "" = accept
	}{
		{"both off", false, "", ""},
		{"obs alone", false, "out", ""},
		{"forensics with obs", true, "out", ""},
		{"forensics without obs", true, "", "needs -obs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateForensics(tc.forensics, tc.obsDir)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateForensics(%t, %q) = %v, want accept", tc.forensics, tc.obsDir, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateForensics(%t, %q) accepted, want error containing %q", tc.forensics, tc.obsDir, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error = %q, want it to mention %q", err, tc.wantErr)
			}
			if !strings.Contains(err.Error(), "-obs out/") {
				t.Errorf("error = %q, want it to suggest the fix (-obs out/)", err)
			}
		})
	}
}
