package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkRunIncast-8   	      12	  95331269 ns/op	        52.11 simsec/wallsec	  20810342 events/s	 8642112 B/op	   61234 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkRunIncast" || r.Iterations != 12 {
		t.Errorf("name/iters = %q/%d", r.Name, r.Iterations)
	}
	if r.AllocsPerOp != 61234 || r.BytesPerOp != 8642112 {
		t.Errorf("allocs/bytes = %d/%d", r.AllocsPerOp, r.BytesPerOp)
	}
	if r.Metrics["events/s"] != 20810342 {
		t.Errorf("events/s = %v", r.Metrics["events/s"])
	}
	if _, ok := parseLine("PASS"); ok {
		t.Error("non-benchmark line parsed")
	}
}

func mkDoc(rs ...benchResult) doc { return doc{Format: 2, Count: len(rs), Benchmarks: rs} }

// TestMergeBest pins the best-of--count collapse: repeated names keep
// the fastest run's whole record, unique names pass through in place.
func TestMergeBest(t *testing.T) {
	out := mergeBest([]benchResult{
		{Name: "BenchmarkA", NsPerOp: 300, Metrics: map[string]float64{"events/s": 1e6}},
		{Name: "BenchmarkB", NsPerOp: 50},
		{Name: "BenchmarkA", NsPerOp: 200, Metrics: map[string]float64{"events/s": 3e6}},
		{Name: "BenchmarkA", NsPerOp: 250, Metrics: map[string]float64{"events/s": 2e6}},
	})
	if len(out) != 2 {
		t.Fatalf("got %d results, want 2: %v", len(out), out)
	}
	if out[0].Name != "BenchmarkA" || out[0].NsPerOp != 200 || out[0].Metrics["events/s"] != 3e6 {
		t.Errorf("BenchmarkA = %+v, want the fastest run's whole record", out[0])
	}
	if out[1].Name != "BenchmarkB" || out[1].NsPerOp != 50 {
		t.Errorf("BenchmarkB = %+v", out[1])
	}
}

// TestCompareDocs pins the tolerance semantics: ns/op and allocs/op
// may not rise past tol percent of the baseline, events/s may not fall
// past it, and benchmarks on only one side never fail.
func TestCompareDocs(t *testing.T) {
	base := mkDoc(
		benchResult{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 1000, Metrics: map[string]float64{"events/s": 1e6}},
		benchResult{Name: "BenchmarkGone", NsPerOp: 50},
	)
	cases := []struct {
		name string
		cur  benchResult
		want string // substring of expected violation, "" = clean
	}{
		{"within tolerance", benchResult{Name: "BenchmarkA", NsPerOp: 1050, AllocsPerOp: 1040, Metrics: map[string]float64{"events/s": 0.95e6}}, ""},
		{"ns regression", benchResult{Name: "BenchmarkA", NsPerOp: 1200, AllocsPerOp: 1000, Metrics: map[string]float64{"events/s": 1e6}}, "ns/op exceeds"},
		{"alloc regression", benchResult{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 1200, Metrics: map[string]float64{"events/s": 1e6}}, "allocs/op exceeds"},
		{"throughput regression", benchResult{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 1000, Metrics: map[string]float64{"events/s": 0.8e6}}, "events/s falls"},
		{"new benchmark ignored", benchResult{Name: "BenchmarkNew", NsPerOp: 1e9, AllocsPerOp: 1 << 30}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			viol := compareDocs(base, mkDoc(tc.cur), 10)
			if tc.want == "" {
				if len(viol) != 0 {
					t.Fatalf("unexpected violations: %v", viol)
				}
				return
			}
			if len(viol) != 1 || !strings.Contains(viol[0], tc.want) {
				t.Fatalf("violations = %v, want one mentioning %q", viol, tc.want)
			}
		})
	}
}

// TestCompareDocsAbsoluteAllocSlack pins the small absolute slack: a
// benchmark going from 0 to a few allocs/op is not a percentage
// question, and must still pass.
func TestCompareDocsAbsoluteAllocSlack(t *testing.T) {
	base := mkDoc(benchResult{Name: "BenchmarkB", NsPerOp: 100, AllocsPerOp: 0})
	if v := compareDocs(base, mkDoc(benchResult{Name: "BenchmarkB", NsPerOp: 100, AllocsPerOp: 8}), 10); len(v) != 0 {
		t.Errorf("8 allocs over a 0 baseline should sit inside the absolute slack: %v", v)
	}
	if v := compareDocs(base, mkDoc(benchResult{Name: "BenchmarkB", NsPerOp: 100, AllocsPerOp: 9}), 10); len(v) != 1 {
		t.Errorf("9 allocs over a 0 baseline should breach the slack, got %v", v)
	}
}

// TestForensicsPairRule pins the built-in pair rule: the forensics-off
// benchmark must allocate like the plain incast benchmark.
func TestForensicsPairRule(t *testing.T) {
	if msg := forensicsPairRule(mkDoc(
		benchResult{Name: "BenchmarkForensicsOff", AllocsPerOp: 10004},
		benchResult{Name: "BenchmarkRunIncast", AllocsPerOp: 10000},
	)); msg != "" {
		t.Errorf("small delta should pass: %s", msg)
	}
	msg := forensicsPairRule(mkDoc(
		benchResult{Name: "BenchmarkForensicsOff", AllocsPerOp: 12000},
		benchResult{Name: "BenchmarkRunIncast", AllocsPerOp: 10000},
	))
	if !strings.Contains(msg, "must be allocation-free") {
		t.Errorf("large delta should fail, got %q", msg)
	}
	if msg := forensicsPairRule(mkDoc(benchResult{Name: "BenchmarkRunIncast", AllocsPerOp: 10000})); msg != "" {
		t.Errorf("rule should not apply without both benchmarks: %s", msg)
	}
}

// TestRouteMemoryPairRule pins the structural-vs-dense compression
// gate: structural route_bytes must stay at least 100x below dense.
func TestRouteMemoryPairRule(t *testing.T) {
	mk := func(structural, dense float64) doc {
		return mkDoc(
			benchResult{Name: "BenchmarkRouteMemory/structural", Metrics: map[string]float64{"route_bytes/topo": structural}},
			benchResult{Name: "BenchmarkRouteMemory/dense", Metrics: map[string]float64{"route_bytes/topo": dense}},
		)
	}
	if msg := routeMemoryPairRule(mk(32384, 58228224)); msg != "" {
		t.Errorf("measured k=16 ratio (~1798x) should pass: %s", msg)
	}
	if msg := routeMemoryPairRule(mk(1e6, 5e7)); !strings.Contains(msg, "100x") {
		t.Errorf("50x ratio should fail the 100x bound, got %q", msg)
	}
	if msg := routeMemoryPairRule(mkDoc(
		benchResult{Name: "BenchmarkRouteMemory/structural", Metrics: map[string]float64{"route_bytes/topo": 1e6}},
	)); msg != "" {
		t.Errorf("rule should not apply without both halves: %s", msg)
	}
}
