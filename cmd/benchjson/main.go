// Command benchjson converts `go test -bench` text output (stdin) into
// a stable JSON document for regression tracking:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH.json
//
// Benchmarks are keyed by name with the -cpu/GOMAXPROCS suffix
// stripped and emitted in sorted order, so the file is diffable across
// runs. The document carries a small manifest (format version, Go
// toolchain, benchmark count) so a regression diff can tell a real
// change from a toolchain bump. See EXPERIMENTS.md for the format.
//
// Hot-path benchmarks (BenchmarkEngineCore*, BenchmarkMetricsHotPath)
// are required to be allocation-free: any such result with
// allocs_per_op > 0 fails the run with a non-zero exit after the
// document is written, so CI catches an allocation regression even
// though the numbers still land on disk for inspection.
//
// Compare mode diffs the fresh run against a committed document:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -compare BENCH.json -tol 10
//
// Each benchmark present in both documents must stay within the
// tolerance (percent): ns/op and allocs/op may not rise past it,
// events/s may not fall past it. Benchmarks present on only one side
// are reported but never fail (the suite evolves). Two built-in pair
// rules ride along regardless of tolerance: when the fresh run
// contains both BenchmarkForensicsOff and BenchmarkRunIncast, their
// allocs/op must agree (the forensics hooks are contractually free
// when disabled); and when it contains both halves of
// BenchmarkRouteMemory, the structural router's route_bytes must stay
// at least 100x below the dense baseline's.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics holds b.ReportMetric extras (events/s, simsec/wallsec)
	// keyed by unit token; Go marshals map keys sorted, so the file
	// stays diffable.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type doc struct {
	Format     int           `json:"format"`
	GoVersion  string        `json:"go_version"`
	GoMaxProcs int           `json:"gomaxprocs"`
	CPUModel   string        `json:"cpu_model,omitempty"`
	Count      int           `json:"count"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// cpuModel best-effort identifies the host CPU so a regression diff
// can tell a real change from a hardware move. Linux only (reads
// /proc/cpuinfo); elsewhere the field is omitted.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

// benchName matches the row prefix, e.g. "BenchmarkMetricsHotPath-8 121170255 9.8 ns/op".
// Units beyond ns/op (B/op, allocs/op, custom metrics such as events/s)
// are picked out of the remaining fields by their unit token, so macro
// benchmarks reporting extra metrics parse the same as micro ones.
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

// zeroAllocRequired names the hot-path benchmarks that must not
// allocate per op.
var zeroAllocRequired = regexp.MustCompile(`^(BenchmarkEngineCore|BenchmarkMetricsHotPath)`)

func parseLine(line string) (benchResult, bool) {
	m := benchName.FindStringSubmatch(line)
	if m == nil {
		return benchResult{}, false
	}
	iters, _ := strconv.ParseInt(m[2], 10, 64)
	ns, _ := strconv.ParseFloat(m[3], 64)
	r := benchResult{Name: m[1], Iterations: iters, NsPerOp: ns}
	fields := strings.Fields(line)
	for i := 2; i < len(fields); i++ {
		switch f := fields[i]; f {
		case "ns/op":
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(fields[i-1], 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(fields[i-1], 10, 64)
		default:
			// Custom b.ReportMetric units (events/s, simsec/wallsec, ...):
			// any remaining unit token preceded by a number.
			if strings.Contains(f, "/") {
				if v, err := strconv.ParseFloat(fields[i-1], 64); err == nil {
					if r.Metrics == nil {
						r.Metrics = make(map[string]float64)
					}
					r.Metrics[f] = v
				}
			}
		}
	}
	return r, true
}

// mergeBest collapses repeated benchmark names (go test -count N) to
// the fastest run of each, keeping that run's record whole so its
// custom metrics stay a consistent snapshot. Scheduling noise and CPU
// steal on shared hardware only ever add time, so the minimum ns/op is
// the honest estimate — this is what lets bench-compare run the noisy
// macro benchmarks with -count 3 and gate on the best of the three.
// Allocation counts are deterministic and identical across runs, so
// the zero-alloc and pair-rule gates are unaffected.
func mergeBest(results []benchResult) []benchResult {
	idx := make(map[string]int, len(results))
	out := results[:0]
	for _, r := range results {
		if i, ok := idx[r.Name]; ok {
			if r.NsPerOp < out[i].NsPerOp {
				out[i] = r
			}
			continue
		}
		idx[r.Name] = len(out)
		out = append(out, r)
	}
	return out
}

// compareDocs checks cur against a committed baseline, returning one
// violation message per tolerance breach. tolPct is the allowed
// regression in percent. The allocs check carries a small absolute
// slack (8 allocs/op) so tiny fixed-cost additions to setup-heavy
// benchmarks do not trip a percentage meant for real growth.
func compareDocs(old, cur doc, tolPct float64) []string {
	base := make(map[string]benchResult, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		base[r.Name] = r
	}
	var viol []string
	for _, r := range cur.Benchmarks {
		o, ok := base[r.Name]
		if !ok {
			continue
		}
		if max := o.NsPerOp * (1 + tolPct/100); r.NsPerOp > max {
			viol = append(viol, fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f by more than %g%%",
				r.Name, r.NsPerOp, o.NsPerOp, tolPct))
		}
		if max := float64(o.AllocsPerOp)*(1+tolPct/100) + 8; float64(r.AllocsPerOp) > max {
			viol = append(viol, fmt.Sprintf("%s: %d allocs/op exceeds baseline %d by more than %g%%",
				r.Name, r.AllocsPerOp, o.AllocsPerOp, tolPct))
		}
		if ev, ok := o.Metrics["events/s"]; ok && ev > 0 {
			if cv, ok := r.Metrics["events/s"]; ok && cv < ev*(1-tolPct/100) {
				viol = append(viol, fmt.Sprintf("%s: %.0f events/s falls below baseline %.0f by more than %g%%",
					r.Name, cv, ev, tolPct))
			}
		}
	}
	return viol
}

// forensicsPairRule asserts the disabled-forensics contract inside one
// run: BenchmarkForensicsOff executes the same workload as
// BenchmarkRunIncast with the hooks compiled in but disabled, so their
// allocation counts must agree (small absolute slack for runtime
// noise). Returns "" when the rule passes or does not apply.
func forensicsPairRule(cur doc) string {
	var off, base *benchResult
	for i := range cur.Benchmarks {
		switch cur.Benchmarks[i].Name {
		case "BenchmarkForensicsOff":
			off = &cur.Benchmarks[i]
		case "BenchmarkRunIncast":
			base = &cur.Benchmarks[i]
		}
	}
	if off == nil || base == nil {
		return ""
	}
	delta := off.AllocsPerOp - base.AllocsPerOp
	if delta < 0 {
		delta = -delta
	}
	if slack := base.AllocsPerOp/200 + 8; delta > slack {
		return fmt.Sprintf("BenchmarkForensicsOff allocates %d allocs/op vs BenchmarkRunIncast's %d (delta %d > slack %d); disabled forensics hooks must be allocation-free",
			off.AllocsPerOp, base.AllocsPerOp, delta, slack)
	}
	return ""
}

// routeMemoryPairRule asserts the structural router's compression
// claim inside one run: BenchmarkRouteMemory/{structural,dense} both
// report resident route memory for the k=16 fat tree as the
// route_bytes/topo custom metric, and structural must stay at least
// 100x below the dense baseline (the PR 10 acceptance bound; it
// measures ~1800x in practice). Returns "" when the rule passes or
// either half is absent from the run.
func routeMemoryPairRule(cur doc) string {
	var structural, dense float64
	for i := range cur.Benchmarks {
		switch cur.Benchmarks[i].Name {
		case "BenchmarkRouteMemory/structural":
			structural = cur.Benchmarks[i].Metrics["route_bytes/topo"]
		case "BenchmarkRouteMemory/dense":
			dense = cur.Benchmarks[i].Metrics["route_bytes/topo"]
		}
	}
	if structural == 0 || dense == 0 {
		return ""
	}
	if structural*100 > dense {
		return fmt.Sprintf("BenchmarkRouteMemory: structural route_bytes %.0f is only %.1fx below dense %.0f; the structural router must stay >= 100x smaller",
			structural, dense/structural, dense)
	}
	return ""
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "compare against this committed benchjson document; tolerance breaches exit non-zero")
	tol := flag.Float64("tol", 10, "compare tolerance in percent")
	flag.Parse()

	var results []benchResult
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	results = mergeBest(results)
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })

	cur := doc{
		Format:     2,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		Count:      len(results),
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(cur, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	failed := false
	for _, r := range results {
		if zeroAllocRequired.MatchString(r.Name) && r.AllocsPerOp > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %s allocates %d allocs/op; hot-path benchmarks must be allocation-free\n",
				r.Name, r.AllocsPerOp)
			failed = true
		}
	}
	if msg := forensicsPairRule(cur); msg != "" {
		fmt.Fprintln(os.Stderr, "benchjson:", msg)
		failed = true
	}
	if msg := routeMemoryPairRule(cur); msg != "" {
		fmt.Fprintln(os.Stderr, "benchjson:", msg)
		failed = true
	}
	if *compare != "" {
		raw, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var old doc
		if err := json.Unmarshal(raw, &old); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *compare, err)
			os.Exit(1)
		}
		for _, v := range compareDocs(old, cur, *tol) {
			fmt.Fprintln(os.Stderr, "benchjson:", v)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
