// Command benchjson converts `go test -bench` text output (stdin) into
// a stable JSON document for regression tracking:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH.json
//
// Benchmarks are keyed by name with the -cpu/GOMAXPROCS suffix
// stripped and emitted in sorted order, so the file is diffable across
// runs. See EXPERIMENTS.md for the format.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type doc struct {
	Format     int           `json:"format"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// benchLine matches one result row, e.g.
//
//	BenchmarkMetricsHotPath-8   121170255   9.871 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var results []benchResult
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var bpo, apo int64
		if m[4] != "" {
			bpo, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			apo, _ = strconv.ParseInt(m[5], 10, 64)
		}
		results = append(results, benchResult{
			Name: m[1], Iterations: iters, NsPerOp: ns,
			BytesPerOp: bpo, AllocsPerOp: apo,
		})
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })

	data, err := json.MarshalIndent(doc{Format: 1, Benchmarks: results}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
