// Command benchjson converts `go test -bench` text output (stdin) into
// a stable JSON document for regression tracking:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH.json
//
// Benchmarks are keyed by name with the -cpu/GOMAXPROCS suffix
// stripped and emitted in sorted order, so the file is diffable across
// runs. The document carries a small manifest (format version, Go
// toolchain, benchmark count) so a regression diff can tell a real
// change from a toolchain bump. See EXPERIMENTS.md for the format.
//
// Hot-path benchmarks (BenchmarkEngineCore*, BenchmarkMetricsHotPath)
// are required to be allocation-free: any such result with
// allocs_per_op > 0 fails the run with a non-zero exit after the
// document is written, so CI catches an allocation regression even
// though the numbers still land on disk for inspection.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics holds b.ReportMetric extras (events/s, simsec/wallsec)
	// keyed by unit token; Go marshals map keys sorted, so the file
	// stays diffable.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type doc struct {
	Format     int           `json:"format"`
	GoVersion  string        `json:"go_version"`
	GoMaxProcs int           `json:"gomaxprocs"`
	CPUModel   string        `json:"cpu_model,omitempty"`
	Count      int           `json:"count"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// cpuModel best-effort identifies the host CPU so a regression diff
// can tell a real change from a hardware move. Linux only (reads
// /proc/cpuinfo); elsewhere the field is omitted.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

// benchName matches the row prefix, e.g. "BenchmarkMetricsHotPath-8 121170255 9.8 ns/op".
// Units beyond ns/op (B/op, allocs/op, custom metrics such as events/s)
// are picked out of the remaining fields by their unit token, so macro
// benchmarks reporting extra metrics parse the same as micro ones.
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

// zeroAllocRequired names the hot-path benchmarks that must not
// allocate per op.
var zeroAllocRequired = regexp.MustCompile(`^(BenchmarkEngineCore|BenchmarkMetricsHotPath)`)

func parseLine(line string) (benchResult, bool) {
	m := benchName.FindStringSubmatch(line)
	if m == nil {
		return benchResult{}, false
	}
	iters, _ := strconv.ParseInt(m[2], 10, 64)
	ns, _ := strconv.ParseFloat(m[3], 64)
	r := benchResult{Name: m[1], Iterations: iters, NsPerOp: ns}
	fields := strings.Fields(line)
	for i := 2; i < len(fields); i++ {
		switch f := fields[i]; f {
		case "ns/op":
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(fields[i-1], 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(fields[i-1], 10, 64)
		default:
			// Custom b.ReportMetric units (events/s, simsec/wallsec, ...):
			// any remaining unit token preceded by a number.
			if strings.Contains(f, "/") {
				if v, err := strconv.ParseFloat(fields[i-1], 64); err == nil {
					if r.Metrics == nil {
						r.Metrics = make(map[string]float64)
					}
					r.Metrics[f] = v
				}
			}
		}
	}
	return r, true
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var results []benchResult
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })

	data, err := json.MarshalIndent(doc{
		Format:     2,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		Count:      len(results),
		Benchmarks: results,
	}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	failed := false
	for _, r := range results {
		if zeroAllocRequired.MatchString(r.Name) && r.AllocsPerOp > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %s allocates %d allocs/op; hot-path benchmarks must be allocation-free\n",
				r.Name, r.AllocsPerOp)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
