// Command floodlint runs the repository's custom static-analysis suite
// (see internal/lint): determinism, packet-pooling, hot-path
// allocation, units-hygiene, shard-safety and event-ordering
// invariants that ordinary vet/tests cannot express. It loads and
// type-checks every package in the module using only the standard
// library.
//
//	floodlint ./...
//
// Exit status: 0 clean (or every finding baselined), 1 new findings,
// 2 usage or load failure. Findings print as file:line: [rule]
// message, relative to the module root. Suppress a finding with
// //lint:allow <rule> <reason> on (or directly above) the offending
// line; unused allow comments are themselves reported.
//
// A baseline file (.floodlint.baseline.json at the module root, or
// -baseline <path>) grandfathers known findings: they are reported as
// "(baselined)" but do not fail the run, while any finding not in the
// baseline does. Regenerate it after deliberate changes with
// -write-baseline. Machine-readable output: -json writes the report to
// stdout, -sarif <file> writes a SARIF 2.1.0 document for CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"floodgate/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list the rules and exit")
	jsonOut := flag.Bool("json", false, "write the report as JSON to stdout")
	sarifPath := flag.String("sarif", "", "write a SARIF 2.1.0 report to this `file`")
	baselinePath := flag.String("baseline", "", "baseline `file` (default: <module>/"+lint.BaselineFile+" when present)")
	writeBaseline := flag.Bool("write-baseline", false, "write the current findings as the new baseline and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: floodlint [./...]  (always lints the whole module)")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listRules {
		for _, r := range lint.Rules() {
			fmt.Printf("%-12s %s\n", r.Name, r.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fail(err)
	}
	l, err := lint.NewLoader(root)
	if err != nil {
		fail(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		fail(err)
	}
	diags := lint.Run(l, pkgs, lint.DefaultConfig(l.Module()))

	bp := *baselinePath
	if bp == "" {
		bp = filepath.Join(root, lint.BaselineFile)
	}
	if *writeBaseline {
		if err := os.WriteFile(bp, lint.NewBaseline(root, diags).Marshal(), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "floodlint: wrote %d finding(s) to %s\n", len(diags), bp)
		return
	}
	baseline, err := lint.LoadBaseline(bp)
	if err != nil {
		fail(err)
	}
	baselined := baseline.Classify(root, diags)
	report := lint.NewReport(l.Module(), root, diags, baselined)

	if *sarifPath != "" {
		if err := os.WriteFile(*sarifPath, report.SARIF(), 0o644); err != nil {
			fail(err)
		}
	}
	if *jsonOut {
		os.Stdout.Write(report.JSON())
	} else {
		fmt.Print(report.Text())
	}
	if stale := baseline.Stale(root, diags); len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "floodlint: %d baseline entr%s no longer match any finding; run -write-baseline to prune\n",
			len(stale), plural(len(stale), "y", "ies"))
	}
	if report.New > 0 {
		fmt.Fprintf(os.Stderr, "floodlint: %d new finding(s)", report.New)
		if report.Baselined > 0 {
			fmt.Fprintf(os.Stderr, " (%d baselined)", report.Baselined)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "floodlint:", err)
	os.Exit(2)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
