// Command floodlint runs the repository's custom static-analysis suite
// (see internal/lint): determinism, packet-pooling, hot-path
// allocation and units-hygiene invariants that ordinary vet/tests
// cannot express. It loads and type-checks every package in the module
// using only the standard library.
//
//	floodlint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Findings
// print as file:line: [rule] message, relative to the module root.
// Suppress a finding with //lint:allow <rule> <reason> on (or directly
// above) the offending line; unused allow comments are themselves
// reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"floodgate/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list the rules and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: floodlint [./...]  (always lints the whole module)")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listRules {
		for _, r := range lint.Rules() {
			fmt.Printf("%-12s %s\n", r.Name, r.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "floodlint:", err)
		os.Exit(2)
	}
	l, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floodlint:", err)
		os.Exit(2)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "floodlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(l, pkgs, lint.DefaultConfig(l.Module()))
	for _, d := range diags {
		fmt.Println(d.Rel(root))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "floodlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
