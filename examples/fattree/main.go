// Fattree: the Fig 4 deadlock scenario on a 3-tier fabric — hosts in
// pod A blast a host in pod B while pod B blasts a host in pod A, with
// a deliberately tiny VOQ pool so destinations share queues. With VOQ
// grouping (the paper's fix) the aggregation switches split their pool
// between upstream and downstream traffic and every flow completes;
// without it, the hold-and-wait cycle can wedge the fabric.
package main

import (
	"flag"
	"fmt"

	"floodgate"
)

func main() {
	var scale = flag.Float64("scale", 0.5, "fabric scale in (0,1]")
	flag.Parse()

	o := floodgate.Options{Scale: *scale, Seed: 3}

	for _, grouping := range []bool{true, false} {
		c := floodgate.DefaultFatTree()
		c.K = 4
		c.HostsPerEdge = 2
		c.Rate = floodgate.BitRate(float64(c.Rate) * *scale)
		c.Prop = floodgate.Duration(float64(c.Prop) / *scale)
		tp := c.Build()

		fg := floodgate.DefaultFloodgateConfig(64 * floodgate.KB)
		fg.MaxVOQs = 2 // fewer VOQs than incast destinations: forces sharing
		fg.VOQGrouping = grouping
		scheme := floodgate.WithFloodgateConfig(floodgate.DCQCN(o), fg, "+Floodgate")

		// Bidirectional cross-pod incast (Fig 4), with two victim hosts
		// per pod so upstream and downstream traffic must share VOQs at
		// the aggregation switches when grouping is off.
		podA := tp.Hosts[:4] // pod 0 (2 edges x 2 hosts)
		podB := tp.Hosts[4:8]
		var specs []floodgate.FlowSpec
		blast := func(srcs []floodgate.NodeID, dsts []floodgate.NodeID) {
			for _, dst := range dsts[:2] {
				for _, src := range srcs {
					specs = append(specs, floodgate.FlowSpec{
						Src: src, Dst: dst, Size: 200 * floodgate.KB, Cat: floodgate.CatIncast,
					})
				}
			}
		}
		blast(podA, podB)
		blast(podB, podA)

		res := floodgate.Run(floodgate.RunConfig{
			Topo: tp, Scheme: scheme, Specs: specs,
			Duration: 2 * floodgate.Millisecond,
			Drain:    200 * floodgate.Millisecond,
			Seed:     3, Opt: o,
		})

		avg, p99 := floodgate.FCTStats(res.Stats.FCTs(floodgate.CatIncast))
		fmt.Printf("VOQ grouping %-5v completed %d/%d  avgFCT %-10v p99 %-10v maxVOQs %d\n",
			grouping, res.Completed, res.Total, avg, p99, res.Stats.MaxVOQInUse)
	}
	fmt.Println(`
Grouping reserves VOQs per direction at the aggregation layer so upstream
and downstream traffic never share a queue — the paper's fix for the Fig 4
hold-and-wait cycle. (The cycle itself needs adversarial interleaving to
close; without grouping this workload merely risks it, it does not always
wedge.)`)
}
