// Incastmix: the paper's §6.1 scenario assembled from the public API —
// Poisson background traffic over a chosen workload distribution mixed
// with periodic 30–40 MTU incast at destination load 0.5, compared
// across DCQCN, DCQCN+ideal and DCQCN+Floodgate. Reports the
// victim-class FCT split and per-hop buffer maxima.
package main

import (
	"flag"
	"fmt"
	"log"

	"floodgate"
)

const mtu = 1500

func main() {
	var (
		wl    = flag.String("workload", "WebServer", "Memcached|WebServer|Hadoop|WebSearch")
		scale = flag.Float64("scale", 0.2, "fabric scale in (0,1]")
		seed  = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	var cdf *floodgate.CDF
	for _, c := range floodgate.Workloads {
		if c.Name == *wl {
			cdf = c
		}
	}
	if cdf == nil {
		log.Fatalf("unknown workload %q (have Memcached, WebServer, Hadoop, WebSearch)", *wl)
	}

	o := floodgate.Options{Scale: *scale, Seed: *seed}
	baseBDP := 64 * floodgate.KB

	build := func() *floodgate.Topology {
		c := floodgate.DefaultLeafSpine()
		c.HostsPerToR = 8
		c.Spines = 2
		c.HostRate = floodgate.BitRate(float64(c.HostRate) * *scale)
		c.SpineRate = floodgate.BitRate(float64(c.SpineRate) * *scale)
		c.Prop = floodgate.Duration(float64(c.Prop) / *scale)
		return c.Build()
	}

	for _, mk := range []func() floodgate.Scheme{
		func() floodgate.Scheme { return floodgate.DCQCN(o) },
		func() floodgate.Scheme { return floodgate.WithIdeal(o, floodgate.DCQCN(o), baseBDP) },
		func() floodgate.Scheme { return floodgate.WithFloodgate(o, floodgate.DCQCN(o), baseBDP) },
	} {
		scheme := mk()
		tp := build()
		dur := 4 * floodgate.Millisecond
		r := floodgate.NewRand(*seed)
		dst := tp.Hosts[len(tp.Hosts)-1]
		hostRate := tp.Node(dst).Ports[0].Rate
		dstRack := tp.Node(dst).Rack

		poisson := floodgate.Poisson(floodgate.PoissonConfig{
			CDF: cdf, Load: 0.8,
			Hosts: tp.Hosts, HostRate: hostRate,
			ExcludeDst: map[floodgate.NodeID]bool{dst: true},
			Until:      dur,
			Categorize: func(src, d floodgate.NodeID) floodgate.Category {
				if tp.Node(d).Rack == dstRack {
					return floodgate.CatVictimIncast
				}
				return floodgate.CatVictimPFC
			},
		}, r.Fork())
		incast := floodgate.Incast(floodgate.IncastConfig{
			Dst: dst, Senders: floodgate.CrossRackSenders(tp, dst),
			Degree:  len(floodgate.CrossRackSenders(tp, dst)),
			MinSize: 30 * mtu, MaxSize: 40 * mtu,
			Load: 0.5, DstRate: hostRate, Until: dur,
		}, r.Fork())

		res := floodgate.Run(floodgate.RunConfig{
			Topo: tp, Scheme: scheme,
			Specs:    floodgate.MergeSpecs(poisson, incast),
			Duration: dur, Seed: *seed, Opt: o,
		})

		fmt.Printf("== %s (%s, scale %.2f) ==\n", scheme.Name, cdf.Name, *scale)
		for _, cat := range []floodgate.Category{
			floodgate.CatIncast, floodgate.CatVictimIncast, floodgate.CatVictimPFC,
		} {
			avg, p99 := floodgate.FCTStats(res.Stats.FCTs(cat))
			fmt.Printf("  %-18s n=%-6d avgFCT %-10v p99 %v\n",
				cat, len(res.Stats.FCTs(cat)), avg, p99)
		}
		fmt.Printf("  buffers: ToR-Up %v  Core %v  ToR-Down %v   PFC events: %d\n\n",
			res.Stats.MaxClassBuffer(floodgate.ClassToRUp),
			res.Stats.MaxClassBuffer(floodgate.ClassCore),
			res.Stats.MaxClassBuffer(floodgate.ClassToRDown),
			res.Stats.PFCEventCount())
	}
}
