// Quickstart: build a small leaf–spine fabric, fire one incast at it,
// and compare DCQCN with and without Floodgate — the paper's headline
// effect (last-hop buffer relief, no PFC) in ~40 lines of API use.
package main

import (
	"fmt"

	"floodgate"
)

func main() {
	o := floodgate.Options{Scale: 0.25, Seed: 42}

	// A 2-tier fabric: scaled-down racks, 25/100 Gbps links.
	build := func() *floodgate.Topology {
		c := floodgate.DefaultLeafSpine()
		c.ToRs = 6
		c.HostsPerToR = 8
		c.Spines = 2
		c.HostRate = 25 * floodgate.Gbps
		c.SpineRate = 100 * floodgate.Gbps
		c.Prop = 2400 * floodgate.Nanosecond
		return c.Build()
	}

	for _, withFG := range []bool{false, true} {
		tp := build()
		scheme := floodgate.DCQCN(o)
		if withFG {
			scheme = floodgate.WithFloodgate(o, scheme, 64*floodgate.KB)
		}

		// Incast: every cross-rack host sends one 35-MTU flow to host 0
		// of the last rack, all at t=0.
		dst := tp.Hosts[len(tp.Hosts)-1]
		var specs []floodgate.FlowSpec
		for _, src := range floodgate.CrossRackSenders(tp, dst) {
			specs = append(specs, floodgate.FlowSpec{
				Src: src, Dst: dst, Size: 35 * 1500, Cat: floodgate.CatIncast,
			})
		}

		res := floodgate.Run(floodgate.RunConfig{
			Topo:     tp,
			Scheme:   scheme,
			Specs:    specs,
			Duration: 2 * floodgate.Millisecond,
			Drain:    50 * floodgate.Millisecond,
			Seed:     42,
			Opt:      o,
		})

		avg, p99 := floodgate.FCTStats(res.Stats.FCTs(floodgate.CatIncast))
		fmt.Printf("%-18s  flows %d/%d  avgFCT %-10v p99 %-10v\n",
			scheme.Name, res.Completed, res.Total, avg, p99)
		fmt.Printf("  max buffer: ToR-Up %-10v Core %-10v ToR-Down %-10v (VOQs used: %d)\n",
			res.Stats.MaxClassBuffer(floodgate.ClassToRUp),
			res.Stats.MaxClassBuffer(floodgate.ClassCore),
			res.Stats.MaxClassBuffer(floodgate.ClassToRDown),
			res.Stats.MaxVOQInUse)
	}
	fmt.Println("\nFloodgate parks the burst at the source ToRs (ToR-Up grows, Core/ToR-Down shrink).")
}
