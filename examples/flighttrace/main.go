// Flighttrace: follow one incast packet stream through the fabric with
// the built-in flight recorder — watch segments get window-gated into
// a VOQ at the source ToR (PARK), credits flow back (CREDIT), and the
// parked bytes drain toward the destination.
package main

import (
	"fmt"

	"floodgate"
)

func main() {
	c := floodgate.DefaultLeafSpine()
	c.ToRs = 3
	c.HostsPerToR = 6
	c.Spines = 2
	c.HostRate = 10 * floodgate.Gbps
	c.SpineRate = 40 * floodgate.Gbps
	c.Prop = 3000 * floodgate.Nanosecond
	tp := c.Build()

	// Record every park, credit and drop in the run, plus the full
	// lifecycle of flow 1.
	buf := floodgate.NewTraceBuffer(64, floodgate.TraceFilter{
		Ops: map[floodgate.TraceOp]bool{
			floodgate.TracePark:   true,
			floodgate.TraceCredit: true,
			floodgate.TraceDrop:   true,
		},
	})

	net := floodgate.NewNetwork(floodgate.NetworkConfig{
		Topo:   tp,
		Engine: floodgate.NewEngine(),
		FC:     floodgate.NewFloodgate(floodgate.DefaultFloodgateConfig(30 * floodgate.KB)),
		Trace:  buf,
	})

	// A 12:1 incast: enough to exhaust the per-dst window at the spine
	// and source ToRs.
	dst := tp.Hosts[len(tp.Hosts)-1]
	for _, src := range floodgate.CrossRackSenders(tp, dst) {
		net.AddFlow(src, dst, 52*floodgate.KB, 0, floodgate.CatIncast)
	}
	net.Run(floodgate.Time(50 * floodgate.Millisecond))

	fmt.Printf("matched %d events; newest retained:\n\n", buf.Total())
	fmt.Print(buf.Dump())
	fmt.Println("\nPARK = packet held in a VOQ awaiting window; CREDIT = downstream replenishing it.")
}
