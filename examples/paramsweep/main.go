// Paramsweep: explore Floodgate's two tunables the way §6.5 does —
// the credit aggregation timer T (network overhead vs buffer vs FCT)
// and the delayCredit threshold — directly through the library API,
// printing one row per configuration.
package main

import (
	"flag"
	"fmt"

	"floodgate"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.15, "fabric scale in (0,1]")
		seed  = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()
	o := floodgate.Options{Scale: *scale, Seed: *seed}

	fmt.Println("credit timer sweep (fig17a-c):")
	tables, err := floodgate.RunExperiment("fig17", o)
	if err != nil {
		panic(err)
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}

	// A custom sweep the paper does not plot: the VOQ pool size.
	// Demonstrates assembling bespoke studies on the same machinery.
	fmt.Println("custom sweep: VOQ pool size under double incast")
	for _, voqs := range []int{1, 2, 4, 16, 100} {
		c := floodgate.DefaultLeafSpine()
		c.HostsPerToR = 8
		c.Spines = 2
		c.HostRate = floodgate.BitRate(float64(c.HostRate) * *scale)
		c.SpineRate = floodgate.BitRate(float64(c.SpineRate) * *scale)
		c.Prop = floodgate.Duration(float64(c.Prop) / *scale)
		tp := c.Build()

		fg := floodgate.DefaultFloodgateConfig(64 * floodgate.KB)
		fg.MaxVOQs = voqs
		scheme := floodgate.WithFloodgateConfig(floodgate.DCQCN(o), fg, "+Floodgate")

		// Two simultaneous incasts to different racks: with one VOQ they
		// must share (CRC fallback), with two or more they are isolated.
		d1 := tp.Hosts[len(tp.Hosts)-1]
		d2 := tp.Hosts[len(tp.Hosts)-9]
		var specs []floodgate.FlowSpec
		for i, src := range tp.Hosts[:32] {
			dst := d1
			if i%2 == 1 {
				dst = d2
			}
			if src == dst {
				continue
			}
			specs = append(specs, floodgate.FlowSpec{
				Src: src, Dst: dst, Size: 35 * 1500, Cat: floodgate.CatIncast,
			})
		}
		res := floodgate.Run(floodgate.RunConfig{
			Topo: tp, Scheme: scheme, Specs: specs,
			Duration: 2 * floodgate.Millisecond,
			Drain:    100 * floodgate.Millisecond,
			Seed:     *seed, Opt: o,
		})
		avg, p99 := floodgate.FCTStats(res.Stats.FCTs(floodgate.CatIncast))
		fmt.Printf("  maxVOQs %-4d completed %d/%d  used %-3d avgFCT %-10v p99 %v\n",
			voqs, res.Completed, res.Total, res.Stats.MaxVOQInUse, avg, p99)
	}
}
