//lint:hotpath request arrival, deadline, retry and hedge timers fire per attempt

package app

import (
	"floodgate/internal/device"
	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/trace"
	"floodgate/internal/units"
)

// reqState is the client-side state machine of one request. It lives
// on the client's shard only; every transition runs on that shard's
// engine (arrival, deadline, retry and hedge timers) or inside a
// completion callback of a flow the shard owns the receive side of.
type reqState struct {
	pl  *Plane
	idx int32 // request index into Dispatch.Reqs
	ci  int32 // index into Plane.clients

	attempts int
	hedges   int
	timeouts int
	quorum   int
	nreplied int
	replied  []bool // per worker, distinct-reply tracking

	resolved bool
	ok       bool
	shed     bool
	start    units.Time
	end      units.Time
	respRecv units.ByteSize // response payload of counted replies
}

// clientState is one client host's retry budget, jitter stream,
// breaker and latency observations.
type clientState struct {
	node    packet.NodeID
	rng     *sim.Rand // private jitter stream: (seed, client node ID)
	retries int       // budget remaining; -1 = unlimited
	breaker breakerState
	lat     latWindow
}

func (cs *clientState) takeRetry() bool {
	if cs.retries < 0 {
		return true
	}
	if cs.retries == 0 {
		return false
	}
	cs.retries--
	return true
}

// Plane is one shard's view of the application plane. It owns the
// requests whose client host the shard owns and the worker side of
// every request flow the shard receives; the Dispatch table is shared
// read-only. Wire the network's completion callback through
// Plane.OnFlowDone to activate it.
type Plane struct {
	net *device.Network
	d   *Dispatch

	states  []*reqState // by request index; nil when owned elsewhere
	order   []*reqState // owned requests in arrival order
	next    int         // next arrival to inject
	clients []*clientState

	// Monotone progress/diagnosis counters, read at shard barriers.
	resolved    int
	pendingReqs int // launched, unresolved
	retryTimers int // armed retry/hedge timers
	totTimeouts int
	totRetries  int
	totHedges   int
	totShed     int
}

// NewPlane builds the shard's plane and arms its arrival chain. Call
// after Cluster.SealFlows, once per shard, with that shard's Network.
func NewPlane(n *device.Network, d *Dispatch) *Plane {
	p := &Plane{net: n, d: d, states: make([]*reqState, len(d.Reqs))}
	cidx := make(map[packet.NodeID]int32, d.Cfg.Clients)
	for ri := range d.Reqs {
		rq := &d.Reqs[ri]
		if n.HostsByID[rq.Client] == nil {
			continue // another shard owns this client
		}
		ci, seen := cidx[rq.Client]
		if !seen {
			ci = int32(len(p.clients))
			cidx[rq.Client] = ci
			budget := -1
			if d.Cfg.RetryBudget > 0 {
				budget = d.Cfg.RetryBudget
			}
			p.clients = append(p.clients, &clientState{
				node:    rq.Client,
				rng:     sim.NewRand(n.Cfg.Seed ^ uint64(rq.Client)*0x9e3779b97f4a7c15),
				retries: budget,
				breaker: newBreakerState(d.Cfg.Breaker),
			})
		}
		rs := &reqState{
			pl: p, idx: int32(ri), ci: ci,
			quorum:  rq.Quorum,
			replied: make([]bool, len(rq.Workers)),
		}
		p.states[ri] = rs
		p.order = append(p.order, rs)
	}
	if len(p.order) > 0 {
		n.Eng.AtArg(p.d.Reqs[p.order[0].idx].Arrival, planeArriveFn, p)
	}
	return p
}

// planeArriveFn injects every owned request whose arrival time has
// come, then re-arms for the next one — one chained timer per shard,
// like the open-loop flow injector but at PriTimer (arrivals are
// application events, not wire events).
func planeArriveFn(a any) {
	p := a.(*Plane)
	now := p.net.Eng.Now()
	for p.next < len(p.order) && p.d.Reqs[p.order[p.next].idx].Arrival <= now {
		rs := p.order[p.next]
		p.next++
		p.arrive(rs, now)
	}
	if p.next < len(p.order) {
		p.net.Eng.AtArg(p.d.Reqs[p.order[p.next].idx].Arrival, planeArriveFn, p)
	}
}

func (p *Plane) arrive(rs *reqState, now units.Time) {
	p.net.Metrics.AppRequests.Inc()
	rs.start = now
	cs := p.clients[rs.ci]
	if cs.breaker.open(now) {
		rs.resolved, rs.shed = true, true
		rs.end = now
		p.resolved++
		p.totShed++
		p.net.Metrics.AppShed.Inc()
		p.net.TraceFlow(trace.OpAppDone, cs.node, p.d.attempts[rs.idx][0][0])
		return
	}
	p.pendingReqs++
	p.launch(rs, trace.OpAppReq)
	if h, ok := p.d.Cfg.Policy.(Hedger); ok && p.d.Cfg.MaxAttempts > 1 {
		delay := h.HedgeDelay(p.d.Cfg.Deadline, cs.lat.p95(), cs.lat.n)
		p.retryTimers++
		p.net.Eng.AfterArg(delay, reqHedgeFn, rs)
	}
}

// launch fires the next attempt's request flows and, for non-hedge
// launches, arms the attempt's deadline. The invariant that keeps the
// timer logic generation-free: at most one deadline is ever pending
// per request (none during backoff), because a new attempt launches
// only from arrival or from a retry timer armed by the previous
// deadline's expiry.
func (p *Plane) launch(rs *reqState, op trace.Op) {
	rs.attempts++
	flows := p.d.attempts[rs.idx][rs.attempts-1]
	cs := p.clients[rs.ci]
	for _, f := range flows {
		p.net.TraceFlow(op, cs.node, f)
		p.net.Launch(f)
	}
	if op != trace.OpAppHedge {
		p.net.Eng.AfterArg(p.d.Cfg.Deadline, reqDeadlineFn, rs)
	}
}

// reqDeadlineFn is the application deadline of the request's most
// recent non-hedge attempt.
func reqDeadlineFn(a any) {
	rs := a.(*reqState)
	if rs.resolved {
		return
	}
	p := rs.pl
	now := p.net.Eng.Now()
	rs.timeouts++
	p.totTimeouts++
	p.net.Metrics.AppTimeouts.Inc()
	cs := p.clients[rs.ci]
	p.net.TraceFlow(trace.OpAppTimeout, cs.node, p.d.attempts[rs.idx][rs.attempts-1][0])
	cs.breaker.record(true, now)
	if rs.attempts < p.d.Cfg.MaxAttempts && !cs.breaker.open(now) && cs.takeRetry() {
		delay := p.d.Cfg.Policy.Backoff(rs.attempts+1, cs.rng)
		p.retryTimers++
		p.net.Eng.AfterArg(delay, reqRetryFn, rs)
		return
	}
	p.resolve(rs, now, false)
}

// reqRetryFn launches the retry attempt the deadline scheduled, unless
// a quorum arrived during the backoff.
func reqRetryFn(a any) {
	rs := a.(*reqState)
	p := rs.pl
	p.retryTimers--
	if rs.resolved {
		return
	}
	p.totRetries++
	p.net.Metrics.AppRetries.Inc()
	p.launch(rs, trace.OpAppRetry)
}

// reqHedgeFn races a second attempt against the still-pending first
// one. It does not re-arm the deadline — the first attempt's deadline
// stays the request's deadline.
func reqHedgeFn(a any) {
	rs := a.(*reqState)
	p := rs.pl
	p.retryTimers--
	if rs.resolved || rs.attempts != 1 || rs.attempts >= p.d.Cfg.MaxAttempts {
		return
	}
	now := p.net.Eng.Now()
	cs := p.clients[rs.ci]
	if cs.breaker.open(now) || !cs.takeRetry() {
		return
	}
	rs.hedges++
	p.totHedges++
	p.net.Metrics.AppHedges.Inc()
	p.launch(rs, trace.OpAppHedge)
}

// resolve finishes a request (quorum reached or given up).
func (p *Plane) resolve(rs *reqState, now units.Time, ok bool) {
	rs.resolved, rs.ok = true, ok
	rs.end = now
	p.pendingReqs--
	p.resolved++
	cs := p.clients[rs.ci]
	if ok {
		lat := now.Sub(rs.start)
		p.net.Metrics.AppReqLatency.Observe(int64(lat))
		cs.lat.add(lat)
		cs.breaker.record(false, now)
	}
	p.net.TraceFlow(trace.OpAppDone, cs.node, p.d.attempts[rs.idx][0][0])
}

// OnFlowDone dispatches flow completions to the app plane. Request
// flows complete on the worker's shard (the receive side) and launch
// the response; response flows complete on the client's shard and
// count toward the quorum. Open-loop flows (Attempt == 0) are ignored.
func (p *Plane) OnFlowDone(f *device.Flow, now units.Time) {
	if f.Attempt == 0 {
		return
	}
	ro, ok := p.d.roleOf(f.ID)
	if !ok {
		return
	}
	if !ro.resp {
		// Worker side: answer with this attempt's response flow.
		p.net.Launch(ro.peer)
		return
	}
	rs := p.states[ro.req]
	p.net.Metrics.AppReplies.Inc()
	if rs.resolved || rs.replied[ro.worker] {
		return // late straggler or duplicate attempt's reply
	}
	rs.replied[ro.worker] = true
	rs.nreplied++
	rs.respRecv += f.Size
	if rs.nreplied >= rs.quorum {
		p.resolve(rs, now, true)
	}
}

// Resolved is the number of owned requests that have reached a
// terminal state (completed, given up or shed). Monotone; safe to sum
// across shards at a barrier as the app-plane progress signal.
func (p *Plane) Resolved() int { return p.resolved }

// StallState reports the plane's watchdog-relevant state: launched but
// unresolved requests, armed retry/hedge timers, and breakers
// currently open. Read only at shard barriers.
func (p *Plane) StallState(now units.Time) (pending, retryTimers, openBreakers int) {
	for _, cs := range p.clients {
		if cs.breaker.open(now) {
			openBreakers++
		}
	}
	return p.pendingReqs, p.retryTimers, openBreakers
}
