package app

import (
	"sort"

	"floodgate/internal/sim"
	"floodgate/internal/units"
)

// RetryPolicy decides how long a client waits after a deadline expiry
// before launching the next attempt. Implementations must be pure
// functions of (attempt, r): all randomness comes from r, the calling
// client's private deterministic stream, so backoff schedules are
// bit-identical across shard counts, parallelism and schedulers.
type RetryPolicy interface {
	// Name labels the policy in experiment tables.
	Name() string
	// Backoff returns the delay before launching attempt (>= 2).
	Backoff(attempt int, r *sim.Rand) units.Duration
}

// Hedger is the optional hedging extension of a RetryPolicy: when the
// policy implements it, every request's first attempt also arms a
// hedge timer; if the request is still unresolved when it fires (and
// budget remains), a second attempt is launched to race the first
// without waiting for the deadline.
type Hedger interface {
	// HedgeDelay returns how long after launch the hedge fires. p95 is
	// the client's observed request-latency p95 over samples completed
	// requests (0 until the first completion).
	HedgeDelay(deadline, p95 units.Duration, samples int) units.Duration
}

// FixedRetry retries after a constant delay (zero value: immediately).
type FixedRetry struct {
	Delay units.Duration
}

// Name implements RetryPolicy.
func (FixedRetry) Name() string { return "fixed" }

// Backoff implements RetryPolicy.
func (p FixedRetry) Backoff(int, *sim.Rand) units.Duration { return p.Delay }

// ExpBackoff doubles the delay per attempt with deterministic full
// jitter: attempt k waits uniformly in [d/2, d] for d = Base·2^(k-2)
// capped at Max. The jitter decorrelates the retries of clients that
// timed out on the same incast — without it they re-fire in lockstep
// and rebuild the very burst that killed attempt one.
type ExpBackoff struct {
	Base units.Duration // attempt-2 delay before jitter
	Max  units.Duration // cap (0: 8·Base)
}

// Name implements RetryPolicy.
func (ExpBackoff) Name() string { return "expbackoff" }

// Backoff implements RetryPolicy.
func (p ExpBackoff) Backoff(attempt int, r *sim.Rand) units.Duration {
	base, max := p.Base, p.Max
	if base <= 0 {
		base = 100 * units.Microsecond
	}
	if max <= 0 {
		max = 8 * base
	}
	d := base
	for k := 2; k < attempt && d < max; k++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + units.Duration(r.Int63n(int64(half)+1))
}

// Hedged races a second attempt at the client's observed p95 request
// latency (deadline/2 until enough samples accumulate); deadline
// expiries still back off exponentially via the embedded policy.
type Hedged struct {
	ExpBackoff
	// MinSamples is how many completions are needed before trusting the
	// observed p95 (default 8).
	MinSamples int
}

// Name implements RetryPolicy.
func (Hedged) Name() string { return "hedged" }

// HedgeDelay implements Hedger.
func (p Hedged) HedgeDelay(deadline, p95 units.Duration, samples int) units.Duration {
	min := p.MinSamples
	if min <= 0 {
		min = 8
	}
	if samples < min || p95 <= 0 {
		return deadline / 2
	}
	return p95
}

// latWindow is a client's sliding window of completed-request
// latencies, sized for cheap exact p95s.
type latWindow struct {
	buf [32]units.Duration
	idx int
	n   int
}

func (w *latWindow) add(d units.Duration) {
	w.buf[w.idx] = d
	w.idx = (w.idx + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// p95 returns the nearest-rank p95 of the window (0 when empty). The
// sort runs over a stack copy in deterministic ring order, so the
// result depends only on the observation sequence.
func (w *latWindow) p95() units.Duration {
	if w.n == 0 {
		return 0
	}
	var tmp [32]units.Duration
	vals := tmp[:w.n]
	copy(vals, w.buf[:w.n])
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	idx := (95*w.n + 99) / 100
	if idx < 1 {
		idx = 1
	}
	return vals[idx-1]
}

// breakerState is one client's circuit breaker: a ring of recent
// attempt outcomes; when the timeout fraction over a full window
// reaches the threshold the breaker opens until now+Cooldown, and the
// plane sheds arrivals (and suppresses retries) while it is open.
type breakerState struct {
	cfg       Breaker
	outcomes  []bool // ring; true = timeout
	idx, n    int
	fails     int
	openUntil units.Time
	opened    int // cumulative open transitions
}

func newBreakerState(cfg Breaker) breakerState {
	bs := breakerState{cfg: cfg}
	if cfg.Enabled() {
		bs.outcomes = make([]bool, cfg.Window)
	}
	return bs
}

// open reports whether the breaker is shedding at time now.
func (b *breakerState) open(now units.Time) bool { return b.openUntil > now }

// record feeds one attempt outcome and opens the breaker when a full
// window's timeout fraction reaches the threshold. The ring resets on
// open so the cooldown starts from a clean slate.
func (b *breakerState) record(timeout bool, now units.Time) {
	if !b.cfg.Enabled() {
		return
	}
	if b.n == len(b.outcomes) {
		if b.outcomes[b.idx] {
			b.fails--
		}
	} else {
		b.n++
	}
	b.outcomes[b.idx] = timeout
	if timeout {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.outcomes)
	if b.n == len(b.outcomes) && float64(b.fails) >= b.cfg.Threshold*float64(b.n) {
		b.openUntil = now.Add(b.cfg.Cooldown)
		b.opened++
		b.fails, b.n, b.idx = 0, 0, 0
		for i := range b.outcomes {
			b.outcomes[i] = false
		}
	}
}
