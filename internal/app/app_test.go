package app

import (
	"testing"

	"floodgate/internal/sim"
	"floodgate/internal/topo"
	"floodgate/internal/units"
)

func testTopo() *topo.Topology {
	return topo.LeafSpineConfig{
		Spines: 2, ToRs: 4, HostsPerToR: 4,
		HostRate: 10 * units.Gbps, SpineRate: 40 * units.Gbps,
		Prop: units.Microsecond,
	}.Build()
}

// TestExpBackoffDeterministic: two forks of the same stream must
// produce the same jittered backoff sequence — the property the
// per-client jitter streams rely on for cross-shard bit-identity.
func TestExpBackoffDeterministic(t *testing.T) {
	p := ExpBackoff{Base: 100 * units.Microsecond, Max: units.Millisecond}
	r1 := sim.NewRand(7)
	r2 := sim.NewRand(7)
	for attempt := 2; attempt <= 6; attempt++ {
		a, b := p.Backoff(attempt, r1), p.Backoff(attempt, r2)
		if a != b {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, a, b)
		}
		if a <= 0 {
			t.Fatalf("attempt %d: non-positive backoff %v", attempt, a)
		}
		if a > p.Max {
			t.Fatalf("attempt %d: backoff %v above cap %v", attempt, a, p.Max)
		}
	}
}

// TestExpBackoffGrows: the un-jittered floor (half the nominal delay)
// must grow geometrically until the cap.
func TestExpBackoffGrows(t *testing.T) {
	p := ExpBackoff{Base: 100 * units.Microsecond, Max: 10 * units.Millisecond}
	r := sim.NewRand(1)
	prev := units.Duration(0)
	for attempt := 2; attempt <= 5; attempt++ {
		d := p.Backoff(attempt, r)
		nominal := p.Base << (attempt - 2)
		if d < nominal/2 || d > nominal {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, nominal/2, nominal)
		}
		if d <= prev/4 {
			t.Fatalf("attempt %d: backoff %v collapsed vs previous %v", attempt, d, prev)
		}
		prev = d
	}
}

// TestFixedRetryIgnoresRand: the fixed policy must not consume the
// jitter stream (its delay is attempt- and rand-independent, so a nil
// stream is fine).
func TestFixedRetryIgnoresRand(t *testing.T) {
	p := FixedRetry{Delay: 50 * units.Microsecond}
	if d := p.Backoff(2, nil); d != 50*units.Microsecond {
		t.Fatalf("fixed backoff = %v, want 50us", d)
	}
}

// TestHedgedDelay: below the sample floor the hedge fires at half the
// deadline; with enough samples it tracks the observed p95.
func TestHedgedDelay(t *testing.T) {
	p := Hedged{}
	dl := 400 * units.Microsecond
	if d := p.HedgeDelay(dl, 123*units.Microsecond, 2); d != dl/2 {
		t.Fatalf("cold hedge delay = %v, want %v", d, dl/2)
	}
	if d := p.HedgeDelay(dl, 123*units.Microsecond, 50); d != 123*units.Microsecond {
		t.Fatalf("warm hedge delay = %v, want observed p95", d)
	}
}

// TestBreakerOpensAndCoolsDown drives the ring through a failure
// burst: it must stay closed until a full window is observed, open at
// the threshold, shed during the cooldown, and admit again after.
func TestBreakerOpensAndCoolsDown(t *testing.T) {
	cfg := Breaker{Window: 4, Threshold: 0.75, Cooldown: units.Millisecond}
	b := newBreakerState(cfg)
	now := units.Time(0)
	for i := 0; i < 3; i++ {
		b.record(true, now)
		if b.open(now) {
			t.Fatalf("breaker opened before a full window (after %d outcomes)", i+1)
		}
	}
	b.record(true, now)
	if !b.open(now) {
		t.Fatal("breaker closed after 4/4 timeouts at threshold 0.75")
	}
	if b.opened != 1 {
		t.Fatalf("opened count = %d, want 1", b.opened)
	}
	if b.open(now.Add(cfg.Cooldown)) {
		t.Fatal("breaker still open after the cooldown elapsed")
	}
	// The ring reset on open: a lone success must not re-open it.
	b.record(false, now.Add(cfg.Cooldown))
	if b.open(now.Add(cfg.Cooldown)) {
		t.Fatal("breaker re-opened on a success after reset")
	}
}

// TestBreakerBelowThresholdStaysClosed: 2/4 timeouts under a 0.75
// threshold never opens.
func TestBreakerBelowThresholdStaysClosed(t *testing.T) {
	b := newBreakerState(Breaker{Window: 4, Threshold: 0.75, Cooldown: units.Millisecond})
	pattern := []bool{true, false, true, false, true, false, true, false}
	for _, timeout := range pattern {
		b.record(timeout, 0)
	}
	if b.open(0) {
		t.Fatal("breaker opened at 50% timeout rate against a 75% threshold")
	}
}

// TestGenerateRequests pins the schedule's structural invariants: the
// canonical incast destination (last host) is never a client, workers
// are distinct hosts outside the client's rack, arrivals are spaced by
// Interval, and the same (topo, config, seed) regenerates the same
// schedule.
func TestGenerateRequests(t *testing.T) {
	tp := testTopo()
	cfg := Config{
		Requests: 8, Interval: 100 * units.Microsecond,
		Clients: 2, FanIn: 4, Quorum: 3,
		Deadline: units.Millisecond,
	}
	reqs := GenerateRequests(tp, cfg, 42)
	if len(reqs) != 8 {
		t.Fatalf("got %d requests, want 8", len(reqs))
	}
	stormDst := tp.Hosts[len(tp.Hosts)-1]
	for i, rq := range reqs {
		if rq.Client == stormDst {
			t.Fatalf("request %d: client is the canonical incast destination", i)
		}
		if rq.Arrival != units.Time(int64(i)*int64(cfg.Interval)) {
			t.Fatalf("request %d: arrival %v, want Interval-spaced", i, rq.Arrival)
		}
		if len(rq.Workers) != 4 || rq.Quorum != 3 {
			t.Fatalf("request %d: fan %d quorum %d, want 4/3", i, len(rq.Workers), rq.Quorum)
		}
		crack := tp.Node(rq.Client).Rack
		seen := map[int64]bool{}
		for _, w := range rq.Workers {
			if seen[int64(w)] {
				t.Fatalf("request %d: duplicate worker %v", i, w)
			}
			seen[int64(w)] = true
			if tp.Node(w).Rack == crack {
				t.Fatalf("request %d: worker %v in the client's rack", i, w)
			}
		}
		if len(rq.RespSize) != len(rq.Workers) {
			t.Fatalf("request %d: %d sizes for %d workers", i, len(rq.RespSize), len(rq.Workers))
		}
	}
	again := GenerateRequests(tp, cfg, 42)
	for i := range reqs {
		if reqs[i].Client != again[i].Client || reqs[i].Workers[0] != again[i].Workers[0] ||
			reqs[i].RespSize[0] != again[i].RespSize[0] {
			t.Fatalf("request %d: same seed regenerated a different schedule", i)
		}
	}
}

// TestQuorumClamp: a zero or over-fan quorum defaults to all workers.
func TestQuorumClamp(t *testing.T) {
	tp := testTopo()
	cfg := Config{Requests: 1, Interval: units.Microsecond, FanIn: 4, Quorum: 99,
		Deadline: units.Millisecond}
	reqs := GenerateRequests(tp, cfg, 1)
	if reqs[0].Quorum != len(reqs[0].Workers) {
		t.Fatalf("quorum %d not clamped to fan %d", reqs[0].Quorum, len(reqs[0].Workers))
	}
}

// TestLatWindowP95: nearest-rank p95 over the ring.
func TestLatWindowP95(t *testing.T) {
	var w latWindow
	for i := 1; i <= 20; i++ {
		w.add(units.Duration(i) * units.Microsecond)
	}
	if got := w.p95(); got != 19*units.Microsecond {
		t.Fatalf("p95 of 1..20us = %v, want 19us", got)
	}
}
