// Package app is the deterministic closed-loop application plane: a
// partition-aggregate / request-response RPC layer on top of the
// device flow machinery. A client issues a request by fanning small
// request flows out to N workers; each worker answers with a response
// flow back to the client, and the request completes when a quorum of
// distinct workers have replied. Every request carries an application
// deadline; on expiry the client consults a pluggable RetryPolicy
// (fixed, exponential backoff with deterministic jitter, hedging at
// the p95 of observed latency), spends from a retry budget, and a
// per-client circuit breaker sheds load when the timeout rate crosses
// a threshold.
//
// The plane exists because incast is born here: the response fan-in IS
// the incast, and a timeout-driven retry re-joins the very incast that
// caused it. Closing the loop lets the simulator report what users saw
// (p99/p999 request latency, timeout rate, retry amplification) next
// to the FCT tables.
//
// Determinism under sharding: every attempt flow is pre-registered
// (Cluster.AddAppFlow) in a fixed global order before SealFlows, so
// FlowIDs never depend on runtime behaviour; all runtime actions are
// shard-local (clients launch request flows they own, workers launch
// response flows they own, timers run on the owning shard's engine at
// the PriTimer rung); and backoff jitter is drawn from per-client PRNG
// streams derived from (seed, client node ID), never from a shared
// source. See DESIGN.md §12 for the full argument.
package app

import (
	"floodgate/internal/device"
	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/topo"
	"floodgate/internal/units"
	"floodgate/internal/workload"
)

// Breaker configures the per-client circuit breaker. The zero value
// disables it.
type Breaker struct {
	// Window is the number of recent attempt outcomes tracked per
	// client (0 disables the breaker).
	Window int
	// Threshold is the timeout fraction over a full window that opens
	// the breaker.
	Threshold float64
	// Cooldown is how long an open breaker sheds new requests before
	// closing again.
	Cooldown units.Duration
}

// Enabled reports whether the breaker is configured.
func (b Breaker) Enabled() bool { return b.Window > 0 }

// Config describes one closed-loop workload. The zero value is not
// runnable: Requests, Interval and Deadline must be set.
type Config struct {
	// Requests is the number of closed-loop requests to issue.
	Requests int
	// Interval spaces request arrivals (request i arrives at i·Interval).
	Interval units.Duration
	// Clients is the number of distinct client (aggregator) hosts,
	// taken from the tail of the host list and assigned round-robin
	// (default 1 — the classic single incast victim).
	Clients int
	// FanIn is the number of workers per request (partition-aggregate
	// width); 1 models a memcached-style request/response pair.
	FanIn int
	// Quorum is the number of distinct worker replies that complete a
	// request (0 = all FanIn of them).
	Quorum int
	// ReqSize is the per-worker request flow size (default 1 KB).
	ReqSize units.ByteSize
	// RespMin/RespMax bound the per-worker response size, drawn
	// uniformly at generation time (default 30–40 MTU, the paper's
	// incast flow size).
	RespMin, RespMax units.ByteSize
	// Deadline is the application deadline of each attempt window.
	Deadline units.Duration
	// MaxAttempts bounds the attempts per request, including the first
	// (default 3).
	MaxAttempts int
	// RetryBudget caps retries (and hedges) per client across the run;
	// 0 means unlimited.
	RetryBudget int
	// Policy governs retry timing (default FixedRetry{0}: immediate).
	Policy RetryPolicy
	// Breaker configures load shedding (zero value: disabled).
	Breaker Breaker
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Clients < 1 {
		c.Clients = 1
	}
	if c.FanIn < 1 {
		c.FanIn = 1
	}
	if c.ReqSize <= 0 {
		c.ReqSize = units.KB
	}
	if c.RespMin <= 0 {
		c.RespMin = 30 * packet.MTU
	}
	if c.RespMax < c.RespMin {
		c.RespMax = c.RespMin + 10*packet.MTU
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 3
	}
	if c.Policy == nil {
		c.Policy = FixedRetry{}
	}
	return c
}

// Request binds one closed-loop request to concrete hosts.
type Request struct {
	Client   packet.NodeID
	Workers  []packet.NodeID
	Arrival  units.Time
	RespSize []units.ByteSize // per worker, fixed across attempts
	Quorum   int              // replies needed (clamped to len(Workers))
}

// GenerateRequests pre-generates the request schedule: clients rotate
// over the Config.Clients hosts just before the last one — the last
// host is the canonical open-loop incast destination throughout the
// experiment suite, so clients are its rack mates: their cross-rack
// responses are exactly the victim traffic an untamed incast's PFC
// storm head-of-line blocks. Workers are a fresh random subset of the
// hosts outside the client's rack, and response sizes are drawn
// uniformly from [RespMin, RespMax]. Deterministic given (topology,
// config, seed).
func GenerateRequests(tp *topo.Topology, cfg Config, seed uint64) []Request {
	cfg = cfg.withDefaults()
	r := sim.NewRand(seed)
	nc := cfg.Clients
	if nc > len(tp.Hosts)-1 {
		nc = len(tp.Hosts) - 1
	}
	if nc < 1 {
		nc = 1
	}
	clients := tp.Hosts[len(tp.Hosts)-1-nc : len(tp.Hosts)-1]
	if len(tp.Hosts) == 1 {
		clients = tp.Hosts
	}
	reqs := make([]Request, 0, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		client := clients[i%nc]
		senders := workload.CrossRackSenders(tp, client)
		fan := cfg.FanIn
		if fan > len(senders) {
			fan = len(senders)
		}
		perm := r.Perm(len(senders))
		workers := make([]packet.NodeID, fan)
		sizes := make([]units.ByteSize, fan)
		for w := 0; w < fan; w++ {
			workers[w] = senders[perm[w]]
			sizes[w] = cfg.RespMin + units.ByteSize(r.Int63n(int64(cfg.RespMax-cfg.RespMin)+1))
		}
		q := cfg.Quorum
		if q <= 0 || q > fan {
			q = fan
		}
		reqs = append(reqs, Request{
			Client: client, Workers: workers,
			Arrival:  units.Time(int64(i) * int64(cfg.Interval)),
			RespSize: sizes, Quorum: q,
		})
	}
	return reqs
}

// role decodes what one app flow is for.
type role struct {
	req    int32
	worker int16
	resp   bool
	peer   *device.Flow // on request flows: the response to launch on completion
}

// Dispatch is the immutable flow→role table built at registration
// time and shared read-only by every shard's Plane (it is listed in
// floodlint's SharedImmutable audit).
type Dispatch struct {
	Cfg  Config
	Reqs []Request

	base     packet.FlowID
	roles    []role
	attempts [][][]*device.Flow // [req][attempt-1][worker] request flows
}

// Build registers every possible attempt flow on the cluster — for
// each request, MaxAttempts × FanIn request/response pairs — in a
// fixed global order, and returns the dispatch table. Must run after
// all open-loop AddFlow calls and before SealFlows. The flows are
// deferred (AddAppFlow): unused attempts never launch and cost only
// their registration.
func Build(c *device.Cluster, reqs []Request, cfg Config) *Dispatch {
	cfg = cfg.withDefaults()
	d := &Dispatch{Cfg: cfg, Reqs: reqs}
	d.attempts = make([][][]*device.Flow, len(reqs))
	for ri, rq := range reqs {
		d.attempts[ri] = make([][]*device.Flow, cfg.MaxAttempts)
		for a := 1; a <= cfg.MaxAttempts; a++ {
			row := make([]*device.Flow, len(rq.Workers))
			for wi, w := range rq.Workers {
				fq := c.AddAppFlow(rq.Client, w, cfg.ReqSize, rq.Arrival, packet.CatVictimPFC, a)
				fr := c.AddAppFlow(w, rq.Client, rq.RespSize[wi], rq.Arrival, packet.CatIncast, a)
				if d.base == 0 {
					d.base = fq.ID
				}
				row[wi] = fq
				d.roles = append(d.roles,
					role{req: int32(ri), worker: int16(wi), peer: fr},
					role{req: int32(ri), worker: int16(wi), resp: true})
			}
			d.attempts[ri][a-1] = row
		}
	}
	return d
}

// NumRequests is the request count (the run's app completion target).
func (d *Dispatch) NumRequests() int { return len(d.Reqs) }

// roleOf resolves an app flow's role; ok is false for open-loop flows.
func (d *Dispatch) roleOf(id packet.FlowID) (role, bool) {
	i := int(id - d.base)
	if d.base == 0 || i < 0 || i >= len(d.roles) {
		return role{}, false
	}
	return d.roles[i], true
}
