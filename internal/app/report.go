package app

import (
	"sort"

	"floodgate/internal/units"
)

// Record is the terminal outcome of one request, merged across shards
// by request index (each request is owned by exactly one shard, so the
// merge is a disjoint fill — deterministic for any partition).
type Record struct {
	Start, End units.Time
	OK         bool // quorum reached
	Shed       bool // rejected by an open circuit breaker
	Attempts   int  // including the first (0 when shed or never injected)
	Hedges     int
	Timeouts   int
	RespBytes  units.ByteSize // counted response payload (OK requests)
}

// SLO is the service-level scorecard of one closed-loop run.
type SLO struct {
	Requests  int
	Completed int // quorum reached
	Failed    int // exhausted attempts/budget without quorum
	Shed      int // rejected by an open breaker
	Unfired   int // never injected (run ended first)

	P50, P99, P999 units.Duration // completed-request latency
	TimeoutRate    float64        // requests with >= 1 deadline expiry
	Amplification  float64        // attempts per injected request
	Hedges         int
	Goodput        units.BitRate // counted response payload / duration
	ShedRate       float64
}

// Collect merges the per-shard planes' request outcomes into one
// Record slice in request order.
func Collect(planes []*Plane) []Record {
	if len(planes) == 0 {
		return nil
	}
	recs := make([]Record, planes[0].d.NumRequests())
	for _, p := range planes {
		for _, rs := range p.order {
			recs[rs.idx] = Record{
				Start: rs.start, End: rs.end,
				OK: rs.ok, Shed: rs.shed,
				Attempts: rs.attempts, Hedges: rs.hedges,
				Timeouts: rs.timeouts, RespBytes: rs.respRecv,
			}
		}
	}
	return recs
}

// BuildSLO scores the records over the run duration.
func BuildSLO(recs []Record, dur units.Duration) SLO {
	s := SLO{Requests: len(recs)}
	var lats []units.Duration
	var bytes units.ByteSize
	injected, attempts := 0, 0
	timedOut := 0
	for i := range recs {
		r := &recs[i]
		switch {
		case r.Shed:
			s.Shed++
		case r.Attempts == 0:
			s.Unfired++
		case r.OK:
			s.Completed++
			lats = append(lats, r.End.Sub(r.Start))
			bytes += r.RespBytes
		default:
			s.Failed++
		}
		if r.Attempts > 0 {
			injected++
			attempts += r.Attempts
		}
		if r.Timeouts > 0 {
			timedOut++
		}
		s.Hedges += r.Hedges
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		s.P50 = pctl(lats, 500)
		s.P99 = pctl(lats, 990)
		s.P999 = pctl(lats, 999)
	}
	if n := s.Requests - s.Unfired; n > 0 {
		s.TimeoutRate = float64(timedOut) / float64(n)
		s.ShedRate = float64(s.Shed) / float64(n)
	}
	if injected > 0 {
		s.Amplification = float64(attempts) / float64(injected)
	}
	s.Goodput = units.Rate(bytes, dur)
	return s
}

// pctl is the nearest-rank permille percentile of sorted values.
func pctl(sorted []units.Duration, permille int) units.Duration {
	idx := (permille*len(sorted) + 999) / 1000
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}
