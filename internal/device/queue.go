package device

import (
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// fifo is a byte-accounted packet queue. The ring grows on demand and
// never shrinks below its high-water mark, which keeps the hot path
// allocation-free after warm-up.
type fifo struct {
	buf   []*packet.Packet
	head  int
	count int
	bytes units.ByteSize

	// paused gates dequeue (BFC per-queue pause, Floodgate VOQ without
	// window). The port scheduler skips paused queues.
	paused bool
}

func (q *fifo) len() int             { return q.count }
func (q *fifo) size() units.ByteSize { return q.bytes }
func (q *fifo) empty() bool          { return q.count == 0 }

func (q *fifo) push(p *packet.Packet) {
	if q.count == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.count)%len(q.buf)] = p
	q.count++
	q.bytes += p.Size
}

func (q *fifo) pop() *packet.Packet {
	if q.count == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.bytes -= p.Size
	return p
}

func (q *fifo) peek() *packet.Packet {
	if q.count == 0 {
		return nil
	}
	return q.buf[q.head]
}

func (q *fifo) grow() {
	n := len(q.buf) * 2
	if n == 0 {
		n = 16
	}
	nb := make([]*packet.Packet, n)
	for i := 0; i < q.count; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}
