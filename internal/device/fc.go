// Flow-control plug-in surface. Floodgate, BFC and PFC-w/-tag are all
// per-switch modules hooked into the same three points of a switch's
// fast path: ingress classification (after routing), control-packet
// interception, and egress dequeue. The switch exposes the small
// mutation surface the modules need (enqueue to egress, send control
// frames upstream, buffer accounting for parked packets).
package device

import (
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// Verdict is a module's decision about an arriving data packet.
type Verdict struct {
	// Consumed means the module took ownership (e.g. parked the packet
	// in a VOQ). The switch keeps the buffer charged; the module must
	// eventually re-inject via Switch.InjectEgress or discard via
	// Switch.ReleaseParked.
	Consumed bool
	// Queue selects the egress data queue (0 = default). Used by BFC.
	Queue int
	// Trim replaces the payload with a header-only packet forwarded in
	// the control class (NDP cut-payload).
	Trim bool
	// Drop discards the packet (lossy fabrics without trimming).
	Drop bool
}

// FlowControl is a per-switch flow-control module.
type FlowControl interface {
	// OnIngress classifies an arriving data packet after routing chose
	// outPort. Buffer is already charged.
	OnIngress(p *packet.Packet, inPort, outPort int) Verdict
	// OnCtrl intercepts module control traffic (credits, pauses).
	// Return true if consumed; false forwards it like any control frame.
	OnCtrl(p *packet.Packet, inPort int) bool
	// OnDequeue observes a data packet leaving an egress queue for the
	// wire (BFC resume checks, Floodgate credit bookkeeping).
	OnDequeue(p *packet.Packet, outPort, queue int)
	// QueueSignal returns the queue length congestion signals (ECN/INT)
	// should see for this packet, or -1 to use the port's data backlog
	// (§8: incast packets report the VOQ sum instead).
	QueueSignal(p *packet.Packet, outPort int) units.ByteSize
}

// Restarter is an optional FlowControl extension: a module that can
// reinitialize its own soft state when its switch restarts (fault
// plane). Modules without it are rebuilt from the FCFactory instead,
// which loses any packets they had parked — implement Restarter if the
// module takes Consumed ownership of packets.
type Restarter interface {
	Restart()
}

// StallReporter is an optional FlowControl extension: a module that can
// describe the flow-control state relevant to a stalled run (consumed
// by the watchdog diagnosis and the fault counters).
type StallReporter interface {
	StallReport() StallInfo
}

// StallInfo is one module's contribution to a stall diagnosis.
type StallInfo struct {
	ExhaustedWindows int            // per-dst windows below one MTU
	WindowDeficit    units.ByteSize // un-credited (outstanding) window bytes
	ParkedBytes      units.ByteSize // bytes parked in VOQs
	Resyncs          int            // peer-restart resynchronizations seen
}

// FCFactory builds a module bound to one switch.
type FCFactory func(sw *Switch) FlowControl

// nopFC is the default pass-through module.
type nopFC struct{}

func (nopFC) OnIngress(*packet.Packet, int, int) Verdict     { return Verdict{} }
func (nopFC) OnCtrl(*packet.Packet, int) bool                { return false }
func (nopFC) OnDequeue(*packet.Packet, int, int)             {}
func (nopFC) QueueSignal(*packet.Packet, int) units.ByteSize { return -1 }
