//lint:hotpath flow wake/start scheduling and the packet pool run per packet

// Package device turns a topology into a running packet-level network:
// switches with shared buffers, PFC and ECN; hosts with paced,
// window-limited, go-back-N reliable flows driven by pluggable
// congestion control; and a FlowControl hook where Floodgate and the
// baseline schemes attach. Everything executes on one sim.Engine.
package device

import (
	"fmt"

	"floodgate/internal/cc"
	"floodgate/internal/forensics"
	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/trace"
	"floodgate/internal/units"
)

// PFCConfig controls Priority Flow Control on switches.
type PFCConfig struct {
	Enable bool
	// Alpha is the dynamic-threshold factor: an ingress port pauses its
	// upstream when its occupancy exceeds Alpha × free buffer (§6: α=2).
	Alpha float64
	// ResumeFraction scales the pause threshold down for resume
	// hysteresis (resume below Alpha × free × ResumeFraction).
	ResumeFraction float64
}

// ECNConfig controls RED/ECN marking on switch egress queues.
type ECNConfig struct {
	Enable bool
	KMin   units.ByteSize
	KMax   units.ByteSize
	PMax   float64
}

// NDPConfig enables cut-payload trimming on switches and receiver-
// driven pulls on hosts.
type NDPConfig struct {
	Enable     bool
	TrimThresh units.ByteSize // egress backlog above which payloads are trimmed
}

// ShardSpec restricts a Network to one shard of a partitioned
// topology (see Cluster). Assign maps NodeID to shard index; the
// Network builds devices only for nodes assigned to Index. A nil
// ShardSpec means the Network owns the whole topology.
type ShardSpec struct {
	Index  int
	Assign []int
}

// Config assembles a simulation.
type Config struct {
	Topo   *topo.Topology
	Engine *sim.Engine
	Stats  *stats.Collector

	// Seed feeds every device-layer PRNG (per-switch ECN/loss draws,
	// fault-plane Gilbert–Elliott chains). Each consumer derives its
	// own stream from (Seed, node ID), so draws are independent of
	// event interleaving and of how the topology is sharded.
	Seed uint64

	// Shard, when non-nil, builds only one shard's devices (the
	// sharded executor wires the shards together; see cluster.go).
	Shard *ShardSpec

	BufferSize units.ByteSize // per-switch shared buffer (default 20MB)
	PFC        PFCConfig
	ECN        ECNConfig
	INT        bool // append HPCC telemetry at egress
	NDP        NDPConfig

	CC      cc.Factory
	BaseRTT units.Duration // per-flow Env.BaseRTT (default: derived)
	RTO     units.Duration // go-back-N retransmission timeout (default 1ms)

	// CNPInterval rate-limits DCQCN notification packets per flow.
	CNPInterval units.Duration

	// QueuesPerPort is the number of egress data queues (1 unless BFC).
	QueuesPerPort int

	// FC builds the per-switch flow-control module (nil = none).
	FC FCFactory

	// PerDstPause enables host NICs to honour Floodgate dstPause frames.
	PerDstPause bool

	// LossRate injects uniform drops of data and credit frames on
	// switch-to-switch links.
	LossRate float64

	// CreditLossRate additionally drops only Floodgate credit/switchSYN
	// frames — the paper's Fig 12 stress, which isolates the switch
	// window-recovery path (PSN + switchSYN) from host retransmission.
	CreditLossRate float64

	// Trace, when non-nil, records packet lifecycle events (see the
	// trace package). Disabled tracing costs one nil check per event.
	Trace *trace.Buffer

	// Forensics, when non-nil, receives causal wait-state hooks (see
	// the forensics package). Each shard must get its own recorder
	// (Cluster forks siblings); disabled forensics costs one nil check
	// per hook site and allocates nothing.
	Forensics *forensics.Recorder

	// Metrics carries the instrument handles the devices update. The
	// zero value is inert (nil-safe handles), so unmetered runs pay
	// only embedded nil checks.
	Metrics NetMetrics
}

// Defaults fills unset fields.
func (c *Config) defaults() {
	if c.BufferSize == 0 {
		c.BufferSize = 20 * units.MB
	}
	if c.PFC.Alpha == 0 {
		c.PFC.Alpha = 2
	}
	if c.PFC.ResumeFraction == 0 {
		c.PFC.ResumeFraction = 0.8
	}
	if c.ECN.KMin == 0 {
		c.ECN.KMin = 40 * units.KB
	}
	if c.ECN.KMax == 0 {
		c.ECN.KMax = 160 * units.KB
	}
	if c.ECN.PMax == 0 {
		c.ECN.PMax = 0.2
	}
	if c.RTO == 0 {
		c.RTO = units.Millisecond
	}
	if c.CNPInterval == 0 {
		c.CNPInterval = 50 * units.Microsecond
	}
	if c.QueuesPerPort == 0 {
		c.QueuesPerPort = 1
	}
	if c.NDP.Enable && c.NDP.TrimThresh == 0 {
		c.NDP.TrimThresh = 8 * packet.MTU
	}
	if c.CC == nil {
		c.CC = cc.NewFixedWindow()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Stats == nil {
		c.Stats = stats.NewCollector(10 * units.Microsecond)
	}
}

// Network is the wired simulation: one device per topology node.
type Network struct {
	Cfg     Config
	Topo    *topo.Topology
	Eng     *sim.Engine
	Stats   *stats.Collector
	Metrics NetMetrics
	nextID  uint64

	// dirBase[id] is the number of directed ports owned by nodes with
	// smaller IDs: wire delivery priorities are PriWireBase + dirBase
	// [owner] + port index, giving every directed link a globally
	// unique same-timestamp priority (partition-invariant ordering).
	dirBase []uint32

	Switches  []*Switch // indexed by NodeID (nil for hosts)
	HostsByID []*Host   // indexed by NodeID (nil for switches)
	Hosts     []*Host   // dense, in topo.Hosts order

	flows   []*Flow // indexed by FlowID (ids are dense, starting at 1)
	pktPool []*packet.Packet

	// frx is this shard's forensics recorder (nil when disabled); every
	// hook site checks it before doing any work.
	frx *forensics.Recorder

	// faults is the runtime fault-plane state (nil without a plan); see
	// faults.go. delivered is the global payload-progress counter the
	// stall watchdog monitors.
	faults    *faultState
	delivered units.ByteSize

	// OnFlowDone, if set, fires when a flow's last byte is delivered.
	OnFlowDone func(f *Flow, finish units.Time)
}

// New wires a network from the config.
func New(cfg Config) *Network {
	cfg.defaults()
	if cfg.Topo == nil || cfg.Engine == nil {
		panic("device: Config.Topo and Config.Engine are required")
	}
	n := &Network{
		Cfg:       cfg,
		Topo:      cfg.Topo,
		Eng:       cfg.Engine,
		Stats:     cfg.Stats,
		Metrics:   cfg.Metrics,
		Switches:  make([]*Switch, len(cfg.Topo.Nodes)),
		HostsByID: make([]*Host, len(cfg.Topo.Nodes)),
		flows:     []*Flow{nil}, // FlowID 0 is unused
		frx:       cfg.Forensics,
	}
	if sp := cfg.Shard; sp != nil {
		// Distinct pktID streams per shard (ids are debug/trace labels;
		// uniqueness, not density, is what matters).
		n.nextID = uint64(sp.Index) << 56
	}
	n.dirBase = make([]uint32, len(cfg.Topo.Nodes))
	var dirCnt uint32
	for _, node := range cfg.Topo.Nodes {
		n.dirBase[node.ID] = dirCnt
		dirCnt += uint32(len(node.Ports))
	}
	if uint64(sim.PriWireBase)+uint64(dirCnt) >= uint64(sim.PriTimer) {
		panic("device: topology has too many directed ports for wire priorities")
	}
	if n.Cfg.BaseRTT == 0 {
		n.Cfg.BaseRTT = n.deriveBaseRTT()
	}
	// Deterministic scale gauges: pure functions of the frozen
	// topology, so they are safe in byte-identity-checked exports.
	// The heap gauge is deliberately NOT set here (see
	// SnapshotMemStats).
	t := cfg.Topo
	n.Metrics.ScaleHosts.Set(int64(t.NumHosts()))
	n.Metrics.ScaleRouteBytes.Set(t.RouteBytes())
	if hosts := int64(t.NumHosts()); hosts > 0 {
		n.Metrics.ScaleBytesPerHost.Set((t.StructBytes() + t.RouteBytes()) / hosts)
	}
	for _, node := range cfg.Topo.Nodes {
		if !n.owns(node.ID) {
			continue
		}
		if node.Kind == topo.SwitchNode {
			n.Switches[node.ID] = newSwitch(n, node)
		} else {
			h := newHost(n, node)
			n.HostsByID[node.ID] = h
			n.Hosts = append(n.Hosts, h)
		}
	}
	// Flow-control modules attach after all devices exist (they inspect
	// topology neighbours).
	if cfg.FC != nil {
		for _, sw := range n.Switches {
			if sw != nil {
				sw.fc = cfg.FC(sw)
			}
		}
	}
	return n
}

// deriveBaseRTT estimates the unloaded cross-fabric RTT: propagation
// both ways over the longest host-to-host path plus per-hop MTU
// serialization. For the paper's 2-tier fabric this lands at ~5.1 µs.
func (n *Network) deriveBaseRTT() units.Duration {
	t := n.Topo
	if len(t.Hosts) < 2 {
		return 10 * units.Microsecond
	}
	src := t.Hosts[0]
	dst := t.Hosts[len(t.Hosts)-1]
	var oneWay units.Duration
	cur := src
	for cur != dst {
		p := t.Node(cur).Ports[t.ECMP(cur, src, dst)]
		oneWay += p.Prop + units.TxTime(packet.MTU, p.Rate)
		cur = p.Peer
	}
	// Reverse path carries the (MTU-serialised) ACK per the convention
	// of symmetric base RTT; add control serialization which is tiny.
	return 2 * oneWay
}

// BaseRTT returns the flow-level base RTT in use.
func (n *Network) BaseRTT() units.Duration { return n.Cfg.BaseRTT }

// BaseBDP returns host line rate × base RTT for the topology's first
// host. Derived from the topology (not the shard's own host list) so
// every shard computes the same value.
func (n *Network) BaseBDP() units.ByteSize {
	p := &n.Topo.Node(n.Topo.Hosts[0]).Ports[0]
	return units.BDP(p.Rate, n.Cfg.BaseRTT)
}

// owns reports whether this network builds the device for a node.
func (n *Network) owns(id packet.NodeID) bool {
	s := n.Cfg.Shard
	return s == nil || s.Assign[id] == s.Index
}

// wirePri is the engine priority of the directed link (owner, port).
func (n *Network) wirePri(owner packet.NodeID, port int) uint32 {
	return sim.PriWireBase + n.dirBase[owner] + uint32(port)
}

// wireOf returns the in-flight chain of the directed link (owner,
// port); the owner must be built on this shard.
func (n *Network) wireOf(owner packet.NodeID, port int) *wire {
	if sw := n.Switches[owner]; sw != nil {
		return &sw.out[port].wire
	}
	return &n.HostsByID[owner].wire
}

// pktID mints a unique packet id.
func (n *Network) pktID() uint64 {
	n.nextID++
	return n.nextID
}

// PktID mints a unique packet id (for flow-control modules).
func (n *Network) PktID() uint64 { return n.pktID() }

// TraceEvent records a packet lifecycle point when tracing is enabled
// (used by devices and flow-control modules).
func (n *Network) TraceEvent(op trace.Op, node packet.NodeID, p *packet.Packet) {
	if n.Cfg.Trace != nil {
		n.Cfg.Trace.Record(trace.Of(n.Eng.Now(), op, node, p))
	}
}

// TraceAux records a lifecycle point carrying an op-specific
// counterpart node in the event's Aux field (the credited flow
// destination on OpCredit, the credit's source switch on OpUnpark) so
// the Perfetto exporter can link cause to effect.
func (n *Network) TraceAux(op trace.Op, node packet.NodeID, p *packet.Packet, aux packet.NodeID) {
	if n.Cfg.Trace != nil {
		e := trace.Of(n.Eng.Now(), op, node, p)
		e.Aux = aux
		n.Cfg.Trace.Record(e)
	}
}

// ForensicsRec returns the shard's forensics recorder (nil when
// disabled); flow-control modules cache it at construction.
func (n *Network) ForensicsRec() *forensics.Recorder { return n.frx }

// TraceFlow records a packet-less flow lifecycle point (e.g. an RTO
// rewind, which has no frame to borrow fields from): Seq carries the
// rewind target and Size the bytes that were in flight.
func (n *Network) TraceFlow(op trace.Op, node packet.NodeID, f *Flow) {
	if n.Cfg.Trace != nil {
		n.Cfg.Trace.Record(trace.Event{
			At: n.Eng.Now(), Op: op, Node: node, Kind: packet.Data,
			Flow: f.ID, Seq: f.sndUna, Size: f.inflight(), Dst: f.Dst,
		})
	}
}

// Device dispatch: deliver a packet to the node that owns the port.
func (n *Network) deliver(to packet.NodeID, p *packet.Packet, inPort int) {
	p.AssertLive("Network.deliver")
	if sw := n.Switches[to]; sw != nil {
		sw.receive(p, inPort)
		return
	}
	n.HostsByID[to].receive(p)
}

// Flow lookup (receiver and sender side share the Flow object).
func (n *Network) flow(id packet.FlowID) *Flow {
	if id == 0 || int(id) >= len(n.flows) {
		return nil
	}
	return n.flows[id]
}

// AddFlow registers a flow from src to dst starting at the given time.
// Returns the flow for inspection.
func (n *Network) AddFlow(src, dst packet.NodeID, size units.ByteSize, start units.Time, cat packet.Category) *Flow {
	if src == dst {
		panic("device: flow with src == dst")
	}
	if size <= 0 {
		panic("device: flow with non-positive size")
	}
	sh := n.HostsByID[src]
	dh := n.HostsByID[dst]
	if sh == nil || dh == nil {
		panic(fmt.Sprintf("device: flow endpoints must be hosts (%d -> %d)", src, dst))
	}
	id := packet.FlowID(len(n.flows))
	env := cc.Env{
		LinkRate: sh.port.Rate,
		BaseRTT:  n.Cfg.BaseRTT,
		BDP:      units.BDP(sh.port.Rate, n.Cfg.BaseRTT),
	}
	f := &Flow{
		ID: id, Src: src, Dst: dst, Size: size, Cat: cat,
		Start: start, ctrl: n.Cfg.CC(env), net: n,
	}
	n.flows = append(n.flows, f)
	if start == n.Eng.Now() {
		sh.startFlow(f)
	} else {
		n.Eng.AtArg(start, flowStartFn, f)
	}
	return f
}

// Launch starts a deferred application flow (Cluster.AddAppFlow) on
// its source host at the current simulation time. The caller must be
// the shard that owns f.Src — the application plane is per-shard, so
// this holds by construction. A flow launches at most once.
func (n *Network) Launch(f *Flow) {
	if !f.manual {
		panic("device: Launch on a non-deferred flow")
	}
	if f.launched {
		panic(fmt.Sprintf("device: flow %d launched twice", f.ID))
	}
	sh := n.HostsByID[f.Src]
	if sh == nil {
		panic(fmt.Sprintf("device: Launch of flow %d from a shard that does not own host %d", f.ID, f.Src))
	}
	f.launched = true
	f.Start = n.Eng.Now()
	sh.startFlow(f)
}

// flowStartFn is the capture-free deferred-start callback: workloads
// register tens of thousands of future flows up front.
func flowStartFn(a any) {
	f := a.(*Flow)
	f.net.HostsByID[f.Src].startFlow(f)
}

// Packet pooling: control frames and data segments are recycled at
// their terminal consumption points (receiver host, pause handler,
// drop), which removes the dominant GC pressure of high-rate runs.

// newData builds a pooled data segment.
func (n *Network) newData(flow packet.FlowID, src, dst packet.NodeID, seq, payload units.ByteSize, last bool) *packet.Packet {
	p := n.getPkt()
	p.ID = n.pktID()
	p.Kind = packet.Data
	p.Flow = flow
	p.Src = src
	p.Dst = dst
	p.Size = payload + packet.HeaderSize
	p.Seq = seq
	p.Payload = payload
	p.Last = last
	return p
}

// NewCtrl builds a pooled minimum-size control frame (exported for
// flow-control modules).
func (n *Network) NewCtrl(kind packet.Kind, flow packet.FlowID, src, dst packet.NodeID) *packet.Packet {
	p := n.getPkt()
	p.ID = n.pktID()
	p.Kind = kind
	p.Flow = flow
	p.Src = src
	p.Dst = dst
	p.Size = packet.CtrlSize
	return p
}

// pktChunk is the pool refill batch: one backing array serves this
// many pool misses.
const pktChunk = 64

func (n *Network) getPkt() *packet.Packet {
	if m := len(n.pktPool); m > 0 {
		p := n.pktPool[m-1]
		n.pktPool[m-1] = nil
		n.pktPool = n.pktPool[:m-1]
		p.ResetKeepBuffers()
		p.PoolAcquired()
		return p
	}
	// Refill in chunks: one backing allocation mints pktChunk packets,
	// cutting both alloc count and GC scan pressure at ramp-up.
	chunk := make([]packet.Packet, pktChunk)
	for i := pktChunk - 1; i > 0; i-- {
		n.pktPool = append(n.pktPool, &chunk[i])
	}
	return &chunk[0]
}

// Recycle returns a fully consumed packet to the pool. Callers must
// hold the only reference (exported for flow-control modules).
func (n *Network) Recycle(p *packet.Packet) {
	if p == nil {
		return
	}
	p.PoolReleased()
	n.pktPool = append(n.pktPool, p)
}

// Run advances the simulation to the given time.
func (n *Network) Run(until units.Time) { n.Eng.Run(until) }

// Finalize closes statistics intervals that are still open (PFC pause
// periods in progress when the run ends). Call once after the last Run.
func (n *Network) Finalize() {
	for _, sw := range n.Switches {
		if sw != nil {
			sw.finalizePFC()
		}
	}
	for _, h := range n.Hosts {
		h.finalizePFC()
	}
}

// Flows returns all registered flows (test and reporting helper).
func (n *Network) Flows() []*Flow { return n.flows[1:] }

// DeliveredBytes is the total payload delivered to receivers so far —
// the monotone progress signal the stall watchdog monitors.
func (n *Network) DeliveredBytes() units.ByteSize { return n.delivered }
