package device

import (
	"testing"

	"floodgate/internal/cc"
	"floodgate/internal/cc/dctcp"
	"floodgate/internal/cc/hpcc"
	"floodgate/internal/cc/timely"
	"floodgate/internal/packet"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/trace"
	"floodgate/internal/units"
)

// Integration tests: each congestion control against a real congested
// fabric, plus switch-behaviour details (control priority, INT hop
// structure, ECN marking bounds).

func ccIncast(t *testing.T, factory cc.Factory, int_ bool, ecn bool) (*Network, []*Flow) {
	t.Helper()
	cfg := sizedCfg(8)
	cfg.CC = factory
	cfg.INT = int_
	if ecn {
		cfg.ECN = ECNConfig{Enable: true, KMin: 20 * units.KB, KMax: 80 * units.KB, PMax: 0.2}
	}
	cfg.PFC = PFCConfig{Enable: true, Alpha: 2}
	n := New(cfg)
	hosts := cfg.Topo.Hosts
	dst := hosts[len(hosts)-1]
	var flows []*Flow
	for _, src := range hosts[:16] {
		flows = append(flows, n.AddFlow(src, dst, 300*units.KB, 0, packet.CatIncast))
	}
	n.Run(units.Time(300 * units.Millisecond))
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d incomplete", i)
		}
	}
	return n, flows
}

func TestTimelyUnderIncast(t *testing.T) {
	n, flows := ccIncast(t, timely.Default(), false, false)
	slowed := false
	for _, f := range flows {
		if f.Controller().Rate() < n.Hosts[0].LineRate() {
			slowed = true
		}
	}
	if !slowed {
		t.Fatal("TIMELY never reduced a rate under 16:1 incast")
	}
}

func TestHPCCUnderIncast(t *testing.T) {
	_, flows := ccIncast(t, hpcc.Default(), true, false)
	shrunk := false
	for _, f := range flows {
		if f.Controller().Window() < 13*units.KB { // below the ~13.5KB BDP
			shrunk = true
		}
	}
	if !shrunk {
		t.Fatal("HPCC never shrank a window under 16:1 incast")
	}
}

func TestDCTCPUnderIncast(t *testing.T) {
	_, flows := ccIncast(t, dctcp.Default(), false, true)
	shrunk := false
	for _, f := range flows {
		if f.Controller().Window() < 13*units.KB {
			shrunk = true
		}
	}
	if !shrunk {
		t.Fatal("DCTCP never shrank a window under ECN marking")
	}
}

func TestINTStackStructure(t *testing.T) {
	// Capture delivered packets' INT stacks via the tracer; a
	// cross-rack path has 3 switch hops, so three IntHop entries with
	// monotone timestamps and sane link rates.
	cfg := smallCfg()
	cfg.INT = true
	buf := trace.NewBuffer(16, trace.Filter{Ops: map[trace.Op]bool{trace.OpDeliver: true}})
	cfg.Trace = buf
	n := New(cfg)

	var hopCount []int
	n.OnFlowDone = nil
	// Hook: inspect INT on arrival via a custom receiver check — use a
	// dedicated flow and inspect after run through packet capture is
	// not retained, so validate indirectly via hop count field.
	f := n.AddFlow(cfg.Topo.Hosts[0], cfg.Topo.Hosts[5], 10*units.KB, 0, packet.CatVictimPFC)
	n.Run(units.Time(5 * units.Millisecond))
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	_ = hopCount
	evs := buf.FlowHistory(f.ID)
	if len(evs) == 0 {
		t.Fatal("no delivery events")
	}
	// Wire size at delivery includes 3 hops of INT (8B each).
	want := packet.MTU + 3*packet.IntHopSize
	full := false
	for _, e := range evs {
		if e.Size == want {
			full = true
		}
	}
	if !full {
		t.Fatalf("no delivered segment carried 3 INT hops (sizes: %v)", evs)
	}
}

func TestControlPriorityOverData(t *testing.T) {
	// With a deep data backlog at the last hop, ACKs from the congested
	// host must still flow: a reverse-direction flow should complete in
	// near-ideal time despite forward congestion.
	cfg := sizedCfg(8)
	n := New(cfg)
	hosts := cfg.Topo.Hosts
	dst := hosts[len(hosts)-1]
	for _, src := range hosts[:16] {
		n.AddFlow(src, dst, 500*units.KB, 0, packet.CatIncast)
	}
	// Reverse flow from the congested host outward.
	rev := n.AddFlow(dst, hosts[0], 50*units.KB, 0, packet.CatVictimPFC)
	n.Run(units.Time(300 * units.Millisecond))
	if !rev.Done() {
		t.Fatal("reverse flow incomplete")
	}
	// 50KB at 10Gbps is 40us; the reverse direction is uncongested so
	// anything within ~6x line time means ACKs were not starved.
	if rev.FCT() > 6*units.TxTime(50*units.KB, 10*units.Gbps) {
		t.Fatalf("reverse flow FCT %v suggests control starvation", rev.FCT())
	}
}

func TestECNMarkingBounds(t *testing.T) {
	// Below KMin no marks; saturated queues mark plenty.
	cfg := sizedCfg(8)
	cfg.ECN = ECNConfig{Enable: true, KMin: 5 * units.KB, KMax: 20 * units.KB, PMax: 0.2}
	cfg.CC = cc.NewFixedWindow()
	n := New(cfg)
	hosts := cfg.Topo.Hosts
	dst := hosts[len(hosts)-1]
	for _, src := range hosts[:16] {
		n.AddFlow(src, dst, 200*units.KB, 0, packet.CatIncast)
	}
	// Count CNP-eligible marks via a light flow that samples the queue.
	n.Run(units.Time(300 * units.Millisecond))
	// Indirect check: with FixedWindow there is no reaction, so marking
	// must not affect completion.
	for _, f := range n.Flows() {
		if !f.Done() {
			t.Fatal("flow incomplete")
		}
	}
}

func TestPFCPauseTimeMonotonicWithPressure(t *testing.T) {
	run := func(senders int) units.Duration {
		cfg := sizedCfg(8)
		cfg.BufferSize = 120 * units.KB
		cfg.PFC = PFCConfig{Enable: true, Alpha: 2}
		n := New(cfg)
		hosts := cfg.Topo.Hosts
		dst := hosts[len(hosts)-1]
		for _, src := range hosts[:senders] {
			n.AddFlow(src, dst, 200*units.KB, 0, packet.CatIncast)
		}
		n.Run(units.Time(300 * units.Millisecond))
		n.Finalize()
		var total units.Duration
		for _, l := range []topo.Layer{topo.LayerHost, topo.LayerToR, topo.LayerCore} {
			total += n.Stats.PFCPauseTime(l)
		}
		return total
	}
	light := run(4)
	heavy := run(16)
	if heavy <= light {
		t.Fatalf("PFC pause time should grow with incast degree: %v vs %v", light, heavy)
	}
}

func TestDeterministicAcrossSchemes(t *testing.T) {
	// Identical seeds and configs → identical event counts, even with
	// Floodgate-style control traffic (uses plain device config here).
	run := func() uint64 {
		cfg := sizedCfg(4)
		cfg.CC = dctcp.Default()
		cfg.ECN = ECNConfig{Enable: true, KMin: 20 * units.KB, KMax: 80 * units.KB, PMax: 0.2}
		n := New(cfg)
		hosts := cfg.Topo.Hosts
		for i := 0; i < 10; i++ {
			n.AddFlow(hosts[i%len(hosts)], hosts[(i+5)%len(hosts)], 80*units.KB,
				units.Time(i)*units.Time(10*units.Microsecond), packet.CatVictimPFC)
		}
		n.Run(units.Time(100 * units.Millisecond))
		return n.Eng.Processed
	}
	if run() != run() {
		t.Fatal("nondeterministic run")
	}
}

func TestEngineSeedIndependence(t *testing.T) {
	// Different ECN seeds must not affect determinism guarantees, only
	// outcomes: both runs complete all flows.
	for _, seed := range []uint64{1, 99} {
		cfg := sizedCfg(4)
		cfg.Seed = seed
		cfg.ECN = ECNConfig{Enable: true, KMin: 10 * units.KB, KMax: 40 * units.KB, PMax: 0.5}
		cfg.CC = dctcp.Default()
		n := New(cfg)
		hosts := cfg.Topo.Hosts
		f := n.AddFlow(hosts[0], hosts[7], 200*units.KB, 0, packet.CatVictimPFC)
		n.Run(units.Time(100 * units.Millisecond))
		if !f.Done() {
			t.Fatalf("seed %d: flow incomplete", seed)
		}
	}
}

func TestStatsCollectorWiring(t *testing.T) {
	cfg := smallCfg()
	col := stats.NewCollector(5 * units.Microsecond)
	cfg.Stats = col
	n := New(cfg)
	f := n.AddFlow(cfg.Topo.Hosts[0], cfg.Topo.Hosts[5], 30*units.KB, 0, packet.CatIncast)
	n.Run(units.Time(5 * units.Millisecond))
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if col.WireTotal(stats.WireData) == 0 {
		t.Fatal("no data bytes recorded on the wire")
	}
	if col.WireTotal(stats.WireCtrl) == 0 {
		t.Fatal("no control (ACK) bytes recorded")
	}
}

func TestNDPSmallFlowsRecoverTrims(t *testing.T) {
	// Regression: flows shorter than the unscheduled window must still
	// receive pulls for retransmissions of their trimmed segments.
	cfg := sizedCfg(8)
	cfg.NDP = NDPConfig{Enable: true, TrimThresh: 4 * packet.MTU}
	cfg.PFC.Enable = false
	n := New(cfg)
	hosts := cfg.Topo.Hosts
	dst := hosts[len(hosts)-1]
	var flows []*Flow
	for _, src := range hosts[:16] {
		// 35-MTU incast flows: smaller than the ~45-packet BDP window.
		flows = append(flows, n.AddFlow(src, dst, 35*MSS, 0, packet.CatIncast))
	}
	n.Run(units.Time(300 * units.Millisecond))
	if n.Stats.Trims == 0 {
		t.Fatal("expected trims with a 4-MTU threshold")
	}
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("sub-BDP NDP flow %d never completed (trims=%d)", i, n.Stats.Trims)
		}
	}
}
