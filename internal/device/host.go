//lint:hotpath NIC serialization, pacing and RTO timers fire per segment

package device

import (
	"fmt"

	"floodgate/internal/cc"
	"floodgate/internal/forensics"
	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/topo"
	"floodgate/internal/trace"
	"floodgate/internal/units"
)

// MSS is the maximum payload per data segment.
const MSS = packet.MTU - packet.HeaderSize

// Flow is one transfer from Src to Dst. The same object carries sender
// state (at the source host) and receiver state (at the destination
// host); the simulator is single-threaded so sharing is safe.
type Flow struct {
	ID    packet.FlowID
	Src   packet.NodeID
	Dst   packet.NodeID
	Size  units.ByteSize
	Cat   packet.Category
	Start units.Time

	// Attempt stamps application-plane flows with their attempt number
	// (1 = the original request, 2+ = retries/hedges) so forensics and
	// trace can attribute retry amplification causally. Open-loop flows
	// carry 0.
	Attempt int

	net  *Network
	ctrl cc.Controller

	// manual marks a deferred (application-launched) flow: the per-shard
	// injection chains skip it and Network.Launch starts it at runtime.
	// launched guards against double launches and lets reporting skip
	// attempt flows that never fired.
	manual   bool
	launched bool

	// Sender state.
	sndNxt, sndUna units.ByteSize
	maxSent        units.ByteSize // highest sndNxt reached (go-back-N rtx detection)
	nextSend       units.Time
	lastProgress   units.Time // last cumulative-ACK advance (lazy RTO)
	senderDone     bool
	queued         bool // in (or owed to) the host send queue
	inRtoQ         bool // in the host's retransmission-timeout queue

	// NDP sender state.
	pullCredits int
	rtxQ        []units.ByteSize

	// Receiver state.
	rcvNxt  units.ByteSize
	lastCNP units.Time
	cnpSent bool
	done    bool
	Finish  units.Time

	// NDP receiver state.
	seen      map[units.ByteSize]bool
	rcvdBytes units.ByteSize
	pullsSent int
	trims     int
}

// Done reports whether the last byte was delivered.
func (f *Flow) Done() bool { return f.done }

// Manual reports whether the flow is application-launched (deferred).
func (f *Flow) Manual() bool { return f.manual }

// Launched reports whether a deferred flow was actually started.
// Non-manual flows report true once their start time passed.
func (f *Flow) Launched() bool { return f.launched || !f.manual }

// FCT returns the completion time (valid once Done).
func (f *Flow) FCT() units.Duration { return f.Finish.Sub(f.Start) }

// Controller exposes the flow's congestion controller (for tests).
func (f *Flow) Controller() cc.Controller { return f.ctrl }

// totalPkts is the number of full-payload sends the flow needs.
func (f *Flow) totalPkts() int { return int((f.Size + MSS - 1) / MSS) }

func (f *Flow) inflight() units.ByteSize { return f.sndNxt - f.sndUna }

// Host is an end station: one NIC port, paced sender flows, receiver
// logic generating ACKs/CNPs (and NDP NACKs/pulls), and per-dst pause
// state for Floodgate's optional host support.
type Host struct {
	net  *Network
	node *topo.Node
	port *topo.Port

	ctrlQ fifo
	busy  bool

	// sendq holds flows believed sendable right now (round-robin by
	// rotation); blocked flows leave the queue and are re-enqueued by
	// the event that unblocks them (ACK frees window, pace timer
	// expires, pause lifts). This keeps the NIC scheduler O(1) per
	// packet regardless of how many flows are outstanding.
	sendq       []*Flow
	sendqHead   int
	senderFlows []*Flow // all sender-side flows not yet fully acked (pause-resume scans)

	// rtoQ is a FIFO of flows with a pending retransmission timeout;
	// one engine timer serves the head. Deadlines are re-derived from
	// lastProgress when a flow surfaces, so ACK progress costs nothing.
	// A flow whose progress advanced re-queues instead of firing; this
	// can delay an individual flow's timeout by up to one RTO, which is
	// harmless for a coarse go-back-N timer.
	rtoQ     []*Flow
	rtoHead  int
	rtoTimer sim.Handle

	pfcPaused bool
	pfcStart  units.Time
	pfcCum    units.Duration // closed PFC pause time (forensics overlap basis)

	pausedDst   map[packet.NodeID]bool
	pausedFlows map[packet.FlowID]bool // BFC per-flow (NIC-queue) pause

	// NDP pull pacing.
	pullQ    []packet.FlowID
	pullBusy bool

	// The in-flight chain toward the ToR (see wire.go).
	wire wire
}

// hostTxDoneFn completes the NIC serialization.
func hostTxDoneFn(a any) {
	h := a.(*Host)
	h.busy = false
	h.kick()
}

// flowWakeFn fires a flow's pacing timer: the flow becomes sendable.
func flowWakeFn(a any) {
	f := a.(*Flow)
	f.queued = false
	h := f.net.HostsByID[f.Src]
	h.enqueue(f)
	h.kick()
}

// hostPullFn continues the NDP pull pacer.
func hostPullFn(a any) {
	h := a.(*Host)
	h.pullBusy = false
	h.pacePulls()
}

// hostRTOFn services the host's retransmission-timeout queue.
func hostRTOFn(a any) { a.(*Host).serviceRTO() }

func newHost(n *Network, node *topo.Node) *Host {
	if len(node.Ports) != 1 {
		panic("device: hosts must have exactly one port")
	}
	h := &Host{
		net:         n,
		node:        node,
		port:        &node.Ports[0],
		pausedDst:   make(map[packet.NodeID]bool),
		pausedFlows: make(map[packet.FlowID]bool),
	}
	h.wire.init(n, h.port.Peer, h.port.PeerPort, n.wirePri(node.ID, 0))
	return h
}

// ID returns the host's node id.
func (h *Host) ID() packet.NodeID { return h.node.ID }

// LineRate returns the NIC rate.
func (h *Host) LineRate() units.BitRate { return h.port.Rate }

// startFlow registers a new sender flow and kicks the NIC.
func (h *Host) startFlow(f *Flow) {
	h.senderFlows = append(h.senderFlows, f)
	h.enqueue(f)
	h.kick()
}

// pauseCumNow is the host's cumulative PFC-paused duration at now,
// including the still-open interval. Forensics uses the difference of
// two readings to split a sendable wait into busy and paused parts.
func (h *Host) pauseCumNow(now units.Time) units.Duration {
	c := h.pfcCum
	if h.pfcPaused {
		c += now.Sub(h.pfcStart)
	}
	return c
}

// frxFlow records a sender wait-state transition. Callers gate on
// h.net.frx != nil so the disabled path is one load and branch.
func (h *Host) frxFlow(f *Flow, st forensics.SendState) {
	now := h.net.Eng.Now()
	h.net.frx.FlowState(f.ID, st, now, h.pauseCumNow(now))
}

// wantsSend reports whether the flow has anything left to emit.
func (f *Flow) wantsSend(ndp bool) bool {
	if f.senderDone {
		return false
	}
	if ndp && len(f.rtxQ) > 0 {
		return true
	}
	return f.sndNxt < f.Size
}

// enqueue adds a flow to the send queue unless it is already there
// (or owed to it via a pending pace timer).
func (h *Host) enqueue(f *Flow) {
	if f.queued || !f.wantsSend(h.net.Cfg.NDP.Enable) {
		return
	}
	f.queued = true
	h.sendq = append(h.sendq, f)
	if h.net.frx != nil {
		h.frxFlow(f, forensics.SendSendable)
	}
}

// popSendq removes the next queued flow, compacting lazily.
func (h *Host) popSendq() *Flow {
	if h.sendqHead >= len(h.sendq) {
		return nil
	}
	f := h.sendq[h.sendqHead]
	h.sendq[h.sendqHead] = nil
	h.sendqHead++
	if h.sendqHead > 64 && h.sendqHead*2 >= len(h.sendq) {
		n := copy(h.sendq, h.sendq[h.sendqHead:])
		for i := n; i < len(h.sendq); i++ {
			h.sendq[i] = nil
		}
		h.sendq = h.sendq[:n]
		h.sendqHead = 0
	}
	return f
}

// ---- Receive paths ----

func (h *Host) receive(p *packet.Packet) {
	now := h.net.Eng.Now()
	switch p.Kind {
	case packet.PFCPause:
		if !h.pfcPaused {
			h.pfcPaused = true
			h.pfcStart = now
			h.net.Metrics.PFCPauses.Inc()
			h.net.Metrics.PFCPortsPaused.Add(1)
		}
	case packet.PFCResume:
		if h.pfcPaused {
			h.pfcPaused = false
			h.pfcCum += now.Sub(h.pfcStart)
			h.net.Stats.PFCPaused(topo.LayerHost, now.Sub(h.pfcStart))
			h.net.Metrics.PFCPortsPaused.Add(-1)
			h.kick()
		}
	case packet.DstPause:
		if !h.pausedDst[p.PauseDst] {
			h.pausedDst[p.PauseDst] = true
			h.net.Metrics.HostPausedDsts.Add(1)
		}
	case packet.DstResume:
		if h.pausedDst[p.PauseDst] {
			delete(h.pausedDst, p.PauseDst)
			h.net.Metrics.HostPausedDsts.Add(-1)
		}
		h.wakeDst(p.PauseDst)
	case packet.BFCPause:
		if !h.pausedFlows[p.Flow] {
			h.pausedFlows[p.Flow] = true
			h.net.Metrics.HostPausedFlows.Add(1)
		}
	case packet.BFCResume:
		if h.pausedFlows[p.Flow] {
			delete(h.pausedFlows, p.Flow)
			h.net.Metrics.HostPausedFlows.Add(-1)
		}
		if f := h.net.flow(p.Flow); f != nil {
			h.enqueue(f)
			h.kick()
		}
	case packet.Data:
		h.receiveData(p, now)
	case packet.Ack:
		h.receiveAck(p, now)
	case packet.CNP:
		if f := h.net.flow(p.Flow); f != nil {
			f.ctrl.OnCNP(now)
		}
	case packet.Nack:
		h.receiveNack(p)
	case packet.Pull:
		if f := h.net.flow(p.Flow); f != nil && !f.senderDone {
			f.pullCredits++
			h.enqueue(f)
			h.kick()
		}
	}
	// Every frame terminates here; return it to the pool.
	h.net.Recycle(p)
}

// wakeDst re-enqueues flows toward a destination whose per-dst pause
// lifted, compacting finished senders from the scan list on the way.
func (h *Host) wakeDst(dst packet.NodeID) {
	live := h.senderFlows[:0]
	for _, f := range h.senderFlows {
		if f.senderDone {
			continue
		}
		live = append(live, f)
		if f.Dst == dst {
			h.enqueue(f)
		}
	}
	for i := len(live); i < len(h.senderFlows); i++ {
		h.senderFlows[i] = nil
	}
	h.senderFlows = live
	h.kick()
}

// clearPFC forgets an inbound PFC pause (used by the fault plane when
// the link that carried — or lost — the resume comes back up).
func (h *Host) clearPFC() {
	if !h.pfcPaused {
		return
	}
	h.pfcPaused = false
	h.pfcCum += h.net.Eng.Now().Sub(h.pfcStart)
	h.net.Stats.PFCPaused(topo.LayerHost, h.net.Eng.Now().Sub(h.pfcStart))
	h.net.Metrics.PFCPortsPaused.Add(-1)
	h.kick()
}

// onPeerReset reacts to the host's ToR restarting: every pause the
// switch held on the host (PFC, per-dst, per-flow) died with its state,
// so forget them all and wake the blocked flows.
func (h *Host) onPeerReset() {
	h.clearPFC()
	h.net.Metrics.HostPausedDsts.Add(-int64(len(h.pausedDst)))
	h.net.Metrics.HostPausedFlows.Add(-int64(len(h.pausedFlows)))
	clear(h.pausedDst)
	clear(h.pausedFlows)
	h.wakeAll()
}

// wakeAll re-enqueues every live sender flow (pause state was reset),
// compacting finished senders from the scan list on the way.
func (h *Host) wakeAll() {
	live := h.senderFlows[:0]
	for _, f := range h.senderFlows {
		if f.senderDone {
			continue
		}
		live = append(live, f)
		h.enqueue(f)
	}
	for i := len(live); i < len(h.senderFlows); i++ {
		h.senderFlows[i] = nil
	}
	h.senderFlows = live
	h.kick()
}

// finalizePFC closes an open host pause interval at the end of a run.
func (h *Host) finalizePFC() {
	if h.pfcPaused {
		h.pfcCum += h.net.Eng.Now().Sub(h.pfcStart)
		h.net.Stats.PFCPaused(topo.LayerHost, h.net.Eng.Now().Sub(h.pfcStart))
		h.pfcStart = h.net.Eng.Now()
	}
}

func (h *Host) receiveData(p *packet.Packet, now units.Time) {
	h.net.TraceEvent(trace.OpDeliver, h.node.ID, p)
	f := h.net.flow(p.Flow)
	if f == nil {
		return
	}
	if h.net.Cfg.NDP.Enable {
		if !f.done {
			h.receiveDataNDP(f, p, now)
		}
		return
	}
	if f.done {
		// Straggler or retransmitted segment after completion: re-ACK so
		// a sender whose final cumulative ACK was lost stops rewinding.
		// (The sender may live on another shard and cannot peek at
		// receiver state, so silence would loop its RTO forever.)
		ack := h.net.NewCtrl(packet.Ack, f.ID, h.node.ID, f.Src)
		ack.AckSeq = f.rcvNxt
		h.sendCtrl(ack)
		return
	}
	// Go-back-N receiver: in-order delivery only.
	if p.Seq == f.rcvNxt {
		f.rcvNxt += p.Payload
		h.net.delivered += p.Payload
		h.net.Stats.Received(now, f.Cat, p.Payload)
		if f.rcvNxt >= f.Size {
			h.completeFlow(f, now)
		}
	}
	// DCQCN notification point: reflect marks as rate-limited CNPs.
	if p.ECN && (!f.cnpSent || now.Sub(f.lastCNP) >= h.net.Cfg.CNPInterval) {
		f.lastCNP = now
		f.cnpSent = true
		h.sendCtrl(h.net.NewCtrl(packet.CNP, f.ID, h.node.ID, f.Src))
	}
	// Cumulative ACK carrying RTT echo and INT telemetry (copied, so
	// both packets recycle independently).
	ack := h.net.NewCtrl(packet.Ack, f.ID, h.node.ID, f.Src)
	ack.AckSeq = f.rcvNxt
	ack.EchoECN = p.ECN
	ack.SentAt = p.SentAt
	if len(p.Int) > 0 {
		ack.Int = append(ack.Int[:0], p.Int...)
		ack.Size += units.ByteSize(len(p.Int)) * packet.IntHopSize
	}
	h.sendCtrl(ack)
}

func (h *Host) receiveDataNDP(f *Flow, p *packet.Packet, now units.Time) {
	if p.Trimmed {
		// Cut payload: NACK the segment so the sender queues it for
		// retransmission, then pull it.
		f.trims++
		nack := h.net.NewCtrl(packet.Nack, f.ID, h.node.ID, f.Src)
		nack.AckSeq = p.Seq
		h.sendCtrl(nack)
		h.maybePull(f)
		return
	}
	if f.seen == nil {
		f.seen = make(map[units.ByteSize]bool)
	}
	if !f.seen[p.Seq] {
		f.seen[p.Seq] = true
		f.rcvdBytes += p.Payload
		h.net.delivered += p.Payload
		h.net.Stats.Received(now, f.Cat, p.Payload)
		if f.rcvdBytes >= f.Size {
			h.completeFlow(f, now)
			return
		}
	}
	h.maybePull(f)
}

// maybePull queues one pull token if the sender still needs credit to
// cover every remaining segment (including retransmissions of trims).
func (h *Host) maybePull(f *Flow) {
	unscheduled := int((h.net.BaseBDP() + MSS - 1) / MSS)
	// A flow shorter than the unscheduled window consumed only its own
	// packet count of free sends; retransmissions of its trimmed
	// segments still need pulls.
	if t := f.totalPkts(); unscheduled > t {
		unscheduled = t
	}
	needed := f.totalPkts() + f.trims - unscheduled
	if f.pullsSent >= needed || f.done {
		return
	}
	f.pullsSent++
	h.pullQ = append(h.pullQ, f.ID)
	h.pacePulls()
}

// pacePulls emits queued pulls at one per MTU-time, emulating NDP's
// receiver-paced pull queue.
func (h *Host) pacePulls() {
	if h.pullBusy || len(h.pullQ) == 0 {
		return
	}
	id := h.pullQ[0]
	h.pullQ = h.pullQ[1:]
	f := h.net.flow(id)
	if f != nil && !f.done {
		h.sendCtrl(h.net.NewCtrl(packet.Pull, f.ID, h.node.ID, f.Src))
	}
	h.pullBusy = true
	h.net.Eng.AfterArg(units.TxTime(packet.MTU, h.port.Rate), hostPullFn, h)
}

func (h *Host) completeFlow(f *Flow, now units.Time) {
	f.done = true
	f.Finish = now
	h.net.Stats.FlowDone(uint64(f.ID), f.Cat, f.Size, f.Start, now, h.port.Rate)
	h.net.Metrics.FCT.Observe(int64(now.Sub(f.Start)))
	if h.net.OnFlowDone != nil {
		h.net.OnFlowDone(f, now)
	}
}

func (h *Host) receiveAck(p *packet.Packet, now units.Time) {
	f := h.net.flow(p.Flow)
	if f == nil {
		return
	}
	var rtt units.Duration
	if p.SentAt > 0 {
		rtt = now.Sub(p.SentAt)
	}
	f.ctrl.OnAck(now, p, rtt)
	if p.AckSeq > f.sndUna {
		f.sndUna = p.AckSeq
		f.lastProgress = now
		if f.sndUna >= f.Size {
			f.senderDone = true // its rtoQ entry is skipped when due
		} else {
			// Freed window may unblock the flow.
			h.enqueue(f)
		}
		h.kick()
	}
}

func (h *Host) receiveNack(p *packet.Packet) {
	f := h.net.flow(p.Flow)
	if f == nil || f.senderDone {
		return
	}
	f.rtxQ = append(f.rtxQ, p.AckSeq)
	h.net.Stats.Retransmit()
	h.enqueue(f)
	h.kick()
}

// armRTO places the flow on the host's timeout queue if absent.
func (h *Host) armRTO(f *Flow) {
	if h.net.Cfg.NDP.Enable || f.inRtoQ {
		return // NDP recovers via NACK/pull, not timeouts
	}
	f.lastProgress = h.net.Eng.Now()
	f.inRtoQ = true
	h.rtoQ = append(h.rtoQ, f)
	h.ensureRTOTimer()
}

func (h *Host) ensureRTOTimer() {
	if h.rtoTimer.Active() || h.rtoHead >= len(h.rtoQ) {
		return
	}
	head := h.rtoQ[h.rtoHead]
	h.rtoTimer = h.net.Eng.AtArg(head.lastProgress.Add(h.net.Cfg.RTO), hostRTOFn, h)
}

// serviceRTO pops expired entries: finished flows drop out, recently
// progressing flows re-queue, stalled flows go-back-N.
func (h *Host) serviceRTO() {
	now := h.net.Eng.Now()
	fired := false
	for h.rtoHead < len(h.rtoQ) {
		f := h.rtoQ[h.rtoHead]
		if !f.senderDone && f.lastProgress.Add(h.net.Cfg.RTO) > now {
			break // head not yet due; re-arm for it below
		}
		h.rtoQ[h.rtoHead] = nil
		h.rtoHead++
		f.inRtoQ = false
		// senderDone alone gates here: done is receiver-side state, which
		// may live on another shard. A sender that never saw its final
		// ACK retransmits and the receiver re-ACKs (see receiveData).
		if f.senderDone {
			continue
		}
		// Stalled: rewind and retransmit.
		if f.sndNxt > f.sndUna {
			h.net.TraceFlow(trace.OpRTO, h.node.ID, f)
			f.sndNxt = f.sndUna
			h.net.Stats.Retransmit()
			h.net.Metrics.RTOs.Inc()
		}
		f.lastProgress = now
		f.inRtoQ = true
		h.rtoQ = append(h.rtoQ, f)
		h.enqueue(f)
		fired = true
	}
	if h.rtoHead > 64 && h.rtoHead*2 >= len(h.rtoQ) {
		n := copy(h.rtoQ, h.rtoQ[h.rtoHead:])
		for i := n; i < len(h.rtoQ); i++ {
			h.rtoQ[i] = nil
		}
		h.rtoQ = h.rtoQ[:n]
		h.rtoHead = 0
	}
	h.ensureRTOTimer()
	if fired {
		h.kick()
	}
}

// ---- Transmit path ----

// sendCtrl queues a control frame with strict priority over data.
func (h *Host) sendCtrl(p *packet.Packet) {
	h.ctrlQ.push(p)
	h.kick()
}

// kick runs the NIC scheduler: control first, then one data segment
// from the next sendable flow. Flows that turn out to be blocked fall
// out of the queue; the unblocking event re-enqueues them, so the
// scheduler does O(1) amortised work per packet.
func (h *Host) kick() {
	if h.busy {
		return
	}
	if !h.ctrlQ.empty() {
		h.transmit(h.ctrlQ.pop())
		return
	}
	if h.pfcPaused {
		return
	}
	now := h.net.Eng.Now()
	ndp := h.net.Cfg.NDP.Enable
	for {
		f := h.popSendq()
		if f == nil {
			return
		}
		f.queued = false
		if !f.wantsSend(ndp) {
			if h.net.frx != nil {
				h.frxFlow(f, forensics.SendNet)
			}
			continue
		}
		if (len(h.pausedDst) != 0 && h.pausedDst[f.Dst]) ||
			(len(h.pausedFlows) != 0 && h.pausedFlows[f.ID]) {
			if h.net.frx != nil {
				h.frxFlow(f, forensics.SendPaused)
			}
			continue // resume re-enqueues
		}
		if ndp {
			canRtx := len(f.rtxQ) > 0 && f.pullCredits > 0
			canNew := f.sndNxt < f.Size && (f.sndNxt < h.net.BaseBDP() || f.pullCredits > 0)
			if !canRtx && !canNew {
				if h.net.frx != nil {
					h.frxFlow(f, forensics.SendWindow)
				}
				continue // a Pull re-enqueues
			}
		} else {
			payload := f.Size - f.sndNxt
			if payload > MSS {
				payload = MSS
			}
			if f.inflight() > 0 && f.inflight()+payload > f.ctrl.Window() {
				if h.net.frx != nil {
					h.frxFlow(f, forensics.SendWindow)
				}
				continue // an ACK re-enqueues
			}
			if f.nextSend > now {
				// Pacing: the flow stays owed to the queue; its wake
				// timer re-enqueues it.
				if h.net.frx != nil {
					h.frxFlow(f, forensics.SendPaced)
				}
				f.queued = true
				h.net.Eng.AtArg(f.nextSend, flowWakeFn, f)
				continue
			}
		}
		h.sendSegment(f, now)
		return
	}
}

// sendSegment emits the flow's next data packet (or an NDP rtx).
func (h *Host) sendSegment(f *Flow, now units.Time) {
	var seq units.ByteSize
	isRtx := false
	if h.net.Cfg.NDP.Enable && len(f.rtxQ) > 0 && f.pullCredits > 0 {
		seq = f.rtxQ[0]
		f.rtxQ = f.rtxQ[1:]
		f.pullCredits--
		isRtx = true
	} else {
		seq = f.sndNxt
		if h.net.Cfg.NDP.Enable && seq >= h.net.BaseBDP() {
			f.pullCredits--
		}
		// Go-back-N resend: the timeout rewound sndNxt below the
		// furthest byte ever emitted.
		isRtx = seq < f.maxSent
	}
	payload := f.Size - seq
	if payload > MSS {
		payload = MSS
	}
	last := seq+payload >= f.Size
	p := h.net.newData(f.ID, f.Src, f.Dst, seq, payload, last)
	p.Cat = f.Cat
	p.Retrans = isRtx
	p.SentAt = now
	p.InPort = -1
	p.UpstreamQ = -1 // hosts have per-flow queues, not indexed ones
	if !isRtx || seq == f.sndNxt {
		f.sndNxt = seq + payload
		if f.sndNxt > f.maxSent {
			f.maxSent = f.sndNxt
		}
	}
	f.nextSend = now.Add(units.TxTime(p.Size, f.ctrl.Rate()))
	f.ctrl.OnSend(now, p.Size)
	h.armRTO(f)
	h.enqueue(f) // rotate to the queue tail if more remains
	if h.net.frx != nil && !f.queued {
		// Everything emitted: the flow now waits on the network. A later
		// re-enqueue (NACK, RTO rewind) closes this interval as rtx waste.
		h.frxFlow(f, forensics.SendNet)
	}
	h.net.TraceEvent(trace.OpSend, h.node.ID, p)
	if isRtx {
		h.net.Metrics.RetxSegments.Inc()
		h.net.TraceEvent(trace.OpRetx, h.node.ID, p)
	}
	h.transmit(p)
}

// transmit serialises one frame on the NIC.
func (h *Host) transmit(p *packet.Packet) {
	h.busy = true
	ser := units.TxTime(p.Size, h.port.Rate)
	h.net.Eng.AfterArg(ser, hostTxDoneFn, h)
	if h.net.faults != nil && h.net.linkDropped(h.node.ID, 0, p.Kind) {
		h.net.dropOnWire(h.node.ID, p)
		return
	}
	h.wire.push(h.net.Eng.Now().Add(ser+h.port.Prop), p)
}

// DebugString reports a flow's transfer state (diagnostics).
func (f *Flow) DebugString() string {
	return fmt.Sprintf("flow %d %d->%d size=%v start=%v sndNxt=%v sndUna=%v rcvNxt=%v queued=%v inRtoQ=%v senderDone=%v",
		f.ID, f.Src, f.Dst, f.Size, f.Start, f.sndNxt, f.sndUna, f.rcvNxt, f.queued, f.inRtoQ, f.senderDone)
}

// DebugHostState reports NIC scheduler internals (diagnostics).
func (h *Host) DebugHostState() string {
	inSendq := 0
	for i := h.sendqHead; i < len(h.sendq); i++ {
		if h.sendq[i] != nil {
			inSendq++
		}
	}
	return fmt.Sprintf("host %d busy=%v pfc=%v sendq=%d rtoQ=%d rtoTimerActive=%v ctrlq=%d",
		h.node.ID, h.busy, h.pfcPaused, inSendq, len(h.rtoQ)-h.rtoHead, h.rtoTimer.Active(), h.ctrlQ.len())
}

// DebugNextSend exposes pacing state (diagnostics).
func (f *Flow) DebugNextSend() string {
	return fmt.Sprintf("nextSend=%v lastProgress=%v window=%v rate=%v", f.nextSend, f.lastProgress, f.ctrl.Window(), f.ctrl.Rate())
}
