package device

import (
	"runtime"

	"floodgate/internal/metrics"
	"floodgate/internal/topo"
	"floodgate/internal/units"
)

// NetMetrics bundles the instruments the device and flow-control
// layers update per event. It is carried by value on the Network; the
// zero value is fully inert (every handle is nil-safe), so unmetered
// runs pay only the embedded nil checks. Registration order is fixed
// here — it is the canonical export order.
type NetMetrics struct {
	// Per-port-class queued + parked bytes (mirrors the per-hop
	// occupancy the paper's Figs 6b/10/11 report, but continuously).
	QueuedBytes [topo.NumPortClasses]metrics.Gauge

	PFCPauses      metrics.Counter // pause transitions (switch + host)
	PFCPortsPaused metrics.Gauge   // currently paused egress ports/NICs
	ECNMarks       metrics.Counter
	Drops          metrics.Counter
	Trims          metrics.Counter
	RetxSegments   metrics.Counter // retransmitted segments put on the wire
	RTOs           metrics.Counter // go-back-N timeout rewinds

	QueueDelay metrics.Histogram // per-hop queuing delay (ps, non-incast data)
	FCT        metrics.Histogram // flow completion times (ps)

	// Floodgate module signals (updated from internal/core).
	FGWindows         metrics.Gauge // per-destination window entries
	FGWindowBytes     metrics.Gauge // occupied window bytes (init - avail summed)
	FGVOQsInUse       metrics.Gauge
	FGParkedBytes     metrics.Gauge // bytes parked across VOQs
	FGCreditsInFlight metrics.Gauge // credit frames emitted but not yet applied

	// Fault plane and recovery (PR 4; registered last to keep earlier
	// export orders stable).
	FaultLinkEvents metrics.Counter // link up/down transitions applied
	FaultLinksDown  metrics.Gauge   // links currently out of service
	FaultRestarts   metrics.Counter // switch restarts applied
	FGResyncs       metrics.Counter // Floodgate peer-restart resyncs
	WatchdogTrips   metrics.Counter // stall-watchdog firings

	// Application plane (PR 9; registered last to keep earlier export
	// orders stable). Updated from internal/app.
	AppRequests   metrics.Counter   // closed-loop requests issued
	AppReplies    metrics.Counter   // worker replies delivered to clients
	AppTimeouts   metrics.Counter   // application deadline expiries
	AppRetries    metrics.Counter   // timeout-driven retry attempts launched
	AppHedges     metrics.Counter   // hedged attempts launched
	AppShed       metrics.Counter   // requests shed by an open circuit breaker
	AppReqLatency metrics.Histogram // completed request latency (ps)

	// Scale / memory plane (PR 10; registered last to keep earlier
	// export orders stable). The topology gauges are pure functions of
	// the frozen topology, set once at New — deterministic, so they
	// are safe in byte-identity-checked exports. The heap gauge is
	// nondeterministic by nature and is populated only by explicit
	// SnapshotMemStats calls (benchmarks, the scale-smoke test), never
	// during table-producing runs. The paused-entry gauges are the
	// per-host state audit's high-water marks (read with Max()): they
	// confirm the lazily allocated host maps stay small relative to
	// the host count even at 100k hosts.
	ScaleHosts        metrics.Gauge // topology host count
	ScaleRouteBytes   metrics.Gauge // resident route-state memory (topo.Router.Bytes)
	ScaleBytesPerHost metrics.Gauge // topology+route bytes amortized per host
	ScaleHeapBytes    metrics.Gauge // runtime HeapAlloc at the last explicit snapshot
	HostPausedDsts    metrics.Gauge // per-host paused-destination entries (Floodgate per-dst pause)
	HostPausedFlows   metrics.Gauge // per-host BFC-paused flow entries
}

// queueDelayBounds buckets per-hop queuing delay from sub-microsecond
// to the PFC-storm regime (values in picoseconds).
var queueDelayBounds = []int64{
	int64(1 * units.Microsecond),
	int64(2 * units.Microsecond),
	int64(5 * units.Microsecond),
	int64(10 * units.Microsecond),
	int64(20 * units.Microsecond),
	int64(50 * units.Microsecond),
	int64(100 * units.Microsecond),
	int64(200 * units.Microsecond),
	int64(500 * units.Microsecond),
	int64(units.Millisecond),
	int64(10 * units.Millisecond),
}

// fctBounds buckets flow completion times across the scales the
// slow-motion clock produces (values in picoseconds).
var fctBounds = []int64{
	int64(10 * units.Microsecond),
	int64(50 * units.Microsecond),
	int64(100 * units.Microsecond),
	int64(500 * units.Microsecond),
	int64(units.Millisecond),
	int64(5 * units.Millisecond),
	int64(10 * units.Millisecond),
	int64(50 * units.Millisecond),
	int64(100 * units.Millisecond),
	int64(units.Second),
}

// NewNetMetrics registers the network's instruments on r in canonical
// order and returns the bundle of handles.
func NewNetMetrics(r *metrics.Registry) NetMetrics {
	var m NetMetrics
	for c := topo.PortClass(0); c < topo.NumPortClasses; c++ {
		m.QueuedBytes[c] = r.Gauge("net.queued_bytes."+c.String(), "bytes")
	}
	m.PFCPauses = r.Counter("net.pfc_pauses", "events")
	m.PFCPortsPaused = r.Gauge("net.pfc_ports_paused", "ports")
	m.ECNMarks = r.Counter("net.ecn_marks", "packets")
	m.Drops = r.Counter("net.drops", "packets")
	m.Trims = r.Counter("net.trims", "packets")
	m.RetxSegments = r.Counter("net.retx_segments", "packets")
	m.RTOs = r.Counter("net.rtos", "events")
	m.QueueDelay = r.Histogram("net.queue_delay_ps", "ps", queueDelayBounds)
	m.FCT = r.Histogram("net.fct_ps", "ps", fctBounds)
	m.FGWindows = r.Gauge("fg.windows", "entries")
	m.FGWindowBytes = r.Gauge("fg.window_bytes", "bytes")
	m.FGVOQsInUse = r.Gauge("fg.voqs_in_use", "voqs")
	m.FGParkedBytes = r.Gauge("fg.parked_bytes", "bytes")
	m.FGCreditsInFlight = r.Gauge("fg.credits_in_flight", "frames")
	m.FaultLinkEvents = r.Counter("fault.link_events", "events")
	m.FaultLinksDown = r.Gauge("fault.links_down", "links")
	m.FaultRestarts = r.Counter("fault.switch_restarts", "events")
	m.FGResyncs = r.Counter("fg.resyncs", "events")
	m.WatchdogTrips = r.Counter("sim.watchdog_trips", "events")
	m.AppRequests = r.Counter("app.requests", "requests")
	m.AppReplies = r.Counter("app.replies", "replies")
	m.AppTimeouts = r.Counter("app.timeouts", "events")
	m.AppRetries = r.Counter("app.retries", "attempts")
	m.AppHedges = r.Counter("app.hedges", "attempts")
	m.AppShed = r.Counter("app.shed", "requests")
	m.AppReqLatency = r.Histogram("app.req_latency_ps", "ps", fctBounds)
	m.ScaleHosts = r.Gauge("scale.hosts", "hosts")
	m.ScaleRouteBytes = r.Gauge("scale.route_bytes", "bytes")
	m.ScaleBytesPerHost = r.Gauge("scale.bytes_per_host", "bytes")
	m.ScaleHeapBytes = r.Gauge("scale.heap_bytes", "bytes")
	m.HostPausedDsts = r.Gauge("net.host_paused_dsts", "entries")
	m.HostPausedFlows = r.Gauge("net.host_paused_flows", "entries")
	return m
}

// SnapshotMemStats populates the heap gauge from runtime.MemStats and
// returns the live-heap byte count. Heap size depends on GC timing and
// host parallelism, so this is called only from explicit memory-budget
// probes (the scale-smoke test, the route-memory benchmarks) — never
// on any path that feeds a byte-identity-checked table or obs export,
// where the gauge simply stays zero.
func (n *Network) SnapshotMemStats() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heap := int64(ms.HeapAlloc)
	n.Metrics.ScaleHeapBytes.Set(heap)
	return heap
}
