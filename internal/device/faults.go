// Runtime fault plane: the device-layer realization of a fault.Plan.
// Link state lives here (the Topology stays immutable so parallel runs
// can share it); routing consults it through Network.Route, transmit
// paths through Network.linkDropped, and scheduled events mutate it via
// capture-free engine callbacks. Everything is driven by the sim clock
// and per-link PRNGs forked from the run seed, so faulted runs remain
// bit-identical at any parallelism.

package device

import (
	"fmt"

	"floodgate/internal/fault"
	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/topo"
	"floodgate/internal/trace"
	"floodgate/internal/units"
)

// geChain is one directed link's Gilbert–Elliott state. The PRNG is
// embedded by value and seeded from (run seed, node, port), so chains
// are independent of each other and of every other random draw.
type geChain struct {
	on  bool // burst loss applies to this directed port
	bad bool
	rnd sim.Rand
}

// Fault events decompose into per-endpoint sub-events at install time,
// so that under the sharded executor each shard schedules exactly the
// sub-events touching its own devices. All sub-events run at priority
// sim.PriFault (before any same-timestamp wire delivery or timer) and
// are installed in plan order, so each shard executes the plan-order
// subsequence it owns — the same relative order a single-shard run
// executes. Each sub-event reads and writes only its own endpoint's
// state, which is what makes the decomposition partition-invariant.

// linkHalfArg applies one endpoint's side of a link transition.
type linkHalfArg struct {
	n       *Network
	node    packet.NodeID // endpoint this half updates
	port    int           // node's port toward the other endpoint
	up      bool
	primary bool // the Link.A half counts the transition once
}

func linkHalfFn(a any) { arg := a.(*linkHalfArg); arg.n.applyLinkHalf(arg) }

// restartArg executes a switch restart's own-state teardown.
type restartArg struct {
	n  *Network
	id packet.NodeID
}

func restartFn(a any) { arg := a.(*restartArg); arg.n.restartSwitch(arg.id) }

// nudgeArg resynchronizes one neighbor of a restarted switch.
type nudgeArg struct {
	n    *Network
	peer packet.NodeID
	port int // peer's port toward the restarted switch
}

func nudgeFn(a any) {
	arg := a.(*nudgeArg)
	if psw := arg.n.Switches[arg.peer]; psw != nil {
		psw.onPeerReset(arg.port)
		return
	}
	arg.n.HostsByID[arg.peer].onPeerReset()
}

// faultState is the network's mutable fault-plane state.
type faultState struct {
	plan      *fault.Plan
	linkUp    [][]bool // [node][port]: port's link is in service
	ge        [][]geChain
	downPorts int     // own directed ports currently out of service
	downAt    []int32 // [node]: locally down ports — Route's fast-path gate

	linkEvents int // link state transitions applied (primary halves)
	linksDown  int // bidirectional links currently down (primary halves)
	restarts   int // switch restarts applied
}

// InstallFaults arms a fault plan on the network: validates it, builds
// the runtime link/loss state, and schedules the sub-events whose
// devices this network owns. Call once, after New and before Run. A
// nil plan is a no-op. Under the sharded executor every shard installs
// the same plan; ownership gates which sub-events each one schedules.
func (n *Network) InstallFaults(p *fault.Plan, seed uint64) {
	if p == nil {
		return
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if n.faults != nil {
		panic("device: InstallFaults called twice")
	}
	f := &faultState{plan: p}
	f.linkUp = make([][]bool, len(n.Topo.Nodes))
	f.ge = make([][]geChain, len(n.Topo.Nodes))
	f.downAt = make([]int32, len(n.Topo.Nodes))
	for _, node := range n.Topo.Nodes {
		up := make([]bool, len(node.Ports))
		for i := range up {
			up[i] = true
		}
		f.linkUp[node.ID] = up
		chains := make([]geChain, len(node.Ports))
		if p.Burst != nil && node.Kind == topo.SwitchNode && n.owns(node.ID) {
			for i := range node.Ports {
				pt := &node.Ports[i]
				if n.Topo.Node(pt.Peer).Kind != topo.SwitchNode || !p.BurstApplies(node.ID, pt.Peer) {
					continue
				}
				// Seeded from (run seed, node, port) alone — never from a
				// shared stream — so chains are identical at any shard count.
				mix := uint64(node.ID)<<20 | uint64(i)
				chains[i] = geChain{on: true, rnd: *sim.NewRand(seed ^ mix*0x9e3779b97f4a7c15)}
			}
		}
		f.ge[node.ID] = chains
	}
	for _, ev := range p.SortedEvents() {
		n.mustResolveEvent(ev)
		switch ev.Kind {
		case fault.LinkDown, fault.LinkUp:
			up := ev.Kind == fault.LinkUp
			if n.owns(ev.Link.A) {
				arg := &linkHalfArg{n: n, node: ev.Link.A, port: n.portTo(ev.Link.A, ev.Link.B), up: up, primary: true}
				n.Eng.AtArgPri(ev.At, linkHalfFn, arg, sim.PriFault)
			}
			if n.owns(ev.Link.B) {
				arg := &linkHalfArg{n: n, node: ev.Link.B, port: n.portTo(ev.Link.B, ev.Link.A), up: up}
				n.Eng.AtArgPri(ev.At, linkHalfFn, arg, sim.PriFault)
			}
		case fault.SwitchRestart:
			if n.owns(ev.Node) {
				n.Eng.AtArgPri(ev.At, restartFn, &restartArg{n: n, id: ev.Node}, sim.PriFault)
			}
			// Neighbor nudges are their own sub-events (a neighbor may
			// live on another shard); they touch only the neighbor's
			// state, so they commute with the restart body.
			ports := n.Topo.Node(ev.Node).Ports
			for pi := range ports {
				pt := &ports[pi]
				if n.owns(pt.Peer) {
					n.Eng.AtArgPri(ev.At, nudgeFn, &nudgeArg{n: n, peer: pt.Peer, port: pt.PeerPort}, sim.PriFault)
				}
			}
		}
	}
	n.faults = f
}

// mustResolveEvent panics early (at install, not mid-run) when an event
// names a link or switch the topology does not have. Resolution is
// topology-based so every shard applies the same validation.
func (n *Network) mustResolveEvent(ev fault.Event) {
	switch ev.Kind {
	case fault.LinkDown, fault.LinkUp:
		if n.portTo(ev.Link.A, ev.Link.B) < 0 || n.portTo(ev.Link.B, ev.Link.A) < 0 {
			panic(fmt.Sprintf("device: fault plan names nonexistent link %v", ev.Link))
		}
	case fault.SwitchRestart:
		if int(ev.Node) >= len(n.Topo.Nodes) || n.Topo.Node(ev.Node).Kind != topo.SwitchNode {
			panic(fmt.Sprintf("device: fault plan restarts non-switch node %d", ev.Node))
		}
	}
}

// portTo returns a's port index toward b, or -1 if not adjacent.
func (n *Network) portTo(a, b packet.NodeID) int {
	ports := n.Topo.Node(a).Ports
	for i := range ports {
		if ports[i].Peer == b {
			return i
		}
	}
	return -1
}

// Route picks the egress port at node for a (src, dst) pair. Without
// faults (or with every candidate live) it is exactly Topology.ECMP; a
// downed link re-hashes the pair over the live subset, so unaffected
// pairs keep their paths and affected ones move deterministically.
// The whole path is allocation-free: the live subset is selected by a
// count-then-index scan over the shared candidate slice, never
// materialized. The per-node down count gates the scan entirely —
// while a fault is active somewhere, nodes whose own ports are all in
// service (the overwhelming majority of a large fabric) still take
// the plain-ECMP fast path, because a full live set re-hashes to the
// same port plain ECMP picks.
func (n *Network) Route(node, src, dst packet.NodeID) int {
	f := n.faults
	if f == nil || f.downPorts == 0 || f.downAt[node] == 0 {
		return n.Topo.ECMP(node, src, dst)
	}
	ports := n.Topo.NextPorts(node, dst)
	if len(ports) == 1 {
		return ports[0]
	}
	up := f.linkUp[node]
	live := 0
	for _, pt := range ports {
		if up[pt] {
			live++
		}
	}
	if live == 0 || live == len(ports) {
		// All dead (nothing better to do) or all live: plain ECMP.
		return ports[topo.PairHash(uint64(src), uint64(dst))%uint64(len(ports))]
	}
	k := topo.PairHash(uint64(src), uint64(dst)) % uint64(live)
	for _, pt := range ports {
		if !up[pt] {
			continue
		}
		if k == 0 {
			return pt
		}
		k--
	}
	return ports[0] // unreachable: k < live
}

// linkDropped decides, at the end of serialization, whether the frame
// leaving node via port is lost to a fault: a downed link swallows
// everything (control included — the wire is dead); a burst-lossy link
// advances its Gilbert–Elliott chain once per data/credit/SYN frame.
func (n *Network) linkDropped(node packet.NodeID, port int, k packet.Kind) bool {
	f := n.faults
	if f == nil {
		return false
	}
	if !f.linkUp[node][port] {
		return true
	}
	g := &f.ge[node][port]
	if !g.on || !lossyKind(k) {
		return false
	}
	ch := f.plan.Burst
	if g.bad {
		lost := ch.LossBad > 0 && g.rnd.Float64() < ch.LossBad
		if g.rnd.Float64() < ch.PBadGood {
			g.bad = false
		}
		return lost
	}
	lost := ch.LossGood > 0 && g.rnd.Float64() < ch.LossGood
	if g.rnd.Float64() < ch.PGoodBad {
		g.bad = true
	}
	return lost
}

// lossyKind mirrors the uniform-loss injector's eligibility: payloads
// and the Floodgate recovery plane, not PFC/ACK control.
func lossyKind(k packet.Kind) bool {
	switch k {
	case packet.Data, packet.Credit, packet.SwitchSYN:
		return true
	}
	return false
}

// dropOnWire accounts a frame lost on a dead or lossy link at node.
func (n *Network) dropOnWire(node packet.NodeID, p *packet.Packet) {
	n.Stats.Drop()
	n.Metrics.Drops.Inc()
	if p.Kind == packet.Credit {
		// A lost credit can no longer be applied upstream.
		n.Metrics.FGCreditsInFlight.Add(-1)
	}
	n.TraceEvent(trace.OpDrop, node, p)
	n.Recycle(p)
}

// applyLinkHalf transitions one endpoint's view of a bidirectional
// link. Link-up additionally clears PFC pause state on the endpoint: a
// pause (or the resume that should have ended it) may have been lost
// with the link, and PFC state is conservative and re-derivable, so
// forgetting it cannot deadlock — at worst the peer re-pauses on the
// next threshold crossing. The Link.A half counts the transition, so
// aggregated counters match the old whole-link accounting.
func (n *Network) applyLinkHalf(a *linkHalfArg) {
	f := n.faults
	if f.linkUp[a.node][a.port] == a.up {
		return // redundant plan event; both halves agree and skip
	}
	f.linkUp[a.node][a.port] = a.up
	if a.primary {
		f.linkEvents++
		n.Metrics.FaultLinkEvents.Inc()
		if a.up {
			f.linksDown--
			n.Metrics.FaultLinksDown.Add(-1)
		} else {
			f.linksDown++
			n.Metrics.FaultLinksDown.Add(1)
		}
	}
	if a.up {
		f.downPorts--
		f.downAt[a.node]--
		n.clearPortPause(a.node, a.port)
	} else {
		f.downPorts++
		f.downAt[a.node]++
	}
}

// clearPortPause forgets inbound PFC pause state on one endpoint of a
// restored link and restarts its transmitter.
func (n *Network) clearPortPause(id packet.NodeID, port int) {
	if sw := n.Switches[id]; sw != nil {
		sw.resumeSelf(port) // no-op when not paused; kicks otherwise
		sw.kick(port)
		return
	}
	n.HostsByID[id].clearPFC()
}

// restartSwitch models a switch losing all soft state: every queued
// frame is dropped, PFC bookkeeping is forgotten, and the flow-control
// module is reinitialized (via its Restarter hook when it has one, else
// rebuilt from the factory). Neighbors resynchronize through separate
// nudge sub-events (scheduled at install time on their own shards; see
// InstallFaults). The frame mid-serialization, if any, survives — it
// is already on the wire.
func (n *Network) restartSwitch(id packet.NodeID) {
	s := n.Switches[id]
	f := n.faults
	f.restarts++
	n.Metrics.FaultRestarts.Inc()

	// Forget upstream-pause bookkeeping first, so the buffer releases
	// below cannot emit PFC resumes from a half-torn-down switch.
	for i := range s.pausedUpstream {
		s.pausedUpstream[i] = false
	}
	s.pausedUpCount = 0

	// Clear our own paused egresses without kicking (queues drain next).
	for i, paused := range s.pausedSelf {
		if paused {
			s.pausedSelf[i] = false
			n.Stats.PFCPaused(s.node.Layer, n.Eng.Now().Sub(s.pauseStart[i]))
			n.Metrics.PFCPortsPaused.Add(-1)
		}
	}

	// Drop everything queued; buffer and per-port accounting go with it.
	for i := range s.out {
		o := &s.out[i]
		for !o.ctrl.empty() {
			p := o.ctrl.pop()
			if p.Kind == packet.Data { // NDP trimmed header: still charged
				s.release(p.Size, int(p.InPort))
				s.notePort(i, -p.Size)
			}
			n.dropOnWire(s.node.ID, p)
		}
		for q := range o.data {
			for !o.data[q].empty() {
				p := o.data[q].pop()
				s.release(p.Size, int(p.InPort))
				s.notePort(i, -p.Size)
				n.dropOnWire(s.node.ID, p)
			}
			o.data[q].paused = false
		}
		o.rr = 0
	}

	// Reinitialize flow control (windows, VOQs, credits, PSN channels).
	if r, ok := s.fc.(Restarter); ok {
		r.Restart()
	} else if n.Cfg.FC != nil {
		s.fc = n.Cfg.FC(s)
	}
}

// onPeerReset drops per-link pause state toward a restarted neighbor:
// its pause memory is gone, so a pause it sent will never be resumed
// (clear it), and a pause we sent it is no longer in effect (forget it).
func (s *Switch) onPeerReset(port int) {
	s.resumeSelf(port)
	if s.pausedUpstream[port] {
		s.pausedUpstream[port] = false
		s.pausedUpCount--
	}
	s.kick(port)
}

// FaultStats summarizes fault-plane activity for reports and tests.
type FaultStats struct {
	LinkEvents int // link up/down transitions applied
	LinksDown  int // links currently down
	Restarts   int // switch restarts applied
	Resyncs    int // flow-control peer-restart resynchronizations
}

// FaultStats reports the fault counters (zero value without a plan).
func (n *Network) FaultStats() FaultStats {
	var fs FaultStats
	if f := n.faults; f != nil {
		fs.LinkEvents = f.linkEvents
		fs.LinksDown = f.linksDown
		fs.Restarts = f.restarts
	}
	for _, sw := range n.Switches {
		if sw == nil {
			continue
		}
		if sr, ok := sw.fc.(StallReporter); ok {
			fs.Resyncs += sr.StallReport().Resyncs
		}
	}
	return fs
}

// StallSnapshot is the structured state a stalled run is diagnosed
// with: where the bytes are stuck and what is holding them.
type StallSnapshot struct {
	DeliveredBytes    units.ByteSize // total payload delivered so far
	ExhaustedWindows  int            // Floodgate per-dst windows at < 1 MTU
	WindowDeficit     units.ByteSize // un-credited window bytes across switches
	ParkedBytes       units.ByteSize // bytes parked in VOQs
	PausedSwitchPorts int            // switch egresses held by PFC
	PausedHosts       int            // host NICs held by PFC
	LinksDown         int
}

// StallSnapshot captures the network's stall-relevant state.
func (n *Network) StallSnapshot() StallSnapshot {
	ss := StallSnapshot{DeliveredBytes: n.delivered}
	for _, sw := range n.Switches {
		if sw == nil {
			continue
		}
		for _, paused := range sw.pausedSelf {
			if paused {
				ss.PausedSwitchPorts++
			}
		}
		if sr, ok := sw.fc.(StallReporter); ok {
			si := sr.StallReport()
			ss.ExhaustedWindows += si.ExhaustedWindows
			ss.WindowDeficit += si.WindowDeficit
			ss.ParkedBytes += si.ParkedBytes
		}
	}
	for _, h := range n.Hosts {
		if h.pfcPaused {
			ss.PausedHosts++
		}
	}
	if f := n.faults; f != nil {
		ss.LinksDown = f.linksDown
	}
	return ss
}
