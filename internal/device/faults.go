// Runtime fault plane: the device-layer realization of a fault.Plan.
// Link state lives here (the Topology stays immutable so parallel runs
// can share it); routing consults it through Network.Route, transmit
// paths through Network.linkDropped, and scheduled events mutate it via
// capture-free engine callbacks. Everything is driven by the sim clock
// and per-link PRNGs forked from the run seed, so faulted runs remain
// bit-identical at any parallelism.

package device

import (
	"fmt"

	"floodgate/internal/fault"
	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/topo"
	"floodgate/internal/trace"
	"floodgate/internal/units"
)

// geChain is one directed link's Gilbert–Elliott state. The PRNG is
// embedded by value and seeded from (run seed, node, port), so chains
// are independent of each other and of every other random draw.
type geChain struct {
	on  bool // burst loss applies to this directed port
	bad bool
	rnd sim.Rand
}

// faultEvArg is the prebuilt argument for one scheduled fault event
// (capture-free engine callback, as everywhere on the hot path).
type faultEvArg struct {
	n  *Network
	ev fault.Event
}

func faultEventFn(a any) {
	arg := a.(*faultEvArg)
	arg.n.applyFault(arg.ev)
}

// faultState is the network's mutable fault-plane state.
type faultState struct {
	plan      *fault.Plan
	linkUp    [][]bool // [node][port]: port's link is in service
	ge        [][]geChain
	args      []faultEvArg
	downPorts int // directed ports currently out of service

	linkEvents int // link state transitions applied
	linksDown  int // bidirectional links currently down
	restarts   int // switch restarts applied
}

// InstallFaults arms a fault plan on the network: validates it, builds
// the runtime link/loss state, and schedules every event on the engine.
// Call once, after New and before Run. A nil plan is a no-op.
func (n *Network) InstallFaults(p *fault.Plan, seed uint64) {
	if p == nil {
		return
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if n.faults != nil {
		panic("device: InstallFaults called twice")
	}
	f := &faultState{plan: p}
	f.linkUp = make([][]bool, len(n.Topo.Nodes))
	f.ge = make([][]geChain, len(n.Topo.Nodes))
	for _, node := range n.Topo.Nodes {
		up := make([]bool, len(node.Ports))
		for i := range up {
			up[i] = true
		}
		f.linkUp[node.ID] = up
		chains := make([]geChain, len(node.Ports))
		if p.Burst != nil && node.Kind == topo.SwitchNode {
			for i := range node.Ports {
				pt := &node.Ports[i]
				if n.Topo.Node(pt.Peer).Kind != topo.SwitchNode || !p.BurstApplies(node.ID, pt.Peer) {
					continue
				}
				mix := uint64(node.ID)<<20 | uint64(i)
				chains[i] = geChain{on: true, rnd: *sim.NewRand(seed ^ mix*0x9e3779b97f4a7c15)}
			}
		}
		f.ge[node.ID] = chains
	}
	evs := p.SortedEvents()
	f.args = make([]faultEvArg, len(evs))
	for i, ev := range evs {
		n.mustResolveEvent(ev)
		f.args[i] = faultEvArg{n: n, ev: ev}
		n.Eng.AtArg(ev.At, faultEventFn, &f.args[i])
	}
	n.faults = f
}

// mustResolveEvent panics early (at install, not mid-run) when an event
// names a link or switch the topology does not have.
func (n *Network) mustResolveEvent(ev fault.Event) {
	switch ev.Kind {
	case fault.LinkDown, fault.LinkUp:
		if n.portTo(ev.Link.A, ev.Link.B) < 0 || n.portTo(ev.Link.B, ev.Link.A) < 0 {
			panic(fmt.Sprintf("device: fault plan names nonexistent link %v", ev.Link))
		}
	case fault.SwitchRestart:
		if int(ev.Node) >= len(n.Switches) || n.Switches[ev.Node] == nil {
			panic(fmt.Sprintf("device: fault plan restarts non-switch node %d", ev.Node))
		}
	}
}

// portTo returns a's port index toward b, or -1 if not adjacent.
func (n *Network) portTo(a, b packet.NodeID) int {
	ports := n.Topo.Node(a).Ports
	for i := range ports {
		if ports[i].Peer == b {
			return i
		}
	}
	return -1
}

// Route picks the egress port at node for a (src, dst) pair. Without
// faults (or with every candidate live) it is exactly Topology.ECMP; a
// downed link re-hashes the pair over the live subset, so unaffected
// pairs keep their paths and affected ones move deterministically.
func (n *Network) Route(node, src, dst packet.NodeID) int {
	f := n.faults
	if f == nil || f.downPorts == 0 {
		return n.Topo.ECMP(node, src, dst)
	}
	ports := n.Topo.NextPorts(node, dst)
	if len(ports) == 1 {
		return ports[0]
	}
	up := f.linkUp[node]
	live := 0
	for _, pt := range ports {
		if up[pt] {
			live++
		}
	}
	if live == 0 || live == len(ports) {
		// All dead (nothing better to do) or all live: plain ECMP.
		return ports[topo.PairHash(uint64(src), uint64(dst))%uint64(len(ports))]
	}
	k := topo.PairHash(uint64(src), uint64(dst)) % uint64(live)
	for _, pt := range ports {
		if !up[pt] {
			continue
		}
		if k == 0 {
			return pt
		}
		k--
	}
	return ports[0] // unreachable: k < live
}

// linkDropped decides, at the end of serialization, whether the frame
// leaving node via port is lost to a fault: a downed link swallows
// everything (control included — the wire is dead); a burst-lossy link
// advances its Gilbert–Elliott chain once per data/credit/SYN frame.
func (n *Network) linkDropped(node packet.NodeID, port int, k packet.Kind) bool {
	f := n.faults
	if f == nil {
		return false
	}
	if !f.linkUp[node][port] {
		return true
	}
	g := &f.ge[node][port]
	if !g.on || !lossyKind(k) {
		return false
	}
	ch := f.plan.Burst
	if g.bad {
		lost := ch.LossBad > 0 && g.rnd.Float64() < ch.LossBad
		if g.rnd.Float64() < ch.PBadGood {
			g.bad = false
		}
		return lost
	}
	lost := ch.LossGood > 0 && g.rnd.Float64() < ch.LossGood
	if g.rnd.Float64() < ch.PGoodBad {
		g.bad = true
	}
	return lost
}

// lossyKind mirrors the uniform-loss injector's eligibility: payloads
// and the Floodgate recovery plane, not PFC/ACK control.
func lossyKind(k packet.Kind) bool {
	switch k {
	case packet.Data, packet.Credit, packet.SwitchSYN:
		return true
	}
	return false
}

// dropOnWire accounts a frame lost on a dead or lossy link at node.
func (n *Network) dropOnWire(node packet.NodeID, p *packet.Packet) {
	n.Stats.Drop()
	n.Metrics.Drops.Inc()
	if p.Kind == packet.Credit {
		// A lost credit can no longer be applied upstream.
		n.Metrics.FGCreditsInFlight.Add(-1)
	}
	n.TraceEvent(trace.OpDrop, node, p)
	n.Recycle(p)
}

// applyFault executes one scheduled event.
func (n *Network) applyFault(ev fault.Event) {
	switch ev.Kind {
	case fault.LinkDown:
		n.setLinkState(ev.Link, false)
	case fault.LinkUp:
		n.setLinkState(ev.Link, true)
	case fault.SwitchRestart:
		n.restartSwitch(ev.Node)
	}
}

// setLinkState transitions a bidirectional link. Link-up additionally
// clears PFC pause state on both endpoints: a pause (or the resume that
// should have ended it) may have been lost with the link, and PFC state
// is conservative and re-derivable, so forgetting it cannot deadlock —
// at worst the peer re-pauses on the next threshold crossing.
func (n *Network) setLinkState(l fault.Link, up bool) {
	f := n.faults
	pa := n.portTo(l.A, l.B)
	pb := n.portTo(l.B, l.A)
	if f.linkUp[l.A][pa] == up {
		return
	}
	f.linkUp[l.A][pa] = up
	f.linkUp[l.B][pb] = up
	f.linkEvents++
	n.Metrics.FaultLinkEvents.Inc()
	if up {
		f.downPorts -= 2
		f.linksDown--
		n.Metrics.FaultLinksDown.Add(-1)
		n.clearPortPause(l.A, pa)
		n.clearPortPause(l.B, pb)
	} else {
		f.downPorts += 2
		f.linksDown++
		n.Metrics.FaultLinksDown.Add(1)
	}
}

// clearPortPause forgets inbound PFC pause state on one endpoint of a
// restored link and restarts its transmitter.
func (n *Network) clearPortPause(id packet.NodeID, port int) {
	if sw := n.Switches[id]; sw != nil {
		sw.resumeSelf(port) // no-op when not paused; kicks otherwise
		sw.kick(port)
		return
	}
	n.HostsByID[id].clearPFC()
}

// restartSwitch models a switch losing all soft state: every queued
// frame is dropped, PFC bookkeeping is forgotten, and the flow-control
// module is reinitialized (via its Restarter hook when it has one, else
// rebuilt from the factory). Neighbors are then nudged so their
// per-link state toward the restarted switch resynchronizes. The frame
// mid-serialization, if any, survives — it is already on the wire.
func (n *Network) restartSwitch(id packet.NodeID) {
	s := n.Switches[id]
	f := n.faults
	f.restarts++
	n.Metrics.FaultRestarts.Inc()

	// Forget upstream-pause bookkeeping first, so the buffer releases
	// below cannot emit PFC resumes from a half-torn-down switch.
	for i := range s.pausedUpstream {
		s.pausedUpstream[i] = false
	}
	s.pausedUpCount = 0

	// Clear our own paused egresses without kicking (queues drain next).
	for i, paused := range s.pausedSelf {
		if paused {
			s.pausedSelf[i] = false
			n.Stats.PFCPaused(s.node.Layer, n.Eng.Now().Sub(s.pauseStart[i]))
			n.Metrics.PFCPortsPaused.Add(-1)
		}
	}

	// Drop everything queued; buffer and per-port accounting go with it.
	for i := range s.out {
		o := &s.out[i]
		for !o.ctrl.empty() {
			p := o.ctrl.pop()
			if p.Kind == packet.Data { // NDP trimmed header: still charged
				s.release(p.Size, int(p.InPort))
				s.notePort(i, -p.Size)
			}
			n.dropOnWire(s.node.ID, p)
		}
		for q := range o.data {
			for !o.data[q].empty() {
				p := o.data[q].pop()
				s.release(p.Size, int(p.InPort))
				s.notePort(i, -p.Size)
				n.dropOnWire(s.node.ID, p)
			}
			o.data[q].paused = false
		}
		o.rr = 0
	}

	// Reinitialize flow control (windows, VOQs, credits, PSN channels).
	if r, ok := s.fc.(Restarter); ok {
		r.Restart()
	} else if n.Cfg.FC != nil {
		s.fc = n.Cfg.FC(s)
	}

	// Nudge the neighbors: pause state they hold on our behalf is stale.
	for i := range s.node.Ports {
		pt := &s.node.Ports[i]
		if psw := n.Switches[pt.Peer]; psw != nil {
			psw.onPeerReset(pt.PeerPort)
		} else {
			n.HostsByID[pt.Peer].onPeerReset()
		}
	}
}

// onPeerReset drops per-link pause state toward a restarted neighbor:
// its pause memory is gone, so a pause it sent will never be resumed
// (clear it), and a pause we sent it is no longer in effect (forget it).
func (s *Switch) onPeerReset(port int) {
	s.resumeSelf(port)
	if s.pausedUpstream[port] {
		s.pausedUpstream[port] = false
		s.pausedUpCount--
	}
	s.kick(port)
}

// FaultStats summarizes fault-plane activity for reports and tests.
type FaultStats struct {
	LinkEvents int // link up/down transitions applied
	LinksDown  int // links currently down
	Restarts   int // switch restarts applied
	Resyncs    int // flow-control peer-restart resynchronizations
}

// FaultStats reports the fault counters (zero value without a plan).
func (n *Network) FaultStats() FaultStats {
	var fs FaultStats
	if f := n.faults; f != nil {
		fs.LinkEvents = f.linkEvents
		fs.LinksDown = f.linksDown
		fs.Restarts = f.restarts
	}
	for _, sw := range n.Switches {
		if sw == nil {
			continue
		}
		if sr, ok := sw.fc.(StallReporter); ok {
			fs.Resyncs += sr.StallReport().Resyncs
		}
	}
	return fs
}

// StallSnapshot is the structured state a stalled run is diagnosed
// with: where the bytes are stuck and what is holding them.
type StallSnapshot struct {
	DeliveredBytes    units.ByteSize // total payload delivered so far
	ExhaustedWindows  int            // Floodgate per-dst windows at < 1 MTU
	WindowDeficit     units.ByteSize // un-credited window bytes across switches
	ParkedBytes       units.ByteSize // bytes parked in VOQs
	PausedSwitchPorts int            // switch egresses held by PFC
	PausedHosts       int            // host NICs held by PFC
	LinksDown         int
}

// StallSnapshot captures the network's stall-relevant state.
func (n *Network) StallSnapshot() StallSnapshot {
	ss := StallSnapshot{DeliveredBytes: n.delivered}
	for _, sw := range n.Switches {
		if sw == nil {
			continue
		}
		for _, paused := range sw.pausedSelf {
			if paused {
				ss.PausedSwitchPorts++
			}
		}
		if sr, ok := sw.fc.(StallReporter); ok {
			si := sr.StallReport()
			ss.ExhaustedWindows += si.ExhaustedWindows
			ss.WindowDeficit += si.WindowDeficit
			ss.ParkedBytes += si.ParkedBytes
		}
	}
	for _, h := range n.Hosts {
		if h.pfcPaused {
			ss.PausedHosts++
		}
	}
	if f := n.faults; f != nil {
		ss.LinksDown = f.linksDown
	}
	return ss
}
