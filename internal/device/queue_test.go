package device

import (
	"testing"
	"testing/quick"

	"floodgate/internal/packet"
	"floodgate/internal/units"
)

func TestFifoBasics(t *testing.T) {
	var q fifo
	if !q.empty() || q.pop() != nil || q.peek() != nil {
		t.Fatal("empty fifo misbehaves")
	}
	p1 := packet.NewData(1, 1, 0, 1, 0, 100, false)
	p2 := packet.NewData(2, 1, 0, 1, 100, 200, false)
	q.push(p1)
	q.push(p2)
	if q.len() != 2 || q.size() != p1.Size+p2.Size {
		t.Fatalf("len=%d size=%v", q.len(), q.size())
	}
	if q.peek() != p1 || q.pop() != p1 || q.pop() != p2 {
		t.Fatal("FIFO order violated")
	}
	if !q.empty() || q.size() != 0 {
		t.Fatal("not empty after drain")
	}
}

func TestFifoGrowsAcrossWraparound(t *testing.T) {
	var q fifo
	// Interleave pushes and pops to force head wraparound, then grow.
	id := uint64(0)
	mk := func() *packet.Packet {
		id++
		return packet.NewData(id, 1, 0, 1, 0, 100, false)
	}
	for i := 0; i < 10; i++ {
		q.push(mk())
	}
	for i := 0; i < 7; i++ {
		q.pop()
	}
	for i := 0; i < 40; i++ {
		q.push(mk())
	}
	want := uint64(8)
	for !q.empty() {
		p := q.pop()
		if p.ID != want {
			t.Fatalf("order broken after growth: got %d want %d", p.ID, want)
		}
		want++
	}
}

func TestFifoPropertyFIFOAndByteAccounting(t *testing.T) {
	f := func(ops []uint16) bool {
		var q fifo
		var model []*packet.Packet
		var bytes units.ByteSize
		id := uint64(0)
		for _, op := range ops {
			if op%3 != 0 || len(model) == 0 {
				id++
				p := packet.NewData(id, 1, 0, 1, 0, units.ByteSize(op%1400)+1, false)
				q.push(p)
				model = append(model, p)
				bytes += p.Size
			} else {
				got := q.pop()
				want := model[0]
				model = model[1:]
				bytes -= want.Size
				if got != want {
					return false
				}
			}
			if q.len() != len(model) || q.size() != bytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
