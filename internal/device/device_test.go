package device

import (
	"testing"

	"floodgate/internal/cc"
	"floodgate/internal/cc/dcqcn"
	"floodgate/internal/cc/hpcc"
	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/units"
)

// smallCfg builds a 2-spine/3-ToR/2-host leaf-spine at low rate so
// tests run instantly.
func smallCfg() Config { return sizedCfg(2) }

// sizedCfg widens the racks for incast tests (per-flow windows bound
// occupancy, so pressure needs sender count).
func sizedCfg(hostsPerToR int) Config {
	tp := topo.LeafSpineConfig{
		Spines: 2, ToRs: 3, HostsPerToR: hostsPerToR,
		HostRate: 10 * units.Gbps, SpineRate: 40 * units.Gbps,
		Prop: 600 * units.Nanosecond,
	}.Build()
	return Config{
		Topo:   tp,
		Engine: sim.NewEngine(),
		Stats:  stats.NewCollector(10 * units.Microsecond),
		Seed:   1,
	}
}

func TestSingleFlowDelivers(t *testing.T) {
	cfg := smallCfg()
	n := New(cfg)
	src, dst := cfg.Topo.Hosts[0], cfg.Topo.Hosts[5]
	f := n.AddFlow(src, dst, 100*units.KB, 0, packet.CatVictimPFC)
	n.Run(units.Time(10 * units.Millisecond))
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	// 100KB at 10Gbps is 80us serialization; FCT must be in the right
	// ballpark (above the pure transfer time, below 3x).
	min := units.TxTime(100*units.KB, 10*units.Gbps)
	if f.FCT() < min {
		t.Fatalf("FCT %v below line-rate bound %v", f.FCT(), min)
	}
	if f.FCT() > 3*min {
		t.Fatalf("FCT %v too large for an idle network (bound %v)", f.FCT(), 3*min)
	}
}

func TestFCTRecorded(t *testing.T) {
	cfg := smallCfg()
	n := New(cfg)
	n.AddFlow(cfg.Topo.Hosts[0], cfg.Topo.Hosts[3], 30*units.KB, 0, packet.CatIncast)
	n.AddFlow(cfg.Topo.Hosts[1], cfg.Topo.Hosts[4], 30*units.KB, 0, packet.CatVictimIncast)
	n.Run(units.Time(10 * units.Millisecond))
	if len(n.Stats.FCTs(stats.CatIncast)) != 1 {
		t.Fatalf("incast FCT samples = %d", len(n.Stats.FCTs(stats.CatIncast)))
	}
	if len(n.Stats.FCTs(stats.CatVictimIncast)) != 1 {
		t.Fatal("victim FCT missing")
	}
	s := n.Stats.FCTs(stats.CatIncast)[0]
	if s.Size != 30*units.KB || s.FCT <= 0 {
		t.Fatalf("bad sample %+v", s)
	}
}

func TestSameRackFlow(t *testing.T) {
	cfg := smallCfg()
	n := New(cfg)
	f := n.AddFlow(cfg.Topo.Hosts[0], cfg.Topo.Hosts[1], 10*units.KB, 0, packet.CatVictimPFC)
	n.Run(units.Time(units.Millisecond))
	if !f.Done() {
		t.Fatal("same-rack flow did not complete")
	}
}

func TestManyFlowsAllComplete(t *testing.T) {
	cfg := smallCfg()
	n := New(cfg)
	hosts := cfg.Topo.Hosts
	var flows []*Flow
	for i := 0; i < 20; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i+3)%len(hosts)]
		if src == dst {
			continue
		}
		flows = append(flows, n.AddFlow(src, dst, units.ByteSize(1+i)*10*units.KB,
			units.Time(i)*units.Time(units.Microsecond), packet.CatVictimPFC))
	}
	n.Run(units.Time(50 * units.Millisecond))
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d incomplete (acked %v of %v)", i, f.sndUna, f.Size)
		}
	}
}

func TestIncastFillsLastHopWithoutFlowControl(t *testing.T) {
	cfg := sizedCfg(8)
	cfg.PFC = PFCConfig{Enable: true, Alpha: 2}
	n := New(cfg)
	hosts := cfg.Topo.Hosts
	dst := hosts[len(hosts)-1]
	for _, src := range hosts[:16] { // 16 cross-rack senders
		n.AddFlow(src, dst, 500*units.KB, 0, packet.CatIncast)
	}
	n.Run(units.Time(10 * units.Millisecond))
	// The last hop (ToR-Down) must be where the buffer builds.
	down := n.Stats.MaxClassBuffer(topo.ClassToRDown)
	up := n.Stats.MaxClassBuffer(topo.ClassToRUp)
	if down < 100*units.KB {
		t.Fatalf("last-hop buffer %v too small for a 4:1 incast", down)
	}
	if up > down {
		t.Fatalf("first-hop buffer %v exceeds last-hop %v without flow control", up, down)
	}
	for _, f := range n.Flows() {
		if !f.Done() {
			t.Fatal("incast flow incomplete")
		}
	}
}

func TestPFCTriggersUnderSevereIncast(t *testing.T) {
	cfg := sizedCfg(8)
	cfg.BufferSize = 150 * units.KB // tiny buffer forces PFC
	cfg.PFC = PFCConfig{Enable: true, Alpha: 2}
	n := New(cfg)
	hosts := cfg.Topo.Hosts
	dst := hosts[len(hosts)-1]
	for _, src := range hosts[:16] {
		n.AddFlow(src, dst, 300*units.KB, 0, packet.CatIncast)
	}
	n.Run(units.Time(20 * units.Millisecond))
	n.Finalize()
	var total units.Duration
	for _, l := range []topo.Layer{topo.LayerHost, topo.LayerToR, topo.LayerCore} {
		total += n.Stats.PFCPauseTime(l)
	}
	if total == 0 {
		t.Fatal("severe incast with a tiny buffer did not trigger PFC")
	}
	if n.Stats.Drops > 0 {
		t.Fatalf("PFC is enabled yet %d packets dropped", n.Stats.Drops)
	}
	for _, f := range n.Flows() {
		if !f.Done() {
			t.Fatalf("flow incomplete under PFC (acked %v/%v)", f.sndUna, f.Size)
		}
	}
}

func TestBufferOverflowDropsAndRTORecovers(t *testing.T) {
	cfg := sizedCfg(8)
	cfg.BufferSize = 100 * units.KB
	cfg.PFC.Enable = false // lossy: must overflow
	cfg.RTO = 200 * units.Microsecond
	n := New(cfg)
	hosts := cfg.Topo.Hosts
	dst := hosts[len(hosts)-1]
	for _, src := range hosts[:16] {
		n.AddFlow(src, dst, 200*units.KB, 0, packet.CatIncast)
	}
	n.Run(units.Time(100 * units.Millisecond))
	if n.Stats.Drops == 0 {
		t.Fatal("expected drops with a 100KB lossy buffer")
	}
	if n.Stats.Retransmits == 0 {
		t.Fatal("expected RTO retransmissions")
	}
	for _, f := range n.Flows() {
		if !f.Done() {
			t.Fatalf("flow not recovered by go-back-N (acked %v/%v, drops=%d)", f.sndUna, f.Size, n.Stats.Drops)
		}
	}
}

func TestECNMarksTriggerCNPAndDCQCNSlows(t *testing.T) {
	cfg := smallCfg()
	cfg.ECN = ECNConfig{Enable: true, KMin: 20 * units.KB, KMax: 80 * units.KB, PMax: 0.2}
	cfg.CC = dcqcn.Default()
	n := New(cfg)
	hosts := cfg.Topo.Hosts
	dst := hosts[5]
	var flows []*Flow
	for _, src := range hosts[:4] {
		flows = append(flows, n.AddFlow(src, dst, units.MB, 0, packet.CatIncast))
	}
	n.Run(units.Time(50 * units.Millisecond))
	slowed := false
	for _, f := range flows {
		if f.Controller().Rate() < 10*units.Gbps {
			slowed = true
		}
		if !f.Done() {
			t.Fatal("flow incomplete")
		}
	}
	if !slowed {
		t.Fatal("DCQCN did not reduce any sender's rate under incast")
	}
}

func TestINTAppendedForHPCC(t *testing.T) {
	cfg := smallCfg()
	cfg.INT = true
	cfg.CC = hpcc.Default()
	n := New(cfg)
	f := n.AddFlow(cfg.Topo.Hosts[0], cfg.Topo.Hosts[5], 500*units.KB, 0, packet.CatVictimPFC)
	n.Run(units.Time(10 * units.Millisecond))
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
}

func TestFixedWindowLimitsInflight(t *testing.T) {
	cfg := smallCfg()
	cfg.CC = cc.NewFixedWindow()
	n := New(cfg)
	// Window should be ~BDP; a cross-fabric flow of 10x BDP takes at
	// least 10 windows' worth of RTTs if the window binds... just check
	// the invariant inflight <= window throughout via final state.
	f := n.AddFlow(cfg.Topo.Hosts[0], cfg.Topo.Hosts[5], 300*units.KB, 0, packet.CatVictimPFC)
	for i := 0; i < 3000; i++ {
		n.Eng.Run(n.Eng.Now().Add(units.Microsecond))
		if f.inflight() > f.ctrl.Window()+MSS {
			t.Fatalf("inflight %v exceeds window %v", f.inflight(), f.ctrl.Window())
		}
		if f.Done() {
			break
		}
	}
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
}

func TestLossInjectionRecovered(t *testing.T) {
	cfg := smallCfg()
	cfg.LossRate = 0.05
	cfg.RTO = 200 * units.Microsecond
	n := New(cfg)
	f := n.AddFlow(cfg.Topo.Hosts[0], cfg.Topo.Hosts[5], 200*units.KB, 0, packet.CatVictimPFC)
	n.Run(units.Time(200 * units.Millisecond))
	if n.Stats.Drops == 0 {
		t.Fatal("no injected drops at 5% loss")
	}
	if !f.Done() {
		t.Fatalf("flow not recovered after injected loss (acked %v/%v)", f.sndUna, f.Size)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (units.Duration, uint64) {
		cfg := smallCfg()
		cfg.ECN = ECNConfig{Enable: true, KMin: 20 * units.KB, KMax: 80 * units.KB, PMax: 0.2}
		cfg.CC = dcqcn.Default()
		n := New(cfg)
		hosts := cfg.Topo.Hosts
		var last *Flow
		for i := 0; i < 8; i++ {
			last = n.AddFlow(hosts[i%6], hosts[(i+2)%6], 100*units.KB, units.Time(i*1000), packet.CatVictimPFC)
		}
		n.Run(units.Time(20 * units.Millisecond))
		return last.FCT(), n.Eng.Processed
	}
	f1, e1 := run()
	f2, e2 := run()
	if f1 != f2 || e1 != e2 {
		t.Fatalf("non-deterministic: fct %v vs %v, events %d vs %d", f1, f2, e1, e2)
	}
}

func TestBaseRTTDerivation(t *testing.T) {
	tp := topo.DefaultLeafSpine().Build()
	n := New(Config{Topo: tp, Engine: sim.NewEngine()})
	rtt := n.BaseRTT()
	// Paper: base RTT 5.1us on the 2-tier fabric (4 hops, 600ns each,
	// plus serialization). Accept 4-7us.
	if rtt < 4*units.Microsecond || rtt > 7*units.Microsecond {
		t.Fatalf("derived base RTT = %v, want ~5.1us", rtt)
	}
	bdp := n.BaseBDP()
	if bdp < 50*units.KB || bdp > 90*units.KB {
		t.Fatalf("base BDP = %v, want ~64KB", bdp)
	}
}

func TestVictimSeparationInThroughputSeries(t *testing.T) {
	cfg := smallCfg()
	n := New(cfg)
	hosts := cfg.Topo.Hosts
	n.AddFlow(hosts[0], hosts[5], 50*units.KB, 0, packet.CatIncast)
	n.AddFlow(hosts[1], hosts[4], 50*units.KB, 0, packet.CatVictimIncast)
	n.Run(units.Time(5 * units.Millisecond))
	var inc, vic units.ByteSize
	for _, b := range n.Stats.RxSeries(stats.CatIncast) {
		inc += b
	}
	for _, b := range n.Stats.RxSeries(stats.CatVictimIncast) {
		vic += b
	}
	if inc != 50*units.KB || vic != 50*units.KB {
		t.Fatalf("rx series totals: incast=%v victim=%v, want 50KB each", inc, vic)
	}
}

func TestHostPerDstPause(t *testing.T) {
	cfg := smallCfg()
	cfg.PerDstPause = true
	n := New(cfg)
	hosts := cfg.Topo.Hosts
	src := n.HostsByID[hosts[0]]
	// Pause the destination before the flow starts (AddFlow with a
	// current start time begins sending synchronously).
	pause := packet.NewCtrl(n.pktID(), packet.DstPause, 0, hosts[2], hosts[0])
	pause.PauseDst = hosts[5]
	src.receive(pause)
	f := n.AddFlow(hosts[0], hosts[5], 100*units.KB, 0, packet.CatIncast)
	n.Run(units.Time(2 * units.Millisecond))
	if f.Done() {
		t.Fatal("flow completed despite per-dst pause")
	}
	if f.sndNxt != 0 {
		t.Fatalf("paused flow sent %v bytes", f.sndNxt)
	}
	// Resume and let it finish.
	resume := packet.NewCtrl(n.pktID(), packet.DstResume, 0, hosts[2], hosts[0])
	resume.PauseDst = hosts[5]
	src.receive(resume)
	n.Run(units.Time(10 * units.Millisecond))
	if !f.Done() {
		t.Fatal("flow did not complete after resume")
	}
}

func TestNDPTrimsAndRecovers(t *testing.T) {
	cfg := smallCfg()
	cfg.NDP = NDPConfig{Enable: true, TrimThresh: 8 * packet.MTU}
	cfg.PFC.Enable = false
	n := New(cfg)
	hosts := cfg.Topo.Hosts
	dst := hosts[5]
	var flows []*Flow
	for _, src := range hosts[:4] {
		flows = append(flows, n.AddFlow(src, dst, 200*units.KB, 0, packet.CatIncast))
	}
	n.Run(units.Time(50 * units.Millisecond))
	if n.Stats.Trims == 0 {
		t.Fatal("4:1 incast with an 8-MTU trim threshold must trim")
	}
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("NDP flow %d incomplete (rcvd %v/%v, trims=%d)", i, f.rcvdBytes, f.Size, n.Stats.Trims)
		}
	}
	// Trimming bounds the queue: last-hop occupancy stays near the
	// threshold, far below the no-trim case.
	down := n.Stats.MaxClassBuffer(topo.ClassToRDown)
	if down > 40*packet.MTU {
		t.Fatalf("NDP last-hop buffer %v not bounded by trimming", down)
	}
}

func TestQueueDelayAttribution(t *testing.T) {
	cfg := smallCfg()
	n := New(cfg)
	hosts := cfg.Topo.Hosts
	// Two flows converge on one host: queue forms at ToR-Down.
	n.AddFlow(hosts[0], hosts[5], 200*units.KB, 0, packet.CatVictimIncast)
	n.AddFlow(hosts[2], hosts[5], 200*units.KB, 0, packet.CatVictimIncast)
	n.Run(units.Time(10 * units.Millisecond))
	if n.Stats.AvgQueueDelay(topo.ClassToRDown) == 0 {
		t.Fatal("no queuing delay recorded at the congested last hop")
	}
}
