//lint:hotpath transmit/deliver scheduling runs once per frame per hop

package device

import (
	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/trace"
	"floodgate/internal/units"
)

// outPort is the transmit side of one switch (or host) port: a strict-
// priority control queue over QueuesPerPort round-robin data queues,
// and a busy-until transmitter.
type outPort struct {
	tp      *topo.Port
	ctrl    fifo
	data    []fifo
	rr      int
	busy    bool
	txBytes units.ByteSize // cumulative, for INT telemetry

	// The in-flight chain toward the peer plus the single outstanding
	// transmission's release state (one packet serialises at a time, so
	// scalar fields suffice — no per-packet closure allocation).
	sw          *Switch
	wire        wire
	pendSize    units.ByteSize
	pendInPort  int
	pendCharged bool
}

// txDoneFn completes a switch port's serialization: free the buffer
// share and restart the transmitter.
func txDoneFn(a any) {
	o := a.(*outPort)
	o.busy = false
	if o.pendCharged {
		o.sw.release(o.pendSize, o.pendInPort)
	}
	o.sw.kick(o.tp.Index)
}

func (o *outPort) dataBytes() units.ByteSize {
	var b units.ByteSize
	for i := range o.data {
		b += o.data[i].size()
	}
	return b
}

// Switch is a shared-buffer output-queued switch with PFC, ECN and a
// flow-control module hook.
type Switch struct {
	net  *Network
	node *topo.Node
	fc   FlowControl

	// rnd drives this switch's probabilistic draws (RED marking, loss
	// injection). Seeded from (Config.Seed, node ID) rather than shared
	// network-wide, so each switch consumes an independent stream and
	// draw sequences do not depend on cross-switch event interleaving —
	// the property that keeps sharded runs bit-identical.
	rnd sim.Rand

	out     []outPort
	used    units.ByteSize   // shared buffer occupancy (data only)
	ingress []units.ByteSize // per ingress port occupancy (PFC accounting)

	pausedUpstream []bool // we paused the peer feeding ingress port i
	pausedUpCount  int
	pausedSelf     []bool // our egress i is paused by the peer's PFC
	pauseStart     []units.Time
	pauseCum       []units.Duration // per egress: closed pause time (forensics overlap basis)

	portBytes []units.ByteSize // per egress port: queued + parked bytes (stats)
}

func newSwitch(n *Network, node *topo.Node) *Switch {
	sw := &Switch{
		net:            n,
		node:           node,
		fc:             nopFC{},
		rnd:            *sim.NewRand(n.Cfg.Seed ^ uint64(node.ID)*0x9e3779b97f4a7c15),
		out:            make([]outPort, len(node.Ports)),
		ingress:        make([]units.ByteSize, len(node.Ports)),
		pausedUpstream: make([]bool, len(node.Ports)),
		pausedSelf:     make([]bool, len(node.Ports)),
		pauseStart:     make([]units.Time, len(node.Ports)),
		pauseCum:       make([]units.Duration, len(node.Ports)),
		portBytes:      make([]units.ByteSize, len(node.Ports)),
	}
	for i := range sw.out {
		o := &sw.out[i]
		o.tp = &node.Ports[i]
		o.data = make([]fifo, n.Cfg.QueuesPerPort)
		o.sw = sw
		o.wire.init(n, o.tp.Peer, o.tp.PeerPort, n.wirePri(node.ID, i))
	}
	return sw
}

// Node returns the topology node this switch realises.
func (s *Switch) Node() *topo.Node { return s.node }

// Net returns the owning network (modules use it for time and stats).
func (s *Switch) Net() *Network { return s.net }

// FC returns the attached flow-control module.
func (s *Switch) FC() FlowControl { return s.fc }

// PortFacesHost reports whether egress port i leads to an end host.
func (s *Switch) PortFacesHost(i int) bool {
	return s.net.Topo.Node(s.node.Ports[i].Peer).Kind == topo.HostNode
}

// PortFacesSwitch reports whether ingress/egress port i leads to a switch.
func (s *Switch) PortFacesSwitch(i int) bool { return !s.PortFacesHost(i) }

// receive is the ingress pipeline.
func (s *Switch) receive(p *packet.Packet, inPort int) {
	switch p.Kind {
	case packet.PFCPause:
		s.pauseSelf(inPort)
		s.net.Recycle(p)
		return
	case packet.PFCResume:
		s.resumeSelf(inPort)
		s.net.Recycle(p)
		return
	case packet.Data:
		s.receiveData(p, inPort)
		return
	}
	// Module control traffic (credits, per-queue/per-dst pauses).
	if s.fc.OnCtrl(p, inPort) {
		s.net.Recycle(p)
		return
	}
	// Transit control frame: forward toward its destination.
	out := s.net.Route(s.node.ID, p.Src, p.Dst)
	s.sendCtrl(p, out)
}

func (s *Switch) receiveData(p *packet.Packet, inPort int) {
	n := s.net
	// Shared-buffer admission.
	if s.used+p.Size > n.Cfg.BufferSize {
		n.Stats.Drop()
		n.Metrics.Drops.Inc()
		n.TraceEvent(trace.OpDrop, s.node.ID, p)
		n.Recycle(p)
		return
	}
	s.charge(p.Size, inPort)
	p.InPort = int32(inPort)
	p.ViaVOQ = false
	p.HopCount++

	// PFC threshold check after charging.
	if n.Cfg.PFC.Enable && !s.pausedUpstream[inPort] {
		free := n.Cfg.BufferSize - s.used
		if float64(s.ingress[inPort]) > n.Cfg.PFC.Alpha*float64(free) {
			s.pausedUpstream[inPort] = true
			s.pausedUpCount++
			s.sendCtrl(n.NewCtrl(packet.PFCPause, 0, s.node.ID, s.node.Ports[inPort].Peer), inPort)
		}
	}

	out := n.Route(s.node.ID, p.Src, p.Dst)

	// NDP cut-payload: when the egress backlog exceeds the trim
	// threshold, forward only the header in the priority class.
	if n.Cfg.NDP.Enable && !p.Trimmed && s.out[out].dataBytes() >= n.Cfg.NDP.TrimThresh {
		cut := p.Size - packet.HeaderSize
		p.Trim()
		s.release(cut, inPort)
		n.Stats.Trim()
		n.Metrics.Trims.Inc()
		s.sendCtrl2(p, out)
		return
	}

	v := s.fc.OnIngress(p, inPort, out)
	switch {
	case v.Consumed:
		return
	case v.Drop:
		s.release(p.Size, inPort)
		n.Stats.Drop()
		n.Metrics.Drops.Inc()
		n.Recycle(p)
		return
	case v.Trim:
		cut := p.Size - packet.HeaderSize
		p.Trim()
		s.release(cut, inPort) // header keeps only its own share charged
		n.Stats.Trim()
		n.Metrics.Trims.Inc()
		s.sendCtrl2(p, out) // trimmed headers ride the priority class
		return
	}
	s.enqueueData(p, out, v.Queue)
}

// enqueueData places a data packet on an egress data queue, applying
// ECN marking, and kicks the transmitter. Exposed to flow-control
// modules via InjectEgress.
func (s *Switch) enqueueData(p *packet.Packet, out, queue int) {
	o := &s.out[out]
	if queue >= len(o.data) {
		queue = len(o.data) - 1
	}
	if s.net.Cfg.ECN.Enable {
		s.maybeMark(p, out)
	}
	p.EnqueuedAt = s.net.Eng.Now()
	if s.net.frx != nil && p.Last && !p.Trimmed {
		// Stamp the egress pause-cum so dequeue can split this packet's
		// FIFO wait into queueing and PFC-blocked time.
		c := s.pauseCum[out]
		if s.pausedSelf[out] {
			c += s.net.Eng.Now().Sub(s.pauseStart[out])
		}
		p.EnqPauseCum = c
	}
	o.data[queue].push(p)
	s.notePort(out, p.Size)
	s.net.TraceEvent(trace.OpEnqueue, s.node.ID, p)
	s.kick(out)
}

// InjectEgress re-inserts a previously parked (Consumed) packet into
// an egress data queue. The module must have tracked the parked bytes
// with NotePortBytes; injection hands that accounting back.
func (s *Switch) InjectEgress(p *packet.Packet, out, queue int) {
	s.notePort(out, -p.Size)
	s.enqueueData(p, out, queue)
}

// ReleaseParked discards a parked packet, returning its buffer share.
// The module remains responsible for its own NotePortBytes accounting.
func (s *Switch) ReleaseParked(p *packet.Packet) {
	s.release(p.Size, int(p.InPort))
}

// NotePortBytes lets a module attribute parked bytes to an egress port
// for the per-port-class occupancy statistics.
func (s *Switch) NotePortBytes(out int, delta units.ByteSize) { s.notePort(out, delta) }

func (s *Switch) notePort(out int, delta units.ByteSize) {
	if out < 0 {
		return
	}
	s.portBytes[out] += delta
	class := s.node.Ports[out].Class
	s.net.Metrics.QueuedBytes[class].Add(int64(delta))
	s.net.Stats.PortBuffer(s.net.Eng.Now(), int32(s.node.ID), int32(out), class, s.portBytes[out])
}

// maybeMark applies RED-style ECN based on the egress backlog (or the
// module's override signal, whichever is larger — §8).
func (s *Switch) maybeMark(p *packet.Packet, out int) {
	q := s.out[out].dataBytes()
	if sig := s.fc.QueueSignal(p, out); sig > q {
		q = sig
	}
	cfg := &s.net.Cfg.ECN
	switch {
	case q < cfg.KMin:
		return
	case q >= cfg.KMax:
		p.ECN = true
		s.net.Metrics.ECNMarks.Inc()
	default:
		prob := cfg.PMax * float64(q-cfg.KMin) / float64(cfg.KMax-cfg.KMin)
		if s.rnd.Float64() < prob {
			p.ECN = true
			s.net.Metrics.ECNMarks.Inc()
		}
	}
}

// sendCtrl enqueues a control frame on the priority queue of a port.
func (s *Switch) sendCtrl(p *packet.Packet, out int) {
	s.out[out].ctrl.push(p)
	s.kick(out)
}

// SendCtrl lets flow-control modules emit control frames (credits,
// switchSYNs, pauses) on a port's priority queue.
func (s *Switch) SendCtrl(p *packet.Packet, out int) { s.sendCtrl(p, out) }

// sendCtrl2 is sendCtrl for frames that still carry data-buffer
// accounting (NDP trimmed headers stay charged until transmitted).
func (s *Switch) sendCtrl2(p *packet.Packet, out int) {
	p.EnqueuedAt = s.net.Eng.Now()
	s.out[out].ctrl.push(p)
	s.notePort(out, p.Size)
	s.kick(out)
}

// charge/release maintain shared-buffer and ingress accounting.
func (s *Switch) charge(b units.ByteSize, inPort int) {
	s.used += b
	s.ingress[inPort] += b
	s.net.Stats.SwitchBuffer(int32(s.node.ID), s.used)
}

func (s *Switch) release(b units.ByteSize, inPort int) {
	s.used -= b
	if inPort >= 0 {
		s.ingress[inPort] -= b
	}
	s.net.Stats.SwitchBuffer(int32(s.node.ID), s.used)
	if s.net.Cfg.PFC.Enable && s.pausedUpCount > 0 {
		s.maybeResumeUpstream()
	}
}

func (s *Switch) maybeResumeUpstream() {
	free := s.net.Cfg.BufferSize - s.used
	limit := s.net.Cfg.PFC.Alpha * float64(free) * s.net.Cfg.PFC.ResumeFraction
	for i, paused := range s.pausedUpstream {
		if !paused {
			continue
		}
		if float64(s.ingress[i]) <= limit || s.ingress[i] == 0 {
			s.pausedUpstream[i] = false
			s.pausedUpCount--
			s.sendCtrl(s.net.NewCtrl(packet.PFCResume, 0, s.node.ID, s.node.Ports[i].Peer), i)
		}
	}
}

// pauseSelf/resumeSelf react to PFC frames from the peer of port i.
func (s *Switch) pauseSelf(i int) {
	if s.pausedSelf[i] {
		return
	}
	s.pausedSelf[i] = true
	s.pauseStart[i] = s.net.Eng.Now()
	s.net.Metrics.PFCPauses.Inc()
	s.net.Metrics.PFCPortsPaused.Add(1)
}

func (s *Switch) resumeSelf(i int) {
	if !s.pausedSelf[i] {
		return
	}
	s.pausedSelf[i] = false
	s.pauseCum[i] += s.net.Eng.Now().Sub(s.pauseStart[i])
	s.net.Stats.PFCPaused(s.node.Layer, s.net.Eng.Now().Sub(s.pauseStart[i]))
	s.net.Metrics.PFCPortsPaused.Add(-1)
	s.kick(i)
}

// finalizePFC closes pause intervals still open at the end of a run.
func (s *Switch) finalizePFC() {
	for i, paused := range s.pausedSelf {
		if paused {
			s.pauseCum[i] += s.net.Eng.Now().Sub(s.pauseStart[i])
			s.net.Stats.PFCPaused(s.node.Layer, s.net.Eng.Now().Sub(s.pauseStart[i]))
			s.pauseStart[i] = s.net.Eng.Now()
		}
	}
}

// kick starts the transmitter of port i if idle and something is
// eligible to send.
func (s *Switch) kick(i int) {
	o := &s.out[i]
	if o.busy {
		return
	}
	p, queue := s.pick(i)
	if p == nil {
		return
	}
	s.transmit(p, i, queue)
}

// pick chooses the next frame: control strictly first; then, unless
// PFC-paused, the data queues in round-robin order (skipping paused
// queues — BFC).
func (s *Switch) pick(i int) (*packet.Packet, int) {
	o := &s.out[i]
	if !o.ctrl.empty() {
		return o.ctrl.pop(), -1
	}
	if s.pausedSelf[i] {
		return nil, -1
	}
	nq := len(o.data)
	for k := 0; k < nq; k++ {
		qi := (o.rr + k) % nq
		q := &o.data[qi]
		if q.paused || q.empty() {
			continue
		}
		o.rr = (qi + 1) % nq
		return q.pop(), qi
	}
	return nil, -1
}

// PauseQueue marks a data queue paused/unpaused (BFC) and kicks.
func (s *Switch) PauseQueue(out, queue int, paused bool) {
	s.out[out].data[queue].paused = paused
	if !paused {
		s.kick(out)
	}
}

// QueueBytes reports the backlog of one egress data queue.
func (s *Switch) QueueBytes(out, queue int) units.ByteSize { return s.out[out].data[queue].size() }

// PortBacklog reports the summed data backlog of an egress port.
func (s *Switch) PortBacklog(out int) units.ByteSize { return s.out[out].dataBytes() }

// transmit serialises p on port i and schedules its arrival.
func (s *Switch) transmit(p *packet.Packet, i, queue int) {
	n := s.net
	o := &s.out[i]
	now := n.Eng.Now()
	isData := p.Kind == packet.Data // trimmed headers keep Kind Data

	if isData {
		// Queuing-time attribution (non-incast data only, per Fig 11b).
		if p.Cat != packet.CatIncast {
			n.Stats.QueueDelay(o.tp.Class, now.Sub(p.EnqueuedAt))
			n.Metrics.QueueDelay.Observe(int64(now.Sub(p.EnqueuedAt)))
		}
		s.fc.OnDequeue(p, i, queue)
		if n.frx != nil && p.Last && !p.Trimmed {
			// Final-segment hop attribution. The port cannot be paused at a
			// data dequeue (pick skips paused ports), so pauseCum[i] is
			// closed and the PFC overlap is its advance since enqueue.
			wait := now.Sub(p.EnqueuedAt)
			n.frx.Hop(p.Flow, wait, s.pauseCum[i]-p.EnqPauseCum, units.TxTime(p.Size, o.tp.Rate))
		}
		if n.Cfg.INT && !p.Trimmed {
			q := s.out[i].dataBytes()
			if sig := s.fc.QueueSignal(p, i); sig > q {
				q = sig
			}
			p.AddInt(packet.IntHop{TxBytes: o.txBytes, QLen: q, TS: now, LinkRate: o.tp.Rate})
		}
	}

	o.busy = true
	o.txBytes += p.Size
	n.Stats.OnWire(now, wireClass(p.Kind), p.Size)
	if isData {
		n.TraceEvent(trace.OpTx, s.node.ID, p)
	}

	ser := units.TxTime(p.Size, o.tp.Rate)
	o.pendSize = p.Size
	o.pendInPort = int(p.InPort)
	o.pendCharged = isData
	if isData {
		s.notePort(i, -p.Size)
	}
	n.Eng.AfterArg(ser, txDoneFn, o)

	// Loss injection between switches: data and credits at LossRate,
	// credits additionally at CreditLossRate (Fig 12's isolated stress).
	if lr := s.lossRateFor(p.Kind); lr > 0 && s.PortFacesSwitch(i) && s.rnd.Float64() < lr {
		n.dropOnWire(s.node.ID, p)
		return
	}
	// Fault plane: dead links swallow everything, burst-lossy links
	// advance their Gilbert–Elliott chain (see faults.go).
	if n.faults != nil && n.linkDropped(s.node.ID, i, p.Kind) {
		n.dropOnWire(s.node.ID, p)
		return
	}
	o.wire.push(now.Add(ser+o.tp.Prop), p)
}

func (s *Switch) lossRateFor(k packet.Kind) float64 {
	switch k {
	case packet.Data:
		return s.net.Cfg.LossRate
	case packet.Credit, packet.SwitchSYN:
		if s.net.Cfg.CreditLossRate > s.net.Cfg.LossRate {
			return s.net.Cfg.CreditLossRate
		}
		return s.net.Cfg.LossRate
	}
	return 0
}

func wireClass(k packet.Kind) stats.WireClass {
	switch k {
	case packet.Data:
		return stats.WireData
	case packet.Credit, packet.SwitchSYN:
		return stats.WireCredit
	default:
		return stats.WireCtrl
	}
}
