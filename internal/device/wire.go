//lint:hotpath wire chain push/deliver runs once per frame per hop

package device

import (
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// wire is the in-flight frame chain of one link direction. A busy-until
// transmitter starts frames in strictly increasing time and the
// propagation delay is constant per link, so arrivals are FIFO: instead
// of one engine event per frame in flight (up to prop/serialization
// frames per port, each weighing on the scheduler), the chain keeps a
// ring of (arrival, frame) pairs served by a single armed engine timer
// that delivers the head and re-arms for the next.
//
// Frames dropped at transmit time (loss injection, dead links) never
// enter the chain, and a switch restart leaves it untouched — frames
// already on the wire survive, matching the old per-frame semantics.
type wire struct {
	net      *Network
	peer     packet.NodeID
	peerPort int

	// pri is the link's engine priority (PriWireBase + global directed-
	// port index): every directed link delivers under its own same-
	// timestamp priority, so equal-time deliveries on different links
	// order identically at any shard count.
	pri uint32

	// staged, when non-nil, marks the peer as living on another shard:
	// pushes divert into the cross-shard mailbox instead of arming a
	// local timer (see cluster.go).
	staged *xlink

	buf   []wireEnt
	head  int
	count int
}

type wireEnt struct {
	at units.Time
	p  *packet.Packet
}

func (w *wire) init(n *Network, peer packet.NodeID, peerPort int, pri uint32) {
	w.net = n
	w.peer = peer
	w.peerPort = peerPort
	w.pri = pri
}

// wireDeliverFn delivers the chain head. Re-arming happens before the
// delivery: receiving a frame can synchronously start a transmission,
// and a push onto a chain that already holds frames must find the
// timer armed.
func wireDeliverFn(a any) {
	w := a.(*wire)
	p := w.pop()
	if w.count > 0 {
		w.net.Eng.AtArgPri(w.buf[w.head].at, wireDeliverFn, w, w.pri)
	}
	w.net.deliver(w.peer, p, w.peerPort)
}

// push appends a frame arriving at `at` (≥ every arrival already
// queued), arming the delivery timer if the chain was idle. A wire
// whose peer lives on another shard stages instead: the frame is
// handed to the peer shard's mirror chain at the next barrier.
func (w *wire) push(at units.Time, p *packet.Packet) {
	if w.staged != nil {
		w.staged.pend = append(w.staged.pend, wireEnt{at, p})
		return
	}
	if w.count == 0 {
		w.net.Eng.AtArgPri(at, wireDeliverFn, w, w.pri)
	}
	if w.count == len(w.buf) {
		w.grow()
	}
	w.buf[(w.head+w.count)&(len(w.buf)-1)] = wireEnt{at, p}
	w.count++
}

func (w *wire) pop() *packet.Packet {
	ent := w.buf[w.head]
	w.buf[w.head] = wireEnt{} // drop the frame reference (pool hygiene)
	w.head = (w.head + 1) & (len(w.buf) - 1)
	w.count--
	return ent.p
}

// grow doubles the power-of-two ring (same policy as fifo).
func (w *wire) grow() {
	n := len(w.buf) * 2
	if n == 0 {
		n = 16
	}
	nb := make([]wireEnt, n)
	for i := 0; i < w.count; i++ {
		nb[i] = w.buf[(w.head+i)&(len(w.buf)-1)]
	}
	w.buf = nb
	w.head = 0
}
