// Cluster wires one topology into k shard Networks for the sharded
// conservative-window executor (see exp/shardexec.go). Each shard owns
// the devices its partition assigns to it and runs on its own engine,
// collector and packet pool; the only shard-crossing state is the set
// of cross-shard wires, whose frames are staged into per-link mailboxes
// and handed to the peer shard's mirror chain at barrier windows.

package device

import (
	"fmt"

	"floodgate/internal/cc"
	"floodgate/internal/fault"
	"floodgate/internal/forensics"
	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/units"
)

// xlink is one cross-shard directed link: the sending shard's wire
// stages frames into pend (instead of arming a local timer), and the
// receiving shard's mirror chain delivers them after the exchange. The
// mirror reuses the link's global wire priority, so delivery order is
// exactly what a single-shard run would execute.
type xlink struct {
	pend   []wireEnt
	mirror wire
}

// Cluster is a partitioned network: one shard Network per engine.
type Cluster struct {
	Topo   *topo.Topology
	Assign []int      // NodeID -> shard index
	Nets   []*Network // one per shard

	flows     []*Flow // shared flow table; [0] is the nil sentinel
	lastStart units.Time
	sealed    bool
	xlinks    []*xlink // in global directed-port order (determinism)
}

// NewCluster builds k shard networks over one topology. base supplies
// everything but Engine, Stats and Shard, which are set per shard.
// assign must come from a partition that never cuts a host-ToR link
// (topo.Partition guarantees this).
func NewCluster(base Config, engines []*sim.Engine, collectors []*stats.Collector, assign []int) *Cluster {
	k := len(engines)
	if k < 1 || len(collectors) != k {
		panic("device: NewCluster needs one engine and one collector per shard")
	}
	if len(assign) != len(base.Topo.Nodes) {
		panic("device: shard assignment length must match node count")
	}
	c := &Cluster{
		Topo:   base.Topo,
		Assign: assign,
		Nets:   make([]*Network, k),
		flows:  []*Flow{nil},
	}
	for i := 0; i < k; i++ {
		cfg := base
		cfg.Engine = engines[i]
		cfg.Stats = collectors[i]
		if i > 0 && base.Forensics != nil {
			// Each shard records into its own sibling; BuildReport merges
			// them deterministically (shared-nothing, like the collectors).
			cfg.Forensics = base.Forensics.Sibling()
		}
		cfg.Shard = &ShardSpec{Index: i, Assign: assign}
		c.Nets[i] = New(cfg)
	}
	// Wire up the shard-crossing links, in directed-port order.
	for _, node := range c.Topo.Nodes {
		for pi := range node.Ports {
			pt := &node.Ports[pi]
			s, d := assign[node.ID], assign[pt.Peer]
			if s == d {
				continue
			}
			if node.Kind == topo.HostNode || c.Topo.Node(pt.Peer).Kind == topo.HostNode {
				panic(fmt.Sprintf("device: host link %d-%d crosses shard boundary", node.ID, pt.Peer))
			}
			xl := &xlink{}
			w := c.Nets[s].wireOf(node.ID, pi)
			w.staged = xl
			xl.mirror.init(c.Nets[d], pt.Peer, pt.PeerPort, w.pri)
			c.xlinks = append(c.xlinks, xl)
		}
	}
	return c
}

// K returns the shard count.
func (c *Cluster) K() int { return len(c.Nets) }

// AddFlow registers a flow from src to dst starting at the given time.
// Flows must be added in a fixed global order before SealFlows: the
// FlowID sequence and each shard's injection order are part of the
// deterministic contract.
func (c *Cluster) AddFlow(src, dst packet.NodeID, size units.ByteSize, start units.Time, cat packet.Category) *Flow {
	if len(c.flows) > 1 && start < c.lastStart {
		panic("device: AddFlow starts must be non-decreasing (sort specs by Start)")
	}
	c.lastStart = start
	return c.newFlow(src, dst, size, start, cat)
}

// AddAppFlow registers a deferred application-plane flow: the per-shard
// injection chains skip it and it starts only when the shard that owns
// its source calls Network.Launch at runtime. Registration order still
// assigns FlowIDs, so the attempt-flow table is part of the
// deterministic contract; attempt (>= 1) stamps the flow for forensics
// and trace attribution. Start carries the earliest possible launch
// time (informative until Launch overwrites it with the real one).
func (c *Cluster) AddAppFlow(src, dst packet.NodeID, size units.ByteSize, start units.Time, cat packet.Category, attempt int) *Flow {
	if attempt < 1 {
		panic("device: AddAppFlow attempt must be >= 1")
	}
	f := c.newFlow(src, dst, size, start, cat)
	f.Attempt = attempt
	f.manual = true
	return f
}

func (c *Cluster) newFlow(src, dst packet.NodeID, size units.ByteSize, start units.Time, cat packet.Category) *Flow {
	if c.sealed {
		panic("device: AddFlow after SealFlows")
	}
	if src == dst {
		panic("device: flow with src == dst")
	}
	if size <= 0 {
		panic("device: flow with non-positive size")
	}
	sn := c.Nets[c.Assign[src]]
	sh := sn.HostsByID[src]
	dh := c.Nets[c.Assign[dst]].HostsByID[dst]
	if sh == nil || dh == nil {
		panic(fmt.Sprintf("device: flow endpoints must be hosts (%d -> %d)", src, dst))
	}
	id := packet.FlowID(len(c.flows))
	env := cc.Env{
		LinkRate: sh.port.Rate,
		BaseRTT:  sn.Cfg.BaseRTT,
		BDP:      units.BDP(sh.port.Rate, sn.Cfg.BaseRTT),
	}
	f := &Flow{
		ID: id, Src: src, Dst: dst, Size: size, Cat: cat,
		Start: start, ctrl: sn.Cfg.CC(env), net: sn,
	}
	c.flows = append(c.flows, f)
	return f
}

// flowInjector walks one shard's share of the flow table (sources owned
// by the shard, in global registration order) and starts each flow at
// its Start time. One chained PriStart event per shard keeps the event
// queue shallow no matter how many flows are registered — the same
// progressive-injection idea the old exp.Run loop used, made
// partition-invariant: starts run before any same-timestamp wire
// delivery or timer, in global spec order within each shard.
type flowInjector struct {
	net   *Network
	flows []*Flow
	idx   int
}

func flowInjectFn(a any) {
	in := a.(*flowInjector)
	now := in.net.Eng.Now()
	for in.idx < len(in.flows) && in.flows[in.idx].Start <= now {
		f := in.flows[in.idx]
		in.idx++
		in.net.HostsByID[f.Src].startFlow(f)
	}
	if in.idx < len(in.flows) {
		in.net.Eng.AtArgPri(in.flows[in.idx].Start, flowInjectFn, in, sim.PriStart)
	}
}

// SealFlows publishes the shared flow table to every shard and arms the
// per-shard injection chains. Call after the last AddFlow and before
// running; flow lookups on any shard then resolve against the same
// (immutable) slice.
func (c *Cluster) SealFlows() {
	c.sealed = true
	for _, n := range c.Nets {
		n.flows = c.flows
		if n.frx != nil {
			n.frx.Seal(len(c.flows))
		}
	}
	for si, n := range c.Nets {
		var own []*Flow
		for _, f := range c.flows[1:] {
			if f.manual {
				continue // application-launched (Network.Launch), not injected
			}
			if c.Assign[f.Src] == si {
				own = append(own, f)
			}
		}
		if len(own) == 0 {
			continue
		}
		in := &flowInjector{net: n, flows: own}
		n.Eng.AtArgPri(own[0].Start, flowInjectFn, in, sim.PriStart)
	}
}

// Flows returns all registered flows (reporting helper).
func (c *Cluster) Flows() []*Flow { return c.flows[1:] }

// Recorders returns each shard's forensics recorder in shard order;
// empty when forensics is disabled.
func (c *Cluster) Recorders() []*forensics.Recorder {
	var rs []*forensics.Recorder
	for _, n := range c.Nets {
		if n.frx != nil {
			rs = append(rs, n.frx)
		}
	}
	return rs
}

// InstallFaults arms the plan on every shard; each schedules only the
// sub-events touching its own devices (see faults.go).
func (c *Cluster) InstallFaults(p *fault.Plan, seed uint64) {
	for _, n := range c.Nets {
		n.InstallFaults(p, seed)
	}
}

// ExchangeFrames drains every cross-shard mailbox into its mirror
// chain, in global directed-port order. Call only at a barrier, with
// every engine stopped at the same time u: staged arrivals are then
// strictly in each receiver's future (the conservative-lookahead
// guarantee), so the mirror pushes never schedule into the past.
// Returns the number of frames moved.
func (c *Cluster) ExchangeFrames() int {
	moved := 0
	for _, xl := range c.xlinks {
		if len(xl.pend) == 0 {
			continue
		}
		for i := range xl.pend {
			ent := xl.pend[i]
			xl.pend[i] = wireEnt{}
			xl.mirror.push(ent.at, ent.p)
		}
		moved += len(xl.pend)
		xl.pend = xl.pend[:0]
	}
	return moved
}

// NextAt returns the earliest queued event time across all shards.
// Valid only at a barrier after ExchangeFrames (so no frame is hiding
// in a mailbox); the result is then partition-invariant, because the
// union of the shards' queues is the same global event multiset a
// single-shard run holds.
func (c *Cluster) NextAt() (units.Time, bool) {
	var min units.Time
	ok := false
	for _, n := range c.Nets {
		if at, ok2 := n.Eng.NextAt(); ok2 && (!ok || at < min) {
			min, ok = at, true
		}
	}
	return min, ok
}

// DeliveredBytes sums delivered payload over the shards.
func (c *Cluster) DeliveredBytes() units.ByteSize {
	var b units.ByteSize
	for _, n := range c.Nets {
		b += n.DeliveredBytes()
	}
	return b
}

// Processed sums executed events over the shard engines.
func (c *Cluster) Processed() uint64 {
	var p uint64
	for _, n := range c.Nets {
		p += n.Eng.Processed
	}
	return p
}

// FaultStats aggregates the shards' fault counters (field-wise sums;
// each counter is counted on exactly one shard).
func (c *Cluster) FaultStats() FaultStats {
	var fs FaultStats
	for _, n := range c.Nets {
		s := n.FaultStats()
		fs.LinkEvents += s.LinkEvents
		fs.LinksDown += s.LinksDown
		fs.Restarts += s.Restarts
		fs.Resyncs += s.Resyncs
	}
	return fs
}

// StallSnapshot aggregates the shards' stall-relevant state.
func (c *Cluster) StallSnapshot() StallSnapshot {
	var ss StallSnapshot
	for _, n := range c.Nets {
		s := n.StallSnapshot()
		ss.DeliveredBytes += s.DeliveredBytes
		ss.ExhaustedWindows += s.ExhaustedWindows
		ss.WindowDeficit += s.WindowDeficit
		ss.ParkedBytes += s.ParkedBytes
		ss.PausedSwitchPorts += s.PausedSwitchPorts
		ss.PausedHosts += s.PausedHosts
		ss.LinksDown += s.LinksDown
	}
	return ss
}

// Finalize closes still-open statistics intervals on every shard.
func (c *Cluster) Finalize() {
	for _, n := range c.Nets {
		n.Finalize()
	}
}

// MergedStats folds shards 1..k-1 into shard 0's collector and returns
// it. Call once, after the run completes.
func (c *Cluster) MergedStats() *stats.Collector {
	agg := c.Nets[0].Stats
	for _, n := range c.Nets[1:] {
		agg.Merge(n.Stats)
	}
	return agg
}
