// Package stats collects everything the paper's evaluation reports:
// flow completion times by traffic category, maximum buffer occupancy
// per switch and per port class, PFC pause time per fabric layer,
// per-hop queuing delay, throughput and bandwidth-breakdown time
// series, control/credit overhead, drops and retransmissions. The
// collector is updated synchronously from the single-threaded event
// loop; no locking.
package stats

import (
	"sort"

	"floodgate/internal/packet"
	"floodgate/internal/topo"
	"floodgate/internal/units"
)

// Category re-exports the flow category carried on packets.
type Category = packet.Category

// Flow categories.
const (
	CatIncast       = packet.CatIncast
	CatVictimIncast = packet.CatVictimIncast
	CatVictimPFC    = packet.CatVictimPFC
	NumCategories   = packet.NumCategories
)

// WireClass buckets on-wire bytes for the Fig 18 stacking diagram.
type WireClass uint8

// Wire classes.
const (
	WireData   WireClass = iota // data segments (incl. retransmissions)
	WireCtrl                    // ACKs, CNPs, NACKs, pulls, pauses
	WireCredit                  // Floodgate credits and switchSYNs
	NumWireClasses
)

var wireNames = [NumWireClasses]string{"data", "ctrl", "credit"}

func (c WireClass) String() string { return wireNames[c] }

// FCTSample records one completed flow.
type FCTSample struct {
	Flow     uint64
	Cat      Category
	Size     units.ByteSize
	Start    units.Time
	Finish   units.Time
	FCT      units.Duration
	Slowdown float64 // FCT / ideal transfer time at host line rate
}

// Collector accumulates a simulation run's measurements.
type Collector struct {
	binWidth units.Duration

	fcts [NumCategories][]FCTSample

	// Buffer occupancy maxima.
	maxClassBuf  [topo.NumPortClasses]units.ByteSize
	maxNetSwitch units.ByteSize // max over switches of per-switch max

	// Buffer occupancy time series per port class (Fig 16): sampled as a
	// running max within each bin.
	bufSeries [topo.NumPortClasses][]units.ByteSize

	// PFC pause time per layer and pause event count.
	pfcPause  [4]units.Duration // indexed by topo.Layer
	pfcEvents int

	// Per-hop queuing delay of non-incast data packets.
	queueDelaySum   [topo.NumPortClasses]units.Duration
	queueDelayCount [topo.NumPortClasses]int64

	// Received-byte time series per category (Fig 2) and wire-byte time
	// series per wire class summed over switch egress ports (Fig 18).
	rxSeries   [NumCategories][]units.ByteSize
	wireSeries [NumWireClasses][]units.ByteSize
	wireTotal  [NumWireClasses]units.ByteSize

	Drops       int64
	Trims       int64
	Retransmits int64

	// MaxVOQInUse is the peak number of simultaneously occupied VOQs on
	// any one switch (reported by the Floodgate module).
	MaxVOQInUse int
}

// NewCollector returns a collector with the given time-series bin width.
func NewCollector(binWidth units.Duration) *Collector {
	if binWidth <= 0 {
		binWidth = 10 * units.Microsecond
	}
	return &Collector{binWidth: binWidth}
}

// BinWidth returns the time-series bin width.
func (c *Collector) BinWidth() units.Duration { return c.binWidth }

func (c *Collector) bin(t units.Time) int { return int(int64(t) / int64(c.binWidth)) }

func grow(s []units.ByteSize, idx int) []units.ByteSize {
	for len(s) <= idx {
		s = append(s, 0)
	}
	return s
}

// FlowDone records a completed flow. lineRate is the destination host
// link rate, used for the slowdown normalisation.
func (c *Collector) FlowDone(flow uint64, cat Category, size units.ByteSize, start, finish units.Time, lineRate units.BitRate) {
	fct := finish.Sub(start)
	ideal := units.TxTime(size, lineRate)
	slow := 0.0
	if ideal > 0 {
		slow = float64(fct) / float64(ideal)
	}
	c.fcts[cat] = append(c.fcts[cat], FCTSample{
		Flow: flow, Cat: cat, Size: size, Start: start, Finish: finish, FCT: fct, Slowdown: slow,
	})
}

// SwitchBuffer reports a switch's new total buffer occupancy. Only the
// network-wide maximum is retained: the per-switch maximum never exceeds
// it, so a single comparison is an equivalent gate.
func (c *Collector) SwitchBuffer(node int32, total units.ByteSize) {
	if total > c.maxNetSwitch {
		c.maxNetSwitch = total
	}
}

// PortBuffer reports a port's new buffered byte count (egress queue
// plus VOQ bytes routed through it).
func (c *Collector) PortBuffer(now units.Time, node int32, port int32, class topo.PortClass, bytes units.ByteSize) {
	if bytes > c.maxClassBuf[class] {
		c.maxClassBuf[class] = bytes
	}
	idx := c.bin(now)
	c.bufSeries[class] = grow(c.bufSeries[class], idx)
	if bytes > c.bufSeries[class][idx] {
		c.bufSeries[class][idx] = bytes
	}
}

// PFCPaused accumulates pause time at a fabric layer.
func (c *Collector) PFCPaused(layer topo.Layer, d units.Duration) {
	c.pfcPause[layer] += d
	c.pfcEvents++
}

// QueueDelay records one data packet's queuing delay at a port class.
func (c *Collector) QueueDelay(class topo.PortClass, d units.Duration) {
	c.queueDelaySum[class] += d
	c.queueDelayCount[class]++
}

// Received adds delivered payload bytes to the per-category series.
func (c *Collector) Received(now units.Time, cat Category, bytes units.ByteSize) {
	idx := c.bin(now)
	c.rxSeries[cat] = grow(c.rxSeries[cat], idx)
	c.rxSeries[cat][idx] += bytes
}

// OnWire adds transmitted bytes (switch egress only) to the wire series.
func (c *Collector) OnWire(now units.Time, class WireClass, bytes units.ByteSize) {
	idx := c.bin(now)
	c.wireSeries[class] = grow(c.wireSeries[class], idx)
	c.wireSeries[class][idx] += bytes
	c.wireTotal[class] += bytes
}

// Drop, Trim and Retransmit bump the respective counters.
func (c *Collector) Drop()       { c.Drops++ }
func (c *Collector) Trim()       { c.Trims++ }
func (c *Collector) Retransmit() { c.Retransmits++ }

// VOQInUse reports a switch's current number of occupied VOQs.
func (c *Collector) VOQInUse(n int) {
	if n > c.MaxVOQInUse {
		c.MaxVOQInUse = n
	}
}

// Merge folds another collector into c. Every reduction the collector
// feeds is order-independent — FCT samples are consumed as a multiset
// (sums, sorts, percentiles), occupancy maxima merge by max, and the
// time series merge per bin (max for buffer occupancy, sum for byte
// counts) — so merging per-shard collectors in shard order yields the
// same reductions as a single-collector sequential run. The sharded
// executor relies on this to aggregate results.
func (c *Collector) Merge(o *Collector) {
	for i := Category(0); i < NumCategories; i++ {
		c.fcts[i] = append(c.fcts[i], o.fcts[i]...)
		c.rxSeries[i] = mergeBins(c.rxSeries[i], o.rxSeries[i], false)
	}
	for cl := topo.PortClass(0); cl < topo.NumPortClasses; cl++ {
		if o.maxClassBuf[cl] > c.maxClassBuf[cl] {
			c.maxClassBuf[cl] = o.maxClassBuf[cl]
		}
		c.bufSeries[cl] = mergeBins(c.bufSeries[cl], o.bufSeries[cl], true)
		c.queueDelaySum[cl] += o.queueDelaySum[cl]
		c.queueDelayCount[cl] += o.queueDelayCount[cl]
	}
	if o.maxNetSwitch > c.maxNetSwitch {
		c.maxNetSwitch = o.maxNetSwitch
	}
	for l := range c.pfcPause {
		c.pfcPause[l] += o.pfcPause[l]
	}
	c.pfcEvents += o.pfcEvents
	for w := WireClass(0); w < NumWireClasses; w++ {
		c.wireSeries[w] = mergeBins(c.wireSeries[w], o.wireSeries[w], false)
		c.wireTotal[w] += o.wireTotal[w]
	}
	c.Drops += o.Drops
	c.Trims += o.Trims
	c.Retransmits += o.Retransmits
	if o.MaxVOQInUse > c.MaxVOQInUse {
		c.MaxVOQInUse = o.MaxVOQInUse
	}
}

// mergeBins combines two binned series element-wise (max or sum),
// extending dst as needed.
func mergeBins(dst, src []units.ByteSize, byMax bool) []units.ByteSize {
	if len(src) > len(dst) {
		dst = grow(dst, len(src)-1)
	}
	for i, v := range src {
		if byMax {
			if v > dst[i] {
				dst[i] = v
			}
		} else {
			dst[i] += v
		}
	}
	return dst
}

// ---- Accessors / reductions ----

// FCTs returns the samples of one category.
func (c *Collector) FCTs(cat Category) []FCTSample { return c.fcts[cat] }

// AllFCTs returns every sample across categories.
func (c *Collector) AllFCTs() []FCTSample {
	var all []FCTSample
	for i := Category(0); i < NumCategories; i++ {
		all = append(all, c.fcts[i]...)
	}
	return all
}

// PoissonFCTs returns the non-incast (background) samples.
func (c *Collector) PoissonFCTs() []FCTSample {
	var all []FCTSample
	all = append(all, c.fcts[CatVictimIncast]...)
	all = append(all, c.fcts[CatVictimPFC]...)
	return all
}

// FCTStats reduces samples to (average, p99) durations. Zero samples
// yield zeros.
func FCTStats(samples []FCTSample) (avg, p99 units.Duration) {
	if len(samples) == 0 {
		return 0, 0
	}
	ds := make([]units.Duration, len(samples))
	var sum units.Duration
	for i, s := range samples {
		ds[i] = s.FCT
		sum += s.FCT
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return sum / units.Duration(len(samples)), Percentile(ds, 0.99)
}

// Percentile returns the p-quantile (0..1) of sorted durations using
// nearest-rank.
func Percentile(sorted []units.Duration, p float64) units.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// CDF reduces samples to (value, cumulative fraction) points suitable
// for plotting; at most maxPoints evenly spaced ranks.
func CDF(samples []FCTSample, maxPoints int) (xs []units.Duration, ys []float64) {
	if len(samples) == 0 {
		return nil, nil
	}
	ds := make([]units.Duration, len(samples))
	for i, s := range samples {
		ds[i] = s.FCT
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	if maxPoints <= 0 || maxPoints > len(ds) {
		maxPoints = len(ds)
	}
	for i := 0; i < maxPoints; i++ {
		rank := (i + 1) * len(ds) / maxPoints
		xs = append(xs, ds[rank-1])
		ys = append(ys, float64(rank)/float64(len(ds)))
	}
	return xs, ys
}

// MaxSwitchBuffer returns the network-wide maximum per-switch occupancy.
func (c *Collector) MaxSwitchBuffer() units.ByteSize { return c.maxNetSwitch }

// MaxClassBuffer returns the maximum per-port occupancy seen in a class.
func (c *Collector) MaxClassBuffer(class topo.PortClass) units.ByteSize {
	return c.maxClassBuf[class]
}

// PFCPauseTime returns the accumulated pause duration at a layer.
func (c *Collector) PFCPauseTime(layer topo.Layer) units.Duration { return c.pfcPause[layer] }

// PFCEventCount returns the number of pause periods recorded.
func (c *Collector) PFCEventCount() int { return c.pfcEvents }

// AvgQueueDelay returns the mean per-packet queuing delay at a class.
func (c *Collector) AvgQueueDelay(class topo.PortClass) units.Duration {
	if c.queueDelayCount[class] == 0 {
		return 0
	}
	return c.queueDelaySum[class] / units.Duration(c.queueDelayCount[class])
}

// RxSeries returns the received-byte bins for a category.
func (c *Collector) RxSeries(cat Category) []units.ByteSize { return c.rxSeries[cat] }

// RxThroughput converts a category's bins to bit rates.
func (c *Collector) RxThroughput(cat Category) []units.BitRate {
	return toRates(c.rxSeries[cat], c.binWidth)
}

// WireThroughput converts a wire class's bins to bit rates.
func (c *Collector) WireThroughput(class WireClass) []units.BitRate {
	return toRates(c.wireSeries[class], c.binWidth)
}

// BufSeries returns the per-bin max port occupancy of a class.
func (c *Collector) BufSeries(class topo.PortClass) []units.ByteSize {
	return c.bufSeries[class]
}

// WireTotal returns total bytes placed on switch egress wires per class.
func (c *Collector) WireTotal(class WireClass) units.ByteSize { return c.wireTotal[class] }

// AvgWireRate returns the average rate of a wire class over the run.
func (c *Collector) AvgWireRate(class WireClass, runtime units.Duration) units.BitRate {
	return units.Rate(c.wireTotal[class], runtime)
}

func toRates(bins []units.ByteSize, w units.Duration) []units.BitRate {
	out := make([]units.BitRate, len(bins))
	for i, b := range bins {
		out[i] = units.Rate(b, w)
	}
	return out
}

// SizeBucket labels a flow-size class for slowdown breakdowns.
type SizeBucket struct {
	Label string
	Max   units.ByteSize // inclusive upper bound
}

// DefaultSizeBuckets follows the common small/medium/large split used
// in datacenter transport evaluations.
var DefaultSizeBuckets = []SizeBucket{
	{"<=10KB", 10 * units.KB},
	{"<=100KB", 100 * units.KB},
	{"<=1MB", units.MB},
	{">1MB", 1 << 62},
}

// SlowdownStats reduces samples to (mean, p99) FCT slowdown per size
// bucket. Buckets with no samples yield zeros.
func SlowdownStats(samples []FCTSample, buckets []SizeBucket) (means, p99s []float64) {
	means = make([]float64, len(buckets))
	p99s = make([]float64, len(buckets))
	per := make([][]float64, len(buckets))
	for _, s := range samples {
		for bi, b := range buckets {
			if s.Size <= b.Max {
				per[bi] = append(per[bi], s.Slowdown)
				break
			}
		}
	}
	for bi, vals := range per {
		if len(vals) == 0 {
			continue
		}
		sort.Float64s(vals)
		var sum float64
		for _, v := range vals {
			sum += v
		}
		means[bi] = sum / float64(len(vals))
		idx := int(0.99*float64(len(vals))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(vals) {
			idx = len(vals) - 1
		}
		p99s[bi] = vals[idx]
	}
	return means, p99s
}
