package stats

import (
	"testing"
	"testing/quick"

	"floodgate/internal/topo"
	"floodgate/internal/units"
)

func TestFlowDoneAndStats(t *testing.T) {
	c := NewCollector(10 * units.Microsecond)
	c.FlowDone(1, CatIncast, 100*units.KB, 0, units.Time(100*units.Microsecond), 10*units.Gbps)
	c.FlowDone(2, CatIncast, 100*units.KB, 0, units.Time(300*units.Microsecond), 10*units.Gbps)
	avg, p99 := FCTStats(c.FCTs(CatIncast))
	if avg != 200*units.Microsecond {
		t.Fatalf("avg = %v", avg)
	}
	if p99 != 300*units.Microsecond {
		t.Fatalf("p99 = %v", p99)
	}
	s := c.FCTs(CatIncast)[0]
	// 100KB at 10Gbps ideal = 80us; slowdown = 100/80.
	if s.Slowdown < 1.24 || s.Slowdown > 1.26 {
		t.Fatalf("slowdown = %v", s.Slowdown)
	}
}

func TestFCTStatsEmpty(t *testing.T) {
	if a, p := FCTStats(nil); a != 0 || p != 0 {
		t.Fatal("empty stats should be zero")
	}
}

func TestPercentile(t *testing.T) {
	var ds []units.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, units.Duration(i))
	}
	if got := Percentile(ds, 0.5); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(ds, 0.99); got != 99 {
		t.Fatalf("p99 = %v", got)
	}
	if got := Percentile(ds, 1); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestPercentileWithinRange(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ds := make([]units.Duration, len(raw))
		for i, v := range raw {
			ds[i] = units.Duration(v)
		}
		// sort
		for i := 1; i < len(ds); i++ {
			for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
				ds[j], ds[j-1] = ds[j-1], ds[j]
			}
		}
		p := float64(pRaw) / 255
		got := Percentile(ds, p)
		return got >= ds[0] && got <= ds[len(ds)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFShape(t *testing.T) {
	c := NewCollector(0)
	for i := 1; i <= 50; i++ {
		c.FlowDone(uint64(i), CatVictimPFC, units.KB, 0, units.Time(i)*units.Time(units.Microsecond), units.Gbps)
	}
	xs, ys := CDF(c.FCTs(CatVictimPFC), 10)
	if len(xs) != 10 || len(ys) != 10 {
		t.Fatalf("CDF points = %d/%d", len(xs), len(ys))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] || ys[i] < ys[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
	if ys[len(ys)-1] != 1 {
		t.Fatalf("CDF should end at 1, got %v", ys[len(ys)-1])
	}
}

func TestBufferMaxima(t *testing.T) {
	c := NewCollector(0)
	c.SwitchBuffer(1, 100)
	c.SwitchBuffer(1, 50)
	c.SwitchBuffer(2, 80)
	if got := c.MaxSwitchBuffer(); got != 100 {
		t.Fatalf("max switch buffer = %v", got)
	}
	c.PortBuffer(0, 1, 0, topo.ClassToRDown, 60)
	c.PortBuffer(0, 1, 0, topo.ClassToRDown, 40)
	c.PortBuffer(0, 2, 1, topo.ClassCore, 55)
	if got := c.MaxClassBuffer(topo.ClassToRDown); got != 60 {
		t.Fatalf("class max = %v", got)
	}
	if got := c.MaxClassBuffer(topo.ClassCore); got != 55 {
		t.Fatalf("core max = %v", got)
	}
}

func TestBufSeriesBinning(t *testing.T) {
	c := NewCollector(10 * units.Microsecond)
	c.PortBuffer(units.Time(5*units.Microsecond), 1, 0, topo.ClassCore, 10)
	c.PortBuffer(units.Time(9*units.Microsecond), 1, 0, topo.ClassCore, 30)
	c.PortBuffer(units.Time(15*units.Microsecond), 1, 0, topo.ClassCore, 20)
	s := c.BufSeries(topo.ClassCore)
	if len(s) != 2 || s[0] != 30 || s[1] != 20 {
		t.Fatalf("series = %v", s)
	}
}

func TestPFCAccounting(t *testing.T) {
	c := NewCollector(0)
	c.PFCPaused(topo.LayerToR, 100*units.Microsecond)
	c.PFCPaused(topo.LayerToR, 50*units.Microsecond)
	c.PFCPaused(topo.LayerCore, 10*units.Microsecond)
	if got := c.PFCPauseTime(topo.LayerToR); got != 150*units.Microsecond {
		t.Fatalf("ToR pause = %v", got)
	}
	if c.PFCEventCount() != 3 {
		t.Fatalf("events = %d", c.PFCEventCount())
	}
}

func TestQueueDelayAverage(t *testing.T) {
	c := NewCollector(0)
	c.QueueDelay(topo.ClassCore, 10)
	c.QueueDelay(topo.ClassCore, 30)
	if got := c.AvgQueueDelay(topo.ClassCore); got != 20 {
		t.Fatalf("avg = %v", got)
	}
	if c.AvgQueueDelay(topo.ClassToRUp) != 0 {
		t.Fatal("empty class should average 0")
	}
}

func TestRxAndWireSeries(t *testing.T) {
	c := NewCollector(10 * units.Microsecond)
	c.Received(0, CatIncast, 1000)
	c.Received(units.Time(25*units.Microsecond), CatIncast, 500)
	rx := c.RxSeries(CatIncast)
	if len(rx) != 3 || rx[0] != 1000 || rx[2] != 500 {
		t.Fatalf("rx series = %v", rx)
	}
	rates := c.RxThroughput(CatIncast)
	if rates[0] != units.Rate(1000, 10*units.Microsecond) {
		t.Fatalf("rate = %v", rates[0])
	}
	c.OnWire(0, WireCredit, 64)
	c.OnWire(0, WireData, 1500)
	if c.WireTotal(WireCredit) != 64 || c.WireTotal(WireData) != 1500 {
		t.Fatal("wire totals wrong")
	}
	if c.AvgWireRate(WireData, 10*units.Microsecond) != units.Rate(1500, 10*units.Microsecond) {
		t.Fatal("avg wire rate wrong")
	}
}

func TestPoissonFCTsCombines(t *testing.T) {
	c := NewCollector(0)
	c.FlowDone(1, CatVictimIncast, 1, 0, 1, units.Gbps)
	c.FlowDone(2, CatVictimPFC, 1, 0, 1, units.Gbps)
	c.FlowDone(3, CatIncast, 1, 0, 1, units.Gbps)
	if got := len(c.PoissonFCTs()); got != 2 {
		t.Fatalf("poisson samples = %d", got)
	}
	if got := len(c.AllFCTs()); got != 3 {
		t.Fatalf("all samples = %d", got)
	}
}

func TestCounters(t *testing.T) {
	c := NewCollector(0)
	c.Drop()
	c.Trim()
	c.Retransmit()
	c.VOQInUse(3)
	c.VOQInUse(1)
	if c.Drops != 1 || c.Trims != 1 || c.Retransmits != 1 || c.MaxVOQInUse != 3 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestSlowdownStats(t *testing.T) {
	c := NewCollector(0)
	// 5KB flow at exactly line rate -> slowdown 1.
	c.FlowDone(1, CatVictimPFC, 5*units.KB, 0, units.Time(units.TxTime(5*units.KB, units.Gbps)), units.Gbps)
	// 50KB flow at half line rate -> slowdown 2.
	c.FlowDone(2, CatVictimPFC, 50*units.KB, 0, units.Time(2*units.TxTime(50*units.KB, units.Gbps)), units.Gbps)
	means, p99s := SlowdownStats(c.AllFCTs(), DefaultSizeBuckets)
	if means[0] < 0.99 || means[0] > 1.01 {
		t.Fatalf("small bucket mean = %v, want ~1", means[0])
	}
	if means[1] < 1.99 || means[1] > 2.01 {
		t.Fatalf("medium bucket mean = %v, want ~2", means[1])
	}
	if p99s[2] != 0 || means[3] != 0 {
		t.Fatal("empty buckets should be zero")
	}
}

func TestSlowdownNeverBelowOneInRealRun(t *testing.T) {
	// Slowdown is FCT / ideal line-rate time, which real runs can only
	// exceed (propagation, headers).
	c := NewCollector(0)
	c.FlowDone(1, CatIncast, units.KB, 0, units.Time(10*units.Microsecond), units.Gbps)
	s := c.FCTs(CatIncast)[0]
	if s.Slowdown < 1 {
		t.Fatalf("slowdown %v < 1", s.Slowdown)
	}
}

// TestWireClassAccounting pins the credit-vs-control split behind the
// Fig 18 bandwidth stacking: Floodgate credits and switchSYNs are
// WireCredit, everything else non-data (ACKs, pauses, pulls) is
// WireCtrl, and the two never bleed into each other's totals.
func TestWireClassAccounting(t *testing.T) {
	bin := 10 * units.Microsecond
	c := NewCollector(bin)
	// Two bins of data, one credit burst, scattered control.
	c.OnWire(units.Time(1*units.Microsecond), WireData, 1500)
	c.OnWire(units.Time(12*units.Microsecond), WireData, 1500)
	c.OnWire(units.Time(2*units.Microsecond), WireCredit, 64)
	c.OnWire(units.Time(3*units.Microsecond), WireCredit, 64)
	c.OnWire(units.Time(4*units.Microsecond), WireCtrl, 64)

	if got := c.WireTotal(WireData); got != 3000 {
		t.Errorf("data total = %d, want 3000", got)
	}
	if got := c.WireTotal(WireCredit); got != 128 {
		t.Errorf("credit total = %d, want 128", got)
	}
	if got := c.WireTotal(WireCtrl); got != 64 {
		t.Errorf("ctrl total = %d, want 64", got)
	}

	// Per-bin throughput: bin 0 carries 1500B data, bin 1 the other 1500B.
	tp := c.WireThroughput(WireData)
	if len(tp) < 2 {
		t.Fatalf("throughput bins = %d, want >= 2", len(tp))
	}
	wantRate := units.Rate(1500, bin)
	if tp[0] != wantRate || tp[1] != wantRate {
		t.Errorf("data throughput = %v,%v, want %v each", tp[0], tp[1], wantRate)
	}
	// Credit bytes land only in bin 0.
	ctp := c.WireThroughput(WireCredit)
	if ctp[0] != units.Rate(128, bin) {
		t.Errorf("credit throughput[0] = %v, want %v", ctp[0], units.Rate(128, bin))
	}
	if len(ctp) > 1 && ctp[1] != 0 {
		t.Errorf("credit bled into bin 1: %v", ctp[1])
	}

	// Average rates over the run are totals over runtime.
	run := 20 * units.Microsecond
	if got := c.AvgWireRate(WireCredit, run); got != units.Rate(128, run) {
		t.Errorf("avg credit rate = %v, want %v", got, units.Rate(128, run))
	}
	if got := c.AvgWireRate(WireData, run); got != units.Rate(3000, run) {
		t.Errorf("avg data rate = %v, want %v", got, units.Rate(3000, run))
	}
}

func TestWireClassNames(t *testing.T) {
	want := [NumWireClasses]string{"data", "ctrl", "credit"}
	for cl := WireClass(0); cl < NumWireClasses; cl++ {
		if cl.String() != want[cl] {
			t.Errorf("class %d name = %q, want %q", cl, cl.String(), want[cl])
		}
	}
}
