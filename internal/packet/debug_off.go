//go:build !simdebug

package packet

// debugState is empty without the simdebug tag; the field and the
// assertion methods below compile away entirely.
type debugState struct{}

// PoolAcquired is a no-op without the simdebug tag.
func (p *Packet) PoolAcquired() {}

// PoolReleased is a no-op without the simdebug tag.
func (p *Packet) PoolReleased() {}

// AssertLive is a no-op without the simdebug tag.
func (p *Packet) AssertLive(where string) {}
