//go:build simdebug

package packet

import "fmt"

// debugState is the simdebug variant: it remembers whether the packet
// currently sits in the pool, so lifecycle bugs fail loudly at the
// faulty call site instead of surfacing as corrupted statistics runs
// later. The release-time ID is kept separately because a recycled
// packet's ID is rewritten on reacquire.
type debugState struct {
	released   bool
	releasedID uint64
}

// PoolAcquired marks the packet live. The pool calls it every time a
// packet is handed out (fresh or recycled).
func (p *Packet) PoolAcquired() {
	p.debug.released = false
	p.debug.releasedID = 0
}

// PoolReleased marks the packet as returned to the pool and panics if
// it is already there: a double Release means two owners, and the
// second will corrupt whatever the pool hands the packet to next.
func (p *Packet) PoolReleased() {
	if p.debug.released {
		panic(fmt.Sprintf("packet: double release of packet %d (first released as id %d)", p.ID, p.debug.releasedID))
	}
	p.debug.released = true
	p.debug.releasedID = p.ID
}

// AssertLive panics if the packet has been released to the pool —
// i.e. the caller is using a dangling pointer.
func (p *Packet) AssertLive(where string) {
	if p.debug.released {
		panic(fmt.Sprintf("packet: use after release in %s (packet released as id %d)", where, p.debug.releasedID))
	}
}
