// Package packet defines the on-wire units exchanged by simulated
// hosts and switches: data segments, acknowledgements, congestion
// notifications, Floodgate credits and switchSYNs, PFC and per-dst
// pause frames, BFC pauses, and NDP trimmed headers and pulls. A
// Packet is a plain struct — the simulator moves pointers, never
// serialises — but every packet carries an accurate wire Size so that
// link utilisation and overhead measurements (paper Fig. 17a, 18) are
// faithful.
package packet

import (
	"fmt"

	"floodgate/internal/units"
)

// NodeID identifies a device (host or switch) in the topology.
type NodeID int32

// FlowID identifies a transport flow.
type FlowID uint64

// Category tags the traffic pattern a flow belongs to, for the paper's
// victim analysis (§6.1, Fig 9). It lives here (not in stats) because
// data packets carry it across hops so switches can attribute queuing
// delay correctly.
type Category uint8

// Flow categories.
const (
	CatIncast       Category = iota // flows of the incast pattern itself
	CatVictimIncast                 // Poisson flows sharing the incast destination rack
	CatVictimPFC                    // all other Poisson flows
	NumCategories
)

var catNames = [NumCategories]string{"incast", "victim-of-incast", "victim-of-PFC"}

func (c Category) String() string {
	if c < NumCategories {
		return catNames[c]
	}
	return fmt.Sprintf("cat(%d)", uint8(c))
}

// Kind enumerates packet types.
type Kind uint8

// Packet kinds.
const (
	Data Kind = iota
	Ack
	Nack      // NDP: trimmed-packet notification from receiver
	CNP       // DCQCN congestion notification packet
	Credit    // Floodgate: aggregated credit from downstream switch
	SwitchSYN // Floodgate: credit-resync probe after timeout
	PFCPause
	PFCResume
	DstPause  // Floodgate per-dst PAUSE from first-hop ToR to host
	DstResume //
	BFCPause  // BFC per-queue pause to upstream
	BFCResume
	TagPause // PFC w/ tag: per-dst pause
	TagResume
	Pull // NDP: receiver-driven pull token
	nKinds
)

var kindNames = [nKinds]string{
	"DATA", "ACK", "NACK", "CNP", "CREDIT", "SWSYN", "PFC-PAUSE", "PFC-RESUME",
	"DST-PAUSE", "DST-RESUME", "BFC-PAUSE", "BFC-RESUME", "TAG-PAUSE", "TAG-RESUME", "PULL",
}

func (k Kind) String() string {
	if k < nKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("KIND(%d)", uint8(k))
}

// IsControl reports whether the kind travels in the lossless
// high-priority control class (never window-gated, never VOQ'd).
func (k Kind) IsControl() bool { return k != Data }

// Wire sizes. MTU is the data segment ceiling including header;
// control packets are minimum-size frames.
const (
	MTU        units.ByteSize = 1500
	HeaderSize units.ByteSize = 48 // emulated L2+L3+transport header
	CtrlSize   units.ByteSize = 64 // ACK/CNP/credit/pause wire size
	IntHopSize units.ByteSize = 8  // HPCC per-hop INT telemetry entry
)

// IntHop is one hop's inline network telemetry, appended by each
// switch a data packet traverses when INT is enabled (HPCC).
type IntHop struct {
	TxBytes  units.ByteSize // cumulative bytes transmitted by the egress port
	QLen     units.ByteSize // egress queue length at dequeue
	TS       units.Time     // local timestamp
	LinkRate units.BitRate  // egress link capacity
}

// CreditEntry is one <destination, bytes> pair inside a Floodgate
// credit packet. Cum carries the downstream switch's cumulative
// forwarded byte count for PSN-style loss recovery (§4.3).
type CreditEntry struct {
	Dst   NodeID
	Bytes units.ByteSize
	Cum   units.ByteSize
}

// Packet is a simulated frame. Fields beyond the common header are
// used only by the kinds that need them; they stay inline (no
// interface indirection) because the simulator allocates millions.
type Packet struct {
	ID   uint64
	Kind Kind
	Flow FlowID
	Src  NodeID // originating host
	Dst  NodeID // destination host (for control frames: the consumer)
	Size units.ByteSize

	// Data / ACK sequencing: byte offset of the first payload byte and
	// payload length (Size - HeaderSize for full segments).
	Seq     units.ByteSize
	Payload units.ByteSize
	Last    bool // last segment of the flow

	ECN     bool // CE mark
	Retrans bool // retransmitted segment
	Trimmed bool // NDP: payload removed in network

	// Congestion-control feedback carried on ACKs.
	AckSeq  units.ByteSize // cumulative ack (next expected byte)
	EchoECN bool
	Int     []IntHop // INT stack (HPCC); echoed back on ACKs

	// Floodgate credit payload (Kind == Credit); switchSYN reuses Dst.
	Credits []CreditEntry

	// PSN is Floodgate's per-(egress port, destination) cumulative byte
	// count, stamped by the upstream switch when it forwards the packet
	// (§4.3 loss recovery). Zero on host-originated hops.
	PSN units.ByteSize

	// FGEpoch is the forwarding switch's Floodgate boot epoch, stamped
	// alongside PSN. A mid-channel epoch change tells the downstream
	// switch its upstream restarted and the PSN sequence rebased, so it
	// must resynchronize instead of crediting a phantom gap.
	FGEpoch uint32

	// ViaVOQ marks a packet that was parked in a Floodgate VOQ at the
	// current switch (drives the §8 queue-length signal override).
	// Reset at every hop.
	ViaVOQ bool

	// Pause/resume payloads.
	PauseDst NodeID // DstPause/DstResume/TagPause/TagResume target destination
	PauseQ   int32  // BFCPause/BFCResume: upstream queue index
	PFCClass int8   // PFC priority class

	// BFC metadata carried on data packets.
	UpstreamQ int32

	// Cat is the flow's traffic category (copied onto data packets).
	Cat Category

	// Per-hop transient state, rewritten at every switch.
	InPort     int32      // ingress port index at the current switch (-1 at origin)
	EnqueuedAt units.Time // when it entered the current queue

	// EnqPauseCum is the egress port's cumulative PFC-paused duration at
	// the moment this packet was enqueued, stamped only when forensics is
	// enabled. At dequeue, pauseCum-now minus this value is the portion
	// of the packet's queueing wait attributable to PFC backpressure.
	EnqPauseCum units.Duration

	// Bookkeeping for statistics.
	SentAt   units.Time // when the source host first serialised it
	HopCount int8

	// debug is zero-size unless built with -tags simdebug, in which
	// case it tracks pool membership for the lifecycle assertions.
	debug debugState
}

// ResetKeepBuffers zeroes the packet for reuse, retaining the Int and
// Credits backing arrays so pooled packets stop allocating once warm.
func (p *Packet) ResetKeepBuffers() {
	ints := p.Int[:0]
	creds := p.Credits[:0]
	dbg := p.debug
	*p = Packet{}
	p.Int = ints
	p.Credits = creds
	p.debug = dbg
}

// NewData builds a data segment of the given payload size.
func NewData(id uint64, flow FlowID, src, dst NodeID, seq, payload units.ByteSize, last bool) *Packet {
	return &Packet{
		ID: id, Kind: Data, Flow: flow, Src: src, Dst: dst,
		Size: payload + HeaderSize, Seq: seq, Payload: payload, Last: last,
	}
}

// NewCtrl builds a minimum-size control frame of the given kind
// travelling from src to dst.
func NewCtrl(id uint64, kind Kind, flow FlowID, src, dst NodeID) *Packet {
	return &Packet{ID: id, Kind: kind, Flow: flow, Src: src, Dst: dst, Size: CtrlSize}
}

// Trim converts a data packet into an NDP trimmed header in place.
func (p *Packet) Trim() {
	p.Trimmed = true
	p.Size = HeaderSize
}

// AddInt appends one INT hop record and grows the wire size accordingly.
func (p *Packet) AddInt(h IntHop) {
	p.Int = append(p.Int, h)
	p.Size += IntHopSize
}

func (p *Packet) String() string {
	return fmt.Sprintf("%v flow=%d %d->%d seq=%d size=%d", p.Kind, p.Flow, p.Src, p.Dst, p.Seq, p.Size)
}
