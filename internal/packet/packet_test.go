package packet

import (
	"testing"

	"floodgate/internal/units"
)

func TestNewData(t *testing.T) {
	p := NewData(1, 2, 3, 4, 100, 1452, true)
	if p.Kind != Data || p.Size != 1500 || p.Seq != 100 || !p.Last {
		t.Fatalf("bad data packet: %+v", p)
	}
	if p.Kind.IsControl() {
		t.Fatal("data is not control")
	}
}

func TestNewCtrl(t *testing.T) {
	p := NewCtrl(1, Credit, 0, 3, 4)
	if p.Size != CtrlSize || !p.Kind.IsControl() {
		t.Fatalf("bad ctrl packet: %+v", p)
	}
}

func TestTrim(t *testing.T) {
	p := NewData(1, 2, 3, 4, 0, 1452, false)
	p.Trim()
	if !p.Trimmed || p.Size != HeaderSize || p.Kind != Data {
		t.Fatalf("bad trimmed packet: %+v", p)
	}
}

func TestAddIntGrowsWire(t *testing.T) {
	p := NewData(1, 2, 3, 4, 0, 100, false)
	base := p.Size
	p.AddInt(IntHop{TxBytes: 5, QLen: 10, TS: 1, LinkRate: units.Gbps})
	p.AddInt(IntHop{TxBytes: 6, QLen: 11, TS: 2, LinkRate: units.Gbps})
	if p.Size != base+2*IntHopSize || len(p.Int) != 2 {
		t.Fatalf("INT accounting wrong: size=%v hops=%d", p.Size, len(p.Int))
	}
}

func TestResetKeepBuffers(t *testing.T) {
	p := NewData(9, 2, 3, 4, 0, 100, true)
	p.AddInt(IntHop{TxBytes: 5})
	p.Credits = append(p.Credits, CreditEntry{Dst: 7, Bytes: 100})
	p.ECN = true
	p.ViaVOQ = true
	intCap := cap(p.Int)
	p.ResetKeepBuffers()
	if p.ID != 0 || p.ECN || p.ViaVOQ || p.Last || p.Size != 0 {
		t.Fatalf("reset incomplete: %+v", p)
	}
	if len(p.Int) != 0 || len(p.Credits) != 0 {
		t.Fatal("slices not truncated")
	}
	if cap(p.Int) != intCap {
		t.Fatal("Int capacity not retained")
	}
}

func TestKindStrings(t *testing.T) {
	if Data.String() != "DATA" || Credit.String() != "CREDIT" || Pull.String() != "PULL" {
		t.Fatal("kind names wrong")
	}
	if Kind(200).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestCategoryStrings(t *testing.T) {
	if CatIncast.String() != "incast" || CatVictimPFC.String() != "victim-of-PFC" {
		t.Fatal("category names wrong")
	}
}

func TestPacketString(t *testing.T) {
	p := NewData(1, 2, 3, 4, 0, 100, false)
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}
