//go:build simdebug

package packet

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want string", r, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	f()
}

func TestDoubleReleasePanics(t *testing.T) {
	p := NewData(42, 1, 0, 1, 0, 1000, false)
	p.PoolReleased()
	mustPanic(t, "double release of packet 42", p.PoolReleased)
}

func TestUseAfterReleasePanics(t *testing.T) {
	p := NewCtrl(7, Ack, 1, 0, 1)
	p.AssertLive("test") // live packet: must not panic
	p.PoolReleased()
	mustPanic(t, "use after release in deliver (packet released as id 7)", func() {
		p.AssertLive("deliver")
	})
}

func TestAcquireRevivesPacket(t *testing.T) {
	p := NewCtrl(9, Credit, 1, 0, 1)
	p.PoolReleased()
	p.ResetKeepBuffers() // what the pool does on reuse; must keep the flag
	mustPanic(t, "use after release", func() { p.AssertLive("reset") })
	p.PoolAcquired()
	p.AssertLive("after reacquire") // must not panic
	p.PoolReleased()                // and the cycle can repeat
}
