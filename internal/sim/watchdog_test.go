package sim

import (
	"testing"

	"floodgate/internal/units"
)

// TestWatchdogTripsOnStall proves a run with no progress terminates via
// the watchdog instead of running to the time bound.
func TestWatchdogTripsOnStall(t *testing.T) {
	eng := NewEngine()
	var progress int64
	stalled := false
	w := NewWatchdog(eng, 100*units.Microsecond, func() int64 { return progress }, func() {
		stalled = true
		eng.Stop()
	})
	// Busywork events that never advance progress.
	var spin func(any)
	spin = func(any) { eng.After(units.Microsecond, func() { spin(nil) }) }
	spin(nil)
	eng.Run(units.Time(units.Second))
	if !stalled || !w.Tripped() {
		t.Fatal("watchdog did not trip on a stalled run")
	}
	if now := eng.Now(); now > units.Time(250*units.Microsecond) {
		t.Fatalf("watchdog tripped too late: %v", now)
	}
}

// TestWatchdogStaysQuietWithProgress proves steady progress never trips
// it, and Stop disarms the pending tick (which would otherwise fire —
// and trip — once progress ends).
func TestWatchdogStaysQuietWithProgress(t *testing.T) {
	eng := NewEngine()
	var progress int64
	w := NewWatchdog(eng, 50*units.Microsecond, func() int64 { return progress }, func() {
		t.Error("watchdog tripped despite progress")
	})
	var step func(any)
	step = func(any) {
		progress++
		if progress < 100 {
			eng.After(10*units.Microsecond, func() { step(nil) })
		}
	}
	step(nil)
	// Progress advances every 10us until t=990us; stop just past it,
	// while the watchdog still has a pending (re-armed) tick.
	eng.Run(units.Time(995 * units.Microsecond))
	w.Stop()
	eng.RunAll() // the canceled tick must not fire here
	if w.Tripped() {
		t.Fatal("watchdog tripped")
	}
}

// TestWatchdogTripsAfterProgressEnds proves the trip comes only once
// progress ceases, between one and two horizons later.
func TestWatchdogTripsAfterProgressEnds(t *testing.T) {
	eng := NewEngine()
	var progress int64
	var trippedAt units.Time
	w := NewWatchdog(eng, 100*units.Microsecond, func() int64 { return progress }, func() {
		trippedAt = eng.Now()
		eng.Stop()
	})
	var step func(any)
	step = func(any) {
		progress++
		if progress < 10 {
			eng.After(10*units.Microsecond, func() { step(nil) })
		}
	}
	step(nil)
	// Keep the event loop alive well past the stall point.
	var spin func(any)
	spin = func(any) { eng.After(units.Microsecond, func() { spin(nil) }) }
	spin(nil)
	eng.Run(units.Time(units.Second))
	if !w.Tripped() {
		t.Fatal("watchdog never tripped")
	}
	// Progress stops at t=90us; the trip must land in (190us, 290us].
	if trippedAt <= units.Time(190*units.Microsecond) || trippedAt > units.Time(290*units.Microsecond) {
		t.Fatalf("tripped at %v, want within (190us, 290us]", trippedAt)
	}
}
