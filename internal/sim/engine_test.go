package sim

import (
	"testing"
	"testing/quick"

	"floodgate/internal/units"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(30, func() { order = append(order, 3) })
	e.After(10, func() { order = append(order, 1) })
	e.After(20, func() { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(units.Time(5), func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("events at equal time fired out of schedule order: %v", order)
		}
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.Run(15)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 15 {
		t.Fatalf("Now() = %v, want 15", e.Now())
	}
	e.Run(25)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestRunAdvancesClockToUntilWhenIdle(t *testing.T) {
	e := NewEngine()
	e.Run(100)
	if e.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.At(10, func() { fired = true })
	if !h.Active() {
		t.Fatal("handle should be active before firing")
	}
	e.Cancel(h)
	if h.Active() {
		t.Fatal("handle should be inactive after cancel")
	}
	e.Cancel(h) // double cancel is a no-op
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelZeroHandle(t *testing.T) {
	e := NewEngine()
	e.Cancel(Handle{}) // must not panic
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []int
	var handles []Handle
	for i := 0; i < 50; i++ {
		i := i
		handles = append(handles, e.At(units.Time(i), func() { got = append(got, i) }))
	}
	// Cancel every third event.
	want := []int{}
	for i := 0; i < 50; i++ {
		if i%3 == 0 {
			e.Cancel(handles[i])
		} else {
			want = append(want, i)
		}
	}
	e.RunAll()
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSchedulingDuringRun(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(10, func() {
		order = append(order, "a")
		e.After(5, func() { order = append(order, "b") })
		e.After(0, func() { order = append(order, "now") })
	})
	e.RunAll()
	if len(order) != 3 || order[0] != "a" || order[1] != "now" || order[2] != "b" {
		t.Fatalf("order = %v", order)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.RunAll()
}

func TestStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++; e.Stop() })
	e.At(2, func() { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

func TestHeapPropertyRandomised(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []units.Time
		for _, d := range delays {
			e.At(units.Time(d), func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds should differ")
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(7)
	const n = 200000
	sum := 0.0
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
		buckets[int(v*10)]++
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
	for i, c := range buckets {
		if c < n/10-n/100 || c > n/10+n/100 {
			t.Fatalf("bucket %d count %d deviates from uniform", i, c)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.98 || mean > 1.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered %d values", len(seen))
	}
}

func TestPerm(t *testing.T) {
	r := NewRand(5)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRand(9)
	f1 := r.Fork()
	v1 := f1.Uint64()
	// Re-create and consume differently: fork stream should not depend on
	// later parent consumption.
	r2 := NewRand(9)
	f2 := r2.Fork()
	r2.Uint64()
	if f2.Uint64() != v1 {
		t.Fatal("fork stream changed by parent consumption after fork")
	}
}
