package sim

import (
	"testing"
	"testing/quick"

	"floodgate/internal/units"
)

func TestAtArgDelivery(t *testing.T) {
	e := NewEngine()
	type box struct{ v int }
	b := &box{}
	e.AtArg(5, func(a any) { a.(*box).v = 42 }, b)
	e.RunAll()
	if b.v != 42 {
		t.Fatal("AtArg callback not delivered")
	}
}

func TestAfterArgNegativePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative AfterArg did not panic")
		}
	}()
	e.AfterArg(-1, func(any) {}, nil)
}

func TestStaleHandleCannotCancelRecycledSlot(t *testing.T) {
	// A handle to an event that already fired must never cancel a new
	// event that reuses the same slot.
	e := NewEngine()
	h1 := e.At(1, func() {})
	e.RunAll() // fires and recycles the slot
	fired := false
	h2 := e.At(2, func() { fired = true })
	if h1.Active() {
		t.Fatal("stale handle reports active")
	}
	e.Cancel(h1) // must be a no-op
	if !h2.Active() {
		t.Fatal("fresh handle should be active")
	}
	e.RunAll()
	if !fired {
		t.Fatal("stale cancel killed a recycled slot's new event")
	}
}

func TestLazyCancelSkipsWithoutExecuting(t *testing.T) {
	e := NewEngine()
	fired := 0
	h := e.At(5, func() { fired++ })
	e.At(5, func() { fired++ })
	e.Cancel(h)
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Processed != 1 {
		t.Fatalf("Processed = %d, want 1 (cancelled entries don't count)", e.Processed)
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	e := NewEngine()
	h := e.At(5, func() {})
	e.At(6, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Cancel(h)
	if e.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d", e.Pending())
	}
}

func TestCancelAndRescheduleStorm(t *testing.T) {
	// Exercises slot reuse under heavy cancel/reschedule churn (the RTO
	// pattern) and checks no event is lost or duplicated.
	e := NewEngine()
	fired := 0
	var h Handle
	for i := 0; i < 10000; i++ {
		e.Cancel(h)
		h = e.At(units.Time(i+1), func() { fired++ })
	}
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d, want exactly the last scheduled event", fired)
	}
}

func TestEventPoolReuse(t *testing.T) {
	e := NewEngine()
	for round := 0; round < 100; round++ {
		for i := 0; i < 10; i++ {
			e.After(units.Duration(i), func() {})
		}
		e.RunAll()
	}
	if len(e.events) > 64 {
		t.Fatalf("event slab grew to %d despite pooling", len(e.events))
	}
}

func TestInterleavedCancelProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		e := NewEngine()
		var handles []Handle
		expected := 0
		fired := 0
		for _, op := range ops {
			switch op % 3 {
			case 0, 1:
				h := e.After(units.Duration(op)+1, func() { fired++ })
				handles = append(handles, h)
				expected++
			case 2:
				if len(handles) > 0 {
					h := handles[len(handles)-1]
					handles = handles[:len(handles)-1]
					if h.Active() {
						e.Cancel(h)
						expected--
					}
				}
			}
		}
		e.RunAll()
		return fired == expected
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
