//lint:hotpath wheel insert/advance run once per simulated event

package sim

import "floodgate/internal/units"

// Hierarchical timing wheel (calendar-queue family; cf. Brown '88 and
// the ladder queues used by NS-3). Packet simulation schedules almost
// everything a serialization time or a propagation delay ahead — a few
// hundred nanoseconds — so a comparison-based heap pays O(log n) per
// event for ordering the queue far beyond the horizon it actually pops
// from. The wheel splits the queue three ways:
//
//	cur      — 4-ary min-heap of every entry with at < base+gran: the
//	           active bucket, the only structure pops touch.
//	buckets  — ring of unsorted slices; bucket (cursor+k)&mask holds
//	           entries with at in [base+k·gran, base+(k+1)·gran) for
//	           k in [1, bucketCount). Insertion is an append: O(1).
//	overflow — 4-ary min-heap for entries at or beyond base+horizon
//	           (RTOs, SYN retransmits, progress watchdogs), so far
//	           timers never inflate the near-horizon structures.
//
// When cur drains, the cursor advances one bucket (base += gran) and
// the next bucket's entries are heapified into cur — O(1) amortized
// per event. Each advance also migrates overflow entries that now fall
// inside the horizon into its far end; when cur and all buckets are
// empty but overflow is not, base jumps directly to the overflow
// head's timestamp (no idle bucket-by-bucket stepping).
//
// Ordering invariant (why tables stay bit-identical to SchedHeap):
// every cur entry is < base+gran, every bucket entry in [base+gran,
// base+horizon), every overflow entry ≥ base+horizon — so cur's root
// is always the global (time, seq) minimum, and since entries with
// equal timestamps always land in the same structure, the exact FIFO
// tie-break order is preserved. Post-jump schedules with at < base
// (base may run ahead of the clock after a jump) fall into cur via the
// signed d < gran comparison, keeping the invariant airtight.
const (
	// wheelGranShift sets bucket width to 2^17 ps ≈ 131 ns — the MTU
	// serialization time at 100 Gbps, the natural quantum between
	// consecutive departures on one port.
	wheelGranShift   = 17
	wheelGran        = units.Duration(1) << wheelGranShift
	wheelBucketCount = 1024 // power of two; horizon ≈ 134 µs
	wheelMask        = wheelBucketCount - 1
	wheelHorizon     = wheelGran * wheelBucketCount
)

// Scheduler selects the event-queue implementation behind an Engine.
// The zero value is the default.
type Scheduler uint8

const (
	// SchedWheel is the hierarchical timing wheel (default).
	SchedWheel Scheduler = iota
	// SchedHeap is the reference single global 4-ary heap. Same
	// execution order, simpler structure; kept for cross-checking.
	SchedHeap
)

func (s Scheduler) String() string {
	switch s {
	case SchedWheel:
		return "wheel"
	case SchedHeap:
		return "heap"
	}
	return "unknown"
}

// insertWheel files one entry. d is signed: entries behind base (legal
// after a horizon jump) belong in cur with everything else below
// base+gran.
func (e *Engine) insertWheel(ent heapEnt) {
	d := int64(ent.at) - int64(e.base)
	switch {
	case d < int64(wheelGran):
		entPush(&e.cur, ent)
	case d < int64(wheelHorizon):
		idx := (e.cursor + int(d>>wheelGranShift)) & wheelMask
		e.buckets[idx] = append(e.buckets[idx], ent)
		e.wheelCnt++
	default:
		entPush(&e.overflow, ent)
	}
}

// peekWheel surfaces the global minimum into cur[0], advancing the
// cursor over empty spans and engaging the overflow heap as needed.
func (e *Engine) peekWheel() (heapEnt, bool) {
	for {
		if len(e.cur) > 0 {
			return e.cur[0], true
		}
		if e.wheelCnt > 0 {
			e.advanceBucket()
			continue
		}
		if len(e.overflow) > 0 {
			e.jumpToOverflow()
			continue
		}
		return heapEnt{}, false
	}
}

// advanceBucket moves the active span one granule forward: the next
// bucket's entries become cur, and overflow timers that the horizon
// now covers migrate into its far end (always the span [base+horizon-
// gran, base+horizon), i.e. the just-vacated ring slot — never cur, so
// the swap below cannot discard them).
func (e *Engine) advanceBucket() {
	e.cursor = (e.cursor + 1) & wheelMask
	e.base = e.base.Add(wheelGran)
	end := e.base.Add(wheelHorizon)
	for len(e.overflow) > 0 && e.overflow[0].at < end {
		ent := e.overflow[0]
		entPop(&e.overflow)
		e.placeNear(ent)
	}
	b := e.buckets[e.cursor]
	if len(b) == 0 {
		return
	}
	e.wheelCnt -= len(b)
	// Swap slices so the drained bucket donates its capacity back.
	e.cur, e.buckets[e.cursor] = b, e.cur[:0]
	entHeapInit(e.cur)
}

// jumpToOverflow handles the idle-wheel case: cur and every bucket are
// empty, so rather than stepping granule by granule toward the next
// far timer, rebase the wheel at its timestamp and migrate everything
// within the new horizon. The head itself lands in cur (d = 0), so
// progress is guaranteed.
func (e *Engine) jumpToOverflow() {
	e.base = e.overflow[0].at
	end := e.base.Add(wheelHorizon)
	for len(e.overflow) > 0 && e.overflow[0].at < end {
		ent := e.overflow[0]
		entPop(&e.overflow)
		e.placeNear(ent)
	}
}

// placeNear files an entry already known to be below base+horizon.
func (e *Engine) placeNear(ent heapEnt) {
	d := int64(ent.at) - int64(e.base)
	if d < int64(wheelGran) {
		entPush(&e.cur, ent)
		return
	}
	idx := (e.cursor + int(d>>wheelGranShift)) & wheelMask
	e.buckets[idx] = append(e.buckets[idx], ent)
	e.wheelCnt++
}

// compactWheel sweeps dead entries out of every wheel structure. Bucket
// order is append order and is preserved; cur and overflow are
// re-heapified, which cannot change pop order (the comparator is a
// strict total order, so the heap minimum is arrangement-independent).
func (e *Engine) compactWheel() {
	e.cur = e.filterLive(e.cur)
	entHeapInit(e.cur)
	e.overflow = e.filterLive(e.overflow)
	entHeapInit(e.overflow)
	e.wheelCnt = 0
	for i := range e.buckets {
		if len(e.buckets[i]) == 0 {
			continue
		}
		e.buckets[i] = e.filterLive(e.buckets[i])
		e.wheelCnt += len(e.buckets[i])
	}
	e.entCnt = len(e.cur) + e.wheelCnt + len(e.overflow)
}
