package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random source
// (splitmix64). Every stochastic choice in a simulation — flow sizes,
// arrival times, ECMP-independent tie breaks, loss injection — draws
// from one of these so results are reproducible from the seed alone.
type Rand struct{ state uint64 }

// NewRand returns a source seeded with the given value. Distinct seeds
// yield statistically independent streams.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Fork derives an independent stream; useful to give each generator its
// own source so adding one consumer does not perturb the others.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64() ^ 0xa0761d6478bd642f)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). n must be positive.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponentially distributed value with mean 1,
// via inverse-transform sampling (monotone in the underlying uniform,
// which keeps paired-seed comparisons well correlated).
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
