package sim

import (
	"testing"

	"floodgate/internal/units"
)

// TestWheelScheduleAtNow covers the d <= 0 insert path: events
// scheduled at exactly Now() — including after the clock was advanced
// by Run past the wheel base — must fire before any later event, in
// scheduling order.
func TestWheelScheduleAtNow(t *testing.T) {
	e := NewEngine()
	var order []int
	// Park a far timer so the wheel has jumped its base well past zero
	// by the time the Now()-relative events are scheduled.
	far := units.Time(10 * wheelHorizon)
	e.At(far, func() { order = append(order, 99) })
	e.Run(far - 1) // clock at far-1; base may sit anywhere ≤ far
	e.At(e.Now(), func() { order = append(order, 0) })
	e.At(e.Now(), func() {
		order = append(order, 1)
		// Scheduling at Now() from inside an event (the After(0)
		// pattern) must also run before anything later.
		e.After(0, func() { order = append(order, 2) })
	})
	e.RunAll()
	want := []int{0, 1, 2, 99}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// TestWheelBoundaryTieBreak pins FIFO tie-breaking for two events with
// an identical timestamp where the first is filed in the overflow heap
// (beyond the horizon) and the second — scheduled later, after the
// wheel advanced — lands in a near bucket. Scheduling order must win.
func TestWheelBoundaryTieBreak(t *testing.T) {
	e := NewEngine()
	target := units.Time(wheelHorizon + wheelHorizon/2)
	var order []int
	e.At(target, func() { order = append(order, 0) }) // overflow at schedule time
	if s := e.StatsSnapshot(); s.OverflowLen != 1 {
		t.Fatalf("far event not in overflow: %+v", s)
	}
	// Advance the wheel past half the horizon, then schedule the twin.
	e.At(units.Time(wheelHorizon*3/4), func() {
		e.At(target, func() { order = append(order, 1) }) // near structure now
		if s := e.StatsSnapshot(); s.OverflowLen != 0 {
			t.Fatalf("twin not migrated/near: %+v", s)
		}
	})
	e.RunAll()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("tie-break across boundary broken: %v", order)
	}
}

// TestWheelFarTimerMigration proves a timer parked beyond the horizon
// migrates into the near buckets as the wheel advances and still fires
// at exactly its timestamp, interleaved correctly with near traffic.
func TestWheelFarTimerMigration(t *testing.T) {
	e := NewEngine()
	farAt := units.Time(wheelHorizon + 3*wheelGran/2)
	var firedAt units.Time
	e.At(farAt, func() { firedAt = e.Now() })
	if s := e.StatsSnapshot(); s.OverflowLen != 1 {
		t.Fatalf("far timer not in overflow: %+v", s)
	}
	// Near traffic marches the cursor across the full ring, forcing the
	// per-advance migration path (not the idle jump).
	var last units.Time
	for at := units.Time(wheelGran / 2); at < farAt+units.Time(wheelGran); at += units.Time(wheelGran) {
		at := at
		e.At(at, func() { last = at })
	}
	e.RunAll()
	if firedAt != farAt {
		t.Fatalf("far timer fired at %v, want %v", firedAt, farAt)
	}
	if last < farAt {
		t.Fatalf("near traffic stopped early at %v", last)
	}
	if s := e.StatsSnapshot(); s.OverflowLen != 0 || s.HeapLen != 0 {
		t.Fatalf("queue not drained: %+v", s)
	}
}

// TestCancelFiredHandle: cancelling a handle whose event already fired
// must be a no-op — in particular it must not kill an unrelated event
// that recycled the same slot.
func TestCancelFiredHandle(t *testing.T) {
	e := NewEngine()
	fired := 0
	h := e.At(1, func() { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Fatalf("first event fired %d times", fired)
	}
	// Reuses h's slot with a bumped generation.
	e.At(2, func() { fired++ })
	e.Cancel(h) // stale: same slot, old generation
	e.Cancel(h) // double-cancel of a stale handle
	if e.Pending() != 1 {
		t.Fatalf("stale Cancel disturbed pending count: %d", e.Pending())
	}
	e.RunAll()
	if fired != 2 {
		t.Fatalf("slot-reusing event killed by stale handle: fired %d", fired)
	}
	if s := e.StatsSnapshot(); s.Live != 0 || s.InUse != 0 {
		t.Fatalf("accounting skewed after stale cancels: %+v", s)
	}
}

// TestCrossSchedulerIdenticalOrder is the scheduler-equivalence
// property test: a randomized schedule/cancel workload spanning the
// Now() boundary, the near buckets, and the overflow horizon must
// execute in the identical (time, seq) order on both schedulers.
func TestCrossSchedulerIdenticalOrder(t *testing.T) {
	type fire struct {
		at units.Time
		id int
	}
	run := func(s Scheduler, seed uint64) []fire {
		e := NewEngineWith(s)
		r := NewRand(seed)
		var log []fire
		id := 0
		handles := make([]Handle, 0, 64)
		var churn func(any)
		churn = func(any) {
			// Each tick: schedule a batch at mixed horizons, cancel a
			// random prior survivor, keep churning.
			for i := 0; i < 4; i++ {
				myID := id
				id++
				var d units.Duration
				switch r.Intn(4) {
				case 0:
					d = 0 // at Now()
				case 1:
					d = units.Duration(r.Int63n(int64(wheelGran))) // active bucket
				case 2:
					d = units.Duration(r.Int63n(int64(wheelHorizon))) // near buckets
				default:
					d = wheelHorizon + units.Duration(r.Int63n(int64(wheelHorizon))) // overflow
				}
				handles = append(handles, e.AfterArg(d, func(a any) {
					log = append(log, fire{e.Now(), a.(int)})
				}, myID))
			}
			if len(handles) > 0 && r.Intn(2) == 0 {
				e.Cancel(handles[r.Intn(len(handles))])
			}
			if id < 2000 {
				e.AfterArg(units.Duration(r.Int63n(int64(wheelGran*8)))+1, churn, nil)
			}
		}
		churn(nil)
		e.RunAll()
		return log
	}
	for _, seed := range []uint64{1, 7, 42} {
		wheel := run(SchedWheel, seed)
		heap := run(SchedHeap, seed)
		if len(wheel) != len(heap) {
			t.Fatalf("seed %d: fired %d (wheel) vs %d (heap)", seed, len(wheel), len(heap))
		}
		for i := range wheel {
			if wheel[i] != heap[i] {
				t.Fatalf("seed %d: divergence at event %d: wheel %+v heap %+v",
					seed, i, wheel[i], heap[i])
			}
		}
	}
}

// TestWatchdogOverflowUnderWheel pins the satellite requirement that
// progress-watchdog ticks live in the overflow heap (their horizon far
// exceeds the wheel's) rather than pinning near buckets, and that a
// stall is still caught within one to two horizons under the wheel
// scheduler despite busy near-bucket traffic.
func TestWatchdogOverflowUnderWheel(t *testing.T) {
	eng := NewEngine()
	horizon := 4 * units.Duration(wheelHorizon) // ≈ 537 µs, a realistic stall horizon
	var progress int64
	var trippedAt units.Time
	w := NewWatchdog(eng, horizon, func() int64 { return progress }, func() {
		trippedAt = eng.Now()
		eng.Stop()
	})
	if s := eng.StatsSnapshot(); s.OverflowLen != 1 || s.BucketLen != 0 || s.CurLen != 0 {
		t.Fatalf("watchdog tick not parked in overflow: %+v", s)
	}
	// Progress for 10 ticks of near-horizon traffic, then a silent spin
	// that keeps the event loop (and wheel cursor) busy without progress.
	var step func(any)
	step = func(any) {
		progress++
		if progress < 10 {
			eng.AfterArg(units.Duration(wheelGran), step, nil)
		}
	}
	step(nil)
	var spin func(any)
	spin = func(any) { eng.AfterArg(units.Duration(wheelGran)/4, spin, nil) }
	spin(nil)
	eng.Run(units.Time(units.Second))
	if !w.Tripped() {
		t.Fatal("watchdog never tripped under wheel scheduler")
	}
	stall := units.Time(9 * wheelGran) // progress ceases here
	lo, hi := stall.Add(horizon), stall.Add(2*horizon)
	if trippedAt <= lo || trippedAt > hi {
		t.Fatalf("tripped at %v, want within (%v, %v]", trippedAt, lo, hi)
	}
}
