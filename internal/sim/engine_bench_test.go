package sim

import (
	"testing"

	"floodgate/internal/units"
)

// BenchmarkEngineCorePushPop measures raw schedule/execute throughput:
// every iteration schedules one event and executes one, the heap
// holding a steady backlog.
func BenchmarkEngineCorePushPop(b *testing.B) {
	for _, backlog := range []int{16, 1024, 65536} {
		b.Run(benchName("backlog", backlog), func(b *testing.B) {
			e := NewEngine()
			n := 0
			count := func() { n++ }
			t := units.Time(0)
			for i := 0; i < backlog; i++ {
				t = t.Add(units.Nanosecond)
				e.At(t, count)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t = t.Add(units.Nanosecond)
				e.At(t, count)
				at, _ := e.nextAt()
				e.Run(at)
			}
		})
	}
}

// BenchmarkEngineCorePushPopHeap is the same workload on the reference
// heap scheduler, so the wheel's advantage stays visible in BENCH_PR*
// snapshots.
func BenchmarkEngineCorePushPopHeap(b *testing.B) {
	for _, backlog := range []int{16, 1024, 65536} {
		b.Run(benchName("backlog", backlog), func(b *testing.B) {
			e := NewEngineWith(SchedHeap)
			n := 0
			count := func() { n++ }
			t := units.Time(0)
			for i := 0; i < backlog; i++ {
				t = t.Add(units.Nanosecond)
				e.At(t, count)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t = t.Add(units.Nanosecond)
				e.At(t, count)
				at, _ := e.nextAt()
				e.Run(at)
			}
		})
	}
}

// BenchmarkEngineCoreAfterArg exercises the zero-alloc hot path:
// a pre-built capture-free callback rescheduling itself via a pointer
// argument. Steady state must not allocate (asserted by
// TestAfterArgZeroAlloc; the benchmark reports allocs/op as evidence).
func BenchmarkEngineCoreAfterArg(b *testing.B) {
	e := NewEngine()
	type payload struct{ n int }
	p := &payload{}
	var fn func(any)
	fn = func(a any) {
		a.(*payload).n++
		e.AfterArg(units.Nanosecond, fn, a)
	}
	e.AfterArg(units.Nanosecond, fn, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at, _ := e.nextAt()
		e.Run(at)
	}
}

// BenchmarkEngineCoreCancel measures the cancel-heavy regime that the
// heap compaction targets: every scheduled timer is cancelled and
// rescheduled before it fires (the go-back-N RTO pattern).
func BenchmarkEngineCoreCancel(b *testing.B) {
	for _, timers := range []int{64, 4096} {
		b.Run(benchName("timers", timers), func(b *testing.B) {
			e := NewEngine()
			nop := func() {}
			handles := make([]Handle, timers)
			horizon := units.Duration(timers) * units.Microsecond
			for i := range handles {
				handles[i] = e.After(horizon, nop)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % timers
				e.Cancel(handles[j])
				handles[j] = e.After(horizon, nop)
			}
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestAfterArgZeroAlloc asserts the AfterArg hot path allocates nothing
// once the event slab and heap are warm: the callback is capture-free
// and the pointer argument does not box.
func TestAfterArgZeroAlloc(t *testing.T) {
	e := NewEngine()
	type payload struct{ n int }
	p := &payload{}
	var fn func(any)
	fn = func(a any) {
		a.(*payload).n++
		e.AfterArg(units.Nanosecond, fn, a)
	}
	e.AfterArg(units.Nanosecond, fn, p)
	// Warm the slab and queue structures.
	for i := 0; i < 64; i++ {
		at, _ := e.nextAt()
		e.Run(at)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		at, _ := e.nextAt()
		e.Run(at)
	})
	if allocs != 0 {
		t.Fatalf("AfterArg hot path allocates %.1f allocs/op, want 0", allocs)
	}
	if p.n == 0 {
		t.Fatal("callback never ran")
	}
}

// TestHeapCompaction covers the dead-entry sweep: a cancel-heavy
// workload must not grow the heap beyond ~2x the live count, Pending
// must stay exact, and the surviving events must fire in timestamp
// order exactly as they would without compaction.
func TestHeapCompaction(t *testing.T) {
	e := NewEngine()
	var fired []int
	const keep = 100
	// Schedule `keep` survivors interleaved with 50x as many victims,
	// then cancel every victim.
	var victims []Handle
	for i := 0; i < keep; i++ {
		i := i
		e.At(units.Time(2*i+1), func() { fired = append(fired, i) })
		for j := 0; j < 50; j++ {
			victims = append(victims, e.At(units.Time(2*i+2), func() { t.Error("cancelled event fired") }))
		}
	}
	for _, h := range victims {
		e.Cancel(h)
	}
	if got := e.Pending(); got != keep {
		t.Fatalf("Pending = %d, want %d", got, keep)
	}
	if ql := e.StatsSnapshot().HeapLen; ql > 2*keep {
		t.Fatalf("queue not compacted: len %d for %d live", ql, keep)
	}
	e.RunAll()
	if len(fired) != keep {
		t.Fatalf("fired %d, want %d", len(fired), keep)
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("order broken at %d: got %d", i, v)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d", e.Pending())
	}
}

// TestCompactionPreservesTieBreak pins determinism across a sweep:
// same-timestamp events must still fire in scheduling order after a
// compaction rebuilt the heap.
func TestCompactionPreservesTieBreak(t *testing.T) {
	e := NewEngine()
	const at = units.Time(1000)
	var order []int
	var victims []Handle
	for i := 0; i < minCompactLen; i++ {
		i := i
		e.At(at, func() { order = append(order, i) })
		victims = append(victims, e.At(at, func() {}))
	}
	for _, h := range victims {
		e.Cancel(h)
	}
	e.RunAll()
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("FIFO tie-break broken after compaction: %v", order)
		}
	}
	if len(order) != minCompactLen {
		t.Fatalf("fired %d, want %d", len(order), minCompactLen)
	}
}
