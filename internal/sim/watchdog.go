package sim

import "floodgate/internal/units"

// Watchdog detects stalled simulations: if a monotone progress counter
// (e.g. delivered payload bytes) does not move for a full sim-time
// horizon, onStall fires once. Detection is tick-based, so a genuine
// stall is reported between one and two horizons after progress last
// advanced — precise enough for a diagnosis trigger and cheap enough
// (one event per horizon) to never perturb the run.
//
// The watchdog is deterministic: its ticks are ordinary engine events
// and its state depends only on the progress sequence, so arming it
// never changes a run's packet-level behaviour.
type Watchdog struct {
	eng      *Engine
	horizon  units.Duration
	progress func() int64
	onStall  func()

	last    int64
	handle  Handle
	stopped bool
	tripped bool
}

// NewWatchdog arms a watchdog on the engine. progress must be monotone
// non-decreasing; onStall runs inside the tick event (it may call
// Engine.Stop to terminate the run with a diagnosis).
func NewWatchdog(eng *Engine, horizon units.Duration, progress func() int64, onStall func()) *Watchdog {
	if horizon <= 0 {
		panic("sim: watchdog horizon must be positive")
	}
	w := &Watchdog{eng: eng, horizon: horizon, progress: progress, onStall: onStall}
	w.last = progress()
	w.handle = eng.AfterArg(horizon, watchdogTickFn, w)
	return w
}

// watchdogTickFn is the capture-free tick callback.
func watchdogTickFn(a any) { a.(*Watchdog).tick() }

func (w *Watchdog) tick() {
	if w.stopped || w.tripped {
		return
	}
	if cur := w.progress(); cur != w.last {
		w.last = cur
		w.handle = w.eng.AfterArg(w.horizon, watchdogTickFn, w)
		return
	}
	w.tripped = true
	if w.onStall != nil {
		w.onStall()
	}
}

// Stop disarms the watchdog (call when the run completes normally, so
// a pending tick draining after Engine.Stop cannot trip it).
func (w *Watchdog) Stop() {
	w.stopped = true
	w.eng.Cancel(w.handle)
}

// Tripped reports whether the watchdog fired.
func (w *Watchdog) Tripped() bool { return w.tripped }
