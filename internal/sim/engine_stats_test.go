package sim

import (
	"testing"

	"floodgate/internal/units"
)

// TestStatsSnapshot exercises the engine's self-metrics through a
// schedule / cancel / drain cycle: the high-water mark tracks the peak
// heap length, dead entries reflect lazy cancellation, and the pool's
// acquire/release balance returns to zero when the queue drains.
func TestStatsSnapshot(t *testing.T) {
	e := NewEngine()
	if s := e.StatsSnapshot(); s != (Stats{}) {
		t.Fatalf("fresh engine stats = %+v, want zero", s)
	}

	const n = 32
	handles := make([]Handle, n)
	for i := 0; i < n; i++ {
		handles[i] = e.At(units.Time(i+1), func() {})
	}
	s := e.StatsSnapshot()
	if s.Live != n || s.HeapLen != n || s.HeapHighWater != n {
		t.Fatalf("after schedule: %+v", s)
	}
	if s.InUse != n || s.SlabSize != n || s.FreeSlots != 0 {
		t.Fatalf("pool after schedule: %+v", s)
	}
	if s.DeadEntries != 0 {
		t.Fatalf("dead entries = %d, want 0", s.DeadEntries)
	}

	// Cancel a minority: below the compaction threshold the entries stay
	// in the heap as dead weight, but their slots recycle immediately.
	const cancelled = 8
	for i := 0; i < cancelled; i++ {
		e.Cancel(handles[i])
	}
	s = e.StatsSnapshot()
	if s.Live != n-cancelled {
		t.Fatalf("live after cancel = %d, want %d", s.Live, n-cancelled)
	}
	if s.DeadEntries != cancelled {
		t.Fatalf("dead after cancel = %d, want %d (heap %d)", s.DeadEntries, cancelled, s.HeapLen)
	}
	if s.InUse != n-cancelled || s.FreeSlots != cancelled {
		t.Fatalf("pool after cancel: %+v", s)
	}

	e.RunAll()
	s = e.StatsSnapshot()
	if s.Processed != n-cancelled {
		t.Fatalf("processed = %d, want %d", s.Processed, n-cancelled)
	}
	if s.Live != 0 || s.HeapLen != 0 {
		t.Fatalf("queue not drained: %+v", s)
	}
	if s.InUse != 0 || s.FreeSlots != s.SlabSize {
		t.Fatalf("pool unbalanced after drain: %+v", s)
	}
	if s.HeapHighWater != n {
		t.Fatalf("high-water = %d, want %d", s.HeapHighWater, n)
	}
}

// TestHeapHighWaterSurvivesCompaction: compaction shrinks the heap but
// must not rewind the recorded peak.
func TestHeapHighWaterSurvivesCompaction(t *testing.T) {
	e := NewEngine()
	var victims []Handle
	for i := 0; i < 4*minCompactLen; i++ {
		victims = append(victims, e.At(units.Time(i+1), func() {}))
	}
	peak := e.StatsSnapshot().HeapHighWater
	for _, h := range victims {
		e.Cancel(h)
	}
	s := e.StatsSnapshot()
	if s.HeapLen >= peak {
		t.Fatalf("compaction did not shrink heap: len %d, peak %d", s.HeapLen, peak)
	}
	if s.HeapHighWater != peak {
		t.Fatalf("high-water rewound: %d, want %d", s.HeapHighWater, peak)
	}
}
