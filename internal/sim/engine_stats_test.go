package sim

import (
	"testing"

	"floodgate/internal/units"
)

// TestStatsSnapshot exercises the engine's self-metrics through a
// schedule / cancel / drain cycle: the high-water mark tracks the peak
// heap length, dead entries reflect lazy cancellation, and the pool's
// acquire/release balance returns to zero when the queue drains.
func TestStatsSnapshot(t *testing.T) {
	e := NewEngine()
	if s := e.StatsSnapshot(); s != (Stats{}) {
		t.Fatalf("fresh engine stats = %+v, want zero", s)
	}

	const n = 32
	handles := make([]Handle, n)
	for i := 0; i < n; i++ {
		handles[i] = e.At(units.Time(i+1), func() {})
	}
	s := e.StatsSnapshot()
	if s.Live != n || s.HeapLen != n || s.HeapHighWater != n {
		t.Fatalf("after schedule: %+v", s)
	}
	if s.InUse != n || s.SlabSize != n || s.FreeSlots != 0 {
		t.Fatalf("pool after schedule: %+v", s)
	}
	if s.DeadEntries != 0 {
		t.Fatalf("dead entries = %d, want 0", s.DeadEntries)
	}

	// Cancel a minority: below the compaction threshold the entries stay
	// in the heap as dead weight, but their slots recycle immediately.
	const cancelled = 8
	for i := 0; i < cancelled; i++ {
		e.Cancel(handles[i])
	}
	s = e.StatsSnapshot()
	if s.Live != n-cancelled {
		t.Fatalf("live after cancel = %d, want %d", s.Live, n-cancelled)
	}
	if s.DeadEntries != cancelled {
		t.Fatalf("dead after cancel = %d, want %d (heap %d)", s.DeadEntries, cancelled, s.HeapLen)
	}
	if s.InUse != n-cancelled || s.FreeSlots != cancelled {
		t.Fatalf("pool after cancel: %+v", s)
	}

	e.RunAll()
	s = e.StatsSnapshot()
	if s.Processed != n-cancelled {
		t.Fatalf("processed = %d, want %d", s.Processed, n-cancelled)
	}
	if s.Live != 0 || s.HeapLen != 0 {
		t.Fatalf("queue not drained: %+v", s)
	}
	if s.InUse != 0 || s.FreeSlots != s.SlabSize {
		t.Fatalf("pool unbalanced after drain: %+v", s)
	}
	if s.HeapHighWater != n {
		t.Fatalf("high-water = %d, want %d", s.HeapHighWater, n)
	}
}

// TestStatsWheelBreakdown exercises the per-structure accounting of
// the wheel scheduler: CurLen/BucketLen/OverflowLen must partition
// HeapLen, and cancellation must keep Live/DeadEntries exact no matter
// which structure holds the dead entry — including through a
// compaction sweep that touches all three.
func TestStatsWheelBreakdown(t *testing.T) {
	e := NewEngine()
	near := make([]Handle, 0) // active bucket (cur)
	mid := make([]Handle, 0)  // near-horizon ring buckets
	far := make([]Handle, 0)  // overflow heap
	const per = minCompactLen // enough that cancelling two groups trips compaction
	for i := 0; i < per; i++ {
		near = append(near, e.After(units.Duration(i), func() {}))
		mid = append(mid, e.After(units.Duration(wheelGran)*units.Duration(2+i%8), func() {}))
		far = append(far, e.After(units.Duration(wheelHorizon)*2+units.Duration(i), func() {}))
	}
	s := e.StatsSnapshot()
	if s.CurLen != per || s.BucketLen != per || s.OverflowLen != per {
		t.Fatalf("structure split wrong: %+v", s)
	}
	if s.HeapLen != s.CurLen+s.BucketLen+s.OverflowLen {
		t.Fatalf("HeapLen %d != sum of structures: %+v", s.HeapLen, s)
	}

	// Cancel a sub-threshold slice of each structure: entries stay
	// queued as dead weight, split across all three.
	for _, h := range [][]Handle{near[:8], mid[:8], far[:8]} {
		for _, v := range h {
			e.Cancel(v)
		}
	}
	s = e.StatsSnapshot()
	if s.Live != 3*per-24 || s.DeadEntries != 24 {
		t.Fatalf("after partial cancel: %+v", s)
	}
	if s.HeapLen != 3*per || s.HeapLen != s.CurLen+s.BucketLen+s.OverflowLen {
		t.Fatalf("dead entries miscounted per structure: %+v", s)
	}

	// Cancel the rest of near and mid: dead outnumbers live along the
	// way, so compaction must sweep all three structures and hold the
	// queue within 2x the live count.
	for _, h := range append(near[8:], mid[8:]...) {
		e.Cancel(h)
	}
	s = e.StatsSnapshot()
	if s.Live != per-8 {
		t.Fatalf("live after full cancel = %d, want %d", s.Live, per-8)
	}
	if s.HeapLen > 2*s.Live {
		t.Fatalf("compaction bound violated: %+v", s)
	}
	if s.HeapLen != s.CurLen+s.BucketLen+s.OverflowLen {
		t.Fatalf("structure split inconsistent after compaction: %+v", s)
	}
	// Every survivor is a far timer, so overflow must hold all of them.
	if s.OverflowLen < s.Live {
		t.Fatalf("live far timers missing from overflow: %+v", s)
	}
	if s.HeapHighWater != 3*per {
		t.Fatalf("high-water = %d, want %d", s.HeapHighWater, 3*per)
	}

	e.RunAll()
	s = e.StatsSnapshot()
	if s.Live != 0 || s.HeapLen != 0 || s.InUse != 0 {
		t.Fatalf("unbalanced after drain: %+v", s)
	}
	if s.Processed != uint64(per-8) {
		t.Fatalf("processed = %d, want %d", s.Processed, per-8)
	}
}

// TestHeapHighWaterSurvivesCompaction: compaction shrinks the heap but
// must not rewind the recorded peak.
func TestHeapHighWaterSurvivesCompaction(t *testing.T) {
	e := NewEngine()
	var victims []Handle
	for i := 0; i < 4*minCompactLen; i++ {
		victims = append(victims, e.At(units.Time(i+1), func() {}))
	}
	peak := e.StatsSnapshot().HeapHighWater
	for _, h := range victims {
		e.Cancel(h)
	}
	s := e.StatsSnapshot()
	if s.HeapLen >= peak {
		t.Fatalf("compaction did not shrink heap: len %d, peak %d", s.HeapLen, peak)
	}
	if s.HeapHighWater != peak {
		t.Fatalf("high-water rewound: %d, want %d", s.HeapHighWater, peak)
	}
}
