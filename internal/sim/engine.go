// Package sim is the discrete-event core of the simulator: a
// monotonically advancing picosecond clock, a binary-heap event queue
// with deterministic FIFO tie-breaking, cancellable timers, and a
// seedable pseudo-random source. Everything above this package —
// links, switches, hosts, protocols — is driven exclusively by events
// scheduled here, so a run is a pure function of (configuration, seed).
//
// Performance: events are pooled and recycled (a simulation of tens of
// millions of packets allocates only a high-water mark of events), and
// the AtArg/AfterArg variants let hot paths schedule a pre-built
// capture-free callback with a pointer argument, avoiding per-packet
// closure allocation.
package sim

import (
	"fmt"

	"floodgate/internal/units"
)

// event payloads live in a slab indexed by slot; the priority queue
// itself holds only pointer-free entries, so sift operations incur no
// GC write barriers and no slab write-backs. Cancellation is lazy: a
// cancelled slot's generation advances and its heap entry is skipped
// when it surfaces.
type event struct {
	fn    func()
	argFn func(any)
	arg   any
	gen   uint32 // incremented on recycle; invalidates stale Handles/entries
}

type heapEnt struct {
	at   units.Time
	seq  uint64
	slot int32
	gen  uint32
}

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is inert: Cancel on it is a no-op and Active reports false.
// Handles remain safe after the event fires: the generation check
// prevents a recycled slot from being cancelled by a stale handle.
type Handle struct {
	e    *Engine
	slot int32
	gen  uint32
}

// Active reports whether the event is still pending.
func (h Handle) Active() bool {
	return h.e != nil && h.e.events[h.slot].gen == h.gen
}

// Engine owns the simulation clock and event queue. It is not safe for
// concurrent use: the simulated network is a single logical timeline.
type Engine struct {
	now     units.Time
	seq     uint64
	heap    []heapEnt
	events  []event
	free    []int32
	live    int // heap entries whose event is still scheduled
	heapHW  int // peak heap length (self-instrumentation)
	stopped bool

	// Processed counts events executed since creation (for reporting).
	Processed uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() units.Time { return e.now }

func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		s := e.free[n-1]
		e.free = e.free[:n-1]
		return s
	}
	e.events = append(e.events, event{})
	return int32(len(e.events) - 1)
}

func (e *Engine) recycle(slot int32) {
	ev := &e.events[slot]
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
	ev.gen++
	e.free = append(e.free, slot)
}

func (e *Engine) schedule(t units.Time, fn func(), argFn func(any), arg any) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", t, e.now))
	}
	slot := e.alloc()
	ev := &e.events[slot]
	ev.fn = fn
	ev.argFn = argFn
	ev.arg = arg
	gen := ev.gen
	ent := heapEnt{at: t, seq: e.seq, slot: slot, gen: gen}
	e.seq++
	e.live++
	e.push(ent)
	return Handle{e, slot, gen}
}

// At schedules fn to run at absolute time t, which must not precede
// the current time.
func (e *Engine) At(t units.Time, fn func()) Handle { return e.schedule(t, fn, nil, nil) }

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d units.Duration, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.schedule(e.now.Add(d), fn, nil, nil)
}

// AtArg schedules fn(arg) at absolute time t. fn should be a pre-built
// capture-free function so the call allocates nothing (a pointer in
// arg does not box).
func (e *Engine) AtArg(t units.Time, fn func(any), arg any) Handle {
	return e.schedule(t, nil, fn, arg)
}

// AfterArg schedules fn(arg) d after the current time.
func (e *Engine) AfterArg(d units.Duration, fn func(any), arg any) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.schedule(e.now.Add(d), nil, fn, arg)
}

// Cancel removes a pending event (lazily: its heap entry is skipped
// when it surfaces, or swept in bulk once dead entries outnumber live
// ones). Cancelling an already-fired, already-cancelled, or zero
// handle is a no-op.
func (e *Engine) Cancel(h Handle) {
	if !h.Active() {
		return
	}
	e.recycle(h.slot)
	e.live--
	// Cancel-heavy workloads (e.g. go-back-N RTO rescheduling) would
	// otherwise bloat the heap with dead entries that are only shed
	// when they surface; compact once they dominate.
	if dead := len(e.heap) - e.live; dead > len(e.heap)/2 && len(e.heap) >= minCompactLen {
		e.compact()
	}
}

// minCompactLen keeps compaction from thrashing on tiny heaps, where
// lazy skipping is already cheap.
const minCompactLen = 64

// compact drops every dead (cancelled) entry and restores the heap
// invariant. Sift order uses the same (time, seq) comparator as push
// and pop, so the surviving entries fire in an identical order and
// determinism is unaffected.
func (e *Engine) compact() {
	kept := e.heap[:0]
	for _, ent := range e.heap {
		if e.events[ent.slot].gen == ent.gen {
			kept = append(kept, ent)
		}
	}
	e.heap = kept
	for i := (len(kept) - 2) / heapArity; i >= 0 && len(kept) > 1; i-- {
		e.down(i)
	}
}

// Stats is a passive point-in-time snapshot of the engine's internals,
// for self-instrumentation: event throughput, queue shape, the lazy-
// cancellation dead-entry load, and the pool's acquire/release balance
// (InUse must return to zero once every scheduled event has fired or
// been cancelled).
type Stats struct {
	Processed     uint64 // events executed since creation
	Live          int    // events still scheduled
	HeapLen       int    // current heap length (live + dead entries)
	HeapHighWater int    // peak heap length
	DeadEntries   int    // lazily cancelled entries awaiting removal
	SlabSize      int    // event slots ever allocated (pool high-water)
	FreeSlots     int    // recycled slots awaiting reuse
	InUse         int    // SlabSize - FreeSlots (pool balance)
}

// StatsSnapshot reads the engine's self-metrics. It performs no
// allocation beyond the returned value and never mutates the engine,
// so it is safe to call from sampler probes on the hot path.
func (e *Engine) StatsSnapshot() Stats {
	return Stats{
		Processed:     e.Processed,
		Live:          e.live,
		HeapLen:       len(e.heap),
		HeapHighWater: e.heapHW,
		DeadEntries:   len(e.heap) - e.live,
		SlabSize:      len(e.events),
		FreeSlots:     len(e.free),
		InUse:         len(e.events) - len(e.free),
	}
}

// Stop makes Run return after the event currently executing completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of live events still queued in O(1).
func (e *Engine) Pending() int { return e.live }

// Run executes events in timestamp order until the queue empties, Stop
// is called, or the next event would fire after `until`. The clock is
// left at `until` when the run reaches it, or at the last executed
// event's time when stopped.
func (e *Engine) Run(until units.Time) {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 {
		if e.heap[0].at > until {
			e.now = until
			return
		}
		e.step()
	}
	if !e.stopped && e.now < until {
		e.now = until
	}
}

// RunAll executes every event until the queue drains or Stop is called.
func (e *Engine) RunAll() {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 {
		e.step()
	}
}

func (e *Engine) step() {
	ent := e.heap[0]
	e.popRoot()
	ev := &e.events[ent.slot]
	if ev.gen != ent.gen {
		return // lazily cancelled
	}
	e.live--
	e.now = ent.at
	e.Processed++
	fn, argFn, arg := ev.fn, ev.argFn, ev.arg
	e.recycle(ent.slot)
	if fn != nil {
		fn()
	} else if argFn != nil {
		argFn(arg)
	}
}

// less orders entries by (time, schedule sequence).
func (e *Engine) less(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

const heapArity = 4

func (e *Engine) push(ent heapEnt) {
	e.heap = append(e.heap, ent)
	if len(e.heap) > e.heapHW {
		e.heapHW = len(e.heap)
	}
	e.up(len(e.heap) - 1)
}

// popRoot removes the minimum entry.
func (e *Engine) popRoot() {
	n := len(e.heap) - 1
	if n > 0 {
		e.heap[0] = e.heap[n]
	}
	e.heap = e.heap[:n]
	if n > 1 {
		e.down(0)
	}
}

func (e *Engine) up(i int) {
	ent := e.heap[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !e.less(ent, e.heap[parent]) {
			break
		}
		e.heap[i] = e.heap[parent]
		i = parent
	}
	e.heap[i] = ent
}

func (e *Engine) down(i int) {
	n := len(e.heap)
	ent := e.heap[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.less(e.heap[best], ent) {
			break
		}
		e.heap[i] = e.heap[best]
		i = best
	}
	e.heap[i] = ent
}
