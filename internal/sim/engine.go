//lint:hotpath schedule/peek/exec run once per simulated event

// Package sim is the discrete-event core of the simulator: a
// monotonically advancing picosecond clock, a timing-wheel event queue
// with deterministic FIFO tie-breaking, cancellable timers, and a
// seedable pseudo-random source. Everything above this package —
// links, switches, hosts, protocols — is driven exclusively by events
// scheduled here, so a run is a pure function of (configuration, seed).
//
// Performance: events are pooled and recycled (a simulation of tens of
// millions of packets allocates only a high-water mark of events), and
// the AtArg/AfterArg variants let hot paths schedule a pre-built
// capture-free callback with a pointer argument, avoiding per-packet
// closure allocation. The default scheduler is a hierarchical timing
// wheel (see wheel.go); SchedHeap selects the reference binary-heap
// implementation, which executes events in the exact same order.
package sim

import (
	"fmt"

	"floodgate/internal/units"
)

// event payloads live in a slab indexed by slot; the queue structures
// hold only pointer-free entries, so sift operations incur no GC write
// barriers and no slab write-backs. Cancellation is lazy: a cancelled
// slot's generation advances and its entry is skipped when it surfaces.
type event struct {
	fn    func()
	argFn func(any)
	arg   any
	gen   uint32 // incremented on recycle; invalidates stale Handles/entries
}

type heapEnt struct {
	at   units.Time
	seq  uint64
	slot int32
	gen  uint32
}

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is inert: Cancel on it is a no-op and Active reports false.
// Handles remain safe after the event fires: the generation check
// prevents a recycled slot from being cancelled by a stale handle.
type Handle struct {
	e    *Engine
	slot int32
	gen  uint32
}

// Active reports whether the event is still pending.
func (h Handle) Active() bool {
	return h.e != nil && h.e.events[h.slot].gen == h.gen
}

// Engine owns the simulation clock and event queue. It is not safe for
// concurrent use: the simulated network is a single logical timeline.
type Engine struct {
	now   units.Time
	seq   uint64
	sched Scheduler

	// SchedHeap state: one global 4-ary heap.
	heap []heapEnt

	// SchedWheel state (see wheel.go): the active-bucket heap, the
	// near-horizon ring, and the far-timer overflow heap.
	cur      []heapEnt
	buckets  [][]heapEnt
	base     units.Time // start of the active bucket's span
	cursor   int        // ring index of the active bucket
	wheelCnt int        // entries across buckets (excluding cur and overflow)
	overflow []heapEnt

	events  []event
	free    []int32
	live    int // entries whose event is still scheduled
	entCnt  int // total queued entries across all structures (live + dead)
	heapHW  int // peak entCnt (self-instrumentation)
	stopped bool

	// Processed counts events executed since creation (for reporting).
	Processed uint64
}

// NewEngine returns an empty engine at time zero using the default
// timing-wheel scheduler.
func NewEngine() *Engine { return NewEngineWith(SchedWheel) }

// NewEngineWith returns an empty engine using the given scheduler.
// Both schedulers execute events in the identical (time, seq) order,
// so a run's output does not depend on the choice; SchedHeap exists as
// the simple reference implementation for cross-checking.
func NewEngineWith(s Scheduler) *Engine {
	e := &Engine{sched: s}
	if s == SchedWheel {
		e.buckets = make([][]heapEnt, wheelBucketCount)
		// Seed every bucket with a capacity slice of one shared backing
		// array: growing 1024 buckets from nil costs thousands of tiny
		// reallocations per run, where one block costs one. The full
		// slice expressions pin each bucket's capacity to its segment so
		// an overflowing append reallocates only that bucket.
		backing := make([]heapEnt, wheelBucketCount*bucketSeedCap)
		for i := range e.buckets {
			lo := i * bucketSeedCap
			e.buckets[i] = backing[lo : lo : lo+bucketSeedCap]
		}
	}
	return e
}

// bucketSeedCap is each bucket's initial capacity (entries). Capacity
// also recirculates at runtime — draining a bucket swaps its slice
// with the spent active-bucket heap — so reallocation settles quickly.
const bucketSeedCap = 16

// Sched reports which scheduler the engine runs on.
func (e *Engine) Sched() Scheduler { return e.sched }

// Now returns the current simulation time.
func (e *Engine) Now() units.Time { return e.now }

func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		s := e.free[n-1]
		e.free = e.free[:n-1]
		return s
	}
	e.events = append(e.events, event{})
	return int32(len(e.events) - 1)
}

func (e *Engine) recycle(slot int32) {
	ev := &e.events[slot]
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
	ev.gen++
	e.free = append(e.free, slot)
}

// Event priorities order same-timestamp events across nodes so that the
// execution order is a pure function of the configuration — never of
// how the topology happens to be partitioned into shards. The priority
// occupies the high bits of the entry's tie-break key; the per-engine
// schedule sequence fills the low bits, so within one (time, priority)
// class events still fire in FIFO schedule order.
//
// The assignment makes every same-(time, priority) collision either
// impossible or provably order-invariant:
//
//   - PriFault:    fault-plane sub-events, fired in plan order.
//   - PriStart:    flow-start injection chains.
//   - PriWireBase: wire deliveries; each directed link uses the fixed
//     priority PriWireBase + its global directed-port index, so two
//     distinct links never share an armed (time, priority) pair.
//   - PriTimer:    everything else (the default for At/After/AtArg/
//     AfterArg). Same-time timer ties are always same-node, and a
//     node's events keep their relative schedule order under any
//     partition.
const (
	priBits = 20
	seqBits = 44

	PriFault    uint32 = 0
	PriStart    uint32 = 1
	PriWireBase uint32 = 2
	PriTimer    uint32 = (1 << priBits) - 1
)

func (e *Engine) schedule(t units.Time, fn func(), argFn func(any), arg any, pri uint32) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", t, e.now))
	}
	slot := e.alloc()
	ev := &e.events[slot]
	ev.fn = fn
	ev.argFn = argFn
	ev.arg = arg
	gen := ev.gen
	ent := heapEnt{at: t, seq: uint64(pri)<<seqBits | e.seq, slot: slot, gen: gen}
	e.seq++
	e.live++
	e.insert(ent)
	return Handle{e, slot, gen}
}

// insert places an entry in the scheduler structure.
func (e *Engine) insert(ent heapEnt) {
	e.entCnt++
	if e.entCnt > e.heapHW {
		e.heapHW = e.entCnt
	}
	if e.sched == SchedHeap {
		entPush(&e.heap, ent)
		return
	}
	e.insertWheel(ent)
}

// At schedules fn to run at absolute time t, which must not precede
// the current time.
func (e *Engine) At(t units.Time, fn func()) Handle { return e.schedule(t, fn, nil, nil, PriTimer) }

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d units.Duration, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.schedule(e.now.Add(d), fn, nil, nil, PriTimer)
}

// AtArg schedules fn(arg) at absolute time t. fn should be a pre-built
// capture-free function so the call allocates nothing (a pointer in
// arg does not box).
func (e *Engine) AtArg(t units.Time, fn func(any), arg any) Handle {
	return e.schedule(t, nil, fn, arg, PriTimer)
}

// AfterArg schedules fn(arg) d after the current time.
func (e *Engine) AfterArg(d units.Duration, fn func(any), arg any) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.schedule(e.now.Add(d), nil, fn, arg, PriTimer)
}

// AtArgPri schedules fn(arg) at absolute time t with an explicit
// same-timestamp priority (see the Pri* constants). Lower priorities
// fire first among events sharing a timestamp.
func (e *Engine) AtArgPri(t units.Time, fn func(any), arg any, pri uint32) Handle {
	return e.schedule(t, nil, fn, arg, pri)
}

// Cancel removes a pending event (lazily: its queue entry is skipped
// when it surfaces, or swept in bulk once dead entries outnumber live
// ones). Cancelling an already-fired, already-cancelled, or zero
// handle is a no-op.
func (e *Engine) Cancel(h Handle) {
	if !h.Active() {
		return
	}
	e.recycle(h.slot)
	e.live--
	// Cancel-heavy workloads (e.g. go-back-N RTO rescheduling) would
	// otherwise bloat the queue with dead entries that are only shed
	// when they surface; compact once they dominate.
	if dead := e.entCnt - e.live; dead > e.entCnt/2 && e.entCnt >= minCompactLen {
		e.compact()
	}
}

// minCompactLen keeps compaction from thrashing on tiny queues, where
// lazy skipping is already cheap.
const minCompactLen = 64

// compact drops every dead (cancelled) entry and restores the queue
// invariants. The surviving entries fire in an identical order — both
// schedulers pop the exact (time, seq) minimum regardless of internal
// arrangement — so determinism is unaffected.
func (e *Engine) compact() {
	if e.sched == SchedHeap {
		e.heap = e.filterLive(e.heap)
		entHeapInit(e.heap)
		e.entCnt = len(e.heap)
		return
	}
	e.compactWheel()
}

// filterLive drops dead entries in place, preserving relative order.
func (e *Engine) filterLive(ents []heapEnt) []heapEnt {
	kept := ents[:0]
	for _, ent := range ents {
		if e.events[ent.slot].gen == ent.gen {
			kept = append(kept, ent)
		}
	}
	return kept
}

// Stats is a passive point-in-time snapshot of the engine's internals,
// for self-instrumentation: event throughput, queue shape, the lazy-
// cancellation dead-entry load, and the pool's acquire/release balance
// (InUse must return to zero once every scheduled event has fired or
// been cancelled).
type Stats struct {
	Processed     uint64 // events executed since creation
	Live          int    // events still scheduled
	HeapLen       int    // total queued entries across all structures (live + dead)
	HeapHighWater int    // peak queued-entry count
	DeadEntries   int    // lazily cancelled entries awaiting removal
	SlabSize      int    // event slots ever allocated (pool high-water)
	FreeSlots     int    // recycled slots awaiting reuse
	InUse         int    // SlabSize - FreeSlots (pool balance)

	// Wheel-mode queue breakdown (all zero under SchedHeap):
	// HeapLen = CurLen + BucketLen + OverflowLen.
	CurLen      int // active-bucket heap entries
	BucketLen   int // entries parked in near-horizon buckets
	OverflowLen int // far timers in the overflow heap
}

// StatsSnapshot reads the engine's self-metrics. It performs no
// allocation beyond the returned value and never mutates the engine,
// so it is safe to call from sampler probes on the hot path.
func (e *Engine) StatsSnapshot() Stats {
	return Stats{
		Processed:     e.Processed,
		Live:          e.live,
		HeapLen:       e.entCnt,
		HeapHighWater: e.heapHW,
		DeadEntries:   e.entCnt - e.live,
		SlabSize:      len(e.events),
		FreeSlots:     len(e.free),
		InUse:         len(e.events) - len(e.free),
		CurLen:        len(e.cur),
		BucketLen:     e.wheelCnt,
		OverflowLen:   len(e.overflow),
	}
}

// Stop makes Run return after the event currently executing completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of live events still queued in O(1).
func (e *Engine) Pending() int { return e.live }

// peekEnt returns the (time, seq)-minimum queued entry, dead or live,
// advancing the wheel position as needed. The advance only moves
// internal cursors — it never executes events or touches the clock —
// so peeking is observationally idempotent.
func (e *Engine) peekEnt() (heapEnt, bool) {
	if e.sched == SchedHeap {
		if len(e.heap) == 0 {
			return heapEnt{}, false
		}
		return e.heap[0], true
	}
	return e.peekWheel()
}

// nextAt reports the timestamp of the earliest queued entry (live or
// lazily cancelled). Benchmark and test helper.
func (e *Engine) nextAt() (units.Time, bool) {
	ent, ok := e.peekEnt()
	return ent.at, ok
}

// NextAt reports the timestamp of the earliest queued entry, or false
// if the queue is empty. Dead (lazily cancelled) entries count: the
// sharded executor uses NextAt to pick the next barrier window, and
// including cancelled entries keeps the choice a function of the
// schedule/cancel history alone — which is partition-invariant — while
// only ever making the window conservatively early.
func (e *Engine) NextAt() (units.Time, bool) { return e.nextAt() }

// Run executes events in timestamp order until the queue empties, Stop
// is called, or the next event would fire after `until`. The clock is
// left at `until` when the run reaches it, or at the last executed
// event's time when stopped.
func (e *Engine) Run(until units.Time) {
	e.stopped = false
	for !e.stopped {
		ent, ok := e.peekEnt()
		if !ok {
			break
		}
		if ent.at > until {
			e.now = until
			return
		}
		e.exec(ent)
	}
	if !e.stopped && e.now < until {
		e.now = until
	}
}

// RunAll executes every event until the queue drains or Stop is called.
func (e *Engine) RunAll() {
	e.stopped = false
	for !e.stopped {
		ent, ok := e.peekEnt()
		if !ok {
			break
		}
		e.exec(ent)
	}
}

// exec pops the entry peekEnt just returned and runs its event.
func (e *Engine) exec(ent heapEnt) {
	if e.sched == SchedHeap {
		entPop(&e.heap)
	} else {
		entPop(&e.cur)
	}
	e.entCnt--
	ev := &e.events[ent.slot]
	if ev.gen != ent.gen {
		return // lazily cancelled
	}
	e.live--
	e.now = ent.at
	e.Processed++
	fn, argFn, arg := ev.fn, ev.argFn, ev.arg
	e.recycle(ent.slot)
	if fn != nil {
		fn()
	} else if argFn != nil {
		argFn(arg)
	}
}

// entLess orders entries by (time, schedule sequence) — a strict total
// order, since sequence numbers are unique.
func entLess(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

const heapArity = 4

// entPush adds an entry to a 4-ary min-heap slice.
func entPush(h *[]heapEnt, ent heapEnt) {
	*h = append(*h, ent)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !entLess(ent, s[parent]) {
			break
		}
		s[i] = s[parent]
		i = parent
	}
	s[i] = ent
}

// entPop removes the minimum entry of a 4-ary min-heap slice.
func entPop(h *[]heapEnt) {
	s := *h
	n := len(s) - 1
	if n > 0 {
		s[0] = s[n]
	}
	*h = s[:n]
	if n > 1 {
		entDown(s[:n], 0)
	}
}

// entHeapInit establishes the heap invariant over an arbitrary slice.
func entHeapInit(s []heapEnt) {
	if len(s) < 2 {
		return
	}
	for i := (len(s) - 2) / heapArity; i >= 0; i-- {
		entDown(s, i)
	}
}

func entDown(s []heapEnt, i int) {
	n := len(s)
	ent := s[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entLess(s[c], s[best]) {
				best = c
			}
		}
		if !entLess(s[best], ent) {
			break
		}
		s[i] = s[best]
		i = best
	}
	s[i] = ent
}
