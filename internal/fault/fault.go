// Package fault describes deterministic fault-injection plans for the
// simulator: scheduled link-down / link-up events, link flaps, switch
// restarts, and per-link Gilbert–Elliott burst loss. A Plan is pure
// data — it carries no state and touches no clock — so the same plan,
// applied to the same topology with the same seed, yields bit-identical
// runs at any parallelism. The device layer (device.Network) consumes a
// Plan at setup time, schedules its events on the sim engine, and keeps
// the runtime link/loss state the plan implies.
package fault

import (
	"fmt"
	"sort"

	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// Kind discriminates fault events.
type Kind uint8

// Fault event kinds.
const (
	// LinkDown takes a bidirectional link out of service: frames that
	// finish serializing onto it are lost (both directions), and ECMP
	// excludes the dead ports from route choices for new packets.
	LinkDown Kind = iota
	// LinkUp restores a downed link and clears any PFC pause state the
	// outage stranded on its endpoints.
	LinkUp
	// SwitchRestart models a switch losing all soft state: queued
	// frames are dropped, flow-control state (Floodgate windows, VOQs,
	// pending credits, PSN channels) is reinitialized, and neighbors
	// are nudged so stranded per-link state re-synchronizes.
	SwitchRestart
)

func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case SwitchRestart:
		return "switch-restart"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Link names a bidirectional link by its endpoint node IDs. Orientation
// does not matter: {A, B} and {B, A} describe the same link.
type Link struct {
	A, B packet.NodeID
}

func (l Link) String() string { return fmt.Sprintf("%d<->%d", l.A, l.B) }

// Event is one scheduled fault. LinkDown/LinkUp use Link; SwitchRestart
// uses Node.
type Event struct {
	At   units.Time
	Kind Kind
	Link Link          // LinkDown / LinkUp
	Node packet.NodeID // SwitchRestart
}

// GilbertElliott parameterizes the classic two-state burst-loss chain:
// a Good state with loss probability LossGood and a Bad state with
// LossBad, with per-frame transition probabilities PGoodBad (Good→Bad)
// and PBadGood (Bad→Good). The chain advances once per eligible frame
// transmitted on the link, drawing from a per-link deterministic PRNG.
type GilbertElliott struct {
	PGoodBad float64
	PBadGood float64
	LossGood float64
	LossBad  float64
}

// BurstWithMeanLoss returns a Gilbert–Elliott chain whose stationary
// loss rate equals mean, concentrated in bursts: the Bad state drops
// half of all frames and lasts four frames on average, while the Good
// state is lossless. mean must lie in (0, 0.5).
func BurstWithMeanLoss(mean float64) *GilbertElliott {
	if mean <= 0 || mean >= 0.5 {
		panic(fmt.Sprintf("fault: burst mean loss %v outside (0, 0.5)", mean))
	}
	const (
		lossBad  = 0.5
		pBadGood = 0.25
	)
	// Stationary Bad-state probability π solves π·LossBad = mean;
	// PGoodBad then follows from the balance equation
	// (1−π)·PGoodBad = π·PBadGood.
	pi := mean / lossBad
	return &GilbertElliott{
		PGoodBad: pBadGood * pi / (1 - pi),
		PBadGood: pBadGood,
		LossGood: 0,
		LossBad:  lossBad,
	}
}

// Plan is a complete fault schedule for one run: zero or more timed
// events plus an optional burst-loss chain applied to switch-to-switch
// links. An empty Plan is valid and injects nothing (but still arms the
// stall watchdog in the experiment layer).
type Plan struct {
	Events []Event
	// Burst, when non-nil, applies Gilbert–Elliott loss to the links in
	// BurstLinks — or to every switch-to-switch link when BurstLinks is
	// empty. Host links are never burst-lossy (the paper's loss model,
	// like Fig. 12's, lives in the fabric).
	Burst      *GilbertElliott
	BurstLinks []Link
}

// Flap returns the event sequence for a link that goes down at start,
// stays down for downFor, and repeats every period, count times.
func Flap(l Link, start units.Time, downFor, period units.Duration, count int) []Event {
	evs := make([]Event, 0, 2*count)
	for i := 0; i < count; i++ {
		at := start.Add(units.Duration(i) * period)
		evs = append(evs,
			Event{At: at, Kind: LinkDown, Link: l},
			Event{At: at.Add(downFor), Kind: LinkUp, Link: l},
		)
	}
	return evs
}

// Validate checks the plan for self-consistency: non-negative event
// times, distinct link endpoints, sensible flap pairing is NOT required
// (down-without-up models a permanent failure), and burst probabilities
// in [0, 1].
func (p *Plan) Validate() error {
	for i, ev := range p.Events {
		if ev.At < 0 {
			return fmt.Errorf("fault: event %d (%s) at negative time %v", i, ev.Kind, ev.At)
		}
		switch ev.Kind {
		case LinkDown, LinkUp:
			if ev.Link.A == ev.Link.B {
				return fmt.Errorf("fault: event %d (%s) names degenerate link %v", i, ev.Kind, ev.Link)
			}
		case SwitchRestart:
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, uint8(ev.Kind))
		}
	}
	if g := p.Burst; g != nil {
		for _, pr := range [...]struct {
			name string
			v    float64
		}{
			{"PGoodBad", g.PGoodBad}, {"PBadGood", g.PBadGood},
			{"LossGood", g.LossGood}, {"LossBad", g.LossBad},
		} {
			if pr.v < 0 || pr.v > 1 {
				return fmt.Errorf("fault: burst %s = %v outside [0, 1]", pr.name, pr.v)
			}
		}
		for i, l := range p.BurstLinks {
			if l.A == l.B {
				return fmt.Errorf("fault: burst link %d is degenerate (%v)", i, l)
			}
		}
	}
	return nil
}

// SortedEvents returns the events ordered by time (stable, so events at
// the same instant keep their declaration order). The schedule in the
// plan itself is left untouched.
func (p *Plan) SortedEvents() []Event {
	evs := append([]Event(nil), p.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// BurstApplies reports whether the plan's burst chain covers the link
// (a, b), in either orientation. With an empty BurstLinks list the
// chain covers every link it is offered.
func (p *Plan) BurstApplies(a, b packet.NodeID) bool {
	if p.Burst == nil {
		return false
	}
	if len(p.BurstLinks) == 0 {
		return true
	}
	for _, l := range p.BurstLinks {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return true
		}
	}
	return false
}
