package fault

import (
	"math"
	"testing"

	"floodgate/internal/units"
)

func TestFlapGeneratesPairedEvents(t *testing.T) {
	l := Link{A: 3, B: 7}
	evs := Flap(l, units.Time(units.Millisecond), units.Duration(100*units.Microsecond), units.Duration(500*units.Microsecond), 3)
	if len(evs) != 6 {
		t.Fatalf("flap produced %d events, want 6", len(evs))
	}
	for i := 0; i < 3; i++ {
		down, up := evs[2*i], evs[2*i+1]
		if down.Kind != LinkDown || up.Kind != LinkUp {
			t.Fatalf("cycle %d: kinds %v/%v, want link-down/link-up", i, down.Kind, up.Kind)
		}
		if up.At.Sub(down.At) != units.Duration(100*units.Microsecond) {
			t.Fatalf("cycle %d: down for %v, want 100us", i, up.At.Sub(down.At))
		}
		if down.Link != l || up.Link != l {
			t.Fatalf("cycle %d: wrong link", i)
		}
	}
	if got := evs[2].At.Sub(evs[0].At); got != units.Duration(500*units.Microsecond) {
		t.Fatalf("flap period %v, want 500us", got)
	}
	plan := &Plan{Events: evs}
	if err := plan.Validate(); err != nil {
		t.Fatalf("flap plan failed validation: %v", err)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"negative time", Plan{Events: []Event{{At: -1, Kind: LinkDown, Link: Link{A: 1, B: 2}}}}},
		{"degenerate link", Plan{Events: []Event{{Kind: LinkUp, Link: Link{A: 4, B: 4}}}}},
		{"unknown kind", Plan{Events: []Event{{Kind: Kind(99)}}}},
		{"burst prob out of range", Plan{Burst: &GilbertElliott{PGoodBad: 1.5}}},
		{"negative burst prob", Plan{Burst: &GilbertElliott{PBadGood: -0.1}}},
		{"degenerate burst link", Plan{Burst: &GilbertElliott{}, BurstLinks: []Link{{A: 2, B: 2}}}},
	}
	for _, c := range cases {
		if err := c.plan.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid plan", c.name)
		}
	}
	empty := &Plan{}
	if err := empty.Validate(); err != nil {
		t.Errorf("empty plan rejected: %v", err)
	}
}

func TestSortedEventsStable(t *testing.T) {
	p := &Plan{Events: []Event{
		{At: 30, Kind: SwitchRestart, Node: 1},
		{At: 10, Kind: LinkDown, Link: Link{A: 1, B: 2}},
		{At: 10, Kind: LinkUp, Link: Link{A: 3, B: 4}},
	}}
	evs := p.SortedEvents()
	if evs[0].Kind != LinkDown || evs[1].Kind != LinkUp || evs[2].Kind != SwitchRestart {
		t.Fatalf("unexpected order: %v %v %v", evs[0].Kind, evs[1].Kind, evs[2].Kind)
	}
	// Original slice untouched.
	if p.Events[0].Kind != SwitchRestart {
		t.Fatal("SortedEvents mutated the plan")
	}
}

func TestBurstWithMeanLossStationaryRate(t *testing.T) {
	for _, mean := range []float64{0.02, 0.05, 0.10, 0.20} {
		g := BurstWithMeanLoss(mean)
		// Stationary Bad probability from the balance equation.
		pi := g.PGoodBad / (g.PGoodBad + g.PBadGood)
		got := pi*g.LossBad + (1-pi)*g.LossGood
		if math.Abs(got-mean) > 1e-12 {
			t.Errorf("mean %v: stationary loss %v", mean, got)
		}
		if g.PGoodBad < 0 || g.PGoodBad > 1 || g.PBadGood < 0 || g.PBadGood > 1 {
			t.Errorf("mean %v: probabilities out of range: %+v", mean, g)
		}
	}
}

func TestBurstWithMeanLossPanicsOutOfRange(t *testing.T) {
	for _, bad := range []float64{0, -0.1, 0.5, 0.9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BurstWithMeanLoss(%v) did not panic", bad)
				}
			}()
			BurstWithMeanLoss(bad)
		}()
	}
}

func TestBurstApplies(t *testing.T) {
	p := &Plan{Burst: BurstWithMeanLoss(0.05), BurstLinks: []Link{{A: 1, B: 2}}}
	if !p.BurstApplies(1, 2) || !p.BurstApplies(2, 1) {
		t.Error("burst should cover the named link in both orientations")
	}
	if p.BurstApplies(1, 3) {
		t.Error("burst leaked onto an unlisted link")
	}
	all := &Plan{Burst: BurstWithMeanLoss(0.05)}
	if !all.BurstApplies(9, 10) {
		t.Error("empty BurstLinks should cover every offered link")
	}
	none := &Plan{}
	if none.BurstApplies(1, 2) {
		t.Error("nil Burst should cover nothing")
	}
}
