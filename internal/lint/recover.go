package lint

import (
	"go/ast"
	"go/types"
)

// checkRecover flags calls to the recover builtin. Panic recovery is
// the experiment executor's job: exp wraps each run's panic into a
// structured *RunError at one boundary, so a sweep survives a faulting
// run without losing the config hash or the stack. A bare recover()
// anywhere else swallows the panic before that boundary sees it —
// hiding simulator bugs instead of reporting them. (Test files are not
// loaded by the linter, so tests may use recover freely.)
func checkRecover(c *Ctx) {
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := c.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
				c.Report(call.Pos(), "bare recover() outside the run executor swallows panics before exp's run boundary can wrap them into a structured RunError; let the panic propagate")
			}
			return true
		})
	}
}
