package lint

import "go/ast"

// checkGoroutine flags `go` statements. Concurrency lives in exactly
// one layer of the simulator: internal/exp, whose worker pool runs
// independent simulations and whose shard executor advances a
// partitioned run between barriers. Everywhere else — the engine, the
// device layer, the flow-control modules, stats — code relies on
// single-goroutine execution for determinism and skips synchronization
// on shared state (collectors, packet pools, the event queues). A
// stray goroutine in those layers is a data race the moment the shard
// executor runs two of them, so the rule bans the statement outright
// rather than waiting for the race detector to catch a schedule that
// exhibits it.
func checkGoroutine(c *Ctx) {
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				c.Report(g.Pos(), "go statement outside internal/exp: the simulator's deterministic layers are single-goroutine by contract (shard-parallelism belongs to the exp executor)")
			}
			return true
		})
	}
}
