package lint

import (
	"go/ast"
	"go/types"
)

// checkPool enforces packet-pool discipline in the packages that move
// packets (device and the flow-control modules). Two checks:
//
//  1. directalloc: constructing a packet outside the Network pool —
//     packet.NewData / packet.NewCtrl calls or packet.Packet composite
//     literals — defeats the recycling that removes the dominant GC
//     pressure of high-rate runs. The pool's own refill point carries
//     an //lint:allow.
//
//  2. leak: a local variable holding a freshly acquired pooled packet
//     (Network.NewCtrl / newData / getPkt) that is never handed off —
//     never passed to any call, returned, or stored into memory — can
//     only be dropped on the floor, which leaks its buffers until GC
//     and silently shrinks the pool. The check is a conservative,
//     CFG-free use scan: any hand-off anywhere in the function
//     satisfies it, so it cannot false-positive on real code paths.
func checkPool(c *Ctx) {
	info := c.Pkg.Info
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := callee(info, n); isPkgFunc(fn, c.Cfg.PacketPath, "NewData", "NewCtrl") {
					c.Report(n.Pos(), "packet.%s allocates outside the pool; acquire through the Network pool (Network.NewCtrl / newData) so the packet is recycled", fn.Name())
				}
			case *ast.CompositeLit:
				tv, ok := info.Types[ast.Expr(n)]
				if !ok {
					return true
				}
				if named, ok := tv.Type.(*types.Named); ok &&
					named.Obj().Name() == "Packet" &&
					named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == c.Cfg.PacketPath {
					c.Report(n.Pos(), "packet.Packet literal allocates outside the pool; acquire through the Network pool so the packet is recycled")
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkPoolLeaks(c, n)
				}
			}
			return true
		})
	}
}

// isPoolAcquire reports whether a call mints a pooled packet: a method
// named NewCtrl, newData or getPkt on device.Network.
func isPoolAcquire(c *Ctx, call *ast.CallExpr) bool {
	fn := callee(c.Pkg.Info, call)
	return isPkgFunc(fn, c.Cfg.DevicePath, "NewCtrl", "newData", "getPkt") &&
		recvNamed(fn) == "Network"
}

// checkPoolLeaks scans one function for acquired-and-dropped packets.
func checkPoolLeaks(c *Ctx, fd *ast.FuncDecl) {
	info := c.Pkg.Info
	// Pass 1: locals directly assigned a pool acquisition.
	acquired := make(map[types.Object]*ast.Ident)
	var order []types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isPoolAcquire(c, call) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id] // plain `=` assignment to an existing var
			}
			if obj != nil && acquired[obj] == nil {
				acquired[obj] = id
				order = append(order, obj)
			}
		}
		return true
	})
	if len(acquired) == 0 {
		return
	}
	// Pass 2: a use hands the packet off if it appears as a call
	// argument, a return value, a stored value, or a composite-literal
	// element. Method calls on the packet itself and field reads/writes
	// keep it local and do not count.
	handedOff := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if obj := identObj(info, arg); obj != nil && acquired[obj] != nil {
					handedOff[obj] = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if obj := identObj(info, r); obj != nil && acquired[obj] != nil {
					handedOff[obj] = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if obj := identObj(info, rhs); obj != nil && acquired[obj] != nil {
					handedOff[obj] = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if obj := identObj(info, el); obj != nil && acquired[obj] != nil {
					handedOff[obj] = true
				}
			}
		}
		return true
	})
	for _, obj := range order {
		if !handedOff[obj] {
			id := acquired[obj]
			c.Report(id.Pos(), "pooled packet %s is acquired but never handed off (sent, returned, stored, or recycled); it leaks from the pool", id.Name)
		}
	}
}

// identObj resolves an expression to the object of a bare identifier.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
