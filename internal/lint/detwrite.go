package lint

import (
	"go/ast"
	"go/types"
)

// checkDetWrite is the determinism prover's last line of defense: no
// value tainted by a nondeterminism source — map iteration order, wall
// clock, pointer identity, runtime shape — may reach a rendered
// artifact. Sinks are the stats Collector's record methods, the metrics
// instruments and exporters, and exp's report tables; everything those
// write eventually lands in an NDJSON row, a CSV cell or a benchjson
// manifest that CI diffs byte-for-byte between runs.
//
// The rule composes with shardsafety through the fact store: an object
// that shardsafety marked FactShardShared is cross-shard state, so a
// tainted write into it is flagged too — even when the sharing itself
// was deliberate and allowlisted, because "shared on purpose" does not
// license "written in nondeterministic order".
func checkDetWrite(c *Ctx) {
	for _, f := range c.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDetWriteFunc(c, fd)
		}
	}
}

func checkDetWriteFunc(c *Ctx, fd *ast.FuncDecl) {
	// Find candidate sites first; the taint fixpoint only runs for
	// functions that actually touch a sink or shard-shared state.
	var sinks []*ast.CallExpr
	var shared []*ast.AssignStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sinkFunc(c, n) != nil {
				sinks = append(sinks, n)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if _, _, ok := shardShared(c, lhs); ok {
					shared = append(shared, n)
					break
				}
			}
		}
		return true
	})
	if len(sinks) == 0 && len(shared) == 0 {
		return
	}
	tt := taintFunc(c.Pkg, fd.Body)
	for _, call := range sinks {
		fn := sinkFunc(c, call)
		for _, arg := range call.Args {
			if r := tt.ExprTaint(arg); r != nil {
				c.Report(arg.Pos(), "nondeterministic value (%s) flows into %s.%s; rendered output must be a pure function of (config, seed)",
					r.Why, recvNamed(fn), fn.Name())
				break // one finding per call site is enough signal
			}
		}
	}
	for _, as := range shared {
		checkSharedWrite(c, tt, as)
	}
}

// sinkFunc resolves a call to a rendered-output sink method: any method
// with parameters on a stats or metrics receiver, or exp's Table. Nil
// for everything else.
func sinkFunc(c *Ctx, call *ast.CallExpr) *types.Func {
	fn := callee(c.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return nil
	}
	if recvNamed(fn) == "" {
		return nil
	}
	switch fn.Pkg().Path() {
	case c.Cfg.StatsPath, c.Cfg.MetricsPath:
		return fn
	case c.Cfg.ExpPath:
		if recvNamed(fn) == "Table" {
			return fn
		}
	}
	return nil
}

// checkSharedWrite flags a tainted store into shard-shared state: both
// a tainted stored value and a tainted element key make the shared
// object's contents depend on per-run accidents.
func checkSharedWrite(c *Ctx, tt *taintState, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		obj, sharedAt, ok := shardShared(c, lhs)
		if !ok {
			continue
		}
		r := tt.ExprTaint(as.Rhs[i])
		if r == nil {
			if idx, isIdx := ast.Unparen(lhs).(*ast.IndexExpr); isIdx {
				r = tt.ExprTaint(idx.Index)
			}
		}
		if r != nil {
			c.Report(lhs.Pos(), "nondeterministic value (%s) written to %s, which is shared across shard Networks (shared at %s); cross-shard state must stay deterministic",
				r.Why, obj.Name(), sharedAt)
		}
	}
}
