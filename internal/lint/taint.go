package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is floodlint's small dataflow engine: an intraprocedural
// taint analysis over the typed AST that the ordering and detwrite
// rules share. Taint starts at nondeterminism sources — map iteration
// variables, wall-clock reads, pointer-identity conversions, runtime
// shape queries — and propagates through assignments to a fixpoint.
//
// The propagation is deliberately conservative (no kill on
// reassignment: once a variable has held a nondeterministic value
// anywhere in the function, later uses are flagged), with one
// surgical exception: compound commutative accumulation (`s += v`,
// `s |= v`, ...) does not taint the accumulator, because the folded
// result is independent of iteration order. That is exactly the
// order-independent-reduction carve-out the maprange rule's allowlist
// documents, made mechanical.

// TaintReason explains why a value is nondeterministic: the source
// kind and the position where the taint entered the function.
type TaintReason struct {
	Why string
	Pos token.Pos
}

// taintState is the per-function fixpoint result.
type taintState struct {
	pkg     *Package
	tainted map[types.Object]*TaintReason
}

// commutativeOps are compound assignments whose fold is independent of
// operand order; accumulating tainted values through them launders the
// order-dependence away. Division, modulo and shifts are excluded —
// their folds depend on operand order.
var commutativeOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.AND_ASSIGN: true,
	token.OR_ASSIGN:  true,
	token.XOR_ASSIGN: true,
}

// taintFunc runs the taint fixpoint over one function body.
func taintFunc(pkg *Package, body *ast.BlockStmt) *taintState {
	t := &taintState{pkg: pkg, tainted: make(map[types.Object]*TaintReason)}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if r := t.rangeTaint(n); r != nil {
					changed = t.taintIdent(n.Key, r) || changed
					changed = t.taintIdent(n.Value, r) || changed
				}
			case *ast.AssignStmt:
				changed = t.assign(n) || changed
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						if r := t.ExprTaint(n.Values[i]); r != nil {
							changed = t.taintIdent(name, r) || changed
						}
					}
				}
			}
			return true
		})
	}
	return t
}

// rangeTaint classifies a range statement's iteration variables: over
// a map the order is randomized per run, and over an already-tainted
// container the elements inherit the container's reason.
func (t *taintState) rangeTaint(rng *ast.RangeStmt) *TaintReason {
	tv, ok := t.pkg.Info.Types[rng.X]
	if !ok {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
		return &TaintReason{Why: "map iteration order", Pos: rng.Pos()}
	}
	return t.ExprTaint(rng.X)
}

// assign propagates taint across one assignment statement.
func (t *taintState) assign(as *ast.AssignStmt) bool {
	if commutativeOps[as.Tok] {
		return false // order-independent accumulation
	}
	changed := false
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			if r := t.ExprTaint(as.Rhs[i]); r != nil {
				changed = t.taintTarget(as.Lhs[i], r) || changed
			}
		}
		return changed
	}
	// Tuple form (a, b := f()): one tainted source taints every target.
	for _, rhs := range as.Rhs {
		if r := t.ExprTaint(rhs); r != nil {
			for _, lhs := range as.Lhs {
				changed = t.taintTarget(lhs, r) || changed
			}
			break
		}
	}
	return changed
}

// taintTarget taints the object behind an assignment target: a bare
// identifier, or the root variable of a selector/index chain (writing
// a tainted element makes the whole container suspect for later reads).
func (t *taintState) taintTarget(e ast.Expr, r *TaintReason) bool {
	return t.taintIdent(rootIdent(e), r)
}

func (t *taintState) taintIdent(e ast.Expr, r *TaintReason) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := identObj(t.pkg.Info, id)
	v, ok := obj.(*types.Var)
	if !ok || t.tainted[v] != nil {
		return false
	}
	t.tainted[v] = r
	return true
}

// ExprTaint reports why an expression is nondeterministic (nil when it
// is clean): it mentions a tainted variable, calls a nondeterminism
// source, or converts a pointer to its integer identity.
func (t *taintState) ExprTaint(e ast.Expr) *TaintReason {
	var found *TaintReason
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := identObj(t.pkg.Info, n).(*types.Var); ok {
				if r := t.tainted[v]; r != nil {
					found = r
				}
			}
		case *ast.CallExpr:
			if r := callTaint(t.pkg, n); r != nil {
				found = r
			}
		}
		return true
	})
	return found
}

// callTaint classifies a call (or conversion) expression as a
// nondeterminism source.
func callTaint(pkg *Package, call *ast.CallExpr) *TaintReason {
	if fn := callee(pkg.Info, call); fn != nil {
		if isPkgFunc(fn, "time", "Now", "Since", "Until") {
			return &TaintReason{Why: "wall clock (time." + fn.Name() + ")", Pos: call.Pos()}
		}
		if isPkgFunc(fn, "runtime", "GOMAXPROCS", "NumGoroutine", "NumCPU") {
			return &TaintReason{Why: "runtime shape (runtime." + fn.Name() + ")", Pos: call.Pos()}
		}
		return nil
	}
	// Conversion to uintptr from a pointer: the value is the allocation
	// address, which differs run to run.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr {
			if at, ok := pkg.Info.Types[call.Args[0]]; ok && pointerish(at.Type) {
				return &TaintReason{Why: "pointer identity", Pos: call.Pos()}
			}
		}
	}
	return nil
}

// pointerish reports whether a type carries an address (so converting
// it to uintptr yields run-varying identity).
func pointerish(t types.Type) bool {
	switch b := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return b.Kind() == types.UnsafePointer
	}
	return false
}

// rootIdent walks a selector/index/star/paren chain to its leftmost
// identifier (nil when the root is not an identifier, e.g. a call).
func rootIdent(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
