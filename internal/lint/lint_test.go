package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the fixture golden files")

// repoRoot returns the module root (two levels up from internal/lint).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	return root
}

// fixtureConfig widens every rule scope to "..." so the synthetic
// fixture paths are covered, keeping the real key packages.
func fixtureConfig(module string) *Config {
	cfg := DefaultConfig(module)
	cfg.Pool = []string{"..."}
	return cfg
}

// TestFixtures runs the full rule registry over each fixture package
// under testdata/src and compares the rendered diagnostics against the
// package's expect.golden. Regenerate with `go test -run Fixtures
// -update ./internal/lint`.
func TestFixtures(t *testing.T) {
	root := repoRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := l.LoadDir(dir, "fixture/"+name)
			if err != nil {
				t.Fatal(err)
			}
			diags := Run(l, []*Package{pkg}, fixtureConfig(l.Module()))
			var got strings.Builder
			for _, d := range diags {
				got.WriteString(d.Rel(dir))
				got.WriteByte('\n')
			}
			golden := filepath.Join(dir, "expect.golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got.String(), want)
			}
		})
	}
}

// TestFixturesHaveFindingsAndAllows asserts the property the fixtures
// exist to prove: every rule has at least one fixture-verified true
// positive, and every fixture allow except the deliberately stale one
// is actually consumed (no [allow] diagnostics leak into its golden).
func TestFixturesHaveFindingsAndAllows(t *testing.T) {
	ruleSeen := make(map[string]bool)
	ents, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		data, err := os.ReadFile(filepath.Join("testdata", "src", name, "expect.golden"))
		if err != nil {
			t.Fatalf("fixture %s has no expect.golden: %v", name, err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			open := strings.Index(line, "[")
			end := strings.Index(line, "]")
			if open < 0 || end < open {
				t.Errorf("fixture %s: malformed golden line %q", name, line)
				continue
			}
			rule := line[open+1 : end]
			ruleSeen[rule] = true
			if rule == "allow" && name != "unusedallow" {
				t.Errorf("fixture %s has an unused allow: %s", name, line)
			}
		}
	}
	for _, r := range Rules() {
		if !ruleSeen[r.Name] {
			t.Errorf("rule %s has no fixture-verified finding", r.Name)
		}
	}
	if !ruleSeen["allow"] {
		t.Error("no fixture verifies the unused-allow report")
	}
}

// TestRealTreeClean lints the shipped tree with the production config
// and requires zero non-baselined findings: the invariants hold (or
// are explicitly grandfathered in the committed baseline), and every
// allow in the tree is justified by a matching diagnostic. It also
// pins the committed baseline itself: entries that no longer match any
// finding are rot and fail the test.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := repoRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(l, pkgs, DefaultConfig(l.Module()))
	baseline, err := LoadBaseline(filepath.Join(root, BaselineFile))
	if err != nil {
		t.Fatal(err)
	}
	baselined := baseline.Classify(root, diags)
	for i, d := range diags {
		if !baselined[i] {
			t.Errorf("non-baselined finding: %s", d.Rel(root))
		}
	}
	for _, key := range baseline.Stale(root, diags) {
		t.Errorf("baseline entry %q matches no finding; regenerate with make lint-fix-baseline", key)
	}
}
