package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// brokenDir resolves a fixture under testdata/broken.
func brokenDir(t *testing.T, name string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "broken", name))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestLoaderErrors pins the Loader's failure modes: every malformed
// input must come back as a descriptive error (the CLI turns these
// into exit 2), never a panic or a silent empty package.
func TestLoaderErrors(t *testing.T) {
	root := repoRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		dir  string
		want string // substring the error must contain
	}{
		{"type error", brokenDir(t, "typeerr"), "type-checking"},
		{"unresolvable import", brokenDir(t, "badimport"), "no/such/vendored/thing"},
		{"parse error", brokenDir(t, "parseerr"), "parsing"},
		{"no go files", brokenDir(t, "nogo"), "no buildable Go files"},
		{"missing directory", brokenDir(t, "does-not-exist"), "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := l.LoadDir(tc.dir, "broken/"+filepath.Base(tc.dir))
			if err == nil {
				t.Fatalf("LoadDir(%s) succeeded, want error containing %q", tc.dir, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("LoadDir(%s) error = %q, want it to mention %q", tc.dir, err, tc.want)
			}
		})
	}
}

// TestLoaderErrorsAreNotMemoized ensures a failed load does not poison
// the cache: the same loader still serves good packages afterwards.
func TestLoaderErrorsAreNotMemoized(t *testing.T) {
	root := repoRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(brokenDir(t, "typeerr"), "broken/typeerr"); err == nil {
		t.Fatal("expected type error")
	}
	pkg, err := l.Import("floodgate/internal/units")
	if err != nil {
		t.Fatalf("loading a good package after a failure: %v", err)
	}
	if pkg.Name() != "units" {
		t.Errorf("loaded package %q, want units", pkg.Name())
	}
}

// TestNewLoaderNoModule pins the missing-go.mod failure mode.
func TestNewLoaderNoModule(t *testing.T) {
	if _, err := NewLoader(t.TempDir()); err == nil {
		t.Fatal("NewLoader on a directory without go.mod succeeded")
	}
}

// TestNewLoaderNoModuleLine pins the malformed-go.mod failure mode.
func TestNewLoaderNoModuleLine(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("// empty\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLoader(dir); err == nil || !strings.Contains(err.Error(), "no module line") {
		t.Fatalf("NewLoader error = %v, want mention of missing module line", err)
	}
}
