package lint

import "go/types"

// Facts is the run-wide, cross-package fact store. Rules execute in
// registry order over every package, and a rule may attach named facts
// to type-checker objects (package-level variables, fields, functions)
// for later rules to consume — e.g. shardsafety records which objects
// escape to multiple shard Networks, and detwrite then treats writes
// of nondeterministic values into those objects as findings even when
// the original sharing site was allowlisted.
//
// Facts are keyed by types.Object, which is canonical per Run: the
// loader type-checks each package exactly once, so the object a
// closure captures in one function is the same object another function
// indexes into.
type Facts struct {
	m map[types.Object]map[string]string
}

// Fact names exported by the v2 rules.
const (
	// FactShardShared marks an object (package var, field, or local)
	// aliased by more than one shard Network — exported by shardsafety
	// for every sharing site, including allowlisted ones.
	FactShardShared = "shardshared"
)

// NewFacts returns an empty store.
func NewFacts() *Facts { return &Facts{m: make(map[types.Object]map[string]string)} }

// Export attaches a named fact with a human-readable detail to obj.
// Re-exporting the same fact keeps the first detail (the earliest
// sharing site wins, which matches source order under the runner's
// deterministic package walk).
func (f *Facts) Export(obj types.Object, name, detail string) {
	if obj == nil {
		return
	}
	byName := f.m[obj]
	if byName == nil {
		byName = make(map[string]string)
		f.m[obj] = byName
	}
	if _, ok := byName[name]; !ok {
		byName[name] = detail
	}
}

// Get reports whether obj carries the named fact, and its detail.
func (f *Facts) Get(obj types.Object, name string) (string, bool) {
	if obj == nil {
		return "", false
	}
	detail, ok := f.m[obj][name]
	return detail, ok
}
