package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// checkShardSafety enforces the sharded executor's shared-nothing
// contract: once a topology is partitioned into shard Networks, the
// only shard-crossing state is the Cluster coupling layer's mailbox
// exchange — every other mutable value must be private to one shard.
// The executor's bit-identity guarantee (DESIGN.md §10) and its
// race-freedom both rest on that invariant, and a violation is
// invisible at runtime until two shards actually race on the alias.
//
// The rule finds the syntactic shape every violation in practice takes:
// a loop over a []*device.Network slice (the per-shard fan-out) that
// hands the *same* outer mutable value — a pointer, slice, map, chan,
// func or interface — to more than one shard, either by storing it
// into the shard Network, passing it to a method, or installing a
// callback that references it. Values allocated inside the loop body
// are per-shard and clean; types listed in Config.SharedImmutable
// (immutable after construction, per exp/parallel.go's shared-state
// audit) are safe to alias and exempt.
//
// The file that declares the Cluster type is the sanctioned coupling
// layer — its mailbox exchange exists precisely to move state between
// shards under the barrier protocol — and is skipped. Every shared
// object the rule sees (reported or allowlisted) is exported to the
// fact store as FactShardShared, so detwrite can flag nondeterministic
// writes into shard-shared state even when the sharing itself was
// deliberately allowed.
func checkShardSafety(c *Ctx) {
	for _, f := range c.Pkg.Files {
		if c.Pkg.Path == c.Cfg.DevicePath && declaresType(f, "Cluster") {
			continue // the sanctioned coupling layer (cluster.go)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isShardSlice(c, rng.X) {
				return true
			}
			checkShardLoop(c, rng)
			return true
		})
	}
}

// declaresType reports whether the file declares a type with the name.
func declaresType(f *ast.File, name string) bool {
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == name {
				return true
			}
		}
	}
	return false
}

// isShardSlice reports whether the expression is a []*device.Network.
func isShardSlice(c *Ctx, e ast.Expr) bool {
	tv, ok := c.Pkg.Info.Types[e]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	ptr, ok := sl.Elem().(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := ptr.Elem().(*types.Named)
	return ok && n.Obj().Name() == "Network" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == c.Cfg.DevicePath
}

// checkShardLoop audits one per-shard fan-out loop.
func checkShardLoop(c *Ctx, rng *ast.RangeStmt) {
	info := c.Pkg.Info
	valObj := identObj(info, rng.Value)
	keyObj := identObj(info, rng.Key)
	sliceRoot := identObj(info, rootIdent(rng.X))

	// shardNetRooted reports whether the expression reads through the
	// per-iteration shard Network: the range value variable, or the
	// ranged slice indexed by the range key (for i := range nets →
	// nets[i]).
	shardNetRooted := func(e ast.Expr) bool {
		for {
			switch x := e.(type) {
			case *ast.Ident:
				obj := identObj(info, x)
				return obj != nil && obj == valObj
			case *ast.SelectorExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				if idx := identObj(info, rootIdent(x.Index)); idx != nil && idx == keyObj &&
					sliceRoot != nil && identObj(info, rootIdent(x.X)) == sliceRoot {
					return true
				}
				e = x.X
			default:
				return false
			}
		}
	}

	skip := map[types.Object]bool{}
	for _, o := range []types.Object{valObj, keyObj, sliceRoot} {
		if o != nil {
			skip[o] = true
		}
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if _, isSel := lhs.(*ast.SelectorExpr); !isSel && !isIndex(lhs) {
					continue // plain rebinding, not a store into shard state
				}
				if shardNetRooted(lhs) {
					reportShared(c, rng, skip, n.Rhs[i], "stored into every shard Network")
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || !shardNetRooted(sel) {
				return true
			}
			for _, arg := range n.Args {
				reportShared(c, rng, skip, arg, "passed to every shard Network")
			}
		}
		return true
	})
}

func isIndex(e ast.Expr) bool { _, ok := e.(*ast.IndexExpr); return ok }

// reportShared flags v when it makes an outer mutable value reachable
// from every shard, and exports the shared object as a fact either way.
func reportShared(c *Ctx, rng *ast.RangeStmt, skip map[types.Object]bool, v ast.Expr, how string) {
	v = ast.Unparen(v)
	if u, ok := v.(*ast.UnaryExpr); ok {
		v = u.X // &x aliases x
	}
	if lit, ok := v.(*ast.FuncLit); ok {
		reportCallbackRefs(c, rng, skip, lit)
		return
	}
	obj := identObj(c.Pkg.Info, rootIdent(v))
	vr, ok := obj.(*types.Var)
	if !ok || skip[obj] || vr.IsField() || declaredIn(vr, rng.Body) {
		return
	}
	t := vr.Type()
	if !sharedMutable(t) || immutableListed(c.Cfg, t) {
		return
	}
	c.Facts().Export(vr, FactShardShared, shortPos(c, v.Pos()))
	c.Report(v.Pos(), "mutable value %s (%s) %s; shard state must be private to its shard or move through the Cluster mailbox exchange (allocate per shard inside the loop, or list the type in SharedImmutable if it is immutable by contract)",
		vr.Name(), shortType(t), how)
}

// reportCallbackRefs flags outer mutable state a callback installed on
// every shard closes over or references: the engine will invoke the
// callback on each shard's goroutine, so everything it can reach is
// reachable from all shards at once.
func reportCallbackRefs(c *Ctx, rng *ast.RangeStmt, skip map[types.Object]bool, lit *ast.FuncLit) {
	info := c.Pkg.Info
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		vr, ok := info.Uses[id].(*types.Var)
		if !ok || vr.IsField() || seen[vr] || skip[vr] {
			return true
		}
		if vr.Pos() >= lit.Pos() && vr.Pos() < lit.End() {
			return true // the literal's own local or parameter
		}
		if declaredIn(vr, rng.Body) {
			return true // fresh per shard
		}
		t := vr.Type()
		if !sharedMutable(t) || immutableListed(c.Cfg, t) {
			return true
		}
		seen[vr] = true
		c.Facts().Export(vr, FactShardShared, shortPos(c, id.Pos()))
		c.Report(id.Pos(), "callback installed on every shard references %s (%s), aliasing it across shards; give each shard its own copy allocated inside the loop, or route the state through the Cluster mailbox exchange",
			vr.Name(), shortType(t))
		return true
	})
}

// shortPos renders a position as base-filename:line — stable across
// checkouts, so fact details can appear in diagnostics and goldens.
func shortPos(c *Ctx, pos token.Pos) string {
	p := c.fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// declaredIn reports whether the object's declaration lies inside the
// node's source range.
func declaredIn(obj types.Object, n ast.Node) bool {
	return obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

// sharedMutable reports whether aliasing a value of this type across
// shards shares mutable state: anything with reference semantics.
func sharedMutable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// immutableListed reports whether the (pointer-unwrapped) named type is
// on the immutable-by-contract allowlist.
func immutableListed(cfg *Config, t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	full := n.Obj().Pkg().Path() + "." + n.Obj().Name()
	for _, im := range cfg.SharedImmutable {
		if im == full {
			return true
		}
	}
	return false
}

// shardShared reports whether the expression's root object was marked
// shard-shared by this rule (query helper for later rules).
func shardShared(c *Ctx, e ast.Expr) (types.Object, string, bool) {
	obj := identObj(c.Pkg.Info, rootIdent(e))
	if obj == nil {
		return nil, "", false
	}
	detail, ok := c.Facts().Get(obj, FactShardShared)
	if !ok {
		return nil, "", false
	}
	return obj, detail, true
}
