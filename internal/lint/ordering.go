package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkOrdering proves that same-timestamp event ordering is governed
// by the sim.Pri* ladder and nothing else. The engine breaks timestamp
// ties by a packed (priority, sequence) key; if a call site passes a
// priority that is a raw literal, derives from map iteration order,
// wall time, or pointer identity, the tie-break becomes either
// meaningless (colliding raw numbers) or nondeterministic — and either
// way the bit-identity guarantee between sharded and single-engine
// runs dissolves.
//
// Two analyses compose here:
//
//   - A whole-program "priority carrier" fixpoint (carrierSet, memoized
//     per Run): every uint32-typed object — variable, field, parameter,
//     result — starts optimistically as a carrier of ladder-derived
//     priority, and is demoted when any assignment, composite literal,
//     call argument or return feeds it a value that does not trace back
//     to a sim.Pri* constant. Network.wirePri → wire.init(pri) → w.pri
//     survives this fixpoint; a field ever assigned a bare literal does
//     not.
//
//   - The per-function taint engine (taint.go): even a carrier-shaped
//     expression is rejected when it is tainted by a nondeterminism
//     source (the tie-break value must not depend on map order or wall
//     time), and scheduling *times* are checked for taint too.
func checkOrdering(c *Ctx) {
	cs := c.carriers()
	for _, f := range c.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var sched []*ast.CallExpr
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && schedKind(c, call) != "" {
					sched = append(sched, call)
				}
				return true
			})
			if len(sched) == 0 {
				continue
			}
			tt := taintFunc(c.Pkg, fd.Body)
			for _, call := range sched {
				checkSchedCall(c, cs, tt, call)
			}
		}
	}
}

// schedKind classifies a call as an Engine scheduling entry point:
// "pri" for AtArgPri (carries an explicit priority), "time" for the
// default-priority family, "" for anything else.
func schedKind(c *Ctx, call *ast.CallExpr) string {
	fn := callee(c.Pkg.Info, call)
	if fn == nil || recvNamed(fn) != "Engine" {
		return ""
	}
	if isPkgFunc(fn, c.Cfg.SimPath, "AtArgPri") {
		return "pri"
	}
	if isPkgFunc(fn, c.Cfg.SimPath, "At", "After", "AtArg", "AfterArg") {
		return "time"
	}
	return ""
}

func checkSchedCall(c *Ctx, cs *carrierSet, tt *taintState, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	// The first argument is always the event time (absolute or delay):
	// a tainted time reorders the whole schedule, not just a tie.
	if r := tt.ExprTaint(call.Args[0]); r != nil {
		c.Report(call.Pos(), "event time derives from %s; schedule times must be a pure function of (config, seed)", r.Why)
		return
	}
	if schedKind(c, call) != "pri" || len(call.Args) < 4 {
		return
	}
	pri := call.Args[3]
	if r := tt.ExprTaint(pri); r != nil {
		c.Report(pri.Pos(), "same-timestamp priority derives from %s; tie-breaks must come from the sim.Pri* ladder", r.Why)
		return
	}
	if !cs.carrierExpr(c.Pkg, pri) {
		c.Report(pri.Pos(), "priority %s does not derive from the sim.Pri* ladder; raw tie-break values collide and make same-timestamp order arbitrary", exprString(pri))
	}
}

// exprString renders a short source-ish form of an expression for
// diagnostics (identifier chains and literals; "expression" otherwise).
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := exprString(x.X); base != "expression" {
			return base + "." + x.Sel.Name
		}
		return "expression"
	case *ast.BasicLit:
		return x.Value
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		if s := exprString(x.Fun); s != "expression" {
			return s + "(...)"
		}
	}
	return "expression"
}

// ---- priority-carrier fixpoint ----

// carrierSet is the whole-program result of the priority-provenance
// analysis: the set of uint32-typed objects that have been demoted from
// "carries a sim.Pri*-derived priority" because some flow feeds them a
// value with no ladder provenance. Objects declared outside the
// analyzed packages are never carriers (their provenance is unknowable).
type carrierSet struct {
	analyzed map[string]bool // package paths included in the fixpoint
	demoted  map[types.Object]bool
	simPath  string
}

// priFlow is one value flow into a uint32-typed object: expr may be nil
// for flows whose source is structurally unknowable (range variables).
type priFlow struct {
	obj  types.Object
	expr ast.Expr
	pkg  *Package
}

// carriers returns the run's memoized carrierSet, building it on first
// use from every loaded package.
func (c *Ctx) carriers() *carrierSet {
	if c.out.carriers != nil {
		return c.out.carriers
	}
	cs := &carrierSet{
		analyzed: make(map[string]bool),
		demoted:  make(map[types.Object]bool),
		simPath:  c.Cfg.SimPath,
	}
	for _, p := range c.All {
		cs.analyzed[p.Path] = true
	}
	var flows []priFlow
	for _, p := range c.All {
		flows = append(flows, collectPriFlows(p)...)
	}
	for changed := true; changed; {
		changed = false
		for _, fl := range flows {
			if cs.demoted[fl.obj] {
				continue
			}
			if fl.expr == nil || !cs.carrierExpr(fl.pkg, fl.expr) {
				cs.demoted[fl.obj] = true
				changed = true
			}
		}
	}
	c.out.carriers = cs
	return cs
}

// collectPriFlows gathers every flow into a uint32-typed object in one
// package: assignments, var specs, composite-literal fields, range
// bindings, call arguments into analyzed functions, and returns into
// named results.
func collectPriFlows(p *Package) []priFlow {
	var flows []priFlow
	info := p.Info
	add := func(obj types.Object, expr ast.Expr) {
		if obj == nil || !isUint32(obj.Type()) {
			return
		}
		flows = append(flows, priFlow{obj: obj, expr: expr, pkg: p})
	}
	// Returns need the enclosing function's signature, so they are
	// walked per function body with proper FuncLit scoping; everything
	// else is position-independent and uses one flat walk.
	var walkReturns func(body *ast.BlockStmt, sig *types.Signature)
	walkReturns = func(body *ast.BlockStmt, sig *types.Signature) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				var inner *types.Signature
				if tv, ok := info.Types[n]; ok {
					inner, _ = tv.Type.(*types.Signature)
				}
				walkReturns(n.Body, inner)
				return false
			case *ast.ReturnStmt:
				if sig == nil || sig.Results().Len() != len(n.Results) {
					return true
				}
				for i, res := range n.Results {
					add(sig.Results().At(i), res)
				}
			}
			return true
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						obj := identObj(info, rootIdent(n.Lhs[i]))
						if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
							// Compound op (+=, |=, <<=, ...): the new value is
							// old OP rhs, so it keeps ladder provenance iff the
							// object already carried it — a self-flow.
							add(obj, n.Lhs[i])
							continue
						}
						add(obj, n.Rhs[i])
					}
				} else {
					// Tuple form: multi-result call, provenance opaque.
					for _, lhs := range n.Lhs {
						add(identObj(info, rootIdent(lhs)), nil)
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						add(identObj(info, name), n.Values[i])
					}
				}
			case *ast.RangeStmt:
				add(identObj(info, n.Key), nil)
				add(identObj(info, n.Value), nil)
			case *ast.CompositeLit:
				flows = append(flows, litFlows(p, n)...)
			case *ast.CallExpr:
				flows = append(flows, callFlows(p, n)...)
			case *ast.FuncDecl:
				if fn, ok := info.Defs[n.Name].(*types.Func); ok && n.Body != nil {
					walkReturns(n.Body, fn.Type().(*types.Signature))
				}
			}
			return true
		})
	}
	return flows
}

// litFlows maps composite-literal elements onto struct field objects.
func litFlows(p *Package, lit *ast.CompositeLit) []priFlow {
	tv, ok := p.Info.Types[lit]
	if !ok {
		return nil
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	fieldByName := func(name string) *types.Var {
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == name {
				return st.Field(i)
			}
		}
		return nil
	}
	var flows []priFlow
	for i, elt := range lit.Elts {
		var fld *types.Var
		var val ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				fld = fieldByName(id.Name)
			}
			val = kv.Value
		} else if i < st.NumFields() {
			fld = st.Field(i)
			val = elt
		}
		if fld != nil && isUint32(fld.Type()) {
			flows = append(flows, priFlow{obj: fld, expr: val, pkg: p})
		}
	}
	return flows
}

// callFlows maps call arguments onto the callee's parameter objects
// (only for statically-resolved callees; indirect calls contribute no
// flows — their parameters stay optimistic unless demoted elsewhere).
func callFlows(p *Package, call *ast.CallExpr) []priFlow {
	fn := callee(p.Info, call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var flows []priFlow
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			break // variadic tail: param is a slice, not uint32
		}
		prm := sig.Params().At(i)
		if isUint32(prm.Type()) {
			flows = append(flows, priFlow{obj: prm, expr: arg, pkg: p})
		}
	}
	return flows
}

func isUint32(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint32
}

// carrierExpr reports whether an expression's value provably derives
// from the sim.Pri* ladder: it mentions a Pri* constant directly, or it
// reads/combines objects that survived the demotion fixpoint.
func (cs *carrierSet) carrierExpr(p *Package, e ast.Expr) bool {
	if mentionsPriConst(p, cs.simPath, e) {
		return true
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		obj := carrierObj(p, x)
		return cs.carrierVar(obj)
	case *ast.BinaryExpr:
		return cs.carrierExpr(p, x.X) || cs.carrierExpr(p, x.Y)
	case *ast.UnaryExpr:
		return cs.carrierExpr(p, x.X)
	case *ast.CallExpr:
		if tv, ok := p.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return cs.carrierExpr(p, x.Args[0]) // conversion preserves provenance
		}
		fn := callee(p.Info, x)
		if fn == nil {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Results().Len() != 1 {
			return false
		}
		return cs.carrierVar(sig.Results().At(0))
	}
	return false
}

// carrierVar reports whether an object still carries ladder provenance:
// declared in an analyzed package and never demoted.
func (cs *carrierSet) carrierVar(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil || !cs.analyzed[obj.Pkg().Path()] {
		return false
	}
	if !isUint32(obj.Type()) {
		return false
	}
	return !cs.demoted[obj]
}

// carrierObj resolves the object an ident or selector expression reads.
func carrierObj(p *Package, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		return identObj(p.Info, x)
	case *ast.SelectorExpr:
		return p.Info.Uses[x.Sel]
	}
	return nil
}

// mentionsPriConst reports whether the expression mentions any sim.Pri*
// ladder constant.
func mentionsPriConst(p *Package, simPath string, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if cn, ok := p.Info.Uses[id].(*types.Const); ok &&
			cn.Pkg() != nil && cn.Pkg().Path() == simPath && strings.HasPrefix(cn.Name(), "Pri") {
			found = true
		}
		return true
	})
	return found
}
