package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module (or a test
// fixture). Files holds the non-test sources in filename order.
// TagFiles holds sources excluded by build constraints (e.g.
// //go:build simdebug): they are parsed but not type-checked, and
// exist only so their //lint:allow comments are visible to the
// staleness report (which exempts them — their code is not linted).
type Package struct {
	Path     string // import path
	Dir      string
	Files    []*ast.File
	TagFiles []*ast.File
	Types    *types.Package
	Info     *types.Info
}

// Loader parses and type-checks packages using only the standard
// library: module-internal imports are resolved from source under the
// module root, everything else goes through the stdlib source
// importer. Loaded packages are memoized, so a Loader can serve the
// whole module plus any number of fixture directories cheaply.
type Loader struct {
	Fset *token.FileSet

	root    string // module root directory (holds go.mod)
	module  string // module path from go.mod
	stdlib  types.Importer
	pkgs    map[string]*Package // by import path
	sources map[string][]byte   // file contents, for allowlist column checks
	loading map[string]bool     // import cycle detection
}

// NewLoader returns a loader rooted at the directory containing go.mod.
func NewLoader(root string) (*Loader, error) {
	mod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(mod), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	l := &Loader{
		Fset:    token.NewFileSet(),
		root:    root,
		module:  modPath,
		pkgs:    make(map[string]*Package),
		sources: make(map[string][]byte),
		loading: make(map[string]bool),
	}
	l.stdlib = importer.ForCompiler(l.Fset, "source", nil)
	return l, nil
}

// Module returns the module path from go.mod.
func (l *Loader) Module() string { return l.module }

// Source returns the raw bytes of a loaded file (empty if unknown).
func (l *Loader) Source(filename string) []byte { return l.sources[filename] }

// LoadModule loads every package under the module root (skipping
// testdata and hidden directories) and returns them sorted by path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		path := l.module
		if rel != "." {
			path = l.module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir loads one directory outside the module layout (a test
// fixture) under the given synthetic import path. Its imports of
// module packages resolve against the module root.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	if p, ok := l.pkgs[asPath]; ok {
		return p, nil
	}
	return l.check(asPath, dir)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Import implements types.Importer: module packages load from source,
// the rest is delegated to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.stdlib.Import(path)
}

// load type-checks a module package by import path, memoized.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	return l.check(path, dir)
}

func (l *Loader) check(path, dir string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	var files, tagFiles []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		filename := filepath.Join(dir, name)
		src, err := os.ReadFile(filename)
		if err != nil {
			return nil, err
		}
		if !buildIncluded(src) {
			// Excluded by a build constraint: parse for comments only, so
			// //lint:allow entries under the tag stay visible (and exempt
			// from staleness). A file that fails to parse — e.g. another
			// platform's syntax experiment — is simply skipped.
			if f, err := parser.ParseFile(l.Fset, filename, src, parser.ParseComments); err == nil {
				l.sources[filename] = src
				tagFiles = append(tagFiles, f)
			}
			continue
		}
		f, err := parser.ParseFile(l.Fset, filename, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", filename, err)
		}
		l.sources[filename] = src
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, TagFiles: tagFiles, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// buildIncluded evaluates a file's //go:build line against the host
// platform with no extra tags set (so e.g. simdebug files are skipped,
// matching the default build).
func buildIncluded(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			if constraint.IsGoBuild(trimmed) {
				expr, err := constraint.Parse(trimmed)
				if err != nil {
					return true
				}
				return expr.Eval(func(tag string) bool {
					return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc"
				})
			}
			continue
		}
		break // reached the package clause: no constraint
	}
	return true
}
