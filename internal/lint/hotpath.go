package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkHotpath flags capturing closures scheduled from files marked
// //lint:hotpath. Engine.After/At with a func literal that captures
// variables allocates one closure per event — on paths that fire per
// packet that is the dominant allocation of a run. The AfterArg/AtArg
// variants take a pre-built capture-free callback plus a pointer
// argument and allocate nothing — unless the callback itself is a
// capturing literal, which re-introduces the very allocation the
// variant exists to avoid, so those are flagged too.
func checkHotpath(c *Ctx) {
	for _, f := range c.Pkg.Files {
		if !fileMarked(f, "//lint:hotpath") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			fn := callee(c.Pkg.Info, call)
			if !isPkgFunc(fn, c.Cfg.SimPath, "After", "At", "AfterArg", "AtArg") || recvNamed(fn) != "Engine" {
				return true
			}
			lit, ok := call.Args[1].(*ast.FuncLit)
			if !ok {
				return true
			}
			caps := captures(c.Pkg, lit)
			if len(caps) == 0 {
				return true
			}
			if strings.HasSuffix(fn.Name(), "Arg") {
				c.Report(call.Pos(), "closure passed to Engine.%s captures %s and allocates per event on a hot path; pass the state through the arg parameter with a pre-built capture-free callback",
					fn.Name(), strings.Join(caps, ", "))
			} else {
				c.Report(call.Pos(), "closure passed to Engine.%s captures %s and allocates per event on a hot path; use %sArg with a pre-built capture-free callback",
					fn.Name(), strings.Join(caps, ", "), fn.Name())
			}
			return true
		})
	}
}

// fileMarked reports whether any comment line in the file starts with
// the marker (optionally followed by a reason).
func fileMarked(f *ast.File, marker string) bool {
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			if cm.Text == marker || strings.HasPrefix(cm.Text, marker+" ") {
				return true
			}
		}
	}
	return false
}

// captures lists the variables a func literal closes over: variables
// declared in an enclosing function scope (package-level state and the
// literal's own locals/params are capture-free).
func captures(pkg *Package, lit *ast.FuncLit) []string {
	seen := make(map[types.Object]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own local or parameter
		}
		if v.Parent() == pkg.Types.Scope() || v.Parent() == types.Universe {
			return true // package-level: referenced directly, not captured
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}
