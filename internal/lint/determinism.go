package lint

import (
	"go/ast"
	"go/types"
)

// checkWalltime flags wall-clock reads. A simulation run must be a
// pure function of (config, seed); time.Now leaking into the engine or
// a device makes reruns diverge and parallel runs non-reproducible.
func checkWalltime(c *Ctx) {
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := callee(c.Pkg.Info, call); isPkgFunc(fn, "time", "Now", "Since", "Until") {
				c.Report(call.Pos(), "call to time.%s reads the wall clock; simulations must be a pure function of (config, seed) — use sim time (Engine.Now)", fn.Name())
			}
			return true
		})
	}
}

// checkMathRand flags math/rand imports. Stochastic choices must draw
// from the seeded sim.Rand so results reproduce from the seed alone
// (math/rand's global source is seeded from runtime entropy).
func checkMathRand(c *Ctx) {
	for _, f := range c.Pkg.Files {
		for _, imp := range f.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				c.Report(imp.Pos(), "import of %s; draw from the seeded sim.Rand instead", imp.Path.Value)
			}
		}
	}
}

// checkEnvRead flags environment reads: configuration enters only
// through explicit config structs and the seed, never ambient state.
func checkEnvRead(c *Ctx) {
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := callee(c.Pkg.Info, call); isPkgFunc(fn, "os", "Getenv", "LookupEnv", "Environ") {
				c.Report(call.Pos(), "call to os.%s reads ambient environment; pass configuration explicitly", fn.Name())
			}
			return true
		})
	}
}

// checkMultiSelect flags select statements with two or more
// communication cases: when several channels are ready the runtime
// chooses uniformly at random, which is invisible nondeterminism.
func checkMultiSelect(c *Ctx) {
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			comms := 0
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms >= 2 {
				c.Report(sel.Pos(), "select over %d channels; the runtime picks ready cases at random — use a deterministic ordering", comms)
			}
			return true
		})
	}
}

// checkMapRange flags range statements over map-typed expressions. Map
// iteration order is randomized per run; in packages that feed
// rendered tables or schedule events, that order leaks straight into
// output bytes or event sequence. Order-independent reductions (sums,
// bulk deletes) are allowlisted with a reason, or rewritten with
// clear() / sorted key slices.
func checkMapRange(c *Ctx) {
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := c.Pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				c.Report(rng.Pos(), "range over %s iterates in randomized order; sort the keys first (or //lint:allow maprange for an order-independent reduction)", shortType(tv.Type))
			}
			return true
		})
	}
}
