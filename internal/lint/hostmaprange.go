package lint

import (
	"go/ast"
	"go/types"
)

// checkHostMapRange is the scale audit's chief hazard made a standing
// rule: per-host maps (keyed by packet.NodeID or packet.FlowID) are
// the structures that grow with the fabric — lazy paused-destination
// sets, per-flow VOQ state, FCT accumulators — and a range over one
// that feeds a deterministic sink (stats, metrics, exp tables) leaks
// randomized iteration order into rendered output exactly where a
// 100k-host run amplifies it most. The generic maprange rule flags the
// same loops, but its allowlist accepts any "order-independent
// reduction" claim; this rule is deliberately independent of that
// allowlist, so a per-host map feeding a sink needs its own
// //lint:allow hostmaprange justification — an order-independence
// argument about the sink write itself, not just the loop.
func checkHostMapRange(c *Ctx) {
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := c.Pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			m, isMap := tv.Type.Underlying().(*types.Map)
			if !isMap || !isPerHostKey(c, m.Key()) {
				return true
			}
			ast.Inspect(rng.Body, func(b ast.Node) bool {
				call, ok := b.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := sinkFunc(c, call); fn != nil {
					c.Report(rng.Pos(), "range over per-host map %s feeds %s.%s in its body; per-host map order is randomized and scales with the fabric — iterate a sorted key slice (//lint:allow hostmaprange needs an order-independence argument for the sink write)",
						shortType(tv.Type), recvNamed(fn), fn.Name())
					return false // one finding per range is enough signal
				}
				return true
			})
			return true
		})
	}
}

// isPerHostKey reports whether a map key type is one of the packet
// package's per-host/per-flow identifiers (pointer unwrapped), i.e.
// the map's size scales with the fabric.
func isPerHostKey(c *Ctx, t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != c.Cfg.PacketPath {
		return false
	}
	switch n.Obj().Name() {
	case "NodeID", "FlowID":
		return true
	}
	return false
}
