package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file renders findings for machines: a stable JSON report for
// tooling and a minimal SARIF 2.1.0 document for CI annotation, plus
// the committed baseline that grandfathers known findings so new ones
// fail the build without forcing a big-bang cleanup.
//
// Everything here is byte-deterministic: diagnostics arrive sorted from
// Run, baseline maps marshal through encoding/json (which sorts keys),
// and no wall-clock or host identity is ever embedded. Two runs over
// the same tree produce identical bytes — the linter holds itself to
// the invariant it enforces.

// Finding is one diagnostic in machine-readable form, with the file
// path relative to the module root.
type Finding struct {
	Rule      string `json:"rule"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Msg       string `json:"msg"`
	Baselined bool   `json:"baselined,omitempty"`
}

// Report is the full machine-readable result of a run.
type Report struct {
	Version   int       `json:"version"`
	Module    string    `json:"module"`
	Findings  []Finding `json:"findings"`
	New       int       `json:"new"`
	Baselined int       `json:"baselined"`
}

// NewReport converts diagnostics (with their baseline classification)
// into a Report. diags and baselined are parallel slices.
func NewReport(module, root string, diags []Diagnostic, baselined []bool) *Report {
	r := &Report{Version: 1, Module: module, Findings: []Finding{}}
	for i, d := range diags {
		f := Finding{
			Rule: d.Rule,
			File: relFile(root, d.Pos.Filename),
			Line: d.Pos.Line,
			Col:  d.Pos.Column,
			Msg:  d.Msg,
		}
		if i < len(baselined) && baselined[i] {
			f.Baselined = true
			r.Baselined++
		} else {
			r.New++
		}
		r.Findings = append(r.Findings, f)
	}
	return r
}

// JSON renders the report as indented JSON with a trailing newline.
func (r *Report) JSON() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.Encode(r) //nolint — Encode of a plain struct cannot fail
	return buf.Bytes()
}

// Minimal SARIF 2.1.0 shapes — just enough for CI annotation viewers.
type sarifText struct {
	Text string `json:"text"`
}
type sarifRule struct {
	ID   string    `json:"id"`
	Desc sarifText `json:"shortDescription"`
}
type sarifArtifact struct {
	URI string `json:"uri"`
}
type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}
type sarifPhysical struct {
	Artifact sarifArtifact `json:"artifactLocation"`
	Region   sarifRegion   `json:"region"`
}
type sarifLoc struct {
	Physical sarifPhysical `json:"physicalLocation"`
}
type sarifSuppression struct {
	Kind string `json:"kind"`
}
type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifText          `json:"message"`
	Locations    []sarifLoc         `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}
type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}
type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}
type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}
type sarifDoc struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

// SARIF renders the report as a minimal SARIF 2.1.0 document: one run,
// one result per finding, baselined findings carried as external
// suppressions so CI viewers hide them by default.
func (r *Report) SARIF() []byte {
	driver := sarifDriver{Name: "floodlint"}
	for _, rl := range Rules() {
		driver.Rules = append(driver.Rules, sarifRule{ID: rl.Name, Desc: sarifText{Text: rl.Doc}})
	}
	driver.Rules = append(driver.Rules, sarifRule{
		ID: "allow", Desc: sarifText{Text: "//lint:allow comment never matched a diagnostic"},
	})

	results := []sarifResult{}
	for _, f := range r.Findings {
		res := sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifText{Text: f.Msg},
			Locations: []sarifLoc{{Physical: sarifPhysical{
				Artifact: sarifArtifact{URI: f.File},
				Region:   sarifRegion{StartLine: f.Line, StartColumn: f.Col},
			}}},
		}
		if f.Baselined {
			res.Suppressions = []sarifSuppression{{Kind: "external"}}
		}
		results = append(results, res)
	}

	doc := sarifDoc{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.Encode(&doc)
	return buf.Bytes()
}

// Text renders the findings in the classic file:line: [rule] message
// form, marking baselined entries, with one summary line.
func (r *Report) Text() string {
	var b strings.Builder
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Msg)
		if f.Baselined {
			b.WriteString("  (baselined)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---- baseline ----

// BaselineFile is the well-known baseline filename at the module root;
// the CLI loads it automatically when present.
const BaselineFile = ".floodlint.baseline.json"

// Baseline grandfathers known findings. Keys are rule|file|message
// (line numbers excluded so unrelated edits above a finding do not
// invalidate it); values count how many identical findings are
// grandfathered, so a *new* duplicate of a baselined finding still
// fails.
type Baseline struct {
	Version  int            `json:"version"`
	Findings map[string]int `json:"findings"`
}

// baselineKey builds the stable identity of a diagnostic.
func baselineKey(rule, file, msg string) string {
	return rule + "|" + file + "|" + msg
}

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline, any other error is returned.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1, Findings: map[string]int{}}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %v", path, err)
	}
	if b.Findings == nil {
		b.Findings = map[string]int{}
	}
	return &b, nil
}

// Classify splits diagnostics into baselined and new: the returned
// slice is parallel to diags, true where the baseline absorbs the
// finding. Counts are consumed in diagnostic order (which Run sorts),
// so the classification is deterministic.
func (b *Baseline) Classify(root string, diags []Diagnostic) []bool {
	remaining := make(map[string]int, len(b.Findings))
	for k, v := range b.Findings { //lint:allow maprange copying counts into a scratch map; no ordered output depends on it
		remaining[k] = v
	}
	out := make([]bool, len(diags))
	for i, d := range diags {
		k := baselineKey(d.Rule, relFile(root, d.Pos.Filename), d.Msg)
		if remaining[k] > 0 {
			remaining[k]--
			out[i] = true
		}
	}
	return out
}

// NewBaseline builds a baseline that absorbs exactly the given
// diagnostics.
func NewBaseline(root string, diags []Diagnostic) *Baseline {
	b := &Baseline{Version: 1, Findings: map[string]int{}}
	for _, d := range diags {
		b.Findings[baselineKey(d.Rule, relFile(root, d.Pos.Filename), d.Msg)]++
	}
	return b
}

// Marshal renders the baseline deterministically (encoding/json sorts
// map keys) with a trailing newline.
func (b *Baseline) Marshal() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.Encode(b)
	return buf.Bytes()
}

// Stale returns the baseline keys that no current diagnostic consumed —
// fixed findings whose entries should be dropped by regenerating the
// baseline. Sorted for stable output.
func (b *Baseline) Stale(root string, diags []Diagnostic) []string {
	remaining := make(map[string]int, len(b.Findings))
	for k, v := range b.Findings { //lint:allow maprange copying counts into a scratch map; output is sorted below
		remaining[k] = v
	}
	for _, d := range diags {
		k := baselineKey(d.Rule, relFile(root, d.Pos.Filename), d.Msg)
		if remaining[k] > 0 {
			remaining[k]--
		}
	}
	var stale []string
	for k, v := range remaining { //lint:allow maprange collecting leftover keys; sorted before return
		if v > 0 {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return stale
}

// relFile renders a filename relative to the module root with forward
// slashes (stable across checkouts).
func relFile(root, name string) string {
	if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(name)
}
