package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"testing"
)

func fakeDiag(root, file string, line int, rule, msg string) Diagnostic {
	return Diagnostic{
		Pos:  token.Position{Filename: filepath.Join(root, file), Line: line, Column: 3},
		Rule: rule,
		Msg:  msg,
	}
}

// TestReportDeterminism renders the same diagnostics twice and demands
// identical bytes: the linter's own output must satisfy the invariant
// it enforces.
func TestReportDeterminism(t *testing.T) {
	root := "/fake/root"
	diags := []Diagnostic{
		fakeDiag(root, "a/a.go", 3, "walltime", "m1"),
		fakeDiag(root, "a/a.go", 9, "detwrite", "m2"),
		fakeDiag(root, "b/b.go", 1, "ordering", "m3"),
	}
	base := NewBaseline(root, diags[:1])
	for i := 0; i < 2; i++ {
		cls := base.Classify(root, diags)
		r := NewReport("floodgate", root, diags, cls)
		if i == 0 {
			continue
		}
		prev := NewReport("floodgate", root, diags, base.Classify(root, diags))
		if !bytes.Equal(r.JSON(), prev.JSON()) {
			t.Error("JSON output differs between identical runs")
		}
		if !bytes.Equal(r.SARIF(), prev.SARIF()) {
			t.Error("SARIF output differs between identical runs")
		}
		if !bytes.Equal(base.Marshal(), NewBaseline(root, diags[:1]).Marshal()) {
			t.Error("baseline bytes differ between identical runs")
		}
	}
}

// TestBaselineRoundTrip writes a baseline from findings and verifies
// it absorbs exactly those findings — no more, no fewer.
func TestBaselineRoundTrip(t *testing.T) {
	root := "/fake/root"
	old := []Diagnostic{
		fakeDiag(root, "a.go", 3, "walltime", "m1"),
		fakeDiag(root, "a.go", 5, "walltime", "m1"), // same key twice: count 2
		fakeDiag(root, "b.go", 1, "pool", "m2"),
	}
	base := NewBaseline(root, old)

	// Same findings (lines moved): all absorbed, nothing stale.
	moved := []Diagnostic{
		fakeDiag(root, "a.go", 30, "walltime", "m1"),
		fakeDiag(root, "a.go", 50, "walltime", "m1"),
		fakeDiag(root, "b.go", 10, "pool", "m2"),
	}
	cls := base.Classify(root, moved)
	for i, b := range cls {
		if !b {
			t.Errorf("finding %d not absorbed by its own baseline", i)
		}
	}
	if stale := base.Stale(root, moved); len(stale) != 0 {
		t.Errorf("stale entries on an exact match: %v", stale)
	}

	// A third duplicate of a count-2 key is new, and a novel finding is new.
	grown := append(moved,
		fakeDiag(root, "a.go", 70, "walltime", "m1"),
		fakeDiag(root, "c.go", 2, "detwrite", "m3"),
	)
	cls = base.Classify(root, grown)
	if cls[3] || cls[4] {
		t.Error("baseline absorbed findings beyond its counts")
	}
	r := NewReport("floodgate", root, grown, cls)
	if r.New != 2 || r.Baselined != 3 {
		t.Errorf("report counts new=%d baselined=%d, want 2/3", r.New, r.Baselined)
	}

	// A fixed finding leaves its key stale.
	if stale := base.Stale(root, moved[:2]); len(stale) != 1 || stale[0] != "pool|b.go|m2" {
		t.Errorf("stale = %v, want [pool|b.go|m2]", stale)
	}
}

// TestBaselineLoadMissing pins that a missing baseline file is an
// empty baseline, not an error (the CLI default path may not exist).
func TestBaselineLoadMissing(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing baseline: %v", err)
	}
	if len(b.Findings) != 0 {
		t.Errorf("missing baseline not empty: %v", b.Findings)
	}
}

// TestSARIFShape sanity-checks the SARIF envelope and suppression
// marking without golden-filing the whole document.
func TestSARIFShape(t *testing.T) {
	root := "/fake/root"
	diags := []Diagnostic{
		fakeDiag(root, "a.go", 3, "walltime", "old"),
		fakeDiag(root, "a.go", 4, "detwrite", "new"),
	}
	base := NewBaseline(root, diags[:1])
	r := NewReport("floodgate", root, diags, base.Classify(root, diags))
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string            `json:"name"`
					Rules []json.RawMessage `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID       string            `json:"ruleId"`
				Suppressions []json.RawMessage `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(r.SARIF(), &doc); err != nil {
		t.Fatalf("SARIF does not parse: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("unexpected envelope: version=%q runs=%d", doc.Version, len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "floodlint" {
		t.Errorf("driver = %q", run.Tool.Driver.Name)
	}
	// Every registered rule plus the allow pseudo-rule is declared.
	if want := len(Rules()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("driver declares %d rules, want %d", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	if len(run.Results[0].Suppressions) != 1 {
		t.Error("baselined finding missing its suppression")
	}
	if len(run.Results[1].Suppressions) != 0 {
		t.Error("new finding wrongly suppressed")
	}
}
