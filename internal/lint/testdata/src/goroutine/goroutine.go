// Package goroutine exercises the goroutine rule: the simulator's
// deterministic layers are single-goroutine by contract, so starting
// one anywhere outside the exp executor is a latent data race.
package goroutine

// Fire starts a goroutine in library code — the violation.
func Fire(work func()) {
	go work()
}

// FireLiteral covers the function-literal form.
func FireLiteral(ch chan int) {
	go func() { ch <- 1 }()
}

// Audited demonstrates suppression for a justified exception.
func Audited(work func()) {
	go work() //lint:allow goroutine fixture demonstrates suppression
}
