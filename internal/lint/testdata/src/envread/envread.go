// Package envread exercises the environment rule: configuration enters
// through explicit structs and the seed, never ambient state.
package envread

import "os"

// Debug reads the environment — the violation.
func Debug() bool {
	return os.Getenv("FLOOD_DEBUG") != ""
}

// Allowed keeps a read behind an allow.
func Allowed() (string, bool) {
	return os.LookupEnv("HOME") //lint:allow envread fixture demonstrates suppression
}
