// Package recoverbare exercises the recover rule: panic isolation
// belongs at the experiment executor's run boundary, not scattered
// through library code where it hides simulator bugs.
package recoverbare

// Swallow recovers in library code — the violation.
func Swallow(f func()) (failed bool) {
	defer func() {
		if recover() != nil {
			failed = true
		}
	}()
	f()
	return false
}

// Boundary demonstrates suppression for an audited isolation point.
func Boundary(f func()) (v any) {
	defer func() {
		v = recover() //lint:allow recover fixture demonstrates suppression
	}()
	f()
	return nil
}
