// Package shardsafety exercises the cross-shard aliasing rule: a
// fan-out loop over shard Networks must not hand the same mutable
// value to more than one shard.
package shardsafety

import (
	"floodgate/internal/device"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/units"
)

// Tally is package-level mutable state; a per-shard callback that
// reaches it aliases it across every shard.
var Tally []int

type counter struct{ n int }

// InstallShared wires every shard to the same outer state — the
// capture and store violations.
func InstallShared(nets []*device.Network, tp *topo.Topology) {
	done := make([]int, len(nets))
	col := stats.NewCollector(units.Millisecond)
	for i, n := range nets {
		i := i
		n.OnFlowDone = func(*device.Flow, units.Time) { done[i]++ }
		n.Stats = col
		n.Topo = tp // clean: topo.Topology is immutable by contract
	}
}

// InstallGlobal reaches package-level state from the callback.
func InstallGlobal(nets []*device.Network) {
	for i, n := range nets {
		i := i
		n.OnFlowDone = func(*device.Flow, units.Time) { Tally[i]++ }
	}
}

// InstallPrivate allocates per-shard state inside the loop — clean.
func InstallPrivate(nets []*device.Network) {
	for _, n := range nets {
		sd := &counter{}
		n.OnFlowDone = func(*device.Flow, units.Time) { sd.n++ }
	}
}

// InstallAllowed shares deliberately, with a justification.
func InstallAllowed(nets []*device.Network, seen map[uint64]bool) {
	for _, n := range nets {
		n.OnFlowDone = func(f *device.Flow, _ units.Time) {
			seen[0] = true //lint:allow shardsafety coordinator-only map, read at barrier windows
		}
	}
}
