// Package mathrand exercises the math/rand rule: stochastic choices
// must draw from the seeded sim.Rand.
package mathrand

import (
	"math/rand"

	mrand "math/rand/v2" //lint:allow mathrand fixture demonstrates suppression
)

// Roll draws from the runtime-seeded global source — the violation.
func Roll() int { return rand.Intn(6) }

// Roll2 uses the allowlisted import above.
func Roll2() int { return mrand.IntN(6) }
