// Retry-policy jitter is the app-plane shape of the same rule: backoff
// randomness decides when retries re-enter the fabric, so it must come
// from the per-client sim.Rand stream — a math/rand draw would desync
// shards and make the SLO tables flap run to run.
package mathrand

import (
	"math/rand" //nolint:gci // second import site: the violation under test
	"time"
)

// JitterPolicy mimics internal/app.RetryPolicy with unseeded jitter —
// the violation.
type JitterPolicy struct{ Base time.Duration }

// Backoff doubles Base per attempt with global-source jitter.
func (p JitterPolicy) Backoff(attempt int) time.Duration {
	d := p.Base << (attempt - 1)
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}
