// Package walltime exercises the wall-clock rule: simulated code must
// read time from the engine, never the host clock.
package walltime

import "time"

// Stamp reads the wall clock — the violation.
func Stamp() time.Time {
	return time.Now()
}

// Elapsed is the second flagged shape.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Allowed keeps a legitimate wall-clock read behind an allow.
func Allowed() time.Time {
	return time.Now() //lint:allow walltime fixture demonstrates suppression
}
