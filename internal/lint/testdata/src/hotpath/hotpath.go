// Package hotpath exercises the closure-allocation rule.
//
//lint:hotpath fixture: every function here fires per packet
package hotpath

import (
	"floodgate/internal/sim"
	"floodgate/internal/units"
)

type waiter struct{ fired int }

func onFire(a any) { a.(*waiter).fired++ }

// Arm captures w in the scheduled closure — the violation.
func Arm(eng *sim.Engine, w *waiter, d units.Duration) {
	eng.After(d, func() { w.fired++ })
}

// ArmAt is the same violation through Engine.At.
func ArmAt(eng *sim.Engine, w *waiter, t units.Time) {
	eng.At(t, func() { w.fired++ })
}

// ArmFixed uses the capture-free variant — clean.
func ArmFixed(eng *sim.Engine, w *waiter, d units.Duration) {
	eng.AfterArg(d, onFire, w)
}

// ArmArgClosure defeats the Arg variant with a capturing literal — the
// violation the rule's AfterArg/AtArg coverage exists to catch.
func ArmArgClosure(eng *sim.Engine, w *waiter, d units.Duration) {
	eng.AfterArg(d, func(any) { w.fired++ }, nil)
}

// ArmAtArgClosure is the same violation through Engine.AtArg.
func ArmAtArgClosure(eng *sim.Engine, w *waiter, t units.Time) {
	eng.AtArg(t, func(any) { w.fired++ }, nil)
}

// ArmEmpty schedules a capture-free literal — clean.
func ArmEmpty(eng *sim.Engine, d units.Duration) {
	eng.After(d, func() {})
}

// ArmAllowed keeps a cold-path closure behind an allow.
func ArmAllowed(eng *sim.Engine, w *waiter, d units.Duration) {
	eng.After(d, func() { w.fired++ }) //lint:allow hotpath fixture demonstrates suppression
}

// recorder stands in for the forensics recorder threaded through hot
// paths: instrumentation must be a nil-guarded direct call at the hook
// site, never deferred into a scheduled closure — the capture allocates
// per packet whether or not recording is enabled.
type recorder struct{ stamps int }

func (r *recorder) Stamp() { r.stamps++ }

func stampArg(a any) { a.(*recorder).Stamp() }

// ArmForensics captures the recorder in the scheduled closure — the
// violation the zero-alloc-when-disabled forensics contract forbids.
func ArmForensics(eng *sim.Engine, rec *recorder, d units.Duration) {
	eng.After(d, func() {
		if rec != nil {
			rec.Stamp()
		}
	})
}

// ArmForensicsGuarded is the conforming shape: the nil check happens
// inline at schedule time and the recorder rides through the arg
// parameter capture-free — disabled recording schedules nothing.
func ArmForensicsGuarded(eng *sim.Engine, rec *recorder, d units.Duration) {
	if rec != nil {
		eng.AfterArg(d, stampArg, rec)
	}
}
