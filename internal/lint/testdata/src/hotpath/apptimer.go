// The app-plane shape of the closure rule: deadline, retry, and hedge
// timers arm per attempt, so a capturing literal allocates on every
// request the closed loop injects.
//
//lint:hotpath fixture: app timers fire per attempt
package hotpath

import (
	"floodgate/internal/sim"
	"floodgate/internal/units"
)

// request stands in for the app plane's per-request state.
type request struct {
	attempts int
	deadline units.Duration
}

func requestDeadline(a any) { a.(*request).attempts++ }

// ArmDeadline captures the request in the deadline timer — the
// violation: one allocation per injected attempt.
func ArmDeadline(eng *sim.Engine, rq *request) {
	eng.After(rq.deadline, func() { rq.attempts++ })
}

// ArmDeadlineFixed threads the request through the arg parameter with
// a pre-built callback — the conforming app-timer shape.
func ArmDeadlineFixed(eng *sim.Engine, rq *request) {
	eng.AfterArg(rq.deadline, requestDeadline, rq)
}
