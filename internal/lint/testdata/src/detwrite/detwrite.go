// Package detwrite exercises the nondeterministic-write taint rule:
// values tainted by map order, wall clock, runtime shape or pointer
// identity must not reach stats, metrics or shard-shared state.
package detwrite

import (
	"runtime"
	"unsafe"

	"floodgate/internal/device"
	"floodgate/internal/metrics"
	"floodgate/internal/stats"
	"floodgate/internal/units"
)

// Seen is shared across every shard on purpose (allowlisted below);
// the shardsafety fact it carries makes nondeterministic writes into
// it findings even though the sharing itself is sanctioned.
var Seen map[uint64]int

// Install shares Seen across shards deliberately: the shardsafety
// finding is allowlisted, but the rule still exports the fact.
func Install(nets []*device.Network) {
	for _, n := range nets {
		n.OnFlowDone = func(*device.Flow, units.Time) {
			Seen[0] = 1 //lint:allow shardsafety coordinator-only map, read at barrier windows
		}
	}
}

// CountGoroutines writes runtime shape into the shard-shared map —
// flagged by composing detwrite's taint with shardsafety's fact.
func CountGoroutines() {
	Seen[0] = runtime.NumGoroutine()
}

// RecordSizes folds per-flow rows into the collector in map iteration
// order — the order taints what each bin records.
func RecordSizes(c *stats.Collector, sizes map[uint64]units.ByteSize) {
	for id, size := range sizes {
		c.FlowDone(id, 0, size, 0, 0, 0)
	}
}

// Shape leaks the host's parallelism into a gauge.
func Shape(g metrics.Gauge) {
	g.Set(int64(runtime.GOMAXPROCS(0)))
}

// Identity observes a pointer's address — run-varying identity.
func Identity(h metrics.Histogram, f *device.Flow) {
	h.Observe(int64(uintptr(unsafe.Pointer(f))))
}

// Fold is the sanctioned shape: an order-independent reduction over a
// map, then one deterministic write. The commutative accumulation does
// not taint total.
func Fold(c *stats.Collector, sizes map[uint64]units.ByteSize) {
	var total units.ByteSize
	for _, size := range sizes { //lint:allow maprange order-independent sum; one write after the loop
		total += size
	}
	c.SwitchBuffer(0, total)
}
