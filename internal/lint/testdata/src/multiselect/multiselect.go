// Package multiselect exercises the select rule: with several channels
// ready the runtime picks a case at random.
package multiselect

// Merge races two channels — the violation.
func Merge(a, b <-chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Poll is a single channel plus default: deterministic, not flagged.
func Poll(a <-chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

// Allowed keeps a race behind an allow.
func Allowed(a, b <-chan int) int {
	//lint:allow multiselect fixture demonstrates suppression
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
