// Package pool exercises the packet-pool rules: packets come from and
// return to the Network pool.
package pool

import (
	"floodgate/internal/device"
	"floodgate/internal/packet"
)

// Mint constructs a packet outside the pool — the directalloc violation.
func Mint(id uint64) *packet.Packet {
	return packet.NewCtrl(id, packet.Ack, 0, 1, 2)
}

// Literal is the second directalloc shape.
func Literal() *packet.Packet {
	return &packet.Packet{Kind: packet.Data}
}

// Drop acquires a pooled packet and never hands it off — the leak
// violation (field writes keep it local and do not count).
func Drop(n *device.Network) {
	p := n.NewCtrl(packet.Ack, 0, 1, 2)
	p.ECN = true
}

// Send hands the packet off to a call — clean.
func Send(n *device.Network) {
	p := n.NewCtrl(packet.Ack, 0, 1, 2)
	n.Recycle(p)
}

// Fresh is the pool-refill idiom, allowlisted like the real pool.
func Fresh() *packet.Packet {
	//lint:allow pool fixture demonstrates the refill-point suppression
	return &packet.Packet{}
}
