// Package hostmaprange exercises the per-host map rule: maps keyed by
// packet.NodeID/FlowID scale with the fabric, and ranging one into a
// deterministic sink leaks randomized order exactly where a 100k-host
// run amplifies it. The rule is independent of the generic maprange
// allowlist: an order-independent-reduction claim on the loop does not
// license the sink write. It is also structural, not taint-based, so
// it composes with detwrite — each catches cases the other cannot.
package hostmaprange

import (
	"floodgate/internal/packet"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/units"
)

// ReportBuffers leaks per-host map order into the stats collector —
// the generic maprange rule, the per-host rule and detwrite all fire.
func ReportBuffers(col *stats.Collector, occ map[packet.NodeID]units.ByteSize) {
	for n, b := range occ {
		col.SwitchBuffer(int32(n), b)
	}
}

// ReportAllowedGeneric shows the rules are independent: the generic
// maprange allow (an order-independence claim about the loop) does not
// suppress the per-host finding about the sink write.
func ReportAllowedGeneric(col *stats.Collector, occ map[packet.NodeID]units.ByteSize) {
	for n, b := range occ { //lint:allow maprange fixture: claims an order-independent reduction, which does not cover the sink write
		col.SwitchBuffer(int32(n), b)
	}
}

// CountPaused shows what the structural rule catches that detwrite's
// argument taint cannot: the sink arguments are constants, so no
// tainted value flows in — but the per-host rule still flags the loop,
// and the allow must argue order independence of the sink write itself
// (here: every iteration performs the identical write, so only the
// count reaches the collector).
func CountPaused(col *stats.Collector, paused map[packet.NodeID]bool) {
	//lint:allow hostmaprange fixture: every iteration performs the identical sink write, so only the count is observable
	for range paused { //lint:allow maprange fixture: loop body is element-independent, order cannot matter
		col.PFCPaused(topo.LayerToR, units.Microsecond)
	}
}

// ReportOrdered is the fix used across the tree: fabric-sized state is
// carried in slices indexed by node (or alongside a deterministic key
// slice), and the map is only ever indexed, never ranged, at the sink.
func ReportOrdered(col *stats.Collector, nodes []packet.NodeID, occ map[packet.NodeID]units.ByteSize) {
	for _, n := range nodes {
		col.SwitchBuffer(int32(n), occ[n])
	}
}

// SumBytes ranges a per-host map without touching a sink: only the
// generic rule applies (allowlisted as a reduction), the per-host rule
// stays quiet.
func SumBytes(occ map[packet.NodeID]units.ByteSize) units.ByteSize {
	var total units.ByteSize
	//lint:allow maprange fixture demonstrates an order-independent reduction
	for _, b := range occ {
		total += b
	}
	return total
}
