// Package unusedallow verifies that stale allow comments are
// themselves reported, so the allowlist cannot rot.
package unusedallow

// Clean has no violation, so this allow never matches.
//
//lint:allow walltime this reason is stale on purpose
func Clean() int { return 1 }
