//go:build simdebug

// This file is excluded from the default (lint) build by its tag. Its
// allow suppresses a walltime finding that only exists when building
// with -tags simdebug — the staleness report must leave it alone.
package tagallow

import "time"

// DebugStamp timestamps debug traces with host time; acceptable in the
// simdebug diagnostics build, which never ships results.
func DebugStamp() time.Time {
	return time.Now() //lint:allow walltime simdebug-only diagnostics; excluded from deterministic builds
}
