// Package tagallow exercises allow-staleness across build tags: the
// sibling file debug_tagged.go is excluded by its //go:build simdebug
// constraint, so its //lint:allow must not be reported stale even
// though no diagnostic in this build can ever match it.
package tagallow

import "time"

// Stamp is a plain finding so the golden is non-empty.
func Stamp() time.Time {
	return time.Now()
}
