// Package maprange exercises the map-iteration rule: map order is
// randomized per run and must not reach output or scheduling.
package maprange

import "sort"

// Render leaks map order straight into the output slice — the violation.
func Render(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// RenderSorted is the fix: collect (order-independent, allowlisted),
// then sort before anything order-sensitive happens.
func RenderSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//lint:allow maprange fixture: key collection feeds a sort, so order cannot leak
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum is an order-independent reduction, allowlisted with a reason.
func Sum(m map[string]int) int {
	total := 0
	//lint:allow maprange fixture demonstrates an order-independent reduction
	for _, v := range m {
		total += v
	}
	return total
}
