// Package unitsmix exercises the units-hygiene rule: stripping the
// typed units and combining different dimensions raw recreates the bug
// class the types prevent.
package unitsmix

import "floodgate/internal/units"

// Throughput divides bytes by time with the units stripped — the
// violation (units.Rate's job).
func Throughput(b units.ByteSize, d units.Duration) float64 {
	return float64(b) / float64(d)
}

// Cast crosses dimensions in a direct conversion — the violation.
func Cast(r units.BitRate) units.ByteSize {
	return units.ByteSize(r)
}

// Ratio is same-dimension normalisation — legal, not flagged.
func Ratio(a, b units.Duration) float64 {
	return float64(a) / float64(b)
}

// Allowed keeps a deliberate mix behind an allow.
func Allowed(b units.ByteSize, d units.Duration) float64 {
	return float64(b) / float64(d) //lint:allow unitsmix fixture demonstrates suppression
}
