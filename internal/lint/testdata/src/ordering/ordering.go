// Package ordering exercises the same-timestamp priority rule:
// tie-break priorities must come from the sim.Pri* ladder, and event
// times must not derive from nondeterministic sources.
package ordering

import (
	"time"

	"floodgate/internal/sim"
	"floodgate/internal/units"
)

// wire carries ladder provenance through a field, like device.wire.
type wire struct{ pri uint32 }

func newWire(port uint32) *wire {
	return &wire{pri: sim.PriWireBase + port}
}

// Ladder schedules with ladder-derived priorities — clean.
func Ladder(e *sim.Engine, w *wire, port uint32) {
	e.AtArgPri(units.Time(10), func(any) {}, nil, sim.PriWireBase+port)
	e.AtArgPri(units.Time(20), func(any) {}, nil, w.pri)
}

// Raw passes a bare literal — tie-break values collide.
func Raw(e *sim.Engine) {
	e.AtArgPri(units.Time(10), func(any) {}, nil, 3)
}

// Demoted launders a raw literal through a variable: the carrier
// fixpoint demotes p, so the call site is still flagged.
func Demoted(e *sim.Engine) {
	p := uint32(7)
	e.AtArgPri(units.Time(10), func(any) {}, nil, p)
}

// MapOrder derives the priority from map iteration order.
func MapOrder(e *sim.Engine, m map[uint32]bool) {
	for k := range m {
		e.AtArgPri(units.Time(10), func(any) {}, nil, sim.PriWireBase+k)
	}
}

// WallTime schedules at a wall-clock-derived delay.
func WallTime(e *sim.Engine) {
	d := units.Duration(time.Now().UnixNano())
	e.After(d, func() {})
}
