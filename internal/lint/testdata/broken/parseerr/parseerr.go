// Package parseerr does not parse.
package parseerr

func Broken( {
