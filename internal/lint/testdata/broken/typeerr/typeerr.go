// Package typeerr fails type-checking: the Loader must surface this as
// an error naming the package, not a panic.
package typeerr

func Mismatch() int {
	var s string = 42
	return s
}
