// Package badimport imports a path that resolves nowhere (not stdlib,
// not this module): the Loader must report it, not panic.
package badimport

import "no/such/vendored/thing"

var _ = thing.Value
