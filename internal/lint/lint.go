// Package lint is floodlint: a stdlib-only static-analysis suite that
// machine-checks the simulator's determinism, pooling and units
// invariants. Every rule exists because one careless change — a
// time.Now in the engine, a range over a per-flow map that feeds a
// rendered table, a packet allocated outside the pool — silently
// breaks the property the whole reproduction rests on: a run is a pure
// function of (configuration, seed).
//
// Rules are suppressed line-by-line with
//
//	//lint:allow <rule> <reason>
//
// placed on (or on the line above) the offending line. Allow comments
// that never match a diagnostic are themselves reported, so the
// allowlist cannot rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Config scopes each rule family to package paths. Scope entries are
// exact import paths, "prefix/..." subtrees, or "..." for every
// package handed to Run.
type Config struct {
	ModulePath string

	// Determinism scopes walltime / mathrand / envread / multiselect.
	Determinism []string
	// MapRange scopes the map-iteration-order rule; HostMapRange the
	// stricter per-host variant (fabric-sized maps feeding sinks).
	MapRange     []string
	HostMapRange []string
	// Pool scopes the packet-pool rules (direct allocation and leaks).
	Pool []string
	// Units scopes the units-mixing rule; UnitsPath is always exempt.
	Units []string
	// RecoverAllowed lists the packages permitted to call recover():
	// panic isolation belongs at the experiment executor's run boundary
	// and nowhere else.
	RecoverAllowed []string
	// GoAllowed lists the packages permitted to start goroutines: the
	// deterministic layers are single-goroutine by contract, and only
	// the exp executor (worker pool, shard barriers) may fan out.
	GoAllowed []string

	// ShardSafety scopes the cross-shard aliasing rule, Ordering the
	// same-timestamp priority rule, DetWrite the nondeterministic-write
	// taint rule.
	ShardSafety []string
	Ordering    []string
	DetWrite    []string

	// SharedImmutable lists named types ("import/path.Type") that are
	// immutable after construction and therefore safe to alias across
	// shard Networks — the shared-state audit from exp/parallel.go made
	// machine-checkable. Pointer indirection is unwrapped before the
	// match.
	SharedImmutable []string

	// Canonical packages the rules key their type checks on.
	UnitsPath   string // units.Time/ByteSize/BitRate live here
	SimPath     string // sim.Engine (hot-path scheduling rule, Pri* ladder)
	PacketPath  string // packet.NewData/NewCtrl (pool rule)
	DevicePath  string // device.Network pool methods, shard Networks
	StatsPath   string // stats.Collector (detwrite sink)
	MetricsPath string // metrics instruments and exporters (detwrite sink)
	ExpPath     string // exp.Table (detwrite sink)
}

// DefaultConfig returns the production scoping for the given module.
func DefaultConfig(module string) *Config {
	return &Config{
		ModulePath:  module,
		Determinism:  []string{"..."},
		MapRange:     []string{"..."},
		HostMapRange: []string{"..."},
		Pool: []string{
			module + "/internal/device",
			module + "/internal/core",
			module + "/internal/bfc",
			module + "/internal/pfctag",
		},
		Units:          []string{"..."},
		RecoverAllowed: []string{module + "/internal/exp"},
		GoAllowed:      []string{module + "/internal/exp"},
		ShardSafety:    []string{"..."},
		Ordering:       []string{"..."},
		DetWrite:       []string{"..."},
		SharedImmutable: []string{
			// Immutable after Build()/construction by audited contract
			// (see the shared-state audit in exp/parallel.go).
			module + "/internal/topo.Topology",
			module + "/internal/fault.Plan",
			module + "/internal/workload.CDF",
			// The app-plane dispatch table is sealed by app.Build before
			// any shard runs; Planes only read it.
			module + "/internal/app.Dispatch",
		},
		UnitsPath:   module + "/internal/units",
		SimPath:     module + "/internal/sim",
		PacketPath:  module + "/internal/packet",
		DevicePath:  module + "/internal/device",
		StatsPath:   module + "/internal/stats",
		MetricsPath: module + "/internal/metrics",
		ExpPath:     module + "/internal/exp",
	}
}

func inScope(patterns []string, path string) bool {
	for _, p := range patterns {
		if p == "..." || p == path {
			return true
		}
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			if path == rest || strings.HasPrefix(path, rest+"/") {
				return true
			}
		}
	}
	return false
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// Rel renders the diagnostic with the filename relative to base.
func (d Diagnostic) Rel(base string) string {
	name := d.Pos.Filename
	if r, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(r, "..") {
		name = filepath.ToSlash(r)
	}
	return fmt.Sprintf("%s:%d: [%s] %s", name, d.Pos.Line, d.Rule, d.Msg)
}

// Rule is one analyzer: Check walks a package and reports through ctx.
type Rule struct {
	Name  string
	Doc   string
	Scope func(cfg *Config, pkg *Package) bool
	Check func(ctx *Ctx)
}

// Rules returns the registry in execution order. The order is part of
// the contract: Run drives each rule over every package before the
// next rule starts, so a rule may consume facts exported by the rules
// before it (detwrite reads shardsafety's escape facts).
func Rules() []Rule {
	return []Rule{
		{"walltime", "no wall-clock reads (time.Now/Since/Until) in deterministic code",
			func(c *Config, p *Package) bool { return inScope(c.Determinism, p.Path) }, checkWalltime},
		{"mathrand", "no math/rand; every draw must come from the seeded sim.Rand",
			func(c *Config, p *Package) bool { return inScope(c.Determinism, p.Path) }, checkMathRand},
		{"envread", "no environment reads; runs are configured by (config, seed) only",
			func(c *Config, p *Package) bool { return inScope(c.Determinism, p.Path) }, checkEnvRead},
		{"multiselect", "no select over multiple channels; the runtime picks cases at random",
			func(c *Config, p *Package) bool { return inScope(c.Determinism, p.Path) }, checkMultiSelect},
		{"maprange", "no ranging over maps where order can reach tables or event scheduling",
			func(c *Config, p *Package) bool { return inScope(c.MapRange, p.Path) }, checkMapRange},
		{"hostmaprange", "no ranging over per-host maps (NodeID/FlowID keys) into stats, metrics or table sinks",
			func(c *Config, p *Package) bool { return inScope(c.HostMapRange, p.Path) }, checkHostMapRange},
		{"pool", "packets come from and return to the Network pool",
			func(c *Config, p *Package) bool { return inScope(c.Pool, p.Path) }, checkPool},
		{"hotpath", "no capturing closures scheduled from //lint:hotpath files",
			func(c *Config, p *Package) bool { return true }, checkHotpath},
		{"unitsmix", "no raw arithmetic mixing units dimensions via conversions",
			func(c *Config, p *Package) bool {
				return p.Path != c.UnitsPath && inScope(c.Units, p.Path)
			}, checkUnitsMix},
		{"recover", "no bare recover() outside the experiment executor's run boundary",
			func(c *Config, p *Package) bool { return !inScope(c.RecoverAllowed, p.Path) }, checkRecover},
		{"goroutine", "no go statements outside the experiment executor; deterministic layers are single-goroutine",
			func(c *Config, p *Package) bool { return !inScope(c.GoAllowed, p.Path) }, checkGoroutine},
		{"shardsafety", "no mutable value reachable from two shard Networks outside the Cluster coupling layer",
			func(c *Config, p *Package) bool { return inScope(c.ShardSafety, p.Path) }, checkShardSafety},
		{"ordering", "same-timestamp event priorities come from the sim.Pri* ladder, never from nondeterministic state",
			func(c *Config, p *Package) bool { return inScope(c.Ordering, p.Path) }, checkOrdering},
		{"detwrite", "no nondeterministic value (map order, wall clock, pointer identity, GOMAXPROCS) written to stats, metrics or tables",
			func(c *Config, p *Package) bool { return inScope(c.DetWrite, p.Path) }, checkDetWrite},
	}
}

// Ctx is the per-(rule, package) check context. All carries every
// package of the run, so whole-program passes (the ordering rule's
// priority-carrier fixpoint) can see flows across package boundaries.
type Ctx struct {
	Cfg  *Config
	Pkg  *Package
	All  []*Package
	fset *token.FileSet
	src  func(filename string) []byte
	rule string
	out  *runState
}

// Facts returns the run-wide fact store shared by all rules.
func (c *Ctx) Facts() *Facts { return c.out.facts }

// Report files a diagnostic at pos unless an allow entry suppresses it.
func (c *Ctx) Report(pos token.Pos, format string, args ...any) {
	p := c.fset.Position(pos)
	if a := c.out.allows.match(p.Filename, p.Line, c.rule); a != nil {
		a.used = true
		return
	}
	c.out.diags = append(c.out.diags, Diagnostic{Pos: p, Rule: c.rule, Msg: fmt.Sprintf(format, args...)})
}

// ---- allowlist ----

var allowRE = regexp.MustCompile(`^//lint:allow\s+([a-z]+)\s+(\S.*)$`)

type allowEntry struct {
	file   string
	line   int // line the allow applies to
	rule   string
	pos    token.Position
	used   bool
	tagged bool // lives in a build-tag-excluded file; exempt from staleness
}

type allowIndex struct{ entries []*allowEntry }

func (ai *allowIndex) match(file string, line int, rule string) *allowEntry {
	for _, a := range ai.entries {
		if a.rule == rule && a.line == line && a.file == file {
			return a
		}
	}
	return nil
}

// collectAllows indexes every //lint:allow comment of a package. A
// comment trailing code suppresses on its own line; a comment alone on
// its line suppresses the following line. Allows in build-tag-excluded
// files (pkg.TagFiles, e.g. //go:build simdebug sources) are indexed
// as tagged: their code is not linted in this build, so they can never
// match a diagnostic and must not be reported stale.
func collectAllows(fset *token.FileSet, src func(string) []byte, pkg *Package, ai *allowIndex) {
	collect := func(files []*ast.File, tagged bool) {
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					m := allowRE.FindStringSubmatch(cm.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(cm.Pos())
					line := pos.Line
					if standalone(src(pos.Filename), pos) {
						line++
					}
					ai.entries = append(ai.entries, &allowEntry{
						file: pos.Filename, line: line, rule: m[1], pos: pos, tagged: tagged,
					})
				}
			}
		}
	}
	collect(pkg.Files, false)
	collect(pkg.TagFiles, true)
}

// standalone reports whether only whitespace precedes the comment on
// its line.
func standalone(src []byte, pos token.Position) bool {
	if len(src) == 0 {
		return pos.Column == 1
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return pos.Column == 1
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}

// ---- runner ----

type runState struct {
	diags  []Diagnostic
	allows allowIndex
	facts  *Facts

	// carriers memoizes the ordering rule's whole-program priority-
	// carrier fixpoint (computed once per Run, over every package).
	carriers *carrierSet
}

// Run executes every rule over the given packages and returns the
// diagnostics sorted by position. Rules run in registry order, each
// over every package, so later rules can consume facts exported by
// earlier ones. Unused //lint:allow entries are reported under the
// pseudo-rule "allow"; allows living in build-tag-excluded files (e.g.
// simdebug) are collected but exempt from staleness, since the code
// they suppress is not part of the lint build.
func Run(l *Loader, pkgs []*Package, cfg *Config) []Diagnostic {
	st := &runState{facts: NewFacts()}
	for _, pkg := range pkgs {
		collectAllows(l.Fset, l.Source, pkg, &st.allows)
	}
	for _, r := range Rules() {
		for _, pkg := range pkgs {
			if !r.Scope(cfg, pkg) {
				continue
			}
			r.Check(&Ctx{Cfg: cfg, Pkg: pkg, All: pkgs, fset: l.Fset, src: l.Source, rule: r.Name, out: st})
		}
	}
	for _, a := range st.allows.entries {
		if !a.used && !a.tagged {
			st.diags = append(st.diags, Diagnostic{
				Pos:  a.pos,
				Rule: "allow",
				Msg:  fmt.Sprintf("//lint:allow %s never matched a diagnostic; remove it", a.rule),
			})
		}
	}
	sort.Slice(st.diags, func(i, j int) bool {
		a, b := st.diags[i], st.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return st.diags
}

// ---- shared type helpers ----

// callee resolves the *types.Func a call invokes (nil for conversions,
// builtins and indirect calls through variables).
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is one of the named functions (or
// methods) declared in the package with the given import path.
func isPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// recvNamed returns the name of fn's receiver type ("" for plain
// functions), unwrapping the pointer.
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// shortType renders a type with bare package names (no import paths),
// keeping diagnostics readable.
func shortType(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// unitsDim classifies a type into a units dimension: "time" (Time,
// Duration), "bytes" (ByteSize) or "rate" (BitRate); "" otherwise.
func unitsDim(t types.Type, unitsPath string) string {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != unitsPath {
		return ""
	}
	switch n.Obj().Name() {
	case "Time", "Duration":
		return "time"
	case "ByteSize":
		return "bytes"
	case "BitRate":
		return "rate"
	}
	return ""
}
