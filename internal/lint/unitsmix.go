package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkUnitsMix enforces units hygiene outside internal/units itself.
// The typed units (Time/Duration, ByteSize, BitRate) exist so that the
// compiler rejects dimensionally nonsense arithmetic; stripping them
// with int64()/float64() conversions and combining different
// dimensions raw recreates exactly the bug class they prevent (and
// usually also reintroduces rounding drift that TxTime/BytesOver/Rate
// handle exactly). Two shapes are flagged:
//
//   - a binary arithmetic expression whose two operands are both
//     conversions of units values of different dimensions, e.g.
//     float64(bytes) / float64(dur) — that is units.Rate's job;
//
//   - a direct cross-dimension conversion, e.g. units.ByteSize(rate).
//
// Same-dimension normalisation (float64(fct) / float64(ideal)) stays
// legal: it is how reporting code computes ratios.
func checkUnitsMix(c *Ctx) {
	info := c.Pkg.Info
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
				default:
					return true
				}
				ldim := convDim(c, n.X)
				rdim := convDim(c, n.Y)
				if ldim != "" && rdim != "" && ldim != rdim {
					c.Report(n.Pos(), "raw arithmetic mixes %s and %s stripped of their units; use the units helpers (TxTime/BytesOver/Rate) or keep the typed values", ldim, rdim)
				}
			case *ast.CallExpr:
				if len(n.Args) != 1 {
					return true
				}
				tv, ok := info.Types[n.Fun]
				if !ok || !tv.IsType() {
					return true
				}
				dst := unitsDim(tv.Type, c.Cfg.UnitsPath)
				if dst == "" {
					return true
				}
				argT, ok := info.Types[n.Args[0]]
				if !ok {
					return true
				}
				if src := unitsDim(argT.Type, c.Cfg.UnitsPath); src != "" && src != dst {
					c.Report(n.Pos(), "conversion from %s to %s changes units dimension without arithmetic; use the units helpers (TxTime/BytesOver/Rate)", src, dst)
				}
			}
			return true
		})
	}
}

// convDim classifies an operand: a conversion to a basic numeric type
// whose argument is a units value returns that value's dimension.
func convDim(c *Ctx, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return ""
	}
	tv, ok := c.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return ""
	}
	if _, ok := tv.Type.Underlying().(*types.Basic); !ok {
		return ""
	}
	argT, ok := c.Pkg.Info.Types[call.Args[0]]
	if !ok {
		return ""
	}
	return unitsDim(argT.Type, c.Cfg.UnitsPath)
}
