package trace_test

import (
	"strings"
	"testing"

	"floodgate/internal/cc"
	"floodgate/internal/device"
	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/trace"
	"floodgate/internal/units"
)

func TestRingRetention(t *testing.T) {
	b := trace.NewBuffer(4, trace.Filter{})
	for i := 0; i < 10; i++ {
		b.Record(trace.Event{At: units.Time(i), Flow: packet.FlowID(i)})
	}
	evs := b.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.At != units.Time(6+i) {
			t.Fatalf("expected newest 4 in order, got %v", evs)
		}
	}
	if b.Total() != 10 {
		t.Fatalf("total = %d", b.Total())
	}
}

func TestPartialRing(t *testing.T) {
	b := trace.NewBuffer(8, trace.Filter{})
	b.Record(trace.Event{At: 1})
	b.Record(trace.Event{At: 2})
	evs := b.Events()
	if len(evs) != 2 || evs[0].At != 1 || evs[1].At != 2 {
		t.Fatalf("events = %v", evs)
	}
}

func TestFilters(t *testing.T) {
	b := trace.NewBuffer(16, trace.Filter{Flow: 7, Ops: map[trace.Op]bool{trace.OpDrop: true}})
	b.Record(trace.Event{Flow: 7, Op: trace.OpDrop})
	b.Record(trace.Event{Flow: 7, Op: trace.OpSend}) // wrong op
	b.Record(trace.Event{Flow: 8, Op: trace.OpDrop}) // wrong flow
	if b.Total() != 1 {
		t.Fatalf("filter matched %d, want 1", b.Total())
	}
}

func TestNilBufferSafe(t *testing.T) {
	var b *trace.Buffer
	b.Record(trace.Event{}) // must not panic
}

func TestFlowHistoryAndDump(t *testing.T) {
	b := trace.NewBuffer(16, trace.Filter{})
	b.Record(trace.Event{Flow: 1, Op: trace.OpSend})
	b.Record(trace.Event{Flow: 2, Op: trace.OpSend})
	b.Record(trace.Event{Flow: 1, Op: trace.OpDeliver})
	h := b.FlowHistory(1)
	if len(h) != 2 || h[0].Op != trace.OpSend || h[1].Op != trace.OpDeliver {
		t.Fatalf("history = %v", h)
	}
	if !strings.Contains(b.Dump(), "SEND") {
		t.Fatal("dump missing op name")
	}
}

// TestEndToEndLifecycle traces a real flow through the simulator and
// checks the canonical lifecycle order.
func TestEndToEndLifecycle(t *testing.T) {
	tp := topo.LeafSpineConfig{
		Spines: 1, ToRs: 2, HostsPerToR: 1,
		HostRate: 10 * units.Gbps, SpineRate: 40 * units.Gbps,
		Prop: 600 * units.Nanosecond,
	}.Build()
	buf := trace.NewBuffer(1024, trace.Filter{})
	n := device.New(device.Config{
		Topo: tp, Engine: sim.NewEngine(),
		Stats: stats.NewCollector(10 * units.Microsecond),
		Seed:  1,
		CC:    cc.NewFixedWindow(),
		Trace: buf,
	})
	f := n.AddFlow(tp.Hosts[0], tp.Hosts[1], 3000, 0, packet.CatIncast)
	n.Run(units.Time(5 * units.Millisecond))
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	evs := buf.FlowHistory(f.ID)
	if len(evs) == 0 {
		t.Fatal("no events traced")
	}
	// First event must be the host SEND, last the destination DLVR, and
	// every segment passes ENQ/TX at switches in between.
	if evs[0].Op != trace.OpSend {
		t.Fatalf("first op = %v", evs[0].Op)
	}
	last := evs[len(evs)-1]
	if last.Op != trace.OpDeliver || last.Node != tp.Hosts[1] {
		t.Fatalf("last event = %+v", last)
	}
	var sends, enqs, txs, dlvrs int
	for i, e := range evs {
		if i > 0 && e.At < evs[i-1].At {
			t.Fatal("events out of chronological order")
		}
		switch e.Op {
		case trace.OpSend:
			sends++
		case trace.OpEnqueue:
			enqs++
		case trace.OpTx:
			txs++
		case trace.OpDeliver:
			dlvrs++
		}
	}
	// 3000B = 3 segments; 3 hops of switching (tor, spine, tor).
	if sends != 3 || dlvrs != 3 {
		t.Fatalf("sends=%d dlvrs=%d, want 3 each", sends, dlvrs)
	}
	if enqs != 9 || txs != 9 {
		t.Fatalf("enqs=%d txs=%d, want 9 each (3 segments x 3 switches)", enqs, txs)
	}
}

// TestParkTraced checks Floodgate VOQ parking shows in the trace.
func TestOpNames(t *testing.T) {
	for op := trace.OpSend; op <= trace.OpUnpark; op++ {
		if op.String() == "" || strings.HasPrefix(op.String(), "op(") {
			t.Fatalf("op %d has no name", op)
		}
	}
	if trace.OpRetx.String() != "RETX" || trace.OpRTO.String() != "RTO" {
		t.Fatalf("retransmission op names: %q %q", trace.OpRetx, trace.OpRTO)
	}
	if trace.OpUnpark.String() != "UNPARK" {
		t.Fatalf("unpark op name: %q", trace.OpUnpark)
	}
}

func TestNodeFilter(t *testing.T) {
	b := trace.NewBuffer(16, trace.Filter{Node: 3})
	b.Record(trace.Event{Node: 3, Op: trace.OpSend})
	b.Record(trace.Event{Node: 4, Op: trace.OpSend}) // wrong node
	b.Record(trace.Event{Node: 3, Op: trace.OpDrop})
	if b.Total() != 2 {
		t.Fatalf("node filter matched %d, want 2", b.Total())
	}
	for _, e := range b.Events() {
		if e.Node != 3 {
			t.Fatalf("retained event from node %d", e.Node)
		}
	}
}

func TestKindFilter(t *testing.T) {
	// packet.Data is Kind 0, so the filter must be a set: a scalar field
	// could never distinguish "only data" from "any kind".
	b := trace.NewBuffer(16, trace.Filter{Kinds: map[packet.Kind]bool{packet.Data: true}})
	b.Record(trace.Event{Kind: packet.Data, Flow: 1})
	b.Record(trace.Event{Kind: packet.Credit, Flow: 2})
	b.Record(trace.Event{Kind: packet.Ack, Flow: 3})
	b.Record(trace.Event{Kind: packet.Data, Flow: 4})
	if b.Total() != 2 {
		t.Fatalf("kind filter matched %d, want 2", b.Total())
	}
	for _, e := range b.Events() {
		if e.Kind != packet.Data {
			t.Fatalf("retained %v event", e.Kind)
		}
	}
	// Combined node + kind filtering.
	c := trace.NewBuffer(16, trace.Filter{Node: 5, Kinds: map[packet.Kind]bool{packet.Credit: true}})
	c.Record(trace.Event{Node: 5, Kind: packet.Credit})
	c.Record(trace.Event{Node: 5, Kind: packet.Data})
	c.Record(trace.Event{Node: 6, Kind: packet.Credit})
	if c.Total() != 1 {
		t.Fatalf("combined filter matched %d, want 1", c.Total())
	}
}

// TestFilterComposition pins that every populated Filter field must
// match (conjunction): node + kind + op together select exactly the
// events satisfying all three, and an event failing any single
// dimension is rejected.
func TestFilterComposition(t *testing.T) {
	f := trace.Filter{
		Node:  5,
		Ops:   map[trace.Op]bool{trace.OpCredit: true, trace.OpUnpark: true},
		Kinds: map[packet.Kind]bool{packet.Data: true, packet.Credit: true},
	}
	b := trace.NewBuffer(16, f)
	b.Record(trace.Event{Node: 5, Op: trace.OpCredit, Kind: packet.Credit}) // all match
	b.Record(trace.Event{Node: 5, Op: trace.OpUnpark, Kind: packet.Data})   // all match
	b.Record(trace.Event{Node: 6, Op: trace.OpCredit, Kind: packet.Credit}) // wrong node
	b.Record(trace.Event{Node: 5, Op: trace.OpSend, Kind: packet.Data})     // wrong op
	b.Record(trace.Event{Node: 5, Op: trace.OpUnpark, Kind: packet.Ack})    // wrong kind
	if b.Total() != 2 {
		t.Fatalf("composed filter matched %d, want 2", b.Total())
	}
	for _, e := range b.Events() {
		if e.Node != 5 || !f.Ops[e.Op] || !f.Kinds[e.Kind] {
			t.Fatalf("retained non-matching event %v", e)
		}
	}
}
