// Package trace is the simulator's flight recorder: a bounded ring of
// packet-lifecycle events (send, enqueue, park, transmit, deliver,
// drop, credit, pause) that costs one predicate call when disabled and
// no allocation when enabled. Filters select by flow, node or kind, so
// a single stuck flow in a multi-million-event run can be replayed in
// order — the tooling a production simulator needs and NS-3 users get
// from ascii traces.
package trace

import (
	"fmt"
	"strings"

	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// Op is a lifecycle point.
type Op uint8

// Lifecycle points.
const (
	OpSend    Op = iota // host NIC serialises a packet
	OpEnqueue           // switch egress queue accepts a packet
	OpPark              // flow-control module parks a packet (VOQ)
	OpTx                // switch egress transmits a packet
	OpDeliver           // destination host consumes a packet
	OpDrop              // packet dropped (overflow or injected loss)
	OpCredit            // Floodgate credit emitted
	OpPause             // pause frame emitted (PFC/BFC/dst/tag)
	OpResume            // resume frame emitted
	OpRetx              // go-back-N or NDP segment retransmission
	OpRTO               // retransmission timeout fired (sender rewound)
	OpUnpark            // flow-control module released a parked packet (credit arrived)

	// Application-plane lifecycle points (closed-loop RPC layer). The
	// event's Flow is the launched attempt's flow; Seq carries the
	// attempt number so retry amplification is causally attributable.
	OpAppReq     // request attempt launched (attempt 1 = the original)
	OpAppRetry   // timeout-driven retry attempt launched
	OpAppHedge   // hedged attempt launched (racing the original)
	OpAppTimeout // application deadline expired on a pending request
	OpAppDone    // request resolved (quorum reached or given up)
	nOps
)

var opNames = [nOps]string{"SEND", "ENQ", "PARK", "TX", "DLVR", "DROP", "CREDIT", "PAUSE", "RESUME", "RETX", "RTO", "UNPARK",
	"APPREQ", "APPRETRY", "APPHEDGE", "APPTOUT", "APPDONE"}

func (o Op) String() string {
	if o < nOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Event is one recorded lifecycle point.
type Event struct {
	At   units.Time
	Op   Op
	Node packet.NodeID // where it happened
	Kind packet.Kind
	Flow packet.FlowID
	Seq  units.ByteSize
	Size units.ByteSize
	Dst  packet.NodeID
	// Aux carries an op-specific counterpart node: for OpCredit the
	// credited flow destination, for OpUnpark the upstream switch the
	// releasing credit came from. Zero otherwise. The Perfetto exporter
	// uses it to draw cause→effect flow arrows (credit → unpark).
	Aux packet.NodeID
}

func (e Event) String() string {
	return fmt.Sprintf("%-12v %-6s node=%-4d %-10v flow=%-6d seq=%-8d dst=%-4d size=%d",
		e.At, e.Op, e.Node, e.Kind, e.Flow, e.Seq, e.Dst, e.Size)
}

// Filter selects which events are recorded. Zero fields match all.
type Filter struct {
	Flow  packet.FlowID        // 0 = any
	Node  packet.NodeID        // 0 = any (node 0 is always a switch/spine; use -1 for none)
	Ops   map[Op]bool          // nil = any
	Kinds map[packet.Kind]bool // nil = any (packet.Data is Kind 0, so a set, not a scalar)
}

func (f Filter) match(e Event) bool {
	if f.Flow != 0 && e.Flow != f.Flow {
		return false
	}
	if f.Node != 0 && e.Node != f.Node {
		return false
	}
	if f.Ops != nil && !f.Ops[e.Op] {
		return false
	}
	if f.Kinds != nil && !f.Kinds[e.Kind] {
		return false
	}
	return true
}

// Buffer is a fixed-capacity ring of events.
type Buffer struct {
	filter Filter
	ring   []Event
	next   int
	full   bool
	total  uint64
}

// NewBuffer returns a ring holding the most recent cap matching events.
func NewBuffer(capacity int, filter Filter) *Buffer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Buffer{filter: filter, ring: make([]Event, capacity)}
}

// Record appends an event if it matches the filter.
func (b *Buffer) Record(e Event) {
	if b == nil || !b.filter.match(e) {
		return
	}
	b.total++
	b.ring[b.next] = e
	b.next++
	if b.next == len(b.ring) {
		b.next = 0
		b.full = true
	}
}

// Total reports how many events matched over the run (recorded or
// since evicted).
func (b *Buffer) Total() uint64 { return b.total }

// Events returns the retained events in chronological order.
func (b *Buffer) Events() []Event {
	if !b.full {
		out := make([]Event, b.next)
		copy(out, b.ring[:b.next])
		return out
	}
	out := make([]Event, 0, len(b.ring))
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	return out
}

// Dump renders the retained events, one per line.
func (b *Buffer) Dump() string {
	var sb strings.Builder
	for _, e := range b.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FlowHistory extracts one flow's events from the retained window.
func (b *Buffer) FlowHistory(id packet.FlowID) []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Flow == id {
			out = append(out, e)
		}
	}
	return out
}

// Of builds an event from a packet at a lifecycle point (helper for
// call sites).
func Of(at units.Time, op Op, node packet.NodeID, p *packet.Packet) Event {
	return Event{
		At: at, Op: op, Node: node,
		Kind: p.Kind, Flow: p.Flow, Seq: p.Seq, Size: p.Size, Dst: p.Dst,
	}
}
