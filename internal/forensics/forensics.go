// Package forensics is the simulator's causal tracing layer: it
// attributes each flow's completion time to typed wait states — where
// the time actually went — and detects per-switch incast episodes
// (window-exhaustion intervals with victim flows and peak parked
// bytes). The devices call the Recorder's hooks behind a single
// nil-check, so a disabled recorder costs one load-and-branch per hook
// site and allocates nothing; an enabled one is a plain per-flow
// accumulator array, no maps on the per-packet paths.
//
// The attribution model is a partition of a flow's lifetime:
//
//   - Sender-side states tile [Start, last send]: a flow is always in
//     exactly one of sendable (NIC arbitration + serialization),
//     paced, window-limited, paused (PFC or per-dst/per-flow pause),
//     or net (in flight, waiting on ACKs). Closed net intervals are
//     wasted journeys that ended in a retransmission (CompRTO); the
//     final open one is the delivery tail covered below.
//   - The final data segment's journey tiles [last send, Finish]:
//     per-hop egress queueing split into PFC-paused overlap and true
//     queueing, per-hop switch serialization, VOQ-parked time split
//     into credit-in-flight and window wait, and a non-negative
//     residual (CompWire) covering propagation and host-NIC
//     serialization.
//
// In a loss-free run the components therefore sum exactly to the FCT;
// with drops the clamped residual makes the sum an upper-bounded
// approximation. Everything is integer picoseconds, so reports are
// bit-identical across shard counts, schedulers and parallelism.
package forensics

import (
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// Comp is one component of a flow's completion-time budget.
type Comp uint8

// Budget components. CompWire is computed at report time as the
// non-negative residual FCT - sum(others); the rest accumulate online.
const (
	CompSerialization Comp = iota // NIC arbitration + per-hop switch serialization
	CompPacing                    // sender rate-limit (CC pacing timer)
	CompWindow                    // sender window/pull exhausted, waiting for ACKs
	CompHostPause                 // host NIC paused (PFC, per-dst, per-flow)
	CompQueue                     // switch egress FIFO wait (excluding PFC overlap)
	CompPFC                       // switch egress blocked by PFC while queued
	CompVOQ                       // parked in a Floodgate VOQ awaiting window
	CompCredit                    // parked with the releasing credit already in flight
	CompRTO                       // in-flight time wasted by a retransmission/RTO
	CompWire                      // residual: propagation + host NIC serialization
	NumComps
)

var compNames = [NumComps]string{
	"serialization", "pacing", "window", "host_pause", "queue",
	"pfc", "voq", "credit", "rto", "wire",
}

func (c Comp) String() string {
	if c < NumComps {
		return compNames[c]
	}
	return "comp(?)"
}

// SendState is the sender-side wait state of a flow. The states
// partition a flow's pre-delivery lifetime; every transition closes
// the previous interval into the component it maps to.
type SendState uint8

// Sender states.
const (
	SendIdle     SendState = iota // not started; interval discarded
	SendSendable                  // in the NIC send queue (arbitration/serialization)
	SendPaced                     // blocked on the CC pacing timer
	SendWindow                    // blocked on window or NDP pull credit
	SendPaused                    // blocked by a pause (per-dst, per-flow)
	SendNet                       // nothing to send; waiting on the network
)

// flowAcc is one flow's accumulator. comp entries for sender states
// are written only by the source host's shard; hop and VOQ entries
// only by the shard owning the switch — so cross-shard merge is a
// plain element-wise sum.
type flowAcc struct {
	comp       [NumComps]units.Duration
	parked     units.Duration // total parked time, all segments
	since      units.Time     // start of the open sender-state interval
	pauseStamp units.Duration // host pause-cum at interval start
	state      SendState
}

// Episode is one window-exhaustion interval at a switch: from the
// instant a destination's window first exhausted (VOQ allocated) to
// the instant its VOQ drained empty. End stays zero for episodes still
// open when the run stops.
type Episode struct {
	Switch     packet.NodeID
	Dst        packet.NodeID
	Start      units.Time
	End        units.Time
	PeakParked units.ByteSize  // peak parked bytes for Dst during the episode
	Victims    []packet.FlowID // flows that had a packet parked (sorted by BuildReport)

	victimSet map[packet.FlowID]struct{}
}

// Open reports whether the episode was still in progress at run end.
func (e *Episode) Open() bool { return e.End == 0 }

type epKey struct{ sw, dst packet.NodeID }

// Recorder accumulates forensic state for one shard. Hooks must be
// called behind a caller-side nil check (the zero-cost disabled path);
// methods assume a non-nil receiver.
type Recorder struct {
	flows    []flowAcc // indexed by FlowID (0 unused)
	episodes []Episode
	open     map[epKey]int // (switch, dst) -> open episode index
}

// NewRecorder returns an empty per-shard recorder.
func NewRecorder() *Recorder {
	return &Recorder{flows: make([]flowAcc, 1), open: make(map[epKey]int)}
}

// Sibling mints an independent recorder for another shard of the same
// run; BuildReport merges them deterministically.
func (r *Recorder) Sibling() *Recorder { return NewRecorder() }

// Seal pre-sizes the flow table to n entries so steady-state hooks
// never grow it (call once, after the run's flows are registered).
func (r *Recorder) Seal(n int) { r.growFlows(n) }

func (r *Recorder) growFlows(n int) {
	if n <= len(r.flows) {
		return
	}
	if cap(r.flows) >= n {
		r.flows = r.flows[:n]
		return
	}
	c := 2 * cap(r.flows)
	if c < n {
		c = n
	}
	nf := make([]flowAcc, n, c)
	copy(nf, r.flows)
	r.flows = nf
}

func (r *Recorder) acc(id packet.FlowID) *flowAcc {
	if int(id) >= len(r.flows) {
		r.growFlows(int(id) + 1)
	}
	return &r.flows[id]
}

// FlowState records a sender wait-state transition at now. pauseCum is
// the host's cumulative PFC-paused duration at now; the overlap of a
// sendable interval with host PFC pauses is re-attributed from
// serialization to CompHostPause (the NIC was stopped, not busy).
func (r *Recorder) FlowState(id packet.FlowID, st SendState, now units.Time, pauseCum units.Duration) {
	a := r.acc(id)
	if a.state == st {
		return
	}
	d := now.Sub(a.since)
	switch a.state {
	case SendSendable:
		ov := pauseCum - a.pauseStamp
		if ov < 0 {
			ov = 0
		}
		if ov > d {
			ov = d
		}
		a.comp[CompSerialization] += d - ov
		a.comp[CompHostPause] += ov
	case SendPaced:
		a.comp[CompPacing] += d
	case SendWindow:
		a.comp[CompWindow] += d
	case SendPaused:
		a.comp[CompHostPause] += d
	case SendNet:
		// A closed net interval means the sender had to come back for
		// this data: the journey it was waiting on ended in a
		// retransmission. The final (open) net interval is the delivery
		// tail and is intentionally never closed.
		a.comp[CompRTO] += d
	}
	a.state = st
	a.since = now
	a.pauseStamp = pauseCum
}

// Hop records the final data segment's dequeue at one switch egress:
// wait is the full FIFO residence time, pfc the portion during which
// the egress was PFC-paused (clamped into [0, wait]), tx the switch's
// serialization time for the segment.
func (r *Recorder) Hop(id packet.FlowID, wait, pfc, tx units.Duration) {
	a := r.acc(id)
	if pfc < 0 {
		pfc = 0
	}
	if pfc > wait {
		pfc = wait
	}
	a.comp[CompQueue] += wait - pfc
	a.comp[CompPFC] += pfc
	a.comp[CompSerialization] += tx
}

// Parked records a packet entering a VOQ: episode victim/peak updates.
// parkedBytes is the destination's parked total after the park.
func (r *Recorder) Parked(sw, dst packet.NodeID, flow packet.FlowID, parkedBytes units.ByteSize) {
	i, ok := r.open[epKey{sw, dst}]
	if !ok {
		return
	}
	ep := &r.episodes[i]
	if parkedBytes > ep.PeakParked {
		ep.PeakParked = parkedBytes
	}
	if ep.victimSet == nil {
		ep.victimSet = make(map[packet.FlowID]struct{})
	}
	if _, seen := ep.victimSet[flow]; !seen {
		ep.victimSet[flow] = struct{}{}
		ep.Victims = append(ep.Victims, flow)
	}
}

// Unparked records a packet leaving a VOQ after parkedFor. flight is
// the age of the credit that released it (clamped into [0, parkedFor]:
// the packet cannot have waited on a credit sent before it parked).
// Only the flow's final segment contributes to the budget split; all
// segments contribute to the total parked time.
func (r *Recorder) Unparked(id packet.FlowID, last bool, parkedFor, flight units.Duration) {
	a := r.acc(id)
	a.parked += parkedFor
	if !last {
		return
	}
	if flight < 0 {
		flight = 0
	}
	if flight > parkedFor {
		flight = parkedFor
	}
	a.comp[CompVOQ] += parkedFor - flight
	a.comp[CompCredit] += flight
}

// EpisodeStart opens a window-exhaustion episode for (switch, dst); a
// no-op if one is already open.
func (r *Recorder) EpisodeStart(sw, dst packet.NodeID, now units.Time) {
	k := epKey{sw, dst}
	if _, ok := r.open[k]; ok {
		return
	}
	r.open[k] = len(r.episodes)
	r.episodes = append(r.episodes, Episode{Switch: sw, Dst: dst, Start: now})
}

// EpisodeEnd closes the open episode for (switch, dst), if any.
func (r *Recorder) EpisodeEnd(sw, dst packet.NodeID, now units.Time) {
	k := epKey{sw, dst}
	if i, ok := r.open[k]; ok {
		r.episodes[i].End = now
		delete(r.open, k)
	}
}

// EpisodeEndAll closes every open episode at one switch (restart: the
// VOQ state died). Walks the episode slice, not the open map, so the
// closing order is append order — deterministic.
func (r *Recorder) EpisodeEndAll(sw packet.NodeID, now units.Time) {
	for i := range r.episodes {
		ep := &r.episodes[i]
		if ep.Switch != sw {
			continue
		}
		k := epKey{ep.Switch, ep.Dst}
		if j, ok := r.open[k]; ok && j == i {
			ep.End = now
			delete(r.open, k)
		}
	}
}
