package forensics

import (
	"strings"
	"testing"

	"floodgate/internal/units"
)

const us = units.Duration(units.Microsecond)

func tm(n int64) units.Time { return units.Time(units.Duration(n) * us) }

// TestFlowStateTiling pins the sender-state machine: intervals close on
// transition into the component of the state being left, same-state
// calls are no-ops, and host-pause overlap is carved out of sendable
// time using the pause accumulator.
func TestFlowStateTiling(t *testing.T) {
	r := NewRecorder()
	r.Seal(2)
	// Sendable [0,4), then window-limited [4,10), then sendable again
	// [10,12), done (open net interval, never closed).
	r.FlowState(1, SendSendable, tm(0), 0)
	r.FlowState(1, SendSendable, tm(2), 0) // same-state no-op
	r.FlowState(1, SendWindow, tm(4), 0)
	r.FlowState(1, SendSendable, tm(10), 0)
	r.FlowState(1, SendNet, tm(12), 0)
	a := r.acc(1)
	if got := a.comp[CompSerialization]; got != 6*us {
		t.Errorf("serialization = %v, want 6us", got)
	}
	if got := a.comp[CompWindow]; got != 6*us {
		t.Errorf("window = %v, want 6us", got)
	}
	if got := a.comp[CompRTO]; got != 0 {
		t.Errorf("open net interval attributed: rto = %v", got)
	}
}

// TestFlowStatePauseOverlap: PFC pause time accrued while nominally
// sendable is reattributed from serialization to host_pause via the
// cumulative pause clock.
func TestFlowStatePauseOverlap(t *testing.T) {
	r := NewRecorder()
	r.Seal(2)
	// Sendable [0,10) during which the egress port was paused 3us.
	r.FlowState(1, SendSendable, tm(0), 0)
	r.FlowState(1, SendNet, tm(10), 3*us)
	a := r.acc(1)
	if a.comp[CompSerialization] != 7*us || a.comp[CompHostPause] != 3*us {
		t.Errorf("serialization/pause = %v/%v, want 7us/3us", a.comp[CompSerialization], a.comp[CompHostPause])
	}
	// Overlap clamps to the interval length even if the pause clock
	// advanced more (stale stamp).
	r.FlowState(1, SendSendable, tm(10), 0)
	r.FlowState(1, SendNet, tm(12), 99*us)
	if a.comp[CompHostPause] != 5*us || a.comp[CompSerialization] != 7*us {
		t.Errorf("clamped pause = %v serialization = %v, want 5us/7us", a.comp[CompHostPause], a.comp[CompSerialization])
	}
}

// TestFlowStateRtxWaste: a closed net interval means the flow went
// back to sending after it thought it was done — retransmission waste.
func TestFlowStateRtxWaste(t *testing.T) {
	r := NewRecorder()
	r.Seal(2)
	r.FlowState(1, SendNet, tm(0), 0)
	r.FlowState(1, SendSendable, tm(5), 0) // RTO rewound the sender
	a := r.acc(1)
	if a.comp[CompRTO] != 5*us {
		t.Errorf("rto = %v, want 5us", a.comp[CompRTO])
	}
}

// TestHopSplitsPFC pins the per-hop split: PFC-paused time comes out
// of the wait, clamped to it, and transmit time lands in
// serialization.
func TestHopSplitsPFC(t *testing.T) {
	r := NewRecorder()
	r.Seal(2)
	r.Hop(1, 10*us, 4*us, us)
	a := r.acc(1)
	if a.comp[CompQueue] != 6*us || a.comp[CompPFC] != 4*us || a.comp[CompSerialization] != us {
		t.Errorf("queue/pfc/ser = %v/%v/%v", a.comp[CompQueue], a.comp[CompPFC], a.comp[CompSerialization])
	}
	// Clamp: pause beyond the wait attributes the whole wait to PFC.
	r.Hop(1, 2*us, 50*us, 0)
	if a.comp[CompPFC] != 6*us || a.comp[CompQueue] != 6*us {
		t.Errorf("clamped pfc/queue = %v/%v, want 6us/6us", a.comp[CompPFC], a.comp[CompQueue])
	}
}

// TestUnparkedSplit: only the flow's last segment feeds the budget
// (VOQ wait minus credit flight), but parked time accumulates for
// every segment.
func TestUnparkedSplit(t *testing.T) {
	r := NewRecorder()
	r.Seal(2)
	r.Unparked(1, false, 10*us, 3*us) // mid-flow segment: parked only
	r.Unparked(1, true, 8*us, 2*us)   // final segment: voq 6, credit 2
	a := r.acc(1)
	if a.parked != 18*us {
		t.Errorf("parked = %v, want 18us", a.parked)
	}
	if a.comp[CompVOQ] != 6*us || a.comp[CompCredit] != 2*us {
		t.Errorf("voq/credit = %v/%v, want 6us/2us", a.comp[CompVOQ], a.comp[CompCredit])
	}
	// Credit flight clamps to the parked interval.
	r.Unparked(1, true, 4*us, 99*us)
	if a.comp[CompCredit] != 6*us || a.comp[CompVOQ] != 6*us {
		t.Errorf("clamped credit/voq = %v/%v, want 6us/6us", a.comp[CompCredit], a.comp[CompVOQ])
	}
}

// TestEpisodeLifecycle pins open/park/close: peak bytes and the
// deduplicated victim list accumulate while open; EndAll closes every
// episode at one switch (restart path) without map iteration order
// leaking into the result.
func TestEpisodeLifecycle(t *testing.T) {
	r := NewRecorder()
	r.Seal(4)
	r.EpisodeStart(7, 100, tm(1))
	r.EpisodeStart(7, 100, tm(2)) // already open: no-op
	r.Parked(7, 100, 1, 3000)
	r.Parked(7, 100, 2, 5000)
	r.Parked(7, 100, 1, 4000) // dup victim, higher peak
	r.EpisodeEnd(7, 100, tm(9))
	r.EpisodeEnd(7, 100, tm(11)) // already closed: no-op
	if len(r.episodes) != 1 {
		t.Fatalf("episodes = %d, want 1", len(r.episodes))
	}
	ep := r.episodes[0]
	if ep.Start != tm(1) || ep.End != tm(9) {
		t.Errorf("episode interval [%v, %v], want [1us, 9us]", ep.Start, ep.End)
	}
	if ep.PeakParked != 5000 {
		t.Errorf("peak parked = %d, want 5000", ep.PeakParked)
	}
	if len(ep.Victims) != 2 {
		t.Errorf("victims = %v, want exactly flows 1 and 2", ep.Victims)
	}

	// EndAll closes only the named switch's open episodes.
	r.EpisodeStart(7, 200, tm(20))
	r.EpisodeStart(8, 200, tm(21))
	r.EpisodeEndAll(7, tm(30))
	var open7, open8 int
	for i := range r.episodes {
		if !r.episodes[i].Open() {
			continue
		}
		switch r.episodes[i].Switch {
		case 7:
			open7++
		case 8:
			open8++
		}
	}
	if open7 != 0 || open8 != 1 {
		t.Errorf("open episodes after EndAll(7): sw7=%d sw8=%d, want 0/1", open7, open8)
	}
}

// TestBuildReportMergesShards: per-flow accumulators sum element-wise
// across sibling recorders, episodes concatenate and sort by (Start,
// Switch, Dst, End) with sorted victims, and the wire residual closes
// each done flow's budget to exactly its FCT.
func TestBuildReportMergesShards(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	a.Seal(2)
	b.Seal(2)
	a.FlowState(1, SendSendable, tm(0), 0)
	a.FlowState(1, SendNet, tm(4), 0) // 4us serialization on shard a
	b.Hop(1, 3*us, us, us)            // queue 2, pfc 1, ser 1 on shard b
	b.Unparked(1, true, 2*us, us)     // voq 1, credit 1
	b.EpisodeStart(9, 50, tm(2))
	b.EpisodeEnd(9, 50, tm(6))
	a.EpisodeStart(3, 50, tm(2)) // same start, lower switch id: sorts first
	a.EpisodeEnd(3, 50, tm(7))

	metas := []FlowMeta{{ID: 1, Src: 10, Dst: 50, Size: 3000, Start: tm(0), Finish: tm(12), Done: true}}
	rep := BuildReport([]*Recorder{a, b}, metas)
	if len(rep.Flows) != 1 {
		t.Fatalf("flows = %d", len(rep.Flows))
	}
	fb := rep.Flows[0]
	if fb.FCT != 12*us {
		t.Fatalf("fct = %v", fb.FCT)
	}
	want := map[Comp]units.Duration{
		CompSerialization: 5 * us, CompQueue: 2 * us, CompPFC: us,
		CompVOQ: us, CompCredit: us, CompWire: 2 * us,
	}
	var sum units.Duration
	for c := Comp(0); c < NumComps; c++ {
		if fb.Comp[c] != want[c] {
			t.Errorf("%s = %v, want %v", c, fb.Comp[c], want[c])
		}
		sum += fb.Comp[c]
	}
	if sum != fb.FCT {
		t.Errorf("components sum to %v, FCT %v", sum, fb.FCT)
	}
	if len(rep.Episodes) != 2 || rep.Episodes[0].Switch != 3 || rep.Episodes[1].Switch != 9 {
		t.Errorf("episode merge order wrong: %+v", rep.Episodes)
	}
	if rep.TotalParked != 2*us {
		t.Errorf("total parked = %v, want 2us", rep.TotalParked)
	}
}

// TestQuantilesNearestRank pins the nearest-rank convention on a known
// population.
func TestQuantilesNearestRank(t *testing.T) {
	rep := &Report{}
	for i := 1; i <= 100; i++ {
		var fb FlowBudget
		fb.Done = true
		fb.Comp[CompQueue] = units.Duration(i) * us
		rep.Flows = append(rep.Flows, fb)
	}
	q := rep.ComponentQuantiles()
	if q[CompQueue].P50 != 50*us || q[CompQueue].P99 != 99*us {
		t.Errorf("p50/p99 = %v/%v, want 50us/99us", q[CompQueue].P50, q[CompQueue].P99)
	}
	if q[CompVOQ].P50 != 0 || q[CompVOQ].P99 != 0 {
		t.Errorf("untouched component quantiles non-zero: %+v", q[CompVOQ])
	}
}

// TestWriteNDJSONShape: integer-only JSON with one meta line, one line
// per flow and one per episode.
func TestWriteNDJSONShape(t *testing.T) {
	r := NewRecorder()
	r.Seal(2)
	r.FlowState(1, SendSendable, tm(0), 0)
	r.FlowState(1, SendNet, tm(4), 0)
	r.EpisodeStart(9, 50, tm(2))
	r.EpisodeEnd(9, 50, tm(6))
	rep := BuildReport([]*Recorder{r},
		[]FlowMeta{{ID: 1, Src: 10, Dst: 50, Size: 3000, Start: tm(0), Finish: tm(8), Done: true}})
	var b strings.Builder
	if err := rep.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (meta, flow, episode):\n%s", len(lines), b.String())
	}
	if !strings.Contains(lines[0], `"type":"meta"`) || !strings.Contains(lines[0], `"flows":1`) {
		t.Errorf("meta line: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"serialization_ps":4000000`) || !strings.Contains(lines[1], `"fct_ps":8000000`) {
		t.Errorf("flow line: %s", lines[1])
	}
	if !strings.Contains(lines[2], `"type":"episode"`) || !strings.Contains(lines[2], `"switch":9`) {
		t.Errorf("episode line: %s", lines[2])
	}
	if strings.ContainsAny(b.String(), "eE") && strings.Contains(b.String(), "e+") {
		t.Error("float formatting leaked into NDJSON")
	}
}

// TestSummaryEmptyAndMissing: the summary degrades gracefully with no
// completed flows, and a recorder that never saw a flow id contributes
// nothing.
func TestSummaryEmpty(t *testing.T) {
	rep := BuildReport([]*Recorder{NewRecorder()}, nil)
	s := rep.Summary()
	if !strings.Contains(s, "0 flows") {
		t.Errorf("empty summary: %q", s)
	}
}

// TestComponentNames: every component has a distinct lowercase name
// (they become NDJSON keys).
func TestComponentNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Comp(0); c < NumComps; c++ {
		n := c.String()
		if n == "" || strings.ToLower(n) != n || seen[n] {
			t.Errorf("component %d name %q invalid or duplicate", c, n)
		}
		seen[n] = true
	}
}
