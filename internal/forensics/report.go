package forensics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// FlowMeta is the identity of one flow, supplied by the experiment
// layer (the recorder itself never sees flow objects).
type FlowMeta struct {
	ID     packet.FlowID
	Src    packet.NodeID
	Dst    packet.NodeID
	Size   units.ByteSize
	Start  units.Time
	Finish units.Time
	Done   bool
	// Attempt is the application-plane attempt number (0 for open-loop
	// flows, 1 for original requests/responses, 2+ for retries and
	// hedges) — the causal tag retry-amplification analysis keys on.
	Attempt int
}

// FlowBudget is one flow's completion-time attribution.
type FlowBudget struct {
	FlowMeta
	Comp   [NumComps]units.Duration
	Parked units.Duration // total parked time over all segments
	FCT    units.Duration // Finish - Start; zero unless Done
}

// Report is the merged, deterministic forensic result of one run.
type Report struct {
	Flows       []FlowBudget // in FlowID order
	Episodes    []Episode    // sorted by (Start, Switch, Dst, End)
	TotalParked units.Duration
}

// BuildReport merges the per-shard recorders into one report. Each
// budget component of a flow is written by exactly one shard (sender
// states by the source host's shard, hop/VOQ stamps by the owning
// switch's shard) or accumulates additively, so the merge is an
// element-wise sum; episodes are concatenated and sorted by a total
// key. The result is therefore identical for any shard partition.
func BuildReport(recs []*Recorder, metas []FlowMeta) *Report {
	rep := &Report{Flows: make([]FlowBudget, 0, len(metas))}
	for _, meta := range metas {
		fb := FlowBudget{FlowMeta: meta}
		for _, r := range recs {
			if int(meta.ID) >= len(r.flows) {
				continue
			}
			a := &r.flows[meta.ID]
			for c := range fb.Comp {
				fb.Comp[c] += a.comp[c]
			}
			fb.Parked += a.parked
		}
		rep.TotalParked += fb.Parked
		if meta.Done {
			fb.FCT = meta.Finish.Sub(meta.Start)
			var sum units.Duration
			for c := CompSerialization; c < CompWire; c++ {
				sum += fb.Comp[c]
			}
			if wire := fb.FCT - sum; wire > 0 {
				fb.Comp[CompWire] = wire
			}
		}
		rep.Flows = append(rep.Flows, fb)
	}
	for _, r := range recs {
		for i := range r.episodes {
			ep := r.episodes[i]
			ep.Victims = append([]packet.FlowID(nil), ep.Victims...)
			sort.Slice(ep.Victims, func(a, b int) bool { return ep.Victims[a] < ep.Victims[b] })
			ep.victimSet = nil
			rep.Episodes = append(rep.Episodes, ep)
		}
	}
	eps := rep.Episodes
	sort.Slice(eps, func(a, b int) bool {
		if eps[a].Start != eps[b].Start {
			return eps[a].Start < eps[b].Start
		}
		if eps[a].Switch != eps[b].Switch {
			return eps[a].Switch < eps[b].Switch
		}
		if eps[a].Dst != eps[b].Dst {
			return eps[a].Dst < eps[b].Dst
		}
		return eps[a].End < eps[b].End
	})
	return rep
}

// WriteNDJSON renders the report as newline-delimited JSON: one meta
// line, one line per flow, one line per episode. All values are
// integers (picoseconds, bytes, ids) — no floats, so the bytes are
// identical across shard counts, schedulers and parallelism.
func (rep *Report) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `{"type":"meta","flows":%d,"episodes":%d,"total_parked_ps":%d}`+"\n",
		len(rep.Flows), len(rep.Episodes), int64(rep.TotalParked))
	for i := range rep.Flows {
		f := &rep.Flows[i]
		fmt.Fprintf(bw, `{"type":"flow","flow":%d,"src":%d,"dst":%d,"size":%d,"start_ps":%d,"finish_ps":%d,"done":%t,"attempt":%d,"fct_ps":%d`,
			f.ID, f.Src, f.Dst, int64(f.Size), int64(f.Start), int64(f.Finish), f.Done, f.Attempt, int64(f.FCT))
		for c := CompSerialization; c < NumComps; c++ {
			fmt.Fprintf(bw, `,"%s_ps":%d`, compNames[c], int64(f.Comp[c]))
		}
		fmt.Fprintf(bw, `,"parked_ps":%d}`+"\n", int64(f.Parked))
	}
	for i := range rep.Episodes {
		ep := &rep.Episodes[i]
		fmt.Fprintf(bw, `{"type":"episode","switch":%d,"dst":%d,"start_ps":%d,"end_ps":%d,"open":%t,"peak_parked_bytes":%d,"victims":[`,
			ep.Switch, ep.Dst, int64(ep.Start), int64(ep.End), ep.Open(), int64(ep.PeakParked))
		for j, v := range ep.Victims {
			if j > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "%d", v)
		}
		bw.WriteString("]}\n")
	}
	return bw.Flush()
}

// Quantile is a pair of nearest-rank quantiles.
type Quantile struct{ P50, P99 units.Duration }

// ComponentQuantiles returns per-component nearest-rank p50/p99 over
// the completed flows.
func (rep *Report) ComponentQuantiles() [NumComps]Quantile {
	var out [NumComps]Quantile
	var vals []units.Duration
	for c := CompSerialization; c < NumComps; c++ {
		vals = vals[:0]
		for i := range rep.Flows {
			if rep.Flows[i].Done {
				vals = append(vals, rep.Flows[i].Comp[c])
			}
		}
		if len(vals) == 0 {
			continue
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		out[c] = Quantile{P50: rank(vals, 50), P99: rank(vals, 99)}
	}
	return out
}

// rank is the nearest-rank percentile of sorted values.
func rank(sorted []units.Duration, pct int) units.Duration {
	idx := (pct*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}

// Summary renders the human-readable "why was p99 slow" digest: the
// p99-FCT flow's budget with percentage shares, plus episode totals.
func (rep *Report) Summary() string {
	var sb strings.Builder
	done := 0
	for i := range rep.Flows {
		if rep.Flows[i].Done {
			done++
		}
	}
	fmt.Fprintf(&sb, "forensics: %d flows (%d done), %d incast episodes, total parked %v\n",
		len(rep.Flows), done, len(rep.Episodes), rep.TotalParked)
	if done == 0 {
		sb.WriteString("no completed flows: nothing to attribute\n")
		return sb.String()
	}
	// p99 by (FCT, ID): the deterministic tie-break keeps the chosen
	// flow identical across executions.
	idx := make([]int, 0, done)
	for i := range rep.Flows {
		if rep.Flows[i].Done {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		fa, fb := &rep.Flows[idx[a]], &rep.Flows[idx[b]]
		if fa.FCT != fb.FCT {
			return fa.FCT < fb.FCT
		}
		return fa.ID < fb.ID
	})
	r := (99*len(idx) + 99) / 100
	if r < 1 {
		r = 1
	}
	p99 := &rep.Flows[idx[r-1]]
	fmt.Fprintf(&sb, "p99 flow %d (%d -> %d, %v): FCT %v\n", p99.ID, p99.Src, p99.Dst, p99.Size, p99.FCT)
	// Components in descending share, stable by component order.
	order := make([]Comp, 0, NumComps)
	for c := CompSerialization; c < NumComps; c++ {
		if p99.Comp[c] > 0 {
			order = append(order, c)
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return p99.Comp[order[a]] > p99.Comp[order[b]] })
	for _, c := range order {
		pct10 := int64(0)
		if p99.FCT > 0 {
			pct10 = int64(p99.Comp[c]) * 1000 / int64(p99.FCT)
		}
		fmt.Fprintf(&sb, "  %-14s %12v  %3d.%d%%\n", c, p99.Comp[c], pct10/10, pct10%10)
	}
	if len(rep.Episodes) > 0 {
		var peak units.ByteSize
		var longest units.Duration
		li := 0
		for i := range rep.Episodes {
			ep := &rep.Episodes[i]
			if ep.PeakParked > peak {
				peak = ep.PeakParked
			}
			if !ep.Open() {
				if d := ep.End.Sub(ep.Start); d > longest {
					longest = d
					li = i
				}
			}
		}
		ep := &rep.Episodes[li]
		fmt.Fprintf(&sb, "episodes: peak parked %v; longest %v at switch %d (dst %d, %d victims)\n",
			peak, longest, ep.Switch, ep.Dst, len(ep.Victims))
	}
	return sb.String()
}
