// Package pfctag implements the paper's "PFC w/ tag" derivative
// (Appendix B): reactive per-destination pause. When the last-hop
// ToR's egress queue toward a host exceeds a threshold, it sends a
// pause frame *tagged with that destination* to the upstream switch;
// the upstream parks subsequent packets for that destination in a
// VOQ, cascading further pauses (ultimately per-dst pausing source
// hosts) if its own VOQ fills. Unlike Floodgate it keeps no in-flight
// accounting — it is reactive, with a longer control loop, so it needs
// smaller thresholds and uses far more VOQs.
package pfctag

import (
	"floodgate/internal/device"
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// Config parameterises PFC w/ tag.
type Config struct {
	// PauseThresh triggers a tagged pause when the egress backlog (last
	// hop) or per-dst VOQ (transit) exceeds it; resume at ResumeThresh.
	PauseThresh  units.ByteSize
	ResumeThresh units.ByteSize
	// PauseHosts cascades the last level to source hosts as dstPause
	// frames (requires device.Config.PerDstPause on the host side).
	PauseHosts bool
}

// DefaultConfig returns a small, reaction-friendly binding.
func DefaultConfig(oneHopBDP units.ByteSize) Config {
	return Config{
		PauseThresh:  oneHopBDP,
		ResumeThresh: oneHopBDP / 2,
		PauseHosts:   true,
	}
}

// New returns the per-switch factory.
func New(cfg Config) device.FCFactory {
	return func(sw *device.Switch) device.FlowControl { return newModule(cfg, sw) }
}

type dstState struct {
	paused    bool // downstream told us to hold this destination
	q         []*packet.Packet
	bytes     units.ByteSize
	upstreams map[int]bool           // switch ingress ports we paused
	hosts     map[packet.NodeID]bool // hosts we paused (first hop)
}

type module struct {
	cfg  Config
	sw   *device.Switch
	dsts map[packet.NodeID]*dstState
	voqs int // destinations currently holding parked packets
}

func newModule(cfg Config, sw *device.Switch) *module {
	return &module{cfg: cfg, sw: sw, dsts: make(map[packet.NodeID]*dstState)}
}

func (m *module) state(d packet.NodeID) *dstState {
	s, ok := m.dsts[d]
	if !ok {
		s = &dstState{upstreams: make(map[int]bool), hosts: make(map[packet.NodeID]bool)}
		m.dsts[d] = s
	}
	return s
}

// OnIngress parks packets for paused destinations; at the last hop it
// originates tagged pauses when the egress queue builds.
func (m *module) OnIngress(p *packet.Packet, inPort, outPort int) device.Verdict {
	st := m.state(p.Dst)
	if st.paused {
		m.park(st, p, outPort)
		m.maybeCascade(st, p, inPort)
		return device.Verdict{Consumed: true}
	}
	if m.sw.PortFacesHost(outPort) {
		// Last hop: detect incast from the egress backlog.
		if m.sw.PortBacklog(outPort)+p.Size > m.cfg.PauseThresh {
			m.pauseUpstreamFor(p.Dst, inPort, p)
		}
	}
	return device.Verdict{}
}

// park stores the packet in the per-dst VOQ.
func (m *module) park(st *dstState, p *packet.Packet, outPort int) {
	if st.bytes == 0 {
		m.voqs++
		m.sw.Net().Stats.VOQInUse(m.voqs)
	}
	p.ViaVOQ = true
	p.EnqueuedAt = m.sw.Net().Eng.Now()
	st.q = append(st.q, p)
	st.bytes += p.Size
	m.sw.NotePortBytes(outPort, p.Size)
}

// maybeCascade propagates the pause one level up when our own VOQ for
// the destination fills.
func (m *module) maybeCascade(st *dstState, p *packet.Packet, inPort int) {
	if st.bytes <= m.cfg.PauseThresh {
		return
	}
	m.pauseUpstreamFor(p.Dst, inPort, p)
}

// pauseUpstreamFor emits the tagged pause toward whoever fed us.
func (m *module) pauseUpstreamFor(dst packet.NodeID, inPort int, p *packet.Packet) {
	st := m.state(dst)
	n := m.sw.Net()
	if m.sw.PortFacesHost(inPort) {
		if !m.cfg.PauseHosts {
			return
		}
		src := m.sw.Node().Ports[inPort].Peer
		if st.hosts[src] {
			return
		}
		st.hosts[src] = true
		f := n.NewCtrl(packet.DstPause, 0, m.sw.Node().ID, src)
		f.PauseDst = dst
		m.sw.SendCtrl(f, inPort)
		return
	}
	if st.upstreams[inPort] {
		return
	}
	st.upstreams[inPort] = true
	f := n.NewCtrl(packet.TagPause, 0, m.sw.Node().ID, m.sw.Node().Ports[inPort].Peer)
	f.PauseDst = dst
	m.sw.SendCtrl(f, inPort)
}

// OnCtrl applies tagged pause/resume from the downstream switch.
func (m *module) OnCtrl(p *packet.Packet, inPort int) bool {
	switch p.Kind {
	case packet.TagPause:
		m.state(p.PauseDst).paused = true
		return true
	case packet.TagResume:
		st := m.state(p.PauseDst)
		st.paused = false
		m.drain(st, p.PauseDst)
		return true
	}
	return false
}

// drain releases every parked packet for the destination (reactive:
// no window gating) and resumes our own upstreams.
func (m *module) drain(st *dstState, dst packet.NodeID) {
	net := m.sw.Net()
	for _, p := range st.q {
		out := net.Route(m.sw.Node().ID, p.Src, p.Dst)
		st.bytes -= p.Size
		m.sw.InjectEgress(p, out, 0)
	}
	if len(st.q) > 0 {
		st.q = nil
		m.voqs--
	}
	m.resumeUpstreams(st, dst)
}

// OnDequeue watches last-hop egress queues to lift pauses once they
// drain, and transit VOQ levels to lift cascaded pauses.
func (m *module) OnDequeue(p *packet.Packet, outPort, queue int) {
	st, ok := m.dsts[p.Dst]
	if !ok {
		return
	}
	if m.sw.PortFacesHost(outPort) {
		if m.sw.PortBacklog(outPort) <= m.cfg.ResumeThresh {
			m.resumeUpstreams(st, p.Dst)
		}
		return
	}
	if st.bytes <= m.cfg.ResumeThresh {
		m.resumeUpstreams(st, p.Dst)
	}
}

// resumeUpstreams emits tagged resumes (and host resumes) for a dst.
func (m *module) resumeUpstreams(st *dstState, dst packet.NodeID) {
	n := m.sw.Net()
	node := m.sw.Node()
	// Walk ports in index order so runs stay deterministic.
	for port := range node.Ports {
		if st.upstreams[port] {
			f := n.NewCtrl(packet.TagResume, 0, node.ID, node.Ports[port].Peer)
			f.PauseDst = dst
			m.sw.SendCtrl(f, port)
			delete(st.upstreams, port)
		}
		if peer := node.Ports[port].Peer; st.hosts[peer] {
			f := n.NewCtrl(packet.DstResume, 0, node.ID, peer)
			f.PauseDst = dst
			m.sw.SendCtrl(f, port)
			delete(st.hosts, peer)
		}
	}
}

// QueueSignal reports VOQ residency for parked packets (same §8
// convention as Floodgate).
func (m *module) QueueSignal(p *packet.Packet, outPort int) units.ByteSize {
	if !p.ViaVOQ {
		return -1
	}
	var sum units.ByteSize
	//lint:allow maprange order-independent sum of parked bytes
	for _, st := range m.dsts {
		sum += st.bytes
	}
	return sum + m.sw.PortBacklog(outPort)
}
