package pfctag_test

import (
	"testing"

	"floodgate/internal/cc"
	"floodgate/internal/device"
	"floodgate/internal/packet"
	"floodgate/internal/pfctag"
	"floodgate/internal/sim"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/units"
)

func tagNet(thresh units.ByteSize, pauseHosts bool) (*device.Network, *topo.Topology) {
	tp := topo.LeafSpineConfig{
		Spines: 2, ToRs: 3, HostsPerToR: 8,
		HostRate: 10 * units.Gbps, SpineRate: 40 * units.Gbps,
		Prop: 600 * units.Nanosecond,
	}.Build()
	cfg := device.Config{
		Topo:        tp,
		Engine:      sim.NewEngine(),
		Stats:       stats.NewCollector(10 * units.Microsecond),
		Seed:        5,
		PFC:         device.PFCConfig{Enable: true, Alpha: 2},
		CC:          cc.NewFixedWindow(),
		PerDstPause: pauseHosts,
		FC: pfctag.New(pfctag.Config{
			PauseThresh: thresh, ResumeThresh: thresh / 2, PauseHosts: pauseHosts,
		}),
	}
	return device.New(cfg), tp
}

func TestTagIncastCompletes(t *testing.T) {
	n, tp := tagNet(20*packet.MTU, true)
	dst := tp.Hosts[len(tp.Hosts)-1]
	var flows []*device.Flow
	for i := 0; i < 16; i++ {
		flows = append(flows, n.AddFlow(tp.Hosts[i], dst, 100*units.KB, 0, packet.CatIncast))
	}
	n.Run(units.Time(500 * units.Millisecond))
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d incomplete under PFC w/ tag", i)
		}
	}
	if n.Stats.Drops != 0 {
		t.Fatalf("drops: %d", n.Stats.Drops)
	}
}

func TestTagBoundsLastHop(t *testing.T) {
	run := func(withTag bool) units.ByteSize {
		var n *device.Network
		var tp *topo.Topology
		if withTag {
			n, tp = tagNet(10*packet.MTU, true)
		} else {
			tp = topo.LeafSpineConfig{
				Spines: 2, ToRs: 3, HostsPerToR: 8,
				HostRate: 10 * units.Gbps, SpineRate: 40 * units.Gbps,
				Prop: 600 * units.Nanosecond,
			}.Build()
			n = device.New(device.Config{
				Topo: tp, Engine: sim.NewEngine(),
				Stats: stats.NewCollector(10 * units.Microsecond),
				Seed:  5,
				PFC:   device.PFCConfig{Enable: true, Alpha: 2},
				CC:    cc.NewFixedWindow(),
			})
		}
		dst := tp.Hosts[len(tp.Hosts)-1]
		var flows []*device.Flow
		for i := 0; i < 16; i++ {
			flows = append(flows, n.AddFlow(tp.Hosts[i], dst, 100*units.KB, 0, packet.CatIncast))
		}
		n.Run(units.Time(500 * units.Millisecond))
		for _, f := range flows {
			if !f.Done() {
				t.Fatal("flow incomplete")
			}
		}
		return n.Stats.MaxClassBuffer(topo.ClassToRDown)
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Fatalf("PFC w/ tag did not bound the last hop: %v vs %v", with, without)
	}
}

func TestTagUsesManyVOQs(t *testing.T) {
	// The paper's Appendix B point: the reactive scheme parks many more
	// destinations than Floodgate's proactive window does. Two parallel
	// incasts with small thresholds should occupy at least two VOQs.
	n, tp := tagNet(4*packet.MTU, true)
	d1 := tp.Hosts[len(tp.Hosts)-1]
	d2 := tp.Hosts[len(tp.Hosts)-2]
	var flows []*device.Flow
	for i := 0; i < 8; i++ {
		flows = append(flows, n.AddFlow(tp.Hosts[i], d1, 80*units.KB, 0, packet.CatIncast))
		flows = append(flows, n.AddFlow(tp.Hosts[8+i], d2, 80*units.KB, 0, packet.CatIncast))
	}
	n.Run(units.Time(500 * units.Millisecond))
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d incomplete", i)
		}
	}
	if n.Stats.MaxVOQInUse < 2 {
		t.Fatalf("expected >=2 VOQs in use, got %d", n.Stats.MaxVOQInUse)
	}
}

func TestTagNonIncastUnaffected(t *testing.T) {
	n, tp := tagNet(20*packet.MTU, true)
	f := n.AddFlow(tp.Hosts[0], tp.Hosts[10], 200*units.KB, 0, packet.CatVictimPFC)
	n.Run(units.Time(100 * units.Millisecond))
	if !f.Done() {
		t.Fatal("lone flow incomplete")
	}
	if n.Stats.MaxVOQInUse != 0 {
		t.Fatalf("lone flow parked in a VOQ (%d)", n.Stats.MaxVOQInUse)
	}
}
