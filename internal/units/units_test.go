package units

import (
	"testing"
	"testing/quick"
)

func TestTxTimeExact(t *testing.T) {
	cases := []struct {
		size ByteSize
		rate BitRate
		want Duration
	}{
		{1500, 100 * Gbps, 120 * Nanosecond},
		{1500, 400 * Gbps, 30 * Nanosecond},
		{1500, 10 * Gbps, 1200 * Nanosecond},
		{64, 100 * Gbps, Duration(5120)}, // 5.12ns
		{1, 400 * Gbps, Duration(20)},    // 20ps exactly
		{0, 100 * Gbps, 0},
	}
	for _, c := range cases {
		if got := TxTime(c.size, c.rate); got != c.want {
			t.Errorf("TxTime(%v, %v) = %v, want %v", c.size, c.rate, got, c.want)
		}
	}
}

func TestTxTimeRoundsUp(t *testing.T) {
	// 1 byte at 3 bps = 8/3 s -> must round up to whole picoseconds.
	got := TxTime(1, 3)
	want := Duration(8*int64(Second)/3 + 1)
	if got != want {
		t.Fatalf("TxTime(1B, 3bps) = %d, want %d", got, want)
	}
}

func TestTxTimeLargeTransferNoOverflow(t *testing.T) {
	// 1 TB at 1 Gbps = 8000 s; direct 64-bit multiplication would overflow.
	got := TxTime(1e12, Gbps)
	if want := 8000 * Second; got != want {
		t.Fatalf("TxTime(1TB, 1Gbps) = %v, want %v", got, want)
	}
}

func TestBDP(t *testing.T) {
	// The paper's 2-tier base numbers: 100 Gbps host links, 5.1us base
	// RTT gives 63.75 KB, i.e. the quoted "base BDP is 64KB".
	bdp := BDP(100*Gbps, Duration(51)*Microsecond/10)
	if bdp != 63750 {
		t.Fatalf("BDP(100Gbps, 5.1us) = %d, want 63750", bdp)
	}
}

func TestRateInvertsTxTime(t *testing.T) {
	f := func(sz uint16, rGb uint8) bool {
		size := ByteSize(sz) + 1
		rate := BitRate(int64(rGb)+1) * Gbps
		d := TxTime(size, rate)
		got := Rate(size, d)
		// Rounding up the delay can only lower the recovered rate, and by
		// less than one part in the byte count.
		return got <= rate && got >= rate-rate/BitRate(size)/8-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesOver(t *testing.T) {
	if got := BytesOver(100*Gbps, 10*Microsecond); got != 125000 {
		t.Fatalf("BytesOver(100Gbps, 10us) = %d, want 125000", got)
	}
	if got := BytesOver(Gbps, 0); got != 0 {
		t.Fatalf("BytesOver(., 0) = %d, want 0", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0).Add(5 * Microsecond)
	if t0.Sub(Time(0)) != 5*Microsecond {
		t.Fatal("Add/Sub mismatch")
	}
	if t0.Microseconds() != 5 {
		t.Fatalf("Microseconds() = %v", t0.Microseconds())
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{(120 * Nanosecond).String(), "120ns"},
		{(10 * Microsecond).String(), "10us"},
		{(3 * Millisecond).String(), "3ms"},
		{Duration(500).String(), "500ps"},
		{(-10 * Microsecond).String(), "-10us"},
		{(100 * Gbps).String(), "100Gbps"},
		{(40 * Mbps).String(), "40Mbps"},
		{(20 * MB).String(), "20MB"},
		{(64 * KB).String(), "64KB"},
		{ByteSize(512).String(), "512B"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestMulDivAgainstSmallCases(t *testing.T) {
	f := func(a, b uint16, c uint8) bool {
		cc := int64(c) + 1
		want := int64(a) * int64(b) / cc
		return mulDiv(int64(a), int64(b), cc) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromNanos(t *testing.T) {
	if got := FromNanos(0); got != 0 {
		t.Errorf("FromNanos(0) = %v", got)
	}
	if got := FromNanos(1); got != Nanosecond {
		t.Errorf("FromNanos(1) = %v, want 1ns", got)
	}
	// 10µs as a flag value (time.Duration nanoseconds) round-trips.
	if got := FromNanos(10_000); got != 10*Microsecond {
		t.Errorf("FromNanos(10000) = %v, want 10us", got)
	}
	if got := FromNanos(2_000_000_000); got != 2*Second {
		t.Errorf("FromNanos(2e9) = %v, want 2s", got)
	}
}
