// Package units provides the exact integer arithmetic the simulator is
// built on: picosecond-resolution timestamps, bit rates, and byte
// quantities. Picoseconds keep per-byte serialization delays exact even
// at 400 Gbps (1 byte = 20 ps), so simulations are deterministic and
// free of floating-point drift.
package units

import (
	"fmt"
	"math/bits"
)

// Time is an absolute simulation timestamp in picoseconds.
type Time int64

// Duration is a span of simulation time in picoseconds.
type Duration int64

// Convenient duration constants.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// FromNanos converts a nanosecond count (e.g. a wall-clock flag value)
// to a simulation Duration.
func FromNanos(ns int64) Duration { return Duration(ns) * Nanosecond }

// Add offsets a timestamp by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts the timestamp to floating-point seconds (for reporting).
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds converts the timestamp to floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds converts the timestamp to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds converts a duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds converts a duration to floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds converts a duration to floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

func (t Time) String() string { return Duration(t).String() }

func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.3gns", float64(d)/float64(Nanosecond))
	case d < Millisecond:
		return fmt.Sprintf("%.4gus", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.4gms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", float64(d)/float64(Second))
	}
}

// BitRate is a link or flow rate in bits per second.
type BitRate int64

// Convenient rate constants.
const (
	BitPerSecond BitRate = 1
	Kbps                 = 1000 * BitPerSecond
	Mbps                 = 1000 * Kbps
	Gbps                 = 1000 * Mbps
)

// Gbits reports the rate in floating-point gigabits per second.
func (r BitRate) Gbits() float64 { return float64(r) / float64(Gbps) }

func (r BitRate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.4gGbps", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.4gMbps", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.4gKbps", float64(r)/float64(Kbps))
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// ByteSize is a quantity of bytes (buffer occupancy, window, flow size).
type ByteSize int64

// Convenient size constants.
const (
	Byte ByteSize = 1
	KB            = 1000 * Byte
	MB            = 1000 * KB
	KiB           = 1024 * Byte
	MiB           = 1024 * KiB
)

// KBytes reports the size in floating-point kilobytes.
func (s ByteSize) KBytes() float64 { return float64(s) / float64(KB) }

// MBytes reports the size in floating-point megabytes.
func (s ByteSize) MBytes() float64 { return float64(s) / float64(MB) }

func (s ByteSize) String() string {
	switch {
	case s < 0:
		return "-" + (-s).String()
	case s >= MB:
		return fmt.Sprintf("%.4gMB", s.MBytes())
	case s >= KB:
		return fmt.Sprintf("%.4gKB", s.KBytes())
	default:
		return fmt.Sprintf("%dB", int64(s))
	}
}

// TxTime returns the exact serialization delay of size bytes at rate r,
// rounded up to a whole picosecond so a transmitter can never finish
// "early". r must be positive.
func TxTime(size ByteSize, r BitRate) Duration {
	if r <= 0 {
		panic("units: non-positive bit rate")
	}
	nbits := int64(size) * 8
	// delay_ps = ceil(bits * 1e12 / r); 128-bit intermediate keeps this
	// exact for arbitrarily large transfers.
	return Duration(mulDivCeil(nbits, int64(Second), int64(r)))
}

// BytesOver returns how many whole bytes rate r transfers in duration d.
func BytesOver(r BitRate, d Duration) ByteSize {
	if d <= 0 {
		return 0
	}
	bits := mulDiv(int64(r), int64(d), int64(Second))
	return ByteSize(bits / 8)
}

// BDP returns the bandwidth-delay product of a link with rate r and
// round-trip delay d, in bytes (rounded down).
func BDP(r BitRate, d Duration) ByteSize { return BytesOver(r, d) }

// mulDiv computes a*b/c (truncated) with a 128-bit intermediate product.
// All arguments must be non-negative and c positive.
func mulDiv(a, b, c int64) int64 {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	q, _ := bits.Div64(hi, lo, uint64(c))
	return int64(q)
}

// mulDivCeil computes ceil(a*b/c) with a 128-bit intermediate product.
func mulDivCeil(a, b, c int64) int64 {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	q, r := bits.Div64(hi, lo, uint64(c))
	if r != 0 {
		q++
	}
	return int64(q)
}

// Rate returns the average bit rate of size bytes over duration d.
func Rate(size ByteSize, d Duration) BitRate {
	if d <= 0 {
		return 0
	}
	return BitRate(mulDiv(int64(size)*8, int64(Second), int64(d)))
}
