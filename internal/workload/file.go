package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// Flow files are newline-delimited JSON, one spec per line:
//
//	{"src":3,"dst":40,"size":52500,"start_ps":1200000000,"cat":1}
//
// All values are integers (node ids, bytes, picoseconds, category
// ordinal), so a file round-trips bit-exactly. Lines must be sorted by
// non-decreasing start_ps — the same contract Cluster.AddFlow enforces
// for generated workloads. Blank lines and lines starting with '#' are
// skipped, so files can carry a header comment.

// SpecSource streams flow specs one at a time; implementations must
// never require the full list in memory. Next returns ok=false at the
// end of the stream.
type SpecSource interface {
	Next() (s FlowSpec, ok bool, err error)
}

// specLine is the NDJSON wire form of one FlowSpec.
type specLine struct {
	Src   int64 `json:"src"`
	Dst   int64 `json:"dst"`
	Size  int64 `json:"size"`
	Start int64 `json:"start_ps"`
	Cat   int   `json:"cat"`
}

// SpecReader streams FlowSpecs from NDJSON. It validates monotone
// starts as it goes so a mis-sorted file fails at the offending line,
// not deep inside the simulator.
type SpecReader struct {
	sc        *bufio.Scanner
	closer    io.Closer
	line      int
	lastStart units.Time
	started   bool
}

// NewSpecReader streams from r (which is not closed by the reader).
func NewSpecReader(r io.Reader) *SpecReader {
	sc := bufio.NewScanner(r)
	// Specs are short lines, but leave headroom for annotated files.
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &SpecReader{sc: sc}
}

// OpenSpecFile streams from an NDJSON file; Close releases it.
func OpenSpecFile(path string) (*SpecReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sr := NewSpecReader(f)
	sr.closer = f
	return sr, nil
}

// Next implements SpecSource.
func (sr *SpecReader) Next() (FlowSpec, bool, error) {
	for sr.sc.Scan() {
		sr.line++
		b := sr.sc.Bytes()
		if len(b) == 0 || b[0] == '#' {
			continue
		}
		var l specLine
		if err := json.Unmarshal(b, &l); err != nil {
			return FlowSpec{}, false, fmt.Errorf("workload: flow file line %d: %w", sr.line, err)
		}
		s := FlowSpec{
			Src:   packet.NodeID(l.Src),
			Dst:   packet.NodeID(l.Dst),
			Size:  units.ByteSize(l.Size),
			Start: units.Time(l.Start),
			Cat:   packet.Category(l.Cat),
		}
		if s.Size <= 0 {
			return FlowSpec{}, false, fmt.Errorf("workload: flow file line %d: non-positive size %d", sr.line, l.Size)
		}
		if sr.started && s.Start < sr.lastStart {
			return FlowSpec{}, false, fmt.Errorf("workload: flow file line %d: start %d before previous %d (sort by start_ps)",
				sr.line, l.Start, int64(sr.lastStart))
		}
		sr.started, sr.lastStart = true, s.Start
		return s, true, nil
	}
	if err := sr.sc.Err(); err != nil {
		return FlowSpec{}, false, err
	}
	return FlowSpec{}, false, nil
}

// Close releases the underlying file when the reader owns one.
func (sr *SpecReader) Close() error {
	if sr.closer == nil {
		return nil
	}
	return sr.closer.Close()
}

// WriteSpecs renders specs as NDJSON in the exact form Next parses —
// the round trip is byte-stable, so generated workloads can be frozen
// to files and replayed.
func WriteSpecs(w io.Writer, specs []FlowSpec) error {
	bw := bufio.NewWriter(w)
	for i := range specs {
		s := &specs[i]
		// Fixed field order by hand (not json.Marshal) so output bytes
		// are canonical.
		if _, err := fmt.Fprintf(bw, `{"src":%d,"dst":%d,"size":%d,"start_ps":%d,"cat":%d}`+"\n",
			int64(s.Src), int64(s.Dst), int64(s.Size), int64(s.Start), int(s.Cat)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SliceSource adapts an in-memory spec slice to SpecSource (tests and
// composition with generated workloads).
type SliceSource struct {
	Specs []FlowSpec
	idx   int
}

// Next implements SpecSource.
func (ss *SliceSource) Next() (FlowSpec, bool, error) {
	if ss.idx >= len(ss.Specs) {
		return FlowSpec{}, false, nil
	}
	s := ss.Specs[ss.idx]
	ss.idx++
	return s, true, nil
}
