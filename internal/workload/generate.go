package workload

import (
	"sort"

	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/topo"
	"floodgate/internal/units"
)

// FlowSpec is one pre-generated flow arrival.
type FlowSpec struct {
	Src, Dst packet.NodeID
	Size     units.ByteSize
	Start    units.Time
	Cat      packet.Category
}

// PoissonConfig drives the background-traffic generator.
type PoissonConfig struct {
	CDF  *CDF
	Load float64 // fraction of per-host line rate (§6: 0.8)
	// Hosts are the eligible endpoints; HostRate their line rate.
	Hosts    []packet.NodeID
	HostRate units.BitRate
	// ExcludeDst removes destinations (e.g. the incast victim) from the
	// receiver set while keeping them as senders.
	ExcludeDst map[packet.NodeID]bool
	Until      units.Duration
	// Categorize tags each flow (defaults to CatVictimPFC).
	Categorize func(src, dst packet.NodeID) packet.Category
}

// Poisson pre-generates open-loop background flows: exponential
// inter-arrivals at the aggregate rate Load·HostRate·N / meanSize,
// uniform random sender and receiver.
func Poisson(cfg PoissonConfig, r *sim.Rand) []FlowSpec {
	if cfg.Load <= 0 || cfg.Until <= 0 {
		return nil
	}
	receivers := make([]packet.NodeID, 0, len(cfg.Hosts))
	for _, h := range cfg.Hosts {
		if !cfg.ExcludeDst[h] {
			receivers = append(receivers, h)
		}
	}
	if len(receivers) == 0 || len(cfg.Hosts) < 2 {
		return nil
	}
	mean := cfg.CDF.Mean()
	// flows per second delivered across all receivers
	lambda := cfg.Load * float64(cfg.HostRate) * float64(len(receivers)) / (8 * mean)
	meanGapPs := float64(units.Second) / lambda
	var specs []FlowSpec
	t := 0.0
	for {
		t += r.ExpFloat64() * meanGapPs
		if t >= float64(cfg.Until) {
			break
		}
		src := cfg.Hosts[r.Intn(len(cfg.Hosts))]
		dst := receivers[r.Intn(len(receivers))]
		for dst == src {
			dst = receivers[r.Intn(len(receivers))]
		}
		cat := packet.CatVictimPFC
		if cfg.Categorize != nil {
			cat = cfg.Categorize(src, dst)
		}
		specs = append(specs, FlowSpec{
			Src: src, Dst: dst, Size: cfg.CDF.Sample(r),
			Start: units.Time(t), Cat: cat,
		})
	}
	return specs
}

// IncastConfig drives the periodic incast generator (§6: flows of
// 30–40 MTU, destination load 0.5).
type IncastConfig struct {
	Dst     packet.NodeID
	Senders []packet.NodeID // candidate senders (excluding Dst's rack typically)
	Degree  int             // senders per incast event
	MinSize units.ByteSize  // 30 MTU
	MaxSize units.ByteSize  // 40 MTU
	Load    float64         // average load on the destination link (0.5)
	DstRate units.BitRate
	Until   units.Duration
}

// Incast pre-generates periodic incast events: every interval, Degree
// senders simultaneously start one flow to Dst. The interval is sized
// so the destination link averages Load.
func Incast(cfg IncastConfig, r *sim.Rand) []FlowSpec {
	// Zero sizes or rate would make the event interval zero and the
	// generation loop below endless — treat them as unset, like Degree.
	if cfg.Degree <= 0 || cfg.Load <= 0 || len(cfg.Senders) == 0 ||
		cfg.MinSize+cfg.MaxSize <= 0 || cfg.DstRate <= 0 {
		return nil
	}
	if cfg.Degree > len(cfg.Senders) {
		cfg.Degree = len(cfg.Senders)
	}
	meanSize := float64(cfg.MinSize+cfg.MaxSize) / 2
	eventBytes := meanSize * float64(cfg.Degree)
	intervalPs := eventBytes * 8 * float64(units.Second) / (cfg.Load * float64(cfg.DstRate))
	var specs []FlowSpec
	for t := 0.0; t < float64(cfg.Until); t += intervalPs {
		perm := r.Perm(len(cfg.Senders))
		for i := 0; i < cfg.Degree; i++ {
			size := cfg.MinSize + units.ByteSize(r.Int63n(int64(cfg.MaxSize-cfg.MinSize)+1))
			specs = append(specs, FlowSpec{
				Src: cfg.Senders[perm[i]], Dst: cfg.Dst, Size: size,
				Start: units.Time(t), Cat: packet.CatIncast,
			})
		}
	}
	return specs
}

// SuccessiveIncast generates the Fig 15 pattern: Times incast events
// aimed at distinct destination hosts, spaced by Gap, each with every
// host (except the victim) sending one 30–40 MTU flow.
func SuccessiveIncast(hosts []packet.NodeID, times int, gap units.Duration, minSize, maxSize units.ByteSize, r *sim.Rand) []FlowSpec {
	var specs []FlowSpec
	for i := 0; i < times; i++ {
		dst := hosts[i%len(hosts)]
		start := units.Time(int64(i) * int64(gap))
		for _, src := range hosts {
			if src == dst {
				continue
			}
			size := minSize + units.ByteSize(r.Int63n(int64(maxSize-minSize)+1))
			specs = append(specs, FlowSpec{Src: src, Dst: dst, Size: size, Start: start, Cat: packet.CatIncast})
		}
	}
	return specs
}

// Merge combines spec lists into one, sorted by start time (stable
// across inputs of equal time).
func Merge(lists ...[]FlowSpec) []FlowSpec {
	var all []FlowSpec
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	return all
}

// RackVictimCategorizer tags Poisson flows whose destination shares
// the incast destination's rack as victims of incast; the rest are
// (potential) victims of PFC spreading — the paper's Fig 2/9 split.
func RackVictimCategorizer(tp *topo.Topology, incastDst packet.NodeID) func(src, dst packet.NodeID) packet.Category {
	rack := tp.Node(incastDst).Rack
	return func(src, dst packet.NodeID) packet.Category {
		if tp.Node(dst).Rack == rack {
			return packet.CatVictimIncast
		}
		return packet.CatVictimPFC
	}
}

// CrossRackSenders returns every host outside dst's rack.
func CrossRackSenders(tp *topo.Topology, dst packet.NodeID) []packet.NodeID {
	rack := tp.Node(dst).Rack
	var out []packet.NodeID
	for _, h := range tp.Hosts {
		if tp.Node(h).Rack != rack {
			out = append(out, h)
		}
	}
	return out
}
