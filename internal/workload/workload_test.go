package workload

import (
	"testing"
	"testing/quick"

	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/topo"
	"floodgate/internal/units"
)

func TestCDFValidation(t *testing.T) {
	for _, bad := range [][]CDFPoint{
		{{100, 0}},                         // too few
		{{100, 0.1}, {200, 1}},             // does not start at 0
		{{100, 0}, {200, 0.9}},             // does not end at 1
		{{100, 0}, {50, 1}},                // sizes not increasing
		{{100, 0}, {200, 0.5}, {300, 0.4}}, // P not monotone
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid CDF %v accepted", bad)
				}
			}()
			NewCDF("bad", bad)
		}()
	}
}

func TestSampleWithinSupport(t *testing.T) {
	r := sim.NewRand(1)
	for _, c := range Workloads {
		lo := c.Pts[0].Size
		hi := c.Pts[len(c.Pts)-1].Size
		for i := 0; i < 10000; i++ {
			s := c.Sample(r)
			if s < lo || s > hi {
				t.Fatalf("%s sample %d outside [%d,%d]", c.Name, s, lo, hi)
			}
		}
	}
}

func TestEmpiricalMeanMatchesAnalytic(t *testing.T) {
	r := sim.NewRand(2)
	for _, c := range Workloads {
		var sum float64
		const n = 200000
		for i := 0; i < n; i++ {
			sum += float64(c.Sample(r))
		}
		emp := sum / n
		ana := c.Mean()
		if emp < 0.95*ana || emp > 1.05*ana {
			t.Fatalf("%s: empirical mean %.0f vs analytic %.0f", c.Name, emp, ana)
		}
	}
}

func TestWorkloadShapes(t *testing.T) {
	// The paper's Fig 7 claims: Memcached flows are mostly < 1KB; the
	// other three are dominated (in bytes) by a small fraction of large
	// flows.
	if q := Memcached.Quantile(0.95); q > units.KB {
		t.Fatalf("Memcached p95 = %v, want <= 1KB", q)
	}
	for _, c := range []*CDF{WebServer, Hadoop, WebSearch} {
		if c.Quantile(0.5) >= units.ByteSize(c.Mean()) {
			t.Fatalf("%s: median %v should sit below mean %.0f (heavy tail)", c.Name, c.Quantile(0.5), c.Mean())
		}
	}
	if WebSearch.Mean() < 10*Memcached.Mean() {
		t.Fatal("WebSearch should dwarf Memcached in mean size")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		p1 := float64(a) / 255
		p2 := float64(b) / 255
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Hadoop.Quantile(p1) <= Hadoop.Quantile(p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Memcached", "WebServer", "Hadoop", "WebSearch"} {
		c, err := ByName(name)
		if err != nil || c.Name != name {
			t.Fatalf("ByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func hosts(n int) []packet.NodeID {
	out := make([]packet.NodeID, n)
	for i := range out {
		out[i] = packet.NodeID(i + 100)
	}
	return out
}

func TestPoissonLoad(t *testing.T) {
	cfg := PoissonConfig{
		CDF: WebServer, Load: 0.8,
		Hosts: hosts(16), HostRate: 100 * units.Gbps,
		Until: 10 * units.Millisecond,
	}
	specs := Poisson(cfg, sim.NewRand(3))
	var total units.ByteSize
	for _, s := range specs {
		total += s.Size
		if s.Src == s.Dst {
			t.Fatal("self flow generated")
		}
		if s.Start < 0 || s.Start > units.Time(cfg.Until) {
			t.Fatalf("start %v out of range", s.Start)
		}
	}
	// Offered bytes should hit load*rate*hosts*duration within 10%.
	want := 0.8 * float64(100*units.Gbps) / 8 * cfg.Until.Seconds() * 16
	got := float64(total)
	if got < 0.85*want || got > 1.15*want {
		t.Fatalf("offered bytes %.3g, want ~%.3g", got, want)
	}
}

func TestPoissonArrivalsAreExponential(t *testing.T) {
	cfg := PoissonConfig{
		CDF: Memcached, Load: 0.5,
		Hosts: hosts(8), HostRate: 10 * units.Gbps,
		Until: 100 * units.Millisecond,
	}
	specs := Poisson(cfg, sim.NewRand(4))
	if len(specs) < 1000 {
		t.Fatalf("too few arrivals: %d", len(specs))
	}
	// CV of exponential inter-arrivals is 1.
	var gaps []float64
	for i := 1; i < len(specs); i++ {
		gaps = append(gaps, float64(specs[i].Start-specs[i-1].Start))
	}
	var mean, varr float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		varr += (g - mean) * (g - mean)
	}
	varr /= float64(len(gaps))
	cv := varr / (mean * mean)
	if cv < 0.8 || cv > 1.2 {
		t.Fatalf("inter-arrival CV^2 = %.2f, want ~1", cv)
	}
}

func TestPoissonExcludesDst(t *testing.T) {
	ex := map[packet.NodeID]bool{hosts(4)[0]: true}
	cfg := PoissonConfig{
		CDF: Memcached, Load: 0.5, Hosts: hosts(4), HostRate: units.Gbps,
		Until: 50 * units.Millisecond, ExcludeDst: ex,
	}
	for _, s := range Poisson(cfg, sim.NewRand(5)) {
		if ex[s.Dst] {
			t.Fatal("excluded destination used")
		}
	}
}

func TestIncastPattern(t *testing.T) {
	cfg := IncastConfig{
		Dst: 1, Senders: hosts(64), Degree: 32,
		MinSize: 30 * packet.MTU, MaxSize: 40 * packet.MTU,
		Load: 0.5, DstRate: 100 * units.Gbps,
		Until: 5 * units.Millisecond,
	}
	specs := Incast(cfg, sim.NewRand(6))
	if len(specs) == 0 {
		t.Fatal("no incast flows")
	}
	events := map[units.Time]int{}
	var total units.ByteSize
	for _, s := range specs {
		if s.Dst != 1 || s.Cat != packet.CatIncast {
			t.Fatalf("bad spec %+v", s)
		}
		if s.Size < 30*packet.MTU || s.Size > 40*packet.MTU {
			t.Fatalf("size %v outside 30-40 MTU", s.Size)
		}
		events[s.Start]++
		total += s.Size
	}
	for at, n := range events {
		if n != 32 {
			t.Fatalf("event at %v has %d senders, want 32", at, n)
		}
	}
	want := 0.5 * float64(100*units.Gbps) / 8 * cfg.Until.Seconds()
	if got := float64(total); got < 0.7*want || got > 1.3*want {
		t.Fatalf("incast offered load %.3g, want ~%.3g", got, want)
	}
}

func TestIncastUnsetFieldsReturnNil(t *testing.T) {
	base := IncastConfig{
		Dst: 1, Senders: hosts(8), Degree: 4,
		MinSize: 30 * packet.MTU, MaxSize: 40 * packet.MTU,
		Load: 0.5, DstRate: 100 * units.Gbps,
		Until: units.Duration(units.Millisecond),
	}
	zero := func(f func(*IncastConfig)) IncastConfig { c := base; f(&c); return c }
	for name, cfg := range map[string]IncastConfig{
		// Zero sizes or rate made the interval zero and the generation
		// loop endless; all unset required fields must yield nil.
		"sizes":   zero(func(c *IncastConfig) { c.MinSize, c.MaxSize = 0, 0 }),
		"rate":    zero(func(c *IncastConfig) { c.DstRate = 0 }),
		"degree":  zero(func(c *IncastConfig) { c.Degree = 0 }),
		"load":    zero(func(c *IncastConfig) { c.Load = 0 }),
		"senders": zero(func(c *IncastConfig) { c.Senders = nil }),
	} {
		if specs := Incast(cfg, sim.NewRand(6)); specs != nil {
			t.Errorf("%s unset: got %d specs, want nil", name, len(specs))
		}
	}
}

func TestSuccessiveIncastDistinctDsts(t *testing.T) {
	hs := hosts(10)
	specs := SuccessiveIncast(hs, 5, units.Duration(100*units.Microsecond), 30*packet.MTU, 40*packet.MTU, sim.NewRand(7))
	byStart := map[units.Time]packet.NodeID{}
	for _, s := range specs {
		if s.Src == s.Dst {
			t.Fatal("victim sends to itself")
		}
		if prev, ok := byStart[s.Start]; ok && prev != s.Dst {
			t.Fatal("one event has two destinations")
		}
		byStart[s.Start] = s.Dst
	}
	if len(byStart) != 5 {
		t.Fatalf("%d events, want 5", len(byStart))
	}
	seen := map[packet.NodeID]bool{}
	for _, d := range byStart {
		if seen[d] {
			t.Fatal("destination repeated across successive incasts")
		}
		seen[d] = true
	}
}

func TestMergeSorted(t *testing.T) {
	a := []FlowSpec{{Start: 5}, {Start: 1}}
	b := []FlowSpec{{Start: 3}}
	m := Merge(a, b)
	if len(m) != 3 || m[0].Start != 1 || m[1].Start != 3 || m[2].Start != 5 {
		t.Fatalf("merge wrong: %+v", m)
	}
}

func TestRackVictimCategorizer(t *testing.T) {
	tp := topo.LeafSpineConfig{
		Spines: 2, ToRs: 2, HostsPerToR: 2,
		HostRate: units.Gbps, SpineRate: units.Gbps, Prop: units.Nanosecond,
	}.Build()
	dst := tp.Hosts[3] // rack 1
	cat := RackVictimCategorizer(tp, dst)
	if cat(tp.Hosts[0], tp.Hosts[2]) != packet.CatVictimIncast {
		t.Fatal("same-rack dst should be victim of incast")
	}
	if cat(tp.Hosts[2], tp.Hosts[0]) != packet.CatVictimPFC {
		t.Fatal("other-rack dst should be victim of PFC")
	}
	senders := CrossRackSenders(tp, dst)
	if len(senders) != 2 {
		t.Fatalf("cross-rack senders = %d, want 2", len(senders))
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	gen := func() []FlowSpec {
		return Poisson(PoissonConfig{
			CDF: Hadoop, Load: 0.6, Hosts: hosts(8),
			HostRate: 10 * units.Gbps, Until: 10 * units.Millisecond,
		}, sim.NewRand(42))
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs", i)
		}
	}
}
