// Package workload generates the paper's traffic: Poisson-arrival
// background flows drawn from the four flow-size distributions of
// Fig 7 (Memcached, Web Server, Hadoop, Web Search), plus the periodic
// incast patterns of §6. Workloads are pre-generated into FlowSpec
// lists from a seed, so every compared scheme replays byte-identical
// arrivals.
package workload

import (
	"fmt"
	"sort"

	"floodgate/internal/sim"
	"floodgate/internal/units"
)

// CDFPoint is one knot of a flow-size CDF.
type CDFPoint struct {
	Size units.ByteSize
	P    float64
}

// CDF is a piecewise-linear flow-size distribution.
type CDF struct {
	Name string
	Pts  []CDFPoint
}

// NewCDF validates and returns a distribution.
func NewCDF(name string, pts []CDFPoint) *CDF {
	if len(pts) < 2 {
		panic("workload: CDF needs at least two points")
	}
	for i, p := range pts {
		if p.P < 0 || p.P > 1 {
			panic(fmt.Sprintf("workload: CDF %s point %d probability %v out of range", name, i, p.P))
		}
		if i > 0 && (p.Size <= pts[i-1].Size || p.P < pts[i-1].P) {
			panic(fmt.Sprintf("workload: CDF %s not monotone at point %d", name, i))
		}
	}
	if pts[0].P != 0 || pts[len(pts)-1].P != 1 {
		panic(fmt.Sprintf("workload: CDF %s must span [0,1]", name))
	}
	return &CDF{Name: name, Pts: pts}
}

// Sample draws one flow size.
func (c *CDF) Sample(r *sim.Rand) units.ByteSize {
	u := r.Float64()
	i := sort.Search(len(c.Pts), func(i int) bool { return c.Pts[i].P >= u })
	if i == 0 {
		return c.Pts[0].Size
	}
	lo, hi := c.Pts[i-1], c.Pts[i]
	if hi.P == lo.P {
		return hi.Size
	}
	frac := (u - lo.P) / (hi.P - lo.P)
	sz := lo.Size + units.ByteSize(frac*float64(hi.Size-lo.Size))
	if sz < 1 {
		sz = 1
	}
	return sz
}

// Mean returns the expected flow size in bytes.
func (c *CDF) Mean() float64 {
	var m float64
	for i := 1; i < len(c.Pts); i++ {
		lo, hi := c.Pts[i-1], c.Pts[i]
		m += (hi.P - lo.P) * float64(lo.Size+hi.Size) / 2
	}
	return m
}

// Quantile returns the size at cumulative probability p.
func (c *CDF) Quantile(p float64) units.ByteSize {
	i := sort.Search(len(c.Pts), func(i int) bool { return c.Pts[i].P >= p })
	if i == 0 {
		return c.Pts[0].Size
	}
	if i >= len(c.Pts) {
		return c.Pts[len(c.Pts)-1].Size
	}
	lo, hi := c.Pts[i-1], c.Pts[i]
	if hi.P == lo.P {
		return hi.Size
	}
	frac := (p - lo.P) / (hi.P - lo.P)
	return lo.Size + units.ByteSize(frac*float64(hi.Size-lo.Size))
}

// The four Fig 7 workloads, re-encoded from the published
// distributions (Homa's Memcached trace, Facebook's Web/Hadoop
// measurements, DCTCP's Web Search). Shapes — tiny-flow-dominated
// Memcached versus heavy-tailed others — are what the evaluation
// depends on.
var (
	// Memcached: almost everything under 1 KB.
	Memcached = NewCDF("Memcached", []CDFPoint{
		{50, 0}, {100, 0.25}, {200, 0.55}, {350, 0.80},
		{512, 0.90}, {1 * units.KB, 0.97}, {10 * units.KB, 0.997},
		{64 * units.KB, 1},
	})

	// WebServer: small objects with a moderate tail to ~5 MB.
	WebServer = NewCDF("WebServer", []CDFPoint{
		{100, 0}, {300, 0.30}, {1 * units.KB, 0.55}, {3 * units.KB, 0.70},
		{10 * units.KB, 0.80}, {30 * units.KB, 0.90}, {100 * units.KB, 0.95},
		{1 * units.MB, 0.99}, {5 * units.MB, 1},
	})

	// Hadoop: shuffle traffic, long tail to tens of MB.
	Hadoop = NewCDF("Hadoop", []CDFPoint{
		{100, 0}, {300, 0.10}, {1 * units.KB, 0.40}, {3 * units.KB, 0.60},
		{10 * units.KB, 0.75}, {100 * units.KB, 0.90}, {1 * units.MB, 0.95},
		{10 * units.MB, 0.99}, {30 * units.MB, 1},
	})

	// WebSearch: the DCTCP distribution, large-flow dominated.
	WebSearch = NewCDF("WebSearch", []CDFPoint{
		{6 * units.KB, 0}, {10 * units.KB, 0.15}, {20 * units.KB, 0.20},
		{30 * units.KB, 0.30}, {50 * units.KB, 0.40}, {80 * units.KB, 0.53},
		{200 * units.KB, 0.60}, {1 * units.MB, 0.70}, {2 * units.MB, 0.80},
		{5 * units.MB, 0.90}, {10 * units.MB, 0.97}, {30 * units.MB, 1},
	})
)

// Workloads lists the four Fig 7 distributions in paper order.
var Workloads = []*CDF{Memcached, WebServer, Hadoop, WebSearch}

// ByName resolves a workload by its Fig 7 name.
func ByName(name string) (*CDF, error) {
	for _, c := range Workloads {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown distribution %q", name)
}
