package workload

import (
	"bytes"
	"strings"
	"testing"

	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/units"
)

// TestSpecFileRoundTrip: WriteSpecs → SpecReader must reproduce a
// generated workload spec-for-spec, streaming without materializing.
func TestSpecFileRoundTrip(t *testing.T) {
	r := sim.NewRand(9)
	var specs []FlowSpec
	for i := 0; i < 200; i++ {
		specs = append(specs, FlowSpec{
			Src:   packet.NodeID(i % 7),
			Dst:   packet.NodeID(40 + i%3),
			Size:  units.ByteSize(1000 + r.Int63n(50000)),
			Start: units.Time(int64(i) * 500_000),
			Cat:   packet.Category(i % 3),
		})
	}
	var buf bytes.Buffer
	if err := WriteSpecs(&buf, specs); err != nil {
		t.Fatalf("WriteSpecs: %v", err)
	}
	sr := NewSpecReader(&buf)
	for i, want := range specs {
		got, ok, err := sr.Next()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("stream ended at spec %d of %d", i, len(specs))
		}
		if got != want {
			t.Fatalf("spec %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, ok, err := sr.Next(); ok || err != nil {
		t.Fatalf("expected clean end of stream, got ok=%v err=%v", ok, err)
	}
}

// TestSpecReaderSkipsCommentsAndBlanks: a file with a header comment
// and blank separators yields only the spec lines.
func TestSpecReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# flow file header\n\n" +
		`{"src":1,"dst":2,"size":1500,"start_ps":0,"cat":0}` + "\n\n" +
		"# trailing comment\n" +
		`{"src":3,"dst":4,"size":3000,"start_ps":1000,"cat":1}` + "\n"
	sr := NewSpecReader(strings.NewReader(in))
	var got []FlowSpec
	for {
		s, ok, err := sr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, s)
	}
	if len(got) != 2 {
		t.Fatalf("got %d specs, want 2", len(got))
	}
	if got[1].Src != 3 || got[1].Start != 1000 || got[1].Cat != 1 {
		t.Fatalf("second spec mangled: %+v", got[1])
	}
}

// TestSpecReaderRejectsUnsorted: a start_ps regression must fail at
// the offending line number.
func TestSpecReaderRejectsUnsorted(t *testing.T) {
	in := `{"src":1,"dst":2,"size":1500,"start_ps":2000,"cat":0}` + "\n" +
		`{"src":3,"dst":4,"size":1500,"start_ps":1000,"cat":0}` + "\n"
	sr := NewSpecReader(strings.NewReader(in))
	if _, _, err := sr.Next(); err != nil {
		t.Fatalf("first spec: %v", err)
	}
	_, _, err := sr.Next()
	if err == nil {
		t.Fatal("unsorted start_ps accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name the offending line", err)
	}
}

// TestSpecReaderRejectsBadInput: malformed JSON and non-positive sizes
// are errors, not silent skips.
func TestSpecReaderRejectsBadInput(t *testing.T) {
	for name, in := range map[string]string{
		"garbage":  "not json\n",
		"zerosize": `{"src":1,"dst":2,"size":0,"start_ps":0,"cat":0}` + "\n",
		"negsize":  `{"src":1,"dst":2,"size":-5,"start_ps":0,"cat":0}` + "\n",
	} {
		sr := NewSpecReader(strings.NewReader(in))
		if _, _, err := sr.Next(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
