package metrics

import (
	"bytes"
	"encoding/json"
	"testing"

	"floodgate/internal/packet"
	"floodgate/internal/trace"
	"floodgate/internal/units"
)

type ctRec struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Cat  string  `json:"cat"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int64   `json:"pid"`
	Tid  int64   `json:"tid"`
	ID   int64   `json:"id"`
	Bp   string  `json:"bp"`
}

func decodeTrace(t *testing.T, events []trace.Event) []ctRec {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []ctRec `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	return doc.TraceEvents
}

func find(recs []ctRec, name, ph string) *ctRec {
	for i := range recs {
		if recs[i].Name == name && recs[i].Ph == ph {
			return &recs[i]
		}
	}
	return nil
}

// TestChromeTraceSpans pins the complete-event pairing: an ENQ whose TX
// is in the window renders as a QUEUED "X" span (at the ENQ time, with
// the queueing duration), a PARK closed by an UNPARK as a PARKED span.
// The closing TX/UNPARK stay instants so arrows can bind to them.
func TestChromeTraceSpans(t *testing.T) {
	us := units.Time(units.Microsecond)
	events := []trace.Event{
		{At: 1 * us, Op: trace.OpEnqueue, Node: 5, Kind: packet.Data, Flow: 7, Seq: 0, Size: 1000, Dst: 2},
		{At: 3 * us, Op: trace.OpTx, Node: 5, Kind: packet.Data, Flow: 7, Seq: 0, Size: 1000, Dst: 2},
		{At: 4 * us, Op: trace.OpPark, Node: 5, Kind: packet.Data, Flow: 7, Seq: 1000, Size: 1000, Dst: 2},
		{At: 6 * us, Op: trace.OpUnpark, Node: 5, Kind: packet.Data, Flow: 7, Seq: 1000, Size: 1000, Dst: 2, Aux: 9},
		// ENQ with no TX in the window must stay an instant.
		{At: 8 * us, Op: trace.OpEnqueue, Node: 5, Kind: packet.Data, Flow: 7, Seq: 2000, Size: 1000, Dst: 2},
	}
	recs := decodeTrace(t, events)
	q := find(recs, "QUEUED", "X")
	if q == nil {
		t.Fatal("no QUEUED complete event")
	}
	if q.Ts != 1 || q.Dur != 2 || q.Pid != 5 || q.Tid != 7 {
		t.Errorf("QUEUED span = ts %v dur %v pid %d tid %d, want ts 1 dur 2 pid 5 tid 7", q.Ts, q.Dur, q.Pid, q.Tid)
	}
	p := find(recs, "PARKED", "X")
	if p == nil {
		t.Fatal("no PARKED complete event")
	}
	if p.Ts != 4 || p.Dur != 2 {
		t.Errorf("PARKED span = ts %v dur %v, want ts 4 dur 2", p.Ts, p.Dur)
	}
	if find(recs, "TX", "i") == nil || find(recs, "UNPARK", "i") == nil {
		t.Error("closing TX/UNPARK should remain instants")
	}
	// The dangling ENQ (seq 2000) renders as an instant, not a span.
	enqs := 0
	for _, r := range recs {
		if r.Name == "ENQ" && r.Ph == "i" {
			enqs++
		}
	}
	if enqs != 1 {
		t.Errorf("dangling ENQ instants = %d, want 1", enqs)
	}
}

// TestChromeTraceFlowArrows pins the causal chain: credit emission at
// the downstream switch starts a flow arrow ("s"), the unpark it
// triggers steps it ("t"), and the released packet's next transmit at
// that switch finishes it ("f") — all three sharing one arrow id.
func TestChromeTraceFlowArrows(t *testing.T) {
	us := units.Time(units.Microsecond)
	events := []trace.Event{
		{At: 4 * us, Op: trace.OpPark, Node: 5, Kind: packet.Data, Flow: 7, Seq: 1000, Size: 1000, Dst: 2},
		// Credit from switch 9 for flow destination 2.
		{At: 5 * us, Op: trace.OpCredit, Node: 9, Kind: packet.Credit, Flow: 0, Dst: 2, Aux: 2},
		// The unpark names the credit's switch (Aux) and destination (Dst).
		{At: 6 * us, Op: trace.OpUnpark, Node: 5, Kind: packet.Data, Flow: 7, Seq: 1000, Size: 1000, Dst: 2, Aux: 9},
		{At: 7 * us, Op: trace.OpTx, Node: 5, Kind: packet.Data, Flow: 7, Seq: 1000, Size: 1000, Dst: 2},
	}
	recs := decodeTrace(t, events)
	s := find(recs, "credit-unpark", "s")
	st := find(recs, "credit-unpark", "t")
	f := find(recs, "credit-unpark", "f")
	if s == nil || st == nil || f == nil {
		t.Fatalf("arrow chain incomplete: s=%v t=%v f=%v", s != nil, st != nil, f != nil)
	}
	if s.ID != st.ID || st.ID != f.ID {
		t.Errorf("arrow ids differ: s=%d t=%d f=%d", s.ID, st.ID, f.ID)
	}
	if s.Cat != "flow" || st.Cat != "flow" || f.Cat != "flow" {
		t.Error("arrow records must share cat \"flow\"")
	}
	if s.Pid != 9 || s.Ts != 5 {
		t.Errorf("arrow start at pid %d ts %v, want credit site pid 9 ts 5", s.Pid, s.Ts)
	}
	if st.Pid != 5 || st.Ts != 6 {
		t.Errorf("arrow step at pid %d ts %v, want unpark site pid 5 ts 6", st.Pid, st.Ts)
	}
	if f.Pid != 5 || f.Ts != 7 || f.Bp != "e" {
		t.Errorf("arrow finish = pid %d ts %v bp %q, want pid 5 ts 7 bp \"e\"", f.Pid, f.Ts, f.Bp)
	}
}

// TestChromeTraceMetadataOrder pins deterministic metadata: one
// process_name per node and one thread_name per (node, flow), sorted,
// ahead of all event records.
func TestChromeTraceMetadataOrder(t *testing.T) {
	us := units.Time(units.Microsecond)
	events := []trace.Event{
		{At: 1 * us, Op: trace.OpSend, Node: 9, Flow: 3},
		{At: 2 * us, Op: trace.OpSend, Node: 5, Flow: 7},
		{At: 3 * us, Op: trace.OpSend, Node: 5, Flow: 1},
	}
	recs := decodeTrace(t, events)
	wantPids := []int64{5, 9}
	for i, pid := range wantPids {
		if recs[i].Name != "process_name" || recs[i].Pid != pid {
			t.Errorf("record %d = %+v, want process_name pid %d", i, recs[i], pid)
		}
	}
	wantThreads := [][2]int64{{5, 1}, {5, 7}, {9, 3}}
	for i, pt := range wantThreads {
		r := recs[len(wantPids)+i]
		if r.Name != "thread_name" || r.Pid != pt[0] || r.Tid != pt[1] {
			t.Errorf("record %d = %+v, want thread_name pid %d tid %d", len(wantPids)+i, r, pt[0], pt[1])
		}
	}
	for _, r := range recs[len(wantPids)+len(wantThreads):] {
		if r.Ph == "M" {
			t.Errorf("metadata record %+v after event records", r)
		}
	}
}
