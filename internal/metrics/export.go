// Exporters render a sampled run as machine-readable time series.
// Output order is registration order throughout — never a map walk —
// so files are byte-identical for identical runs at any parallelism.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"

	"floodgate/internal/units"
)

// ndjsonHeader is the first line of the NDJSON stream.
type ndjsonHeader struct {
	Type        string `json:"type"` // "header"
	PeriodPs    int64  `json:"period_ps"`
	Ticks       int    `json:"ticks"`
	Instruments int    `json:"instruments"`
}

// ndjsonSeries is one instrument's sampled time series: counter
// cumulative totals, gauge levels, or histogram observation counts,
// one sample per tick.
type ndjsonSeries struct {
	Type    string  `json:"type"` // "series"
	Name    string  `json:"name"`
	Unit    string  `json:"unit"`
	Kind    string  `json:"kind"`
	Samples []int64 `json:"samples"`
}

// ndjsonFinal is one instrument's end-of-run state.
type ndjsonFinal struct {
	Type    string  `json:"type"` // "final"
	Name    string  `json:"name"`
	Kind    string  `json:"kind"`
	Value   int64   `json:"value"`
	Max     int64   `json:"max,omitempty"`
	Sum     int64   `json:"sum,omitempty"`
	Bounds  []int64 `json:"bounds,omitempty"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// WriteNDJSON streams the sampler's series and the registry's final
// snapshots as newline-delimited JSON: a header line, then one
// "series" and one "final" line per instrument, in registration order.
func (s *Sampler) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(ndjsonHeader{
		Type: "header", PeriodPs: int64(s.period),
		Ticks: s.ticks, Instruments: s.reg.Len(),
	}); err != nil {
		return err
	}
	snaps := s.reg.Snapshots()
	for i, sn := range snaps {
		samples := s.series[i]
		if samples == nil {
			samples = []int64{}
		}
		if err := enc.Encode(ndjsonSeries{
			Type: "series", Name: sn.Name, Unit: sn.Unit,
			Kind: sn.Kind.String(), Samples: samples,
		}); err != nil {
			return err
		}
		if err := enc.Encode(ndjsonFinal{
			Type: "final", Name: sn.Name, Kind: sn.Kind.String(),
			Value: sn.Value, Max: sn.Max, Sum: sn.Sum,
			Bounds: sn.Bounds, Buckets: sn.Buckets,
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the sampled series as one wide CSV: a t_ps column
// (tick timestamps in picoseconds) followed by one column per
// instrument in registration order.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "t_ps"); err != nil {
		return err
	}
	snaps := s.reg.Snapshots()
	for _, sn := range snaps {
		if _, err := fmt.Fprintf(w, ",%s", sn.Name); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for t := 0; t < s.ticks; t++ {
		at := units.Duration(t+1) * s.period
		if _, err := fmt.Fprintf(w, "%d", int64(at)); err != nil {
			return err
		}
		for i := range snaps {
			if _, err := fmt.Fprintf(w, ",%d", s.series[i][t]); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
