// Sampler: periodic snapshotting of a Registry on the simulation
// clock. Ticks are ordinary engine events, so sampling interleaves
// deterministically with the workload; because tick callbacks only read
// instrument state (probes must be read-only too), enabling a sampler
// changes no simulated behaviour — tables are byte-identical with
// sampling on or off.
//
//lint:hotpath tick runs on the engine event loop
package metrics

import (
	"floodgate/internal/sim"
	"floodgate/internal/units"
)

// DefaultPeriod is used when a Sampler is built with a non-positive
// period.
const DefaultPeriod = 10 * units.Microsecond

// Sampler snapshots every registered instrument on a fixed period into
// in-memory time series (one []int64 per instrument, one entry per
// tick). Probes let callers pull external state (e.g. engine heap
// length) into gauges once per tick instead of per event.
type Sampler struct {
	eng     *sim.Engine
	reg     *Registry
	period  units.Duration
	probes  []func()
	series  [][]int64 // [instrument][tick]
	ticks   int
	started bool
}

// NewSampler builds a sampler for reg driven by eng. A non-positive
// period falls back to DefaultPeriod.
func NewSampler(eng *sim.Engine, reg *Registry, period units.Duration) *Sampler {
	if period <= 0 {
		period = DefaultPeriod
	}
	return &Sampler{eng: eng, reg: reg, period: period}
}

// AddProbe registers a read-only callback run at the start of every
// tick, before instruments are sampled. Probes must not schedule
// events or mutate simulation state.
func (s *Sampler) AddProbe(fn func()) { s.probes = append(s.probes, fn) }

// Start schedules the first tick one period from now. The registry
// must be fully populated: instruments registered after Start are not
// sampled and cause a panic at the next tick.
func (s *Sampler) Start() {
	if s.started {
		panic("metrics: sampler started twice")
	}
	s.started = true
	s.series = make([][]int64, s.reg.Len())
	s.eng.AfterArg(s.period, samplerTickFn, s)
}

// samplerTickFn is the capture-free trampoline scheduled on the engine
// (one pre-built func value, no per-tick closure allocation).
func samplerTickFn(a any) { a.(*Sampler).tick() }

func (s *Sampler) tick() {
	if len(s.series) != s.reg.Len() {
		panic("metrics: instruments registered after sampler start")
	}
	for _, p := range s.probes {
		p()
	}
	for i, in := range s.reg.instruments {
		s.series[i] = append(s.series[i], in.scalar())
	}
	s.ticks++
	s.eng.AfterArg(s.period, samplerTickFn, s)
}

// Ticks reports how many samples have been taken.
func (s *Sampler) Ticks() int { return s.ticks }

// Period returns the sampling period.
func (s *Sampler) Period() units.Duration { return s.period }

// Series returns instrument i's sampled values (counter cumulative
// total, gauge level, histogram count), one per tick. The slice is the
// sampler's own storage; callers must not mutate it.
func (s *Sampler) Series(i int) []int64 { return s.series[i] }
