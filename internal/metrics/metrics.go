// Package metrics is the simulator's always-on instrumentation layer:
// a deterministic registry of counters, gauges and fixed-bucket
// histograms keyed by small integer IDs resolved once at registration,
// so the per-event update path is a bounds-checked slice index and an
// integer add — no map lookups, no string formatting, no allocation.
// A sim-clock-driven Sampler (sampler.go) snapshots every instrument on
// a fixed period into in-memory time series, and exporters (export.go,
// chrometrace.go) render those series as NDJSON, CSV and Chrome
// trace_event JSON. Everything is integer arithmetic driven by the
// simulation clock, so enabling observability never perturbs a run and
// its output is a pure function of (configuration, seed).
//
//lint:hotpath instrument updates run once per packet event
package metrics

import "fmt"

// Kind discriminates instrument behaviour.
type Kind uint8

// Instrument kinds.
const (
	KindCounter   Kind = iota // monotonically increasing count
	KindGauge                 // instantaneous level with high-water mark
	KindHistogram             // fixed-bucket distribution
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// instrument is the shared storage cell behind the typed handles. All
// state is plain int64 so updates are single stores on the hot path.
type instrument struct {
	name    string
	unit    string
	kind    Kind
	val     int64   // counter total / gauge level / histogram count
	max     int64   // gauge high-water mark
	sum     int64   // histogram sum of observed values
	bounds  []int64 // histogram upper bounds (ascending, exclusive top)
	buckets []int64 // len(bounds)+1; last is overflow
}

// Registry owns a fixed set of instruments. All registration happens at
// setup time (before the run); the returned handles are then used on
// the hot path. Registration order is the canonical export order, so
// output is deterministic without ever ranging over a map.
type Registry struct {
	instruments []*instrument
	index       map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

func (r *Registry) register(name, unit string, kind Kind) *instrument {
	if _, dup := r.index[name]; dup {
		panic("metrics: duplicate instrument " + name)
	}
	in := &instrument{name: name, unit: unit, kind: kind}
	r.index[name] = len(r.instruments)
	r.instruments = append(r.instruments, in)
	return in
}

// Counter registers a monotonically increasing counter.
func (r *Registry) Counter(name, unit string) Counter {
	return Counter{r.register(name, unit, KindCounter)}
}

// Gauge registers an instantaneous level. Set and Add track a
// high-water mark alongside the current value.
func (r *Registry) Gauge(name, unit string) Gauge {
	return Gauge{r.register(name, unit, KindGauge)}
}

// Histogram registers a fixed-bucket distribution. bounds are ascending
// upper bounds (a value v lands in the first bucket with v <= bound);
// values above the last bound land in an implicit overflow bucket.
func (r *Registry) Histogram(name, unit string, bounds []int64) Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds not strictly ascending: " + name)
		}
	}
	in := r.register(name, unit, KindHistogram)
	in.bounds = append([]int64(nil), bounds...)
	in.buckets = make([]int64, len(bounds)+1)
	return Histogram{in}
}

// Len reports the number of registered instruments.
func (r *Registry) Len() int { return len(r.instruments) }

// Counter is a nil-safe handle: the zero Counter ignores updates, so
// subsystems can carry metrics by value and run unmetered when no
// registry is attached.
type Counter struct{ c *instrument }

// Inc adds one.
func (c Counter) Inc() {
	if c.c != nil {
		c.c.val++
	}
}

// Add adds n (n must be non-negative; counters are monotone).
func (c Counter) Add(n int64) {
	if c.c != nil {
		c.c.val += n
	}
}

// Value returns the accumulated total.
func (c Counter) Value() int64 {
	if c.c == nil {
		return 0
	}
	return c.c.val
}

// Gauge is a nil-safe instantaneous level with a high-water mark.
type Gauge struct{ g *instrument }

// Set replaces the level.
func (g Gauge) Set(v int64) {
	if g.g == nil {
		return
	}
	g.g.val = v
	if v > g.g.max {
		g.g.max = v
	}
}

// Add offsets the level by d (which may be negative).
func (g Gauge) Add(d int64) {
	if g.g == nil {
		return
	}
	g.g.val += d
	if g.g.val > g.g.max {
		g.g.max = g.g.val
	}
}

// Value returns the current level.
func (g Gauge) Value() int64 {
	if g.g == nil {
		return 0
	}
	return g.g.val
}

// Max returns the high-water mark.
func (g Gauge) Max() int64 {
	if g.g == nil {
		return 0
	}
	return g.g.max
}

// Histogram is a nil-safe fixed-bucket distribution.
type Histogram struct{ h *instrument }

// Observe records one value. The bucket scan is linear: bucket counts
// are small (≤ ~16) and the branch predictor beats binary search there.
func (h Histogram) Observe(v int64) {
	if h.h == nil {
		return
	}
	in := h.h
	in.val++
	in.sum += v
	for i, b := range in.bounds {
		if v <= b {
			in.buckets[i]++
			return
		}
	}
	in.buckets[len(in.buckets)-1]++
}

// Count returns the number of observations.
func (h Histogram) Count() int64 {
	if h.h == nil {
		return 0
	}
	return h.h.val
}

// Sum returns the sum of observed values.
func (h Histogram) Sum() int64 {
	if h.h == nil {
		return 0
	}
	return h.h.sum
}

// Snapshot is a point-in-time copy of one instrument, in registration
// order, used by the exporters.
type Snapshot struct {
	Name    string
	Unit    string
	Kind    Kind
	Value   int64   // counter total / gauge level / histogram count
	Max     int64   // gauge high-water (0 otherwise)
	Sum     int64   // histogram sum (0 otherwise)
	Bounds  []int64 // histogram bounds (nil otherwise)
	Buckets []int64 // histogram buckets (nil otherwise)
}

// Snapshots copies every instrument in registration order.
func (r *Registry) Snapshots() []Snapshot {
	out := make([]Snapshot, len(r.instruments))
	for i, in := range r.instruments {
		s := Snapshot{
			Name: in.name, Unit: in.unit, Kind: in.kind,
			Value: in.val, Max: in.max, Sum: in.sum,
		}
		if in.kind == KindHistogram {
			s.Bounds = append([]int64(nil), in.bounds...)
			s.Buckets = append([]int64(nil), in.buckets...)
		}
		out[i] = s
	}
	return out
}

// scalar is the per-tick sampled value: counter cumulative total, gauge
// current level, histogram observation count.
func (in *instrument) scalar() int64 { return in.val }
