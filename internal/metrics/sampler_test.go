package metrics

import (
	"strings"
	"testing"

	"floodgate/internal/sim"
	"floodgate/internal/units"
)

// TestSamplerZeroPeriod pins the fallback: a non-positive period must
// not arm a zero-interval tick loop (which would never advance the
// clock) but fall back to DefaultPeriod.
func TestSamplerZeroPeriod(t *testing.T) {
	for _, period := range []units.Duration{0, -units.Microsecond} {
		eng := sim.NewEngine()
		reg := NewRegistry()
		g := reg.Gauge("g", "units")
		s := NewSampler(eng, reg, period)
		if s.Period() != DefaultPeriod {
			t.Fatalf("Period() = %v for input %v, want DefaultPeriod %v", s.Period(), period, DefaultPeriod)
		}
		g.Set(5)
		s.Start()
		eng.Run(units.Time(3 * DefaultPeriod))
		if s.Ticks() != 3 {
			t.Errorf("period %v: ticks = %d over 3 default periods, want 3", period, s.Ticks())
		}
	}
}

// TestSamplerOutlivesEngineStop pins that a sampler whose engine has
// stopped (horizon reached or Stop called) still exports cleanly: the
// pending tick simply never fires, and the series hold exactly the
// samples taken before the stop.
func TestSamplerOutlivesEngineStop(t *testing.T) {
	eng := sim.NewEngine()
	reg := NewRegistry()
	c := reg.Counter("c", "events")
	s := NewSampler(eng, reg, units.Microsecond)
	s.Start()
	c.Add(7)
	eng.Run(units.Time(2*units.Microsecond + 500*units.Nanosecond))
	eng.Stop()
	if s.Ticks() != 2 {
		t.Fatalf("ticks = %d, want 2", s.Ticks())
	}
	var b strings.Builder
	if err := s.WriteNDJSON(&b); err != nil {
		t.Fatalf("WriteNDJSON after engine stop: %v", err)
	}
	if !strings.Contains(b.String(), `"ticks":2`) {
		t.Errorf("NDJSON header should record the 2 completed ticks:\n%s", b.String())
	}
	series := s.Series(0)
	if len(series) != 2 || series[0] != 7 || series[1] != 7 {
		t.Errorf("series = %v, want [7 7]", series)
	}
}

// TestSamplerProbeAfterStart pins that a probe registered after the
// first tick is honoured on subsequent ticks (the probe list is read
// each tick, not snapshotted at Start).
func TestSamplerProbeAfterStart(t *testing.T) {
	eng := sim.NewEngine()
	reg := NewRegistry()
	g := reg.Gauge("g", "units")
	s := NewSampler(eng, reg, units.Microsecond)
	s.Start()
	eng.Run(units.Time(units.Microsecond)) // first tick, no probe yet
	if s.Ticks() != 1 {
		t.Fatalf("ticks = %d, want 1", s.Ticks())
	}
	fired := 0
	s.AddProbe(func() {
		fired++
		g.Set(int64(fired))
	})
	eng.Run(units.Time(3 * units.Microsecond)) // two more ticks
	if s.Ticks() != 3 {
		t.Fatalf("ticks = %d, want 3", s.Ticks())
	}
	if fired != 2 {
		t.Errorf("late probe fired %d times, want 2", fired)
	}
	if series := s.Series(0); len(series) != 3 || series[0] != 0 || series[2] != 2 {
		t.Errorf("series = %v, want probe-driven values [0 1 2]", series)
	}
}
