// Per-run manifest: a small JSON record emitted beside every
// experiment's observability files that pins down exactly what
// produced them — experiment ID, scale, seed, parallelism, sampling
// period — plus an FNV-1a content hash of the rendered tables, so a
// stored timeline can always be matched to the table it explains.
package metrics

import (
	"encoding/json"
	"hash/fnv"
	"os"
	"path/filepath"
)

// ManifestFormat versions the manifest schema.
const ManifestFormat = 1

// Manifest describes one experiment's observability output.
//
// Parallelism is the only field allowed to differ between otherwise
// identical runs: every other field — and every data file the manifest
// points at — is a pure function of (experiment, scale, seed, period).
type Manifest struct {
	Format         int      `json:"format"`
	Experiment     string   `json:"experiment"`
	Scale          float64  `json:"scale"`
	Seed           uint64   `json:"seed"`
	Parallelism    int      `json:"parallelism"`
	SamplePeriodPs int64    `json:"sample_period_ps"`
	TableHash      string   `json:"table_hash"`
	Tables         []string `json:"tables"`
	Files          []string `json:"files"`
}

// Write renders the manifest as indented JSON at path (atomically).
func (m *Manifest) Write(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(data, '\n'))
}

// ReadManifest loads a manifest written by Write.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// WriteFileAtomic writes data to path via a temp file and rename, so
// concurrent writers producing identical content (parallel runs of the
// same experiment) can never interleave into a torn file.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// HashStrings folds the given strings into one FNV-1a 64-bit hex
// digest (a NUL separates entries so boundaries count).
func HashStrings(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	const hex = "0123456789abcdef"
	sum := h.Sum64()
	var out [16]byte
	for i := 15; i >= 0; i-- {
		out[i] = hex[sum&0xf]
		sum >>= 4
	}
	return string(out[:])
}
