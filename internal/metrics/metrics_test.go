package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/trace"
	"floodgate/internal/units"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "events")
	g := r.Gauge("g", "bytes")
	h := r.Histogram("h", "ps", []int64{10, 100})

	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}

	g.Set(7)
	g.Add(-3)
	g.Add(10)
	if got := g.Value(); got != 14 {
		t.Errorf("gauge = %d, want 14", got)
	}
	if got := g.Max(); got != 14 {
		t.Errorf("gauge max = %d, want 14", got)
	}
	g.Add(-14)
	if got, want := g.Value(), int64(0); got != want {
		t.Errorf("gauge after drain = %d, want %d", got, want)
	}
	if got := g.Max(); got != 14 {
		t.Errorf("high-water lost on drain: max = %d, want 14", got)
	}

	for _, v := range []int64{5, 10, 11, 100, 101} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("histogram count = %d, want 5", got)
	}
	if got := h.Sum(); got != 227 {
		t.Errorf("histogram sum = %d, want 227", got)
	}
	snaps := r.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("snapshots = %d, want 3", len(snaps))
	}
	hs := snaps[2]
	// Bounds are inclusive upper edges: 5,10 <= 10; 11,100 <= 100; 101 overflows.
	want := []int64{2, 2, 1}
	for i, b := range hs.Buckets {
		if b != want[i] {
			t.Errorf("bucket[%d] = %d, want %d (buckets %v)", i, b, want[i], hs.Buckets)
		}
	}
	if snaps[0].Name != "c" || snaps[1].Name != "g" || snaps[2].Name != "h" {
		t.Errorf("snapshot order broken: %q %q %q", snaps[0].Name, snaps[1].Name, snaps[2].Name)
	}
}

func TestZeroValueHandlesAreInert(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	c.Inc()
	c.Add(5)
	g.Set(9)
	g.Add(3)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("zero-value handles must read as zero and ignore updates")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup", "")
	r.Counter("dup", "")
}

func TestUnsortedBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewRegistry().Histogram("bad", "", []int64{10, 10})
}

func TestSamplerSeriesAndProbes(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	c := r.Counter("ticks.seen", "events")
	g := r.Gauge("probe.level", "units")
	s := NewSampler(eng, r, units.Microsecond)
	level := int64(0)
	s.AddProbe(func() { g.Set(level) })
	s.Start()

	// A workload event between ticks: bump the counter and the probe input.
	for i := 0; i < 5; i++ {
		at := units.Time(units.Duration(i)*units.Microsecond + units.Microsecond/2)
		eng.AtArg(at, func(any) { c.Inc(); level += 10 }, nil)
	}
	eng.Run(units.Time(5 * units.Microsecond))

	if s.Ticks() != 5 {
		t.Fatalf("ticks = %d, want 5", s.Ticks())
	}
	wantCounter := []int64{1, 2, 3, 4, 5}
	wantGauge := []int64{10, 20, 30, 40, 50}
	for i := range wantCounter {
		if got := s.Series(0)[i]; got != wantCounter[i] {
			t.Errorf("counter series[%d] = %d, want %d", i, got, wantCounter[i])
		}
		if got := s.Series(1)[i]; got != wantGauge[i] {
			t.Errorf("gauge series[%d] = %d, want %d", i, got, wantGauge[i])
		}
	}
}

func TestSamplerLateRegistrationPanics(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	r.Counter("early", "")
	s := NewSampler(eng, r, units.Microsecond)
	s.Start()
	r.Counter("late", "")
	defer func() {
		if recover() == nil {
			t.Fatal("tick after late registration did not panic")
		}
	}()
	eng.Run(units.Time(units.Microsecond))
}

func TestSamplerStartTwicePanics(t *testing.T) {
	s := NewSampler(sim.NewEngine(), NewRegistry(), 0)
	if s.Period() != DefaultPeriod {
		t.Fatalf("period = %v, want DefaultPeriod", s.Period())
	}
	s.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	s.Start()
}

// TestMetricsHotPathZeroAlloc pins the registry's core guarantee: once
// registered, instrument updates are plain integer stores — no
// allocation, ever, including the gauge high-water and histogram
// bucket scan.
func TestMetricsHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []int64{10, 100, 1000})
	v := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(v)
		g.Add(1)
		h.Observe(v % 2000)
		v += 7
	})
	if allocs != 0 {
		t.Fatalf("metrics hot path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestSamplerTickZeroAlloc asserts steady-state sampling does not
// allocate once the series slices have grown: one tick is a probe call
// plus one append per instrument.
func TestSamplerTickZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	c := r.Counter("c", "")
	s := NewSampler(eng, r, units.Microsecond)
	s.AddProbe(func() { c.Inc() })
	s.Start()
	// Warm the engine slab and grow the series backing arrays.
	for i := 0; i < 4096; i++ {
		eng.Run(eng.Now().Add(units.Microsecond))
	}
	allocs := testing.AllocsPerRun(100, func() {
		eng.Run(eng.Now().Add(units.Microsecond))
	})
	// Amortised append growth may still trigger on rare runs; the hot
	// path itself must be clean.
	if allocs > 0.1 {
		t.Fatalf("sampler tick allocates %.2f allocs/op, want ~0", allocs)
	}
}

func BenchmarkMetricsHotPath(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []int64{10, 100, 1000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Add(1)
		h.Observe(int64(i % 2000))
	}
}

func BenchmarkMetricsSamplerTick(b *testing.B) {
	eng := sim.NewEngine()
	r := NewRegistry()
	for i := 0; i < 16; i++ {
		r.Counter("c"+string(rune('a'+i)), "")
	}
	s := NewSampler(eng, r, units.Microsecond)
	s.Start()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(eng.Now().Add(units.Microsecond))
	}
}

func TestWriteNDJSON(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	c := r.Counter("pkts", "packets")
	h := r.Histogram("lat", "ps", []int64{100})
	s := NewSampler(eng, r, units.Microsecond)
	s.Start()
	eng.AtArg(units.Time(units.Microsecond/2), func(any) { c.Inc(); h.Observe(50) }, nil)
	eng.Run(units.Time(2 * units.Microsecond))

	var buf bytes.Buffer
	if err := s.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 1+2*r.Len() {
		t.Fatalf("ndjson lines = %d, want %d", len(lines), 1+2*r.Len())
	}
	var header struct {
		Type        string `json:"type"`
		PeriodPs    int64  `json:"period_ps"`
		Ticks       int    `json:"ticks"`
		Instruments int    `json:"instruments"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatal(err)
	}
	if header.Type != "header" || header.Ticks != 2 || header.Instruments != 2 ||
		header.PeriodPs != int64(units.Microsecond) {
		t.Errorf("bad header: %+v", header)
	}
	var series struct {
		Type    string  `json:"type"`
		Name    string  `json:"name"`
		Kind    string  `json:"kind"`
		Samples []int64 `json:"samples"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &series); err != nil {
		t.Fatal(err)
	}
	if series.Type != "series" || series.Name != "pkts" || series.Kind != "counter" {
		t.Errorf("bad series line: %+v", series)
	}
	if len(series.Samples) != 2 || series.Samples[0] != 1 || series.Samples[1] != 1 {
		t.Errorf("samples = %v, want [1 1]", series.Samples)
	}
	var final struct {
		Type    string  `json:"type"`
		Name    string  `json:"name"`
		Value   int64   `json:"value"`
		Sum     int64   `json:"sum"`
		Buckets []int64 `json:"buckets"`
	}
	if err := json.Unmarshal([]byte(lines[4]), &final); err != nil {
		t.Fatal(err)
	}
	if final.Type != "final" || final.Name != "lat" || final.Value != 1 || final.Sum != 50 {
		t.Errorf("bad final line: %+v", final)
	}
	if len(final.Buckets) != 2 || final.Buckets[0] != 1 {
		t.Errorf("buckets = %v, want [1 0]", final.Buckets)
	}
}

func TestWriteCSV(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	c := r.Counter("a", "")
	g := r.Gauge("b", "")
	s := NewSampler(eng, r, units.Microsecond)
	s.Start()
	eng.AtArg(units.Time(units.Microsecond/2), func(any) { c.Inc(); g.Set(5) }, nil)
	eng.Run(units.Time(2 * units.Microsecond))

	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "t_ps,a,b\n1000000,1,5\n2000000,1,5\n"
	if buf.String() != want {
		t.Errorf("csv:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	events := []trace.Event{
		{At: units.Time(1_500_000), Op: trace.OpSend, Node: 3, Kind: packet.Data, Flow: 7, Seq: 0, Size: 1000, Dst: 9},
		{At: units.Time(2_000_001), Op: trace.OpRetx, Node: 3, Kind: packet.Data, Flow: 7, Seq: 1000, Size: 1000, Dst: 9},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int64   `json:"pid"`
			Tid  int64   `json:"tid"`
			Args struct {
				Kind string `json:"kind"`
				Seq  int64  `json:"seq"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	// One process_name + one thread_name metadata record, then the two
	// lifecycle instants.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(doc.TraceEvents))
	}
	if m := doc.TraceEvents[0]; m.Name != "process_name" || m.Ph != "M" || m.Pid != 3 {
		t.Errorf("bad process metadata: %+v", m)
	}
	if m := doc.TraceEvents[1]; m.Name != "thread_name" || m.Ph != "M" || m.Pid != 3 || m.Tid != 7 {
		t.Errorf("bad thread metadata: %+v", m)
	}
	e0 := doc.TraceEvents[2]
	if e0.Name != "SEND" || e0.Ph != "i" || e0.Pid != 3 || e0.Tid != 7 || e0.Args.Kind != "DATA" {
		t.Errorf("bad event 0: %+v", e0)
	}
	// 1_500_000 ps = 1.5 µs, exactly.
	if e0.Ts != 1.5 {
		t.Errorf("ts = %v µs, want 1.5", e0.Ts)
	}
	if doc.TraceEvents[3].Name != "RETX" || doc.TraceEvents[3].Args.Seq != 1000 {
		t.Errorf("bad event 1: %+v", doc.TraceEvents[3])
	}
	// Empty input must still be a valid document.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/manifest.json"
	m := &Manifest{
		Format: ManifestFormat, Experiment: "fig6", Scale: 0.25, Seed: 1,
		Parallelism: 4, SamplePeriodPs: int64(DefaultPeriod),
		TableHash: HashStrings("table one", "table two"),
		Tables:    []string{"Fig 6"},
		Files:     []string{"a.metrics.ndjson"},
	}
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != m.Experiment || got.TableHash != m.TableHash ||
		got.Parallelism != m.Parallelism || got.SamplePeriodPs != m.SamplePeriodPs {
		t.Errorf("round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestHashStringsStability(t *testing.T) {
	// Pinned value: the hash feeds file names and manifests, so it must
	// never drift across refactors.
	if got := HashStrings("a", "b"); got != HashStrings("a", "b") {
		t.Fatal("hash not deterministic")
	}
	if HashStrings("ab") == HashStrings("a", "b") {
		t.Error("separator missing: concatenation collides with split input")
	}
	if len(HashStrings("x")) != 16 {
		t.Errorf("hash length = %d, want 16 hex chars", len(HashStrings("x")))
	}
}
