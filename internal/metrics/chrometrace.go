// Chrome trace_event export: renders the flight recorder's packet
// lifecycle as instant events that load directly into Perfetto
// (ui.perfetto.dev) or chrome://tracing. Rows group by node (pid) and
// flow (tid), so one incast destination's SEND→ENQ→TX→DLVR ladder and
// its RETX/RTO storms read straight off the timeline.
package metrics

import (
	"fmt"
	"io"

	"floodgate/internal/trace"
)

// WriteChromeTrace renders trace events in the Chrome trace_event JSON
// array format. Timestamps are microseconds with the full picosecond
// resolution preserved in the fractional part. The JSON is built with
// integer formatting only — no floats — so output is exact and stable.
func WriteChromeTrace(w io.Writer, events []trace.Event) error {
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	for i, e := range events {
		sep := ","
		if i == 0 {
			sep = ""
		}
		ps := int64(e.At)
		// ph "i" (instant), scope "p" (process = node row).
		_, err := fmt.Fprintf(w,
			`%s{"name":%q,"ph":"i","s":"p","ts":%d.%06d,"pid":%d,"tid":%d,"args":{"kind":%q,"seq":%d,"size":%d,"dst":%d}}`,
			sep, e.Op.String(), ps/1e6, ps%1e6, int64(e.Node), int64(e.Flow),
			e.Kind.String(), int64(e.Seq), int64(e.Size), int64(e.Dst))
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
