// Chrome trace_event export: renders the flight recorder's packet
// lifecycle for Perfetto (ui.perfetto.dev) or chrome://tracing. Rows
// group by node (pid) and flow (tid), named via metadata records, so
// one incast destination's SEND→ENQ→TX→DLVR ladder and its RETX/RTO
// storms read straight off the timeline. Where both ends of an
// interval are in the retained window the exporter emits a complete
// ("X") span instead of two instants — ENQ→TX becomes a QUEUED span,
// PARK→UNPARK a PARKED span — and Floodgate's causal chain is drawn
// as flow arrows: credit emission ("s") → the unpark it triggered
// ("t") → the released packet's next transmit ("f").
package metrics

import (
	"fmt"
	"io"
	"sort"

	"floodgate/internal/packet"
	"floodgate/internal/trace"
	"floodgate/internal/units"
)

// pktKey identifies one packet instance at one node: span pairing and
// arrow finishing both match on it.
type pktKey struct {
	node packet.NodeID
	flow packet.FlowID
	seq  units.ByteSize
}

// creditKey identifies a credit stream: the emitting (downstream)
// switch and the flow destination it credits.
type creditKey struct {
	node packet.NodeID
	dst  packet.NodeID
}

// arrowRec is one flow-arrow binding attached to an event.
type arrowRec struct {
	ph string // "s", "t" or "f"
	id int64
}

// ctWriter folds write errors so the render loop stays linear.
type ctWriter struct {
	w   io.Writer
	err error
}

func (c *ctWriter) str(s string) {
	if c.err == nil {
		_, c.err = io.WriteString(c.w, s)
	}
}

func (c *ctWriter) printf(format string, args ...any) {
	if c.err == nil {
		_, c.err = fmt.Fprintf(c.w, format, args...)
	}
}

// WriteChromeTrace renders trace events in the Chrome trace_event JSON
// object format. Timestamps are microseconds with the full picosecond
// resolution preserved in the fractional part; the JSON is built with
// integer formatting only — no floats — so output is exact and stable.
//
// The export runs two deterministic passes: the first registers every
// pid/tid for metadata records, pairs open/close ops into spans and
// binds credit→unpark→transmit arrow chains; the second writes records
// in event order (metadata first), so identical event slices render
// identical bytes.
func WriteChromeTrace(w io.Writer, events []trace.Event) error {
	cw := &ctWriter{w: w}
	cw.str(`{"traceEvents":[`)

	// Pass 1. Maps are used only for membership and pairing; every
	// emission walks slices in deterministic order (no map iteration).
	var pids []int64
	pidSeen := make(map[int64]bool)
	type pidTid struct{ pid, tid int64 }
	var threads []pidTid
	thrSeen := make(map[pidTid]bool)

	spanDur := make(map[int]int64)   // open-event index -> duration (ps)
	spanName := make(map[int]string) // open-event index -> span name
	openEnq := make(map[pktKey]int)
	openPark := make(map[pktKey]int)

	arrowAt := make(map[int][]arrowRec) // event index -> bindings
	credits := make(map[creditKey][]int)
	pendFin := make(map[pktKey]int64)
	nextArrow := int64(0)

	for i := range events {
		e := &events[i]
		pid, tid := int64(e.Node), int64(e.Flow)
		if !pidSeen[pid] {
			pidSeen[pid] = true
			pids = append(pids, pid)
		}
		pt := pidTid{pid, tid}
		if !thrSeen[pt] {
			thrSeen[pt] = true
			threads = append(threads, pt)
		}
		k := pktKey{e.Node, e.Flow, e.Seq}
		switch e.Op {
		case trace.OpEnqueue:
			openEnq[k] = i
		case trace.OpPark:
			openPark[k] = i
		case trace.OpCredit:
			// Arrow source: remember the emission; the unpark it triggers
			// names this switch in Aux and the credited destination in Dst.
			ck := creditKey{e.Node, e.Aux}
			credits[ck] = append(credits[ck], i)
		case trace.OpUnpark:
			if j, ok := openPark[k]; ok {
				spanDur[j] = int64(e.At) - int64(events[j].At)
				spanName[j] = "PARKED"
				delete(openPark, k)
			}
			ck := creditKey{e.Aux, e.Dst}
			if st := credits[ck]; len(st) > 0 {
				ci := st[len(st)-1] // latest credit from that switch wins
				credits[ck] = st[:len(st)-1]
				id := nextArrow
				nextArrow++
				arrowAt[ci] = append(arrowAt[ci], arrowRec{ph: "s", id: id})
				arrowAt[i] = append(arrowAt[i], arrowRec{ph: "t", id: id})
				pendFin[k] = id // finish at this packet's next transmit here
			}
		case trace.OpTx:
			if j, ok := openEnq[k]; ok {
				spanDur[j] = int64(e.At) - int64(events[j].At)
				spanName[j] = "QUEUED"
				delete(openEnq, k)
			}
			if id, ok := pendFin[k]; ok {
				arrowAt[i] = append(arrowAt[i], arrowRec{ph: "f", id: id})
				delete(pendFin, k)
			}
		}
	}
	sort.Slice(pids, func(a, b int) bool { return pids[a] < pids[b] })
	sort.Slice(threads, func(a, b int) bool {
		if threads[a].pid != threads[b].pid {
			return threads[a].pid < threads[b].pid
		}
		return threads[a].tid < threads[b].tid
	})

	// Pass 2: metadata records, then events in recorded order.
	sep := ""
	emit := func(format string, args ...any) {
		cw.str(sep)
		sep = ","
		cw.printf(format, args...)
	}
	for _, pid := range pids {
		emit(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"node %d"}}`, pid, pid)
	}
	for _, pt := range threads {
		emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"flow %d"}}`, pt.pid, pt.tid, pt.tid)
	}
	for i := range events {
		e := &events[i]
		ps := int64(e.At)
		if d, ok := spanDur[i]; ok {
			emit(`{"name":%q,"ph":"X","ts":%d.%06d,"dur":%d.%06d,"pid":%d,"tid":%d,"args":{"kind":%q,"seq":%d,"size":%d,"dst":%d}}`,
				spanName[i], ps/1e6, ps%1e6, d/1e6, d%1e6, int64(e.Node), int64(e.Flow),
				e.Kind.String(), int64(e.Seq), int64(e.Size), int64(e.Dst))
		} else {
			// ph "i" (instant), scope "p" (process = node row).
			emit(`{"name":%q,"ph":"i","s":"p","ts":%d.%06d,"pid":%d,"tid":%d,"args":{"kind":%q,"seq":%d,"size":%d,"dst":%d}}`,
				e.Op.String(), ps/1e6, ps%1e6, int64(e.Node), int64(e.Flow),
				e.Kind.String(), int64(e.Seq), int64(e.Size), int64(e.Dst))
		}
		for _, ar := range arrowAt[i] {
			extra := ""
			if ar.ph == "f" {
				extra = `,"bp":"e"` // bind the arrow head to the enclosing slice
			}
			emit(`{"name":"credit-unpark","cat":"flow","ph":%q,"id":%d,"ts":%d.%06d,"pid":%d,"tid":%d%s}`,
				ar.ph, ar.id, ps/1e6, ps%1e6, int64(e.Node), int64(e.Flow), extra)
		}
	}
	cw.str("]}\n")
	return cw.err
}
