package topo

import (
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// Partition assigns every node to one of k shards for the sharded
// conservative-window executor. The cut is chosen so that no host-ToR
// link ever crosses a shard boundary: ToRs are dealt round-robin in ID
// order, each host follows its ToR, and the remaining switches (agg,
// core) are dealt round-robin over their own ID order. Only
// switch-switch links cross shards, which is what lets Lookahead bound
// the barrier window by the minimum switch-switch wire latency.
//
// The assignment is a pure function of (topology, k): byte-identical
// runs at any GOMAXPROCS depend on it.
func Partition(t *Topology, k int) []int {
	if k < 1 {
		k = 1
	}
	assign := make([]int, len(t.Nodes))
	nextToR, nextUpper := 0, 0
	for _, n := range t.Nodes {
		switch {
		case n.Kind == HostNode:
			// Hosts are assigned after their ToR below; a host's single
			// port faces its ToR, whose ID may be larger, so defer.
			assign[n.ID] = -1
		case n.Layer == LayerToR:
			assign[n.ID] = nextToR % k
			nextToR++
		default:
			assign[n.ID] = nextUpper % k
			nextUpper++
		}
	}
	for _, id := range t.Hosts {
		n := t.Nodes[id]
		tor := n.Ports[0].Peer
		assign[id] = assign[tor]
	}
	return assign
}

// Lookahead returns the conservative barrier-window length for the
// sharded executor: the minimum, over every switch-switch link, of
// propagation delay plus the serialization time of the smallest frame
// (a control packet). A frame emitted inside a window at time t > u
// reaches the far shard strictly after u + Lookahead, so shards that
// exchange frames only at window boundaries never receive one late.
//
// Host-ToR links never cross shards under Partition, so they do not
// constrain the window. A degenerate topology with no switch-switch
// links falls back to the minimum over all links.
func Lookahead(t *Topology) units.Duration {
	min := units.Duration(0)
	consider := func(p *Port, peerKind NodeKind) {
		if p.Class == ClassHost || peerKind == HostNode {
			return
		}
		d := p.Prop + units.TxTime(packet.CtrlSize, p.Rate)
		if min == 0 || d < min {
			min = d
		}
	}
	for _, n := range t.Nodes {
		if n.Kind == HostNode {
			continue
		}
		for i := range n.Ports {
			p := &n.Ports[i]
			consider(p, t.Nodes[p.Peer].Kind)
		}
	}
	if min == 0 {
		for _, n := range t.Nodes {
			for i := range n.Ports {
				p := &n.Ports[i]
				d := p.Prop + units.TxTime(packet.CtrlSize, p.Rate)
				if min == 0 || d < min {
					min = d
				}
			}
		}
	}
	return min
}
