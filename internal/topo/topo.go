// Package topo models datacenter topologies: nodes (hosts and
// switches arranged in layers), full-duplex links broken into directed
// ports, shortest-path multipath routing, and the port-class taxonomy
// the paper reports buffer occupancy against (ToR-Up, Core, ToR-Down,
// Edge-Up, Agg-Up, ...).
package topo

import (
	"fmt"

	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// NodeKind distinguishes end hosts from switches.
type NodeKind uint8

// Node kinds.
const (
	HostNode NodeKind = iota
	SwitchNode
)

// Layer places a node in the fabric hierarchy.
type Layer uint8

// Fabric layers, bottom-up.
const (
	LayerHost Layer = iota
	LayerToR        // edge/ToR switches (first and last switch hop)
	LayerAgg        // aggregation/leaf switches (3-tier only)
	LayerCore       // core/spine switches
)

func (l Layer) String() string {
	switch l {
	case LayerHost:
		return "host"
	case LayerToR:
		return "tor"
	case LayerAgg:
		return "agg"
	case LayerCore:
		return "core"
	}
	return fmt.Sprintf("layer(%d)", uint8(l))
}

// PortClass is the paper's reporting bucket for an egress port.
type PortClass uint8

// Port classes. Host ports are host NIC egress queues. For 2-tier
// topologies only ToRUp/ToRDown/CoreDown/CoreUp exist; 3-tier adds the
// Edge/Agg classes (paper Fig. 13 naming).
const (
	ClassHost    PortClass = iota
	ClassToRUp             // ToR port facing the fabric (packets' first switch hop upward)
	ClassToRDown           // ToR port facing hosts (packets' last hop)
	ClassCore              // any core/spine port
	ClassAggUp             // aggregation port facing cores
	ClassAggDown           // aggregation port facing ToRs
	NumPortClasses
)

var classNames = [NumPortClasses]string{"Host", "ToR-Up", "ToR-Down", "Core", "Agg-Up", "Agg-Down"}

func (c PortClass) String() string {
	if c < NumPortClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Port is one direction of a link: the transmit side owned by Owner.
type Port struct {
	Owner    packet.NodeID
	Index    int // position within Owner's port list
	Peer     packet.NodeID
	PeerPort int // the reverse-direction port index at Peer
	Rate     units.BitRate
	Prop     units.Duration
	Class    PortClass
}

// BDP returns the one-hop bandwidth-delay product of this port: the
// bytes in flight over a full round trip to the peer (2×propagation)
// plus one MTU of serialization slack. Floodgate initialises per-dst
// windows from this.
func (p *Port) BDP() units.ByteSize {
	return units.BytesOver(p.Rate, 2*p.Prop) + packet.MTU
}

// Node is a device: a host (one port) or a switch (many ports).
type Node struct {
	ID    packet.NodeID
	Kind  NodeKind
	Layer Layer
	Pod   int // pod/zone index (3-tier); -1 when not applicable
	Rack  int // rack index for ToRs and hosts; -1 otherwise
	Name  string
	Ports []Port
}

// Topology is an immutable network graph with precomputed multipath
// routes from every node to every host. Immutability is load-bearing:
// after Build() nothing writes to nodes, ports or routes (the device
// layer only takes pointers into them), so one Topology may be shared
// by concurrent simulation runs (exp.RunMany) without synchronisation.
type Topology struct {
	Nodes []*Node
	Hosts []packet.NodeID // all host IDs in ID order

	hostIdx []int     // NodeID -> dense host index, -1 for switches
	routes  [][][]int // [nodeID][hostIdx] -> candidate egress port indices
}

// Node returns the node with the given ID.
func (t *Topology) Node(id packet.NodeID) *Node { return t.Nodes[id] }

// HostIndex returns the dense index of a host node, or -1.
func (t *Topology) HostIndex(id packet.NodeID) int { return t.hostIdx[id] }

// NumHosts returns the number of hosts.
func (t *Topology) NumHosts() int { return len(t.Hosts) }

// NextPorts returns every shortest-path egress port index at node n
// toward destination host dst. Empty only if n == dst.
func (t *Topology) NextPorts(n, dst packet.NodeID) []int {
	return t.routes[n][t.hostIdx[dst]]
}

// ECMP picks one egress port for a (src, dst) pair among the
// equal-cost candidates. The hash depends only on the pair, so all
// flows between the same hosts share one path (the paper's §3.2
// assumption for per-dst windows).
func (t *Topology) ECMP(n, src, dst packet.NodeID) int {
	ports := t.NextPorts(n, dst)
	if len(ports) == 1 {
		return ports[0]
	}
	h := pairHash(uint64(src), uint64(dst))
	return ports[h%uint64(len(ports))]
}

// PairHash exposes the ECMP pair hash so the device layer can
// replicate route selection over a reduced (live) port subset when
// fault injection takes links out of service.
func PairHash(a, b uint64) uint64 { return pairHash(a, b) }

func pairHash(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ b*0xc2b2ae3d27d4eb4f
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

// SamePod reports whether destination host dst lives under the same
// pod as switch n (Floodgate's downstream/upstream VOQ grouping).
func (t *Topology) SamePod(n, dst packet.NodeID) bool {
	return t.Nodes[n].Pod >= 0 && t.Nodes[n].Pod == t.Nodes[dst].Pod
}

// builder assembles nodes and links then freezes them into a Topology.
type builder struct {
	nodes []*Node
}

func (b *builder) addNode(kind NodeKind, layer Layer, pod, rack int, name string) packet.NodeID {
	id := packet.NodeID(len(b.nodes))
	b.nodes = append(b.nodes, &Node{ID: id, Kind: kind, Layer: layer, Pod: pod, Rack: rack, Name: name})
	return id
}

// connect adds a full-duplex link between a and b as two directed
// ports with the given rate, propagation delay and per-direction class.
func (b *builder) connect(a, bb packet.NodeID, rate units.BitRate, prop units.Duration, aClass, bClass PortClass) {
	na, nb := b.nodes[a], b.nodes[bb]
	pa := Port{Owner: a, Index: len(na.Ports), Peer: bb, Rate: rate, Prop: prop, Class: aClass}
	pb := Port{Owner: bb, Index: len(nb.Ports), Peer: a, Rate: rate, Prop: prop, Class: bClass}
	pa.PeerPort = pb.Index
	pb.PeerPort = pa.Index
	na.Ports = append(na.Ports, pa)
	nb.Ports = append(nb.Ports, pb)
}

// freeze computes routes and returns the immutable topology.
func (b *builder) freeze() *Topology {
	t := &Topology{Nodes: b.nodes}
	t.hostIdx = make([]int, len(b.nodes))
	for i := range t.hostIdx {
		t.hostIdx[i] = -1
	}
	for _, n := range b.nodes {
		if n.Kind == HostNode {
			t.hostIdx[n.ID] = len(t.Hosts)
			t.Hosts = append(t.Hosts, n.ID)
		}
	}
	t.computeRoutes()
	return t
}

// computeRoutes runs one reverse BFS per host, collecting every
// equal-cost next hop at every node.
func (t *Topology) computeRoutes() {
	n := len(t.Nodes)
	t.routes = make([][][]int, n)
	for i := range t.routes {
		t.routes[i] = make([][]int, len(t.Hosts))
	}
	dist := make([]int, n)
	queue := make([]packet.NodeID, 0, n)
	// Each port appears in at most one next-hop set per host, so one
	// arena of totalPorts entries per host backs every route slice of
	// that host — one allocation instead of one per (node, host).
	totalPorts := 0
	for _, node := range t.Nodes {
		totalPorts += len(node.Ports)
	}
	for hi, h := range t.Hosts {
		for i := range dist {
			dist[i] = -1
		}
		dist[h] = 0
		queue = queue[:0]
		queue = append(queue, h)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, p := range t.Nodes[cur].Ports {
				// Traverse the reverse direction: peer can reach cur.
				peer := p.Peer
				if dist[peer] == -1 {
					dist[peer] = dist[cur] + 1
					queue = append(queue, peer)
				}
			}
		}
		// A node's next hops toward h are all ports whose peer is one
		// step closer. Hosts never forward transit traffic: their only
		// next hop is their ToR uplink, which the BFS yields naturally.
		arena := make([]int, 0, totalPorts)
		for _, node := range t.Nodes {
			if node.ID == h || dist[node.ID] == -1 {
				continue
			}
			lo := len(arena)
			for i, p := range node.Ports {
				if d := dist[p.Peer]; d >= 0 && d == dist[node.ID]-1 {
					arena = append(arena, i)
				}
			}
			t.routes[node.ID][hi] = arena[lo:len(arena):len(arena)]
		}
	}
}
