// Package topo models datacenter topologies: nodes (hosts and
// switches arranged in layers), full-duplex links broken into directed
// ports, shortest-path multipath routing, and the port-class taxonomy
// the paper reports buffer occupancy against (ToR-Up, Core, ToR-Down,
// Edge-Up, Agg-Up, ...).
package topo

import (
	"fmt"
	"unsafe"

	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// NodeKind distinguishes end hosts from switches.
type NodeKind uint8

// Node kinds.
const (
	HostNode NodeKind = iota
	SwitchNode
)

// Layer places a node in the fabric hierarchy.
type Layer uint8

// Fabric layers, bottom-up.
const (
	LayerHost Layer = iota
	LayerToR        // edge/ToR switches (first and last switch hop)
	LayerAgg        // aggregation/leaf switches (3-tier only)
	LayerCore       // core/spine switches
)

func (l Layer) String() string {
	switch l {
	case LayerHost:
		return "host"
	case LayerToR:
		return "tor"
	case LayerAgg:
		return "agg"
	case LayerCore:
		return "core"
	}
	return fmt.Sprintf("layer(%d)", uint8(l))
}

// PortClass is the paper's reporting bucket for an egress port.
type PortClass uint8

// Port classes. Host ports are host NIC egress queues. For 2-tier
// topologies only ToRUp/ToRDown/CoreDown/CoreUp exist; 3-tier adds the
// Edge/Agg classes (paper Fig. 13 naming).
const (
	ClassHost    PortClass = iota
	ClassToRUp             // ToR port facing the fabric (packets' first switch hop upward)
	ClassToRDown           // ToR port facing hosts (packets' last hop)
	ClassCore              // any core/spine port
	ClassAggUp             // aggregation port facing cores
	ClassAggDown           // aggregation port facing ToRs
	NumPortClasses
)

var classNames = [NumPortClasses]string{"Host", "ToR-Up", "ToR-Down", "Core", "Agg-Up", "Agg-Down"}

func (c PortClass) String() string {
	if c < NumPortClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Port is one direction of a link: the transmit side owned by Owner.
type Port struct {
	Owner    packet.NodeID
	Index    int // position within Owner's port list
	Peer     packet.NodeID
	PeerPort int // the reverse-direction port index at Peer
	Rate     units.BitRate
	Prop     units.Duration
	Class    PortClass
}

// BDP returns the one-hop bandwidth-delay product of this port: the
// bytes in flight over a full round trip to the peer (2×propagation)
// plus one MTU of serialization slack. Floodgate initialises per-dst
// windows from this.
func (p *Port) BDP() units.ByteSize {
	return units.BytesOver(p.Rate, 2*p.Prop) + packet.MTU
}

// Node is a device: a host (one port) or a switch (many ports).
type Node struct {
	ID    packet.NodeID
	Kind  NodeKind
	Layer Layer
	Pod   int // pod/zone index (3-tier); -1 when not applicable
	Rack  int // rack index for ToRs and hosts; -1 otherwise
	Name  string
	Ports []Port
}

// Topology is an immutable network graph with multipath routes from
// every node to every host, answered by a Router chosen at freeze():
// structural index arithmetic for regular Clos fabrics (O(total
// ports) memory), dense BFS tables as the fallback for irregular
// ones (see router.go). Immutability is load-bearing: after Build()
// nothing writes to nodes, ports or router state (the device layer
// only takes pointers into them), so one Topology may be shared by
// concurrent simulation runs (exp.RunMany) without synchronisation.
type Topology struct {
	Nodes []*Node
	Hosts []packet.NodeID // all host IDs in ID order

	hostIdx []int // NodeID -> dense host index, -1 for switches
	router  Router
}

// Node returns the node with the given ID.
func (t *Topology) Node(id packet.NodeID) *Node { return t.Nodes[id] }

// HostIndex returns the dense index of a host node, or -1.
func (t *Topology) HostIndex(id packet.NodeID) int { return t.hostIdx[id] }

// NumHosts returns the number of hosts.
func (t *Topology) NumHosts() int { return len(t.Hosts) }

// NextPorts returns every shortest-path egress port index at node n
// toward destination host dst, in ascending port order. Empty only
// if n == dst. Panics with a clear message when dst is not a host —
// a switch or out-of-range ID here is always a caller bug, and the
// old unchecked hostIdx lookup surfaced it as a cryptic
// "index out of range [-1]". The returned slice is shared and
// immutable; callers must not modify it.
func (t *Topology) NextPorts(n, dst packet.NodeID) []int {
	return t.router.NextPorts(n, t.mustHostIndex(dst))
}

// mustHostIndex resolves dst to its dense host index, panicking with
// an actionable message for switches and out-of-range IDs.
func (t *Topology) mustHostIndex(dst packet.NodeID) int {
	if int(dst) < 0 || int(dst) >= len(t.hostIdx) || t.hostIdx[dst] < 0 {
		panic(fmt.Sprintf("topo: dst %d is not a host", dst))
	}
	return t.hostIdx[dst]
}

// Router exposes the route implementation the topology froze with
// (the scale gauges and equivalence tests read it; the device layer
// goes through NextPorts/ECMP).
func (t *Topology) Router() Router { return t.router }

// RouterKind names the active route implementation: "structural" for
// the O(total ports) Clos router, "dense" for the BFS fallback.
func (t *Topology) RouterKind() string { return t.router.Kind() }

// RouteBytes is the resident memory of the active router — the
// route_bytes scale gauge.
func (t *Topology) RouteBytes() int64 { return t.router.Bytes() }

// TotalPorts counts directed ports across all nodes (two per link).
func (t *Topology) TotalPorts() int {
	total := 0
	for _, n := range t.Nodes {
		total += len(n.Ports)
	}
	return total
}

// StructBytes estimates the topology graph's own resident memory —
// node and port structs plus the host index — excluding the router
// (RouteBytes). Together they give the deterministic bytes-per-host
// scale gauge.
func (t *Topology) StructBytes() int64 {
	var node Node
	var port Port
	b := int64(len(t.Nodes)) * int64(unsafe.Sizeof(&node)+unsafe.Sizeof(node))
	b += int64(t.TotalPorts()) * int64(unsafe.Sizeof(port))
	b += int64(len(t.hostIdx)) * int64(unsafe.Sizeof(int(0)))
	b += int64(len(t.Hosts)) * int64(unsafe.Sizeof(packet.NodeID(0)))
	return b
}

// ECMP picks one egress port for a (src, dst) pair among the
// equal-cost candidates. The hash depends only on the pair, so all
// flows between the same hosts share one path (the paper's §3.2
// assumption for per-dst windows).
func (t *Topology) ECMP(n, src, dst packet.NodeID) int {
	ports := t.NextPorts(n, dst)
	if len(ports) == 1 {
		return ports[0]
	}
	h := pairHash(uint64(src), uint64(dst))
	return ports[h%uint64(len(ports))]
}

// PairHash exposes the ECMP pair hash so the device layer can
// replicate route selection over a reduced (live) port subset when
// fault injection takes links out of service.
func PairHash(a, b uint64) uint64 { return pairHash(a, b) }

func pairHash(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ b*0xc2b2ae3d27d4eb4f
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

// SamePod reports whether destination host dst lives under the same
// pod as switch n (Floodgate's downstream/upstream VOQ grouping).
// Like NextPorts, it panics with a clear message when dst is not a
// host.
func (t *Topology) SamePod(n, dst packet.NodeID) bool {
	t.mustHostIndex(dst)
	return t.Nodes[n].Pod >= 0 && t.Nodes[n].Pod == t.Nodes[dst].Pod
}

// builder assembles nodes and links then freezes them into a Topology.
type builder struct {
	nodes []*Node
	// forceDense skips structural inference at freeze(): set by
	// builders that model irregular fabrics (the DPDK testbed) where
	// the dense BFS tables are the validation reference.
	forceDense bool
}

func (b *builder) addNode(kind NodeKind, layer Layer, pod, rack int, name string) packet.NodeID {
	id := packet.NodeID(len(b.nodes))
	b.nodes = append(b.nodes, &Node{ID: id, Kind: kind, Layer: layer, Pod: pod, Rack: rack, Name: name})
	return id
}

// connect adds a full-duplex link between a and b as two directed
// ports with the given rate, propagation delay and per-direction class.
func (b *builder) connect(a, bb packet.NodeID, rate units.BitRate, prop units.Duration, aClass, bClass PortClass) {
	na, nb := b.nodes[a], b.nodes[bb]
	pa := Port{Owner: a, Index: len(na.Ports), Peer: bb, Rate: rate, Prop: prop, Class: aClass}
	pb := Port{Owner: bb, Index: len(nb.Ports), Peer: a, Rate: rate, Prop: prop, Class: bClass}
	pa.PeerPort = pb.Index
	pb.PeerPort = pa.Index
	na.Ports = append(na.Ports, pa)
	nb.Ports = append(nb.Ports, pb)
}

// freeze indexes the hosts, chooses the router and returns the
// immutable topology. Structural routing is preferred whenever
// inference recognises a regular Clos shape (every built-in builder
// except the testbed, which forces the dense reference); otherwise
// the dense BFS fallback keeps irregular fabrics routable at the old
// O(nodes × hosts) cost.
func (b *builder) freeze() *Topology {
	t := &Topology{Nodes: b.nodes}
	t.hostIdx = make([]int, len(b.nodes))
	for i := range t.hostIdx {
		t.hostIdx[i] = -1
	}
	for _, n := range b.nodes {
		if n.Kind == HostNode {
			t.hostIdx[n.ID] = len(t.Hosts)
			t.Hosts = append(t.Hosts, n.ID)
		}
	}
	if !b.forceDense {
		if r, err := NewStructuralRouter(t); err == nil {
			t.router = r
			return t
		}
	}
	t.router = NewDenseRouter(t)
	return t
}
