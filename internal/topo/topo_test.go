package topo

import (
	"testing"
	"testing/quick"

	"floodgate/internal/packet"
	"floodgate/internal/units"
)

func TestLeafSpineShape(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	if got := tp.NumHosts(); got != 160 {
		t.Fatalf("hosts = %d, want 160", got)
	}
	spines, tors := 0, 0
	for _, n := range tp.Nodes {
		switch {
		case n.Kind == SwitchNode && n.Layer == LayerCore:
			spines++
			if len(n.Ports) != 10 {
				t.Fatalf("spine %s has %d ports, want 10", n.Name, len(n.Ports))
			}
		case n.Kind == SwitchNode && n.Layer == LayerToR:
			tors++
			if len(n.Ports) != 20 {
				t.Fatalf("tor %s has %d ports, want 20 (4 up + 16 down)", n.Name, len(n.Ports))
			}
		case n.Kind == HostNode:
			if len(n.Ports) != 1 {
				t.Fatalf("host %s has %d ports", n.Name, len(n.Ports))
			}
		}
	}
	if spines != 4 || tors != 10 {
		t.Fatalf("spines=%d tors=%d, want 4/10", spines, tors)
	}
}

func TestPortSymmetry(t *testing.T) {
	for _, tp := range []*Topology{
		DefaultLeafSpine().Build(),
		DefaultFatTree().Build(),
		DefaultTestbed().Build(),
	} {
		for _, n := range tp.Nodes {
			for i, p := range n.Ports {
				if p.Owner != n.ID || p.Index != i {
					t.Fatalf("%s port %d: bad owner/index", n.Name, i)
				}
				back := tp.Node(p.Peer).Ports[p.PeerPort]
				if back.Peer != n.ID || back.PeerPort != i {
					t.Fatalf("%s port %d: asymmetric reverse port", n.Name, i)
				}
				if back.Rate != p.Rate || back.Prop != p.Prop {
					t.Fatalf("%s port %d: rate/prop asymmetry", n.Name, i)
				}
			}
		}
	}
}

func TestPortClasses(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	for _, n := range tp.Nodes {
		for _, p := range n.Ports {
			peer := tp.Node(p.Peer)
			switch {
			case n.Kind == HostNode:
				if p.Class != ClassHost {
					t.Fatalf("host port classified %v", p.Class)
				}
			case n.Layer == LayerToR && peer.Kind == HostNode:
				if p.Class != ClassToRDown {
					t.Fatalf("ToR->host port classified %v", p.Class)
				}
			case n.Layer == LayerToR && peer.Layer == LayerCore:
				if p.Class != ClassToRUp {
					t.Fatalf("ToR->spine port classified %v", p.Class)
				}
			case n.Layer == LayerCore:
				if p.Class != ClassCore {
					t.Fatalf("spine port classified %v", p.Class)
				}
			}
		}
	}
}

func TestRoutesLeafSpine(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	src, dst := tp.Hosts[0], tp.Hosts[159] // different racks
	// Host's only route is its uplink.
	if got := tp.NextPorts(src, dst); len(got) != 1 {
		t.Fatalf("host next ports = %v", got)
	}
	// Source ToR should have 4 equal-cost spine uplinks.
	tor := tp.Node(src).Ports[0].Peer
	if got := tp.NextPorts(tor, dst); len(got) != 4 {
		t.Fatalf("ToR ECMP fanout = %d, want 4", len(got))
	}
	// Same-rack destination: exactly one down port.
	sameRack := tp.Hosts[1]
	got := tp.NextPorts(tor, sameRack)
	if len(got) != 1 {
		t.Fatalf("same-rack next ports = %v", got)
	}
	if tp.Node(tor).Ports[got[0]].Peer != sameRack {
		t.Fatal("same-rack route does not lead to the host")
	}
	// Spine to any host: single down port to the right ToR.
	for _, n := range tp.Nodes {
		if n.Layer != LayerCore {
			continue
		}
		ports := tp.NextPorts(n.ID, dst)
		if len(ports) != 1 {
			t.Fatalf("spine %s has %d routes to host", n.Name, len(ports))
		}
	}
}

func TestECMPStablePerPair(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	src, dst := tp.Hosts[3], tp.Hosts[40]
	tor := tp.Node(src).Ports[0].Peer
	first := tp.ECMP(tor, src, dst)
	for i := 0; i < 50; i++ {
		if tp.ECMP(tor, src, dst) != first {
			t.Fatal("ECMP not stable for a fixed (src,dst) pair")
		}
	}
}

func TestECMPSpreadsAcrossPairs(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	dst := tp.Hosts[150]
	tor := tp.Node(tp.Hosts[0]).Ports[0].Peer
	used := map[int]bool{}
	for i := 0; i < 16; i++ {
		used[tp.ECMP(tor, tp.Hosts[i], dst)] = true
	}
	if len(used) < 2 {
		t.Fatalf("ECMP used only %d uplinks across 16 sources", len(used))
	}
}

func TestFatTreeShape(t *testing.T) {
	tp := DefaultFatTree().Build()
	if tp.NumHosts() != 128 {
		t.Fatalf("fat-tree hosts = %d, want 128", tp.NumHosts())
	}
	var cores, aggs, edges int
	for _, n := range tp.Nodes {
		if n.Kind != SwitchNode {
			continue
		}
		switch n.Layer {
		case LayerCore:
			cores++
		case LayerAgg:
			aggs++
		case LayerToR:
			edges++
		}
	}
	if cores != 16 || aggs != 32 || edges != 32 {
		t.Fatalf("cores=%d aggs=%d edges=%d, want 16/32/32", cores, aggs, edges)
	}
}

func TestFatTreeRoutesAndPods(t *testing.T) {
	tp := DefaultFatTree().Build()
	// Cross-pod route from an edge must fan out across all 4 aggs.
	src := tp.Hosts[0]
	dst := tp.Hosts[127]
	if tp.Node(src).Pod == tp.Node(dst).Pod {
		t.Fatal("test expects cross-pod pair")
	}
	edge := tp.Node(src).Ports[0].Peer
	if got := len(tp.NextPorts(edge, dst)); got != 4 {
		t.Fatalf("edge cross-pod fanout = %d, want 4", got)
	}
	// SamePod classification.
	if !tp.SamePod(edge, src) {
		t.Fatal("edge should be in the same pod as its host")
	}
	if tp.SamePod(edge, dst) {
		t.Fatal("cross-pod host misclassified as same pod")
	}
	// Agg cross-pod: fanout across its K/2 core uplinks.
	agg := tp.Node(edge).Ports[0].Peer
	if tp.Node(agg).Layer != LayerAgg {
		t.Fatalf("edge port 0 peer layer = %v", tp.Node(agg).Layer)
	}
	if got := len(tp.NextPorts(agg, dst)); got != 4 {
		t.Fatalf("agg cross-pod fanout = %d, want 4", got)
	}
}

func TestRoutesReachabilityAllPairs(t *testing.T) {
	for _, tp := range []*Topology{
		LeafSpineConfig{Spines: 2, ToRs: 3, HostsPerToR: 2, HostRate: units.Gbps, SpineRate: units.Gbps, Prop: units.Nanosecond}.Build(),
		FatTreeConfig{K: 4, Rate: units.Gbps, Prop: units.Nanosecond}.Build(),
		DefaultTestbed().Build(),
	} {
		for _, src := range tp.Hosts {
			for _, dst := range tp.Hosts {
				if src == dst {
					continue
				}
				// Walk the route hop by hop; must terminate at dst without loops.
				cur := src
				for hops := 0; cur != dst; hops++ {
					if hops > 10 {
						t.Fatalf("routing loop from %d to %d", src, dst)
					}
					p := tp.Node(cur).Ports[tp.ECMP(cur, src, dst)]
					cur = p.Peer
				}
			}
		}
	}
}

func TestTestbedShape(t *testing.T) {
	tp := DefaultTestbed().Build()
	if tp.NumHosts() != 6 {
		t.Fatalf("testbed hosts = %d, want 6", tp.NumHosts())
	}
	// Base BDP should be ~45KB per the paper: host rate 10Gbps, RTT over
	// 4 hops ≈ 36us -> 45KB.
	var hostPort *Port
	for _, n := range tp.Nodes {
		if n.Kind == HostNode {
			hostPort = &n.Ports[0]
			break
		}
	}
	rtt := 8 * hostPort.Prop // 4 links each way
	bdp := units.BDP(hostPort.Rate, rtt)
	if bdp < 40*units.KB || bdp > 50*units.KB {
		t.Fatalf("testbed base BDP = %v, want ~45KB", bdp)
	}
}

func TestPortBDP(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	tor := tp.Node(tp.Hosts[0]).Ports[0].Peer
	var up *Port
	for i := range tp.Node(tor).Ports {
		p := &tp.Node(tor).Ports[i]
		if p.Class == ClassToRUp {
			up = p
			break
		}
	}
	// 400Gbps * 1.2us = 60KB + MTU.
	want := units.ByteSize(60000) + packet.MTU
	if got := up.BDP(); got != want {
		t.Fatalf("uplink BDP = %d, want %d", got, want)
	}
}

func TestOversubscribedUplinks(t *testing.T) {
	c := DefaultLeafSpine()
	c.Oversubscription = 4
	tp := c.Build()
	for _, n := range tp.Nodes {
		if n.Layer != LayerToR {
			continue
		}
		for _, p := range n.Ports {
			if p.Class == ClassToRUp && p.Rate != 100*units.Gbps {
				t.Fatalf("oversubscribed uplink rate = %v, want 100Gbps", p.Rate)
			}
		}
	}
}

func TestHostIndexDense(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	seen := map[int]bool{}
	for _, h := range tp.Hosts {
		idx := tp.HostIndex(h)
		if idx < 0 || idx >= tp.NumHosts() || seen[idx] {
			t.Fatalf("bad host index %d", idx)
		}
		seen[idx] = true
	}
	for _, n := range tp.Nodes {
		if n.Kind == SwitchNode && tp.HostIndex(n.ID) != -1 {
			t.Fatal("switch has a host index")
		}
	}
}

func TestPairHashDeterministicAndSpread(t *testing.T) {
	f := func(a, b uint32) bool {
		x := pairHash(uint64(a), uint64(b))
		return x == pairHash(uint64(a), uint64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	buckets := make([]int, 4)
	for i := 0; i < 4096; i++ {
		buckets[pairHash(uint64(i), 7)%4]++
	}
	for i, c := range buckets {
		if c < 800 || c > 1250 {
			t.Fatalf("pairHash bucket %d count %d far from uniform", i, c)
		}
	}
}
