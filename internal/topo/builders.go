package topo

import (
	"fmt"

	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// LeafSpineConfig describes the paper's main 2-tier non-blocking
// evaluation fabric (§6): 4 spines, 10 ToRs, 16 hosts per rack,
// 100 Gbps host links, 400 Gbps uplinks, 600 ns per-hop propagation.
type LeafSpineConfig struct {
	Spines      int
	ToRs        int
	HostsPerToR int
	HostRate    units.BitRate
	SpineRate   units.BitRate
	Prop        units.Duration
	// Oversubscription divides the uplink rate (1 = non-blocking,
	// 4 = the 4:1 fabric of Fig. 24b). Zero means 1.
	Oversubscription int
}

// DefaultLeafSpine returns the paper's §6 simulation topology.
func DefaultLeafSpine() LeafSpineConfig {
	return LeafSpineConfig{
		Spines:      4,
		ToRs:        10,
		HostsPerToR: 16,
		HostRate:    100 * units.Gbps,
		SpineRate:   400 * units.Gbps,
		Prop:        600 * units.Nanosecond,
	}
}

// Build constructs the leaf–spine topology. Every ToR connects to
// every spine. Each rack is its own pod (pods matter only for VOQ
// grouping, which 2-tier ToRs do not need, but the metadata is kept
// consistent).
func (c LeafSpineConfig) Build() *Topology {
	if c.Spines <= 0 || c.ToRs <= 0 || c.HostsPerToR <= 0 {
		panic("topo: leaf-spine dimensions must be positive")
	}
	up := c.SpineRate
	if c.Oversubscription > 1 {
		up /= units.BitRate(c.Oversubscription)
	}
	b := &builder{}
	spines := make([]packet.NodeID, 0, c.Spines)
	for s := 0; s < c.Spines; s++ {
		spines = append(spines, b.addNode(SwitchNode, LayerCore, -1, -1, fmt.Sprintf("spine%d", s)))
	}
	for r := 0; r < c.ToRs; r++ {
		tor := b.addNode(SwitchNode, LayerToR, r, r, fmt.Sprintf("tor%d", r))
		for _, s := range spines {
			b.connect(tor, s, up, c.Prop, ClassToRUp, ClassCore)
		}
		for h := 0; h < c.HostsPerToR; h++ {
			host := b.addNode(HostNode, LayerHost, r, r, fmt.Sprintf("h%d.%d", r, h))
			b.connect(tor, host, c.HostRate, c.Prop, ClassToRDown, ClassHost)
		}
	}
	return b.freeze()
}

// FatTreeConfig describes a k-ary fat tree. The paper's 3-tier fabric
// (§6.2) is k=8 with 4 hosts per edge: 16 cores, 32 aggs, 32 edges,
// 128 hosts, 16 hosts per pod.
type FatTreeConfig struct {
	K            int // even arity
	HostsPerEdge int // defaults to K/2
	Rate         units.BitRate
	Prop         units.Duration
}

// DefaultFatTree returns the paper's 8-ary fat tree.
func DefaultFatTree() FatTreeConfig {
	return FatTreeConfig{K: 8, HostsPerEdge: 4, Rate: 100 * units.Gbps, Prop: 600 * units.Nanosecond}
}

// FatTree16 returns a k=16 fat tree: 16 pods × 8 edges × 8 hosts =
// 1024 hosts, 320 switches. Small enough that the dense BFS table is
// still buildable, which makes it the benchmark point for the
// structural-vs-dense route-memory ratio.
func FatTree16() FatTreeConfig {
	return FatTreeConfig{K: 16, Rate: 100 * units.Gbps, Prop: 600 * units.Nanosecond}
}

// FatTree32 returns a k=32 fat tree: 32 pods × 16 edges × 16 hosts =
// 8192 hosts, 1280 switches. The dense table here would already be
// ~2 GB of slice headers; only the structural router makes it cheap.
func FatTree32() FatTreeConfig {
	return FatTreeConfig{K: 32, Rate: 100 * units.Gbps, Prop: 600 * units.Nanosecond}
}

// Build constructs the fat tree: K pods of K/2 edge and K/2 agg
// switches; (K/2)^2 cores. Core c connects to agg (c / (K/2)) in each
// pod. Edges are ToR-layer, aggs Agg-layer.
func (c FatTreeConfig) Build() *Topology {
	if c.K <= 0 || c.K%2 != 0 {
		panic("topo: fat tree arity must be positive and even")
	}
	half := c.K / 2
	hpe := c.HostsPerEdge
	if hpe == 0 {
		hpe = half
	}
	b := &builder{}
	cores := make([]packet.NodeID, half*half)
	for i := range cores {
		cores[i] = b.addNode(SwitchNode, LayerCore, -1, -1, fmt.Sprintf("core%d", i))
	}
	rack := 0
	for pod := 0; pod < c.K; pod++ {
		aggs := make([]packet.NodeID, half)
		for a := 0; a < half; a++ {
			aggs[a] = b.addNode(SwitchNode, LayerAgg, pod, -1, fmt.Sprintf("agg%d.%d", pod, a))
			for i := 0; i < half; i++ {
				b.connect(aggs[a], cores[a*half+i], c.Rate, c.Prop, ClassAggUp, ClassCore)
			}
		}
		for e := 0; e < half; e++ {
			edge := b.addNode(SwitchNode, LayerToR, pod, rack, fmt.Sprintf("edge%d.%d", pod, e))
			for _, a := range aggs {
				b.connect(edge, a, c.Rate, c.Prop, ClassToRUp, ClassAggDown)
			}
			for h := 0; h < hpe; h++ {
				host := b.addNode(HostNode, LayerHost, pod, rack, fmt.Sprintf("h%d.%d.%d", pod, e, h))
				b.connect(edge, host, c.Rate, c.Prop, ClassToRDown, ClassHost)
			}
			rack++
		}
	}
	return b.freeze()
}

// ClosConfig describes a multi-pod 3-tier Clos at datacenter scale:
// Pods pods, each with AggsPerPod aggregation switches, ToRsPerPod
// ToRs and HostsPerToR hosts per ToR. The spine layer is organised
// in AggsPerPod planes of SpinesPerPlane spines; aggregation switch
// a of every pod connects to every spine of plane a, so each spine
// has exactly one down port per pod — the regular shape structural
// routing compresses to O(total ports). Unlike the k-ary fat tree,
// the four dimensions scale independently, which is what reaches
// 100k+ hosts without inflating the switch radix cubically.
type ClosConfig struct {
	Pods           int
	AggsPerPod     int // uplink planes per pod
	SpinesPerPlane int // spines in each plane
	ToRsPerPod     int
	HostsPerToR    int
	HostRate       units.BitRate
	FabricRate     units.BitRate // ToR-agg and agg-spine links
	Prop           units.Duration
}

// DefaultClos returns a small 4-pod Clos (128 hosts) — the smoke and
// equivalence-test size.
func DefaultClos() ClosConfig {
	return ClosConfig{
		Pods: 4, AggsPerPod: 2, SpinesPerPlane: 2, ToRsPerPod: 4, HostsPerToR: 8,
		HostRate: 100 * units.Gbps, FabricRate: 400 * units.Gbps,
		Prop: 600 * units.Nanosecond,
	}
}

// Clos100k returns the datacenter-scale preset: 32 pods × 40 ToRs ×
// 80 hosts = 102,400 hosts and 1,472 switches. The dense route table
// here would need ~250 TB of slice headers; the structural router
// needs ~2.5 MB.
func Clos100k() ClosConfig {
	return ClosConfig{
		Pods: 32, AggsPerPod: 4, SpinesPerPlane: 16, ToRsPerPod: 40, HostsPerToR: 80,
		HostRate: 100 * units.Gbps, FabricRate: 400 * units.Gbps,
		Prop: 600 * units.Nanosecond,
	}
}

// NumHosts returns the host count the config will build.
func (c ClosConfig) NumHosts() int { return c.Pods * c.ToRsPerPod * c.HostsPerToR }

// Build constructs the multi-pod Clos. Spines are created first
// (plane-major), then pods in order: each pod's aggs connect up to
// their plane's spines before any ToR attaches, and each ToR
// connects up to every agg before its hosts — keeping every switch's
// up ports a contiguous prefix and every down-port sequence aligned
// with ascending dense host ranges, the layout structural-routing
// inference verifies at freeze().
func (c ClosConfig) Build() *Topology {
	if c.Pods <= 0 || c.AggsPerPod <= 0 || c.SpinesPerPlane <= 0 || c.ToRsPerPod <= 0 || c.HostsPerToR <= 0 {
		panic("topo: clos dimensions must be positive")
	}
	b := &builder{}
	spines := make([]packet.NodeID, c.AggsPerPod*c.SpinesPerPlane)
	for a := 0; a < c.AggsPerPod; a++ {
		for j := 0; j < c.SpinesPerPlane; j++ {
			spines[a*c.SpinesPerPlane+j] = b.addNode(SwitchNode, LayerCore, -1, -1, fmt.Sprintf("spine%d.%d", a, j))
		}
	}
	rack := 0
	for pod := 0; pod < c.Pods; pod++ {
		aggs := make([]packet.NodeID, c.AggsPerPod)
		for a := 0; a < c.AggsPerPod; a++ {
			aggs[a] = b.addNode(SwitchNode, LayerAgg, pod, -1, fmt.Sprintf("agg%d.%d", pod, a))
			for j := 0; j < c.SpinesPerPlane; j++ {
				b.connect(aggs[a], spines[a*c.SpinesPerPlane+j], c.FabricRate, c.Prop, ClassAggUp, ClassCore)
			}
		}
		for tr := 0; tr < c.ToRsPerPod; tr++ {
			tor := b.addNode(SwitchNode, LayerToR, pod, rack, fmt.Sprintf("tor%d.%d", pod, tr))
			for _, a := range aggs {
				b.connect(tor, a, c.FabricRate, c.Prop, ClassToRUp, ClassAggDown)
			}
			for h := 0; h < c.HostsPerToR; h++ {
				host := b.addNode(HostNode, LayerHost, pod, rack, fmt.Sprintf("h%d.%d.%d", pod, tr, h))
				b.connect(tor, host, c.HostRate, c.Prop, ClassToRDown, ClassHost)
			}
			rack++
		}
	}
	return b.freeze()
}

// TestbedConfig mirrors the paper's §5.2 DPDK testbed: one core
// switch, three ToRs with two hosts each, 10 Gbps host links and
// 20 Gbps uplinks, base BDP 45 KB (software-switch latency dominates,
// modelled as 4.5 µs per-hop propagation).
type TestbedConfig struct {
	ToRs        int
	HostsPerToR int
	HostRate    units.BitRate
	CoreRate    units.BitRate
	Prop        units.Duration
}

// DefaultTestbed returns the §5.2 testbed.
func DefaultTestbed() TestbedConfig {
	return TestbedConfig{
		ToRs:        3,
		HostsPerToR: 2,
		HostRate:    10 * units.Gbps,
		CoreRate:    20 * units.Gbps,
		Prop:        4500 * units.Nanosecond,
	}
}

// Build constructs the testbed star-of-ToRs topology. The testbed
// mirrors physical hardware rather than a canonical Clos, so it
// freezes with the dense BFS router — the reference implementation
// irregular and faulted-asymmetric validation fabrics fall back to.
func (c TestbedConfig) Build() *Topology {
	b := &builder{forceDense: true}
	core := b.addNode(SwitchNode, LayerCore, -1, -1, "core")
	for r := 0; r < c.ToRs; r++ {
		tor := b.addNode(SwitchNode, LayerToR, r, r, fmt.Sprintf("tor%d", r))
		b.connect(tor, core, c.CoreRate, c.Prop, ClassToRUp, ClassCore)
		for h := 0; h < c.HostsPerToR; h++ {
			host := b.addNode(HostNode, LayerHost, r, r, fmt.Sprintf("h%d.%d", r, h))
			b.connect(tor, host, c.HostRate, c.Prop, ClassToRDown, ClassHost)
		}
	}
	return b.freeze()
}
