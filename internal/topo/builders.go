package topo

import (
	"fmt"

	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// LeafSpineConfig describes the paper's main 2-tier non-blocking
// evaluation fabric (§6): 4 spines, 10 ToRs, 16 hosts per rack,
// 100 Gbps host links, 400 Gbps uplinks, 600 ns per-hop propagation.
type LeafSpineConfig struct {
	Spines      int
	ToRs        int
	HostsPerToR int
	HostRate    units.BitRate
	SpineRate   units.BitRate
	Prop        units.Duration
	// Oversubscription divides the uplink rate (1 = non-blocking,
	// 4 = the 4:1 fabric of Fig. 24b). Zero means 1.
	Oversubscription int
}

// DefaultLeafSpine returns the paper's §6 simulation topology.
func DefaultLeafSpine() LeafSpineConfig {
	return LeafSpineConfig{
		Spines:      4,
		ToRs:        10,
		HostsPerToR: 16,
		HostRate:    100 * units.Gbps,
		SpineRate:   400 * units.Gbps,
		Prop:        600 * units.Nanosecond,
	}
}

// Build constructs the leaf–spine topology. Every ToR connects to
// every spine. Each rack is its own pod (pods matter only for VOQ
// grouping, which 2-tier ToRs do not need, but the metadata is kept
// consistent).
func (c LeafSpineConfig) Build() *Topology {
	if c.Spines <= 0 || c.ToRs <= 0 || c.HostsPerToR <= 0 {
		panic("topo: leaf-spine dimensions must be positive")
	}
	up := c.SpineRate
	if c.Oversubscription > 1 {
		up /= units.BitRate(c.Oversubscription)
	}
	b := &builder{}
	spines := make([]packet.NodeID, 0, c.Spines)
	for s := 0; s < c.Spines; s++ {
		spines = append(spines, b.addNode(SwitchNode, LayerCore, -1, -1, fmt.Sprintf("spine%d", s)))
	}
	for r := 0; r < c.ToRs; r++ {
		tor := b.addNode(SwitchNode, LayerToR, r, r, fmt.Sprintf("tor%d", r))
		for _, s := range spines {
			b.connect(tor, s, up, c.Prop, ClassToRUp, ClassCore)
		}
		for h := 0; h < c.HostsPerToR; h++ {
			host := b.addNode(HostNode, LayerHost, r, r, fmt.Sprintf("h%d.%d", r, h))
			b.connect(tor, host, c.HostRate, c.Prop, ClassToRDown, ClassHost)
		}
	}
	return b.freeze()
}

// FatTreeConfig describes a k-ary fat tree. The paper's 3-tier fabric
// (§6.2) is k=8 with 4 hosts per edge: 16 cores, 32 aggs, 32 edges,
// 128 hosts, 16 hosts per pod.
type FatTreeConfig struct {
	K            int // even arity
	HostsPerEdge int // defaults to K/2
	Rate         units.BitRate
	Prop         units.Duration
}

// DefaultFatTree returns the paper's 8-ary fat tree.
func DefaultFatTree() FatTreeConfig {
	return FatTreeConfig{K: 8, HostsPerEdge: 4, Rate: 100 * units.Gbps, Prop: 600 * units.Nanosecond}
}

// Build constructs the fat tree: K pods of K/2 edge and K/2 agg
// switches; (K/2)^2 cores. Core c connects to agg (c / (K/2)) in each
// pod. Edges are ToR-layer, aggs Agg-layer.
func (c FatTreeConfig) Build() *Topology {
	if c.K <= 0 || c.K%2 != 0 {
		panic("topo: fat tree arity must be positive and even")
	}
	half := c.K / 2
	hpe := c.HostsPerEdge
	if hpe == 0 {
		hpe = half
	}
	b := &builder{}
	cores := make([]packet.NodeID, half*half)
	for i := range cores {
		cores[i] = b.addNode(SwitchNode, LayerCore, -1, -1, fmt.Sprintf("core%d", i))
	}
	rack := 0
	for pod := 0; pod < c.K; pod++ {
		aggs := make([]packet.NodeID, half)
		for a := 0; a < half; a++ {
			aggs[a] = b.addNode(SwitchNode, LayerAgg, pod, -1, fmt.Sprintf("agg%d.%d", pod, a))
			for i := 0; i < half; i++ {
				b.connect(aggs[a], cores[a*half+i], c.Rate, c.Prop, ClassAggUp, ClassCore)
			}
		}
		for e := 0; e < half; e++ {
			edge := b.addNode(SwitchNode, LayerToR, pod, rack, fmt.Sprintf("edge%d.%d", pod, e))
			for _, a := range aggs {
				b.connect(edge, a, c.Rate, c.Prop, ClassToRUp, ClassAggDown)
			}
			for h := 0; h < hpe; h++ {
				host := b.addNode(HostNode, LayerHost, pod, rack, fmt.Sprintf("h%d.%d.%d", pod, e, h))
				b.connect(edge, host, c.Rate, c.Prop, ClassToRDown, ClassHost)
			}
			rack++
		}
	}
	return b.freeze()
}

// TestbedConfig mirrors the paper's §5.2 DPDK testbed: one core
// switch, three ToRs with two hosts each, 10 Gbps host links and
// 20 Gbps uplinks, base BDP 45 KB (software-switch latency dominates,
// modelled as 4.5 µs per-hop propagation).
type TestbedConfig struct {
	ToRs        int
	HostsPerToR int
	HostRate    units.BitRate
	CoreRate    units.BitRate
	Prop        units.Duration
}

// DefaultTestbed returns the §5.2 testbed.
func DefaultTestbed() TestbedConfig {
	return TestbedConfig{
		ToRs:        3,
		HostsPerToR: 2,
		HostRate:    10 * units.Gbps,
		CoreRate:    20 * units.Gbps,
		Prop:        4500 * units.Nanosecond,
	}
}

// Build constructs the testbed star-of-ToRs topology.
func (c TestbedConfig) Build() *Topology {
	b := &builder{}
	core := b.addNode(SwitchNode, LayerCore, -1, -1, "core")
	for r := 0; r < c.ToRs; r++ {
		tor := b.addNode(SwitchNode, LayerToR, r, r, fmt.Sprintf("tor%d", r))
		b.connect(tor, core, c.CoreRate, c.Prop, ClassToRUp, ClassCore)
		for h := 0; h < c.HostsPerToR; h++ {
			host := b.addNode(HostNode, LayerHost, r, r, fmt.Sprintf("h%d.%d", r, h))
			b.connect(tor, host, c.HostRate, c.Prop, ClassToRDown, ClassHost)
		}
	}
	return b.freeze()
}
