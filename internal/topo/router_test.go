package topo

import (
	"fmt"
	"strings"
	"testing"

	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// routerPair builds both implementations for one topology, regardless
// of which one it froze with.
func routerPair(t *testing.T, tp *Topology) (*StructuralRouter, *DenseRouter) {
	t.Helper()
	sr, err := NewStructuralRouter(tp)
	if err != nil {
		t.Fatalf("structural inference failed: %v", err)
	}
	return sr, NewDenseRouter(tp)
}

func equalPorts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRouterEquivalence asserts, for every builder, that the
// structural router returns the identical ordered candidate set as
// the dense BFS oracle at every (node, host) pair. This is the proof
// obligation that lets freeze() swap implementations without
// disturbing a single ECMP choice.
func TestRouterEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Topology
	}{
		{"leafspine", func() *Topology { return DefaultLeafSpine().Build() }},
		{"leafspine-oversub4", func() *Topology {
			c := DefaultLeafSpine()
			c.Oversubscription = 4
			return c.Build()
		}},
		{"fattree-k4", func() *Topology { return FatTreeConfig{K: 4, Rate: 100 * units.Gbps, Prop: 600 * units.Nanosecond}.Build() }},
		{"fattree-k8", func() *Topology { return DefaultFatTree().Build() }},
		{"fattree-k16", func() *Topology { return FatTree16().Build() }},
		{"clos", func() *Topology { return DefaultClos().Build() }},
		// The testbed freezes dense by policy, but its star shape is
		// regular enough that structural inference succeeds — the
		// equivalence still holds, proving the fallback is a policy
		// choice, not a correctness requirement there.
		{"testbed", func() *Topology { return DefaultTestbed().Build() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tp := tc.build()
			sr, dr := routerPair(t, tp)
			for _, n := range tp.Nodes {
				for hi := range tp.Hosts {
					got, want := sr.NextPorts(n.ID, hi), dr.NextPorts(n.ID, hi)
					if !equalPorts(got, want) {
						t.Fatalf("%s -> host[%d]: structural %v != dense %v", n.Name, hi, want, got)
					}
				}
			}
		})
	}
}

// TestRouterEquivalenceSampled covers the sizes where a full dense
// table no longer fits (k=32 fat tree ~1.9 GB of headers, the 100k
// Clos ~250 TB): the structural router is checked against per-host
// BFS columns for a deterministic sample of destinations, at every
// node.
func TestRouterEquivalenceSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("large-topology sampling skipped in -short")
	}
	cases := []struct {
		name  string
		build func() *Topology
	}{
		{"fattree-k32", func() *Topology { return FatTree32().Build() }},
		{"clos100k", func() *Topology { return Clos100k().Build() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tp := tc.build()
			if got := tp.RouterKind(); got != "structural" {
				t.Fatalf("RouterKind = %q, want structural", got)
			}
			sr := tp.router.(*StructuralRouter)
			dist := make([]int, len(tp.Nodes))
			queue := make([]packet.NodeID, 0, len(tp.Nodes))
			// Deterministic sample: a fixed stride plus the edges of
			// the range, so first/last racks and pod boundaries are hit.
			sample := []int{0, 1, len(tp.Hosts)/2 - 1, len(tp.Hosts)/2, len(tp.Hosts) - 2, len(tp.Hosts) - 1}
			for hi := 0; hi < len(tp.Hosts); hi += len(tp.Hosts)/29 + 1 {
				sample = append(sample, hi)
			}
			for _, hi := range sample {
				h := tp.Hosts[hi]
				checked := make([]bool, len(tp.Nodes))
				bfsColumn(tp, h, dist, queue, func(n packet.NodeID, want []int) {
					checked[n] = true
					if got := sr.NextPorts(n, hi); !equalPorts(got, want) {
						t.Fatalf("%s -> host[%d]: structural %v != bfs %v", tp.Nodes[n].Name, hi, got, want)
					}
				})
				for _, n := range tp.Nodes {
					if !checked[n.ID] && n.ID != h {
						t.Fatalf("bfs never reached %s for host[%d]", n.Name, hi)
					}
				}
			}
		})
	}
}

// TestRouterSelection pins which implementation each builder freezes
// with: structural for every regular Clos, dense for the testbed (by
// policy) and for irregular fabrics (by inference failure).
func TestRouterSelection(t *testing.T) {
	for name, tp := range map[string]*Topology{
		"leafspine": DefaultLeafSpine().Build(),
		"fattree":   DefaultFatTree().Build(),
		"clos":      DefaultClos().Build(),
	} {
		if got := tp.RouterKind(); got != "structural" {
			t.Errorf("%s: RouterKind = %q, want structural", name, got)
		}
	}
	if got := DefaultTestbed().Build().RouterKind(); got != "dense" {
		t.Errorf("testbed: RouterKind = %q, want dense (forced)", got)
	}

	// An asymmetric fabric — one spine wired to only half the racks —
	// must fail structural inference (unequal up-peer coverage) and
	// fall back to dense, which routes it correctly.
	b := &builder{}
	s0 := b.addNode(SwitchNode, LayerCore, -1, -1, "s0")
	s1 := b.addNode(SwitchNode, LayerCore, -1, -1, "s1")
	for r := 0; r < 2; r++ {
		tor := b.addNode(SwitchNode, LayerToR, r, r, fmt.Sprintf("t%d", r))
		b.connect(tor, s0, 400*units.Gbps, units.Microsecond, ClassToRUp, ClassCore)
		if r == 0 {
			b.connect(tor, s1, 400*units.Gbps, units.Microsecond, ClassToRUp, ClassCore)
		}
		for h := 0; h < 2; h++ {
			host := b.addNode(HostNode, LayerHost, r, r, fmt.Sprintf("h%d.%d", r, h))
			b.connect(tor, host, 100*units.Gbps, units.Microsecond, ClassToRDown, ClassHost)
		}
	}
	tp := b.freeze()
	if got := tp.RouterKind(); got != "dense" {
		t.Fatalf("asymmetric fabric: RouterKind = %q, want dense fallback", got)
	}
	if _, err := NewStructuralRouter(tp); err == nil {
		t.Fatal("structural inference accepted an asymmetric fabric")
	}
	// Cross-rack reachability still works through the fallback.
	if ports := tp.NextPorts(tp.Hosts[0], tp.Hosts[3]); len(ports) != 1 {
		t.Fatalf("dense fallback broken: host uplink candidates = %v", ports)
	}
}

// TestRouteBytesRatio is the acceptance gate's memory claim: at the
// k=16 fat tree the structural router must be at least 100x smaller
// than the dense table it replaces.
func TestRouteBytesRatio(t *testing.T) {
	tp := FatTree16().Build()
	sr, dr := routerPair(t, tp)
	if sr.Bytes() <= 0 || dr.Bytes() <= 0 {
		t.Fatalf("non-positive route bytes: structural %d, dense %d", sr.Bytes(), dr.Bytes())
	}
	if ratio := dr.Bytes() / sr.Bytes(); ratio < 100 {
		t.Fatalf("dense/structural route bytes = %d/%d = %dx, want >= 100x", dr.Bytes(), sr.Bytes(), ratio)
	}
	if got := tp.RouteBytes(); got != sr.Bytes() {
		t.Fatalf("Topology.RouteBytes = %d, want structural %d", got, sr.Bytes())
	}
}

// TestStructuralBytesLinearInPorts pins the O(total ports) memory
// bound: router bytes stay within a small constant of the directed
// port count, independent of the host count.
func TestStructuralBytesLinearInPorts(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-host build skipped in -short")
	}
	tp := Clos100k().Build()
	if got, want := tp.NumHosts(), 102400; got != want {
		t.Fatalf("Clos100k hosts = %d, want %d", got, want)
	}
	if got := tp.RouterKind(); got != "structural" {
		t.Fatalf("Clos100k RouterKind = %q, want structural", got)
	}
	ports := int64(tp.TotalPorts())
	if b := tp.RouteBytes(); b > 32*ports {
		t.Fatalf("route bytes %d exceed 32 x %d directed ports — not O(total ports)", b, ports)
	}
}

// TestNextPortsRejectsNonHost is the satellite regression test: a
// switch or out-of-range dst must fail with the actionable message,
// not a cryptic index panic.
func TestNextPortsRejectsNonHost(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	sw := tp.Nodes[0].ID // spine0
	if tp.Nodes[sw].Kind != SwitchNode {
		t.Fatal("node 0 is not a switch")
	}
	mustPanic := func(name string, dst packet.NodeID, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s(dst=%d): no panic", name, dst)
			}
			want := fmt.Sprintf("topo: dst %d is not a host", dst)
			if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
				t.Fatalf("%s(dst=%d): panic %v, want %q", name, dst, r, want)
			}
		}()
		fn()
	}
	h := tp.Hosts[0]
	mustPanic("NextPorts", sw, func() { tp.NextPorts(h, sw) })
	mustPanic("ECMP", sw, func() { tp.ECMP(h, h, sw) })
	mustPanic("SamePod", sw, func() { tp.SamePod(h, sw) })
	oob := packet.NodeID(len(tp.Nodes) + 7)
	mustPanic("NextPorts", oob, func() { tp.NextPorts(h, oob) })
	mustPanic("NextPorts", -1, func() { tp.NextPorts(h, -1) })
}

// TestClosShape pins the Clos builder's metadata: counts, pods,
// racks and port classes.
func TestClosShape(t *testing.T) {
	c := DefaultClos()
	tp := c.Build()
	wantHosts := c.NumHosts()
	if len(tp.Hosts) != wantHosts {
		t.Fatalf("hosts = %d, want %d", len(tp.Hosts), wantHosts)
	}
	wantSwitches := c.AggsPerPod*c.SpinesPerPlane + c.Pods*(c.AggsPerPod+c.ToRsPerPod)
	if got := len(tp.Nodes) - wantHosts; got != wantSwitches {
		t.Fatalf("switches = %d, want %d", got, wantSwitches)
	}
	var tors, aggs, cores int
	for _, n := range tp.Nodes {
		switch {
		case n.Kind == HostNode:
			if n.Pod < 0 || n.Rack < 0 {
				t.Fatalf("host %s missing pod/rack", n.Name)
			}
		case n.Layer == LayerToR:
			tors++
			if len(n.Ports) != c.AggsPerPod+c.HostsPerToR {
				t.Fatalf("%s has %d ports", n.Name, len(n.Ports))
			}
			for i, p := range n.Ports {
				want := ClassToRDown
				if i < c.AggsPerPod {
					want = ClassToRUp
				}
				if p.Class != want {
					t.Fatalf("%s port %d class %v, want %v", n.Name, i, p.Class, want)
				}
			}
		case n.Layer == LayerAgg:
			aggs++
			if len(n.Ports) != c.SpinesPerPlane+c.ToRsPerPod {
				t.Fatalf("%s has %d ports", n.Name, len(n.Ports))
			}
		case n.Layer == LayerCore:
			cores++
			if len(n.Ports) != c.Pods {
				t.Fatalf("spine %s has %d ports, want one per pod", n.Name, len(n.Ports))
			}
		}
	}
	if tors != c.Pods*c.ToRsPerPod || aggs != c.Pods*c.AggsPerPod || cores != c.AggsPerPod*c.SpinesPerPlane {
		t.Fatalf("layer counts tor=%d agg=%d core=%d", tors, aggs, cores)
	}
	// ECMP fanout: cross-pod traffic at a ToR spreads over all uplinks.
	tor := tp.Nodes[tp.Hosts[0]].Ports[0].Peer
	if got := len(tp.NextPorts(tor, tp.Hosts[wantHosts-1])); got != c.AggsPerPod {
		t.Fatalf("ToR cross-pod fanout = %d, want %d", got, c.AggsPerPod)
	}
}
