package topo

import (
	"fmt"
	"unsafe"

	"floodgate/internal/packet"
)

// Router answers "which egress ports lead from node n toward host
// hostIdx" — the one query the device layer makes per forwarded
// packet. Two implementations exist:
//
//   - StructuralRouter: O(1) index arithmetic over per-switch records,
//     total memory O(total ports). Chosen at freeze() whenever the
//     fabric is a recognisably regular Clos (leaf-spine, fat tree,
//     multi-pod Clos) — which is every built-in builder.
//   - DenseRouter: the original per-(node, host) BFS tables,
//     O(nodes × hosts) memory. Kept as the fallback for irregular
//     topologies (the DPDK testbed mirror, faulted-asymmetric
//     validation fabrics) and as the oracle the equivalence suite
//     checks the structural router against.
//
// Both return the identical ordered candidate set at every
// (node, host) pair — ascending port index — so ECMP's pairHash
// selection, and therefore every experiment table, is bit-identical
// regardless of which router a topology froze with.
type Router interface {
	// NextPorts returns the shortest-path egress port indices at node
	// n toward the host with dense index hostIdx, in ascending port
	// order. Empty only when n is that host (or n cannot reach it).
	// The returned slice is shared and immutable: callers must not
	// modify it.
	NextPorts(n packet.NodeID, hostIdx int) []int
	// Bytes is the router's resident memory (structs + backing
	// arrays), the route_bytes scale gauge.
	Bytes() int64
	// Kind names the implementation: "structural" or "dense".
	Kind() string
}

// DenseRouter precomputes every (node, host) candidate set with one
// reverse BFS per host. Memory is O(nodes × hosts) slice headers plus
// the candidate entries themselves — fine to a few thousand hosts,
// hundreds of GB at datacenter scale.
type DenseRouter struct {
	routes [][][]int // [nodeID][hostIdx] -> candidate egress port indices
	bytes  int64
}

// NewDenseRouter runs the BFS table build for t.
func NewDenseRouter(t *Topology) *DenseRouter {
	n := len(t.Nodes)
	r := &DenseRouter{routes: make([][][]int, n)}
	for i := range r.routes {
		r.routes[i] = make([][]int, len(t.Hosts))
	}
	dist := make([]int, n)
	queue := make([]packet.NodeID, 0, n)
	totalPorts := 0
	for _, node := range t.Nodes {
		totalPorts += len(node.Ports)
	}
	entries := 0
	for hi, h := range t.Hosts {
		arena := bfsColumn(t, h, dist, queue, func(node packet.NodeID, ports []int) {
			r.routes[node][hi] = ports
		})
		entries += arena
	}
	const sliceHeader = int64(unsafe.Sizeof([]int{}))
	r.bytes = sliceHeader*int64(n) + // outer [nodeID] headers
		sliceHeader*int64(n)*int64(len(t.Hosts)) + // per-(node,host) headers
		8*int64(entries) // candidate port entries
	return r
}

// NextPorts returns the precomputed candidate set.
func (r *DenseRouter) NextPorts(n packet.NodeID, hostIdx int) []int {
	return r.routes[n][hostIdx]
}

// Bytes reports the table's resident memory.
func (r *DenseRouter) Bytes() int64 { return r.bytes }

// Kind identifies the implementation.
func (r *DenseRouter) Kind() string { return "dense" }

// bfsColumn runs one reverse BFS from host h and hands every node its
// candidate next-hop ports (ascending port index) via emit. dist and
// queue are caller-owned scratch (len(dist) == len(t.Nodes)); the
// emitted slices share one arena allocated here, sized by the total
// port count so each column costs a single allocation. Returns the
// number of candidate entries emitted. This is also the per-host
// oracle the equivalence suite samples at scales where a full dense
// table would not fit.
func bfsColumn(t *Topology, h packet.NodeID, dist []int, queue []packet.NodeID, emit func(packet.NodeID, []int)) int {
	for i := range dist {
		dist[i] = -1
	}
	dist[h] = 0
	queue = append(queue[:0], h)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range t.Nodes[cur].Ports {
			// Traverse the reverse direction: peer can reach cur.
			if peer := p.Peer; dist[peer] == -1 {
				dist[peer] = dist[cur] + 1
				queue = append(queue, peer)
			}
		}
	}
	totalPorts := 0
	for _, node := range t.Nodes {
		totalPorts += len(node.Ports)
	}
	// A node's next hops toward h are all ports whose peer is one
	// step closer. Hosts never forward transit traffic: their only
	// next hop is their ToR uplink, which the BFS yields naturally.
	arena := make([]int, 0, totalPorts)
	for _, node := range t.Nodes {
		if node.ID == h || dist[node.ID] == -1 {
			continue
		}
		lo := len(arena)
		for i, p := range node.Ports {
			if d := dist[p.Peer]; d >= 0 && d == dist[node.ID]-1 {
				arena = append(arena, i)
			}
		}
		emit(node.ID, arena[lo:len(arena):len(arena)])
	}
	return len(arena)
}

// swEntry is one node's complete routing state under the structural
// router: the contiguous dense-host-index range below it, the layout
// of its down ports (base index + uniform hosts-per-child stride),
// and its up-port index range. 24 bytes per node, independent of
// host count.
type swEntry struct {
	hostLo, hostHi int32 // dense host indexes reachable below this node: [lo, hi)
	downBase       int32 // port index of the first down port
	stride         int32 // hosts per down-subtree; 0 marks a host node
	upLo, upHi     int32 // up-port index range [upLo, upHi)
}

// StructuralRouter routes by index arithmetic. At node n toward host
// hi: if hi lies in n's subtree range, the unique down port is
// downBase + (hi-hostLo)/stride; otherwise the candidates are n's full
// up-port set. Returned slices are windows into one shared
// [0,1,2,...] arena — a port set's values are exactly its indices —
// so NextPorts never allocates and total memory is O(nodes) records
// plus O(max ports per node) arena.
type StructuralRouter struct {
	sw    []swEntry
	ports []int // shared arena: ports[i] == i
	bytes int64
}

// NextPorts implements Router by pure index arithmetic.
func (r *StructuralRouter) NextPorts(n packet.NodeID, hostIdx int) []int {
	e := &r.sw[n]
	if hi := int32(hostIdx); hi >= e.hostLo && hi < e.hostHi {
		if e.stride == 0 { // n is the destination host itself
			return r.ports[:0]
		}
		j := e.downBase + (hi-e.hostLo)/e.stride
		return r.ports[j : j+1 : j+1]
	}
	return r.ports[e.upLo:e.upHi:e.upHi]
}

// Bytes reports the router's resident memory.
func (r *StructuralRouter) Bytes() int64 {
	return int64(unsafe.Sizeof(swEntry{}))*int64(len(r.sw)) + 8*int64(len(r.ports))
}

// Kind identifies the implementation.
func (r *StructuralRouter) Kind() string { return "structural" }

// NewStructuralRouter derives per-switch routing records from a built
// topology, verifying on the way that the fabric has the regular Clos
// shape the arithmetic needs. The checks are exactly the assumptions
// under which structural routing provably reproduces the BFS oracle's
// ordered candidate sets:
//
//  1. Strict layering: every link joins adjacent-in-spirit layers
//     (peer layers differ), so "up" and "down" are well defined and
//     down always moves toward hosts.
//  2. Up-prefix port layout: each node's up ports occupy indices
//     [0, u) and its down ports [u, len) — true of every builder
//     because switches connect upward before attaching children. BFS
//     emits candidates in ascending port order, so the up set being a
//     contiguous prefix makes the arena window order-identical.
//  3. Contiguous, consecutive, uniform subtrees: scanning a node's
//     down ports in index order, the children cover consecutive dense
//     host ranges of one common size (the stride), so the down port
//     for a host is unique and computable by division.
//  4. Symmetric up coverage: all of a node's up-peers cover identical
//     host ranges that contain the node's own, so every up port is
//     equal-cost toward any host outside the subtree — the ECMP set
//     is the full up-port set, matching BFS.
//
// Any violation returns an error and freeze() falls back to the dense
// BFS router; routing stays correct either way, only the memory bound
// changes.
func NewStructuralRouter(t *Topology) (*StructuralRouter, error) {
	n := len(t.Nodes)
	r := &StructuralRouter{sw: make([]swEntry, n)}
	maxPorts := 0
	// Pass 1: classify ports and check the up-prefix layout (1, 2).
	upCount := make([]int, n)
	for _, node := range t.Nodes {
		if len(node.Ports) > maxPorts {
			maxPorts = len(node.Ports)
		}
		u := 0
		for i, p := range node.Ports {
			peer := t.Nodes[p.Peer]
			switch {
			case peer.Layer > node.Layer: // up
				if i != u {
					return nil, fmt.Errorf("topo: %s port %d is an up port after a down port", node.Name, i)
				}
				u++
			case peer.Layer < node.Layer: // down
			default:
				return nil, fmt.Errorf("topo: %s port %d links within layer %s", node.Name, i, node.Layer)
			}
		}
		upCount[node.ID] = u
	}
	// Pass 2: subtree host ranges bottom-up, layer by layer (3).
	done := make([]bool, n)
	for _, node := range t.Nodes {
		if node.Kind == HostNode {
			hi := int32(t.hostIdx[node.ID])
			r.sw[node.ID] = swEntry{hostLo: hi, hostHi: hi + 1, stride: 0, upLo: 0, upHi: int32(len(node.Ports))}
			done[node.ID] = true
		}
	}
	for layer := LayerToR; layer <= LayerCore; layer++ {
		for _, node := range t.Nodes {
			if node.Layer != layer || node.Kind == HostNode {
				continue
			}
			u := upCount[node.ID]
			e := swEntry{downBase: int32(u), upLo: 0, upHi: int32(u), stride: 1}
			first := true
			for _, p := range node.Ports[u:] {
				if !done[p.Peer] {
					return nil, fmt.Errorf("topo: %s has a down link skipping a layer to %s", node.Name, t.Nodes[p.Peer].Name)
				}
				c := r.sw[p.Peer]
				size := c.hostHi - c.hostLo
				if size <= 0 {
					return nil, fmt.Errorf("topo: %s subtree under %s holds no hosts", node.Name, t.Nodes[p.Peer].Name)
				}
				if first {
					e.hostLo, e.hostHi, e.stride = c.hostLo, c.hostHi, size
					first = false
					continue
				}
				if c.hostLo != e.hostHi || size != e.stride {
					return nil, fmt.Errorf("topo: %s down subtrees are not consecutive uniform host ranges", node.Name)
				}
				e.hostHi = c.hostHi
			}
			if first { // no down ports at all: an isolated switch
				return nil, fmt.Errorf("topo: switch %s has no down ports", node.Name)
			}
			r.sw[node.ID] = e
			done[node.ID] = true
		}
	}
	// Pass 3: symmetric up coverage (4).
	for _, node := range t.Nodes {
		e := r.sw[node.ID]
		var lo, hi int32
		for i := 0; i < upCount[node.ID]; i++ {
			p := r.sw[node.Ports[i].Peer]
			if i == 0 {
				lo, hi = p.hostLo, p.hostHi
			} else if p.hostLo != lo || p.hostHi != hi {
				return nil, fmt.Errorf("topo: %s up-peers cover unequal host ranges", node.Name)
			}
			if p.hostLo > e.hostLo || p.hostHi < e.hostHi {
				return nil, fmt.Errorf("topo: %s up-peer %s does not cover its subtree", node.Name, t.Nodes[node.Ports[i].Peer].Name)
			}
		}
	}
	r.ports = make([]int, maxPorts)
	for i := range r.ports {
		r.ports[i] = i
	}
	r.bytes = r.Bytes()
	return r, nil
}
