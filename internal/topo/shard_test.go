package topo

import (
	"testing"

	"floodgate/internal/packet"
	"floodgate/internal/units"
)

func shardTestTopologies() map[string]*Topology {
	ls := DefaultLeafSpine()
	ls.ToRs = 5
	ls.HostsPerToR = 4
	return map[string]*Topology{
		"leafspine": ls.Build(),
		"fattree":   DefaultFatTree().Build(),
	}
}

// TestPartitionInvariants pins the contract the sharded executor
// builds on: every node lands in [0, k); a host always shares its
// ToR's shard (so no host link ever crosses a shard cut); switches of
// each layer spread round-robin (no shard is left empty when k is at
// most the ToR count); and the assignment is a pure function of
// (topology, k).
func TestPartitionInvariants(t *testing.T) {
	for name, tp := range shardTestTopologies() {
		for _, k := range []int{1, 2, 3, 4} {
			a := Partition(tp, k)
			if len(a) != len(tp.Nodes) {
				t.Fatalf("%s k=%d: assignment covers %d of %d nodes", name, k, len(a), len(tp.Nodes))
			}
			seen := make([]int, k)
			for _, n := range tp.Nodes {
				s := a[n.ID]
				if s < 0 || s >= k {
					t.Fatalf("%s k=%d: node %d assigned to shard %d", name, k, n.ID, s)
				}
				seen[s]++
				if n.Kind == HostNode {
					if tor := n.Ports[0].Peer; a[n.ID] != a[tor] {
						t.Fatalf("%s k=%d: host %d on shard %d but its ToR %d on shard %d",
							name, k, n.ID, a[n.ID], tor, a[tor])
					}
				}
			}
			for s, c := range seen {
				if c == 0 {
					t.Fatalf("%s k=%d: shard %d owns no nodes", name, k, s)
				}
			}
			b := Partition(tp, k)
			for id := range a {
				if a[id] != b[id] {
					t.Fatalf("%s k=%d: Partition not deterministic at node %d", name, k, id)
				}
			}
		}
	}
}

// TestPartitionClampsDegenerateK checks k < 1 degrades to a single
// shard rather than panicking.
func TestPartitionClampsDegenerateK(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	for _, s := range Partition(tp, 0) {
		if s != 0 {
			t.Fatal("Partition(tp, 0) produced a non-zero shard")
		}
	}
}

// TestLookaheadIsMinSwitchLinkLatency recomputes the conservative
// window bound by brute force: the minimum over switch-switch directed
// ports of propagation plus control-frame serialization. Host links
// must not constrain it — they never cross shards under Partition.
func TestLookaheadIsMinSwitchLinkLatency(t *testing.T) {
	for name, tp := range shardTestTopologies() {
		var want units.Duration
		for _, n := range tp.Nodes {
			if n.Kind == HostNode {
				continue
			}
			for i := range n.Ports {
				p := &n.Ports[i]
				if tp.Node(p.Peer).Kind == HostNode {
					continue
				}
				d := p.Prop + units.TxTime(packet.CtrlSize, p.Rate)
				if want == 0 || d < want {
					want = d
				}
			}
		}
		got := Lookahead(tp)
		if got != want {
			t.Fatalf("%s: Lookahead %v, brute force %v", name, got, want)
		}
		if got <= 0 {
			t.Fatalf("%s: non-positive lookahead %v", name, got)
		}
		// Host NIC latency is strictly below the switch-switch bound in
		// these fabrics (slower links serialize a control frame slower),
		// so a Lookahead that accidentally included host links would
		// differ; assert the premise so the test stays meaningful.
		h := tp.Node(tp.Hosts[0]).Ports[0]
		if hostD := h.Prop + units.TxTime(packet.CtrlSize, h.Rate); hostD <= got {
			t.Logf("%s: host-link latency %v <= lookahead %v (premise check only)", name, hostD, got)
		}
	}
}
