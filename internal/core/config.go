// Package core implements Floodgate, the paper's contribution: a
// switch-based per-hop, per-destination flow control. Each switch
// maintains a sending window per destination host; forwarding a data
// packet consumes window, and the downstream switch returns credits —
// aggregated on a timer in the practical design, per packet in the
// ideal/strawman design. Destinations whose window exhausts are incast
// suspects: their packets are parked in dynamically allocated Virtual
// Output Queues so non-incast traffic is never head-of-line blocked.
// The module also implements delayCredit, VOQ up/down grouping against
// deadlock, PSN-based loss recovery with switchSYN resync, and the
// optional per-destination host PAUSE.
package core

import (
	"floodgate/internal/units"
)

// Mode selects the paper's two designs.
type Mode uint8

// Modes.
const (
	// Practical is the final design (§4): timer-aggregated credits,
	// window = BDP_nextHop + C_out·T, delayCredit.
	Practical Mode = iota
	// Ideal is the strawman (§3.2): per-packet credits and window =
	// M × BDP_nextHop. The paper's "ideal" curves also enable per-dst
	// PAUSE (§4.3); set PerDstPause alongside.
	Ideal
)

// Config parameterises one switch's Floodgate instance. All byte
// thresholds are absolute; the experiment layer converts the paper's
// BDP-denominated defaults.
type Config struct {
	Mode Mode

	// M is the ideal-mode window multiplier (§6: m = 1.5).
	M float64

	// CreditTimer is T, the per-ingress-port credit aggregation period
	// (§6: 10 µs). Ignored in Ideal mode.
	CreditTimer units.Duration

	// DelayCreditThresh is thre_credit: credits for a destination are
	// withheld while its local VOQ backlog exceeds this (§6: 10 BDP).
	DelayCreditThresh units.ByteSize

	// MaxVOQs bounds the per-switch VOQ pool (§6: 100).
	MaxVOQs int

	// VOQGrouping reserves half the pool for downstream (same-pod)
	// destinations on middle-layer switches, breaking the Fig 4
	// hold-and-wait cycle.
	VOQGrouping bool

	// SYNTimeout is how long an exhausted window waits for credits
	// before probing the downstream switch with a switchSYN (§4.3).
	SYNTimeout units.Duration

	// EscapeTimeout is the credit-stall escape hatch (robustness
	// extension): a window that has gone this long without any credit
	// while bytes are outstanding probes every downstream channel —
	// even ones the normal SYN condition would skip — so a restarted
	// or desynchronized downstream switch cannot strand the window
	// forever. Zero disables the hatch.
	EscapeTimeout units.Duration

	// PerDstPause enables the optional host support (§4.3): first-hop
	// ToRs pause per-destination NIC queues when a VOQ exceeds
	// PauseThreshOff and resume below PauseThreshOn (≈ one-hop BDP).
	PerDstPause    bool
	PauseThreshOff units.ByteSize
	PauseThreshOn  units.ByteSize
}

// DefaultConfig returns the paper's §6 parameter binding given the
// network's base BDP (64 KB on the 2-tier fabric).
func DefaultConfig(baseBDP units.ByteSize) Config {
	return Config{
		Mode:              Practical,
		M:                 1.5,
		CreditTimer:       10 * units.Microsecond,
		DelayCreditThresh: 10 * baseBDP,
		MaxVOQs:           100,
		VOQGrouping:       true,
		SYNTimeout:        100 * units.Microsecond,
		EscapeTimeout:     800 * units.Microsecond,
		PauseThreshOff:    baseBDP,
		PauseThreshOn:     baseBDP / 2,
	}
}

// IdealConfig returns the strawman binding (per-packet credit,
// m·BDP window, per-dst PAUSE) used for the paper's "ideal" curves.
func IdealConfig(baseBDP units.ByteSize) Config {
	c := DefaultConfig(baseBDP)
	c.Mode = Ideal
	c.PerDstPause = true
	return c
}
