package core_test

import (
	"testing"

	"floodgate/internal/core"
	"floodgate/internal/device"
	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/units"
)

// testNet builds a leaf-spine with the given rack width, optionally
// installing Floodgate.
func testNet(hostsPerToR int, fgCfg *core.Config) (*device.Network, device.Config) {
	tp := topo.LeafSpineConfig{
		Spines: 2, ToRs: 3, HostsPerToR: hostsPerToR,
		HostRate: 10 * units.Gbps, SpineRate: 40 * units.Gbps,
		Prop: 600 * units.Nanosecond,
	}.Build()
	cfg := device.Config{
		Topo:   tp,
		Engine: sim.NewEngine(),
		Stats:  stats.NewCollector(10 * units.Microsecond),
		Seed:   7,
		PFC:    device.PFCConfig{Enable: true, Alpha: 2},
	}
	if fgCfg != nil {
		cfg.FC = core.New(*fgCfg)
		cfg.PerDstPause = fgCfg.PerDstPause
	}
	return device.New(cfg), cfg
}

func fgDefault() *core.Config {
	c := core.DefaultConfig(14 * units.KB) // ~base BDP of the test fabric
	return &c
}

func TestSingleFlowUnaffected(t *testing.T) {
	// A lone flow must never be identified as incast: no VOQ, same FCT
	// ballpark as without Floodgate.
	nFG, cfgFG := testNet(2, fgDefault())
	fFG := nFG.AddFlow(cfgFG.Topo.Hosts[0], cfgFG.Topo.Hosts[5], 200*units.KB, 0, packet.CatVictimPFC)
	nFG.Run(units.Time(20 * units.Millisecond))

	nPlain, cfgPlain := testNet(2, nil)
	fPlain := nPlain.AddFlow(cfgPlain.Topo.Hosts[0], cfgPlain.Topo.Hosts[5], 200*units.KB, 0, packet.CatVictimPFC)
	nPlain.Run(units.Time(20 * units.Millisecond))

	if !fFG.Done() || !fPlain.Done() {
		t.Fatal("flows incomplete")
	}
	if nFG.Stats.MaxVOQInUse != 0 {
		t.Fatalf("lone flow allocated %d VOQs; want 0", nFG.Stats.MaxVOQInUse)
	}
	// Floodgate adds only credit overhead; allow 10% slack.
	if float64(fFG.FCT()) > 1.1*float64(fPlain.FCT()) {
		t.Fatalf("Floodgate slowed a lone flow: %v vs %v", fFG.FCT(), fPlain.FCT())
	}
}

func addIncast(n *device.Network, tp *topo.Topology, senders int, size units.ByteSize) []*device.Flow {
	dst := tp.Hosts[len(tp.Hosts)-1]
	var flows []*device.Flow
	for i := 0; i < senders; i++ {
		src := tp.Hosts[i]
		flows = append(flows, n.AddFlow(src, dst, size, 0, packet.CatIncast))
	}
	return flows
}

func TestIncastIdentifiedAndIsolated(t *testing.T) {
	n, cfg := testNet(12, fgDefault())
	flows := addIncast(n, cfg.Topo, 24, 100*units.KB)
	n.Run(units.Time(50 * units.Millisecond))
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("incast flow %d incomplete", i)
		}
	}
	if n.Stats.MaxVOQInUse == 0 {
		t.Fatal("a 24:1 incast was never identified (no VOQ allocated)")
	}
	if n.Stats.Drops != 0 {
		t.Fatalf("drops under Floodgate: %d", n.Stats.Drops)
	}
}

func TestFloodgateReducesLastHopBuffer(t *testing.T) {
	run := func(fg *core.Config) (units.ByteSize, units.ByteSize, units.ByteSize) {
		n, cfg := testNet(12, fg)
		flows := addIncast(n, cfg.Topo, 24, 100*units.KB)
		n.Run(units.Time(50 * units.Millisecond))
		for _, f := range flows {
			if !f.Done() {
				t.Fatal("flow incomplete")
			}
		}
		return n.Stats.MaxClassBuffer(topo.ClassToRDown),
			n.Stats.MaxClassBuffer(topo.ClassCore),
			n.Stats.MaxClassBuffer(topo.ClassToRUp)
	}
	downP, coreP, _ := run(nil)
	downF, coreF, upF := run(fgDefault())
	if downF >= downP {
		t.Fatalf("Floodgate did not reduce ToR-Down buffer: %v vs %v", downF, downP)
	}
	if coreF > coreP {
		t.Fatalf("Floodgate grew core buffer: %v vs %v", coreF, coreP)
	}
	// Incast is tamed at the source side: ToR-Up holds some of it.
	if upF == 0 {
		t.Fatal("Floodgate should hold incast bytes at the source ToRs")
	}
}

func TestIdealModeSmallerBuffers(t *testing.T) {
	run := func(fg core.Config) units.ByteSize {
		n, cfg := testNet(12, &fg)
		flows := addIncast(n, cfg.Topo, 24, 100*units.KB)
		n.Run(units.Time(100 * units.Millisecond))
		for _, f := range flows {
			if !f.Done() {
				t.Fatal("flow incomplete")
			}
		}
		return n.Stats.MaxClassBuffer(topo.ClassToRDown)
	}
	practical := run(core.DefaultConfig(14 * units.KB))
	ideal := run(core.IdealConfig(14 * units.KB))
	if ideal > practical {
		t.Fatalf("ideal last-hop buffer %v exceeds practical %v", ideal, practical)
	}
}

func TestWindowConservation(t *testing.T) {
	// After all traffic drains and credits settle, every window must
	// return to its initial value (no leak, no inflation).
	n, cfg := testNet(4, fgDefault())
	flows := addIncast(n, cfg.Topo, 8, 60*units.KB)
	n.Run(units.Time(100 * units.Millisecond))
	for _, f := range flows {
		if !f.Done() {
			t.Fatal("flow incomplete")
		}
	}
	for _, sw := range n.Switches {
		if sw == nil {
			continue
		}
		m := sw.FC().(*core.Module)
		if leak := m.WindowDeficit(); leak != 0 {
			t.Fatalf("switch %s leaked %v of window after idle drain", sw.Node().Name, leak)
		}
		if m.VOQsInUse() != 0 {
			t.Fatalf("switch %s still holds %d VOQs", sw.Node().Name, m.VOQsInUse())
		}
	}
}

func TestCreditsCarryOverhead(t *testing.T) {
	n, cfg := testNet(4, fgDefault())
	addIncast(n, cfg.Topo, 8, 100*units.KB)
	n.Run(units.Time(20 * units.Millisecond))
	if n.Stats.WireTotal(stats.WireCredit) == 0 {
		t.Fatal("no credit bytes on the wire")
	}
	// Practical credits must be a small fraction of data bytes.
	cr := float64(n.Stats.WireTotal(stats.WireCredit))
	da := float64(n.Stats.WireTotal(stats.WireData))
	if cr > 0.05*da {
		t.Fatalf("credit overhead %.2f%% too high", 100*cr/da)
	}
}

func TestIdealCreditsCostMore(t *testing.T) {
	ratio := func(fg core.Config) float64 {
		n, cfg := testNet(4, &fg)
		flows := addIncast(n, cfg.Topo, 8, 100*units.KB)
		n.Run(units.Time(50 * units.Millisecond))
		for _, f := range flows {
			if !f.Done() {
				t.Fatal("flow incomplete")
			}
		}
		return float64(n.Stats.WireTotal(stats.WireCredit)) / float64(n.Stats.WireTotal(stats.WireData))
	}
	ideal := core.IdealConfig(14 * units.KB)
	ideal.PerDstPause = false // isolate the credit mechanism
	rIdeal := ratio(ideal)
	rPractical := ratio(core.DefaultConfig(14 * units.KB))
	if rIdeal <= rPractical {
		t.Fatalf("per-packet credits (%.4f) should cost more than aggregated (%.4f)", rIdeal, rPractical)
	}
}

func TestLossRecoveryViaPSN(t *testing.T) {
	fg := fgDefault()
	fg.SYNTimeout = 50 * units.Microsecond
	tp := topo.LeafSpineConfig{
		Spines: 2, ToRs: 3, HostsPerToR: 4,
		HostRate: 10 * units.Gbps, SpineRate: 40 * units.Gbps,
		Prop: 600 * units.Nanosecond,
	}.Build()
	cfg := device.Config{
		Topo: tp, Engine: sim.NewEngine(),
		Stats:    stats.NewCollector(10 * units.Microsecond),
		Seed:     3,
		PFC:      device.PFCConfig{Enable: true, Alpha: 2},
		FC:       core.New(*fg),
		LossRate: 0.05,
		RTO:      300 * units.Microsecond,
	}
	n := device.New(cfg)
	flows := addIncast(n, tp, 8, 100*units.KB)
	n.Run(units.Time(500 * units.Millisecond))
	if n.Stats.Drops == 0 {
		t.Fatal("no injected loss")
	}
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d not recovered under 5%% loss", i)
		}
	}
}

func TestPerDstPausePausesSenders(t *testing.T) {
	fg := core.IdealConfig(14 * units.KB)
	fg.PauseThreshOff = 5 * units.KB
	fg.PauseThreshOn = 2 * units.KB
	n, cfg := testNet(12, &fg)
	flows := addIncast(n, cfg.Topo, 24, 100*units.KB)
	n.Run(units.Time(100 * units.Millisecond))
	for _, f := range flows {
		if !f.Done() {
			t.Fatal("flow incomplete under per-dst pause")
		}
	}
	// With pause support, source ToR VOQs stay tiny: ToR-Up max buffer
	// should be well below the no-pause run.
	upPause := n.Stats.MaxClassBuffer(topo.ClassToRUp)
	fgNoPause := core.IdealConfig(14 * units.KB)
	fgNoPause.PerDstPause = false
	n2, cfg2 := testNet(12, &fgNoPause)
	flows2 := addIncast(n2, cfg2.Topo, 24, 100*units.KB)
	n2.Run(units.Time(100 * units.Millisecond))
	for _, f := range flows2 {
		if !f.Done() {
			t.Fatal("flow incomplete without pause")
		}
	}
	upNoPause := n2.Stats.MaxClassBuffer(topo.ClassToRUp)
	if upPause >= upNoPause {
		t.Fatalf("per-dst pause should shrink ToR-Up buffer: %v vs %v", upPause, upNoPause)
	}
}

func TestVOQPoolExhaustionShares(t *testing.T) {
	fg := fgDefault()
	fg.MaxVOQs = 1
	n, cfg := testNet(12, fg)
	// Two simultaneous incasts to different destinations in different
	// racks force VOQ sharing on the source ToRs.
	tp := cfg.Topo
	d1 := tp.Hosts[35] // rack 2
	d2 := tp.Hosts[34] // rack 2
	var flows []*device.Flow
	for i := 0; i < 12; i++ {
		flows = append(flows, n.AddFlow(tp.Hosts[i], d1, 60*units.KB, 0, packet.CatIncast))
		flows = append(flows, n.AddFlow(tp.Hosts[12+i], d2, 60*units.KB, 0, packet.CatIncast))
	}
	n.Run(units.Time(100 * units.Millisecond))
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d incomplete with a single shared VOQ", i)
		}
	}
	if n.Stats.MaxVOQInUse > 1 {
		t.Fatalf("VOQ pool of 1 reported %d in use", n.Stats.MaxVOQInUse)
	}
}

func TestFatTreeBidirectionalIncastNoDeadlock(t *testing.T) {
	// The Fig 4 scenario: pod A hosts blast a host in pod B while pod B
	// hosts blast a host in pod A. With VOQ grouping the aggs must not
	// deadlock even with a tiny VOQ pool.
	fg := core.DefaultConfig(14 * units.KB)
	fg.MaxVOQs = 2
	fg.VOQGrouping = true
	tp := topo.FatTreeConfig{K: 4, HostsPerEdge: 2, Rate: 10 * units.Gbps, Prop: 600 * units.Nanosecond}.Build()
	cfg := device.Config{
		Topo: tp, Engine: sim.NewEngine(),
		Stats: stats.NewCollector(10 * units.Microsecond),
		Seed:  5,
		PFC:   device.PFCConfig{Enable: true, Alpha: 2},
		FC:    core.New(fg),
	}
	n := device.New(cfg)
	// Pod of host i is i/4 (2 edges x 2 hosts); pick hostA in pod 0,
	// hostB in pod 1.
	hostA := tp.Hosts[0]
	hostB := tp.Hosts[7]
	var flows []*device.Flow
	for i := 1; i < 4; i++ {
		flows = append(flows, n.AddFlow(tp.Hosts[i], hostB, 100*units.KB, 0, packet.CatIncast))
	}
	for i := 4; i < 7; i++ {
		flows = append(flows, n.AddFlow(tp.Hosts[i], hostA, 100*units.KB, 0, packet.CatIncast))
	}
	n.Run(units.Time(200 * units.Millisecond))
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d deadlocked (delivered at most %v of %v)", i, f.Size, f.Size)
		}
	}
}

func TestSwitchSYNResyncsAfterTotalCreditLoss(t *testing.T) {
	// Direct unit-style exercise: crank loss to 30% so whole credit
	// rounds vanish; the SYN path must still converge.
	fg := fgDefault()
	fg.SYNTimeout = 30 * units.Microsecond
	tp := topo.LeafSpineConfig{
		Spines: 1, ToRs: 2, HostsPerToR: 2,
		HostRate: 10 * units.Gbps, SpineRate: 40 * units.Gbps,
		Prop: 600 * units.Nanosecond,
	}.Build()
	cfg := device.Config{
		Topo: tp, Engine: sim.NewEngine(),
		Stats:    stats.NewCollector(10 * units.Microsecond),
		Seed:     11,
		PFC:      device.PFCConfig{Enable: true, Alpha: 2},
		FC:       core.New(*fg),
		LossRate: 0.3,
		RTO:      300 * units.Microsecond,
	}
	n := device.New(cfg)
	f := n.AddFlow(tp.Hosts[0], tp.Hosts[3], 100*units.KB, 0, packet.CatIncast)
	n.Run(units.Time(2000 * units.Millisecond))
	if !f.Done() {
		t.Fatal("flow never completed under 30% loss with switchSYN recovery")
	}
}

func TestNoVOQForPoissonTraffic(t *testing.T) {
	// Light all-to-all traffic must not trip incast identification.
	n, cfg := testNet(4, fgDefault())
	tp := cfg.Topo
	rng := sim.NewRand(9)
	var flows []*device.Flow
	for i := 0; i < 30; i++ {
		src := tp.Hosts[rng.Intn(len(tp.Hosts))]
		dst := tp.Hosts[rng.Intn(len(tp.Hosts))]
		if src == dst {
			continue
		}
		flows = append(flows, n.AddFlow(src, dst, 20*units.KB,
			units.Time(i)*units.Time(50*units.Microsecond), packet.CatVictimPFC))
	}
	n.Run(units.Time(50 * units.Millisecond))
	for _, f := range flows {
		if !f.Done() {
			t.Fatal("poisson flow incomplete")
		}
	}
	if n.Stats.MaxVOQInUse != 0 {
		t.Fatalf("spaced background traffic allocated %d VOQs", n.Stats.MaxVOQInUse)
	}
}
