//lint:hotpath every OnIngress/OnDequeue call is per packet; scheduling must not allocate closures

package core

import (
	"encoding/binary"
	"hash/crc32"

	"floodgate/internal/device"
	"floodgate/internal/forensics"
	"floodgate/internal/metrics"
	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/topo"
	"floodgate/internal/trace"
	"floodgate/internal/units"
)

// Module is one switch's Floodgate instance. It implements
// device.FlowControl.
type Module struct {
	cfg Config
	sw  *device.Switch

	// Upstream role: per-destination sending windows.
	wins map[packet.NodeID]*dstWin

	// Downstream role: credit generation per (ingress port, dst).
	// Rows are minted lazily (host-facing ports never credit) and sized
	// by node count so the per-packet lookup is two array indexes.
	down      [][]*downChan     // per ingress port, indexed by dst NodeID
	pending   [][]packet.NodeID // per ingress port: dsts with pending credits (insertion order)
	timerArm  []bool            // per ingress port: credit timer scheduled
	tickArgs  []tickArg         // per ingress port: pre-built AfterArg payloads
	facesSw   []bool            // port peer is a switch
	facesHost []bool

	// VOQ pool.
	voqs    []*voq
	voqOf   map[packet.NodeID]*voq
	free    []int // free voq indices per group: [0]=down, [1]=up (or all in [0])
	freeUp  []int
	inUse   int
	grouped bool

	// Per-dst host pause bookkeeping (first-hop ToRs).
	pausedHosts map[packet.NodeID]map[packet.NodeID]bool // dst -> set of paused hosts

	maxWins int // peak window-table size (§7.4 memory overhead)

	// epoch is the module's boot generation, stamped onto every
	// forwarded data packet. A switch restart advances it, letting
	// downstream switches detect the PSN rebase and resynchronize
	// instead of crediting a phantom gap. resyncs counts how often this
	// switch detected an upstream restart.
	epoch   uint32
	resyncs int

	// frx is the shard's forensics recorder (nil when disabled).
	// creditSentAt/creditFrom are transients valid only inside OnCtrl's
	// credit-apply loop: drain reads them to attribute a released
	// packet's wait to credit flight time and to link the unpark back to
	// the crediting switch.
	frx          *forensics.Recorder
	creditSentAt units.Time
	creditFrom   packet.NodeID

	// Instrument handles copied from the network's NetMetrics at
	// construction (value types, nil-safe when no registry is attached).
	mWindows         metrics.Gauge
	mWindowBytes     metrics.Gauge
	mVOQsInUse       metrics.Gauge
	mParkedBytes     metrics.Gauge
	mCreditsInFlight metrics.Gauge
	mResyncs         metrics.Counter
}

// tickArg is the pre-built payload for the per-ingress-port credit
// timer, so arming it allocates nothing.
type tickArg struct {
	m  *Module
	in int
}

// creditTickFn is the capture-free credit-timer callback.
func creditTickFn(a any) {
	t := a.(*tickArg)
	t.m.creditTick(t.in)
}

// fireSYNFn is the capture-free switchSYN-timeout callback.
func fireSYNFn(a any) {
	w := a.(*dstWin)
	w.m.fireSYN(w)
}

// downChan is the downstream switch's per-channel credit state.
type downChan struct {
	cumFwd  units.ByteSize // cumulative bytes forwarded (credited basis)
	lastPSN units.ByteSize // highest upstream PSN seen (gap detection)
	pending units.ByteSize // bytes awaiting a credit packet
	epoch   uint32         // upstream boot epoch last seen (0 = first contact)
}

// dstWin is the upstream per-destination window.
type dstWin struct {
	m     *Module // owner, for the capture-free SYN callback
	dst   packet.NodeID
	init  units.ByteSize
	avail units.ByteSize
	// outstanding per egress port: sent cumulative and last credited
	// cumulative from the downstream switch.
	ports map[int]*upPort
	// switchSYN management. The deadline is lazy: every credit would
	// otherwise cancel and re-arm the engine timer (pure scheduler
	// churn, one dead entry per credit), so credits just zero the
	// deadline and the pending timer re-derives or dies when it fires.
	lastCredit  units.Time
	synTimer    sim.Handle
	synDeadline units.Time // 0 = disarmed
}

type upPort struct {
	sent    units.ByteSize
	lastCum units.ByteSize
}

// parked is one VOQ entry: the packet plus the egress port its bytes
// are attributed to (routing may steer elsewhere by drain time when a
// link failed in between; the attribution must then move).
type parked struct {
	p   *packet.Packet
	out int32
}

// voq parks packets whose destination window is exhausted.
type voq struct {
	idx    int
	group  int
	q      []parked
	bytes  units.ByteSize
	perDst map[packet.NodeID]units.ByteSize
	dsts   []packet.NodeID // destinations mapped to this VOQ
}

// New returns a device.FCFactory installing Floodgate on every switch.
func New(cfg Config) device.FCFactory {
	return func(sw *device.Switch) device.FlowControl { return newModule(cfg, sw) }
}

func newModule(cfg Config, sw *device.Switch) *Module {
	node := sw.Node()
	m := &Module{
		cfg:         cfg,
		sw:          sw,
		wins:        make(map[packet.NodeID]*dstWin),
		down:        make([][]*downChan, len(node.Ports)),
		pending:     make([][]packet.NodeID, len(node.Ports)),
		timerArm:    make([]bool, len(node.Ports)),
		tickArgs:    make([]tickArg, len(node.Ports)),
		facesSw:     make([]bool, len(node.Ports)),
		facesHost:   make([]bool, len(node.Ports)),
		voqOf:       make(map[packet.NodeID]*voq),
		pausedHosts: make(map[packet.NodeID]map[packet.NodeID]bool),
		epoch:       1,
	}
	m.frx = sw.Net().ForensicsRec()
	nm := &sw.Net().Metrics
	m.mWindows = nm.FGWindows
	m.mWindowBytes = nm.FGWindowBytes
	m.mVOQsInUse = nm.FGVOQsInUse
	m.mParkedBytes = nm.FGParkedBytes
	m.mCreditsInFlight = nm.FGCreditsInFlight
	m.mResyncs = nm.FGResyncs
	for i := range node.Ports {
		m.facesHost[i] = sw.PortFacesHost(i)
		m.facesSw[i] = !m.facesHost[i]
		m.tickArgs[i] = tickArg{m: m, in: i}
	}
	// VOQ grouping applies to middle-layer switches only (3-tier aggs),
	// which forward both upstream and windowed downstream traffic.
	m.grouped = cfg.VOQGrouping && node.Layer == topo.LayerAgg
	n := cfg.MaxVOQs
	if n <= 0 {
		n = 1
	}
	// One backing array for all VOQ structs; the perDst maps are minted
	// lazily on first park (most VOQs on most switches stay idle).
	vs := make([]voq, n)
	m.voqs = make([]*voq, n)
	for i := range m.voqs {
		vs[i].idx = i
		m.voqs[i] = &vs[i]
	}
	if m.grouped {
		for i := 0; i < n/2; i++ {
			m.voqs[i].group = 0
			m.free = append(m.free, i)
		}
		for i := n / 2; i < n; i++ {
			m.voqs[i].group = 1
			m.freeUp = append(m.freeUp, i)
		}
	} else {
		for i := 0; i < n; i++ {
			m.free = append(m.free, i)
		}
	}
	return m
}

// Window returns the remaining window for a destination (tests).
func (m *Module) Window(dst packet.NodeID) (units.ByteSize, bool) {
	w, ok := m.wins[dst]
	if !ok {
		return 0, false
	}
	return w.avail, true
}

// VOQsInUse reports the number of allocated VOQs (tests/stats).
func (m *Module) VOQsInUse() int { return m.inUse }

// Grouped reports whether this switch splits its VOQ pool by traffic
// direction (middle-layer deadlock avoidance, §4.2).
func (m *Module) Grouped() bool { return m.grouped }

// WindowDeficit sums init−avail over all windows. Once the network is
// idle and credits have settled it must be zero: any positive residue
// is leaked window, any negative residue is inflation.
func (m *Module) WindowDeficit() units.ByteSize {
	var d units.ByteSize
	//lint:allow maprange order-independent sum over the window table
	for _, w := range m.wins {
		d += w.init - w.avail
	}
	return d
}

// ---- Upstream role: OnIngress ----

// OnIngress applies per-dst window control to data packets headed for
// a switch-facing egress port.
func (m *Module) OnIngress(p *packet.Packet, inPort, outPort int) device.Verdict {
	m.checkPSNGap(p, inPort)
	if m.facesHost[outPort] {
		// Last hop: buffering here does nothing for the network (§3.2).
		return device.Verdict{}
	}
	w := m.winFor(p.Dst, outPort)
	if v, ok := m.voqOf[p.Dst]; ok {
		// Destination already identified as incast.
		m.park(v, p, outPort)
		return device.Verdict{Consumed: true}
	}
	if w.avail >= p.Size {
		m.forward(w, p, outPort)
		return device.Verdict{}
	}
	// Window exhausted: the destination is encountering incast.
	v := m.allocVOQ(p.Dst)
	m.park(v, p, outPort)
	m.armSYN(w)
	return device.Verdict{Consumed: true}
}

// forward consumes window and stamps the loss-recovery PSN (plus the
// boot epoch so a downstream switch can tell a restart from a gap).
func (m *Module) forward(w *dstWin, p *packet.Packet, outPort int) {
	w.avail -= p.Size
	m.mWindowBytes.Add(int64(p.Size))
	up := w.port(outPort)
	up.sent += p.Size
	p.PSN = up.sent
	p.FGEpoch = m.epoch
	if m.cfg.EscapeTimeout > 0 {
		// Keep a timer alive while bytes are outstanding, so a credit
		// stall is eventually escaped even if the window never exhausts
		// (e.g. the very last credits of a flow are lost).
		m.armSYN(w)
	}
}

// winFor lazily initialises the per-destination window from the
// routed next-hop link (§4.2).
func (m *Module) winFor(dst packet.NodeID, outPort int) *dstWin {
	if w, ok := m.wins[dst]; ok {
		return w
	}
	port := &m.sw.Node().Ports[outPort]
	var init units.ByteSize
	if m.cfg.Mode == Ideal {
		init = units.ByteSize(m.cfg.M * float64(port.BDP()))
	} else {
		init = port.BDP() + units.BytesOver(port.Rate, m.cfg.CreditTimer)
	}
	w := &dstWin{m: m, dst: dst, init: init, avail: init, ports: make(map[int]*upPort)}
	w.lastCredit = m.now()
	m.wins[dst] = w
	m.mWindows.Add(1)
	if len(m.wins) > m.maxWins {
		m.maxWins = len(m.wins)
	}
	return w
}

// MaxWindows reports the peak number of per-destination window entries
// this switch held — the §7.4 stateful-memory figure.
func (m *Module) MaxWindows() int { return m.maxWins }

func (w *dstWin) port(i int) *upPort {
	u, ok := w.ports[i]
	if !ok {
		u = &upPort{}
		w.ports[i] = u
	}
	return u
}

// ---- VOQ management ----

// allocVOQ finds the VOQ for a newly identified incast destination:
// an empty one from the right group if available, else a CRC-32 hash
// over the allocated VOQs (§4.2).
func (m *Module) allocVOQ(dst packet.NodeID) *voq {
	group := 0
	if m.grouped && !m.sw.Net().Topo.SamePod(m.sw.Node().ID, dst) {
		group = 1
	}
	freeList := &m.free
	if group == 1 {
		freeList = &m.freeUp
	}
	var v *voq
	if len(*freeList) > 0 {
		idx := (*freeList)[len(*freeList)-1]
		*freeList = (*freeList)[:len(*freeList)-1]
		v = m.voqs[idx]
		m.inUse++
		m.mVOQsInUse.Add(1)
		m.sw.Net().Stats.VOQInUse(m.inUse)
	} else {
		// Pool exhausted: share an allocated VOQ chosen by hashing the
		// destination address.
		v = m.hashVOQ(dst, group)
	}
	v.dsts = append(v.dsts, dst)
	m.voqOf[dst] = v
	if m.frx != nil {
		m.frx.EpisodeStart(m.sw.Node().ID, dst, m.now())
	}
	return v
}

// hashVOQ picks an allocated VOQ in the group via CRC-32 of the dst.
func (m *Module) hashVOQ(dst packet.NodeID, group int) *voq {
	var candidates []*voq
	for _, v := range m.voqs {
		if len(v.dsts) > 0 && (!m.grouped || v.group == group) {
			candidates = append(candidates, v)
		}
	}
	if len(candidates) == 0 {
		// Degenerate pool (MaxVOQs too small for the group): fall back
		// to any allocated VOQ, then to index 0.
		for _, v := range m.voqs {
			if len(v.dsts) > 0 {
				candidates = append(candidates, v)
			}
		}
	}
	if len(candidates) == 0 {
		m.inUse++
		m.mVOQsInUse.Add(1)
		m.sw.Net().Stats.VOQInUse(m.inUse)
		return m.voqs[0]
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(dst))
	h := crc32.ChecksumIEEE(b[:])
	return candidates[int(h)%len(candidates)]
}

// park stores a data packet in a VOQ and accounts it against the
// egress port it will eventually use.
func (m *Module) park(v *voq, p *packet.Packet, outPort int) {
	p.ViaVOQ = true
	p.EnqueuedAt = m.now()
	v.q = append(v.q, parked{p: p, out: int32(outPort)})
	v.bytes += p.Size
	if v.perDst == nil {
		v.perDst = make(map[packet.NodeID]units.ByteSize)
	}
	v.perDst[p.Dst] += p.Size
	m.mParkedBytes.Add(int64(p.Size))
	m.sw.NotePortBytes(outPort, p.Size)
	if m.frx != nil {
		m.frx.Parked(m.sw.Node().ID, p.Dst, p.Flow, v.perDst[p.Dst])
	}
	m.sw.Net().TraceEvent(trace.OpPark, m.sw.Node().ID, p)
	m.maybeDstPause(p)
}

// drain moves VOQ head packets whose destination has window again into
// the egress queue, in FIFO order; a blocked head blocks the VOQ
// (shared-VOQ HOL, a corner the paper accepts).
func (m *Module) drain(v *voq) {
	for len(v.q) > 0 {
		e := v.q[0]
		p := e.p
		outPort := m.sw.Net().Route(m.sw.Node().ID, p.Src, p.Dst)
		w := m.winFor(p.Dst, outPort)
		if w.avail < p.Size {
			m.armSYN(w)
			return
		}
		v.q = v.q[1:]
		v.bytes -= p.Size
		v.perDst[p.Dst] -= p.Size
		m.mParkedBytes.Add(-int64(p.Size))
		if int(e.out) != outPort {
			// Routing moved while the packet was parked (a link went
			// down); move the port-occupancy attribution with it.
			m.sw.NotePortBytes(int(e.out), -p.Size)
			m.sw.NotePortBytes(outPort, p.Size)
		}
		if m.frx != nil {
			now := m.now()
			m.frx.Unparked(p.Flow, p.Last && !p.Trimmed, now.Sub(p.EnqueuedAt), now.Sub(m.creditSentAt))
		}
		m.sw.Net().TraceAux(trace.OpUnpark, m.sw.Node().ID, p, m.creditFrom)
		m.forward(w, p, outPort)
		m.sw.InjectEgress(p, outPort, 0)
		m.maybeDstResume(p.Dst)
	}
	if v.bytes == 0 {
		m.freeVOQ(v)
	}
}

// freeVOQ returns an emptied VOQ to its group's free list.
func (m *Module) freeVOQ(v *voq) {
	if len(v.dsts) == 0 {
		return
	}
	if m.frx != nil {
		now := m.now()
		for _, d := range v.dsts {
			m.frx.EpisodeEnd(m.sw.Node().ID, d, now)
		}
	}
	for _, d := range v.dsts {
		delete(m.voqOf, d)
		if m.cfg.PerDstPause {
			m.maybeDstResume(d)
		}
	}
	v.dsts = v.dsts[:0]
	v.q = nil
	clear(v.perDst)
	if m.grouped && v.group == 1 {
		m.freeUp = append(m.freeUp, v.idx)
	} else {
		m.free = append(m.free, v.idx)
	}
	m.inUse--
	m.mVOQsInUse.Add(-1)
}

// ---- Downstream role: credit generation ----

// OnDequeue records a forwarded data packet for crediting. Credits are
// owed to the upstream switch the packet arrived from; packets that
// arrived from hosts need none (§3.2).
func (m *Module) OnDequeue(p *packet.Packet, outPort, queue int) {
	in := int(p.InPort)
	if in < 0 || !m.facesSw[in] {
		return
	}
	ch := m.chanFor(in, p.Dst)
	ch.cumFwd += p.Size
	if m.cfg.Mode == Ideal {
		// Strawman: one credit per packet, immediately.
		m.emitCredit(in, p.Dst, ch)
		return
	}
	if ch.pending == 0 {
		m.pending[in] = append(m.pending[in], p.Dst)
	}
	ch.pending += p.Size
	m.armTimer(in)
}

func (m *Module) chanFor(in int, dst packet.NodeID) *downChan {
	row := m.down[in]
	if row == nil {
		row = make([]*downChan, len(m.sw.Net().Switches))
		m.down[in] = row
	}
	ch := row[dst]
	if ch == nil {
		ch = &downChan{}
		row[dst] = ch
	}
	return ch
}

// armTimer schedules the per-ingress-port credit tick if idle.
func (m *Module) armTimer(in int) {
	if m.timerArm[in] {
		return
	}
	m.timerArm[in] = true
	m.sw.Net().Eng.AfterArg(m.cfg.CreditTimer, creditTickFn, &m.tickArgs[in])
}

// creditTick emits aggregated credit packets for every destination
// pending on this ingress port, honouring delayCredit (§4.1).
func (m *Module) creditTick(in int) {
	m.timerArm[in] = false
	dsts := m.pending[in]
	if len(dsts) == 0 {
		return
	}
	// In-place filter reusing the backing array: the write index never
	// passes the read index, and keeping the capacity means steady-state
	// ticks allocate nothing.
	retained := dsts[:0]
	row := m.down[in]
	for _, d := range dsts {
		var ch *downChan
		if row != nil {
			ch = row[d]
		}
		if ch == nil || ch.pending == 0 {
			continue
		}
		// delayCredit: withhold while this destination's VOQ here is
		// overloaded — absorbing more would only build buffer.
		if v, ok := m.voqOf[d]; ok && v.perDst[d] > m.cfg.DelayCreditThresh {
			retained = append(retained, d)
			continue
		}
		m.emitCredit(in, d, ch)
	}
	m.pending[in] = retained
	if len(retained) > 0 {
		m.armTimer(in)
	}
}

// emitCredit sends one <dst, credits> pair upstream through port in.
func (m *Module) emitCredit(in int, dst packet.NodeID, ch *downChan) {
	n := m.sw.Net()
	cr := n.NewCtrl(packet.Credit, 0, m.sw.Node().ID, m.sw.Node().Ports[in].Peer)
	// Append into the pooled packet's retained Credits backing
	// (ResetKeepBuffers preserves it) instead of minting a slice.
	cr.Credits = append(cr.Credits[:0], packet.CreditEntry{Dst: dst, Bytes: ch.pending, Cum: ch.cumFwd})
	// SentAt dates the credit so the upstream can split a parked
	// packet's wait into window time and credit flight time; it is
	// stamped unconditionally (never read unless forensics is on).
	cr.SentAt = m.now()
	ch.pending = 0
	m.mCreditsInFlight.Add(1)
	n.TraceAux(trace.OpCredit, m.sw.Node().ID, cr, dst)
	m.sw.SendCtrl(cr, in)
}

// ---- Credit consumption and switchSYN (upstream role) ----

// OnCtrl intercepts Floodgate control frames.
func (m *Module) OnCtrl(p *packet.Packet, inPort int) bool {
	switch p.Kind {
	case packet.Credit:
		m.mCreditsInFlight.Add(-1)
		m.creditSentAt = p.SentAt
		m.creditFrom = m.sw.Node().Ports[inPort].Peer
		for _, e := range p.Credits {
			m.applyCredit(inPort, e)
		}
		m.creditSentAt = 0
		m.creditFrom = 0
		return true
	case packet.SwitchSYN:
		// Downstream side: the SYN carries the upstream's cumulative
		// sent count; anything we have not seen by now is presumed lost
		// (the timeout is much larger than one hop's flight time) and is
		// credited as gone, then the channel is resynced immediately.
		ch := m.chanFor(inPort, p.Dst)
		if p.PSN > ch.lastPSN {
			ch.cumFwd += p.PSN - ch.lastPSN
			ch.lastPSN = p.PSN
		}
		m.emitCredit(inPort, p.Dst, ch)
		return true
	}
	return false
}

// applyCredit resynchronises the window from the downstream cumulative
// count; byte counts in Bytes are informational (the Cum basis is what
// makes the scheme robust to credit loss, §4.3).
func (m *Module) applyCredit(port int, e packet.CreditEntry) {
	w, ok := m.wins[e.Dst]
	if !ok {
		return
	}
	up := w.port(port)
	if e.Cum <= up.lastCum {
		return // stale duplicate
	}
	up.lastCum = e.Cum
	if up.lastCum > up.sent {
		// The downstream cumulative includes bytes from before our own
		// restart (our sent counter rebased): clamp so outstanding can
		// never go negative and inflate the window.
		up.lastCum = up.sent
	}
	// Recompute availability: init minus bytes still outstanding on any
	// downstream channel.
	var outstanding units.ByteSize
	//lint:allow maprange order-independent sum of per-port outstanding bytes
	for _, u := range w.ports {
		outstanding += u.sent - u.lastCum
	}
	availOld := w.avail
	w.avail = w.init - outstanding
	m.mWindowBytes.Add(int64(availOld) - int64(w.avail))
	w.lastCredit = m.now()
	w.synDeadline = 0 // lazy disarm: the pending timer finds it and dies
	if v, ok := m.voqOf[e.Dst]; ok {
		m.drain(v)
	}
}

// armSYN starts the loss-recovery timeout for an exhausted window. The
// deadline moves; the engine timer is only scheduled when none is
// pending — a stale one (armed before the last lazy disarm) always
// fires at or before the new deadline and re-arms itself there.
func (m *Module) armSYN(w *dstWin) {
	if w.synDeadline != 0 {
		return
	}
	w.synDeadline = m.now().Add(m.cfg.SYNTimeout)
	if !w.synTimer.Active() {
		w.synTimer = m.sw.Net().Eng.AfterArg(m.cfg.SYNTimeout, fireSYNFn, w)
	}
}

func (m *Module) fireSYN(w *dstWin) {
	if w.synDeadline == 0 {
		return // disarmed since scheduling: a credit arrived
	}
	now := m.now()
	if now < w.synDeadline {
		// The timer predates the latest arm; sleep on to the true
		// deadline.
		w.synTimer = m.sw.Net().Eng.AtArg(w.synDeadline, fireSYNFn, w)
		return
	}
	w.synDeadline = 0 // due: consumed, re-set only by armSYNAgain
	if w.avail >= w.init {
		return // fully credited: nothing to recover, let the timer die
	}
	// Escape hatch: after EscapeTimeout without any credit, probe every
	// channel with sent bytes — even ones the stale-duplicate filter or
	// a restart clamp left looking synced — so a restarted downstream
	// switch cannot strand the window (see Config.EscapeTimeout).
	escape := m.cfg.EscapeTimeout > 0 && now.Sub(w.lastCredit) >= m.cfg.EscapeTimeout
	if w.avail >= packet.MTU && !escape {
		// Not exhausted and credits are recent: stay armed so a silent
		// credit stall is eventually escaped.
		m.armSYNAgain(w)
		return
	}
	n := m.sw.Net()
	// Probe every downstream channel with outstanding bytes, telling it
	// our cumulative sent count so it can write off lost bytes. Ports
	// are walked in index order to keep runs deterministic.
	probed := false
	for port := 0; port < len(m.sw.Node().Ports); port++ {
		u, ok := w.ports[port]
		if !ok {
			continue
		}
		if u.sent > u.lastCum || (escape && u.sent > 0) {
			syn := n.NewCtrl(packet.SwitchSYN, 0, m.sw.Node().ID, w.dst)
			syn.PSN = u.sent
			m.sw.SendCtrl(syn, port)
			probed = true
		}
	}
	if probed || escape {
		m.armSYNAgain(w)
	}
}

func (m *Module) armSYNAgain(w *dstWin) {
	w.synDeadline = m.now().Add(m.cfg.SYNTimeout)
	w.synTimer = m.sw.Net().Eng.AfterArg(m.cfg.SYNTimeout, fireSYNFn, w)
}

// checkPSNGap detects data lost on the upstream wire: the missing
// bytes can never be credited by forwarding, so credit them as gone.
func (m *Module) checkPSNGap(p *packet.Packet, inPort int) {
	if p.PSN == 0 || !m.facesSw[inPort] {
		return
	}
	ch := m.chanFor(inPort, p.Dst)
	if p.FGEpoch != ch.epoch {
		if ch.epoch != 0 {
			// The upstream switch restarted: its PSN sequence rebased,
			// so the usual gap arithmetic would credit a huge phantom
			// loss. Rebase the channel to just before this packet and
			// count the resync. (On first contact — epoch 0 — the
			// normal gap path below is exactly right: if *we* are the
			// freshly restarted side, it credits everything the
			// upstream had outstanding, restoring its window.)
			ch.lastPSN = p.PSN - p.Size
			m.resyncs++
			m.mResyncs.Inc()
		}
		ch.epoch = p.FGEpoch
	}
	expected := ch.lastPSN + p.Size
	if p.PSN > expected {
		lost := p.PSN - expected
		ch.cumFwd += lost
		if m.cfg.Mode == Ideal {
			m.emitCredit(inPort, p.Dst, ch)
		} else {
			if ch.pending == 0 {
				m.pending[inPort] = append(m.pending[inPort], p.Dst)
			}
			ch.pending += lost
			m.armTimer(inPort)
		}
	}
	if p.PSN > ch.lastPSN {
		ch.lastPSN = p.PSN
	}
}

// ---- Congestion-signal override (§8) ----

// QueueSignal reports the VOQ backlog sum for packets that were parked
// so ECN/INT reflect the buffering incast traffic actually sees.
func (m *Module) QueueSignal(p *packet.Packet, outPort int) units.ByteSize {
	if !p.ViaVOQ {
		return -1
	}
	var sum units.ByteSize
	for _, v := range m.voqs {
		sum += v.bytes
	}
	return sum + m.sw.PortBacklog(outPort)
}

// ---- Per-dst PAUSE (§4.3, optional host support) ----

// maybeDstPause pauses the sending host when a first-hop VOQ for its
// destination exceeds thre_off.
func (m *Module) maybeDstPause(p *packet.Packet) {
	if !m.cfg.PerDstPause {
		return
	}
	in := int(p.InPort)
	if in < 0 || !m.facesHost[in] {
		return // only first-hop ToRs pause, and only their own hosts
	}
	v := m.voqOf[p.Dst]
	if v == nil || v.perDst[p.Dst] <= m.cfg.PauseThreshOff {
		return
	}
	hosts := m.pausedHosts[p.Dst]
	if hosts == nil {
		hosts = make(map[packet.NodeID]bool)
		m.pausedHosts[p.Dst] = hosts
	}
	src := m.sw.Node().Ports[in].Peer
	if hosts[src] {
		return
	}
	hosts[src] = true
	n := m.sw.Net()
	f := n.NewCtrl(packet.DstPause, 0, m.sw.Node().ID, src)
	f.PauseDst = p.Dst
	m.sw.SendCtrl(f, in)
}

// maybeDstResume resumes paused hosts once the VOQ falls below thre_on.
func (m *Module) maybeDstResume(dst packet.NodeID) {
	if !m.cfg.PerDstPause {
		return
	}
	hosts := m.pausedHosts[dst]
	if len(hosts) == 0 {
		return
	}
	if v, ok := m.voqOf[dst]; ok && v.perDst[dst] > m.cfg.PauseThreshOn {
		return
	}
	n := m.sw.Net()
	node := m.sw.Node()
	for i := range node.Ports {
		if !m.facesHost[i] {
			continue
		}
		peer := node.Ports[i].Peer
		if hosts[peer] {
			f := n.NewCtrl(packet.DstResume, 0, node.ID, peer)
			f.PauseDst = dst
			m.sw.SendCtrl(f, i)
			delete(hosts, peer)
		}
	}
}

func (m *Module) now() units.Time { return m.sw.Net().Eng.Now() }

// ---- Fault plane hooks (device.Restarter / device.StallReporter) ----

// Restart implements device.Restarter: the switch restarted and lost
// all Floodgate soft state. Parked packets are dropped (their buffer
// share freed), windows, VOQ assignments, credit channels and pending
// credit state are forgotten, and the boot epoch advances so every
// downstream switch detects the PSN rebase on the next forwarded packet
// (checkPSNGap) instead of crediting a phantom gap. Upstream windows
// pointed at this switch recover through the normal first-contact gap
// credit plus the switchSYN/escape probes.
func (m *Module) Restart() {
	n := m.sw.Net()
	node := m.sw.Node()

	// Open incast episodes end with the VOQ state that defined them.
	if m.frx != nil {
		m.frx.EpisodeEndAll(node.ID, m.now())
	}

	// Parked packets die with the switch.
	for _, v := range m.voqs {
		for _, e := range v.q {
			m.sw.NotePortBytes(int(e.out), -e.p.Size)
			m.sw.ReleaseParked(e.p)
			m.mParkedBytes.Add(-int64(e.p.Size))
			n.Stats.Drop()
			n.Metrics.Drops.Inc()
			n.TraceEvent(trace.OpDrop, node.ID, e.p)
			n.Recycle(e.p)
		}
		v.q = nil
		v.bytes = 0
		v.dsts = v.dsts[:0]
		clear(v.perDst)
	}
	m.mVOQsInUse.Add(-int64(m.inUse))
	if m.inUse > 0 {
		m.sw.Net().Stats.VOQInUse(0)
	}
	m.inUse = 0
	m.free = m.free[:0]
	m.freeUp = m.freeUp[:0]
	if m.grouped {
		half := len(m.voqs) / 2
		for i := 0; i < half; i++ {
			m.free = append(m.free, i)
		}
		for i := half; i < len(m.voqs); i++ {
			m.freeUp = append(m.freeUp, i)
		}
	} else {
		for i := range m.voqs {
			m.free = append(m.free, i)
		}
	}
	clear(m.voqOf)

	// Windows: cancel loss-recovery timers and drop the table.
	var occupied int64
	//lint:allow maprange order-independent teardown: summing deficits and cancelling timers
	for _, w := range m.wins {
		occupied += int64(w.init - w.avail)
		n.Eng.Cancel(w.synTimer)
	}
	m.mWindowBytes.Add(-occupied)
	m.mWindows.Add(-int64(len(m.wins)))
	clear(m.wins)

	// Downstream credit state: channels and pending credits are gone.
	// Stale credit timers may still fire; creditTick no-ops on an empty
	// pending list, so just reset the arm flags for new traffic.
	clear(m.down)
	for i := range m.pending {
		m.pending[i] = m.pending[i][:0]
		m.timerArm[i] = false
	}

	// Per-dst pause memory is lost too; the device layer wakes the
	// hosts via its own onPeerReset nudge.
	clear(m.pausedHosts)

	m.epoch++
}

// Resyncs reports how many upstream-restart resynchronizations this
// switch performed (tests and fault reports).
func (m *Module) Resyncs() int { return m.resyncs }

// StallReport implements device.StallReporter for watchdog diagnoses.
func (m *Module) StallReport() device.StallInfo {
	si := device.StallInfo{Resyncs: m.resyncs}
	//lint:allow maprange order-independent aggregation over the window table
	for _, w := range m.wins {
		si.WindowDeficit += w.init - w.avail
		if w.avail < packet.MTU {
			si.ExhaustedWindows++
		}
	}
	for _, v := range m.voqs {
		si.ParkedBytes += v.bytes
	}
	return si
}
