package core_test

import (
	"testing"

	"floodgate/internal/core"
	"floodgate/internal/device"
	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/units"
)

// These tests pin individual Floodgate mechanisms (§4) rather than
// end-to-end outcomes.

func TestWindowInitValues(t *testing.T) {
	// Practical: BDP_nextHop + C_out·T; ideal: m × BDP_nextHop (§4.2).
	fg := core.DefaultConfig(14 * units.KB)
	fg.CreditTimer = 10 * units.Microsecond
	n, cfg := testNet(2, &fg)
	tor := n.Switches[cfg.Topo.Node(cfg.Topo.Hosts[0]).Ports[0].Peer]
	m := tor.FC().(*core.Module)

	// Send one packet cross-rack to force window creation at the ToR.
	f := n.AddFlow(cfg.Topo.Hosts[0], cfg.Topo.Hosts[5], units.KB, 0, packet.CatIncast)
	n.Run(units.Time(5 * units.Millisecond))
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	avail, ok := m.Window(cfg.Topo.Hosts[5])
	if !ok {
		t.Fatal("no window created for the destination")
	}
	// Uplink: 40Gbps, prop 600ns -> BDP = 40G*1.2us + MTU = 7.5KB total;
	// plus 40G * 10us = 50KB. After the flow drains, avail == init.
	var up *topo.Port
	node := tor.Node()
	for i := range node.Ports {
		if node.Ports[i].Class == topo.ClassToRUp {
			up = &node.Ports[i]
			break
		}
	}
	wantInit := up.BDP() + units.BytesOver(up.Rate, fg.CreditTimer)
	if avail != wantInit {
		t.Fatalf("settled window = %v, want init %v", avail, wantInit)
	}
}

func TestIdealWindowInit(t *testing.T) {
	fg := core.IdealConfig(14 * units.KB)
	fg.PerDstPause = false
	n, cfg := testNet(2, &fg)
	tor := n.Switches[cfg.Topo.Node(cfg.Topo.Hosts[0]).Ports[0].Peer]
	m := tor.FC().(*core.Module)
	f := n.AddFlow(cfg.Topo.Hosts[0], cfg.Topo.Hosts[5], units.KB, 0, packet.CatIncast)
	n.Run(units.Time(5 * units.Millisecond))
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	avail, _ := m.Window(cfg.Topo.Hosts[5])
	var up *topo.Port
	node := tor.Node()
	for i := range node.Ports {
		if node.Ports[i].Class == topo.ClassToRUp {
			up = &node.Ports[i]
			break
		}
	}
	want := units.ByteSize(1.5 * float64(up.BDP()))
	if avail != want {
		t.Fatalf("ideal window = %v, want %v", avail, want)
	}
}

func TestNoWindowForSameRackTraffic(t *testing.T) {
	// Last-hop forwarding must not create windows (§3.2): the ToR's
	// egress faces the host.
	n, cfg := testNet(2, fgDefault())
	tor := n.Switches[cfg.Topo.Node(cfg.Topo.Hosts[0]).Ports[0].Peer]
	m := tor.FC().(*core.Module)
	f := n.AddFlow(cfg.Topo.Hosts[0], cfg.Topo.Hosts[1], 50*units.KB, 0, packet.CatVictimPFC)
	n.Run(units.Time(5 * units.Millisecond))
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if _, ok := m.Window(cfg.Topo.Hosts[1]); ok {
		t.Fatal("same-rack destination acquired a window")
	}
}

func TestCreditAggregationReducesPacketCount(t *testing.T) {
	// With T large, far fewer credit packets than data packets.
	fg := fgDefault()
	fg.CreditTimer = 100 * units.Microsecond
	n, cfg := testNet(4, fg)
	flows := addIncast(n, cfg.Topo, 8, 100*units.KB)
	n.Run(units.Time(100 * units.Millisecond))
	for _, f := range flows {
		if !f.Done() {
			t.Fatal("flow incomplete")
		}
	}
	creditBytes := n.Stats.WireTotal(stats.WireCredit)
	creditPkts := int64(creditBytes / packet.CtrlSize)
	dataPkts := int64(n.Stats.WireTotal(stats.WireData) / packet.MTU)
	if creditPkts*5 > dataPkts {
		t.Fatalf("aggregation too weak: %d credit pkts vs %d data pkts", creditPkts, dataPkts)
	}
}

func TestDelayCreditWithholdsUnderDeepVOQ(t *testing.T) {
	// With thre_credit tiny, credits for a backed-up destination are
	// retained, slowing the upstream — ToR-Up (upstream of the spine)
	// should hold more bytes than with a huge threshold.
	run := func(thresh units.ByteSize) units.ByteSize {
		fg := fgDefault()
		fg.DelayCreditThresh = thresh
		n, cfg := testNet(12, fg)
		flows := addIncast(n, cfg.Topo, 24, 100*units.KB)
		n.Run(units.Time(200 * units.Millisecond))
		for _, f := range flows {
			if !f.Done() {
				t.Fatal("flow incomplete")
			}
		}
		return n.Stats.MaxClassBuffer(topo.ClassCore)
	}
	tight := run(2 * units.KB)
	loose := run(100 * 14 * units.KB)
	if tight > loose {
		t.Fatalf("tight delayCredit should not grow core buffer: %v vs %v", tight, loose)
	}
}

func TestVOQGroupingSplitsPool(t *testing.T) {
	tp := topo.FatTreeConfig{K: 4, HostsPerEdge: 2, Rate: 10 * units.Gbps, Prop: 600 * units.Nanosecond}.Build()
	fg := core.DefaultConfig(14 * units.KB)
	fg.MaxVOQs = 10
	fg.VOQGrouping = true
	cfg := device.Config{
		Topo: tp, Engine: sim.NewEngine(),
		Stats: stats.NewCollector(10 * units.Microsecond),
		Seed:  1,
		FC:    core.New(fg),
	}
	n := device.New(cfg)
	// An aggregation switch should report grouping; edges should not.
	for _, sw := range n.Switches {
		if sw == nil {
			continue
		}
		m := sw.FC().(*core.Module)
		if sw.Node().Layer == topo.LayerAgg {
			if !m.Grouped() {
				t.Fatalf("agg %s not grouped", sw.Node().Name)
			}
		} else if m.Grouped() {
			t.Fatalf("%s (layer %v) grouped but should not be", sw.Node().Name, sw.Node().Layer)
		}
	}
}

func TestQueueSignalOverrideForVOQPackets(t *testing.T) {
	// Packets that sat in a VOQ report the VOQ sum (§8) so INT/ECN see
	// the real buffering. Exercised via HPCC+Floodgate completing with
	// shrunken windows.
	fg := fgDefault()
	tp := topo.LeafSpineConfig{
		Spines: 2, ToRs: 3, HostsPerToR: 12,
		HostRate: 10 * units.Gbps, SpineRate: 40 * units.Gbps,
		Prop: 600 * units.Nanosecond,
	}.Build()
	cfg := device.Config{
		Topo: tp, Engine: sim.NewEngine(),
		Stats: stats.NewCollector(10 * units.Microsecond),
		Seed:  1,
		PFC:   device.PFCConfig{Enable: true, Alpha: 2},
		INT:   true,
		FC:    core.New(*fg),
	}
	n := device.New(cfg)
	flows := addIncast(n, tp, 24, 100*units.KB)
	n.Run(units.Time(200 * units.Millisecond))
	for _, f := range flows {
		if !f.Done() {
			t.Fatal("flow incomplete with INT enabled")
		}
	}
}

func TestSwitchSYNDoesNotFireSpuriously(t *testing.T) {
	// A healthy lossless incast should resolve through credits alone;
	// SYNs exist but must not dominate credit traffic.
	fg := fgDefault()
	fg.SYNTimeout = 10 * units.Millisecond // far beyond the run's RTTs
	n, cfg := testNet(8, fg)
	flows := addIncast(n, cfg.Topo, 16, 60*units.KB)
	n.Run(units.Time(100 * units.Millisecond))
	for _, f := range flows {
		if !f.Done() {
			t.Fatal("flow incomplete")
		}
	}
}

func TestPerDstPauseDoesNotAffectOtherDsts(t *testing.T) {
	fg := core.IdealConfig(14 * units.KB)
	fg.PauseThreshOff = 3 * units.KB
	fg.PauseThreshOn = 1 * units.KB
	n, cfg := testNet(8, &fg)
	tpo := cfg.Topo
	// Incast to the last host; a bystander flow from the same source
	// rack to a different destination must be unaffected.
	flows := addIncast(n, tpo, 16, 100*units.KB)
	by := n.AddFlow(tpo.Hosts[0], tpo.Hosts[9], 100*units.KB, 0, packet.CatVictimPFC)
	n.Run(units.Time(200 * units.Millisecond))
	for _, f := range flows {
		if !f.Done() {
			t.Fatal("incast flow incomplete")
		}
	}
	if !by.Done() {
		t.Fatal("bystander flow blocked by per-dst pause of a different destination")
	}
}
