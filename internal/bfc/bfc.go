// Package bfc implements the Backpressure Flow Control baseline
// (Goyal et al., NSDI '22) the paper compares against in §8/Fig 20:
// per-hop, per-flow flow control built from a limited set of physical
// egress queues. Flows hash onto queues (sticky by construction);
// when a queue's occupancy crosses the pause threshold the switch
// pauses the *upstream queue* the packet came from — so unrelated
// flows sharing that upstream queue are paused too, which is exactly
// the HOL-blocking effect Fig 20 demonstrates. BFC-ideal gives every
// flow its own queue (no collisions).
package bfc

import (
	"encoding/binary"
	"hash/crc32"

	"floodgate/internal/device"
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// Config parameterises BFC.
type Config struct {
	// NumQueues is the physical queue count per egress port (32/128).
	// The device.Config.QueuesPerPort must be set to the same value.
	NumQueues int
	// Ideal assigns one dedicated queue per flow (requires
	// QueuesPerPort to be large enough for the flow count).
	Ideal bool
	// PauseThresh is the per-queue occupancy that triggers a pause to
	// the upstream queue; Resume at half of it.
	PauseThresh units.ByteSize
}

// DefaultConfig returns a 32-queue binding with a one-hop-BDP-ish
// threshold.
func DefaultConfig() Config {
	return Config{NumQueues: 32, PauseThresh: 8 * packet.MTU}
}

// New returns the per-switch factory.
func New(cfg Config) device.FCFactory {
	return func(sw *device.Switch) device.FlowControl { return newModule(cfg, sw) }
}

type upstreamRef struct {
	port int           // our port whose peer is the upstream entity
	q    int32         // upstream queue index (switches)
	flow packet.FlowID // upstream flow (hosts expose per-flow queues)
	host bool
}

type queueKey struct {
	port, q int
}

type module struct {
	cfg Config
	sw  *device.Switch

	// Ideal mode: per-port flow → dedicated queue assignment.
	assign map[queueKey]packet.FlowID // queue -> owning flow
	flowQ  []map[packet.FlowID]int    // per port: flow -> queue
	nextQ  []int                      // per port: naive allocator cursor

	// pausedBy[k] lists upstream queues paused on behalf of local queue k.
	pausedBy map[queueKey][]upstreamRef
}

func newModule(cfg Config, sw *device.Switch) *module {
	nPorts := len(sw.Node().Ports)
	m := &module{
		cfg:      cfg,
		sw:       sw,
		assign:   make(map[queueKey]packet.FlowID),
		flowQ:    make([]map[packet.FlowID]int, nPorts),
		nextQ:    make([]int, nPorts),
		pausedBy: make(map[queueKey][]upstreamRef),
	}
	for i := range m.flowQ {
		m.flowQ[i] = make(map[packet.FlowID]int)
	}
	return m
}

// queueFor picks the egress queue for a flow at a port.
func (m *module) queueFor(f packet.FlowID, port int) int {
	if !m.cfg.Ideal {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(f))
		return int(crc32.ChecksumIEEE(b[:])) % m.cfg.NumQueues
	}
	if q, ok := m.flowQ[port][f]; ok {
		return q
	}
	q := m.nextQ[port]
	m.nextQ[port] = (q + 1) % m.numIdealQueues()
	m.flowQ[port][f] = q
	return q
}

func (m *module) numIdealQueues() int {
	// In ideal mode the device was configured with a large pool; use it
	// all (collisions only if the experiment under-provisioned).
	return m.sw.Net().Cfg.QueuesPerPort
}

// OnIngress assigns the packet a queue and pauses the upstream queue
// when the local one crosses the threshold.
func (m *module) OnIngress(p *packet.Packet, inPort, outPort int) device.Verdict {
	q := m.queueFor(p.Flow, outPort)
	upQ := p.UpstreamQ
	p.UpstreamQ = int32(q) // the next hop pauses this queue
	// After this packet enqueues, the occupancy will be current + size.
	if m.sw.QueueBytes(outPort, q)+p.Size > m.cfg.PauseThresh {
		m.pauseUpstream(p, inPort, upQ, outPort, q)
	}
	return device.Verdict{Queue: q}
}

// pauseUpstream sends the pause for the upstream queue feeding us.
func (m *module) pauseUpstream(p *packet.Packet, inPort int, upQ int32, outPort, q int) {
	k := queueKey{outPort, q}
	n := m.sw.Net()
	ref := upstreamRef{port: inPort, q: upQ}
	if m.sw.PortFacesHost(inPort) {
		// Hosts expose per-flow queues: pause the flow itself.
		ref.host = true
		ref.flow = p.Flow
	}
	for _, r := range m.pausedBy[k] {
		if r == ref {
			return // already paused on behalf of this queue
		}
	}
	m.pausedBy[k] = append(m.pausedBy[k], ref)
	f := n.NewCtrl(packet.BFCPause, ref.flow, m.sw.Node().ID, m.sw.Node().Ports[inPort].Peer)
	f.PauseQ = ref.q
	m.sw.SendCtrl(f, inPort)
}

// OnCtrl reacts to pause/resume from the downstream switch: gate the
// named queue on the port the frame arrived on.
func (m *module) OnCtrl(p *packet.Packet, inPort int) bool {
	switch p.Kind {
	case packet.BFCPause:
		if p.PauseQ >= 0 {
			m.sw.PauseQueue(inPort, int(p.PauseQ), true)
		}
		return true
	case packet.BFCResume:
		if p.PauseQ >= 0 {
			m.sw.PauseQueue(inPort, int(p.PauseQ), false)
		}
		return true
	}
	return false
}

// OnDequeue resumes upstream queues once the local queue drains below
// half the pause threshold.
func (m *module) OnDequeue(p *packet.Packet, outPort, queue int) {
	if queue < 0 {
		return
	}
	k := queueKey{outPort, queue}
	refs := m.pausedBy[k]
	if len(refs) == 0 {
		return
	}
	if m.sw.QueueBytes(outPort, queue) > m.cfg.PauseThresh/2 {
		return
	}
	n := m.sw.Net()
	for _, r := range refs {
		f := n.NewCtrl(packet.BFCResume, r.flow, m.sw.Node().ID, m.sw.Node().Ports[r.port].Peer)
		f.PauseQ = r.q
		m.sw.SendCtrl(f, r.port)
	}
	delete(m.pausedBy, k)
}

// QueueSignal uses the default egress backlog.
func (m *module) QueueSignal(*packet.Packet, int) units.ByteSize { return -1 }
