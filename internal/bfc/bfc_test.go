package bfc_test

import (
	"testing"

	"floodgate/internal/bfc"
	"floodgate/internal/cc"
	"floodgate/internal/device"
	"floodgate/internal/packet"
	"floodgate/internal/sim"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/units"
)

func bfcNet(queues int, ideal bool) (*device.Network, *topo.Topology) {
	tp := topo.LeafSpineConfig{
		Spines: 2, ToRs: 3, HostsPerToR: 8,
		HostRate: 10 * units.Gbps, SpineRate: 40 * units.Gbps,
		Prop: 600 * units.Nanosecond,
	}.Build()
	qpp := queues
	if ideal {
		qpp = 256
	}
	cfg := device.Config{
		Topo:          tp,
		Engine:        sim.NewEngine(),
		Stats:         stats.NewCollector(10 * units.Microsecond),
		Seed:          2,
		PFC:           device.PFCConfig{Enable: true, Alpha: 2},
		CC:            cc.NewFixedWindow(),
		QueuesPerPort: qpp,
		FC: bfc.New(bfc.Config{
			NumQueues: queues, Ideal: ideal, PauseThresh: 8 * packet.MTU,
		}),
	}
	return device.New(cfg), tp
}

func runIncast(t *testing.T, n *device.Network, tp *topo.Topology, senders int) []*device.Flow {
	t.Helper()
	dst := tp.Hosts[len(tp.Hosts)-1]
	var flows []*device.Flow
	for i := 0; i < senders; i++ {
		flows = append(flows, n.AddFlow(tp.Hosts[i], dst, 100*units.KB, 0, packet.CatIncast))
	}
	n.Run(units.Time(200 * units.Millisecond))
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d incomplete under BFC", i)
		}
	}
	return flows
}

func TestBFC32QIncastCompletes(t *testing.T) {
	n, tp := bfcNet(32, false)
	runIncast(t, n, tp, 16)
	if n.Stats.Drops != 0 {
		t.Fatalf("drops: %d", n.Stats.Drops)
	}
}

func TestBFCIdealIncastCompletes(t *testing.T) {
	n, tp := bfcNet(0, true)
	runIncast(t, n, tp, 16)
}

func TestBFCBoundsQueues(t *testing.T) {
	// BFC's whole point: per-hop backpressure keeps switch buffers near
	// the pause threshold instead of absorbing the full incast.
	nPlain, tpPlain := bfcNet(32, false)
	// Build an identical network without BFC for comparison.
	cfgTopo := topo.LeafSpineConfig{
		Spines: 2, ToRs: 3, HostsPerToR: 8,
		HostRate: 10 * units.Gbps, SpineRate: 40 * units.Gbps,
		Prop: 600 * units.Nanosecond,
	}.Build()
	nNo := device.New(device.Config{
		Topo: cfgTopo, Engine: sim.NewEngine(),
		Stats: stats.NewCollector(10 * units.Microsecond),
		Seed:  2,
		PFC:   device.PFCConfig{Enable: true, Alpha: 2},
		CC:    cc.NewFixedWindow(),
	})
	runIncast(t, nPlain, tpPlain, 16)
	runIncast(t, nNo, cfgTopo, 16)
	bfcBuf := nPlain.Stats.MaxClassBuffer(topo.ClassToRDown)
	noBuf := nNo.Stats.MaxClassBuffer(topo.ClassToRDown)
	if bfcBuf >= noBuf {
		t.Fatalf("BFC did not bound the last hop: %v vs %v without", bfcBuf, noBuf)
	}
}

func TestBFCPausesHostFlows(t *testing.T) {
	// With a tiny threshold, the first-hop ToR must push back on the
	// sending hosts per flow; the run still completes after resumes.
	tp := topo.LeafSpineConfig{
		Spines: 1, ToRs: 2, HostsPerToR: 4,
		HostRate: 10 * units.Gbps, SpineRate: 40 * units.Gbps,
		Prop: 600 * units.Nanosecond,
	}.Build()
	n := device.New(device.Config{
		Topo: tp, Engine: sim.NewEngine(),
		Stats:         stats.NewCollector(10 * units.Microsecond),
		Seed:          4,
		PFC:           device.PFCConfig{Enable: true, Alpha: 2},
		CC:            cc.NewFixedWindow(),
		QueuesPerPort: 8,
		FC:            bfc.New(bfc.Config{NumQueues: 8, PauseThresh: 2 * packet.MTU}),
	})
	dst := tp.Hosts[len(tp.Hosts)-1]
	var flows []*device.Flow
	for i := 0; i < 4; i++ {
		flows = append(flows, n.AddFlow(tp.Hosts[i], dst, 150*units.KB, 0, packet.CatIncast))
	}
	n.Run(units.Time(200 * units.Millisecond))
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d wedged by BFC pause (never resumed)", i)
		}
	}
}

func TestBFCQueueAssignmentSticky(t *testing.T) {
	// Hash assignment: the same flow always lands in the same queue, so
	// no reordering across queues.
	n, tp := bfcNet(32, false)
	f := n.AddFlow(tp.Hosts[0], tp.Hosts[23], 500*units.KB, 0, packet.CatVictimPFC)
	n.Run(units.Time(100 * units.Millisecond))
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
}
