package cc_test

import (
	"testing"

	"floodgate/internal/cc"
	"floodgate/internal/cc/dcqcn"
	"floodgate/internal/cc/hpcc"
	"floodgate/internal/cc/timely"
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

func env() cc.Env {
	rtt := units.Duration(51) * units.Microsecond / 10 // 5.1us
	rate := 100 * units.Gbps
	return cc.Env{LinkRate: rate, BaseRTT: rtt, BDP: units.BDP(rate, rtt)}
}

func TestFixedWindow(t *testing.T) {
	c := cc.NewFixedWindow()(env())
	if c.Rate() != 100*units.Gbps {
		t.Fatalf("rate = %v", c.Rate())
	}
	if c.Window() != 63750 {
		t.Fatalf("window = %v", c.Window())
	}
	c.OnCNP(0)
	c.OnAck(0, nil, units.Microsecond)
	if c.Rate() != 100*units.Gbps {
		t.Fatal("fixed window must not react")
	}
}

func TestDCQCNStartsAtLineRate(t *testing.T) {
	c := dcqcn.Default()(env())
	if c.Rate() != 100*units.Gbps {
		t.Fatalf("initial rate = %v", c.Rate())
	}
	// Without congestion, acks over time must not reduce the rate.
	for i := 1; i <= 100; i++ {
		c.OnAck(units.Time(i)*units.Time(units.Microsecond), nil, 5*units.Microsecond)
	}
	if c.Rate() != 100*units.Gbps {
		t.Fatalf("uncongested rate drifted to %v", c.Rate())
	}
}

func TestDCQCNDecreaseOnCNP(t *testing.T) {
	c := dcqcn.Default()(env())
	c.OnCNP(units.Time(100 * units.Microsecond))
	r := c.Rate()
	// alpha starts at 1 -> first cut halves the rate.
	if r != 50*units.Gbps {
		t.Fatalf("rate after first CNP = %v, want 50Gbps", r)
	}
	// Successive CNPs keep cutting (alpha stays high under persistent
	// congestion).
	c.OnCNP(units.Time(200 * units.Microsecond))
	if c.Rate() >= r {
		t.Fatalf("rate did not decrease further: %v", c.Rate())
	}
}

func TestDCQCNRecovery(t *testing.T) {
	c := dcqcn.Default()(env())
	t0 := units.Time(100 * units.Microsecond)
	c.OnCNP(t0)
	low := c.Rate()
	// Quiet period: lazy timers should walk the rate back up toward line
	// rate (fast recovery halves toward target = pre-cut rate).
	c.OnAck(t0.Add(2*units.Millisecond), nil, 5*units.Microsecond)
	rec := c.Rate()
	if rec <= low {
		t.Fatalf("no recovery: %v -> %v", low, rec)
	}
	if rec > 100*units.Gbps {
		t.Fatalf("recovered beyond line rate: %v", rec)
	}
	// After a long time, hyper increase must reach line rate.
	c.OnAck(t0.Add(200*units.Millisecond), nil, 5*units.Microsecond)
	if c.Rate() != 100*units.Gbps {
		t.Fatalf("rate after long recovery = %v, want line rate", c.Rate())
	}
}

func TestDCQCNRateFloor(t *testing.T) {
	c := dcqcn.Default()(env())
	for i := 0; i < 200; i++ {
		c.OnCNP(units.Time(i+1) * units.Time(100*units.Microsecond))
	}
	if c.Rate() < 100*units.Mbps {
		t.Fatalf("rate fell through floor: %v", c.Rate())
	}
}

func TestTimelyAdditiveIncreaseBelowTlow(t *testing.T) {
	f := timely.Default()
	c := f(env())
	c.OnCNP(0) // no-op
	// Two samples below Tlow: first primes prevRTT, second increases.
	c.OnAck(0, nil, 6*units.Microsecond)
	base := c.Rate()
	c.OnAck(0, nil, 6*units.Microsecond)
	if c.Rate() <= base-units.BitRate(1) && c.Rate() != 100*units.Gbps {
		t.Fatalf("rate did not increase below Tlow: %v", c.Rate())
	}
}

func TestTimelyDecreaseAboveThigh(t *testing.T) {
	c := timely.Default()(env())
	c.OnAck(0, nil, 10*units.Microsecond)
	c.OnAck(0, nil, 300*units.Microsecond) // way above Thigh (25.5us)
	if c.Rate() >= 100*units.Gbps {
		t.Fatalf("rate did not decrease above Thigh: %v", c.Rate())
	}
}

func TestTimelyGradientDecrease(t *testing.T) {
	c := timely.Default()(env())
	// Rising RTT inside [Tlow, Thigh]: positive gradient -> decrease.
	c.OnAck(0, nil, 10*units.Microsecond)
	c.OnAck(0, nil, 14*units.Microsecond)
	c.OnAck(0, nil, 18*units.Microsecond)
	if c.Rate() >= 100*units.Gbps {
		t.Fatalf("rate did not decrease on positive gradient: %v", c.Rate())
	}
	low := c.Rate()
	// Falling RTT: negative gradient -> recover.
	for i := 0; i < 20; i++ {
		c.OnAck(0, nil, 9*units.Microsecond)
	}
	if c.Rate() <= low {
		t.Fatalf("rate did not recover on negative gradient: %v", c.Rate())
	}
}

func ackWithInt(hops []packet.IntHop) *packet.Packet {
	p := packet.NewCtrl(1, packet.Ack, 1, 0, 1)
	p.Int = hops
	return p
}

func TestHPCCHoldsWindowWhenIdle(t *testing.T) {
	c := hpcc.Default()(env())
	w0 := c.Window()
	if w0 != 63750 {
		t.Fatalf("initial window = %v", w0)
	}
	if c.Rate() <= 0 || c.Rate() > 100*units.Gbps {
		t.Fatalf("rate out of range: %v", c.Rate())
	}
}

func TestHPCCDecreasesOnHighUtilisation(t *testing.T) {
	c := hpcc.Default()(env())
	mk := func(ts units.Time, tx, qlen units.ByteSize) []packet.IntHop {
		return []packet.IntHop{{TxBytes: tx, QLen: qlen, TS: ts, LinkRate: 100 * units.Gbps}}
	}
	// Reference sample, then a sample showing a saturated link with a
	// deep queue: utilisation >> eta, window must shrink.
	c.OnAck(units.Time(10*units.Microsecond), ackWithInt(mk(units.Time(10*units.Microsecond), 0, 500*units.KB)), 0)
	c.OnAck(units.Time(20*units.Microsecond), ackWithInt(mk(units.Time(20*units.Microsecond), 125*units.KB, 500*units.KB)), 0)
	if c.Window() >= 63750 {
		t.Fatalf("window did not shrink under congestion: %v", c.Window())
	}
}

func TestHPCCGrowsOnLowUtilisation(t *testing.T) {
	c := hpcc.Default()(env())
	mk := func(ts units.Time, tx units.ByteSize) []packet.IntHop {
		return []packet.IntHop{{TxBytes: tx, QLen: 0, TS: ts, LinkRate: 100 * units.Gbps}}
	}
	c.OnAck(units.Time(10*units.Microsecond), ackWithInt(mk(units.Time(10*units.Microsecond), 0)), 0)
	// Nearly idle link: tiny tx, empty queue.
	c.OnAck(units.Time(20*units.Microsecond), ackWithInt(mk(units.Time(20*units.Microsecond), 1*units.KB)), 0)
	w1 := c.Window()
	if w1 <= 63750 {
		t.Fatalf("window did not grow on idle link: %v", w1)
	}
}

func TestHPCCWindowFloor(t *testing.T) {
	c := hpcc.Default()(env())
	mk := func(ts units.Time, tx, q units.ByteSize) []packet.IntHop {
		return []packet.IntHop{{TxBytes: tx, QLen: q, TS: ts, LinkRate: 100 * units.Gbps}}
	}
	tx := units.ByteSize(0)
	for i := 1; i <= 100; i++ {
		ts := units.Time(i) * units.Time(10*units.Microsecond)
		tx += 125 * units.KB
		c.OnAck(ts, ackWithInt(mk(ts, tx, units.MB)), 0)
	}
	if c.Window() < packet.MTU {
		t.Fatalf("window fell below one MTU: %v", c.Window())
	}
	if c.Rate() <= 0 {
		t.Fatalf("rate must stay positive: %v", c.Rate())
	}
}
