package dcqcn

import (
	"testing"

	"floodgate/internal/cc"
	"floodgate/internal/units"
)

func env() cc.Env {
	rtt := units.Duration(51) * units.Microsecond / 10
	rate := 100 * units.Gbps
	return cc.Env{LinkRate: rate, BaseRTT: rtt, BDP: units.BDP(rate, rtt)}
}

func TestAlphaDecaysWhenUncongested(t *testing.T) {
	c := New(DefaultConfig())(env()).(*state)
	c.OnCNP(units.Time(100 * units.Microsecond))
	a0 := c.alpha
	// A quiet millisecond: alpha must decay via the lazy timer.
	c.OnAck(units.Time(1100*units.Microsecond), nil, 0)
	if c.alpha >= a0 {
		t.Fatalf("alpha did not decay: %v -> %v", a0, c.alpha)
	}
}

func TestFastRecoveryHalvesTowardTarget(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)(env()).(*state)
	t0 := units.Time(100 * units.Microsecond)
	c.OnCNP(t0)
	rt := c.rt
	// One increase interval later: Rc moves halfway toward Rt.
	want := (c.rc + rt) / 2
	c.OnAck(t0.Add(cfg.RateIncInterval), nil, 0)
	got := c.rc
	if got < 0.99*want || got > 1.01*want {
		t.Fatalf("fast recovery rc = %v, want ~%v", got, want)
	}
}

func TestByteCounterStages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ByteCounter = 100 * units.KB
	c := New(cfg)(env()).(*state)
	c.OnCNP(units.Time(100 * units.Microsecond))
	low := c.rc
	// Push several byte-counter periods through OnSend.
	for i := 0; i < 10; i++ {
		c.OnSend(units.Time(100*units.Microsecond)+1, 100*units.KB)
	}
	if c.rc <= low {
		t.Fatalf("byte-counter stages did not raise the rate: %v", c.rc)
	}
}

func TestWindowFixedAtBDP(t *testing.T) {
	c := New(DefaultConfig())(env())
	if c.Window() != 63750 {
		t.Fatalf("window = %v, want one BDP", c.Window())
	}
	c.OnCNP(0)
	if c.Window() != 63750 {
		t.Fatal("DCQCN window must not react (rate-based protocol)")
	}
}
