// Package dcqcn implements DCQCN (Zhu et al., SIGCOMM '15): ECN-based
// rate control for RoCEv2. The switch marks ECN between Kmin/Kmax, the
// receiver (notification point) reflects marks as CNPs at most once
// per CNPInterval, and the sender (reaction point) multiplicatively
// decreases on CNP and recovers through fast-recovery, additive and
// hyper increase stages. Timer-driven behaviour (alpha decay, rate
// increase) is evaluated lazily from packet events, which is exact up
// to event granularity and keeps the event loop packet-proportional.
package dcqcn

import (
	"floodgate/internal/cc"
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// Config holds DCQCN reaction-point parameters. The defaults follow
// the common simulation bindings of the original paper.
type Config struct {
	G                 float64        // alpha EWMA gain (1/256)
	AlphaInterval     units.Duration // alpha decay period (55us)
	RateIncInterval   units.Duration // rate-increase timer period (55us)
	ByteCounter       units.ByteSize // rate-increase byte period (10MB)
	FastRecoverySteps int            // F, stages of fast recovery (5)
	RateAI            units.BitRate  // additive increase step (40Mbps)
	RateHAI           units.BitRate  // hyper increase step (400Mbps)
	MinRateFraction   int            // floor = LinkRate / this (1000)
	DecreaseMinGap    units.Duration // min spacing of rate cuts (50us)
}

// DefaultConfig returns the standard parameter binding.
func DefaultConfig() Config {
	return Config{
		G:                 1.0 / 256,
		AlphaInterval:     55 * units.Microsecond,
		RateIncInterval:   55 * units.Microsecond,
		ByteCounter:       10 * units.MB,
		FastRecoverySteps: 5,
		RateAI:            40 * units.Mbps,
		RateHAI:           400 * units.Mbps,
		MinRateFraction:   1000,
		DecreaseMinGap:    50 * units.Microsecond,
	}
}

// New returns a DCQCN controller factory with the given config.
func New(cfg Config) cc.Factory {
	return func(e cc.Env) cc.Controller {
		return &state{
			cfg:     cfg,
			link:    e.LinkRate,
			window:  e.BDP,
			rc:      float64(e.LinkRate),
			rt:      float64(e.LinkRate),
			alpha:   1,
			minRate: float64(e.LinkRate) / float64(cfg.MinRateFraction),
		}
	}
}

// Default returns a factory with DefaultConfig.
func Default() cc.Factory { return New(DefaultConfig()) }

type state struct {
	cfg    Config
	link   units.BitRate
	window units.ByteSize

	rc, rt  float64 // current and target rate (bps)
	alpha   float64
	minRate float64

	everCongested bool       // until the first CNP, stay at line rate
	lastCNP       units.Time // last rate decrease
	lastAlpha     units.Time // last alpha update
	lastTimerInc  units.Time // last timer-driven increase
	bytesSinceInc units.ByteSize
	timerStage    int
	byteStage     int
}

func (s *state) Rate() units.BitRate    { return units.BitRate(s.rc) }
func (s *state) Window() units.ByteSize { return s.window }

// OnCNP is the DCQCN rate decrease.
func (s *state) OnCNP(now units.Time) {
	s.catchUp(now)
	if s.everCongested && now.Sub(s.lastCNP) < s.cfg.DecreaseMinGap {
		// CNPs are already rate-limited at the NP; guard anyway.
		s.alpha = (1-s.cfg.G)*s.alpha + s.cfg.G
		s.lastAlpha = now
		return
	}
	s.everCongested = true
	s.rt = s.rc
	s.rc = s.rc * (1 - s.alpha/2)
	if s.rc < s.minRate {
		s.rc = s.minRate
	}
	s.alpha = (1-s.cfg.G)*s.alpha + s.cfg.G
	s.lastCNP = now
	s.lastAlpha = now
	s.lastTimerInc = now
	s.timerStage = 0
	s.byteStage = 0
	s.bytesSinceInc = 0
}

// OnAck advances lazy timers.
func (s *state) OnAck(now units.Time, _ *packet.Packet, _ units.Duration) {
	s.catchUp(now)
}

// OnSend counts bytes toward the byte-counter increase stage.
func (s *state) OnSend(now units.Time, bytes units.ByteSize) {
	if !s.everCongested {
		return
	}
	s.bytesSinceInc += bytes
	for s.bytesSinceInc >= s.cfg.ByteCounter {
		s.bytesSinceInc -= s.cfg.ByteCounter
		s.byteStage++
		s.increase()
	}
	s.catchUp(now)
}

// catchUp applies every alpha decay and timer increase due since the
// last event.
func (s *state) catchUp(now units.Time) {
	if !s.everCongested {
		s.lastAlpha, s.lastTimerInc = now, now
		return
	}
	for now.Sub(s.lastAlpha) >= s.cfg.AlphaInterval {
		s.lastAlpha = s.lastAlpha.Add(s.cfg.AlphaInterval)
		s.alpha *= 1 - s.cfg.G
	}
	for now.Sub(s.lastTimerInc) >= s.cfg.RateIncInterval {
		s.lastTimerInc = s.lastTimerInc.Add(s.cfg.RateIncInterval)
		s.timerStage++
		s.increase()
	}
}

// increase applies one DCQCN increase event in the stage reached.
func (s *state) increase() {
	f := s.cfg.FastRecoverySteps
	switch {
	case s.timerStage < f && s.byteStage < f:
		// fast recovery: halve toward target
	case s.timerStage > f && s.byteStage > f:
		s.rt += float64(s.cfg.RateHAI) // hyper increase
	default:
		s.rt += float64(s.cfg.RateAI) // additive increase
	}
	if s.rt > float64(s.link) {
		s.rt = float64(s.link)
	}
	s.rc = (s.rt + s.rc) / 2
	if s.rc > float64(s.link) {
		s.rc = float64(s.link)
	}
}
