package hpcc

import (
	"testing"

	"floodgate/internal/cc"
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

func env() cc.Env {
	rtt := units.Duration(51) * units.Microsecond / 10
	rate := 100 * units.Gbps
	return cc.Env{LinkRate: rate, BaseRTT: rtt, BDP: units.BDP(rate, rtt)}
}

func ackWith(hops []packet.IntHop) *packet.Packet {
	p := packet.NewCtrl(1, packet.Ack, 1, 0, 1)
	p.Int = hops
	return p
}

func TestMaxUtilisationPicksWorstHop(t *testing.T) {
	s := New(DefaultConfig())(env()).(*state)
	prev := []packet.IntHop{
		{TxBytes: 0, QLen: 0, TS: 0, LinkRate: 100 * units.Gbps},
		{TxBytes: 0, QLen: 200 * units.KB, TS: 0, LinkRate: 100 * units.Gbps},
	}
	s.OnAck(10, ackWith(prev), 0)
	cur := []packet.IntHop{
		{TxBytes: 10 * units.KB, QLen: 0, TS: units.Time(10 * units.Microsecond), LinkRate: 100 * units.Gbps},
		{TxBytes: 125 * units.KB, QLen: 200 * units.KB, TS: units.Time(10 * units.Microsecond), LinkRate: 100 * units.Gbps},
	}
	u := s.maxUtilisation(cur)
	// Hop 2 is saturated (125KB/10us = full rate) plus deep queue: U > 1.
	if u <= 1 {
		t.Fatalf("max utilisation = %v, want > 1 from the congested hop", u)
	}
}

func TestPathChangeResetsReference(t *testing.T) {
	s := New(DefaultConfig())(env())
	one := []packet.IntHop{{TxBytes: 1, QLen: 0, TS: 1, LinkRate: units.Gbps}}
	two := []packet.IntHop{
		{TxBytes: 1, QLen: 0, TS: 1, LinkRate: units.Gbps},
		{TxBytes: 1, QLen: 0, TS: 1, LinkRate: units.Gbps},
	}
	s.OnAck(10, ackWith(one), 0)
	w0 := s.Window()
	// Hop count changed (rerouted): must re-prime, not compute garbage.
	s.OnAck(20, ackWith(two), 0)
	if s.Window() != w0 {
		t.Fatal("window moved on a path-change reference ack")
	}
}

func TestNoIntNoReaction(t *testing.T) {
	s := New(DefaultConfig())(env())
	w0 := s.Window()
	s.OnAck(10, packet.NewCtrl(1, packet.Ack, 1, 0, 1), 0)
	if s.Window() != w0 {
		t.Fatal("ACK without INT changed the window")
	}
}

func TestRatePacesWindowOverRTT(t *testing.T) {
	s := New(DefaultConfig())(env())
	// W = BDP means pacing at exactly line rate (capped).
	if s.Rate() != 100*units.Gbps {
		t.Fatalf("rate = %v, want line rate at W = BDP", s.Rate())
	}
}
