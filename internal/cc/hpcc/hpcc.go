// Package hpcc implements HPCC (Li et al., SIGCOMM '19): window-based
// congestion control driven by inline network telemetry. Every data
// packet accumulates one IntHop per switch; the receiver echoes the
// stack on the ACK; the sender computes each link's utilisation
// U = qlen/(B·T) + txRate/B and multiplicatively steers its window so
// max-link utilisation converges to η, with additive WAI probing and a
// bounded fast-increase stage count.
package hpcc

import (
	"floodgate/internal/cc"
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// Config holds HPCC parameters (paper §5: η=0.95, maxStage=5).
type Config struct {
	Eta         float64
	MaxStage    int
	WAIFraction float64 // WAI = Winit × WAIFraction
}

// DefaultConfig returns the paper's recommended binding.
func DefaultConfig() Config {
	return Config{Eta: 0.95, MaxStage: 5, WAIFraction: 0.0125}
}

// New returns an HPCC controller factory.
func New(cfg Config) cc.Factory {
	return func(e cc.Env) cc.Controller {
		winit := float64(e.BDP)
		return &state{
			cfg:     cfg,
			link:    e.LinkRate,
			baseRTT: e.BaseRTT,
			wInit:   winit,
			w:       winit,
			wc:      winit,
			wai:     winit * cfg.WAIFraction,
			minW:    float64(packet.MTU),
		}
	}
}

// Default returns a factory with DefaultConfig.
func Default() cc.Factory { return New(DefaultConfig()) }

type state struct {
	cfg     Config
	link    units.BitRate
	baseRTT units.Duration

	wInit float64
	w     float64 // current window
	wc    float64 // reference window
	wai   float64
	minW  float64

	lastInt    []packet.IntHop
	incStage   int
	lastUpdate units.Time
	seenInt    bool
}

func (s *state) Rate() units.BitRate {
	// Pace at W/baseRTT so the window drains smoothly over one RTT.
	r := units.Rate(units.ByteSize(s.w), s.baseRTT)
	if r > s.link {
		return s.link
	}
	if r <= 0 {
		return units.Mbps
	}
	return r
}

func (s *state) Window() units.ByteSize {
	w := units.ByteSize(s.w)
	if w < packet.MTU {
		w = packet.MTU
	}
	return w
}

func (s *state) OnAck(now units.Time, ack *packet.Packet, _ units.Duration) {
	if len(ack.Int) == 0 {
		return
	}
	if !s.seenInt || len(s.lastInt) != len(ack.Int) {
		// First telemetry (or path change): just remember the reference.
		s.lastInt = append(s.lastInt[:0], ack.Int...)
		s.seenInt = true
		return
	}
	u := s.maxUtilisation(ack.Int)
	s.lastInt = append(s.lastInt[:0], ack.Int...)

	updateWc := now.Sub(s.lastUpdate) > s.baseRTT
	if u >= s.cfg.Eta || s.incStage >= s.cfg.MaxStage {
		s.w = s.wc/(u/s.cfg.Eta) + s.wai
		if updateWc {
			s.wc = s.w
			s.incStage = 0
			s.lastUpdate = now
		}
	} else {
		s.w = s.wc + s.wai
		if updateWc {
			s.wc = s.w
			s.incStage++
			s.lastUpdate = now
		}
	}
	if s.w < s.minW {
		s.w = s.minW
	}
	if s.w > 2*s.wInit {
		s.w = 2 * s.wInit
	}
}

// maxUtilisation computes max-link U from consecutive INT snapshots.
func (s *state) maxUtilisation(cur []packet.IntHop) float64 {
	maxU := 0.0
	for i := range cur {
		prev := s.lastInt[i]
		dt := cur[i].TS.Sub(prev.TS)
		if dt <= 0 {
			continue
		}
		b := float64(cur[i].LinkRate)
		if b <= 0 {
			continue
		}
		txRate := float64(cur[i].TxBytes-prev.TxBytes) * 8 / dt.Seconds()
		qlen := cur[i].QLen
		if prev.QLen < qlen {
			qlen = prev.QLen
		}
		qTerm := float64(qlen) * 8 / (b * s.baseRTT.Seconds())
		u := qTerm + txRate/b
		if u > maxU {
			maxU = u
		}
	}
	return maxU
}

func (s *state) OnCNP(units.Time) {}

func (s *state) OnSend(units.Time, units.ByteSize) {}
