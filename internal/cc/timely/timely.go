// Package timely implements TIMELY (Mittal et al., SIGCOMM '15):
// RTT-gradient congestion control. Each ACK yields an RTT sample; the
// controller additively increases below Tlow, multiplicatively
// decreases above Thigh, and in between steers by the normalised RTT
// gradient with HAI (hyper-active increase) after consecutive negative
// gradients. Thresholds default to multiples of the path's base RTT so
// one binding works across the paper's 10 Gbps testbed and 100 Gbps
// fabric.
package timely

import (
	"floodgate/internal/cc"
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// Config holds TIMELY parameters.
type Config struct {
	EWMA            float64 // alpha for RTT-difference smoothing
	Beta            float64 // multiplicative decrease factor
	TLowFactor      float64 // Tlow = TLowFactor × baseRTT
	THighFactor     float64 // Thigh = THighFactor × baseRTT
	DeltaFraction   int     // additive step = LinkRate / DeltaFraction
	HAIAfter        int     // consecutive negative-gradient samples before HAI
	MinRateFraction int     // floor = LinkRate / this
}

// DefaultConfig returns the binding used in the experiments.
func DefaultConfig() Config {
	return Config{
		EWMA:            0.3,
		Beta:            0.8,
		TLowFactor:      1.5,
		THighFactor:     5,
		DeltaFraction:   200,
		HAIAfter:        5,
		MinRateFraction: 1000,
	}
}

// New returns a TIMELY controller factory.
func New(cfg Config) cc.Factory {
	return func(e cc.Env) cc.Controller {
		return &state{
			cfg:     cfg,
			link:    e.LinkRate,
			window:  e.BDP,
			minRTT:  e.BaseRTT,
			tLow:    units.Duration(cfg.TLowFactor * float64(e.BaseRTT)),
			tHigh:   units.Duration(cfg.THighFactor * float64(e.BaseRTT)),
			rate:    float64(e.LinkRate),
			delta:   float64(e.LinkRate) / float64(cfg.DeltaFraction),
			minRate: float64(e.LinkRate) / float64(cfg.MinRateFraction),
		}
	}
}

// Default returns a factory with DefaultConfig.
func Default() cc.Factory { return New(DefaultConfig()) }

type state struct {
	cfg    Config
	link   units.BitRate
	window units.ByteSize
	minRTT units.Duration
	tLow   units.Duration
	tHigh  units.Duration

	rate    float64
	delta   float64
	minRate float64

	prevRTT  units.Duration
	rttDiff  float64 // smoothed RTT difference (ps)
	negCount int
}

func (s *state) Rate() units.BitRate    { return units.BitRate(s.rate) }
func (s *state) Window() units.ByteSize { return s.window }

func (s *state) OnAck(_ units.Time, _ *packet.Packet, rtt units.Duration) {
	if rtt <= 0 {
		return
	}
	if s.prevRTT == 0 {
		s.prevRTT = rtt
		return
	}
	newDiff := float64(rtt - s.prevRTT)
	s.prevRTT = rtt
	s.rttDiff = (1-s.cfg.EWMA)*s.rttDiff + s.cfg.EWMA*newDiff
	gradient := s.rttDiff / float64(s.minRTT)

	switch {
	case rtt < s.tLow:
		s.negCount = 0
		s.rate += s.delta
	case rtt > s.tHigh:
		s.negCount = 0
		s.rate *= 1 - s.cfg.Beta*(1-float64(s.tHigh)/float64(rtt))
	case gradient <= 0:
		s.negCount++
		n := 1.0
		if s.negCount >= s.cfg.HAIAfter {
			n = 5
		}
		s.rate += n * s.delta
	default:
		s.negCount = 0
		if gradient > 1 {
			gradient = 1
		}
		s.rate *= 1 - s.cfg.Beta*gradient
	}
	if s.rate > float64(s.link) {
		s.rate = float64(s.link)
	}
	if s.rate < s.minRate {
		s.rate = s.minRate
	}
}

func (s *state) OnCNP(units.Time) {}

func (s *state) OnSend(units.Time, units.ByteSize) {}
