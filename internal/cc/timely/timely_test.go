package timely

import (
	"testing"

	"floodgate/internal/cc"
	"floodgate/internal/units"
)

func env() cc.Env {
	rtt := units.Duration(51) * units.Microsecond / 10
	rate := 100 * units.Gbps
	return cc.Env{LinkRate: rate, BaseRTT: rtt, BDP: units.BDP(rate, rtt)}
}

func TestThresholdsScaleWithBaseRTT(t *testing.T) {
	s := New(DefaultConfig())(env()).(*state)
	if s.tLow != units.Duration(1.5*float64(s.minRTT)) {
		t.Fatalf("tLow = %v", s.tLow)
	}
	if s.tHigh != 5*s.minRTT {
		t.Fatalf("tHigh = %v", s.tHigh)
	}
}

func TestHAIAfterConsecutiveNegativeGradients(t *testing.T) {
	s := New(DefaultConfig())(env()).(*state)
	// Decrease first so there is headroom to observe increases.
	s.OnAck(0, nil, 10*units.Microsecond)
	s.OnAck(0, nil, 20*units.Microsecond)
	base := s.rate
	// Falling RTTs: the smoothed gradient needs a few samples to turn
	// negative; after that increases apply, eventually at 5x (HAI).
	var steps []float64
	for i := 0; i < 24; i++ {
		prev := s.rate
		s.OnAck(0, nil, units.Duration(18-i/2)*units.Microsecond)
		steps = append(steps, s.rate-prev)
	}
	if s.rate <= base {
		t.Fatalf("no recovery on falling RTTs (rate %v vs %v)", s.rate, base)
	}
	if steps[len(steps)-1] <= steps[0] {
		t.Fatalf("HAI did not accelerate increases: %v", steps)
	}
}

func TestIgnoresNonPositiveRTT(t *testing.T) {
	s := New(DefaultConfig())(env())
	r0 := s.Rate()
	s.OnAck(0, nil, 0)
	s.OnAck(0, nil, -5)
	if s.Rate() != r0 {
		t.Fatal("non-positive RTT samples must be ignored")
	}
}

func TestRateFloor(t *testing.T) {
	s := New(DefaultConfig())(env())
	for i := 0; i < 500; i++ {
		s.OnAck(0, nil, units.Millisecond)
	}
	if s.Rate() < 100*units.Mbps {
		t.Fatalf("rate fell through the floor: %v", s.Rate())
	}
}
