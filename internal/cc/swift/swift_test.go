package swift

import (
	"testing"

	"floodgate/internal/cc"
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

func env() cc.Env {
	rtt := units.Duration(51) * units.Microsecond / 10
	rate := 100 * units.Gbps
	return cc.Env{LinkRate: rate, BaseRTT: rtt, BDP: units.BDP(rate, rtt)}
}

func ack(seq units.ByteSize) *packet.Packet {
	p := packet.NewCtrl(1, packet.Ack, 1, 0, 1)
	p.AckSeq = seq
	return p
}

func TestInitialState(t *testing.T) {
	c := Default()(env())
	if c.Window() != 63750 {
		t.Fatalf("initial window = %v", c.Window())
	}
	if c.Rate() <= 0 || c.Rate() > 100*units.Gbps {
		t.Fatalf("rate = %v", c.Rate())
	}
}

func TestBelowTargetGrows(t *testing.T) {
	c := Default()(env())
	w0 := c.Window()
	seq := units.ByteSize(0)
	// Acks covering more than one window at a low RTT -> +AI.
	for i := 0; i < 50; i++ {
		seq += 2 * units.KB
		c.OnAck(units.Time(i)*units.Time(units.Microsecond), ack(seq), 5*units.Microsecond)
	}
	if c.Window() <= w0 {
		t.Fatalf("window did not grow below target: %v", c.Window())
	}
}

func TestAboveTargetCuts(t *testing.T) {
	c := Default()(env())
	w0 := c.Window()
	c.OnAck(units.Time(10*units.Microsecond), ack(units.KB), 60*units.Microsecond)
	if c.Window() >= w0 {
		t.Fatalf("window did not shrink above target: %v", c.Window())
	}
}

func TestDecreaseRateLimitedPerRTT(t *testing.T) {
	c := Default()(env())
	now := units.Time(10 * units.Microsecond)
	c.OnAck(now, ack(units.KB), 60*units.Microsecond)
	w1 := c.Window()
	// Immediate second over-target sample within the same RTT: no
	// further cut.
	c.OnAck(now.Add(units.Microsecond), ack(2*units.KB), 60*units.Microsecond)
	if c.Window() != w1 {
		t.Fatalf("cut twice within one RTT: %v -> %v", w1, c.Window())
	}
	// After a base RTT, cutting resumes.
	c.OnAck(now.Add(6*units.Microsecond), ack(3*units.KB), 60*units.Microsecond)
	if c.Window() >= w1 {
		t.Fatal("cut did not resume after an RTT")
	}
}

func TestFloorsAndCaps(t *testing.T) {
	c := Default()(env())
	for i := 0; i < 200; i++ {
		c.OnAck(units.Time(i)*units.Time(10*units.Microsecond), ack(units.ByteSize(i)*units.KB), units.Millisecond)
	}
	if c.Window() < packet.MTU {
		t.Fatalf("window below MTU floor: %v", c.Window())
	}
	c2 := Default()(env())
	seq := units.ByteSize(0)
	for i := 0; i < 100000; i++ {
		seq += 64 * units.KB
		c2.OnAck(units.Time(i), ack(seq), units.Microsecond)
	}
	if c2.Window() > 4*63750 {
		t.Fatalf("window above 4 BDP cap: %v", c2.Window())
	}
}
