// Package swift implements Swift (Kumar et al., SIGCOMM '20), the
// delay-based datacenter congestion control the paper lists among the
// reactive protocols Floodgate complements (§2.3). Swift compares each
// RTT sample against a target delay (base plus a flow-count-aware
// scaling term), applies AIMD on the congestion window with pacing
// below one packet, and uses multiplicative decrease proportional to
// the delay overshoot.
package swift

import (
	"floodgate/internal/cc"
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// Config holds Swift parameters.
type Config struct {
	// BaseTargetFactor scales the flow's target delay from base RTT.
	BaseTargetFactor float64
	// AI is the additive increase in bytes per acked window.
	AI units.ByteSize
	// Beta is the max multiplicative decrease factor per decision.
	Beta float64
	// MaxMDFrequencyRTTs spaces multiplicative decreases (1 per RTT).
	MaxScale float64 // cap of target scaling range
}

// DefaultConfig returns the binding used in the experiments.
func DefaultConfig() Config {
	return Config{BaseTargetFactor: 1.25, AI: packet.MTU, Beta: 0.8, MaxScale: 4}
}

// New returns a Swift controller factory.
func New(cfg Config) cc.Factory {
	return func(e cc.Env) cc.Controller {
		return &state{
			cfg:     cfg,
			link:    e.LinkRate,
			baseRTT: e.BaseRTT,
			target:  units.Duration(cfg.BaseTargetFactor * float64(e.BaseRTT)),
			bdp:     float64(e.BDP),
			cwnd:    float64(e.BDP),
		}
	}
}

// Default returns a factory with DefaultConfig.
func Default() cc.Factory { return New(DefaultConfig()) }

type state struct {
	cfg     Config
	link    units.BitRate
	baseRTT units.Duration
	target  units.Duration
	bdp     float64

	cwnd       float64
	lastCut    units.Time
	ackedSince units.ByteSize
	lastAckSeq units.ByteSize
}

func (s *state) Rate() units.BitRate {
	// Pace the window over the base RTT (Swift paces below 1-packet
	// windows; our floor is one MTU so plain pacing suffices).
	r := units.Rate(units.ByteSize(s.cwnd), s.baseRTT)
	if r > s.link {
		return s.link
	}
	if r <= 0 {
		return units.Mbps
	}
	return r
}

func (s *state) Window() units.ByteSize {
	w := units.ByteSize(s.cwnd)
	if w < packet.MTU {
		w = packet.MTU
	}
	return w
}

func (s *state) OnAck(now units.Time, ack *packet.Packet, rtt units.Duration) {
	if rtt <= 0 {
		return
	}
	if ack != nil {
		if delta := ack.AckSeq - s.lastAckSeq; delta > 0 {
			s.ackedSince += delta
			s.lastAckSeq = ack.AckSeq
		}
	}
	if rtt <= s.target {
		// Additive increase, scaled per acked window.
		if float64(s.ackedSince) >= s.cwnd {
			s.cwnd += float64(s.cfg.AI)
			s.ackedSince = 0
		}
	} else if now.Sub(s.lastCut) >= s.baseRTT {
		// Multiplicative decrease proportional to overshoot, at most
		// once per RTT.
		over := 1 - float64(s.target)/float64(rtt)
		cut := s.cfg.Beta * over
		if cut > s.cfg.Beta {
			cut = s.cfg.Beta
		}
		s.cwnd *= 1 - cut
		s.lastCut = now
	}
	if s.cwnd < float64(packet.MTU) {
		s.cwnd = float64(packet.MTU)
	}
	if s.cwnd > s.cfg.MaxScale*s.bdp {
		s.cwnd = s.cfg.MaxScale * s.bdp
	}
}

func (s *state) OnCNP(units.Time) {}

func (s *state) OnSend(units.Time, units.ByteSize) {}
