// Package cc defines the congestion-control contract between a host's
// flow and its rate/window algorithm, plus the per-flow sending window
// the paper layers on every protocol ("a per-flow sending window on
// hosts is added ... limiting the in-flight packets of a flow", §6).
// Concrete algorithms live in the subpackages dcqcn, timely and hpcc.
package cc

import (
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// Controller adapts one flow's sending rate and window to congestion
// feedback. Implementations are single-flow and single-threaded; all
// time-dependent behaviour must be computed lazily from the timestamps
// passed in (the simulator never gives a controller its own timers, so
// a run's event count stays proportional to packets, not flows).
type Controller interface {
	// Rate returns the current pacing rate.
	Rate() units.BitRate
	// Window returns the in-flight byte limit.
	Window() units.ByteSize
	// OnAck processes an acknowledgement carrying optional ECN echo and
	// INT telemetry; rtt is the host-measured sample for this ACK.
	OnAck(now units.Time, ack *packet.Packet, rtt units.Duration)
	// OnCNP processes a DCQCN congestion-notification packet.
	OnCNP(now units.Time)
	// OnSend observes payload bytes handed to the NIC.
	OnSend(now units.Time, bytes units.ByteSize)
}

// Env is what a controller knows about its flow's path when created.
type Env struct {
	LinkRate units.BitRate  // host NIC line rate
	BaseRTT  units.Duration // unloaded round-trip time
	BDP      units.ByteSize // LinkRate × BaseRTT
}

// Factory builds a controller for one new flow.
type Factory func(Env) Controller

// FixedWindow is the degenerate controller: line rate, one-BDP window,
// no reaction. It emulates a sender's first-RTT behaviour in isolation
// and serves as the control in unit tests.
type FixedWindow struct {
	R units.BitRate
	W units.ByteSize
}

// NewFixedWindow returns a FixedWindow factory.
func NewFixedWindow() Factory {
	return func(e Env) Controller {
		return &FixedWindow{R: e.LinkRate, W: e.BDP}
	}
}

// Rate implements Controller.
func (f *FixedWindow) Rate() units.BitRate { return f.R }

// Window implements Controller.
func (f *FixedWindow) Window() units.ByteSize { return f.W }

// OnAck implements Controller.
func (f *FixedWindow) OnAck(units.Time, *packet.Packet, units.Duration) {}

// OnCNP implements Controller.
func (f *FixedWindow) OnCNP(units.Time) {}

// OnSend implements Controller.
func (f *FixedWindow) OnSend(units.Time, units.ByteSize) {}
