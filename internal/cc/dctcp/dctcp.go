// Package dctcp implements DCTCP (Alizadeh et al., SIGCOMM '10)
// adapted to the simulator's RoCE-style hosts: a window-based
// controller that tracks the fraction of ECN-marked acknowledgements
// per window and shrinks the congestion window proportionally
// (cwnd ← cwnd·(1 − α/2)), growing additively otherwise. The paper's
// §8 discusses Floodgate's compatibility with DCTCP alongside DCQCN
// and HPCC; this package lets the harness exercise that combination.
package dctcp

import (
	"floodgate/internal/cc"
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// Config holds DCTCP parameters.
type Config struct {
	G float64 // alpha EWMA gain (1/16)
	// InitWindowBDP scales the initial window in BDP units (1.0).
	InitWindowBDP float64
}

// DefaultConfig returns the paper binding.
func DefaultConfig() Config { return Config{G: 1.0 / 16, InitWindowBDP: 1} }

// New returns a DCTCP controller factory.
func New(cfg Config) cc.Factory {
	return func(e cc.Env) cc.Controller {
		w := float64(e.BDP) * cfg.InitWindowBDP
		return &state{
			cfg:  cfg,
			link: e.LinkRate,
			bdp:  float64(e.BDP),
			cwnd: w,
		}
	}
}

// Default returns a factory with DefaultConfig.
func Default() cc.Factory { return New(DefaultConfig()) }

type state struct {
	cfg  Config
	link units.BitRate
	bdp  float64

	cwnd  float64
	alpha float64

	ackedBytes  units.ByteSize // bytes acked this observation window
	markedBytes units.ByteSize // of which ECN-echo marked
	windowAcked units.ByteSize // progress toward one cwnd of acks
	lastAck     units.ByteSize
}

func (s *state) Rate() units.BitRate { return s.link } // window-limited, line-rate bursts

func (s *state) Window() units.ByteSize {
	w := units.ByteSize(s.cwnd)
	if w < packet.MTU {
		w = packet.MTU
	}
	return w
}

func (s *state) OnAck(_ units.Time, ack *packet.Packet, _ units.Duration) {
	if ack == nil {
		return
	}
	delta := ack.AckSeq - s.lastAck
	if delta <= 0 {
		return
	}
	s.lastAck = ack.AckSeq
	s.ackedBytes += delta
	if ack.EchoECN {
		s.markedBytes += delta
	}
	s.windowAcked += delta
	if float64(s.windowAcked) < s.cwnd {
		return
	}
	// One congestion window of acknowledgements observed: update alpha
	// and adjust the window.
	frac := 0.0
	if s.ackedBytes > 0 {
		frac = float64(s.markedBytes) / float64(s.ackedBytes)
	}
	s.alpha = (1-s.cfg.G)*s.alpha + s.cfg.G*frac
	if frac > 0 {
		s.cwnd *= 1 - s.alpha/2
	} else {
		s.cwnd += float64(packet.MTU) // additive increase per RTT
	}
	if s.cwnd < float64(packet.MTU) {
		s.cwnd = float64(packet.MTU)
	}
	if s.cwnd > 4*s.bdp {
		s.cwnd = 4 * s.bdp
	}
	s.ackedBytes, s.markedBytes, s.windowAcked = 0, 0, 0
}

func (s *state) OnCNP(units.Time) {}

func (s *state) OnSend(units.Time, units.ByteSize) {}
