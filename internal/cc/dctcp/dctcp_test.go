package dctcp

import (
	"testing"

	"floodgate/internal/cc"
	"floodgate/internal/packet"
	"floodgate/internal/units"
)

func env() cc.Env {
	rtt := units.Duration(51) * units.Microsecond / 10
	rate := 100 * units.Gbps
	return cc.Env{LinkRate: rate, BaseRTT: rtt, BDP: units.BDP(rate, rtt)}
}

func ack(seq units.ByteSize, marked bool) *packet.Packet {
	p := packet.NewCtrl(1, packet.Ack, 1, 0, 1)
	p.AckSeq = seq
	p.EchoECN = marked
	return p
}

func TestInitialWindowIsBDP(t *testing.T) {
	c := Default()(env())
	if c.Window() != 63750 {
		t.Fatalf("initial window = %v", c.Window())
	}
	if c.Rate() != 100*units.Gbps {
		t.Fatalf("rate = %v", c.Rate())
	}
}

func TestUnmarkedWindowGrows(t *testing.T) {
	c := Default()(env())
	w0 := c.Window()
	// One full window of clean acks -> +1 MTU.
	c.OnAck(0, ack(64*units.KB, false), 0)
	if got := c.Window(); got != w0+packet.MTU {
		t.Fatalf("window = %v, want %v", got, w0+packet.MTU)
	}
}

func TestFullyMarkedWindowHalves(t *testing.T) {
	c := Default()(env())
	w0 := float64(c.Window())
	// Every ack in the window marked: alpha = g after one window, so
	// the cut is (1 - g/2); repeat until alpha saturates toward 1 and
	// the window approaches half per window.
	seq := units.ByteSize(0)
	for i := 0; i < 40; i++ {
		seq += 64 * units.KB
		c.OnAck(0, ack(seq, true), 0)
	}
	if float64(c.Window()) > 0.2*w0 {
		t.Fatalf("persistently marked window did not shrink: %v of %v", c.Window(), units.ByteSize(w0))
	}
	if c.Window() < packet.MTU {
		t.Fatal("window fell below one MTU")
	}
}

func TestPartialMarkingGentler(t *testing.T) {
	run := func(markEvery int) units.ByteSize {
		c := Default()(env())
		seq := units.ByteSize(0)
		for i := 0; i < 64; i++ {
			seq += 2 * units.KB
			c.OnAck(0, ack(seq, i%markEvery == 0), 0)
		}
		return c.Window()
	}
	lightly := run(8)
	heavily := run(1)
	if lightly <= heavily {
		t.Fatalf("light marking (%v) should leave a larger window than heavy (%v)", lightly, heavily)
	}
}

func TestDuplicateAcksIgnored(t *testing.T) {
	c := Default()(env())
	w0 := c.Window()
	for i := 0; i < 100; i++ {
		c.OnAck(0, ack(1000, false), 0) // no progress after the first
	}
	if c.Window() != w0 {
		t.Fatalf("duplicate acks changed the window: %v", c.Window())
	}
}

func TestWindowCapped(t *testing.T) {
	c := Default()(env())
	seq := units.ByteSize(0)
	for i := 0; i < 10000; i++ {
		seq += 64 * units.KB
		c.OnAck(0, ack(seq, false), 0)
	}
	if c.Window() > 4*63750 {
		t.Fatalf("window exceeded 4 BDP cap: %v", c.Window())
	}
}
