package exp

import (
	"fmt"
	"runtime/debug"

	"floodgate/internal/app"
	"floodgate/internal/device"
	"floodgate/internal/fault"
	"floodgate/internal/forensics"
	"floodgate/internal/sim"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/units"
	"floodgate/internal/workload"
)

// Options scales every experiment between smoke-test and paper scale
// using a "slow-motion" model: link rates shrink by Scale while
// propagation delays and every protocol time constant stretch by
// 1/Scale, so all byte-dimensioned quantities — BDPs, windows, ECN
// thresholds, buffer sizes, flow sizes — stay at their paper values
// and the buffer/FCT *shapes* are preserved. Rack width also shrinks
// with Scale. Scale 1 is the paper's 160-host, 100/400 Gbps fabric.
type Options struct {
	// Scale in (0,1].
	Scale float64
	// Seed drives workload generation and every stochastic tie-break.
	Seed uint64
	// Parallelism caps how many independent simulations run
	// concurrently: 0 uses every core (GOMAXPROCS), 1 reproduces the
	// serial path exactly, n > 1 uses an n-worker pool. Output is
	// bit-identical at every setting (see parallel.go).
	Parallelism int
	// Obs switches on per-run metrics sampling and timeline export
	// (see obs.go). Enabling it never changes table output.
	Obs ObsConfig
	// Scheduler selects the engine's event-queue implementation. The
	// zero value is the timing wheel; SchedHeap restores the single
	// global heap. Both execute events in the identical order, so every
	// table is bit-identical across the choice (see sched_test.go).
	Scheduler sim.Scheduler
	// Shards splits each run's topology into this many partitions, one
	// engine per partition, advanced in conservative lookahead windows
	// (see shardexec.go and DESIGN.md §10). 0 and 1 both mean a single
	// unsharded engine. Output is bit-identical at every shard count.
	Shards int
	// App overlays a small closed-loop request workload on experiments
	// that support it (currently faultmatrix), appending SLO columns to
	// their tables. Off by default, leaving every existing table
	// byte-identical; the dedicated sloincast experiment runs the app
	// plane regardless.
	App bool
	// Topo selects a large-fabric preset by name (see TopoPresets) for
	// the experiments that take one — currently only scaleincast reads
	// it, so every paper figure keeps its own fixed fabric and stays
	// byte-identical. Empty picks the experiment's default preset.
	// Unlike Scale, a preset fixes the fabric's dimensions exactly
	// (clos100k is 102,400 hosts at any Scale); Scale still applies
	// the slow-motion rate/time model on top.
	Topo string
}

// DefaultOptions returns a laptop-friendly scale.
func DefaultOptions() Options { return Options{Scale: 0.25, Seed: 1} }

func (o Options) norm() Options {
	if o.Scale <= 0 {
		o.Scale = 0.25
	}
	if o.Scale > 1 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// shards normalises the shard count (0 means unsharded).
func (o Options) shards() int {
	if o.Shards < 1 {
		return 1
	}
	return o.Shards
}

// hostsPerToR maps scale to rack width (paper: 16). The floor of 6
// keeps a rack's incast share (hosts × 35 MTU) above the per-dst
// Floodgate window so source-side taming stays observable.
func (o Options) hostsPerToR() int {
	h := int(16*o.Scale + 0.5)
	if h < 6 {
		h = 6
	}
	return h
}

// rate scales a paper link rate down.
func (o Options) rate(full units.BitRate) units.BitRate {
	return units.BitRate(float64(full) * o.Scale)
}

// stretch expands a paper time constant (durations, timer periods).
func (o Options) stretch(full units.Duration) units.Duration {
	return units.Duration(float64(full) / o.Scale)
}

// windowOverride, when positive, replaces every experiment's workload
// window. It exists for the test suite's smoke pass, which runs all
// experiments on a budget; production paths never set it.
var windowOverride units.Duration

// duration is the workload window. It stays at the paper's wall-clock
// value at every scale: with the slow-motion clock this covers fewer
// (but still hundreds of) RTTs, keeping total event counts roughly
// proportional to Scale².
func (o Options) duration(full units.Duration) units.Duration {
	if windowOverride > 0 {
		return windowOverride
	}
	return full
}

// spines scales the core layer with rack width, exactly preserving the
// paper's non-blocking ratio (16 hosts × 100G = 4 spines × 400G): one
// spine per four hosts per rack. Fewer spines also shrink the
// aggregate of per-spine Floodgate windows, keeping the mechanism's
// engagement condition scale-invariant.
func (o Options) spines() int {
	h := o.hostsPerToR()
	s := (h + 3) / 4
	if s < 1 {
		s = 1
	}
	return s
}

// bufferSize scales the 20MB shared switch buffer with rack width so
// the buffer-pressure ratio (offered incast bytes vs buffer) matches
// the paper's.
func (o Options) bufferSize() units.ByteSize {
	return units.ByteSize(float64(20*units.MB) * float64(o.hostsPerToR()) / 16)
}

// leafSpine builds the §6 fabric at this scale.
func (o Options) leafSpine() *topo.Topology {
	c := topo.DefaultLeafSpine()
	c.HostsPerToR = o.hostsPerToR()
	c.Spines = o.spines()
	c.HostRate = o.rate(c.HostRate)
	c.SpineRate = o.rate(c.SpineRate)
	c.Prop = o.stretch(c.Prop)
	return c.Build()
}

// fatTree builds the §6.2 8-ary fabric at this scale.
func (o Options) fatTree() *topo.Topology {
	c := topo.DefaultFatTree()
	c.Rate = o.rate(c.Rate)
	c.Prop = o.stretch(c.Prop)
	h := int(4*o.Scale + 0.5)
	if h < 2 {
		h = 2
	}
	c.HostsPerEdge = h
	return c.Build()
}

// RunConfig assembles one simulation run.
type RunConfig struct {
	Topo     *topo.Topology
	Scheme   Scheme
	Specs    []workload.FlowSpec
	Duration units.Duration // workload window; the run drains afterwards
	Drain    units.Duration // extra time allowed for completions (default 4x)
	Seed     uint64
	Opt      Options // supplies the time-stretch for protocol timers

	BufferSize     units.ByteSize
	PFCOff         bool
	LossRate       float64
	CreditLossRate float64
	ECN            *device.ECNConfig // override scheme default
	BinWidth       units.Duration

	// Faults injects deterministic link/switch failures (see
	// internal/fault). Nil runs a healthy fabric.
	Faults *fault.Plan
	// StallHorizon arms the progress watchdog: no payload delivered for
	// this long stops the run with a StallDiagnosis instead of burning
	// the time bound. Zero picks a default (4×RTO) when Faults is set
	// and leaves the watchdog off otherwise.
	StallHorizon units.Duration

	// App overlays the closed-loop application plane (see internal/app):
	// requests, deadlines, retries, hedging and circuit breaking on top
	// of (or instead of) the open-loop Specs. Nil leaves every existing
	// run byte-identical.
	App *app.Config
	// Source streams additional open-loop flow specs (e.g. from an
	// NDJSON file via workload.OpenSpecFile) without materializing them;
	// specs must arrive in non-decreasing Start order, after Specs'
	// latest start. SourceLabel names the stream in content-hash labels.
	Source      workload.SpecSource
	SourceLabel string
}

// Validate rejects configurations that would misrun silently.
func (rc RunConfig) Validate() error {
	if rc.Topo == nil {
		return fmt.Errorf("exp: RunConfig.Topo is nil")
	}
	if rc.Duration <= 0 {
		return fmt.Errorf("exp: RunConfig.Duration must be positive, got %v", rc.Duration)
	}
	if rc.Drain < 0 {
		return fmt.Errorf("exp: RunConfig.Drain must be non-negative, got %v", rc.Drain)
	}
	if rc.LossRate < 0 || rc.LossRate > 1 {
		return fmt.Errorf("exp: RunConfig.LossRate %g outside [0, 1]", rc.LossRate)
	}
	if rc.CreditLossRate < 0 || rc.CreditLossRate > 1 {
		return fmt.Errorf("exp: RunConfig.CreditLossRate %g outside [0, 1]", rc.CreditLossRate)
	}
	if rc.StallHorizon < 0 {
		return fmt.Errorf("exp: RunConfig.StallHorizon must be non-negative, got %v", rc.StallHorizon)
	}
	if rc.Faults != nil {
		if err := rc.Faults.Validate(); err != nil {
			return err
		}
	}
	if rc.Opt.Shards < 0 {
		return fmt.Errorf("exp: Options.Shards must be non-negative, got %d", rc.Opt.Shards)
	}
	if rc.App != nil {
		if rc.App.Requests <= 0 {
			return fmt.Errorf("exp: RunConfig.App.Requests must be positive, got %d", rc.App.Requests)
		}
		if rc.App.Interval <= 0 {
			return fmt.Errorf("exp: RunConfig.App.Interval must be positive, got %v", rc.App.Interval)
		}
		if rc.App.Deadline <= 0 {
			return fmt.Errorf("exp: RunConfig.App.Deadline must be positive, got %v", rc.App.Deadline)
		}
	}
	if rc.Opt.Obs.Enabled() && rc.Opt.shards() > 1 {
		return fmt.Errorf("exp: Obs requires Shards <= 1 (the sampler and trace ring are single-engine)")
	}
	return nil
}

// RunResult carries the collector plus run metadata.
type RunResult struct {
	Scheme string
	// Stats is the (shard-merged) collector; at Shards <= 1 it is simply
	// the run's only collector.
	Stats *stats.Collector
	// Net is shard 0's network: at Shards <= 1 it is the whole
	// simulation (the historical API). Sharded aggregates live on
	// Cluster and the RunResult helpers below.
	Net     *device.Network
	Cluster *device.Cluster

	Duration  units.Duration // workload window
	Completed int
	Total     int

	// Stalled reports the progress watchdog tripped; Diagnosis then
	// explains where the undelivered bytes were stuck.
	Stalled   bool
	Diagnosis *StallDiagnosis

	// Forensics is the merged causal-forensics report; nil unless
	// Options.Obs.Forensics was set.
	Forensics *forensics.Report

	// SLO scores the closed-loop application plane; nil unless
	// RunConfig.App was set. AppRecords is the per-request outcome
	// detail behind it, in request order.
	SLO        *app.SLO
	AppRecords []app.Record
}

// shardCount is one shard's flow-completion counter. Each shard gets
// its own heap allocation — not a slot in a shared slice — so the hot
// OnFlowDone increments of different shards never touch the same cache
// line, and no mutable value is aliased across shard Networks (the
// shardsafety lint rule's contract). The coordinator sums the counters
// only at barrier windows, where the shard engines are quiescent.
type shardCount struct {
	n int
	_ [120]byte // pad past a cache line so adjacent size-class allocations cannot share one
}

// DeliveredBytes is the payload delivered across every shard.
func (r *RunResult) DeliveredBytes() units.ByteSize { return r.Cluster.DeliveredBytes() }

// FaultStats aggregates fault counters across every shard.
func (r *RunResult) FaultStats() device.FaultStats { return r.Cluster.FaultStats() }

// Processed is the executed event count summed over the shard engines.
func (r *RunResult) Processed() uint64 { return r.Cluster.Processed() }

// Run executes one configured simulation: install the workload, run
// the workload window plus drain time (stopping early once every flow
// completes), close open statistics, and report. Invalid configs and
// internal failures panic with a *RunError naming the run's content
// hash; the parallel executor recovers it at the run boundary so one
// faulting run cannot kill a sweep.
func Run(rc RunConfig) *RunResult {
	defer func() {
		if v := recover(); v != nil {
			if _, ok := v.(*RunError); ok {
				panic(v)
			}
			panic(&RunError{ConfigHash: obsLabel(rc), Value: v, Stack: string(debug.Stack())})
		}
	}()
	if err := rc.Validate(); err != nil {
		panic(err)
	}
	opt := rc.Opt.norm()
	k := opt.shards()
	binW := rc.BinWidth
	if binW == 0 {
		binW = 10 * units.Microsecond
	}
	engines := make([]*sim.Engine, k)
	collectors := make([]*stats.Collector, k)
	for i := range engines {
		engines[i] = sim.NewEngineWith(opt.Scheduler)
		collectors[i] = stats.NewCollector(binW)
	}
	ecn := device.ECNConfig{Enable: rc.Scheme.ECN, KMin: 40 * units.KB, KMax: 160 * units.KB, PMax: 0.2}
	if rc.ECN != nil {
		ecn = *rc.ECN
	}
	cfg := device.Config{
		Topo:           rc.Topo,
		Seed:           rc.Seed ^ 0x5eed,
		BufferSize:     rc.BufferSize,
		RTO:            opt.stretch(units.Millisecond),
		CNPInterval:    opt.stretch(50 * units.Microsecond),
		PFC:            device.PFCConfig{Enable: !rc.PFCOff && !rc.Scheme.NDP, Alpha: 2},
		ECN:            ecn,
		INT:            rc.Scheme.INT,
		CC:             rc.Scheme.CC,
		FC:             rc.Scheme.FC,
		QueuesPerPort:  rc.Scheme.QueuesPerPort,
		PerDstPause:    rc.Scheme.PerDstPause,
		LossRate:       rc.LossRate,
		CreditLossRate: rc.CreditLossRate,
	}
	if rc.Scheme.NDP {
		cfg.NDP = device.NDPConfig{Enable: true}
	}
	if cfg.BufferSize == 0 {
		cfg.BufferSize = opt.bufferSize()
	}
	// Observability: a private registry, sampler and trace ring per run.
	// Sampler ticks only read state, so enabling this cannot change the
	// simulation outcome (see obs.go and DESIGN.md §8). Validate rejects
	// Obs with Shards > 1, so the single engine here is the whole run.
	var obs *obsRun
	if opt.Obs.Enabled() {
		obs = newObsRun(rc, opt, engines[0], &cfg)
	}
	// Forensics recording is shard-safe (NewCluster forks a sibling
	// recorder per extra shard) and read back only after Finalize, so
	// unlike the sampler it composes with Shards > 1.
	if opt.Obs.Forensics {
		cfg.Forensics = forensics.NewRecorder()
	}
	cluster := device.NewCluster(cfg, engines, collectors, topo.Partition(rc.Topo, k))
	cluster.InstallFaults(rc.Faults, rc.Seed)
	if obs != nil {
		obs.start()
	}

	// Register the whole workload up front (FlowID = global spec order)
	// and let the per-shard injection chains start flows at their Start
	// times; the event queues stay shallow even for millions of
	// arrivals. Completion is counted per shard (a flow finishes on its
	// receiver's shard) and aggregated only at barriers.
	total := len(rc.Specs)
	for _, s := range rc.Specs {
		cluster.AddFlow(s.Src, s.Dst, s.Size, s.Start, s.Cat)
	}
	if rc.Source != nil {
		// Streamed specs register one at a time — the source is never
		// materialized, so flow files larger than memory still run.
		for {
			s, ok, err := rc.Source.Next()
			if err != nil {
				panic(fmt.Sprintf("exp: flow source %q: %v", rc.SourceLabel, err))
			}
			if !ok {
				break
			}
			cluster.AddFlow(s.Src, s.Dst, s.Size, s.Start, s.Cat)
			total++
		}
	}
	// The app plane registers its attempt flows after the open-loop
	// workload (deferred: injection skips them, Plane launches them).
	var dispatch *app.Dispatch
	if rc.App != nil {
		reqs := app.GenerateRequests(rc.Topo, *rc.App, rc.Seed^0xa44)
		dispatch = app.Build(cluster, reqs, *rc.App)
	}
	cluster.SealFlows()
	var planes []*app.Plane
	if dispatch != nil {
		total += dispatch.NumRequests()
		planes = make([]*app.Plane, k)
		for i, n := range cluster.Nets {
			planes[i] = app.NewPlane(n, dispatch)
		}
	}
	done := make([]*shardCount, k)
	for i, n := range cluster.Nets {
		sd := &shardCount{}
		done[i] = sd
		if planes != nil {
			pl := planes[i]
			n.OnFlowDone = func(f *device.Flow, now units.Time) {
				if f.Attempt == 0 {
					sd.n++
				}
				pl.OnFlowDone(f, now)
			}
		} else {
			n.OnFlowDone = func(*device.Flow, units.Time) { sd.n++ }
		}
	}
	doneCount := func() int {
		d := 0
		for _, c := range done {
			d += c.n
		}
		// Each request is owned by exactly one shard's plane, so the sum
		// counts every resolved request once; resolution is monotone, so
		// the barrier read is a valid progress signal.
		for _, pl := range planes {
			d += pl.Resolved()
		}
		return d
	}

	drain := rc.Drain
	if drain == 0 {
		// DCQCN's additive recovery is slow on the stretched clock;
		// leave generous room for laggards (the run stops at the first
		// barrier after every flow completes, so idle drain is cheap).
		drain = 4*rc.Duration + 400*units.Millisecond
	}

	// Progress watchdog: faulted runs can wedge in ways loss-free runs
	// cannot (dead links, restarted peers), so they get one by default.
	// Stall detection runs at barriers (see shardexec.go).
	horizon := rc.StallHorizon
	if horizon == 0 && rc.Faults != nil {
		horizon = 4 * cfg.RTO
	}

	// The watchdog's app probe folds plane state (pending requests,
	// armed retry/hedge timers, open breakers) into any StallDiagnosis;
	// nil when the app plane is off.
	var appState appProbe
	if planes != nil {
		appState = func(now units.Time) (pending, retries, breakers int) {
			for _, pl := range planes {
				p, r, b := pl.StallState(now)
				pending += p
				retries += r
				breakers += b
			}
			return
		}
	}
	w := runWindows(cluster, units.Time(rc.Duration+drain), horizon, doneCount, total, appState)
	cluster.Finalize()
	var frep *forensics.Report
	if opt.Obs.Forensics {
		flows := cluster.Flows()
		metas := make([]forensics.FlowMeta, 0, len(flows))
		for _, f := range flows {
			if !f.Launched() {
				continue // unused app attempt: registered but never started
			}
			metas = append(metas, forensics.FlowMeta{
				ID: f.ID, Src: f.Src, Dst: f.Dst, Size: f.Size,
				Start: f.Start, Finish: f.Finish, Done: f.Done(),
				Attempt: f.Attempt,
			})
		}
		frep = forensics.BuildReport(cluster.Recorders(), metas)
	}
	if obs != nil {
		if err := obs.export(frep); err != nil {
			panic(fmt.Sprintf("exp: observability export failed: %v", err))
		}
	}
	res := &RunResult{
		Scheme:    rc.Scheme.Name,
		Stats:     cluster.MergedStats(),
		Net:       cluster.Nets[0],
		Cluster:   cluster,
		Duration:  rc.Duration,
		Completed: doneCount(),
		Total:     total,
		Stalled:   w.stalled,
		Diagnosis: w.diagnosis,
		Forensics: frep,
	}
	if planes != nil {
		res.AppRecords = app.Collect(planes)
		slo := app.BuildSLO(res.AppRecords, rc.Duration)
		res.SLO = &slo
	}
	return res
}

// incastMixSpecs builds the paper's default §6 workload: Poisson
// background at 0.8 load over the given CDF, plus periodic 30–40 MTU
// incast at destination load 0.5, victims categorised by rack.
func incastMixSpecs(tp *topo.Topology, cdf *workload.CDF, dur units.Duration, seed uint64, degree int) []workload.FlowSpec {
	r := sim.NewRand(seed)
	hostRate := tp.Node(tp.Hosts[0]).Ports[0].Rate
	dst := tp.Hosts[len(tp.Hosts)-1]
	poisson := workload.Poisson(workload.PoissonConfig{
		CDF: cdf, Load: 0.8,
		Hosts: tp.Hosts, HostRate: hostRate,
		ExcludeDst: map[topoNodeID]bool{dst: true},
		Until:      dur,
		Categorize: workload.RackVictimCategorizer(tp, dst),
	}, r.Fork())
	incast := workload.Incast(workload.IncastConfig{
		Dst: dst, Senders: workload.CrossRackSenders(tp, dst),
		Degree: degree, MinSize: 30 * mtu, MaxSize: 40 * mtu,
		Load: 0.5, DstRate: hostRate, Until: dur,
	}, r.Fork())
	return workload.Merge(poisson, incast)
}

// pureIncastSpecs: every host outside dst's rack sends one 30–40 MTU
// flow at t=0 (Fig 14).
func pureIncastSpecs(tp *topo.Topology, seed uint64) []workload.FlowSpec {
	r := sim.NewRand(seed)
	dst := tp.Hosts[len(tp.Hosts)-1]
	var specs []workload.FlowSpec
	for _, src := range workload.CrossRackSenders(tp, dst) {
		size := 30*mtu + units.ByteSize(r.Int63n(int64(10*mtu)+1))
		specs = append(specs, workload.FlowSpec{Src: src, Dst: dst, Size: size, Cat: catIncast})
	}
	return specs
}

// newRand builds a seeded source (exp helpers).
func newRand(seed uint64) *sim.Rand { return sim.NewRand(seed) }
