package exp

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// This file is the run-level parallel executor. Every experiment's
// simulations are independent — Run is a pure function of (RunConfig,
// seed) with a private engine, collector, packet pool and RNG — so
// figures submit their runs to a shared worker pool and assemble
// output strictly in submission order. The tables produced are
// bit-identical to the serial path at any parallelism: workers share
// nothing mutable (see TestSharedNothing), and ordering only matters
// at assembly, which is sequential by construction.
//
// Shared-state audit (asserted by TestSharedNothing and the
// determinism test in parallel_test.go):
//
//   - workload.CDF values (Memcached, WebServer, ...) are written only
//     at package init; Sample/Quantile/Mean read Pts and never write.
//   - topo.Topology is immutable after Build(): routing tables and
//     ports are precomputed in freeze(), and the device layer only
//     takes pointers into them (switch.go keeps *topo.Port for rates).
//     Figures may therefore share one built topology across concurrent
//     runs (e.g. Fig13 reuses tp for all three schemes).
//   - Scheme factory closures (cc.Factory, device.FCFactory) capture
//     only value-type configs; each Run invokes them to mint private
//     per-flow / per-switch state.
//   - The one mutable package variable, windowOverride, is test-only
//     and set before any runs start.

// limiter is a resizable counting semaphore. All simulation fan-out in
// this package draws from one instance, so nested parallelism —
// whole experiments overlapped by floodsim -exp all, each fanning out
// its own runs — cannot oversubscribe the machine: at most `max`
// simulations execute at any moment, process-wide.
type limiter struct {
	mu   sync.Mutex
	cond *sync.Cond
	max  int
	used int
}

func newLimiter() *limiter {
	l := &limiter{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// resize raises (never lowers below in-use) the concurrency cap.
func (l *limiter) resize(max int) {
	l.mu.Lock()
	if max > l.max {
		l.max = max
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

func (l *limiter) acquire() {
	l.mu.Lock()
	for l.used >= l.max {
		l.cond.Wait()
	}
	l.used++
	l.mu.Unlock()
}

func (l *limiter) release() {
	l.mu.Lock()
	l.used--
	l.cond.Signal()
	l.mu.Unlock()
}

// simSlots is the process-wide simulation pool. Experiment
// orchestration (building tables, reducing collectors) runs outside
// it; only the per-run jobs hold a slot.
var simSlots = newLimiter()

// parallelism resolves the Options knob: 0 means every core
// (GOMAXPROCS), 1 reproduces the serial path exactly (jobs run inline
// on the calling goroutine, no pool involved), n > 1 caps the pool.
//
// Sharded runs multiply: each concurrent simulation drives Shards
// goroutines, so a par×shards product above GOMAXPROCS would
// oversubscribe the machine with barrier-synchronized workers (the
// worst kind of oversubscription — every shard waits on the slowest).
// The knob is clamped to GOMAXPROCS/Shards with a one-time warning;
// results are unaffected because parallelism never changes output.
func (o Options) parallelism() int {
	par := o.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if k := o.shards(); k > 1 {
		max := runtime.GOMAXPROCS(0) / k
		if max < 1 {
			max = 1
		}
		if par > max {
			warnOversub.Do(func() {
				fmt.Fprintf(os.Stderr,
					"exp: parallelism %d x %d shards oversubscribes GOMAXPROCS=%d; clamping to %d concurrent runs\n",
					par, k, runtime.GOMAXPROCS(0), max)
			})
			par = max
		}
	}
	return par
}

// warnOversub rate-limits the oversubscription clamp warning.
var warnOversub sync.Once

// runJobs executes job(0..n-1) on the shared pool and returns the
// results indexed by submission order. With parallelism 1 (or a single
// job) everything runs inline on the caller's goroutine — byte-for-byte
// the serial path. Each job must build its own topology, workload and
// scheme; nothing may be written to shared state (see the audit above).
func runJobs[T any](o Options, n int, job func(i int) T) []T {
	out := make([]T, n)
	par := o.parallelism()
	if par <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			out[i] = job(i)
		}
		return out
	}
	simSlots.resize(par)
	// A panicking job must not crash the process from its worker
	// goroutine (unrecoverable) nor deadlock the WaitGroup: each worker
	// recovers, the panic is stored, and after every job settles the
	// lowest-index panic re-raises on the calling goroutine — the same
	// panic the serial path would have raised first, independent of
	// worker scheduling. The experiment boundary (runByID) recovers it.
	panics := make([]any, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panics[i] = v
				}
			}()
			simSlots.acquire()
			defer simSlots.release()
			out[i] = job(i)
		}(i)
	}
	wg.Wait()
	for i := range panics {
		if panics[i] != nil {
			panic(panics[i])
		}
	}
	return out
}

// RunMany executes independent simulation runs across the worker pool
// and returns results by submission index. Parallelism comes from the
// first config's Options; 1 degenerates to a serial loop. Output is
// bit-identical to calling Run in a loop regardless of parallelism.
func RunMany(rcs []RunConfig) []*RunResult {
	if len(rcs) == 0 {
		return nil
	}
	return runJobs(rcs[0].Opt.norm(), len(rcs), func(i int) *RunResult {
		return Run(rcs[i])
	})
}

// RunExperiments executes the given experiments, overlapping their
// simulations through the same shared pool, and streams each
// experiment's tables to emit strictly in the order given (paper
// order for floodsim -exp all). With parallelism 1 experiments run
// one after another exactly as before. emit is always called from the
// calling goroutine.
func RunExperiments(ids []string, o Options, emit func(id string, tables []Table, err error)) {
	o = o.norm()
	if o.parallelism() <= 1 {
		for _, id := range ids {
			tables, err := runByID(id, o)
			emit(id, tables, err)
		}
		return
	}
	type outcome struct {
		tables []Table
		err    error
	}
	done := make([]chan outcome, len(ids))
	for i, id := range ids {
		done[i] = make(chan outcome, 1)
		go func(id string, ch chan outcome) {
			tables, err := runByID(id, o)
			ch <- outcome{tables, err}
		}(id, done[i])
	}
	for i, id := range ids {
		r := <-done[i]
		emit(id, r.tables, r.err)
	}
}

// recoveredPanics counts panics converted into errors at the
// experiment boundary (observability for tests and operators).
var recoveredPanics atomic.Int64

// RecoveredPanics reports how many experiment runs panicked and were
// isolated into errors instead of crashing the process.
func RecoveredPanics() int64 { return recoveredPanics.Load() }

// runByID is the isolation boundary: a panic anywhere inside one
// experiment — a faulting Run (already wrapped as *RunError with the
// run's config hash) or the figure's own assembly code — becomes that
// experiment's error, and the rest of an `-exp all` sweep proceeds.
func runByID(id string, o Options) (tables []Table, err error) {
	defer func() {
		if v := recover(); v != nil {
			recoveredPanics.Add(1)
			re, ok := v.(*RunError)
			if !ok {
				re = &RunError{ConfigHash: "experiment:" + id, Value: v, Stack: string(debug.Stack())}
			}
			tables, err = nil, re
		}
	}()
	return RunByID(id, o)
}
