package exp

import (
	"runtime"
	"strings"
	"testing"

	"floodgate/internal/sim"
)

// TestExperimentFabricsUseStructuralRouter pins that the fabrics the
// paper figures run on froze with the structural router — which is
// what makes TestShardDeterminism / TestShardFaultMatrixBitIdentical
// (byte-identity across shards × par × schedulers) a regression gate
// for the router swap itself, not just for the executor.
func TestExperimentFabricsUseStructuralRouter(t *testing.T) {
	o := DefaultOptions().norm()
	if got := o.leafSpine().RouterKind(); got != "structural" {
		t.Errorf("leafSpine router = %q, want structural", got)
	}
	if got := o.fatTree().RouterKind(); got != "structural" {
		t.Errorf("fatTree router = %q, want structural", got)
	}
}

// TestScaleIncastSmoke runs the experiment on the 128-host Clos
// preset and checks the table contract: structural routing, a
// positive memory ratio, and full completion under both schemes.
func TestScaleIncastSmoke(t *testing.T) {
	windowOverride = fullScaleIncastDuration / 2
	defer func() { windowOverride = 0 }()
	o := Options{Scale: 0.25, Seed: 1, Topo: "clos"}
	tables := ScaleIncast(o)
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
	mem := tables[0].String()
	for _, want := range []string{"router", "structural", "route_bytes", "dense/structural"} {
		if !strings.Contains(mem, want) {
			t.Errorf("memory table missing %q:\n%s", want, mem)
		}
	}
	run := tables[1].String()
	for _, scheme := range []string{"DCQCN ", "DCQCN+Floodgate"} {
		if !strings.Contains(run, scheme) {
			t.Errorf("run table missing scheme %q:\n%s", scheme, run)
		}
	}
	// 128 hosts minus the destination rack leaves 120 cross-rack
	// senders; both schemes must complete all of them.
	if got := strings.Count(run, "120/120"); got != 2 {
		t.Errorf("want both schemes at 120/120 completions, saw %d:\n%s", got, run)
	}
}

// TestScaleIncastCompletes is the acceptance run: the 102,400-host
// Clos builds, routes and completes the canonical incast in one
// process, inside the stated memory budget (2 GB live heap, covering
// both schemes' networks concurrently) with route memory that would
// be impossible dense.
func TestScaleIncastCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-host simulation")
	}
	o := Options{Scale: 0.25, Seed: 1, Topo: "clos100k"}
	tables := ScaleIncast(o)
	mem := tables[0].String()
	for _, want := range []string{"102400", "structural"} {
		if !strings.Contains(mem, want) {
			t.Fatalf("memory table missing %q:\n%s", want, mem)
		}
	}
	run := tables[1].String()
	if !strings.Contains(run, "256/256") {
		t.Fatalf("incast did not complete on both schemes:\n%s", run)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	const budget = 2 << 30
	if ms.HeapAlloc > budget {
		t.Fatalf("live heap %d bytes exceeds the %d-byte scaleincast budget", ms.HeapAlloc, uint64(budget))
	}
}

// TestScaleIncastShardDeterminism extends the bit-identity matrix to
// the new experiment: the scaleincast tables render byte-identical
// at every shards × par × scheduler combination on the Clos preset.
func TestScaleIncastShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	windowOverride = fullScaleIncastDuration / 2
	defer func() { windowOverride = 0 }()
	base := Options{Scale: 0.1, Seed: 1, Parallelism: 1, Shards: 1, Scheduler: sim.SchedWheel, Topo: "clos"}
	want := renderAll(ScaleIncast(base))
	for _, shards := range []int{1, 2, 4} {
		for _, par := range []int{1, 4} {
			for _, sched := range []sim.Scheduler{sim.SchedWheel, sim.SchedHeap} {
				o := base
				o.Shards, o.Parallelism, o.Scheduler = shards, par, sched
				if o == base {
					continue
				}
				if got := renderAll(ScaleIncast(o)); got != want {
					t.Fatalf("shards=%d par=%d sched=%v diverges from serial unsharded:\n--- want ---\n%s\n--- got ---\n%s",
						shards, par, sched, want, got)
				}
			}
		}
	}
}

// TestScaleTopoPresets pins the preset menu and the unknown-name
// error path floodsim's -topo validation rides on.
func TestScaleTopoPresets(t *testing.T) {
	o := Options{Scale: 0.25, Seed: 1}.norm()
	names := map[string]int{}
	for _, p := range TopoPresets() {
		names[p[0]]++
		if p[1] == "" {
			t.Errorf("preset %q has no description", p[0])
		}
	}
	for _, want := range []string{"clos", "clos100k", "fattree16", "fattree32"} {
		if names[want] != 1 {
			t.Errorf("preset %q listed %d times, want once", want, names[want])
		}
	}
	if _, _, err := o.scaleTopo("clos"); err != nil {
		t.Errorf("default preset failed: %v", err)
	}
	o.Topo = "bogus"
	if _, _, err := o.scaleTopo("clos"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("unknown preset error = %v, want mention of bogus", err)
	}
	// Presets fix their dimensions; Scale only slows the clock.
	o.Topo = "fattree16"
	tp, name, err := o.scaleTopo("clos")
	if err != nil || name != "fattree16" {
		t.Fatalf("scaleTopo = %q, %v", name, err)
	}
	if got := tp.NumHosts(); got != 1024 {
		t.Errorf("fattree16 hosts = %d, want 1024 regardless of scale", got)
	}
}

// TestScaleGauges checks the deterministic scale gauges a run
// publishes and the explicit heap snapshot: route_bytes matches the
// topology's router, bytes/host stays flat across fabric sizes
// (O(total ports) routing), and SnapshotMemStats populates the heap
// gauge only when called.
func TestScaleGauges(t *testing.T) {
	windowOverride = fullScaleIncastDuration / 4
	defer func() { windowOverride = 0 }()
	// The gauges live on the obs metrics registry; unmetered runs keep
	// the inert zero-value bundle, so enable obs for this run.
	o := Options{Scale: 0.25, Seed: 1, Obs: ObsConfig{Dir: t.TempDir()}}.norm()
	tp, _, err := o.scaleTopo("clos")
	if err != nil {
		t.Fatal(err)
	}
	res := Run(RunConfig{
		Topo: tp, Scheme: DCQCN(o), Specs: scaleIncastSpecs(tp, o.Seed, 32),
		Duration: o.duration(fullScaleIncastDuration), Seed: o.Seed, Opt: o,
	})
	m := res.Net.Metrics
	if got := m.ScaleHosts.Value(); got != int64(tp.NumHosts()) {
		t.Errorf("scale.hosts = %d, want %d", got, tp.NumHosts())
	}
	if got := m.ScaleRouteBytes.Value(); got != tp.RouteBytes() {
		t.Errorf("scale.route_bytes = %d, want %d", got, tp.RouteBytes())
	}
	if got := m.ScaleBytesPerHost.Value(); got <= 0 || got > 4096 {
		t.Errorf("scale.bytes_per_host = %d, want small positive", got)
	}
	if got := m.ScaleHeapBytes.Value(); got != 0 {
		t.Errorf("scale.heap_bytes = %d before snapshot, want 0 (never set on table paths)", got)
	}
	if heap := res.Net.SnapshotMemStats(); heap <= 0 || m.ScaleHeapBytes.Value() != heap {
		t.Errorf("SnapshotMemStats: returned %d, gauge %d", heap, m.ScaleHeapBytes.Value())
	}
}
