package exp

import (
	"fmt"
	"strings"

	"floodgate/internal/units"
)

// RunError is the structured form of a panic raised inside one
// simulation run. The parallel executor (parallel.go) recovers the
// panic at the run boundary, wraps it in a RunError carrying the
// run's config content hash, and lets the remaining runs of a sweep
// proceed — one faulting configuration no longer kills `-exp all`.
type RunError struct {
	// ConfigHash is the content hash of the RunConfig that faulted
	// (same obsLabel scheme the observability exporter uses), so the
	// failing run can be identified and replayed exactly.
	ConfigHash string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

// Error implements error. The stack is kept out of the one-line
// message; callers wanting it read the field.
func (e *RunError) Error() string {
	return fmt.Sprintf("exp: run %s panicked: %v", e.ConfigHash, e.Value)
}

// StallDiagnosis is the structured report produced when the progress
// watchdog trips: the run delivered no new payload bytes for a full
// horizon, so instead of burning the remaining time bound the run
// stops and explains where the bytes are stuck.
type StallDiagnosis struct {
	At      units.Time     // sim time the watchdog tripped
	Horizon units.Duration // progress horizon that elapsed without delivery

	DeliveredBytes  units.ByteSize // payload delivered before the stall
	IncompleteFlows int            // flows still unfinished

	// Floodgate window state, summed over switches.
	ExhaustedWindows int            // per-dst windows with < 1 MTU available
	WindowDeficit    units.ByteSize // un-credited bytes across all windows
	ParkedBytes      units.ByteSize // bytes parked in VOQs

	// Pause and link state.
	PausedSwitchPorts int // switch ports PFC-paused
	PausedHosts       int // hosts PFC-paused
	LinksDown         int // links currently failed

	// Application plane state at the stall (HasApp gates the fields: a
	// closed-loop run stuck behind an open breaker or a long backoff
	// looks very different from a wedged fabric).
	HasApp          bool
	PendingRequests int // launched, unresolved requests
	RetryTimers     int // armed retry/hedge timers
	OpenBreakers    int // clients currently shedding
}

// String renders the diagnosis as a compact multi-line report.
func (d *StallDiagnosis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stalled at %v: no delivery for %v\n", d.At, d.Horizon)
	fmt.Fprintf(&b, "  delivered %v, %d flows incomplete\n", d.DeliveredBytes, d.IncompleteFlows)
	fmt.Fprintf(&b, "  windows: %d exhausted, %v deficit, %v parked in VOQs\n",
		d.ExhaustedWindows, d.WindowDeficit, d.ParkedBytes)
	fmt.Fprintf(&b, "  pauses: %d switch ports, %d hosts; links down: %d",
		d.PausedSwitchPorts, d.PausedHosts, d.LinksDown)
	if d.HasApp {
		fmt.Fprintf(&b, "\n  app: %d requests pending, %d retry/hedge timers armed, %d breakers open",
			d.PendingRequests, d.RetryTimers, d.OpenBreakers)
	}
	return b.String()
}
