package exp

import (
	"fmt"

	"floodgate/internal/fault"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/units"
	"floodgate/internal/workload"
)

// Fig12 reproduces the §6.2 loss-robustness experiment: Floodgate's
// PSN/switchSYN recovery under 5% and 10% manufactured drops on
// switch-to-switch links. Reported: delivered throughput over time —
// the shape to check is that goodput stays near the lossless level.
func Fig12(o Options) []Table {
	o = o.norm()
	t := Table{
		Title:  "Fig 12: throughput under injected credit loss (DCQCN+Floodgate)",
		Header: []string{"lossRate", "avg goodput", "vs lossless", "drops", "completed"},
	}
	// The "vs lossless" column needs the loss=0 run, so jobs return raw
	// measurements and ratios are computed at assembly. The first three
	// rows are the paper's uniform credit loss; the last two replay the
	// same rates as Gilbert–Elliott bursts (robustness extension) —
	// bursty loss is the harder case for timer-aggregated credits since
	// a whole aggregation window can vanish at once.
	type fig12Case struct {
		label   string
		uniform float64 // uniform credit loss rate
		burst   float64 // GE mean loss on all fabric links (0 = off)
	}
	cases := []fig12Case{
		{"0%", 0, 0},
		{"5%", 0.05, 0},
		{"10%", 0.10, 0},
		{"5% burst (GE)", 0, 0.05},
		{"10% burst (GE)", 0, 0.10},
	}
	type fig12Res struct {
		goodput          units.BitRate
		drops            int64
		completed, total int
	}
	results := runJobs(o, len(cases), func(idx int) fig12Res {
		c := cases[idx]
		tp := o.leafSpine()
		dur := o.duration(fullIncastMixDuration)
		specs := incastMixSpecs(tp, workload.WebServer, dur, o.Seed, incastDegree(tp))
		rc := RunConfig{
			Topo:   tp,
			Scheme: WithFloodgate(o, DCQCN(o), baseBDPOf(tp)),
			Specs:  specs, Duration: dur, Seed: o.Seed, Opt: o,
			CreditLossRate: c.uniform,
			Drain:          10 * dur,
		}
		if c.burst > 0 {
			rc.Faults = &fault.Plan{Burst: fault.BurstWithMeanLoss(c.burst)}
		}
		res := Run(rc)
		var rx units.ByteSize
		for _, cat := range []stats.Category{stats.CatIncast, stats.CatVictimIncast, stats.CatVictimPFC} {
			for _, b := range res.Stats.RxSeries(cat) {
				rx += b
			}
		}
		return fig12Res{units.Rate(rx, dur), res.Stats.Drops, res.Completed, res.Total}
	})
	lossless := float64(results[0].goodput)
	for i, c := range cases {
		r := results[i]
		t.AddRow(c.label, fmtRate(r.goodput),
			fmtRatio(float64(r.goodput), lossless),
			fmt.Sprintf("%d", r.drops),
			fmt.Sprintf("%d/%d", r.completed, r.total))
	}
	t.Comment = "paper: 5% loss has no visible effect; 10% fluctuates slightly — switch windows recover via PSN credits; GE rows burst the same mean loss"
	return []Table{t}
}

// Fig13 reproduces the 8-ary fat-tree experiment: FCT for Memcached
// and Hadoop plus Hadoop's per-hop buffer occupancy across the five
// port classes.
func Fig13(o Options) []Table {
	o = o.norm()
	tp := o.fatTree()
	bdp := units.BDP(tp.Node(tp.Hosts[0]).Ports[0].Rate,
		2*6*(tp.Node(tp.Hosts[0]).Ports[0].Prop+units.TxTime(mtu, tp.Node(tp.Hosts[0]).Ports[0].Rate)))
	schemes := []Scheme{
		DCQCN(o),
		WithIdeal(o, DCQCN(o), bdp),
		WithFloodgate(o, DCQCN(o), bdp),
	}
	fct := Table{
		Title:  "Fig 13a: fat tree (k=8) avg/p99 FCT of Poisson flows",
		Header: []string{"workload", "scheme", "avgFCT", "p99FCT"},
	}
	buf := Table{
		Title:  "Fig 13b: fat tree per-hop max buffer — Hadoop",
		Header: []string{"scheme", "Edge-Up", "Agg-Up", "Core", "Agg-Down", "Edge-Down"},
	}
	cdfs := []*workload.CDF{workload.Memcached, workload.Hadoop}
	type fig13Rows struct{ fct, buf []string }
	// All six runs share one built fat tree: Topology is immutable
	// after Build() (see topo.Topology), so concurrent runs only read it.
	rows := runJobs(o, len(cdfs)*len(schemes), func(idx int) fig13Rows {
		cdf := cdfs[idx/len(schemes)]
		s := schemes[idx%len(schemes)]
		res := runFatTreeMix(o, tp, cdf, s)
		avg, p99 := stats.FCTStats(res.Stats.PoissonFCTs())
		out := fig13Rows{fct: []string{cdf.Name, s.Name, fmtDur(avg), fmtDur(p99)}}
		if cdf == workload.Hadoop {
			out.buf = []string{s.Name,
				fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRUp)),
				fmtBytes(res.Stats.MaxClassBuffer(topo.ClassAggUp)),
				fmtBytes(res.Stats.MaxClassBuffer(topo.ClassCore)),
				fmtBytes(res.Stats.MaxClassBuffer(topo.ClassAggDown)),
				fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRDown))}
		}
		return out
	})
	for _, r := range rows {
		fct.AddRow(r.fct...)
		if r.buf != nil {
			buf.AddRow(r.buf...)
		}
	}
	fct.Comment = "paper: Floodgate still wins, by less than in 2-tier (fewer hosts per rack, fewer victims)"
	buf.Comment = "paper: buffer shifts toward Edge-Up; aggregation points relieved"
	return []Table{fct, buf}
}

func runFatTreeMix(o Options, tp *topo.Topology, cdf *workload.CDF, s Scheme) *RunResult {
	dur := o.duration(fullIncastMixDuration)
	specs := incastMixSpecs(tp, cdf, dur, o.Seed, incastDegree(tp))
	return Run(RunConfig{
		Topo: tp, Scheme: s, Specs: specs, Duration: dur,
		Seed: o.Seed, Opt: o,
	})
}

// Fig14 reproduces the ToR-scaling experiment: pure incast (every
// cross-rack host sends one 30–40 MTU flow) as the fabric grows to
// 20/40/60/80 ToRs. Reported: per-hop max buffer for DCQCN and
// DCQCN+Floodgate.
func Fig14(o Options) []Table {
	o = o.norm()
	torCounts := []int{20, 40, 60, 80}
	rows := runJobs(o, 2*len(torCounts), func(idx int) []string {
		fg := idx/len(torCounts) == 1
		tors := torCounts[idx%len(torCounts)]
		c := topo.DefaultLeafSpine()
		c.ToRs = tors
		c.HostsPerToR = o.hostsPerToR()
		c.Spines = o.spines()
		c.HostRate = o.rate(c.HostRate)
		c.SpineRate = o.rate(c.SpineRate)
		c.Prop = o.stretch(c.Prop)
		tp := c.Build()
		s := DCQCN(o)
		if fg {
			s = WithFloodgate(o, DCQCN(o), baseBDPOf(tp))
		}
		specs := pureIncastSpecs(tp, o.Seed)
		res := Run(RunConfig{
			Topo: tp, Scheme: s, Specs: specs,
			Duration: 2 * units.Millisecond, Seed: o.Seed, Opt: o,
			Drain: 100 * units.Millisecond,
		})
		return []string{fmt.Sprintf("%d", tors),
			fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRUp)),
			fmtBytes(res.Stats.MaxClassBuffer(topo.ClassCore)),
			fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRDown)),
			fmtBytes(res.Stats.MaxSwitchBuffer())}
	})
	var tables []Table
	for fi, name := range []string{"DCQCN", "DCQCN+Floodgate"} {
		t := Table{
			Title:  "Fig 14: buffer vs fabric size (pure incast) — " + name,
			Header: []string{"#ToR", "ToR-Up", "Core", "ToR-Down", "maxSwitch"},
			Rows:   rows[fi*len(torCounts) : (fi+1)*len(torCounts)],
		}
		t.Comment = "paper: DCQCN's ToR-Down grows with #flows (PFC at 20+ ToRs); Floodgate stays flat (delayCredit caps cores)"
		tables = append(tables, t)
	}
	return tables
}

// Fig15 reproduces successive incast: K back-to-back all-host incasts
// to distinct destinations, comparing DCQCN, practical Floodgate and
// Floodgate with per-dst PAUSE.
func Fig15(o Options) []Table {
	o = o.norm()
	var tables []Table
	mk := func(name string) func(tp *topo.Topology) Scheme {
		return func(tp *topo.Topology) Scheme {
			switch name {
			case "DCQCN":
				return DCQCN(o)
			case "DCQCN+Floodgate":
				return WithFloodgate(o, DCQCN(o), baseBDPOf(tp))
			default:
				cfg := FloodgateConfig(o, baseBDPOf(tp))
				cfg.PerDstPause = true
				return WithFloodgateCfg(DCQCN(o), cfg, "+Floodgate (per-dst PAUSE)")
			}
		}
	}
	names := []string{"DCQCN", "DCQCN+Floodgate", "DCQCN+Floodgate (per-dst PAUSE)"}
	counts := []int{4, 8, 12, 16, 20, 24}
	rows := runJobs(o, len(names)*len(counts), func(idx int) []string {
		name := names[idx/len(counts)]
		times := counts[idx%len(counts)]
		tp := o.leafSpine()
		s := mk(name)(tp)
		hostRate := tp.Node(tp.Hosts[0]).Ports[0].Rate
		// Gap = nominal drain time of one event, so events pile up.
		event := units.ByteSize(len(tp.Hosts)-1) * 35 * mtu
		gap := units.TxTime(event, hostRate) / 4 // successive: events arrive faster than they drain
		specs := workload.SuccessiveIncast(tp.Hosts, times, gap, 30*mtu, 40*mtu, newRand(o.Seed))
		res := Run(RunConfig{
			Topo: tp, Scheme: s, Specs: specs,
			Duration: units.Duration(times+2) * gap,
			Drain:    200 * units.Millisecond,
			Seed:     o.Seed, Opt: o,
			BufferSize: stressBuffer(tp), // the storm regime (see stressBuffer)
		})
		return []string{fmt.Sprintf("%d", times),
			fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRUp)),
			fmtBytes(res.Stats.MaxClassBuffer(topo.ClassCore)),
			fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRDown))}
	})
	for ni, name := range names {
		t := Table{
			Title:  "Fig 15: successive incast — " + name,
			Header: []string{"#incasts", "ToR-Up", "Core", "ToR-Down"},
			Rows:   rows[ni*len(counts) : (ni+1)*len(counts)],
		}
		t.Comment = "paper: DCQCN fills ToR-Down/Core (storm by 12 incasts); Floodgate's ToR-Up grows with #incasts; per-dst PAUSE keeps everything tiny"
		tables = append(tables, t)
	}
	return tables
}
