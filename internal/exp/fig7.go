package exp

import (
	"fmt"

	"floodgate/internal/workload"
)

// Fig7 tabulates the four workloads' flow-size distributions at the
// CDF knots the paper plots (no simulation involved).
func Fig7(o Options) []Table {
	t := Table{
		Title:  "Fig 7: flow size distribution of typical workloads",
		Header: []string{"workload", "p10", "p50", "p90", "p99", "mean"},
	}
	for _, c := range workload.Workloads {
		t.AddRow(c.Name,
			fmtBytes(c.Quantile(0.10)),
			fmtBytes(c.Quantile(0.50)),
			fmtBytes(c.Quantile(0.90)),
			fmtBytes(c.Quantile(0.99)),
			fmt.Sprintf("%.0fB", c.Mean()))
	}
	t.Comment = "paper: Memcached almost entirely <1KB; the other three are byte-dominated by a small fraction of large flows"
	return []Table{t}
}
