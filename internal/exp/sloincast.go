package exp

import (
	"fmt"

	"floodgate/internal/app"
	"floodgate/internal/sim"
	"floodgate/internal/topo"
	"floodgate/internal/units"
	"floodgate/internal/workload"
)

// This file is the closed-loop SLO experiment (beyond the paper): the
// partition-aggregate application plane (internal/app) run as the
// *victim* of a PFC storm. An open-loop periodic incast (the §6.1
// incast component, full cross-rack degree at destination load 0.8)
// hammers the last host in the PFC-storm buffer regime; the
// application's clients are that host's rack mates, so their
// cross-rack request/response traffic is exactly the collateral an
// untamed incast head-of-line blocks (Table 2: DCQCN pauses core
// ports for hundreds of µs per window, Floodgate pauses nothing).
// With tight deadlines those pauses turn into timeouts, and the
// application *retries into the storm* — attempts/request climb above
// 1 and misses compound — while under Floodgate the same fan-in
// stays inside the deadline. FCT tables can't show this; only
// request-level scoring can.

// sloRequests is the closed-loop request count per run.
const sloRequests = 16

// sloIdeal is the back-of-envelope quiet-path delivery time of one
// request: fan mean-size responses serialized at the client's line
// rate, plus one stretched base RTT of slack. Deadlines are expressed
// as multiples of it so the "tight"/"loose" labels mean the same
// thing at every Scale.
func sloIdeal(tp *topo.Topology, fan int) units.Duration {
	h := tp.Node(tp.Hosts[0])
	rate := h.Ports[0].Rate
	// Per-response serialization first, then the fan multiple — the
	// other association overflows int64 picoseconds at full fan-in.
	ser := units.Duration(fan) * units.Duration(int64(35*mtu)*8*int64(units.Second)/int64(rate))
	rtt := 2 * 4 * (h.Ports[0].Prop + units.TxTime(mtu, rate))
	return ser + rtt
}

// sloStormSpecs is the open-loop storm: the §6.1 periodic incast
// component alone, full cross-rack degree into the last host at
// destination load 0.8. No Poisson background — every byte on the
// wire is either storm or closed-loop traffic, so a deadline miss
// attributes cleanly to the storm's PFC collateral rather than to
// generic queueing.
func sloStormSpecs(tp *topo.Topology, dur units.Duration, seed uint64) []workload.FlowSpec {
	r := sim.NewRand(seed)
	hostRate := tp.Node(tp.Hosts[0]).Ports[0].Rate
	dst := tp.Hosts[len(tp.Hosts)-1]
	return workload.Incast(workload.IncastConfig{
		Dst: dst, Senders: workload.CrossRackSenders(tp, dst),
		Degree: incastDegree(tp), MinSize: 30 * mtu, MaxSize: 40 * mtu,
		Load: 0.8, DstRate: hostRate, Until: dur,
	}, r.Fork())
}

// sloCell is one run of the matrix.
type sloCell struct {
	fanLabel string
	fan      int
	dlLabel  string
	dlMult   float64
	scheme   Scheme
	policy   app.RetryPolicy
}

// sloAppConfig assembles the cell's app config. Arrivals are spaced
// evenly across the storm window (but never tighter than 2× the
// fan-in's ideal delivery time, so the closed loop cannot congest its
// own client link); every cell offers the same load and only the SLO
// target moves.
func sloAppConfig(tp *topo.Topology, c sloCell, dur units.Duration) *app.Config {
	ideal := sloIdeal(tp, c.fan)
	interval := dur / sloRequests
	if interval < 2*ideal {
		interval = 2 * ideal
	}
	return &app.Config{
		Requests: sloRequests,
		Interval: interval,
		FanIn:    c.fan,
		ReqSize:  units.KB,
		RespMin:  30 * mtu,
		RespMax:  40 * mtu,
		Deadline: units.Duration(c.dlMult * float64(ideal)),
		// Three strikes, then give up; the budget is per client and
		// generous enough that the policy, not the cap, shapes retries.
		MaxAttempts: 3,
		Policy:      c.policy,
		Breaker:     app.Breaker{Window: 8, Threshold: 0.75, Cooldown: 8 * ideal},
	}
}

// sloRun executes one cell: the open-loop storm in the stress-buffer
// regime (the same buffer-pressure ratio the Fig 2/9/Table 2 runs
// use) with the closed-loop plane overlaid as victim traffic. The
// simulation window extends past the storm so the last request can
// burn all its attempts before scoring.
func sloRun(o Options, c sloCell) *RunResult {
	tp := o.leafSpine()
	dur := o.duration(fullIncastMixDuration)
	cfg := sloAppConfig(tp, c, dur)
	last := units.Duration(cfg.Requests-1) * cfg.Interval
	if last < dur {
		last = dur
	}
	tail := units.Duration(cfg.MaxAttempts)*cfg.Deadline + o.stretch(200*units.Microsecond)
	return Run(RunConfig{
		Topo: tp, Scheme: c.scheme,
		Specs:      sloStormSpecs(tp, dur, o.Seed),
		Duration:   last + tail,
		Seed:       o.Seed, Opt: o,
		BufferSize: stressBuffer(tp),
		App:        cfg,
	})
}

// sloRow renders one cell's SLO scorecard. The trailing pfc column is
// the run's total PFC pause time — the causal covariate the timeout
// rate tracks.
func sloRow(c sloCell, res *RunResult) []string {
	s := res.SLO
	pfc := res.Stats.PFCPauseTime(topo.LayerHost) +
		res.Stats.PFCPauseTime(topo.LayerToR) +
		res.Stats.PFCPauseTime(topo.LayerCore)
	return []string{
		c.fanLabel, c.dlLabel, c.scheme.Name, c.policy.Name(),
		fmt.Sprintf("%d/%d", s.Completed, s.Requests),
		fmtDur(s.P50), fmtDur(s.P99), fmtDur(s.P999),
		fmt.Sprintf("%.1f%%", 100*s.TimeoutRate),
		fmt.Sprintf("%.2fx", s.Amplification),
		fmt.Sprintf("%d", s.Hedges),
		fmt.Sprintf("%.1f%%", 100*s.ShedRate),
		fmtRate(s.Goodput),
		fmtDur(pfc),
	}
}

var sloHeader = []string{"fanin", "deadline", "scheme", "policy", "ok",
	"p50", "p99", "p999", "timeout", "amp", "hedges", "shed", "goodput", "pfc"}

// SLOIncast runs the closed-loop SLO matrix: schemes × fan-in ×
// deadline with exponential backoff, plus a retry-policy comparison
// at the tightest cell.
func SLOIncast(o Options) []Table {
	o = o.norm()
	backoff := func() app.RetryPolicy {
		return app.ExpBackoff{Base: o.stretch(25 * units.Microsecond)}
	}
	var cells []sloCell
	for _, fan := range []int{4, 8} {
		for _, dl := range []struct {
			label string
			mult  float64
		}{{"tight(1.5x)", 1.5}, {"loose(8x)", 8}} {
			for _, s := range []Scheme{DCQCN(o), WithFloodgate(o, DCQCN(o), baseBDPOf(o.leafSpine()))} {
				cells = append(cells, sloCell{fmt.Sprintf("%d", fan), fan, dl.label, dl.mult, s, backoff()})
			}
		}
	}
	matrix := Table{
		Title:  "Closed-loop SLO under a PFC storm: schemes x fan-in x deadline",
		Header: sloHeader,
	}
	matrix.Rows = runJobs(o, len(cells), func(i int) []string {
		return sloRow(cells[i], sloRun(o, cells[i]))
	})
	matrix.Comment = "extension: with tight deadlines DCQCN's PFC storm turns into timeouts and the app retries into it (amp > 1.00x); Floodgate pauses nothing, so the same fan-in stays inside the deadline"

	// Policy comparison at the hardest cell: widest fan-in, tight deadline.
	policies := []app.RetryPolicy{
		app.FixedRetry{},
		backoff(),
		app.Hedged{ExpBackoff: app.ExpBackoff{Base: o.stretch(25 * units.Microsecond)}},
	}
	var pcells []sloCell
	for _, s := range []Scheme{DCQCN(o), WithFloodgate(o, DCQCN(o), baseBDPOf(o.leafSpine()))} {
		for _, p := range policies {
			pcells = append(pcells, sloCell{"8", 8, "tight(1.5x)", 1.5, s, p})
		}
	}
	ptab := Table{
		Title:  "Retry policy comparison (fan-in 8, tight deadline)",
		Header: sloHeader,
	}
	ptab.Rows = runJobs(o, len(pcells), func(i int) []string {
		return sloRow(pcells[i], sloRun(o, pcells[i]))
	})
	ptab.Comment = "fixed immediate retry re-joins the storm; jittered backoff decorrelates it; hedging trades extra attempts for tail latency"
	return []Table{matrix, ptab}
}
