package exp

import (
	"fmt"
	"runtime"
	"testing"

	"floodgate/internal/app"
	"floodgate/internal/fault"
	"floodgate/internal/topo"
	"floodgate/internal/units"
	"floodgate/internal/workload"
)

// Macro benchmarks: whole simulations measured end to end, the numbers
// the engine microbenchmarks exist to improve. Each iteration executes
// one complete run (topology build, workload, event loop, drain) and
// reports, beside ns/op, two throughput metrics:
//
//   - events/s       — engine events executed per wall-clock second
//   - simsec/wallsec — simulated seconds advanced per wall-clock second
//
// The second is the paper-reproduction figure of merit: how much
// simulated time a second of hardware buys. Tracked across PRs in
// BENCH_PR*.json (see EXPERIMENTS.md).

// BenchmarkRunIncast is the incast macro workload: every cross-rack
// host sends one 30-40 MTU flow to a single victim at t=0 through
// DCQCN+Floodgate — the paper's core stress, and the backlog regime
// (hundreds of concurrent flows, tens of thousands of queued events)
// where scheduler cost dominates.
func BenchmarkRunIncast(b *testing.B) {
	o := Options{Scale: 0.25, Seed: 1}.norm()
	b.ReportAllocs()
	var simSec, events float64
	for i := 0; i < b.N; i++ {
		tp := o.leafSpine()
		specs := pureIncastSpecs(tp, o.Seed)
		res := Run(RunConfig{
			Topo: tp, Scheme: WithFloodgate(o, DCQCN(o), baseBDPOf(tp)),
			Specs: specs, Duration: 2 * units.Millisecond,
			Seed: o.Seed, Opt: o,
		})
		if res.Completed != res.Total {
			b.Fatalf("flows incomplete: %d/%d", res.Completed, res.Total)
		}
		simSec += res.Net.Eng.Now().Seconds()
		events += float64(res.Net.Eng.Processed)
	}
	wall := b.Elapsed().Seconds()
	b.ReportMetric(simSec/wall, "simsec/wallsec")
	b.ReportMetric(events/wall, "events/s")
}

// BenchmarkForensicsOff is the zero-overhead guard for the forensics
// hooks: the identical workload to BenchmarkRunIncast, run with
// forensics explicitly disabled (Config.Forensics nil — every hook is
// one nil-check). benchjson's compare mode pairs it with
// BenchmarkRunIncast and fails if their allocs/op diverge, so a change
// that makes a disabled hook allocate (or quietly turns forensics on
// in the base path) is caught by `make bench-compare` even though the
// absolute numbers drift with the hardware.
func BenchmarkForensicsOff(b *testing.B) {
	o := Options{Scale: 0.25, Seed: 1}.norm()
	o.Obs.Forensics = false // the disabled-hook path under test
	b.ReportAllocs()
	var simSec, events float64
	for i := 0; i < b.N; i++ {
		tp := o.leafSpine()
		specs := pureIncastSpecs(tp, o.Seed)
		res := Run(RunConfig{
			Topo: tp, Scheme: WithFloodgate(o, DCQCN(o), baseBDPOf(tp)),
			Specs: specs, Duration: 2 * units.Millisecond,
			Seed: o.Seed, Opt: o,
		})
		if res.Completed != res.Total {
			b.Fatalf("flows incomplete: %d/%d", res.Completed, res.Total)
		}
		if res.Forensics != nil {
			b.Fatal("forensics report built with forensics off")
		}
		simSec += res.Net.Eng.Now().Seconds()
		events += float64(res.Net.Eng.Processed)
	}
	wall := b.Elapsed().Seconds()
	b.ReportMetric(simSec/wall, "simsec/wallsec")
	b.ReportMetric(events/wall, "events/s")
}

// BenchmarkRunIncastSharded sweeps the shard count over the
// paper-scale (Scale 1: 160 hosts, 10 ToRs, 4 spines) incast — the
// "one giant run" the sharded conservative-window executor exists to
// accelerate. Output is bit-identical at every shard count, so the
// sub-benchmarks measure pure executor cost: on a multi-core host the
// events/s curve should rise toward the shard count (ToR-subtree
// partitions are near-balanced); on a single core it instead prices
// the barrier + mailbox overhead. GOMAXPROCS is recorded in the
// BENCH_*.json manifest so the two regimes are never confused.
func BenchmarkRunIncastSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d/gomaxprocs=%d", shards, runtime.GOMAXPROCS(0)), func(b *testing.B) {
			o := Options{Scale: 1, Seed: 1, Shards: shards}.norm()
			b.ReportAllocs()
			var simSec, events float64
			for i := 0; i < b.N; i++ {
				tp := o.leafSpine()
				specs := pureIncastSpecs(tp, o.Seed)
				res := Run(RunConfig{
					Topo: tp, Scheme: WithFloodgate(o, DCQCN(o), baseBDPOf(tp)),
					Specs: specs, Duration: 2 * units.Millisecond,
					Seed: o.Seed, Opt: o,
				})
				if res.Completed != res.Total {
					b.Fatalf("flows incomplete: %d/%d", res.Completed, res.Total)
				}
				simSec += res.Net.Eng.Now().Seconds()
				events += float64(res.Processed())
			}
			wall := b.Elapsed().Seconds()
			b.ReportMetric(simSec/wall, "simsec/wallsec")
			b.ReportMetric(events/wall, "events/s")
		})
	}
}

// BenchmarkRunFig2Row executes one row of the Fig 2 table (WebServer
// incast-mix in the PFC-storm regime under plain DCQCN) — the mixed
// workload whose Poisson background keeps the event queue deep and
// irregular, complementing BenchmarkRunIncast's synchronized burst.
func BenchmarkRunFig2Row(b *testing.B) {
	prev := windowOverride
	windowOverride = fullIncastMixDuration / 8
	defer func() { windowOverride = prev }()
	o := Options{Scale: 0.25, Seed: 1}.norm()
	b.ReportAllocs()
	var simSec, events float64
	for i := 0; i < b.N; i++ {
		res := runIncastMixStress(o, workload.WebServer, DCQCN(o))
		if res.Completed == 0 {
			b.Fatal("no flows completed")
		}
		simSec += res.Net.Eng.Now().Seconds()
		events += float64(res.Net.Eng.Processed)
	}
	wall := b.Elapsed().Seconds()
	b.ReportMetric(simSec/wall, "simsec/wallsec")
	b.ReportMetric(events/wall, "events/s")
}

// BenchmarkRunFaulted is the active-fault routing gate: the incast
// macro workload with one of the victim ToR's uplinks down for the
// whole run, so every routed packet takes Network.Route's faulted
// path (downPorts > 0) and packets through the faulted ToR exercise
// the live-subset re-hash. benchjson's compare mode pins allocs/op,
// so a live-path selection that starts materializing port subsets
// fails `make bench-compare` — and the per-node down-count fast path
// keeps the unaffected majority of nodes at plain-ECMP cost.
func BenchmarkRunFaulted(b *testing.B) {
	o := Options{Scale: 0.25, Seed: 1}.norm()
	b.ReportAllocs()
	var simSec, events float64
	for i := 0; i < b.N; i++ {
		tp := o.leafSpine()
		specs := pureIncastSpecs(tp, o.Seed)
		res := Run(RunConfig{
			Topo: tp, Scheme: WithFloodgate(o, DCQCN(o), baseBDPOf(tp)),
			Specs: specs, Duration: 2 * units.Millisecond,
			Seed: o.Seed, Opt: o,
			Faults: &fault.Plan{Events: []fault.Event{
				{At: 0, Kind: fault.LinkDown, Link: dstUplink(tp)},
			}},
		})
		// The fabric runs at reduced capacity for the whole window, so
		// (deterministically) only part of the burst completes; the
		// assertion is that traffic kept flowing around the dead link.
		if res.Completed == 0 {
			b.Fatalf("no flows completed around the downed uplink (0/%d)", res.Total)
		}
		simSec += res.Net.Eng.Now().Seconds()
		events += float64(res.Net.Eng.Processed)
	}
	wall := b.Elapsed().Seconds()
	b.ReportMetric(simSec/wall, "simsec/wallsec")
	b.ReportMetric(events/wall, "events/s")
}

// BenchmarkRouteMemory prices the two router implementations at the
// k=16 fat tree (1,024 hosts — the largest size where the dense
// table is still comfortably buildable): ns/op is the build cost and
// the custom metrics record resident route memory. benchjson's
// route-memory pair rule asserts structural route_bytes stays at
// least 100x below dense, so the compression claim is re-measured on
// every `make bench-compare`, not just asserted once.
func BenchmarkRouteMemory(b *testing.B) {
	for _, kind := range []string{"structural", "dense"} {
		b.Run(kind, func(b *testing.B) {
			var routeBytes int64
			hosts := 1
			for i := 0; i < b.N; i++ {
				tp := topo.FatTree16().Build() // freezes structural
				hosts = tp.NumHosts()
				if kind == "dense" {
					routeBytes = topo.NewDenseRouter(tp).Bytes()
				} else {
					routeBytes = tp.RouteBytes()
				}
			}
			b.ReportMetric(float64(routeBytes), "route_bytes/topo")
			b.ReportMetric(float64(routeBytes)/float64(hosts), "route_bytes/host")
		})
	}
}

// BenchmarkRunScaleIncast executes the scaleincast run end to end on
// the 102,400-host Clos — build, route, 256-way burst, drain — in
// one process per iteration. Beside events/s it records the live
// heap after an explicit snapshot, the memory-budget figure the
// scale work is accountable to across PRs.
func BenchmarkRunScaleIncast(b *testing.B) {
	o := Options{Scale: 0.25, Seed: 1, Topo: "clos100k"}.norm()
	b.ReportAllocs()
	var simSec, events, heap float64
	for i := 0; i < b.N; i++ {
		tp, _, err := o.scaleTopo("clos100k")
		if err != nil {
			b.Fatal(err)
		}
		specs := scaleIncastSpecs(tp, o.Seed, scaleIncastDegree)
		res := Run(RunConfig{
			Topo: tp, Scheme: WithFloodgate(o, DCQCN(o), baseBDPOf(tp)),
			Specs: specs, Duration: fullScaleIncastDuration,
			Seed: o.Seed, Opt: o,
			BufferSize: units.ByteSize(len(specs)) * 35 * mtu,
		})
		if res.Completed != res.Total {
			b.Fatalf("flows incomplete at 100k hosts: %d/%d", res.Completed, res.Total)
		}
		simSec += res.Net.Eng.Now().Seconds()
		events += float64(res.Net.Eng.Processed)
		heap = float64(res.Net.SnapshotMemStats())
	}
	wall := b.Elapsed().Seconds()
	b.ReportMetric(simSec/wall, "simsec/wallsec")
	b.ReportMetric(events/wall, "events/s")
	b.ReportMetric(heap, "heap_bytes/run")
}

// BenchmarkRunClosedLoop executes one sloincast cell end to end: the
// open-loop PFC-storm incast with the closed-loop partition-aggregate
// plane overlaid (per-request deadline timers, jittered retries, and
// breaker bookkeeping riding the engine) through DCQCN+Floodgate. This
// is the app plane's allocation gate: benchjson tracks its allocs/op
// across PRs, so a timer path that starts capturing shows up in
// `make bench-compare`.
func BenchmarkRunClosedLoop(b *testing.B) {
	o := Options{Scale: 0.25, Seed: 1}.norm()
	b.ReportAllocs()
	var simSec, events float64
	for i := 0; i < b.N; i++ {
		c := sloCell{"8", 8, "tight(1.5x)", 1.5,
			WithFloodgate(o, DCQCN(o), baseBDPOf(o.leafSpine())),
			app.ExpBackoff{Base: o.stretch(25 * units.Microsecond)}}
		res := sloRun(o, c)
		if res.SLO == nil || res.SLO.Completed == 0 {
			b.Fatal("closed loop resolved nothing")
		}
		simSec += res.Net.Eng.Now().Seconds()
		events += float64(res.Net.Eng.Processed)
	}
	wall := b.Elapsed().Seconds()
	b.ReportMetric(simSec/wall, "simsec/wallsec")
	b.ReportMetric(events/wall, "events/s")
}
