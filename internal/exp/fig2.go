package exp

import (
	"fmt"

	"floodgate/internal/stats"
	"floodgate/internal/units"
	"floodgate/internal/workload"
)

// Fig2 reproduces the realtime-throughput motivation experiment:
// Web Server incast-mix under DCQCN with and without Floodgate, with
// received throughput split into incast flows, victims of incast
// (same destination rack) and victims of PFC (everything else). The
// table reports coarse time bins; the headline observations are the
// victim-of-incast delivery delay and the victim-of-PFC dip without
// Floodgate.
func Fig2(o Options) []Table {
	o = o.norm()
	// One job per scheme, each building its own topology and run; the
	// per-scheme tables assemble in submission order. With forensics on,
	// each scheme also yields an FCT attribution table.
	groups := runJobs(o, 2, func(idx int) []Table {
		tp := o.leafSpine()
		s := DCQCN(o)
		if idx == 1 {
			s = WithFloodgate(o, DCQCN(o), baseBDPOf(tp))
		}
		res := runIncastMixStress(o, workload.WebServer, s)
		t := Table{
			Title:  "Fig 2: realtime throughput, WebServer incastmix — " + s.Name,
			Header: []string{"bin", "incast", "victim-of-incast", "victim-of-PFC"},
		}
		inc := res.Stats.RxThroughput(stats.CatIncast)
		vi := res.Stats.RxThroughput(stats.CatVictimIncast)
		vp := res.Stats.RxThroughput(stats.CatVictimPFC)
		bins := maxLen(len(inc), len(vi), len(vp))
		// Aggregate into at most 16 coarse rows.
		step := bins/16 + 1
		for b := 0; b < bins; b += step {
			t.AddRow(
				fmt.Sprintf("%v", units.Time(b)*units.Time(res.Stats.BinWidth())),
				fmtRate(avgRate(inc, b, step)),
				fmtRate(avgRate(vi, b, step)),
				fmtRate(avgRate(vp, b, step)))
		}
		// Delay until the first victim-of-incast byte is delivered — the
		// paper's "1.8 ms" HOL-blocking observation.
		firstVictim := units.Duration(-1)
		for b, r := range vi {
			if r > 0 {
				firstVictim = units.Duration(b) * res.Stats.BinWidth()
				break
			}
		}
		t.Comment = fmt.Sprintf("first victim-of-incast delivery at %v; paper: 1.8ms w/o Floodgate, immediate with", firstVictim)
		out := []Table{t}
		if res.Forensics != nil {
			out = append(out, AttributionTable("Fig 2: FCT time budget — "+s.Name, res.Forensics))
		}
		return out
	})
	var tables []Table
	for _, g := range groups {
		tables = append(tables, g...)
	}
	return tables
}

func maxLen(ns ...int) int {
	m := 0
	for _, n := range ns {
		if n > m {
			m = n
		}
	}
	return m
}

func avgRate(series []units.BitRate, from, n int) units.BitRate {
	var sum units.BitRate
	c := 0
	for i := from; i < from+n && i < len(series); i++ {
		sum += series[i]
		c++
	}
	if c == 0 {
		return 0
	}
	return sum / units.BitRate(c)
}
