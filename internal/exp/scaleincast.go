package exp

import (
	"fmt"

	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/units"
	"floodgate/internal/workload"
)

// The scaleincast experiment: the canonical incast burst on a
// datacenter-sized Clos. Its point is not a new congestion result —
// it is the scale demonstration the structural router buys: a
// 100k-host fabric builds, routes and completes an incast in one
// process, with route memory O(total ports) where the dense tables
// would need hundreds of gigabytes for slice headers alone.

// fullScaleIncastDuration is the paper-scale completion window for
// the burst; the slow-motion model stretches it like every other
// time constant, and windowOverride shrinks it for smoke tests.
const fullScaleIncastDuration = 8 * units.Millisecond

// scaleIncastDegree caps the burst fan-in. Unlike the paper-scale
// figures, the full cross-rack sender set at 100k hosts would be a
// 100k-flow burst — a different experiment (and hours of simulated
// serialization at one NIC); a fixed 256-way incast keeps the burst
// canonical while the fabric scales underneath it.
const scaleIncastDegree = 256

// topoPreset is one named large-fabric builder.
type topoPreset struct {
	name  string
	note  string
	build func(o Options) *topo.Topology
}

// topoPresets lists the -topo fabrics in menu order. Each preset
// fixes its dimensions exactly; Options.Scale only applies the
// slow-motion rate/time model.
var topoPresets = []topoPreset{
	{"clos", "4-pod Clos, 128 hosts (smoke size)", func(o Options) *topo.Topology {
		return buildClos(topo.DefaultClos(), o)
	}},
	{"clos100k", "32-pod Clos, 102,400 hosts", func(o Options) *topo.Topology {
		return buildClos(topo.Clos100k(), o)
	}},
	{"fattree16", "k=16 fat tree, 1,024 hosts", func(o Options) *topo.Topology {
		return buildFatTree(topo.FatTree16(), o)
	}},
	{"fattree32", "k=32 fat tree, 8,192 hosts", func(o Options) *topo.Topology {
		return buildFatTree(topo.FatTree32(), o)
	}},
}

func buildClos(c topo.ClosConfig, o Options) *topo.Topology {
	c.HostRate = o.rate(c.HostRate)
	c.FabricRate = o.rate(c.FabricRate)
	c.Prop = o.stretch(c.Prop)
	return c.Build()
}

func buildFatTree(c topo.FatTreeConfig, o Options) *topo.Topology {
	c.Rate = o.rate(c.Rate)
	c.Prop = o.stretch(c.Prop)
	return c.Build()
}

// TopoPresets returns the preset names in menu order, with one-line
// descriptions (floodsim -topo list).
func TopoPresets() [][2]string {
	out := make([][2]string, len(topoPresets))
	for i, p := range topoPresets {
		out[i] = [2]string{p.name, p.note}
	}
	return out
}

// scaleTopo resolves Options.Topo to a built fabric.
func (o Options) scaleTopo(def string) (*topo.Topology, string, error) {
	name := o.Topo
	if name == "" {
		name = def
	}
	for _, p := range topoPresets {
		if p.name == name {
			return p.build(o), name, nil
		}
	}
	var names []string
	for _, p := range topoPresets {
		names = append(names, p.name)
	}
	return nil, "", fmt.Errorf("exp: unknown topology preset %q (have %v)", name, names)
}

// scaleIncastSpecs builds the bounded-degree burst: `degree`
// cross-rack senders spread evenly over the host range (so every pod
// contributes), each firing one 30–40 MTU flow at t=0 toward the
// last host — the same per-flow shape as the paper-scale pure
// incast, sampled deterministically from the seed.
func scaleIncastSpecs(tp *topo.Topology, seed uint64, degree int) []workload.FlowSpec {
	r := newRand(seed)
	dst := tp.Hosts[len(tp.Hosts)-1]
	eligible := workload.CrossRackSenders(tp, dst)
	if degree > len(eligible) {
		degree = len(eligible)
	}
	specs := make([]workload.FlowSpec, 0, degree)
	for i := 0; i < degree; i++ {
		src := eligible[i*len(eligible)/degree]
		size := 30*mtu + units.ByteSize(r.Int63n(int64(10*mtu)+1))
		specs = append(specs, workload.FlowSpec{Src: src, Dst: dst, Size: size, Cat: catIncast})
	}
	return specs
}

// ScaleIncast runs the canonical incast on the selected large-fabric
// preset (default: the 100k-host Clos) under DCQCN with and without
// Floodgate, and reports two tables: the fabric's route-memory
// accounting and the burst's completion stats. Route memory is
// checked structurally here (kind + O(total ports) bound); the live
// heap budget is nondeterministic and asserted by the scale tests
// and benchmarks instead, keeping this table byte-identical across
// shards, parallelism and schedulers.
func ScaleIncast(o Options) []Table {
	o = o.norm()
	tp, preset, err := o.scaleTopo("clos100k")
	if err != nil {
		panic(err)
	}
	mem := Table{
		Title:  "scaleincast: route memory — " + preset,
		Header: []string{"quantity", "value"},
	}
	hosts := int64(tp.NumHosts())
	nodes := int64(len(tp.Nodes))
	ports := int64(tp.TotalPorts())
	routeBytes := tp.RouteBytes()
	// The dense baseline counted analytically: the old tables held one
	// 24-byte slice header per (node, host) pair before a single
	// candidate entry — the term that made 100k hosts unbuildable.
	denseHeaders := 24 * nodes * (hosts + 1)
	mem.AddRow("hosts", fmt.Sprintf("%d", hosts))
	mem.AddRow("switches", fmt.Sprintf("%d", nodes-hosts))
	mem.AddRow("directed ports", fmt.Sprintf("%d", ports))
	mem.AddRow("router", tp.RouterKind())
	mem.AddRow("route_bytes", fmt.Sprintf("%d", routeBytes))
	mem.AddRow("route bytes/port", fmt.Sprintf("%.1f", float64(routeBytes)/float64(ports)))
	mem.AddRow("dense headers (est)", fmt.Sprintf("%d", denseHeaders))
	mem.AddRow("dense/structural", fmt.Sprintf("%dx", denseHeaders/max64(routeBytes, 1)))
	mem.AddRow("topo+route bytes/host", fmt.Sprintf("%d", (tp.StructBytes()+routeBytes)/max64(hosts, 1)))
	mem.Comment = "deterministic accounting; live-heap budget asserted by TestScaleIncastCompletes / BenchmarkRunScaleIncast"

	dur := o.duration(fullScaleIncastDuration)
	// Both schemes share one immutable Topology — at 100k hosts,
	// building it twice would double the dominant memory term for no
	// isolation benefit (parallel runs share topologies everywhere
	// else too).
	runs := runJobs(o, 2, func(idx int) *RunResult {
		s := DCQCN(o)
		if idx == 1 {
			s = WithFloodgate(o, DCQCN(o), baseBDPOf(tp))
		}
		specs := scaleIncastSpecs(tp, o.Seed, scaleIncastDegree)
		return Run(RunConfig{
			Topo: tp, Scheme: s, Specs: specs,
			Duration: dur, Seed: o.Seed, Opt: o,
			BufferSize: units.ByteSize(len(specs)) * 35 * mtu,
		})
	})
	run := Table{
		Title:  fmt.Sprintf("scaleincast: %d-way incast on %s", scaleIncastDegree, preset),
		Header: []string{"scheme", "completed", "avg FCT", "p99 FCT", "drops", "pfc pauses"},
	}
	for _, res := range runs {
		avg, p99 := stats.FCTStats(res.Stats.FCTs(stats.CatIncast))
		run.AddRow(res.Scheme,
			fmt.Sprintf("%d/%d", res.Completed, res.Total),
			fmt.Sprintf("%v", avg), fmt.Sprintf("%v", p99),
			fmt.Sprintf("%d", res.Stats.Drops), fmt.Sprintf("%d", res.Stats.PFCEventCount()))
	}
	return []Table{mem, run}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
