package exp

import (
	"runtime"
	"testing"

	"floodgate/internal/fault"
	"floodgate/internal/sim"
	"floodgate/internal/topo"
	"floodgate/internal/units"
)

// TestShardDeterminism is the sharded executor's acceptance gate
// (DESIGN.md §10): fig2 and fig6 tables must be byte-identical for
// every combination of shards ∈ {1, 2, 4}, par ∈ {1, 4}, and both
// event schedulers. The baseline is the fully serial unsharded wheel
// run; every other cell of the matrix must render the same bytes.
func TestShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	windowOverride = fullIncastMixDuration / 8
	defer func() { windowOverride = 0 }()

	for _, fig := range []struct {
		name string
		run  func(Options) []Table
	}{
		{"fig2", Fig2},
		{"fig6", Fig6},
	} {
		base := Options{Scale: 0.1, Seed: 1, Parallelism: 1, Shards: 1, Scheduler: sim.SchedWheel}
		want := renderAll(fig.run(base))
		for _, shards := range []int{1, 2, 4} {
			for _, par := range []int{1, 4} {
				for _, sched := range []sim.Scheduler{sim.SchedWheel, sim.SchedHeap} {
					o := base
					o.Shards, o.Parallelism, o.Scheduler = shards, par, sched
					if o == base {
						continue
					}
					if got := renderAll(fig.run(o)); got != want {
						t.Fatalf("%s: shards=%d par=%d sched=%v diverges from serial unsharded:\n--- want ---\n%s\n--- got ---\n%s",
							fig.name, shards, par, sched, want, got)
					}
				}
			}
		}
	}
}

// TestShardFaultMatrixBitIdentical extends the bit-identity guarantee
// to the fault plane: the full faultmatrix experiment — link flaps and
// switch restarts landing on ToR-spine links that cross shard cuts,
// plus Gilbert–Elliott burst loss — renders byte-identical tables at
// every shard count.
func TestShardFaultMatrixBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	windowOverride = fullIncastMixDuration / 8
	defer func() { windowOverride = 0 }()

	base := Options{Scale: 0.1, Seed: 1, Parallelism: 1, Shards: 1}
	want := renderAll(FaultMatrix(base))
	for _, shards := range []int{2, 4} {
		o := base
		o.Shards = shards
		if got := renderAll(FaultMatrix(o)); got != want {
			t.Fatalf("faultmatrix at shards=%d diverges from unsharded:\n--- want ---\n%s\n--- got ---\n%s",
				shards, want, got)
		}
	}
}

// dstCrossUplink returns an uplink of the incast destination's ToR
// whose spine lands on a different shard under Partition(tp, shards) —
// a link whose flap traffic must cross the cut.
func dstCrossUplink(t *testing.T, tp *topo.Topology, shards int) fault.Link {
	t.Helper()
	a := topo.Partition(tp, shards)
	tor := dstToR(tp)
	for i := range tp.Node(tor).Ports {
		peer := tp.Node(tor).Ports[i].Peer
		if tp.Node(peer).Kind == topo.SwitchNode && a[peer] != a[tor] {
			return fault.Link{A: tor, B: peer}
		}
	}
	t.Fatalf("shards=%d: no dst-ToR uplink crosses the cut; test premise broken", shards)
	panic("unreachable")
}

// TestShardCrossCutFlapBitIdentical flaps a link that provably crosses
// the shard cut (chosen against topo.Partition) while its spine
// restarts and burst loss runs — the storm scenario — and checks the
// sharded replicas agree with the serial run on every aggregate.
func TestShardCrossCutFlapBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	o := Options{Scale: 1, Seed: 7}.norm()
	mk := func(l fault.Link, shards int) RunConfig {
		tp := faultTestFabric()
		evs := fault.Flap(l, units.Time(20*units.Microsecond), 20*units.Microsecond, 80*units.Microsecond, 2)
		evs = append(evs, fault.Event{At: units.Time(150 * units.Microsecond), Kind: fault.SwitchRestart, Node: l.B})
		opt := o
		opt.Shards = shards
		return RunConfig{
			Topo:     tp,
			Scheme:   WithFloodgate(o, DCQCN(o), baseBDPOf(tp)),
			Specs:    faultTestSpecs(tp, o.Seed),
			Duration: 200 * units.Microsecond,
			Drain:    400 * units.Millisecond,
			Seed:     o.Seed,
			Opt:      opt,
			Faults:   &fault.Plan{Events: evs, Burst: fault.BurstWithMeanLoss(0.05)},
		}
	}
	for _, shards := range []int{2, 4} {
		l := dstCrossUplink(t, faultTestFabric(), shards)
		want := Run(mk(l, 1))
		if want.Completed != want.Total {
			t.Fatalf("shards=%d: serial storm run incomplete: %d/%d", shards, want.Completed, want.Total)
		}
		got := Run(mk(l, shards))
		if got.Completed != want.Completed || got.Total != want.Total {
			t.Fatalf("shards=%d: completion %d/%d != serial %d/%d",
				shards, got.Completed, got.Total, want.Completed, want.Total)
		}
		if got.DeliveredBytes() != want.DeliveredBytes() {
			t.Fatalf("shards=%d: delivered %v != serial %v", shards, got.DeliveredBytes(), want.DeliveredBytes())
		}
		if got.Stats.Drops != want.Stats.Drops || got.Stats.Trims != want.Stats.Trims {
			t.Fatalf("shards=%d: drops/trims %d/%d != serial %d/%d",
				shards, got.Stats.Drops, got.Stats.Trims, want.Stats.Drops, want.Stats.Trims)
		}
		if got.FaultStats() != want.FaultStats() {
			t.Fatalf("shards=%d: fault stats %+v != serial %+v", shards, got.FaultStats(), want.FaultStats())
		}
	}
}

// TestShardWatchdogDiagnosesWedgedShard wedges one shard of a sharded
// run (the incast destination's host link severed at t=0, so its shard
// never delivers a byte) and checks the barrier-level watchdog trips
// with the same structured diagnosis, at the same quantized stall
// time, as the unsharded run.
func TestShardWatchdogDiagnosesWedgedShard(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	run := func(shards int) *RunResult {
		return faultTestRun(t, func(rc *RunConfig) {
			dst := rc.Topo.Hosts[len(rc.Topo.Hosts)-1]
			tor := rc.Topo.Node(dst).Ports[0].Peer
			rc.Faults = &fault.Plan{Events: []fault.Event{
				{At: 0, Kind: fault.LinkDown, Link: fault.Link{A: dst, B: tor}},
			}}
			rc.StallHorizon = 500 * units.Microsecond
			rc.Opt.Shards = shards
		})
	}
	want := run(1)
	if !want.Stalled || want.Diagnosis == nil {
		t.Fatal("unsharded wedged run did not trip the watchdog")
	}
	for _, shards := range []int{2, 4} {
		got := run(shards)
		if !got.Stalled || got.Diagnosis == nil {
			t.Fatalf("shards=%d: wedged run did not trip the watchdog", shards)
		}
		if *got.Diagnosis != *want.Diagnosis {
			t.Fatalf("shards=%d: diagnosis %+v != unsharded %+v", shards, *got.Diagnosis, *want.Diagnosis)
		}
		if got.Completed != 0 || got.DeliveredBytes() != 0 {
			t.Fatalf("shards=%d: severed destination completed %d flows, delivered %v",
				shards, got.Completed, got.DeliveredBytes())
		}
	}
}

// TestShardOversubscriptionClamp pins the par × shards guard: when the
// product exceeds GOMAXPROCS the run-level parallelism is clamped to
// GOMAXPROCS/shards (floor 1) instead of thrashing barrier-synchronized
// workers against each other.
func TestShardOversubscriptionClamp(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	cases := []struct {
		par, shards, want int
	}{
		{8, 1, 8},  // unsharded: untouched
		{2, 4, 2},  // product exactly GOMAXPROCS: untouched
		{8, 4, 2},  // oversubscribed: clamped to GOMAXPROCS/shards
		{0, 2, 4},  // par 0 = all cores, then clamped for the shards
		{3, 16, 1}, // shards alone exceed GOMAXPROCS: floor of 1
	}
	for _, c := range cases {
		o := Options{Parallelism: c.par, Shards: c.shards}
		if got := o.parallelism(); got != c.want {
			t.Fatalf("par=%d shards=%d: parallelism() = %d, want %d", c.par, c.shards, got, c.want)
		}
	}
}

// TestShardValidation covers the config surface: negative shard counts
// are rejected, and Obs (single-engine by design) refuses to combine
// with sharding instead of silently sampling one shard.
func TestShardValidation(t *testing.T) {
	tp := faultTestFabric()
	rc := RunConfig{Topo: tp, Duration: units.Millisecond}
	rc.Opt.Shards = -1
	if err := rc.Validate(); err == nil {
		t.Fatal("negative Shards accepted")
	}
	rc.Opt.Shards = 2
	rc.Opt.Obs = ObsConfig{Dir: t.TempDir()}
	if err := rc.Validate(); err == nil {
		t.Fatal("Obs with Shards > 1 accepted")
	}
	rc.Opt.Obs = ObsConfig{}
	if err := rc.Validate(); err != nil {
		t.Fatalf("valid sharded config rejected: %v", err)
	}
}
