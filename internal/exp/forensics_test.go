package exp

import (
	"strings"
	"testing"

	"floodgate/internal/forensics"
	"floodgate/internal/sim"
	"floodgate/internal/units"
)

// forensicsIncastRun executes the pure-incast stress (every cross-rack
// host to one victim at t=0) with forensics recording on, under
// DCQCN+Floodgate or plain DCQCN.
func forensicsIncastRun(t *testing.T, o Options, fg bool) *RunResult {
	t.Helper()
	o = o.norm()
	o.Obs.Forensics = true
	tp := o.leafSpine()
	s := DCQCN(o)
	if fg {
		s = WithFloodgate(o, DCQCN(o), baseBDPOf(tp))
	}
	res := Run(RunConfig{
		Topo: tp, Scheme: s, Specs: pureIncastSpecs(tp, o.Seed),
		Duration: 2 * units.Millisecond, Seed: o.Seed, Opt: o,
	})
	if res.Completed != res.Total {
		t.Fatalf("flows incomplete: %d/%d", res.Completed, res.Total)
	}
	if res.Forensics == nil {
		t.Fatal("no forensics report despite Obs.Forensics")
	}
	return res
}

// TestForensicsBudgetTilesFCT is the attribution soundness check: in a
// loss-free run every completed flow's wait-state components must sum
// exactly to its FCT (CompWire is the non-negative residual, so any
// over-attribution breaks the equality), and the Floodgate incast must
// surface the mechanism itself — parked time, credit waits and at
// least one window-exhaustion episode.
func TestForensicsBudgetTilesFCT(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	res := forensicsIncastRun(t, Options{Scale: 0.1, Seed: 1}, true)
	rep := res.Forensics
	done := 0
	var sawVOQ, sawQueue bool
	for i := range rep.Flows {
		fb := &rep.Flows[i]
		if !fb.Done {
			continue
		}
		done++
		if fb.FCT <= 0 {
			t.Fatalf("flow %d: non-positive FCT %v", fb.ID, fb.FCT)
		}
		var sum units.Duration
		for c := forensics.Comp(0); c < forensics.NumComps; c++ {
			if fb.Comp[c] < 0 {
				t.Fatalf("flow %d: negative %s component %v", fb.ID, c, fb.Comp[c])
			}
			sum += fb.Comp[c]
		}
		if sum != fb.FCT {
			t.Fatalf("flow %d: components sum to %v, FCT is %v (over-attribution of %v)",
				fb.ID, sum, fb.FCT, sum-fb.FCT)
		}
		if fb.Comp[forensics.CompVOQ] > 0 || fb.Comp[forensics.CompCredit] > 0 {
			sawVOQ = true
		}
		if fb.Comp[forensics.CompQueue] > 0 {
			sawQueue = true
		}
	}
	if done == 0 {
		t.Fatal("no completed flows in the budget")
	}
	if !sawQueue {
		t.Error("incast produced no queueing attribution")
	}
	if !sawVOQ {
		t.Error("Floodgate incast produced no VOQ/credit attribution")
	}
	if rep.TotalParked <= 0 {
		t.Error("Floodgate incast parked nothing")
	}
	if len(rep.Episodes) == 0 {
		t.Fatal("no window-exhaustion episodes detected under Floodgate incast")
	}
	for i := range rep.Episodes {
		ep := &rep.Episodes[i]
		if ep.Open() {
			t.Errorf("episode %d left open at run end (switch %d dst %d)", i, ep.Switch, ep.Dst)
			continue
		}
		if ep.End < ep.Start {
			t.Errorf("episode %d ends before it starts: [%v, %v]", i, ep.Start, ep.End)
		}
		if ep.PeakParked <= 0 {
			t.Errorf("episode %d has no parked bytes", i)
		}
		if len(ep.Victims) == 0 {
			t.Errorf("episode %d has no victim flows", i)
		}
	}
	if !strings.Contains(rep.Summary(), "p99 flow") {
		t.Errorf("summary missing the p99 breakdown:\n%s", rep.Summary())
	}
}

// TestForensicsBaselineNoParking pins the negative control: without a
// flow-control module nothing can be parked, so the DCQCN baseline
// must report zero parked time, zero episodes and zero VOQ/credit
// attribution on every flow.
func TestForensicsBaselineNoParking(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	res := forensicsIncastRun(t, Options{Scale: 0.1, Seed: 1}, false)
	rep := res.Forensics
	if rep.TotalParked != 0 {
		t.Errorf("baseline parked %v, want 0", rep.TotalParked)
	}
	if len(rep.Episodes) != 0 {
		t.Errorf("baseline detected %d episodes, want 0", len(rep.Episodes))
	}
	for i := range rep.Flows {
		fb := &rep.Flows[i]
		if fb.Comp[forensics.CompVOQ] != 0 || fb.Comp[forensics.CompCredit] != 0 || fb.Parked != 0 {
			t.Fatalf("flow %d: VOQ/credit attribution without flow control: voq=%v credit=%v parked=%v",
				fb.ID, fb.Comp[forensics.CompVOQ], fb.Comp[forensics.CompCredit], fb.Parked)
		}
	}
}

// TestForensicsNoSimImpact pins the zero-observer-effect contract at
// the run level: forensics on and off must execute the identical
// simulation (same completions, delivered bytes, executed events and
// final clock).
func TestForensicsNoSimImpact(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	o := Options{Scale: 0.1, Seed: 1}.norm()
	run := func(forensicsOn bool) *RunResult {
		oo := o
		oo.Obs.Forensics = forensicsOn
		tp := oo.leafSpine()
		return Run(RunConfig{
			Topo: tp, Scheme: WithFloodgate(oo, DCQCN(oo), baseBDPOf(tp)),
			Specs:    pureIncastSpecs(tp, oo.Seed),
			Duration: 2 * units.Millisecond, Seed: oo.Seed, Opt: oo,
		})
	}
	off, on := run(false), run(true)
	if off.Forensics != nil || on.Forensics == nil {
		t.Fatalf("report presence wrong: off=%v on=%v", off.Forensics != nil, on.Forensics != nil)
	}
	if off.Completed != on.Completed || off.Total != on.Total {
		t.Errorf("completions differ: %d/%d vs %d/%d", off.Completed, off.Total, on.Completed, on.Total)
	}
	if off.DeliveredBytes() != on.DeliveredBytes() {
		t.Errorf("delivered bytes differ: %v vs %v", off.DeliveredBytes(), on.DeliveredBytes())
	}
	if off.Processed() != on.Processed() {
		t.Errorf("executed events differ: %d vs %d", off.Processed(), on.Processed())
	}
	if off.Net.Eng.Now() != on.Net.Eng.Now() {
		t.Errorf("final clocks differ: %v vs %v", off.Net.Eng.Now(), on.Net.Eng.Now())
	}
}

// TestForensicsShardSchedDeterminism is the load-bearing determinism
// gate from the issue: the forensics NDJSON (and the human summary)
// must be bit-identical across every shard count and scheduler. The
// per-shard sibling recorders see different interleavings of the same
// global event order; BuildReport's merge must erase the partition
// entirely.
func TestForensicsShardSchedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	var wantNDJSON, wantSummary string
	for _, shards := range []int{1, 2, 4} {
		for _, sched := range []sim.Scheduler{sim.SchedWheel, sim.SchedHeap} {
			o := Options{Scale: 0.1, Seed: 1, Shards: shards, Scheduler: sched}
			res := forensicsIncastRun(t, o, true)
			var b strings.Builder
			if err := res.Forensics.WriteNDJSON(&b); err != nil {
				t.Fatal(err)
			}
			got, sum := b.String(), res.Forensics.Summary()
			if wantNDJSON == "" {
				wantNDJSON, wantSummary = got, sum
				if !strings.Contains(got, `"type":"episode"`) {
					t.Fatalf("reference NDJSON has no episodes:\n%s", got)
				}
				continue
			}
			if got != wantNDJSON {
				t.Errorf("NDJSON differs at shards=%d sched=%v (%d vs %d bytes)",
					shards, sched, len(got), len(wantNDJSON))
			}
			if sum != wantSummary {
				t.Errorf("summary differs at shards=%d sched=%v:\n%s\nvs\n%s", shards, sched, sum, wantSummary)
			}
		}
	}
}

// TestForensicsNoTableImpact pins the table contract at the experiment
// level: with forensics on, fig2 appends attribution tables, but the
// base tables must remain byte-identical.
func TestForensicsNoTableImpact(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	prev := windowOverride
	windowOverride = fullIncastMixDuration / 8
	defer func() { windowOverride = prev }()
	o := Options{Scale: 0.1, Seed: 1, Parallelism: 1}
	plain := Fig2(o)
	oF := o
	oF.Obs.Forensics = true
	withF := Fig2(oF)
	if len(withF) != len(plain)+2 {
		t.Fatalf("fig2 tables = %d with forensics, want %d (base %d + one attribution per scheme)",
			len(withF), len(plain)+2, len(plain))
	}
	var base []Table
	for _, tb := range withF {
		if !strings.Contains(tb.Title, "FCT time budget") {
			base = append(base, tb)
		}
	}
	if TablesHash(plain) != TablesHash(base) {
		t.Fatalf("base tables differ with forensics on:\n--- off ---\n%s\n--- on ---\n%s",
			renderAll(plain), renderAll(base))
	}
	for _, tb := range withF {
		if strings.Contains(tb.Title, "FCT time budget") && len(tb.Rows) != int(forensics.NumComps) {
			t.Errorf("attribution table %q has %d rows, want %d", tb.Title, len(tb.Rows), forensics.NumComps)
		}
	}
}
