package exp

import (
	"fmt"

	"floodgate/internal/core"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/units"
	"floodgate/internal/workload"
)

// This file holds studies beyond the paper's figures: ablations of
// Floodgate's individual design choices (each §4 mechanism switched
// off in isolation) and the §8 compatibility matrix across congestion
// controls. They ship as first-class experiments so the claims in
// DESIGN.md are regenerable.

// AblationFloodgate strips one mechanism at a time from the practical
// design and reruns the WebServer incast-mix:
//
//   - no-delayCredit: credits always returned on the timer
//   - no-aggregation: per-packet credits (ideal timing, practical window)
//   - tiny-VOQ-pool:  1 VOQ, forcing CRC sharing
//   - no-isolation:   parked packets go to the egress queue anyway
//     (approximated by an effectively infinite window)
func AblationFloodgate(o Options) []Table {
	o = o.norm()
	t := Table{
		Title:  "Ablation: Floodgate design choices (WebServer incastmix)",
		Header: []string{"variant", "maxSwitch", "ToR-Up", "Core", "ToR-Down", "poisson p99", "VOQs"},
	}
	type variant struct {
		name string
		mut  func(*core.Config)
	}
	variants := []variant{
		{"full design", func(*core.Config) {}},
		{"no delayCredit", func(c *core.Config) { c.DelayCreditThresh = 1 << 40 }},
		{"per-packet credits", func(c *core.Config) { c.Mode = core.Ideal; c.M = 0 }},
		{"1-VOQ pool", func(c *core.Config) { c.MaxVOQs = 1 }},
		{"no window (off)", nil},
	}
	t.Rows = runJobs(o, len(variants), func(idx int) []string {
		v := variants[idx]
		tp := o.leafSpine()
		var s Scheme
		if v.mut == nil {
			s = DCQCN(o)
			s.Name = "DCQCN (no Floodgate)"
		} else {
			cfg := FloodgateConfig(o, baseBDPOf(tp))
			if v.name == "per-packet credits" {
				// Ideal credit timing but the practical window value: set
				// M so m·BDP_nextHop equals BDP+C·T on the uplink.
				up := findUplink(tp)
				win := up.BDP() + units.BytesOver(up.Rate, cfg.CreditTimer)
				cfg.Mode = core.Ideal
				cfg.M = float64(win) / float64(up.BDP())
				cfg.PerDstPause = false
			}
			v.mut(&cfg)
			s = WithFloodgateCfg(DCQCN(o), cfg, "+FG["+v.name+"]")
		}
		res := runMixWith(o, tp, workload.WebServer, s)
		_, p99 := stats.FCTStats(res.Stats.PoissonFCTs())
		return []string{v.name,
			fmtBytes(res.Stats.MaxSwitchBuffer()),
			fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRUp)),
			fmtBytes(res.Stats.MaxClassBuffer(topo.ClassCore)),
			fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRDown)),
			fmtDur(p99),
			fmt.Sprintf("%d", res.Stats.MaxVOQInUse)}
	})
	t.Comment = "each mechanism earns its keep: delayCredit caps cores, aggregation saves bandwidth at equal buffers, the VOQ pool isolates concurrent incasts"
	return []Table{t}
}

func findUplink(tp *topo.Topology) *topo.Port {
	tor := tp.Node(tp.Hosts[0]).Ports[0].Peer
	node := tp.Node(tor)
	for i := range node.Ports {
		if node.Ports[i].Class == topo.ClassToRUp {
			return &node.Ports[i]
		}
	}
	panic("no uplink")
}

// CompatMatrix runs the §8 compatibility claim: Floodgate layered
// under four congestion controls, reporting that each pair keeps its
// no-Floodgate FCT on pure Poisson traffic while cutting the incast
// mix's victim tail.
func CompatMatrix(o Options) []Table {
	o = o.norm()
	t := Table{
		Title:  "Compatibility: Floodgate under four congestion controls (WebServer)",
		Header: []string{"cc", "mix p99 (plain)", "mix p99 (+FG)", "pure p99 (plain)", "pure p99 (+FG)"},
	}
	bases := []func(Options) Scheme{DCQCN, DCTCP, TIMELY, HPCC}
	// Four runs per congestion control; all 16 overlap in the pool and
	// each row reduces its own four p99s at assembly.
	p99s := runJobs(o, len(bases)*4, func(idx int) units.Duration {
		base := bases[idx/4]
		bdp := baseBDPOf(o.leafSpine())
		var res *RunResult
		switch idx % 4 {
		case 0:
			res = runMixWith(o, o.leafSpine(), workload.WebServer, base(o))
		case 1:
			res = runMixWith(o, o.leafSpine(), workload.WebServer, WithFloodgate(o, base(o), bdp))
		case 2:
			res = runPurePoisson(o, base(o))
		default:
			res = runPurePoisson(o, WithFloodgate(o, base(o), bdp))
		}
		samples := res.Stats.PoissonFCTs()
		if idx%4 >= 2 {
			samples = res.Stats.AllFCTs()
		}
		_, p99 := stats.FCTStats(samples)
		return p99
	})
	for bi, base := range bases {
		t.AddRow(base(o).Name, fmtDur(p99s[bi*4]), fmtDur(p99s[bi*4+1]),
			fmtDur(p99s[bi*4+2]), fmtDur(p99s[bi*4+3]))
	}
	t.Comment = "Floodgate's isolation survives the CC swap (§8); pure-Poisson columns must match within noise"
	return []Table{t}
}

func runPurePoisson(o Options, s Scheme) *RunResult {
	tp := o.leafSpine()
	dur := o.duration(fullIncastMixDuration)
	hostRate := tp.Node(tp.Hosts[0]).Ports[0].Rate
	specs := workload.Poisson(workload.PoissonConfig{
		CDF: workload.WebServer, Load: 0.8, Hosts: tp.Hosts, HostRate: hostRate, Until: dur,
	}, newRand(o.Seed))
	return Run(RunConfig{Topo: tp, Scheme: s, Specs: specs, Duration: dur, Seed: o.Seed, Opt: o})
}

// IncastDegreeSweep explores how the win scales with fan-in — an
// extension the paper's intro motivates but never plots.
func IncastDegreeSweep(o Options) []Table {
	o = o.norm()
	t := Table{
		Title:  "Extension: buffer relief vs incast degree (pure incast bursts)",
		Header: []string{"degree", "DCQCN ToR-Down", "+FG ToR-Down", "relief"},
	}
	fracs := []int{4, 2, 1} // 1/4, 1/2, all cross-rack hosts
	bufs := runJobs(o, len(fracs)*2, func(idx int) units.ByteSize {
		frac := fracs[idx/2]
		withFG := idx%2 == 1
		tp := o.leafSpine()
		s := DCQCN(o)
		if withFG {
			s = WithFloodgate(o, DCQCN(o), baseBDPOf(tp))
		}
		dst := tp.Hosts[len(tp.Hosts)-1]
		senders := workload.CrossRackSenders(tp, dst)
		n := len(senders) / frac
		if n < 2 {
			n = 2
		}
		r := newRand(o.Seed)
		var specs []workload.FlowSpec
		for i := 0; i < n; i++ {
			size := 30*mtu + units.ByteSize(r.Int63n(int64(10*mtu)+1))
			specs = append(specs, workload.FlowSpec{Src: senders[i], Dst: dst, Size: size, Cat: catIncast})
		}
		res := Run(RunConfig{
			Topo: tp, Scheme: s, Specs: specs,
			Duration: 2 * units.Millisecond, Seed: o.Seed, Opt: o,
			Drain: 300 * units.Millisecond,
		})
		return res.Stats.MaxClassBuffer(topo.ClassToRDown)
	})
	for fi, frac := range fracs {
		plain, fg := bufs[fi*2], bufs[fi*2+1]
		t.AddRow(fmt.Sprintf("1/%d of hosts", frac), fmtBytes(plain), fmtBytes(fg),
			fmtRatio(float64(plain), float64(fg)))
	}
	t.Comment = "relief grows with fan-in: windows bound the last hop while DCQCN's occupancy tracks the burst size"
	return []Table{t}
}
