package exp

import (
	"strings"
	"testing"

	"floodgate/internal/workload"
)

// smokeOpts keeps per-experiment runtime low while still exercising
// the full pipeline.
var smokeOpts = Options{Scale: 0.1, Seed: 1}

func TestRegistryLookup(t *testing.T) {
	for _, e := range List() {
		got, err := Lookup(e.ID)
		if err != nil || got.ID != e.ID {
			t.Fatalf("Lookup(%q) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if len(IDs()) != len(List()) {
		t.Fatal("IDs/List mismatch")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "x", Header: []string{"a", "bb"}, Comment: "note"}
	tab.AddRow("1", "2")
	s := tab.String()
	for _, want := range []string{"== x ==", "a", "bb", "-- note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestFig7NoSim(t *testing.T) {
	tabs := Fig7(smokeOpts)
	if len(tabs) != 1 || len(tabs[0].Rows) != 4 {
		t.Fatalf("fig7 shape wrong: %+v", tabs)
	}
}

// TestSmokeAllExperiments executes every registered experiment once at
// minimal scale; it validates that each one runs to completion and
// produces non-empty tables. Heavier figures are exercised in
// (skippable) dedicated tests below.
func TestSmokeAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke is not short")
	}
	// Budget the pass: a quarter-length workload window keeps the whole
	// registry under the default go-test timeout on one core.
	windowOverride = fullIncastMixDuration / 4
	defer func() { windowOverride = 0 }()
	skip := map[string]bool{
		"fig8": true, // covered by the per-CC variants below
	}
	for _, e := range List() {
		if skip[e.ID] {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tabs := e.Run(smokeOpts)
			if len(tabs) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range tabs {
				if len(tab.Rows) == 0 {
					t.Fatalf("%s produced an empty table %q", e.ID, tab.Title)
				}
				t.Log("\n" + tab.String())
			}
		})
	}
}

func TestIncastMixCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	o := smokeOpts
	tp := o.leafSpine()
	res := runIncastMix(o, workload.WebServer, WithFloodgate(o, DCQCN(o), baseBDPOf(tp)))
	if res.Completed != res.Total {
		t.Fatalf("flows incomplete: %d/%d", res.Completed, res.Total)
	}
	if res.Stats.MaxSwitchBuffer() == 0 {
		t.Fatal("no buffer recorded")
	}
}

func TestSchemeNames(t *testing.T) {
	o := smokeOpts
	if DCQCN(o).Name != "DCQCN" || TIMELY(o).Name != "TIMELY" || HPCC(o).Name != "HPCC" {
		t.Fatal("base scheme names wrong")
	}
	if got := WithFloodgate(o, DCQCN(o), 64000).Name; got != "DCQCN+Floodgate" {
		t.Fatalf("name = %q", got)
	}
	if got := WithIdeal(o, HPCC(o), 64000).Name; got != "HPCC+ideal" {
		t.Fatalf("name = %q", got)
	}
	if got := BFC(32, false, 12000).Name; got != "BFC-32Q" {
		t.Fatalf("name = %q", got)
	}
	if got := BFC(0, true, 12000).Name; got != "BFC-ideal" {
		t.Fatalf("name = %q", got)
	}
}

func TestOptionsScaling(t *testing.T) {
	o := Options{Scale: 1, Seed: 1}
	if o.hostsPerToR() != 16 || o.spines() != 4 {
		t.Fatalf("paper scale wrong: hosts=%d spines=%d", o.hostsPerToR(), o.spines())
	}
	small := Options{Scale: 0.1, Seed: 1}.norm()
	if small.hostsPerToR() < 6 {
		t.Fatal("rack floor violated")
	}
	// Non-blocking invariant at every scale.
	for _, s := range []float64{0.1, 0.2, 0.5, 0.75, 1} {
		oo := Options{Scale: s, Seed: 1}.norm()
		tp := oo.leafSpine()
		tor := tp.Node(tp.Hosts[0]).Ports[0].Peer
		var up, down float64
		for _, p := range tp.Node(tor).Ports {
			if tp.Node(p.Peer).Kind == 0 { // host
				down += float64(p.Rate)
			} else {
				up += float64(p.Rate)
			}
		}
		if up < down {
			t.Fatalf("scale %v: blocking fabric (up %v < down %v)", s, up, down)
		}
	}
}
