package exp

import (
	"fmt"
	"sort"
)

// Runner produces the tables of one paper figure or table.
type Runner func(Options) []Table

// Experiment describes one reproducible result.
type Experiment struct {
	ID    string
	Title string
	Run   Runner
}

// registry maps experiment ids to runners, in paper order.
var registry = []Experiment{
	{"fig2", "realtime throughput under incastmix (motivation)", Fig2},
	{"fig6", "testbed FCT and per-hop buffer (§5.2)", Fig6},
	{"fig7", "workload flow-size distributions", Fig7},
	{"fig8", "avg/p99 FCT of Poisson flows (DCQCN/TIMELY/HPCC)", func(o Options) []Table { return Fig8(o, "") }},
	{"fig8-dcqcn", "Fig 8 restricted to DCQCN", func(o Options) []Table { return Fig8(o, "DCQCN") }},
	{"fig8-timely", "Fig 8 restricted to TIMELY", func(o Options) []Table { return Fig8(o, "TIMELY") }},
	{"fig8-hpcc", "Fig 8 restricted to HPCC", func(o Options) []Table { return Fig8(o, "HPCC") }},
	{"fig9", "victim-class FCT CDFs (WebServer)", Fig9},
	{"fig10", "maximum switch buffer occupancy", Fig10},
	{"table2", "PFC triggered time per layer", Table2},
	{"fig11", "per-hop buffer reallocation and queuing time", Fig11},
	{"fig12", "throughput under injected loss", Fig12},
	{"fig13", "8-ary fat tree FCT and per-hop buffer", Fig13},
	{"fig14", "buffer vs number of ToRs (pure incast)", Fig14},
	{"fig15", "successive incast (per-dst PAUSE)", Fig15},
	{"fig16", "CC convergence under two ECN settings", Fig16},
	{"fig17", "credit timer and delayCredit sweeps", Fig17},
	{"fig18", "wire bandwidth stacking (data/ctrl/credit)", Fig18},
	{"fig20", "comparison with BFC", Fig20},
	{"fig21", "incast flows' FCT (appendix A.1)", Fig21},
	{"fig22", "pure Poisson FCT (appendix A.2)", Fig22},
	{"fig23", "comparison with NDP (appendix B)", Fig23},
	{"fig24", "comparison with PFC w/ tag (appendix B)", Fig24},
	// Beyond the paper: ablations and extensions (see DESIGN.md).
	{"ablation", "Floodgate design-choice ablation", AblationFloodgate},
	{"compat", "CC compatibility matrix (§8, incl. DCTCP)", CompatMatrix},
	{"degree", "buffer relief vs incast degree (extension)", IncastDegreeSweep},
	{"resource", "resource overhead accounting (§7.4)", ResourceOverhead},
	{"swift", "Swift ± Floodgate (extension)", SwiftCompat},
	{"faultmatrix", "recovery under link/switch faults (extension)", FaultMatrix},
	{"sloincast", "closed-loop SLO: deadlines, retries, hedging (extension)", SLOIncast},
	{"scaleincast", "canonical incast on a 100k-host Clos (structural routing)", ScaleIncast},
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (try List())", id)
}

// List returns every registered experiment in paper order.
func List() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}
