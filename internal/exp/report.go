package exp

import (
	"fmt"
	"strings"

	"floodgate/internal/packet"
	"floodgate/internal/units"
)

// Aliases keeping run.go terse.
const mtu = packet.MTU

const catIncast = packet.CatIncast

type topoNodeID = packet.NodeID

// Table is a simple text table for experiment output, mirroring the
// rows/series of the corresponding paper figure.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Comment string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Comment != "" {
		fmt.Fprintf(&b, "-- %s\n", t.Comment)
	}
	return b.String()
}

// fmtDur renders a duration for table cells.
func fmtDur(d units.Duration) string { return d.String() }

// fmtBytes renders a byte size for table cells.
func fmtBytes(b units.ByteSize) string { return b.String() }

// fmtRate renders a bit rate for table cells.
func fmtRate(r units.BitRate) string { return r.String() }

// fmtRatio renders a× comparisons.
func fmtRatio(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", a/b)
}
