package exp

// Attribution tables: render a run's forensics report (see
// internal/forensics) as experiment tables. Experiments only append
// these when Options.Obs.Forensics is set, so the base tables stay
// byte-identical with forensics off.

import (
	"fmt"

	"floodgate/internal/forensics"
	"floodgate/internal/units"
)

// AttributionTable renders the per-flow FCT time budget as component
// quantiles plus each component's share of total attributed time. The
// comment carries the report's "why was p99 slow" summary.
func AttributionTable(title string, rep *forensics.Report) Table {
	t := Table{
		Title:  title,
		Header: []string{"component", "p50", "p99", "share"},
	}
	q := rep.ComponentQuantiles()
	var totals [forensics.NumComps]units.Duration
	var grand units.Duration
	for i := range rep.Flows {
		fb := &rep.Flows[i]
		if !fb.Done {
			continue
		}
		for c := forensics.Comp(0); c < forensics.NumComps; c++ {
			totals[c] += fb.Comp[c]
			grand += fb.Comp[c]
		}
	}
	for c := forensics.Comp(0); c < forensics.NumComps; c++ {
		share := "0.0%"
		if grand > 0 {
			// Integer pct in tenths: deterministic, no float formatting.
			pct10 := totals[c] * 1000 / grand
			share = fmt.Sprintf("%d.%d%%", pct10/10, pct10%10)
		}
		t.AddRow(c.String(), fmtDur(q[c].P50), fmtDur(q[c].P99), share)
	}
	t.Comment = rep.Summary()
	return t
}
