// Package exp is the benchmark harness: one runner per table and
// figure in the paper's evaluation (§5.2, §6, appendices), each
// assembling topology + workload + scheme, running the simulator, and
// reducing the collector into the same rows/series the paper reports.
//
// Schemes are constructed against an Options value because the
// slow-motion scale model stretches every protocol time constant
// (DCQCN timers, Floodgate's credit timer, CNP pacing) by 1/Scale.
package exp

import (
	"fmt"

	"floodgate/internal/bfc"
	"floodgate/internal/cc"
	"floodgate/internal/cc/dcqcn"
	"floodgate/internal/cc/dctcp"
	"floodgate/internal/cc/hpcc"
	"floodgate/internal/cc/timely"
	"floodgate/internal/core"
	"floodgate/internal/device"
	"floodgate/internal/pfctag"
	"floodgate/internal/units"
)

// Scheme is a complete transport/flow-control configuration.
type Scheme struct {
	Name string

	CC  cc.Factory
	INT bool // HPCC telemetry
	ECN bool // DCQCN marking

	FC            device.FCFactory
	QueuesPerPort int
	PerDstPause   bool
	NDP           bool
}

// dcqcnConfigScaled returns the DCQCN binding with timers stretched to
// the scale's slow-motion clock.
func dcqcnConfigScaled(o Options) dcqcn.Config {
	o = o.norm()
	cfg := dcqcn.DefaultConfig()
	cfg.AlphaInterval = o.stretch(cfg.AlphaInterval)
	cfg.RateIncInterval = o.stretch(cfg.RateIncInterval)
	cfg.DecreaseMinGap = o.stretch(cfg.DecreaseMinGap)
	cfg.RateAI = o.rate(cfg.RateAI)
	cfg.RateHAI = o.rate(cfg.RateHAI)
	return cfg
}

// dcqcnNew re-exports the factory for experiment-local overrides.
var dcqcnNew = dcqcn.New

// DCQCN returns plain DCQCN (ECN marking, CNP reaction) with timers
// stretched to the scale's slow-motion clock.
func DCQCN(o Options) Scheme {
	return Scheme{Name: "DCQCN", CC: dcqcn.New(dcqcnConfigScaled(o)), ECN: true}
}

// DCTCP returns window-based DCTCP (ECN-fraction reaction, §8's third
// ECN-signal congestion control).
func DCTCP(o Options) Scheme {
	return Scheme{Name: "DCTCP", CC: dctcp.Default(), ECN: true}
}

// TIMELY returns plain TIMELY; its thresholds derive from the base
// RTT, which the slow-motion model stretches automatically.
func TIMELY(o Options) Scheme {
	return Scheme{Name: "TIMELY", CC: timely.Default()}
}

// HPCC returns plain HPCC (INT driven); its reference window derives
// from base RTT × line rate, which is scale-invariant.
func HPCC(o Options) Scheme {
	return Scheme{Name: "HPCC", CC: hpcc.Default(), INT: true}
}

// NDP returns the receiver-driven NDP baseline (cut-payload trimming).
func NDP(o Options) Scheme {
	return Scheme{Name: "NDP", CC: cc.NewFixedWindow(), NDP: true}
}

// FloodgateConfig returns the §6 practical binding: T = 10 µs,
// thre_credit = 10 base BDP, 100 VOQs. The credit timer deliberately
// stays at its wall-clock value across scales: the window's C_out·T
// term then shrinks with the scaled link rate, preserving the paper's
// ratio between per-dst windows and a rack's incast share (the
// engagement condition of the mechanism). The relative credit-packet
// overhead is higher at small scale as a result; EXPERIMENTS.md notes
// this where it shows.
func FloodgateConfig(o Options, baseBDP units.ByteSize) core.Config {
	return core.DefaultConfig(baseBDP)
}

// IdealFloodgateConfig returns the strawman binding (per-packet
// credits, m·BDP windows, per-dst PAUSE).
func IdealFloodgateConfig(o Options, baseBDP units.ByteSize) core.Config {
	return core.IdealConfig(baseBDP)
}

// WithFloodgate layers practical Floodgate over a scheme.
func WithFloodgate(o Options, s Scheme, baseBDP units.ByteSize) Scheme {
	return WithFloodgateCfg(s, FloodgateConfig(o, baseBDP), "+Floodgate")
}

// WithIdeal layers strawman Floodgate over a scheme.
func WithIdeal(o Options, s Scheme, baseBDP units.ByteSize) Scheme {
	return WithFloodgateCfg(s, IdealFloodgateConfig(o, baseBDP), "+ideal")
}

// WithFloodgateCfg layers an explicit Floodgate config (sweeps).
func WithFloodgateCfg(s Scheme, cfg core.Config, suffix string) Scheme {
	s.Name += suffix
	s.FC = core.New(cfg)
	s.PerDstPause = cfg.PerDstPause
	return s
}

// BFC returns the BFC baseline over `queues` physical queues per port
// (32/128), or per-flow queues when ideal.
func BFC(queues int, ideal bool, pauseThresh units.ByteSize) Scheme {
	name := "BFC-ideal"
	qpp := 1024
	if !ideal {
		name = fmt.Sprintf("BFC-%dQ", queues)
		qpp = queues
	}
	return Scheme{
		Name:          name,
		CC:            cc.NewFixedWindow(),
		FC:            bfc.New(bfc.Config{NumQueues: queues, Ideal: ideal, PauseThresh: pauseThresh}),
		QueuesPerPort: qpp,
	}
}

// WithPFCTag layers the PFC w/ tag derivative over a scheme
// (Appendix B).
func WithPFCTag(s Scheme, oneHopBDP units.ByteSize) Scheme {
	s.Name += "+PFC w/ tag"
	s.FC = pfctag.New(pfctag.DefaultConfig(oneHopBDP))
	s.PerDstPause = true
	return s
}
