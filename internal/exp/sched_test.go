package exp

import (
	"testing"

	"floodgate/internal/sim"
)

// TestCrossSchedulerDeterminism is the timing wheel's acceptance gate:
// the wheel and the plain heap must execute events in the identical
// order, so every rendered table is byte-identical across the scheduler
// choice — and stays so under the parallel executor. Fig2 exercises the
// motivating incast sweep and Fig6 the full mixed workload comparison.
func TestCrossSchedulerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	windowOverride = fullIncastMixDuration / 8
	defer func() { windowOverride = 0 }()

	for _, fig := range []struct {
		name string
		run  func(Options) []Table
	}{
		{"fig2", Fig2},
		{"fig6", Fig6},
	} {
		base := Options{Scale: 0.1, Seed: 1, Parallelism: 1}

		wheel := base
		wheel.Scheduler = sim.SchedWheel
		want := renderAll(fig.run(wheel))

		heap := base
		heap.Scheduler = sim.SchedHeap
		if got := renderAll(fig.run(heap)); got != want {
			t.Fatalf("%s: heap scheduler diverges from wheel:\n--- wheel ---\n%s\n--- heap ---\n%s",
				fig.name, want, got)
		}

		par := base
		par.Scheduler = sim.SchedHeap
		par.Parallelism = 4
		if got := renderAll(fig.run(par)); got != want {
			t.Fatalf("%s: heap/4-worker output diverges from wheel/serial:\n--- wheel ---\n%s\n--- heap par ---\n%s",
				fig.name, want, got)
		}
	}
}
