package exp

import (
	"fmt"
	"strings"

	"floodgate/internal/app"
	"floodgate/internal/fault"
	"floodgate/internal/topo"
	"floodgate/internal/units"
	"floodgate/internal/workload"
)

// This file is the fault-robustness experiment (beyond the paper): the
// §6 incast-mix workload run against a menu of fault scenarios — link
// down, link flaps, switch restarts, Gilbert–Elliott burst loss and a
// combined storm — comparing plain DCQCN with DCQCN+Floodgate. The
// claim under test: Floodgate's recovery plane (PSN credits, switchSYN
// resync, the credit-stall escape hatch) rides through fabric faults
// without stranding windows, so faulted runs still complete.

// faultScenario names one reproducible fault plan, parameterized by the
// topology under test and the workload window.
type faultScenario struct {
	name string
	desc string
	plan func(tp *topo.Topology, dur units.Duration) *fault.Plan
}

// dstUplink returns the ToR↔spine link on the incast destination's
// path: faults there sit directly in the incast's blast radius.
func dstUplink(tp *topo.Topology) fault.Link {
	dst := tp.Hosts[len(tp.Hosts)-1]
	tor := tp.Node(dst).Ports[0].Peer
	for i := range tp.Node(tor).Ports {
		peer := tp.Node(tor).Ports[i].Peer
		if tp.Node(peer).Kind == topo.SwitchNode {
			return fault.Link{A: tor, B: peer}
		}
	}
	panic("exp: destination ToR has no switch uplink")
}

// dstToR returns the incast destination's ToR.
func dstToR(tp *topo.Topology) topoNodeID {
	dst := tp.Hosts[len(tp.Hosts)-1]
	return tp.Node(dst).Ports[0].Peer
}

// faultScenarios returns the matrix rows, mildest first.
func faultScenarios() []faultScenario {
	return []faultScenario{
		{"none", "healthy fabric baseline", func(*topo.Topology, units.Duration) *fault.Plan {
			return nil
		}},
		{"linkdown", "dst ToR uplink down for half the window", func(tp *topo.Topology, dur units.Duration) *fault.Plan {
			l := dstUplink(tp)
			return &fault.Plan{Events: []fault.Event{
				{At: units.Time(dur / 4), Kind: fault.LinkDown, Link: l},
				{At: units.Time(3 * dur / 4), Kind: fault.LinkUp, Link: l},
			}}
		}},
		{"flap", "dst ToR uplink flaps 4x", func(tp *topo.Topology, dur units.Duration) *fault.Plan {
			return &fault.Plan{Events: fault.Flap(dstUplink(tp),
				units.Time(dur/8), dur/16, dur/8, 4)}
		}},
		{"restart", "dst ToR restarts mid-incast", func(tp *topo.Topology, dur units.Duration) *fault.Plan {
			return &fault.Plan{Events: []fault.Event{
				{At: units.Time(dur / 3), Kind: fault.SwitchRestart, Node: dstToR(tp)},
			}}
		}},
		{"burst", "5% Gilbert-Elliott burst loss on all fabric links", func(*topo.Topology, units.Duration) *fault.Plan {
			return &fault.Plan{Burst: fault.BurstWithMeanLoss(0.05)}
		}},
		{"storm", "flaps + spine restart + 2% burst loss", func(tp *topo.Topology, dur units.Duration) *fault.Plan {
			l := dstUplink(tp)
			evs := fault.Flap(l, units.Time(dur/8), dur/16, dur/4, 2)
			evs = append(evs, fault.Event{At: units.Time(dur / 2), Kind: fault.SwitchRestart, Node: l.B})
			return &fault.Plan{Events: evs, Burst: fault.BurstWithMeanLoss(0.02)}
		}},
	}
}

// FaultScenarioNames lists the scenario names in matrix order.
func FaultScenarioNames() []string {
	scs := faultScenarios()
	names := make([]string, len(scs))
	for i, sc := range scs {
		names[i] = sc.name
	}
	return names
}

// FaultMatrix runs the full scenario × scheme matrix.
func FaultMatrix(o Options) []Table {
	return faultTables(faultScenarios(), o)
}

// RunFaultScenario runs a single named scenario (floodsim -faults).
func RunFaultScenario(name string, o Options) ([]Table, error) {
	for _, sc := range faultScenarios() {
		if sc.name == name {
			return faultTables([]faultScenario{sc}, o), nil
		}
	}
	return nil, fmt.Errorf("exp: unknown fault scenario %q (have: %s)",
		name, strings.Join(FaultScenarioNames(), ", "))
}

func faultTables(scs []faultScenario, o Options) []Table {
	o = o.norm()
	hdr := []string{"scenario", "scheme", "completed", "goodput", "linkEvts", "restarts", "resyncs", "stalled"}
	if o.Obs.Forensics {
		// Attribution columns ride along only when forensics is on, so
		// the base table stays byte-identical with it off.
		hdr = append(hdr, "parked", "episodes")
	}
	if o.App {
		// Closed-loop overlay: same conditional-column contract — the
		// base table is untouched with -app off.
		hdr = append(hdr, "reqOK", "p99req", "timeouts", "retries")
	}
	t := Table{
		Title:  "Fault matrix: incast mix under injected fabric faults",
		Header: hdr,
	}
	rows := runJobs(o, 2*len(scs), func(idx int) []string {
		sc := scs[idx/2]
		tp := o.leafSpine()
		s := DCQCN(o)
		if idx%2 == 0 {
			s = WithFloodgate(o, DCQCN(o), baseBDPOf(tp))
		}
		dur := o.duration(fullIncastMixDuration)
		specs := incastMixSpecs(tp, workload.WebServer, dur, o.Seed, incastDegree(tp))
		rcfg := RunConfig{
			Topo: tp, Scheme: s, Specs: specs, Duration: dur,
			Seed: o.Seed, Opt: o,
			Faults: sc.plan(tp, dur),
			Drain:  10 * dur,
		}
		if o.App {
			// A modest partition-aggregate overlay (quarter fan-in, loose
			// deadline): the question here is how faults, not congestion,
			// degrade request SLOs.
			fan := incastDegree(tp) / 4
			if fan < 2 {
				fan = 2
			}
			rcfg.App = &app.Config{
				Requests: 24, Interval: dur / 24, FanIn: fan,
				Deadline:    8 * sloIdeal(tp, fan),
				MaxAttempts: 3,
				Policy:      app.ExpBackoff{Base: o.stretch(50 * units.Microsecond)},
			}
		}
		res := Run(rcfg)
		fs := res.FaultStats()
		stalled := fmt.Sprintf("%t", res.Stalled)
		if res.Stalled {
			stalled = "STALLED"
		}
		row := []string{sc.name, s.Name,
			fmt.Sprintf("%d/%d", res.Completed, res.Total),
			fmtRate(units.Rate(res.DeliveredBytes(), dur)),
			fmt.Sprintf("%d", fs.LinkEvents),
			fmt.Sprintf("%d", fs.Restarts),
			fmt.Sprintf("%d", fs.Resyncs),
			stalled}
		if res.Forensics != nil {
			row = append(row,
				fmtDur(res.Forensics.TotalParked),
				fmt.Sprintf("%d", len(res.Forensics.Episodes)))
		}
		if res.SLO != nil {
			slo := res.SLO
			row = append(row,
				fmt.Sprintf("%d/%d", slo.Completed, slo.Requests),
				fmtDur(slo.P99),
				fmt.Sprintf("%.1f%%", 100*slo.TimeoutRate),
				fmt.Sprintf("%.2fx", slo.Amplification))
		}
		return row
	})
	t.Rows = rows
	t.Comment = "extension: every scenario should complete (no STALLED rows); resyncs > 0 on restart rows shows switchSYN epoch recovery engaging"
	return []Table{t}
}
