package exp

import (
	"reflect"
	"testing"

	"floodgate/internal/topo"
	"floodgate/internal/workload"
)

// renderAll flattens tables to one string for byte-level comparison.
func renderAll(tables []Table) string {
	s := ""
	for _, t := range tables {
		s += t.String() + "\n"
	}
	return s
}

// TestParallelDeterminism is the executor's core guarantee: a
// representative experiment produces byte-identical tables serially
// and with a 4-worker pool. fig10 covers 12 independent runs plus a
// cross-run reduction (the "vs plain" ratio column).
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	windowOverride = fullIncastMixDuration / 8
	defer func() { windowOverride = 0 }()
	serial := Options{Scale: 0.1, Seed: 1, Parallelism: 1}
	parallel := Options{Scale: 0.1, Seed: 1, Parallelism: 4}
	want := renderAll(Fig10(serial))
	got := renderAll(Fig10(parallel))
	if want != got {
		t.Fatalf("parallel output diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
}

// TestRunManyMatchesSerial checks RunMany against a loop of Run calls
// on the same configs: same completion counts, same buffer peaks, and
// results indexed by submission order.
func TestRunManyMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	o := Options{Scale: 0.1, Seed: 1, Parallelism: 4}.norm()
	dur := fullIncastMixDuration / 8
	var rcs []RunConfig
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		tp := o.leafSpine()
		specs := incastMixSpecs(tp, workload.WebServer, dur, seed, incastDegree(tp))
		rcs = append(rcs, RunConfig{
			Topo: tp, Scheme: WithFloodgate(o, DCQCN(o), baseBDPOf(tp)),
			Specs: specs, Duration: dur, Seed: seed, Opt: o,
		})
	}
	got := RunMany(rcs)
	if len(got) != len(rcs) {
		t.Fatalf("RunMany returned %d results for %d configs", len(got), len(rcs))
	}
	for i, rc := range rcs {
		want := Run(rc)
		if got[i].Completed != want.Completed || got[i].Total != want.Total {
			t.Fatalf("run %d: completion %d/%d != serial %d/%d",
				i, got[i].Completed, got[i].Total, want.Completed, want.Total)
		}
		if got[i].Stats.MaxSwitchBuffer() != want.Stats.MaxSwitchBuffer() {
			t.Fatalf("run %d: max buffer %v != serial %v",
				i, got[i].Stats.MaxSwitchBuffer(), want.Stats.MaxSwitchBuffer())
		}
	}
}

// TestRunExperimentsOrder checks that overlapped experiments emit in
// submission order with the same tables as direct calls.
func TestRunExperimentsOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	windowOverride = fullIncastMixDuration / 8
	defer func() { windowOverride = 0 }()
	o := Options{Scale: 0.1, Seed: 1, Parallelism: 4}
	ids := []string{"fig7", "fig9", "fig22", "nope"}
	var gotIDs []string
	var rendered []string
	var errs []error
	RunExperiments(ids, o, func(id string, tables []Table, err error) {
		gotIDs = append(gotIDs, id)
		rendered = append(rendered, renderAll(tables))
		errs = append(errs, err)
	})
	if !reflect.DeepEqual(gotIDs, ids) {
		t.Fatalf("emit order %v, want %v", gotIDs, ids)
	}
	if errs[0] != nil || errs[1] != nil || errs[2] != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if errs[3] == nil {
		t.Fatal("unknown experiment id did not error")
	}
	for i, id := range ids[:3] {
		e, _ := Lookup(id)
		if want := renderAll(e.Run(o)); want != rendered[i] {
			t.Fatalf("%s: overlapped output differs from direct call", id)
		}
	}
}

// TestSharedNothing pins the audit in parallel.go: the values that
// concurrent runs share must be observably immutable across a run.
func TestSharedNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	o := Options{Scale: 0.1, Seed: 1}.norm()

	// workload.CDF: package-level distributions must not change when
	// sampled (Sample reads Pts only).
	cdfBefore := make([]CDFSnapshot, len(workload.Workloads))
	for i, c := range workload.Workloads {
		cdfBefore[i] = snapshotCDF(c)
	}

	// topo.Topology: ports and routes must be identical before and
	// after a simulation uses the topology.
	tp := o.leafSpine()
	portsBefore := snapshotPorts(tp)

	dur := fullIncastMixDuration / 8
	specs := incastMixSpecs(tp, workload.WebServer, dur, o.Seed, incastDegree(tp))
	// Scheme factory closures mint private state per run: two runs from
	// the same Scheme value must not interfere (same results as two
	// schemes built independently).
	s := WithFloodgate(o, DCQCN(o), baseBDPOf(tp))
	r1 := Run(RunConfig{Topo: tp, Scheme: s, Specs: specs, Duration: dur, Seed: o.Seed, Opt: o})
	r2 := Run(RunConfig{Topo: tp, Scheme: s, Specs: specs, Duration: dur, Seed: o.Seed, Opt: o})
	if r1.Completed != r2.Completed || r1.Stats.MaxSwitchBuffer() != r2.Stats.MaxSwitchBuffer() {
		t.Fatal("reusing one Scheme value across runs changed results: factory closures leak state")
	}

	for i, c := range workload.Workloads {
		if !reflect.DeepEqual(cdfBefore[i], snapshotCDF(c)) {
			t.Fatalf("workload CDF %s mutated by a run", c.Name)
		}
	}
	if !reflect.DeepEqual(portsBefore, snapshotPorts(tp)) {
		t.Fatal("topology mutated by a run: ports/routes are not read-only after Build()")
	}
}

// CDFSnapshot captures a CDF's observable state.
type CDFSnapshot struct {
	Name string
	Pts  []workload.CDFPoint
}

func snapshotCDF(c *workload.CDF) CDFSnapshot {
	pts := make([]workload.CDFPoint, len(c.Pts))
	copy(pts, c.Pts)
	return CDFSnapshot{Name: c.Name, Pts: pts}
}

func snapshotPorts(tp *topo.Topology) []topo.Port {
	var out []topo.Port
	for _, n := range tp.Nodes {
		out = append(out, n.Ports...)
	}
	return out
}
