package exp

// Observability: optional per-run metrics sampling and timeline export.
//
// When Options.Obs.Dir is set, every Run gets a private metrics
// registry (engine self-metrics + device/Floodgate instruments), a
// sim-clock sampler, and a trace ring, and writes three files per run
// into <dir>/<experiment>/: NDJSON time series, wide CSV, and a Chrome
// trace_event JSON of the flight recorder (loads in Perfetto). A
// manifest.json beside them records what produced the files and a
// content hash of the rendered tables.
//
// Determinism: run files are named by a content hash of the RunConfig
// (never a global counter), sampling is driven by the simulation
// clock, and exports walk instruments in registration order — so all
// data files are byte-identical at any parallelism, and concurrent
// identical writers are made safe by atomic temp-file renames. The
// manifest's parallelism field is the single value allowed to vary
// between -par settings.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"floodgate/internal/device"
	"floodgate/internal/forensics"
	"floodgate/internal/metrics"
	"floodgate/internal/sim"
	"floodgate/internal/trace"
	"floodgate/internal/units"
)

// ObsConfig switches on observability output for experiment runs.
type ObsConfig struct {
	// Dir is the output root; empty disables observability entirely.
	Dir string
	// Period is the sampling period on the simulation clock
	// (non-positive falls back to metrics.DefaultPeriod).
	Period units.Duration
	// Experiment labels the output subdirectory (set by RunByID; adhoc
	// runs land in "adhoc").
	Experiment string
	// Forensics switches on causal flow forensics: per-flow FCT
	// time-budget attribution and incast-episode detection (see
	// internal/forensics). Independent of Dir — with Dir set the report
	// is also written as <label>.forensics.ndjson; without it the
	// report is only attached to RunResult. Unlike Dir, Forensics
	// composes with Shards > 1 (each shard records into a sibling
	// recorder, merged deterministically at the end of the run).
	Forensics bool
}

// Enabled reports whether observability output was requested.
func (c ObsConfig) Enabled() bool { return c.Dir != "" }

func (c ObsConfig) period() units.Duration {
	if c.Period <= 0 {
		return metrics.DefaultPeriod
	}
	return c.Period
}

func (c ObsConfig) experiment() string {
	if c.Experiment == "" {
		return "adhoc"
	}
	return c.Experiment
}

// obsTraceCap bounds the flight-recorder ring attached to observed
// runs (the newest events win; Perfetto handles this size easily).
const obsTraceCap = 1 << 16

// obsRun carries one observed run's registry, sampler and trace ring.
type obsRun struct {
	cfg     ObsConfig
	reg     *metrics.Registry
	sampler *metrics.Sampler
	tbuf    *trace.Buffer
	label   string

	engProcessed metrics.Gauge
	engLive      metrics.Gauge
	engHeapLen   metrics.Gauge
	engHeapHW    metrics.Gauge
	engDead      metrics.Gauge
	engSlab      metrics.Gauge
	engInUse     metrics.Gauge
}

// newObsRun builds the registry (engine instruments first, then the
// network bundle in canonical order), attaches it to the device config
// and returns the run handle. Call start after the network exists.
func newObsRun(rc RunConfig, o Options, eng *sim.Engine, dcfg *device.Config) *obsRun {
	r := metrics.NewRegistry()
	ob := &obsRun{
		cfg:          o.Obs,
		reg:          r,
		label:        obsLabel(rc),
		engProcessed: r.Gauge("engine.events_processed", "events"),
		engLive:      r.Gauge("engine.live_events", "events"),
		engHeapLen:   r.Gauge("engine.heap_len", "entries"),
		engHeapHW:    r.Gauge("engine.heap_high_water", "entries"),
		engDead:      r.Gauge("engine.dead_entries", "entries"),
		engSlab:      r.Gauge("engine.slab_size", "slots"),
		engInUse:     r.Gauge("engine.events_in_use", "slots"),
	}
	dcfg.Metrics = device.NewNetMetrics(r)
	if dcfg.Trace == nil {
		ob.tbuf = trace.NewBuffer(obsTraceCap, trace.Filter{})
		dcfg.Trace = ob.tbuf
	}
	ob.sampler = metrics.NewSampler(eng, r, o.Obs.period())
	ob.sampler.AddProbe(func() {
		st := eng.StatsSnapshot()
		ob.engProcessed.Set(int64(st.Processed))
		ob.engLive.Set(int64(st.Live))
		ob.engHeapLen.Set(int64(st.HeapLen))
		ob.engHeapHW.Set(int64(st.HeapHighWater))
		ob.engDead.Set(int64(st.DeadEntries))
		ob.engSlab.Set(int64(st.SlabSize))
		ob.engInUse.Set(int64(st.InUse))
	})
	return ob
}

// start begins periodic sampling (first tick one period in).
func (ob *obsRun) start() { ob.sampler.Start() }

// export writes the run's NDJSON, CSV and Chrome trace files, plus the
// forensics report when one was built (rep may be nil).
func (ob *obsRun) export(rep *forensics.Report) error {
	dir := filepath.Join(ob.cfg.Dir, ob.cfg.experiment())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, render func(*strings.Builder) error) error {
		var b strings.Builder
		if err := render(&b); err != nil {
			return err
		}
		return metrics.WriteFileAtomic(filepath.Join(dir, name), []byte(b.String()))
	}
	if err := write(ob.label+".metrics.ndjson", func(b *strings.Builder) error {
		return ob.sampler.WriteNDJSON(b)
	}); err != nil {
		return err
	}
	if err := write(ob.label+".metrics.csv", func(b *strings.Builder) error {
		return ob.sampler.WriteCSV(b)
	}); err != nil {
		return err
	}
	if ob.tbuf != nil {
		if err := write(ob.label+".trace.json", func(b *strings.Builder) error {
			return metrics.WriteChromeTrace(b, ob.tbuf.Events())
		}); err != nil {
			return err
		}
	}
	if rep != nil {
		if err := write(ob.label+".forensics.ndjson", func(b *strings.Builder) error {
			return rep.WriteNDJSON(b)
		}); err != nil {
			return err
		}
	}
	return nil
}

// obsLabel derives a deterministic, parallelism-independent file label
// from the run's content: a sanitized scheme name plus a hash over
// everything that shapes the simulation. Identical configs map to the
// same label (and, by determinism, identical bytes); a global counter
// would instead depend on completion order.
func obsLabel(rc RunConfig) string {
	parts := []string{
		rc.Scheme.Name,
		fmt.Sprintf("seed=%d", rc.Seed),
		fmt.Sprintf("dur=%d", int64(rc.Duration)),
		fmt.Sprintf("drain=%d", int64(rc.Drain)),
		fmt.Sprintf("buf=%d", int64(rc.BufferSize)),
		fmt.Sprintf("scale=%g", rc.Opt.Scale),
		fmt.Sprintf("loss=%g/%g", rc.LossRate, rc.CreditLossRate),
		fmt.Sprintf("pfcoff=%t", rc.PFCOff),
		fmt.Sprintf("binw=%d", int64(rc.BinWidth)),
		fmt.Sprintf("nspecs=%d", len(rc.Specs)),
	}
	if rc.Faults != nil {
		for _, ev := range rc.Faults.SortedEvents() {
			parts = append(parts, fmt.Sprintf("fault=%d:%d:%d-%d@%d",
				int(ev.Kind), int64(ev.Link.A), int64(ev.Link.B), int64(ev.Node), int64(ev.At)))
		}
		if g := rc.Faults.Burst; g != nil {
			parts = append(parts, fmt.Sprintf("burst=%g/%g/%g/%g",
				g.PGoodBad, g.PBadGood, g.LossGood, g.LossBad))
			for _, l := range rc.Faults.BurstLinks {
				parts = append(parts, fmt.Sprintf("burstlink=%d-%d", int64(l.A), int64(l.B)))
			}
		}
	}
	for _, s := range rc.Specs {
		parts = append(parts, fmt.Sprintf("%d>%d:%d@%d/%d",
			int64(s.Src), int64(s.Dst), int64(s.Size), int64(s.Start), int(s.Cat)))
	}
	// App-plane and streamed-source runs fold their shaping parameters
	// into the hash; both additions are gated so every pre-existing
	// config keeps its label.
	if a := rc.App; a != nil {
		parts = append(parts, fmt.Sprintf("app=%d/%d/%d/%d/%d:%d,%d-%d,dl=%d,ma=%d,rb=%d",
			a.Requests, int64(a.Interval), a.Clients, a.FanIn, a.Quorum,
			int64(a.ReqSize), int64(a.RespMin), int64(a.RespMax),
			int64(a.Deadline), a.MaxAttempts, a.RetryBudget))
		if a.Policy != nil {
			parts = append(parts, "policy="+a.Policy.Name())
		}
		if a.Breaker.Enabled() {
			parts = append(parts, fmt.Sprintf("brk=%d/%g/%d",
				a.Breaker.Window, a.Breaker.Threshold, int64(a.Breaker.Cooldown)))
		}
	}
	if rc.Source != nil {
		parts = append(parts, "src="+rc.SourceLabel)
	}
	return sanitizeLabel(rc.Scheme.Name) + "-" + metrics.HashStrings(parts...)
}

// sanitizeLabel maps a scheme name to a filesystem-safe slug.
func sanitizeLabel(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	out := strings.Trim(b.String(), "-")
	for strings.Contains(out, "--") {
		out = strings.ReplaceAll(out, "--", "-")
	}
	if out == "" {
		out = "run"
	}
	return out
}

// TablesHash folds rendered tables into the manifest's content hash.
func TablesHash(tables []Table) string {
	parts := make([]string, len(tables))
	for i := range tables {
		parts[i] = tables[i].String()
	}
	return metrics.HashStrings(parts...)
}

// WriteObsManifest writes <dir>/<experiment>/manifest.json describing
// the experiment's observability output and returns its path. The
// file list is the directory's data files in sorted (deterministic)
// order.
func WriteObsManifest(o Options, experiment string, tables []Table) (string, error) {
	o = o.norm()
	dir := filepath.Join(o.Obs.Dir, experiment)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var files []string
	for _, e := range entries { // ReadDir sorts by name
		name := e.Name()
		if e.IsDir() || name == "manifest.json" || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, name)
	}
	titles := make([]string, len(tables))
	for i := range tables {
		titles[i] = tables[i].Title
	}
	m := &metrics.Manifest{
		Format:         metrics.ManifestFormat,
		Experiment:     experiment,
		Scale:          o.Scale,
		Seed:           o.Seed,
		Parallelism:    o.Parallelism,
		SamplePeriodPs: int64(o.Obs.period()),
		TableHash:      TablesHash(tables),
		Tables:         titles,
		Files:          files,
	}
	path := filepath.Join(dir, "manifest.json")
	return path, m.Write(path)
}

// RunByID runs one registered experiment, labelling any observability
// output with the experiment id and writing its manifest.
func RunByID(id string, o Options) ([]Table, error) {
	e, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	o = o.norm()
	o.Obs.Experiment = id
	tables := e.Run(o)
	if o.Obs.Enabled() {
		if _, err := WriteObsManifest(o, id, tables); err != nil {
			return tables, fmt.Errorf("exp: writing obs manifest for %s: %w", id, err)
		}
	}
	return tables, nil
}
