package exp

import (
	"strings"
	"testing"

	"floodgate/internal/fault"
	"floodgate/internal/topo"
	"floodgate/internal/units"
	"floodgate/internal/workload"
)

// faultTestFabric is a tiny 3-ToR/2-spine leaf-spine at full rate:
// small enough that lossy runs settle in milliseconds of sim time,
// multi-path enough that a downed uplink leaves an alternate route.
func faultTestFabric() *topo.Topology {
	c := topo.DefaultLeafSpine()
	c.ToRs = 3
	c.HostsPerToR = 4
	c.Spines = 2
	return c.Build()
}

// faultTestSpecs is the pure incast scaled 10x, so the run (bottleneck
// drain ~220us) comfortably outlasts every fault schedule below.
func faultTestSpecs(tp *topo.Topology, seed uint64) []workload.FlowSpec {
	specs := pureIncastSpecs(tp, seed)
	for i := range specs {
		specs[i].Size *= 10
	}
	return specs
}

// faultTestRun builds the standard recovery scenario: pure incast into
// the last host with the given fault knobs, DCQCN+Floodgate.
func faultTestRun(t *testing.T, mut func(*RunConfig)) *RunResult {
	t.Helper()
	o := Options{Scale: 1, Seed: 7}.norm()
	tp := faultTestFabric()
	rc := RunConfig{
		Topo:     tp,
		Scheme:   WithFloodgate(o, DCQCN(o), baseBDPOf(tp)),
		Specs:    faultTestSpecs(tp, o.Seed),
		Duration: 100 * units.Microsecond,
		Drain:    400 * units.Millisecond,
		Seed:     o.Seed,
		Opt:      o,
	}
	mut(&rc)
	return Run(rc)
}

// settle drains residual in-flight traffic (retransmissions, credits,
// SYN probes) after the run stopped, bounded so a busted timer loop
// fails the test instead of hanging it.
func settle(res *RunResult) {
	res.Net.Eng.Run(res.Net.Eng.Now().Add(200 * units.Millisecond))
}

// assertZeroResidue checks every Floodgate window healed: no un-credited
// bytes and no parked VOQ packets anywhere in the fabric.
func assertZeroResidue(t *testing.T, res *RunResult) {
	t.Helper()
	ss := res.Net.StallSnapshot()
	if ss.WindowDeficit != 0 || ss.ParkedBytes != 0 || ss.ExhaustedWindows != 0 {
		t.Fatalf("window residue after settle: deficit=%v parked=%v exhausted=%d",
			ss.WindowDeficit, ss.ParkedBytes, ss.ExhaustedWindows)
	}
}

// TestFloodgateRecoversUnderCombinedLoss runs the incast with 20%
// uniform loss on BOTH the data and the credit plane: go-back-N plus
// PSN/switchSYN recovery must still complete every flow, and after the
// wires drain every switch window must settle to zero residue.
func TestFloodgateRecoversUnderCombinedLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	res := faultTestRun(t, func(rc *RunConfig) {
		rc.LossRate = 0.2
		rc.CreditLossRate = 0.2
	})
	if res.Completed != res.Total {
		t.Fatalf("completed %d/%d under 20%% combined loss", res.Completed, res.Total)
	}
	if res.Stalled {
		t.Fatalf("run flagged stalled: %v", res.Diagnosis)
	}
	settle(res)
	assertZeroResidue(t, res)
}

// TestFloodgateRecoversAcrossLinkFlaps flaps the destination ToR's
// uplink repeatedly mid-incast. ECMP re-hashes affected pairs onto the
// surviving spine while the link is down; frames (including credits)
// caught on the dying link are recovered by PSN accounting. The run
// must complete without a stall and settle with zero window residue.
func TestFloodgateRecoversAcrossLinkFlaps(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	var tp *topo.Topology
	res := faultTestRun(t, func(rc *RunConfig) {
		tp = rc.Topo
		rc.Faults = &fault.Plan{Events: fault.Flap(dstUplink(tp),
			units.Time(20*units.Microsecond), 30*units.Microsecond, 60*units.Microsecond, 3)}
	})
	if res.Completed != res.Total {
		t.Fatalf("completed %d/%d across link flaps", res.Completed, res.Total)
	}
	if res.Stalled {
		t.Fatalf("run flagged stalled: %v", res.Diagnosis)
	}
	if fs := res.Net.FaultStats(); fs.LinkEvents != 6 {
		t.Fatalf("expected 6 link events (3 flaps), got %d", fs.LinkEvents)
	}
	settle(res)
	assertZeroResidue(t, res)
}

// TestFloodgateResyncsAfterSwitchRestart restarts a spine mid-incast.
// The spine loses every window, VOQ and PSN channel; downstream ToRs
// must detect the epoch change and rebase (counted as resyncs), and
// upstream ToR windows stranded by the wiped credit state must be
// rescued by the switchSYN escape hatch. All flows complete.
func TestFloodgateResyncsAfterSwitchRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	res := faultTestRun(t, func(rc *RunConfig) {
		spine := dstUplink(rc.Topo).B
		rc.Faults = &fault.Plan{Events: []fault.Event{
			{At: units.Time(50 * units.Microsecond), Kind: fault.SwitchRestart, Node: spine},
		}}
	})
	if res.Completed != res.Total {
		t.Fatalf("completed %d/%d after switch restart", res.Completed, res.Total)
	}
	if res.Stalled {
		t.Fatalf("run flagged stalled: %v", res.Diagnosis)
	}
	fs := res.Net.FaultStats()
	if fs.Restarts != 1 {
		t.Fatalf("expected 1 restart, got %d", fs.Restarts)
	}
	if fs.Resyncs == 0 {
		t.Fatal("no epoch resyncs recorded: restart detection did not engage")
	}
	settle(res)
	assertZeroResidue(t, res)
}

// TestWatchdogDiagnosesWedgedRun severs the incast destination's host
// link permanently: nothing can ever be delivered, so the progress
// watchdog must terminate the run early with a structured diagnosis
// instead of burning the full time bound.
func TestWatchdogDiagnosesWedgedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	res := faultTestRun(t, func(rc *RunConfig) {
		dst := rc.Topo.Hosts[len(rc.Topo.Hosts)-1]
		tor := rc.Topo.Node(dst).Ports[0].Peer
		rc.Faults = &fault.Plan{Events: []fault.Event{
			{At: 0, Kind: fault.LinkDown, Link: fault.Link{A: dst, B: tor}},
		}}
		rc.StallHorizon = 500 * units.Microsecond
	})
	if !res.Stalled || res.Diagnosis == nil {
		t.Fatal("wedged run did not trip the watchdog")
	}
	d := res.Diagnosis
	// The trip must come between one and two horizons after delivery
	// last advanced (here: never), far before Duration+Drain.
	if d.At > units.Time(2*units.Millisecond) {
		t.Fatalf("watchdog tripped too late: %v", d.At)
	}
	if d.LinksDown != 1 {
		t.Fatalf("diagnosis reports %d links down, want 1", d.LinksDown)
	}
	if d.IncompleteFlows != res.Total || res.Completed != 0 {
		t.Fatalf("diagnosis flows=%d completed=%d, want all %d incomplete",
			d.IncompleteFlows, res.Completed, res.Total)
	}
	if d.DeliveredBytes != 0 {
		t.Fatalf("severed destination still delivered %v", d.DeliveredBytes)
	}
	if s := d.String(); !strings.Contains(s, "stalled at") || !strings.Contains(s, "links down: 1") {
		t.Fatalf("diagnosis string not descriptive: %q", s)
	}
}

// TestRunConfigValidation covers the reject-early satellite: broken
// configs produce descriptive errors instead of misrunning.
func TestRunConfigValidation(t *testing.T) {
	tp := faultTestFabric()
	ok := RunConfig{Topo: tp, Duration: units.Millisecond}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*RunConfig)
		want string
	}{
		{"nil topo", func(rc *RunConfig) { rc.Topo = nil }, "Topo"},
		{"zero duration", func(rc *RunConfig) { rc.Duration = 0 }, "Duration"},
		{"negative duration", func(rc *RunConfig) { rc.Duration = -units.Millisecond }, "Duration"},
		{"negative drain", func(rc *RunConfig) { rc.Drain = -1 }, "Drain"},
		{"negative loss", func(rc *RunConfig) { rc.LossRate = -0.1 }, "LossRate"},
		{"loss above one", func(rc *RunConfig) { rc.LossRate = 1.5 }, "LossRate"},
		{"credit loss above one", func(rc *RunConfig) { rc.CreditLossRate = 2 }, "CreditLossRate"},
		{"negative horizon", func(rc *RunConfig) { rc.StallHorizon = -1 }, "StallHorizon"},
		{"bad fault plan", func(rc *RunConfig) {
			rc.Faults = &fault.Plan{Events: []fault.Event{{Kind: fault.LinkDown}}}
		}, "degenerate"},
	}
	for _, c := range cases {
		rc := ok
		c.mut(&rc)
		err := rc.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted a broken config", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestRunPanicsWithRunError checks Run wraps failures into *RunError
// carrying the config content hash (what the executor recovers).
func TestRunPanicsWithRunError(t *testing.T) {
	rc := RunConfig{Duration: units.Millisecond} // nil topo
	defer func() {
		re, ok := recover().(*RunError)
		if !ok {
			t.Fatal("Run did not panic with *RunError")
		}
		if re.ConfigHash != obsLabel(rc) {
			t.Fatalf("RunError hash %q != config hash %q", re.ConfigHash, obsLabel(rc))
		}
		if !strings.Contains(re.Error(), "Topo") {
			t.Fatalf("RunError message not descriptive: %q", re.Error())
		}
	}()
	Run(rc)
}

// TestRunJobsIsolatesPanicsDeterministically checks the worker-pool
// panic contract: panicking jobs never crash worker goroutines, and the
// panic that re-raises on the caller is the lowest submission index —
// exactly what the serial path would raise first — at any parallelism.
func TestRunJobsIsolatesPanicsDeterministically(t *testing.T) {
	for _, par := range []int{1, 4} {
		o := Options{Parallelism: par}.norm()
		got := func() (v any) {
			defer func() { v = recover() }()
			runJobs(o, 4, func(i int) int {
				if i >= 2 {
					panic(i)
				}
				return i
			})
			return nil
		}()
		if got != 2 {
			t.Fatalf("parallelism %d: recovered %v, want panic from job 2", par, got)
		}
	}
}

// TestFaultedRunsBitIdentical reruns one storm scenario (flaps + spine
// restart + burst loss) serially and through the worker pool: the fault
// plane draws only from per-link PRNGs seeded by the run seed, so every
// replica must agree byte-for-byte on delivery, drops and fault counts.
func TestFaultedRunsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	o := Options{Scale: 1, Seed: 7}.norm()
	mk := func() RunConfig {
		tp := faultTestFabric()
		l := dstUplink(tp)
		evs := fault.Flap(l, units.Time(20*units.Microsecond), 20*units.Microsecond, 80*units.Microsecond, 2)
		evs = append(evs, fault.Event{At: units.Time(150 * units.Microsecond), Kind: fault.SwitchRestart, Node: l.B})
		return RunConfig{
			Topo:     tp,
			Scheme:   WithFloodgate(o, DCQCN(o), baseBDPOf(tp)),
			Specs:    faultTestSpecs(tp, o.Seed),
			Duration: 200 * units.Microsecond,
			Drain:    400 * units.Millisecond,
			Seed:     o.Seed,
			Opt:      o,
			Faults:   &fault.Plan{Events: evs, Burst: fault.BurstWithMeanLoss(0.05)},
		}
	}
	serial := mk()
	serial.Opt.Parallelism = 1
	want := Run(serial)
	rcs := make([]RunConfig, 4)
	for i := range rcs {
		rcs[i] = mk()
		rcs[i].Opt.Parallelism = 4
	}
	for i, got := range RunMany(rcs) {
		if got.Completed != want.Completed || got.Total != want.Total {
			t.Fatalf("replica %d: completion %d/%d != serial %d/%d",
				i, got.Completed, got.Total, want.Completed, want.Total)
		}
		if got.Net.DeliveredBytes() != want.Net.DeliveredBytes() {
			t.Fatalf("replica %d: delivered %v != serial %v",
				i, got.Net.DeliveredBytes(), want.Net.DeliveredBytes())
		}
		if got.Stats.Drops != want.Stats.Drops {
			t.Fatalf("replica %d: drops %d != serial %d", i, got.Stats.Drops, want.Stats.Drops)
		}
		if got.Net.FaultStats() != want.Net.FaultStats() {
			t.Fatalf("replica %d: fault stats %+v != serial %+v",
				i, got.Net.FaultStats(), want.Net.FaultStats())
		}
	}
}
