package exp

import (
	"fmt"
	"path/filepath"

	"floodgate/internal/packet"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/units"
	"floodgate/internal/workload"
)

// RunFlowFile replays an NDJSON flow file (see workload.SpecReader for
// the format) against DCQCN and DCQCN+Floodgate on the standard
// leaf-spine fabric and reports per-scheme FCT and goodput. The file
// is streamed straight into flow registration — it is never held in
// memory, so replay capacity is bounded by the simulator, not the
// spec list. The workload window is the last spec's start plus one
// incast-mix window; the default drain covers laggards.
func RunFlowFile(path string, o Options) ([]Table, error) {
	o = o.norm()
	// One cheap pass for the workload window (max start); the replay
	// passes stream again from disk.
	sr, err := workload.OpenSpecFile(path)
	if err != nil {
		return nil, err
	}
	tp := o.leafSpine()
	var lastStart units.Time
	n := 0
	for {
		s, ok, err := sr.Next()
		if err != nil {
			sr.Close()
			return nil, err
		}
		if !ok {
			break
		}
		n++
		// Endpoints must name hosts of the replay fabric; a hand-written
		// file with a switch or out-of-range ID fails here, not as a
		// panic mid-run.
		for _, ep := range [2]packet.NodeID{s.Src, s.Dst} {
			if int(ep) >= len(tp.Nodes) || tp.Node(ep).Kind != topo.HostNode {
				sr.Close()
				return nil, fmt.Errorf("exp: flow file %s: spec %d endpoint %d is not a host of the scale-%g fabric (hosts are %d..%d)",
					path, n, ep, o.Scale, tp.Hosts[0], tp.Hosts[len(tp.Hosts)-1])
			}
		}
		lastStart = s.Start
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("exp: flow file %s has no specs", path)
	}
	dur := lastStart.Add(o.duration(fullIncastMixDuration))
	label := filepath.Base(path)
	t := Table{
		Title:  fmt.Sprintf("Flow-file replay: %s (%d flows)", label, n),
		Header: []string{"scheme", "completed", "goodput", "avgFCT", "p99FCT"},
	}
	schemes := []Scheme{DCQCN(o), WithFloodgate(o, DCQCN(o), baseBDPOf(tp))}
	t.Rows = runJobs(o, len(schemes), func(i int) []string {
		src, err := workload.OpenSpecFile(path)
		if err != nil {
			panic(fmt.Sprintf("exp: reopening flow file: %v", err))
		}
		defer src.Close()
		res := Run(RunConfig{
			Topo: tp, Scheme: schemes[i],
			Source: src, SourceLabel: label,
			Duration: units.Duration(dur),
			Seed:     o.Seed, Opt: o,
		})
		avg, p99 := stats.FCTStats(res.Stats.AllFCTs())
		return []string{schemes[i].Name,
			fmt.Sprintf("%d/%d", res.Completed, res.Total),
			fmtRate(units.Rate(res.DeliveredBytes(), units.Duration(dur))),
			fmtDur(avg), fmtDur(p99)}
	})
	t.Comment = "adhoc replay of an external flow schedule (floodsim -flows-from)"
	return []Table{t}, nil
}
