package exp

import (
	"fmt"
	"runtime/debug"

	"floodgate/internal/device"
	"floodgate/internal/topo"
	"floodgate/internal/units"
)

// This file is the sharded conservative-window executor (DESIGN.md
// §10). The cluster's shards advance in lockstep barrier windows whose
// span is bounded by the topology lookahead L — the minimum time a
// frame needs to cross any shard-cutting link (propagation plus
// minimum serialization). Within a window every shard executes
// independently; frames bound for another shard are staged in per-link
// mailboxes and handed over at the barrier, where they land strictly
// in the receiver's future. Windows are aligned to multiples of L and
// jump straight to the window containing the earliest queued event, so
// idle stretches (drain, RTO waits) cost one barrier per event
// cluster, not one per L.
//
// Everything decided at a barrier — early stop when the workload
// completes, the progress watchdog, the window schedule itself — reads
// only partition-invariant aggregates (the union of the shards' event
// queues, total delivered bytes, total completions). That is what
// makes the executor bit-identical across shard counts: a single-shard
// run executes the same events in the same order between the same
// barriers, and stops at the same quantized time.

// windowResult reports how the window loop ended.
type windowResult struct {
	stalled   bool
	diagnosis *StallDiagnosis
}

// appProbe reports the application plane's stall-relevant state at a
// barrier (pending requests, armed retry/hedge timers, open circuit
// breakers); nil when no app plane is installed.
type appProbe func(now units.Time) (pending, retries, breakers int)

// runWindows drives the cluster to tEnd in conservative windows.
// done/total gate the quantized early stop; a positive horizon arms
// the barrier-level stall watchdog, whose diagnosis folds in the app
// plane's state when appState is non-nil.
func runWindows(c *device.Cluster, tEnd units.Time, horizon units.Duration, done func() int, total int, appState appProbe) windowResult {
	L := topo.Lookahead(c.Topo)
	var pool *shardPool
	if c.K() > 1 {
		pool = startShardPool(c)
		defer pool.stop()
	}
	var res windowResult
	u := units.Time(0)
	lastProgress := units.Time(0)
	lastDelivered := units.ByteSize(0)
	for {
		// Pick the window end: the smallest multiple of L at or after
		// the earliest queued event (partition-invariant once mailboxes
		// are empty), clamped to tEnd. Every event in the window then
		// sits within L of its end, so staged cross-shard frames always
		// arrive after the barrier.
		next := tEnd
		if minAt, ok := c.NextAt(); ok && minAt <= tEnd {
			if w := ceilMul(minAt, L); w < next {
				next = w
			}
		}
		if pool != nil {
			pool.runTo(next)
		} else {
			c.Nets[0].Eng.Run(next)
		}
		c.ExchangeFrames()
		if next == u && u > 0 {
			panic("exp: shard window did not advance")
		}
		u = next
		if done() == total {
			break
		}
		if horizon > 0 {
			if d := c.DeliveredBytes(); d != lastDelivered {
				lastDelivered, lastProgress = d, u
			} else if u.Sub(lastProgress) >= horizon {
				ss := c.StallSnapshot()
				res.stalled = true
				res.diagnosis = &StallDiagnosis{
					At:                u,
					Horizon:           horizon,
					DeliveredBytes:    ss.DeliveredBytes,
					IncompleteFlows:   total - done(),
					ExhaustedWindows:  ss.ExhaustedWindows,
					WindowDeficit:     ss.WindowDeficit,
					ParkedBytes:       ss.ParkedBytes,
					PausedSwitchPorts: ss.PausedSwitchPorts,
					PausedHosts:       ss.PausedHosts,
					LinksDown:         ss.LinksDown,
				}
				if appState != nil {
					res.diagnosis.HasApp = true
					res.diagnosis.PendingRequests, res.diagnosis.RetryTimers,
						res.diagnosis.OpenBreakers = appState(u)
				}
				c.Nets[0].Metrics.WatchdogTrips.Inc()
				break
			}
		}
		if u >= tEnd {
			break
		}
	}
	return res
}

// ceilMul rounds t up to the next multiple of the window span.
func ceilMul(t units.Time, l units.Duration) units.Time {
	step := units.Time(l)
	if step <= 0 {
		return t
	}
	return (t + step - 1) / step * step
}

// shardPool runs shards 1..k-1 on persistent worker goroutines; shard
// 0 executes on the coordinating goroutine. The cmd send and ack
// receive around each window are the happens-before edges that make
// barrier-time reads of shard state (engine queues, collectors, done
// counters, mailboxes) race-free.
type shardPool struct {
	nets []*device.Network
	cmds []chan units.Time
	acks chan shardAck
}

type shardAck struct {
	idx int
	pan any
}

func startShardPool(c *device.Cluster) *shardPool {
	k := c.K()
	p := &shardPool{nets: c.Nets, cmds: make([]chan units.Time, k), acks: make(chan shardAck, k)}
	for i := 1; i < k; i++ {
		ch := make(chan units.Time)
		p.cmds[i] = ch
		go p.worker(i, ch)
	}
	return p
}

func (p *shardPool) worker(i int, ch chan units.Time) {
	for until := range ch {
		func() {
			defer func() {
				if v := recover(); v != nil {
					// Fold the shard's stack into the value: the
					// coordinator re-panics from its own frame and would
					// otherwise lose the origin.
					p.acks <- shardAck{i, fmt.Errorf("shard %d: %v\n%s", i, v, debug.Stack())}
					return
				}
				p.acks <- shardAck{idx: i}
			}()
			p.nets[i].Eng.Run(until)
		}()
	}
}

// runTo advances every shard to the window end and waits for all of
// them. Panics (including shard 0's own) are re-raised only after
// every shard has acked, lowest shard index first — the same panic a
// serial execution would surface.
func (p *shardPool) runTo(until units.Time) {
	k := len(p.cmds)
	for i := 1; i < k; i++ {
		p.cmds[i] <- until
	}
	panics := make([]any, k)
	func() {
		defer func() { panics[0] = recover() }()
		p.nets[0].Eng.Run(until)
	}()
	for i := 1; i < k; i++ {
		a := <-p.acks
		panics[a.idx] = a.pan
	}
	for _, v := range panics {
		if v != nil {
			panic(v)
		}
	}
}

// stop retires the workers (idempotent per pool lifetime; the deferred
// call in runWindows is the only caller).
func (p *shardPool) stop() {
	for i := 1; i < len(p.cmds); i++ {
		close(p.cmds[i])
	}
}
