package exp

import (
	"fmt"

	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/units"
	"floodgate/internal/workload"
)

// fullIncastMixDuration is the paper-scale workload window for the
// §6.1 incast-mix experiments.
const fullIncastMixDuration = 4 * units.Millisecond

// incastDegree is the per-event incast fan-in: every cross-rack host
// participates (the Fig 14/15 convention; §6.1 does not fix a degree,
// and only an all-hosts fan-in reproduces the paper's multi-MB
// last-hop buffers).
func incastDegree(tp *topo.Topology) int {
	return len(workload.CrossRackSenders(tp, tp.Hosts[len(tp.Hosts)-1]))
}

// runIncastMix executes one scheme under the §6.1 incast-mix workload.
func runIncastMix(o Options, cdf *workload.CDF, s Scheme) *RunResult {
	o = o.norm()
	tp := o.leafSpine()
	dur := o.duration(fullIncastMixDuration)
	specs := incastMixSpecs(tp, cdf, dur, o.Seed, incastDegree(tp))
	return Run(RunConfig{
		Topo: tp, Scheme: s, Specs: specs,
		Duration: dur, Seed: o.Seed, Opt: o,
	})
}

// stressBuffer sizes the shared buffer to one incast event's volume.
// At paper scale the 20 MB buffer saturates because overlapping events
// and 160 hosts' first-BDP bursts compound; that amplification does
// not exist in scaled-down runs, so the PFC-storm-regime experiments
// (Fig 2, Fig 9, Table 2) instead pin the buffer to the event size,
// reproducing the paper's buffer-pressure ratio directly.
func stressBuffer(tp *topo.Topology) units.ByteSize {
	return units.ByteSize(incastDegree(tp)) * 35 * mtu
}

// runIncastMixStress is runIncastMix in the PFC-storm regime.
func runIncastMixStress(o Options, cdf *workload.CDF, s Scheme) *RunResult {
	o = o.norm()
	tp := o.leafSpine()
	dur := o.duration(fullIncastMixDuration)
	specs := incastMixSpecs(tp, cdf, dur, o.Seed, incastDegree(tp))
	return Run(RunConfig{
		Topo: tp, Scheme: s, Specs: specs,
		Duration: dur, Seed: o.Seed, Opt: o,
		BufferSize: stressBuffer(tp),
	})
}

// baseBDPOf computes the fabric's base BDP for Floodgate thresholds
// (≈64 KB on the 2-tier fabric at any scale, by construction of the
// slow-motion model).
func baseBDPOf(tp *topo.Topology) units.ByteSize {
	h := tp.Node(tp.Hosts[0])
	rate := h.Ports[0].Rate
	rtt := 2 * 4 * (h.Ports[0].Prop + units.TxTime(mtu, rate))
	return units.BDP(rate, rtt)
}

// schemeTriple returns {base, base+ideal, base+Floodgate} for a CC.
func schemeTriple(o Options, base func(Options) Scheme, tp *topo.Topology) []Scheme {
	bdp := baseBDPOf(tp)
	return []Scheme{
		base(o),
		WithIdeal(o, base(o), bdp),
		WithFloodgate(o, base(o), bdp),
	}
}

// Fig8 reproduces the average and 99th-tail FCT of Poisson flows under
// incast-mix, for each congestion control × {plain, +ideal,
// +Floodgate} × workload. ccName filters to one CC ("DCQCN", "TIMELY",
// "HPCC") or "" for all.
func Fig8(o Options, ccName string) []Table {
	o = o.norm()
	bases := map[string]func(Options) Scheme{"DCQCN": DCQCN, "TIMELY": TIMELY, "HPCC": HPCC}
	var order []string
	for _, cc := range []string{"DCQCN", "TIMELY", "HPCC"} {
		if ccName == "" || cc == ccName {
			order = append(order, cc)
		}
	}
	// Flatten every (cc × workload × scheme) run into one pool
	// submission; per-CC tables slice the rows back out in order.
	nW, nS := len(workload.Workloads), 3
	perCC := nW * nS
	rows := runJobs(o, len(order)*perCC, func(idx int) []string {
		cc := order[idx/perCC]
		cdf := workload.Workloads[(idx%perCC)/nS]
		s := schemeTriple(o, bases[cc], o.leafSpine())[idx%nS]
		res := runIncastMixStress(o, cdf, s)
		avg, p99 := stats.FCTStats(res.Stats.PoissonFCTs())
		return []string{cdf.Name, s.Name, fmtDur(avg), fmtDur(p99),
			fmt.Sprintf("%d/%d", res.Completed, res.Total)}
	})
	var tables []Table
	for ci, cc := range order {
		t := Table{
			Title:  fmt.Sprintf("Fig 8 (%s): avg/p99 FCT of Poisson flows, incastmix", cc),
			Header: []string{"workload", "scheme", "avgFCT", "p99FCT", "flows"},
			Rows:   rows[ci*perCC : (ci+1)*perCC],
		}
		t.Comment = "paper: Floodgate cuts avg FCT 10.1%-98.1%, p99 1.1x-207x (largest on Memcached/WebServer)"
		tables = append(tables, t)
	}
	return tables
}

// Fig9 reproduces the per-category FCT CDFs (incast, victim of incast,
// victim of PFC) under the Web Server incast-mix.
func Fig9(o Options) []Table {
	o = o.norm()
	return runJobs(o, 3, func(idx int) Table {
		s := schemeTriple(o, DCQCN, o.leafSpine())[idx]
		res := runIncastMixStress(o, workload.WebServer, s)
		t := Table{
			Title:  "Fig 9: FCT CDF by category, Web Server incastmix — " + s.Name,
			Header: []string{"category", "p50", "p90", "p99", "n"},
		}
		for _, cat := range []stats.Category{stats.CatIncast, stats.CatVictimIncast, stats.CatVictimPFC} {
			xs, ys := stats.CDF(res.Stats.FCTs(cat), 100)
			t.AddRow(cat.String(), pickQ(xs, ys, 0.5), pickQ(xs, ys, 0.9), pickQ(xs, ys, 0.99),
				fmt.Sprintf("%d", len(res.Stats.FCTs(cat))))
		}
		t.Comment = "paper: Floodgate removes the HOL-blocking tail for both victim classes without hurting incast flows"
		return t
	})
}

func pickQ(xs []units.Duration, ys []float64, q float64) string {
	for i, y := range ys {
		if y >= q {
			return fmtDur(xs[i])
		}
	}
	if len(xs) == 0 {
		return "n/a"
	}
	return fmtDur(xs[len(xs)-1])
}

// Fig10 reproduces maximum switch buffer occupancy across workloads.
func Fig10(o Options) []Table {
	o = o.norm()
	t := Table{
		Title:  "Fig 10: maximum switch buffer occupancy, incastmix",
		Header: []string{"workload", "scheme", "maxSwitchBuf", "vs plain"},
	}
	// The "vs plain" column needs each workload's first (plain) result,
	// so jobs return raw buffers and the ratio is computed at assembly.
	type fig10Res struct {
		cdf, scheme string
		buf         units.ByteSize
	}
	results := runJobs(o, len(workload.Workloads)*3, func(idx int) fig10Res {
		cdf := workload.Workloads[idx/3]
		s := schemeTriple(o, DCQCN, o.leafSpine())[idx%3]
		res := runIncastMix(o, cdf, s)
		return fig10Res{cdf.Name, s.Name, res.Stats.MaxSwitchBuffer()}
	})
	for ci := range workload.Workloads {
		var plain float64
		for si := 0; si < 3; si++ {
			r := results[ci*3+si]
			if plain == 0 {
				plain = float64(r.buf)
			}
			t.AddRow(r.cdf, r.scheme, fmtBytes(r.buf), fmtRatio(plain, float64(r.buf)))
		}
	}
	t.Comment = "paper: Floodgate reduces max buffer 2.4x-3.7x; ideal reduces it further"
	return []Table{t}
}

// Table2 reproduces the PFC triggered time per fabric layer for plain
// DCQCN (Floodgate rows are included to show zero).
func Table2(o Options) []Table {
	o = o.norm()
	t := Table{
		Title:  "Table 2: PFC triggered time (DCQCN), incastmix",
		Header: []string{"workload", "scheme", "Host", "ToR", "Core"},
	}
	t.Rows = runJobs(o, len(workload.Workloads)*2, func(idx int) []string {
		cdf := workload.Workloads[idx/2]
		s := DCQCN(o)
		if idx%2 == 1 {
			s = WithFloodgate(o, DCQCN(o), baseBDPOf(o.leafSpine()))
		}
		res := runIncastMixStress(o, cdf, s)
		return []string{cdf.Name, s.Name,
			fmtDur(res.Stats.PFCPauseTime(topo.LayerHost)),
			fmtDur(res.Stats.PFCPauseTime(topo.LayerToR)),
			fmtDur(res.Stats.PFCPauseTime(topo.LayerCore))}
	})
	t.Comment = "paper: DCQCN pauses cores on every workload (frame storm on Web Server); Floodgate triggers no PFC"
	return []Table{t}
}

// Fig11 reproduces the per-hop buffer reallocation (a) and queuing
// time split (b) for Web Server and Hadoop.
func Fig11(o Options) []Table {
	o = o.norm()
	cdfs := []*workload.CDF{workload.WebServer, workload.Hadoop}
	type fig11Rows struct{ a, b []string }
	rows := runJobs(o, len(cdfs)*3, func(idx int) fig11Rows {
		cdf := cdfs[idx/3]
		s := schemeTriple(o, DCQCN, o.leafSpine())[idx%3]
		res := runIncastMixStress(o, cdf, s)
		return fig11Rows{
			a: []string{s.Name,
				fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRUp)),
				fmtBytes(res.Stats.MaxClassBuffer(topo.ClassCore)),
				fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRDown))},
			b: []string{s.Name,
				fmtDur(res.Stats.AvgQueueDelay(topo.ClassToRUp)),
				fmtDur(res.Stats.AvgQueueDelay(topo.ClassCore)),
				fmtDur(res.Stats.AvgQueueDelay(topo.ClassToRDown))},
		}
	})
	var tables []Table
	for ci, cdf := range cdfs {
		a := Table{
			Title:  "Fig 11a: max per-port buffer by hop — " + cdf.Name,
			Header: []string{"scheme", "ToR-Up", "Core", "ToR-Down"},
		}
		b := Table{
			Title:  "Fig 11b: avg queuing time of non-incast flows by hop — " + cdf.Name,
			Header: []string{"scheme", "ToR-Up", "Core", "ToR-Down"},
		}
		for si := 0; si < 3; si++ {
			a.AddRow(rows[ci*3+si].a...)
			b.AddRow(rows[ci*3+si].b...)
		}
		a.Comment = "paper: Floodgate shifts buffer from Core/ToR-Down to ToR-Up (source-side taming)"
		b.Comment = "paper: queuing time at every hop shrinks; parked incast bytes do not delay non-incast flows"
		tables = append(tables, a, b)
	}
	return tables
}

// Fig21 reproduces the appendix A.1 result: incast flows' own FCT is
// not hurt by Floodgate.
func Fig21(o Options) []Table {
	o = o.norm()
	t := Table{
		Title:  "Fig 21: FCT of incast flows under incastmix",
		Header: []string{"workload", "scheme", "avgFCT", "p99FCT"},
	}
	t.Rows = runJobs(o, len(workload.Workloads)*3, func(idx int) []string {
		cdf := workload.Workloads[idx/3]
		s := schemeTriple(o, DCQCN, o.leafSpine())[idx%3]
		res := runIncastMixStress(o, cdf, s)
		avg, p99 := stats.FCTStats(res.Stats.FCTs(stats.CatIncast))
		return []string{cdf.Name, s.Name, fmtDur(avg), fmtDur(p99)}
	})
	t.Comment = "paper: Floodgate leaves incast FCT intact (slight gain); ideal trades a bit of incast FCT for victims"
	return []Table{t}
}

// Fig22 reproduces appendix A.2: pure Poisson traffic (no incast) —
// Floodgate must not hurt.
func Fig22(o Options) []Table {
	o = o.norm()
	t := Table{
		Title:  "Fig 22: avg/p99 FCT under pure Poisson (no incast)",
		Header: []string{"workload", "scheme", "avgFCT", "p99FCT", "VOQs"},
	}
	t.Rows = runJobs(o, len(workload.Workloads)*3, func(idx int) []string {
		cdf := workload.Workloads[idx/3]
		tp := o.leafSpine()
		dur := o.duration(fullIncastMixDuration)
		hostRate := tp.Node(tp.Hosts[0]).Ports[0].Rate
		s := schemeTriple(o, DCQCN, tp)[idx%3]
		specs := workload.Poisson(workload.PoissonConfig{
			CDF: cdf, Load: 0.8, Hosts: tp.Hosts, HostRate: hostRate, Until: dur,
		}, newRand(o.Seed))
		res := Run(RunConfig{Topo: o.leafSpine(), Scheme: s, Specs: specs, Duration: dur, Seed: o.Seed, Opt: Options{Obs: o.Obs}})
		avg, p99 := stats.FCTStats(res.Stats.AllFCTs())
		return []string{cdf.Name, s.Name, fmtDur(avg), fmtDur(p99),
			fmt.Sprintf("%d", res.Stats.MaxVOQInUse)}
	})
	t.Comment = "paper: no false incast identification; Floodgate FCT == DCQCN, ideal slightly worse (credit overhead)"
	return []Table{t}
}
