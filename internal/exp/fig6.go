package exp

import (
	"floodgate/internal/cc"
	"floodgate/internal/sim"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/units"
	"floodgate/internal/workload"
)

// Fig6 reproduces the §5.2 testbed experiment in simulation: one core
// switch, three ToRs, two hosts each at 10/20 Gbps (base BDP 45 KB).
// Four cross-rack sources send BDP-sized incast flows to one
// destination while Poisson flows (Web Server) run among the other
// hosts; hosts use the plain per-flow window (the testbed emulated
// only DCQCN's first-RTT behaviour). Reported: non-incast FCT and
// per-hop max buffer, with and without Floodgate.
func Fig6(o Options) []Table {
	o = o.norm()
	fct := Table{
		Title:  "Fig 6a: testbed FCT of non-incast flows",
		Header: []string{"scheme", "avgFCT", "p99FCT", "victimAvg", "victimP99"},
	}
	buf := Table{
		Title:  "Fig 6b: testbed max per-port buffer",
		Header: []string{"scheme", "ToR-Up", "Core", "ToR-Down"},
	}
	type fig6Rows struct{ fct, buf []string }
	rows := runJobs(o, 2, func(idx int) fig6Rows {
		withFG := idx == 1
		tp := topo.DefaultTestbed().Build()
		bdp := units.BDP(10*units.Gbps, 8*4500*units.Nanosecond) // 45KB
		s := Scheme{Name: "w/o Floodgate", CC: cc.NewFixedWindow()}
		if withFG {
			s = WithFloodgateCfg(Scheme{Name: "w/", CC: cc.NewFixedWindow()},
				FloodgateConfig(o, bdp), " Floodgate")
		}
		dur := 20 * units.Millisecond
		r := sim.NewRand(o.Seed)
		dst := tp.Hosts[len(tp.Hosts)-1]
		// Periodic cross-rack BDP-sized incast from the four hosts in the
		// other two racks.
		incast := workload.Incast(workload.IncastConfig{
			Dst: dst, Senders: workload.CrossRackSenders(tp, dst),
			Degree: 4, MinSize: bdp, MaxSize: bdp + 1,
			Load: 0.5, DstRate: 10 * units.Gbps, Until: dur,
		}, r.Fork())
		poisson := workload.Poisson(workload.PoissonConfig{
			CDF: workload.WebServer, Load: 0.8,
			Hosts: tp.Hosts, HostRate: 10 * units.Gbps,
			ExcludeDst: map[topoNodeID]bool{dst: true},
			Until:      dur,
			Categorize: workload.RackVictimCategorizer(tp, dst),
		}, r.Fork())
		res := Run(RunConfig{
			Topo: tp, Scheme: s,
			Specs:      workload.Merge(poisson, incast),
			Duration:   dur,
			Seed:       o.Seed,
			Opt:        Options{Scale: 1, Seed: o.Seed, Obs: o.Obs}, // testbed runs at its own full scale
			BufferSize: 2 * units.MB,                                // software-switch buffer
		})
		avg, p99 := stats.FCTStats(res.Stats.PoissonFCTs())
		vAvg, vP99 := stats.FCTStats(res.Stats.FCTs(stats.CatVictimIncast))
		return fig6Rows{
			fct: []string{s.Name, fmtDur(avg), fmtDur(p99), fmtDur(vAvg), fmtDur(vP99)},
			buf: []string{s.Name,
				fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRUp)),
				fmtBytes(res.Stats.MaxClassBuffer(topo.ClassCore)),
				fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRDown))},
		}
	})
	for _, r := range rows {
		fct.AddRow(r.fct...)
		buf.AddRow(r.buf...)
	}
	fct.Comment = "paper: avg FCT -30.6%, p99 1.6x lower; at simulated line rates the HOL term is below Poisson noise (see EXPERIMENTS.md)"
	buf.Comment = "paper: ToR-Down 17.2x and Core 1.8x smaller; ToR-Up slightly larger (source-side taming)"
	return []Table{fct, buf}
}
