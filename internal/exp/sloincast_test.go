package exp

import (
	"strings"
	"testing"

	"floodgate/internal/app"
	"floodgate/internal/sim"
	"floodgate/internal/units"
)

// TestSLOIncastShardDeterminism extends the bit-identity guarantee to
// the closed-loop application plane: the sloincast tables — deadline
// timers, jittered retries, hedges, and breaker decisions riding on
// the sharded engine — must render byte-identical for every
// combination of shards ∈ {1, 2, 4}, par ∈ {1, 4}, and both event
// schedulers. The baseline is the fully serial unsharded wheel run.
func TestSLOIncastShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	windowOverride = fullIncastMixDuration / 8
	defer func() { windowOverride = 0 }()

	base := Options{Scale: 0.1, Seed: 1, Parallelism: 1, Shards: 1, Scheduler: sim.SchedWheel}
	want := renderAll(SLOIncast(base))
	for _, shards := range []int{1, 2, 4} {
		for _, par := range []int{1, 4} {
			for _, sched := range []sim.Scheduler{sim.SchedWheel, sim.SchedHeap} {
				o := base
				o.Shards, o.Parallelism, o.Scheduler = shards, par, sched
				if o == base {
					continue
				}
				if got := renderAll(SLOIncast(o)); got != want {
					t.Fatalf("sloincast: shards=%d par=%d sched=%v diverges from serial unsharded:\n--- want ---\n%s\n--- got ---\n%s",
						shards, par, sched, want, got)
				}
			}
		}
	}
}

// TestSLOIncastDifferentiates is the experiment's acceptance gate at
// the scale the README quotes: under the PFC storm with a tight
// deadline, DCQCN must time out and retry (amplification above 1.00)
// while DCQCN+Floodgate resolves every request without a single
// deadline expiry. Runs the two tight fan-in-8 cells directly rather
// than the whole matrix.
func TestSLOIncastDifferentiates(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	o := Options{Scale: 0.25, Seed: 1, Parallelism: 1}.norm()
	mk := func(s Scheme) sloCell {
		return sloCell{"8", 8, "tight(1.5x)", 1.5, s,
			app.ExpBackoff{Base: o.stretch(25 * units.Microsecond)}}
	}
	dcqcn := sloRun(o, mk(DCQCN(o)))
	fg := sloRun(o, mk(WithFloodgate(o, DCQCN(o), baseBDPOf(o.leafSpine()))))

	if dcqcn.SLO.TimeoutRate == 0 {
		t.Fatal("DCQCN under the storm shows no deadline expiries; the cell is not stressed")
	}
	if dcqcn.SLO.Amplification <= 1.0 {
		t.Fatalf("DCQCN amplification = %.2f, want > 1 (retries into the storm)", dcqcn.SLO.Amplification)
	}
	if fg.SLO.TimeoutRate >= dcqcn.SLO.TimeoutRate {
		t.Fatalf("Floodgate timeout rate %.2f not below DCQCN %.2f",
			fg.SLO.TimeoutRate, dcqcn.SLO.TimeoutRate)
	}
	if fg.SLO.Completed != fg.SLO.Requests {
		t.Fatalf("Floodgate completed %d/%d requests", fg.SLO.Completed, fg.SLO.Requests)
	}
	retried := 0
	for _, r := range dcqcn.AppRecords {
		if r.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("no DCQCN request ever launched a retry attempt")
	}
}

// TestSLOIncastSmoke runs the full experiment at smoke scale and
// checks the tables parse: both tables render, every row has the full
// column set, and the scorecard columns are well-formed.
func TestSLOIncastSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	windowOverride = fullIncastMixDuration / 8
	defer func() { windowOverride = 0 }()
	tabs := SLOIncast(smokeOpts)
	if len(tabs) != 2 {
		t.Fatalf("got %d tables, want 2", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) == 0 {
			t.Fatalf("table %q has no rows", tab.Title)
		}
		for _, row := range tab.Rows {
			if len(row) != len(sloHeader) {
				t.Fatalf("table %q row has %d columns, want %d: %v", tab.Title, len(row), len(sloHeader), row)
			}
			if !strings.Contains(row[4], "/") {
				t.Fatalf("ok column %q is not completed/requests", row[4])
			}
			if !strings.HasSuffix(row[8], "%") || !strings.HasSuffix(row[9], "x") {
				t.Fatalf("timeout/amp columns malformed: %q %q", row[8], row[9])
			}
		}
	}
}
