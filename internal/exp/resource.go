package exp

import (
	"fmt"

	"floodgate/internal/cc/swift"
	"floodgate/internal/core"
	"floodgate/internal/stats"
	"floodgate/internal/workload"
)

// SWIFT returns the delay-based Swift congestion control (§2.3 cites
// it among the reactive protocols; included as an extension).
func SWIFT(o Options) Scheme {
	return Scheme{Name: "Swift", CC: swift.Default()}
}

// ResourceOverhead reproduces §7.4's resource accounting on a live
// run: the peak per-switch window-table size (stateful memory), peak
// VOQ usage, and the bandwidth shares of credit and control traffic.
func ResourceOverhead(o Options) []Table {
	o = o.norm()
	t := Table{
		Title:  "§7.4 resource overhead (WebServer incastmix, DCQCN+Floodgate)",
		Header: []string{"metric", "value", "paper"},
	}
	tp := o.leafSpine()
	s := WithFloodgate(o, DCQCN(o), baseBDPOf(tp))
	res := runMixWith(o, tp, workload.WebServer, s)

	maxWins := 0
	for _, n := range res.Cluster.Nets {
		for _, sw := range n.Switches {
			if sw == nil {
				continue
			}
			m, ok := sw.FC().(*core.Module)
			if !ok {
				continue
			}
			if m.MaxWindows() > maxWins {
				maxWins = m.MaxWindows()
			}
		}
	}
	data := float64(res.Stats.WireTotal(stats.WireData))
	ctrl := float64(res.Stats.WireTotal(stats.WireCtrl))
	credit := float64(res.Stats.WireTotal(stats.WireCredit))
	total := data + ctrl + credit

	t.AddRow("peak window entries / switch", fmt.Sprintf("%d", maxWins),
		fmt.Sprintf("<= hosts (%d); worst case scales with host count", tp.NumHosts()))
	t.AddRow("peak VOQs / switch", fmt.Sprintf("%d", res.Stats.MaxVOQInUse),
		"dozens suffice; mostly 1 (§6.1)")
	t.AddRow("credit bandwidth share", fmt.Sprintf("%.3f%%", 100*credit/total), "0.175% (practical)")
	t.AddRow("ctrl (ACK/CNP) bandwidth share", fmt.Sprintf("%.2f%%", 100*ctrl/total), "~4.5%")
	t.Comment = "window entries stay well below the host count because non-incast destinations settle quickly"
	return []Table{t}
}

// SwiftCompat runs Swift with and without Floodgate on the incast mix
// (extension beyond the paper's three carried protocols).
func SwiftCompat(o Options) []Table {
	o = o.norm()
	t := Table{
		Title:  "Extension: Swift ± Floodgate (WebServer incastmix)",
		Header: []string{"scheme", "poisson avg", "poisson p99", "maxSwitchBuf"},
	}
	t.Rows = runJobs(o, 2, func(idx int) []string {
		s := SWIFT(o)
		if idx == 1 {
			s = WithFloodgate(o, SWIFT(o), baseBDPOf(o.leafSpine()))
		}
		res := runMixWith(o, o.leafSpine(), workload.WebServer, s)
		avg, p99 := stats.FCTStats(res.Stats.PoissonFCTs())
		return []string{s.Name, fmtDur(avg), fmtDur(p99), fmtBytes(res.Stats.MaxSwitchBuffer())}
	})
	t.Comment = "the hop-by-hop layer composes with a fourth, delay-based CC unchanged"
	return []Table{t}
}
