package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"floodgate/internal/workload"
)

// TestRunFlowFileRoundTrip exports a generated workload with
// workload.WriteSpecs and replays it through RunFlowFile: the replay
// must complete every flow, and — the export/replay fidelity check —
// a second replay of the same file renders byte-identical tables.
func TestRunFlowFileRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	o := Options{Scale: 0.1, Seed: 1, Parallelism: 1}.norm()
	tp := o.leafSpine()
	specs := pureIncastSpecs(tp, o.Seed)
	path := filepath.Join(t.TempDir(), "flows.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteSpecs(f, specs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	tabs, err := RunFlowFile(path, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || len(tabs[0].Rows) != 2 {
		t.Fatalf("unexpected table shape: %+v", tabs)
	}
	for _, row := range tabs[0].Rows {
		parts := strings.Split(row[1], "/")
		if len(parts) != 2 || parts[0] != parts[1] {
			t.Fatalf("scheme %s: incomplete replay %s", row[0], row[1])
		}
	}

	again, err := RunFlowFile(path, o)
	if err != nil {
		t.Fatal(err)
	}
	if renderAll(tabs) != renderAll(again) {
		t.Fatal("replaying the same flow file rendered different tables")
	}
}

// TestRunFlowFileErrors: an empty file and a missing file are errors,
// not empty tables.
func TestRunFlowFileErrors(t *testing.T) {
	o := Options{Scale: 0.1, Seed: 1, Parallelism: 1}.norm()
	empty := filepath.Join(t.TempDir(), "empty.ndjson")
	if err := os.WriteFile(empty, []byte("# nothing here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFlowFile(empty, o); err == nil {
		t.Fatal("empty flow file accepted")
	}
	if _, err := RunFlowFile(filepath.Join(t.TempDir(), "missing.ndjson"), o); err == nil {
		t.Fatal("missing flow file accepted")
	}

	// Endpoints that aren't hosts (node 0 is a switch) must be a clean
	// error naming the offending spec, not a mid-run panic.
	badEP := filepath.Join(t.TempDir(), "badep.ndjson")
	line := `{"src":0,"dst":4,"size":64000,"start_ps":0,"cat":1}` + "\n"
	if err := os.WriteFile(badEP, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := RunFlowFile(badEP, o)
	if err == nil {
		t.Fatal("non-host endpoint accepted")
	}
	if !strings.Contains(err.Error(), "not a host") || !strings.Contains(err.Error(), "spec 1") {
		t.Fatalf("endpoint error not descriptive: %v", err)
	}
}
