package exp

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"floodgate/internal/metrics"
	"floodgate/internal/units"
)

// obsSmokeOpts keeps the observed runs fast: coarse sampling still
// produces hundreds of ticks over fig6's 20 ms window.
func obsSmokeOpts(dir string, par int) Options {
	return Options{
		Scale: 0.1, Seed: 1, Parallelism: par,
		Obs: ObsConfig{Dir: dir, Period: 100 * units.Microsecond},
	}
}

func readDataFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestObsSmoke runs one real experiment with observability enabled and
// validates the whole export surface: the per-run NDJSON/CSV/trace
// files exist and parse, and the manifest's table hash matches the
// tables the run actually returned.
func TestObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	dir := t.TempDir()
	tables, err := RunByID("fig6", obsSmokeOpts(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables")
	}

	expDir := filepath.Join(dir, "fig6")
	files := readDataFiles(t, expDir)
	var ndjson, csv, traces, manifests int
	for name := range files {
		switch {
		case strings.HasSuffix(name, ".metrics.ndjson"):
			ndjson++
		case strings.HasSuffix(name, ".metrics.csv"):
			csv++
		case strings.HasSuffix(name, ".trace.json"):
			traces++
		case name == "manifest.json":
			manifests++
		}
	}
	// fig6 runs two schemes (with/without Floodgate) → two file triples.
	if ndjson != 2 || csv != 2 || traces != 2 || manifests != 1 {
		t.Fatalf("file census ndjson=%d csv=%d trace=%d manifest=%d, want 2/2/2/1 (files: %v)",
			ndjson, csv, traces, manifests, fileNames(files))
	}

	m, err := metrics.ReadManifest(filepath.Join(expDir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Format != metrics.ManifestFormat || m.Experiment != "fig6" {
		t.Errorf("manifest identity: %+v", m)
	}
	if m.TableHash != TablesHash(tables) {
		t.Errorf("manifest table hash %q != rendered tables hash %q", m.TableHash, TablesHash(tables))
	}
	if len(m.Files) != 6 {
		t.Errorf("manifest lists %d files, want 6: %v", len(m.Files), m.Files)
	}
	for _, f := range m.Files {
		if _, ok := files[f]; !ok {
			t.Errorf("manifest lists missing file %q", f)
		}
	}
	if m.SamplePeriodPs != int64(100*units.Microsecond) {
		t.Errorf("manifest period = %d ps", m.SamplePeriodPs)
	}

	// Every NDJSON stream: header first, instruments > 0, ticks > 0,
	// every line valid JSON, engine self-metrics present and live.
	for name, data := range files {
		if !strings.HasSuffix(name, ".metrics.ndjson") {
			continue
		}
		sc := bufio.NewScanner(strings.NewReader(string(data)))
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var lines []map[string]any
		for sc.Scan() {
			var obj map[string]any
			if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
				t.Fatalf("%s: bad NDJSON line: %v", name, err)
			}
			lines = append(lines, obj)
		}
		if len(lines) < 3 || lines[0]["type"] != "header" {
			t.Fatalf("%s: malformed stream (%d lines)", name, len(lines))
		}
		if lines[0]["ticks"].(float64) == 0 {
			t.Errorf("%s: sampler never ticked", name)
		}
		var sawEngine, sawProgress bool
		for _, l := range lines[1:] {
			if l["type"] == "series" && l["name"] == "engine.events_processed" {
				sawEngine = true
				samples := l["samples"].([]any)
				if len(samples) > 0 && samples[len(samples)-1].(float64) > 0 {
					sawProgress = true
				}
			}
		}
		if !sawEngine || !sawProgress {
			t.Errorf("%s: engine self-metrics missing or flat", name)
		}
	}

	// Every Chrome trace parses and is non-empty.
	for name, data := range files {
		if !strings.HasSuffix(name, ".trace.json") {
			continue
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%s: invalid trace JSON: %v", name, err)
		}
		if len(doc.TraceEvents) == 0 {
			t.Errorf("%s: empty timeline", name)
		}
	}
}

func fileNames(m map[string][]byte) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestObsNoTableImpact pins the core guarantee: enabling observability
// must not change a single byte of experiment output.
func TestObsNoTableImpact(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	plain, err := RunByID("fig6", Options{Scale: 0.1, Seed: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := RunByID("fig6", obsSmokeOpts(t.TempDir(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if TablesHash(plain) != TablesHash(observed) {
		t.Fatalf("tables differ with observability on:\n--- off ---\n%s\n--- on ---\n%s",
			renderAll(plain), renderAll(observed))
	}
}

// TestObsParallelDeterminism: all observability output must be
// byte-identical at -par 1 and -par N; the manifest may differ only in
// its recorded parallelism.
func TestObsParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	dirSerial, dirPar := t.TempDir(), t.TempDir()
	tSerial, err := RunByID("fig6", obsSmokeOpts(dirSerial, 1))
	if err != nil {
		t.Fatal(err)
	}
	tPar, err := RunByID("fig6", obsSmokeOpts(dirPar, 4))
	if err != nil {
		t.Fatal(err)
	}
	if TablesHash(tSerial) != TablesHash(tPar) {
		t.Fatal("tables differ across parallelism")
	}

	serial := readDataFiles(t, filepath.Join(dirSerial, "fig6"))
	par := readDataFiles(t, filepath.Join(dirPar, "fig6"))
	if len(serial) != len(par) {
		t.Fatalf("file sets differ: %v vs %v", fileNames(serial), fileNames(par))
	}
	for name, want := range serial {
		got, ok := par[name]
		if !ok {
			t.Errorf("parallel run missing %q", name)
			continue
		}
		if name == "manifest.json" {
			var a, b metrics.Manifest
			if err := json.Unmarshal(want, &a); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(got, &b); err != nil {
				t.Fatal(err)
			}
			if a.Parallelism != 1 || b.Parallelism != 4 {
				t.Errorf("manifest parallelism = %d/%d, want 1/4", a.Parallelism, b.Parallelism)
			}
			b.Parallelism = a.Parallelism // the single field allowed to vary
			aj, _ := json.Marshal(a)
			bj, _ := json.Marshal(b)
			if string(aj) != string(bj) {
				t.Errorf("manifests differ beyond parallelism:\n%s\n%s", aj, bj)
			}
			continue
		}
		if string(want) != string(got) {
			t.Errorf("%q differs between -par 1 and -par 4 (%d vs %d bytes)", name, len(want), len(got))
		}
	}
}

// TestObsLabelDeterminism: the run-file label is a pure function of the
// run's content — no counters, no completion-order dependence.
func TestObsLabelDeterminism(t *testing.T) {
	rc := RunConfig{Seed: 7, Duration: units.Duration(5 * units.Millisecond)}
	rc.Scheme.Name = "DCQCN+Floodgate"
	a, b := obsLabel(rc), obsLabel(rc)
	if a != b {
		t.Fatalf("label not deterministic: %q vs %q", a, b)
	}
	if !strings.HasPrefix(a, "dcqcn-floodgate-") {
		t.Errorf("label slug = %q", a)
	}
	rc2 := rc
	rc2.Seed = 8
	if obsLabel(rc2) == a {
		t.Error("different seeds collide")
	}
}
