package exp

import (
	"fmt"

	"floodgate/internal/device"
	"floodgate/internal/stats"
	"floodgate/internal/topo"
	"floodgate/internal/units"
	"floodgate/internal/workload"
)

// Fig16 reproduces the CC-convergence experiment (§6.4): long-lived
// flows to a single receiver arrive periodically (far apart relative
// to convergence time), under two ECN-marking settings. Reported: the
// per-hop buffer occupancy as the flow count grows — DCQCN's ToR-Down
// keeps climbing with the flow count while Floodgate converges.
func Fig16(o Options) []Table {
	o = o.norm()
	settings := []struct {
		name       string
		kmin, kmax units.ByteSize
	}{
		{"Kmin=40KB Kmax=160KB", 40 * units.KB, 160 * units.KB},
		{"Kmin=40KB Kmax=40KB", 40 * units.KB, 41 * units.KB},
	}
	const flows = 240
	// The paper's inflection sits at max{BW_host/Rate_min, Kmax/MTU}
	// (§6.4): past it, per-flow rate floors overload the receiver link
	// and the buffer grows with every additional flow. Bind Rate_min so
	// the inflection falls inside the swept range (~100 flows), as in
	// the paper's plot.
	dcqcnFloor := func(o Options) Scheme {
		s := DCQCN(o)
		cfg := dcqcnConfigScaled(o)
		cfg.MinRateFraction = 100
		s.CC = dcqcnNew(cfg)
		return s
	}
	mks := []func(tp *topo.Topology) Scheme{
		func(tp *topo.Topology) Scheme { return dcqcnFloor(o) },
		func(tp *topo.Topology) Scheme { return WithIdeal(o, dcqcnFloor(o), baseBDPOf(tp)) },
		func(tp *topo.Topology) Scheme { return WithFloodgate(o, dcqcnFloor(o), baseBDPOf(tp)) },
	}
	// Submit every (ECN setting × scheme) run to the pool; rows are
	// assembled in submission order below, so the tables match the
	// serial path byte for byte.
	rows := runJobs(o, len(settings)*len(mks), func(idx int) []string {
		set := settings[idx/len(mks)]
		mkScheme := mks[idx%len(mks)]
		tp := o.leafSpine()
		s := mkScheme(tp)
		dst := tp.Hosts[len(tp.Hosts)-1]
		senders := workload.CrossRackSenders(tp, dst)
		// Long-lived flows: sized far beyond the window so every
		// arrived flow stays active to the end (the paper's x-axis is
		// the number of concurrently active flows).
		interval := o.stretch(200 * units.Microsecond)
		dur := units.Duration(flows+4) * interval
		var specs []workload.FlowSpec
		for i := 0; i < flows; i++ {
			specs = append(specs, workload.FlowSpec{
				Src: senders[i%len(senders)], Dst: dst,
				Size:  1 << 40, // never finishes within the window
				Start: units.Time(int64(i) * int64(interval)),
				Cat:   stats.CatIncast,
			})
		}
		ecn := device.ECNConfig{Enable: s.ECN, KMin: set.kmin, KMax: set.kmax, PMax: 0.2}
		res := Run(RunConfig{
			Topo: tp, Scheme: s, Specs: specs,
			Duration: dur, Drain: units.Nanosecond, Seed: o.Seed, Opt: o,
			ECN: &ecn, BinWidth: interval,
		})
		series := res.Stats.BufSeries(topo.ClassToRDown)
		q := func(frac float64) string {
			idx := int(frac * float64(flows))
			if idx >= len(series) {
				idx = len(series) - 1
			}
			if idx < 0 {
				return "n/a"
			}
			return fmtBytes(series[idx])
		}
		return []string{s.Name, q(0.25), q(0.5), q(0.75), q(1),
			fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRDown))}
	})
	var tables []Table
	for si, set := range settings {
		t := Table{
			Title:  "Fig 16: buffer vs #arrived flows, ECN " + set.name,
			Header: []string{"scheme", "after 1/4", "after 1/2", "after 3/4", "end", "ToR-Down max"},
		}
		for mi := range mks {
			t.AddRow(rows[si*len(mks)+mi]...)
		}
		t.Comment = "paper: DCQCN's ToR-Down buffer keeps growing with flow count (≥1 in-flight packet per flow); Floodgate converges to window x topology; ideal is ECN-insensitive"
		tables = append(tables, t)
	}
	return tables
}

// Fig17 reproduces the parameter-selection sweeps: credit timer T
// (overhead, buffer, FCT) and the delayCredit threshold (buffer).
// Both sweeps' runs overlap through one pool submission.
func Fig17(o Options) []Table {
	o = o.norm()
	timers := []int{10, 20, 30, 40, 50}
	mults := []int{1, 10, 25, 50, 75, 100}
	rows := runJobs(o, len(timers)+len(mults), func(idx int) []string {
		if idx < len(timers) {
			tUs := timers[idx]
			tp := o.leafSpine()
			cfg := FloodgateConfig(o, baseBDPOf(tp))
			cfg.CreditTimer = units.Duration(tUs) * units.Microsecond
			s := WithFloodgateCfg(DCQCN(o), cfg, "+Floodgate")
			res := runMixWith(o, tp, workload.WebServer, s)
			avg, p99 := stats.FCTStats(res.Stats.PoissonFCTs())
			return []string{fmt.Sprintf("%dus", tUs),
				fmtRate(res.Stats.AvgWireRate(stats.WireCredit, res.Duration)),
				fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRUp)),
				fmtBytes(res.Stats.MaxClassBuffer(topo.ClassCore)),
				fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRDown)),
				fmtDur(avg), fmtDur(p99)}
		}
		mult := mults[idx-len(timers)]
		tp := o.leafSpine()
		bdp := baseBDPOf(tp)
		cfg := FloodgateConfig(o, bdp)
		cfg.DelayCreditThresh = units.ByteSize(mult) * bdp
		s := WithFloodgateCfg(DCQCN(o), cfg, "+Floodgate")
		res := runMixWith(o, tp, workload.WebServer, s)
		return []string{fmt.Sprintf("%dBDP", mult),
			fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRUp)),
			fmtBytes(res.Stats.MaxClassBuffer(topo.ClassCore)),
			fmtBytes(res.Stats.MaxClassBuffer(topo.ClassToRDown))}
	})
	tt := Table{
		Title:  "Fig 17a-c: credit timer T sweep (DCQCN+Floodgate, WebServer incastmix)",
		Header: []string{"T", "creditRate", "ToR-Up", "Core", "ToR-Down", "avgFCT", "p99FCT"},
		Rows:   rows[:len(timers)],
	}
	tt.Comment = "paper: larger T -> fewer credit bytes, smaller ToR-Up buffer but larger Core/ToR-Down and worse FCT; T=10us chosen"
	td := Table{
		Title:  "Fig 17d: delayCredit threshold sweep (x base BDP)",
		Header: []string{"thre_credit", "ToR-Up", "Core", "ToR-Down"},
		Rows:   rows[len(timers):],
	}
	td.Comment = "paper: core buffer lowest for 1-38 BDP and robust across the range; 10 BDP chosen"
	return []Table{tt, td}
}

func runMixWith(o Options, tp *topo.Topology, cdf *workload.CDF, s Scheme) *RunResult {
	dur := o.duration(fullIncastMixDuration)
	specs := incastMixSpecs(tp, cdf, dur, o.Seed, incastDegree(tp))
	return Run(RunConfig{Topo: tp, Scheme: s, Specs: specs, Duration: dur, Seed: o.Seed, Opt: o})
}

// Fig18 reproduces the bandwidth stacking diagram: on-wire bytes split
// into data / ctrl (ACK+CNP) / credit classes for ideal vs practical
// Floodgate.
func Fig18(o Options) []Table {
	o = o.norm()
	t := Table{
		Title:  "Fig 18: wire bandwidth by class (WebServer incastmix)",
		Header: []string{"scheme", "data", "ctrl", "credit", "credit share"},
	}
	mks := []func(tp *topo.Topology) Scheme{
		func(tp *topo.Topology) Scheme {
			cfg := IdealFloodgateConfig(o, baseBDPOf(tp))
			cfg.PerDstPause = false
			return WithFloodgateCfg(DCQCN(o), cfg, "+ideal")
		},
		func(tp *topo.Topology) Scheme { return WithFloodgate(o, DCQCN(o), baseBDPOf(tp)) },
	}
	t.Rows = runJobs(o, len(mks), func(idx int) []string {
		tp := o.leafSpine()
		s := mks[idx](tp)
		res := runMixWith(o, tp, workload.WebServer, s)
		data := res.Stats.WireTotal(stats.WireData)
		ctrl := res.Stats.WireTotal(stats.WireCtrl)
		credit := res.Stats.WireTotal(stats.WireCredit)
		total := data + ctrl + credit
		return []string{s.Name,
			fmtRate(units.Rate(data, res.Duration)),
			fmtRate(units.Rate(ctrl, res.Duration)),
			fmtRate(units.Rate(credit, res.Duration)),
			fmt.Sprintf("%.3f%%", 100*float64(credit)/float64(total))}
	})
	t.Comment = "paper: credits are 0.175% of bandwidth for Floodgate vs 3.0% for ideal; ctrl (ACK/CNP) ~4.5% for both"
	return []Table{t}
}

// Fig20 reproduces the BFC comparison: HPCC, HPCC+Floodgate and three
// BFC variants under Memcached and Web Server incast-mix.
func Fig20(o Options) []Table {
	o = o.norm()
	cdfs := []*workload.CDF{workload.Memcached, workload.WebServer}
	mks := []func(tp *topo.Topology) Scheme{
		func(tp *topo.Topology) Scheme { return HPCC(o) },
		func(tp *topo.Topology) Scheme { return WithFloodgate(o, HPCC(o), baseBDPOf(tp)) },
		func(tp *topo.Topology) Scheme { return BFC(32, false, bfcThresh(tp)) },
		func(tp *topo.Topology) Scheme { return BFC(128, false, bfcThresh(tp)) },
		func(tp *topo.Topology) Scheme { return BFC(0, true, bfcThresh(tp)) },
	}
	rows := runJobs(o, len(cdfs)*len(mks), func(idx int) []string {
		cdf := cdfs[idx/len(mks)]
		tp := o.leafSpine()
		s := mks[idx%len(mks)](tp)
		res := runMixWith(o, tp, cdf, s)
		samples := res.Stats.PoissonFCTs()
		xs, ys := stats.CDF(samples, 200)
		avg, _ := stats.FCTStats(samples)
		return []string{s.Name, pickQ(xs, ys, 0.5), pickQ(xs, ys, 0.9), pickQ(xs, ys, 0.99), fmtDur(avg)}
	})
	var tables []Table
	for ci, cdf := range cdfs {
		t := Table{
			Title:  "Fig 20: vs BFC, " + cdf.Name + " incastmix — Poisson flow FCT",
			Header: []string{"scheme", "p50", "p90", "p99", "avg"},
			Rows:   rows[ci*len(mks) : (ci+1)*len(mks)],
		}
		t.Comment = "paper: BFC-32Q/128Q suffer HOL via shared queues; BFC-ideal beats Floodgate on Memcached (INT overhead), loses on WebServer"
		tables = append(tables, t)
	}
	return tables
}

// bfcThresh is BFC's per-queue pause threshold: one hop's BDP.
func bfcThresh(tp *topo.Topology) units.ByteSize {
	p := &tp.Node(tp.Hosts[0]).Ports[0]
	return p.BDP()
}

// Fig23 reproduces the NDP comparison (Appendix B): non-incast and
// incast FCT under Memcached and WebServer incast-mix.
func Fig23(o Options) []Table {
	o = o.norm()
	cdfs := []*workload.CDF{workload.Memcached, workload.WebServer}
	mks := []func(tp *topo.Topology) Scheme{
		func(tp *topo.Topology) Scheme { return DCQCN(o) },
		func(tp *topo.Topology) Scheme { return WithFloodgate(o, DCQCN(o), baseBDPOf(tp)) },
		func(tp *topo.Topology) Scheme { return NDP(o) },
	}
	rows := runJobs(o, len(cdfs)*len(mks), func(idx int) []string {
		cdf := cdfs[idx/len(mks)]
		tp := o.leafSpine()
		s := mks[idx%len(mks)](tp)
		res := runMixWith(o, tp, cdf, s)
		avgN, p99N := stats.FCTStats(res.Stats.PoissonFCTs())
		avgI, p99I := stats.FCTStats(res.Stats.FCTs(stats.CatIncast))
		return []string{s.Name, fmtDur(avgN), fmtDur(p99N), fmtDur(avgI), fmtDur(p99I),
			fmt.Sprintf("%d", res.Stats.Trims)}
	})
	var tables []Table
	for ci, cdf := range cdfs {
		t := Table{
			Title:  "Fig 23: vs NDP, " + cdf.Name + " incastmix",
			Header: []string{"scheme", "non-incast avg", "non-incast p99", "incast avg", "incast p99", "trims"},
			Rows:   rows[ci*len(mks) : (ci+1)*len(mks)],
		}
		t.Comment = "paper: NDP beats DCQCN (small buffers) but loses to DCQCN+Floodgate — trimming hits non-incast flows and header bandwidth inflates incast FCT"
		tables = append(tables, t)
	}
	return tables
}

// Fig24 reproduces the PFC w/ tag comparison (Appendix B) on the
// non-blocking and the 4:1 oversubscribed fabric.
func Fig24(o Options) []Table {
	o = o.norm()
	oversubs := []int{1, 4}
	kinds := []string{"DCQCN", "DCQCN+Floodgate", "DCQCN+PFC w/ tag"}
	rows := runJobs(o, len(oversubs)*len(kinds), func(idx int) []string {
		oversub := oversubs[idx/len(kinds)]
		kind := kinds[idx%len(kinds)]
		c := topo.DefaultLeafSpine()
		c.HostsPerToR = o.hostsPerToR()
		c.Spines = o.spines()
		c.HostRate = o.rate(c.HostRate)
		c.SpineRate = o.rate(c.SpineRate)
		c.Prop = o.stretch(c.Prop)
		c.Oversubscription = oversub
		tp := c.Build()
		var s Scheme
		switch kind {
		case "DCQCN":
			s = DCQCN(o)
		case "DCQCN+Floodgate":
			s = WithFloodgate(o, DCQCN(o), baseBDPOf(tp))
		default:
			oneHop := tp.Node(tp.Hosts[0]).Ports[0].BDP()
			s = WithPFCTag(DCQCN(o), oneHop)
		}
		res := runMixWith(o, tp, workload.WebServer, s)
		avg, p99 := stats.FCTStats(res.Stats.PoissonFCTs())
		return []string{s.Name, fmtDur(avg), fmtDur(p99), fmt.Sprintf("%d", res.Stats.MaxVOQInUse)}
	})
	var tables []Table
	for oi, oversub := range oversubs {
		name := "non-blocking"
		if oversub > 1 {
			name = fmt.Sprintf("%d:1 oversubscribed", oversub)
		}
		t := Table{
			Title:  "Fig 24: vs PFC w/ tag — " + name,
			Header: []string{"scheme", "avgFCT", "p99FCT", "maxVOQs"},
			Rows:   rows[oi*len(kinds) : (oi+1)*len(kinds)],
		}
		t.Comment = "paper: comparable on non-blocking fabric but PFC w/ tag uses 10x more VOQs; Floodgate wins when the first hop congests (oversubscription)"
		tables = append(tables, t)
	}
	return tables
}
