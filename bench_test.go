package floodgate

import (
	"testing"
)

// benchScale keeps a full `go test -bench=.` pass tractable while the
// slow-motion model (DESIGN.md) preserves every result's shape. Run
// `cmd/floodsim -exp <id> -scale 1` for paper-scale numbers.
const benchScale = 0.15

// benchExperiment reruns one registered paper figure/table per
// iteration and reports throughput-style metrics: rows produced and
// simulated events.
func benchExperiment(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := RunExperiment(id, Options{Scale: benchScale, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
		rows := 0
		for _, t := range tables {
			rows += len(t.Rows)
		}
		b.ReportMetric(float64(rows), "rows")
		if i == 0 && testing.Verbose() {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

// One benchmark per evaluation artifact, in paper order.

func BenchmarkFig2Throughput(b *testing.B)        { benchExperiment(b, "fig2") }
func BenchmarkFig6Testbed(b *testing.B)           { benchExperiment(b, "fig6") }
func BenchmarkFig7WorkloadCDF(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8FCTDCQCN(b *testing.B)          { benchExperiment(b, "fig8-dcqcn") }
func BenchmarkFig8FCTTIMELY(b *testing.B)         { benchExperiment(b, "fig8-timely") }
func BenchmarkFig8FCTHPCC(b *testing.B)           { benchExperiment(b, "fig8-hpcc") }
func BenchmarkFig9VictimCDF(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10Buffer(b *testing.B)           { benchExperiment(b, "fig10") }
func BenchmarkTable2PFCTime(b *testing.B)         { benchExperiment(b, "table2") }
func BenchmarkFig11Reallocation(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12Loss(b *testing.B)             { benchExperiment(b, "fig12") }
func BenchmarkFig13FatTree(b *testing.B)          { benchExperiment(b, "fig13") }
func BenchmarkFig14ToRScaling(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkFig15SuccessiveIncast(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16ECNConvergence(b *testing.B)   { benchExperiment(b, "fig16") }
func BenchmarkFig17Params(b *testing.B)           { benchExperiment(b, "fig17") }
func BenchmarkFig18Overhead(b *testing.B)         { benchExperiment(b, "fig18") }
func BenchmarkFig20BFC(b *testing.B)              { benchExperiment(b, "fig20") }
func BenchmarkFig21IncastFCT(b *testing.B)        { benchExperiment(b, "fig21") }
func BenchmarkFig22PurePoisson(b *testing.B)      { benchExperiment(b, "fig22") }
func BenchmarkFig23NDP(b *testing.B)              { benchExperiment(b, "fig23") }
func BenchmarkFig24PFCTag(b *testing.B)           { benchExperiment(b, "fig24") }

// Ablations and extensions beyond the paper's figures (DESIGN.md §5).

func BenchmarkAblationDesignChoices(b *testing.B) { benchExperiment(b, "ablation") }
func BenchmarkCompatMatrix(b *testing.B)          { benchExperiment(b, "compat") }
func BenchmarkIncastDegreeSweep(b *testing.B)     { benchExperiment(b, "degree") }
func BenchmarkResourceOverhead(b *testing.B)      { benchExperiment(b, "resource") }
func BenchmarkSwiftCompat(b *testing.B)           { benchExperiment(b, "swift") }

// BenchmarkSimulatorCore measures the raw simulator: a single
// saturated incast run, reporting simulated events per second.
func BenchmarkSimulatorCore(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := Options{Scale: 0.25, Seed: 1}
		c := DefaultLeafSpine()
		c.HostsPerToR = 8
		c.Spines = 2
		c.HostRate = 25 * Gbps
		c.SpineRate = 100 * Gbps
		c.Prop = 2400 * Nanosecond
		tp := c.Build()
		dst := tp.Hosts[len(tp.Hosts)-1]
		var specs []FlowSpec
		for _, src := range CrossRackSenders(tp, dst) {
			specs = append(specs, FlowSpec{Src: src, Dst: dst, Size: 200 * KB, Cat: CatIncast})
		}
		res := Run(RunConfig{
			Topo: tp, Scheme: WithFloodgate(o, DCQCN(o), 64*KB),
			Specs: specs, Duration: 2 * Millisecond, Drain: 100 * Millisecond,
			Seed: 1, Opt: o,
		})
		if res.Completed != res.Total {
			b.Fatalf("flows incomplete: %d/%d", res.Completed, res.Total)
		}
		b.ReportMetric(float64(res.Net.Eng.Processed)/b.Elapsed().Seconds(), "events/s")
	}
}
