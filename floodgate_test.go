package floodgate_test

import (
	"strings"
	"testing"

	"floodgate"
)

func TestExperimentCatalogue(t *testing.T) {
	exps := floodgate.Experiments()
	if len(exps) < 20 {
		t.Fatalf("expected every paper figure/table registered, got %d", len(exps))
	}
	want := []string{"fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "table2",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"fig20", "fig21", "fig22", "fig23", "fig24"}
	have := map[string]bool{}
	for _, e := range exps {
		have[e.ID] = true
		if e.Title == "" {
			t.Fatalf("experiment %s missing title", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %s not registered", id)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := floodgate.RunExperiment("nope", floodgate.Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentFig7(t *testing.T) {
	tables, err := floodgate.RunExperiment("fig7", floodgate.Options{Scale: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || !strings.Contains(tables[0].String(), "Memcached") {
		t.Fatalf("fig7 output unexpected: %v", tables)
	}
}

func TestPublicScenarioAPI(t *testing.T) {
	o := floodgate.Options{Scale: 0.2, Seed: 9}
	c := floodgate.DefaultLeafSpine()
	c.ToRs = 3
	c.HostsPerToR = 6
	c.Spines = 2
	c.HostRate = 20 * floodgate.Gbps
	c.SpineRate = 80 * floodgate.Gbps
	c.Prop = 3 * 1000 * floodgate.Nanosecond
	tp := c.Build()

	dst := tp.Hosts[len(tp.Hosts)-1]
	var specs []floodgate.FlowSpec
	for _, src := range floodgate.CrossRackSenders(tp, dst) {
		specs = append(specs, floodgate.FlowSpec{
			Src: src, Dst: dst, Size: 52 * floodgate.KB, Cat: floodgate.CatIncast,
		})
	}
	res := floodgate.Run(floodgate.RunConfig{
		Topo:     tp,
		Scheme:   floodgate.WithFloodgate(o, floodgate.DCQCN(o), 64*floodgate.KB),
		Specs:    specs,
		Duration: 2 * floodgate.Millisecond,
		Seed:     9,
		Opt:      o,
	})
	if res.Completed != res.Total {
		t.Fatalf("flows incomplete: %d/%d", res.Completed, res.Total)
	}
	avg, p99 := floodgate.FCTStats(res.Stats.FCTs(floodgate.CatIncast))
	if avg <= 0 || p99 < avg {
		t.Fatalf("FCT stats wrong: avg=%v p99=%v", avg, p99)
	}
	if res.Stats.MaxClassBuffer(floodgate.ClassToRUp) == 0 {
		t.Fatal("incast should park bytes at source ToRs under Floodgate")
	}
}

func TestPublicWorkloads(t *testing.T) {
	if len(floodgate.Workloads) != 4 {
		t.Fatalf("workloads = %d", len(floodgate.Workloads))
	}
	r := floodgate.NewRand(1)
	for _, c := range floodgate.Workloads {
		if c.Sample(r) <= 0 {
			t.Fatalf("%s produced a non-positive size", c.Name)
		}
	}
	specs := floodgate.Poisson(floodgate.PoissonConfig{
		CDF:  floodgate.Memcached,
		Load: 0.5, Hosts: []floodgate.NodeID{1, 2, 3, 4},
		HostRate: floodgate.Gbps, Until: floodgate.Millisecond,
	}, r)
	if len(specs) == 0 {
		t.Fatal("no Poisson arrivals")
	}
}

func TestPublicFloodgateConfig(t *testing.T) {
	cfg := floodgate.DefaultFloodgateConfig(64 * floodgate.KB)
	if cfg.Mode != floodgate.Practical || cfg.MaxVOQs != 100 {
		t.Fatalf("default config unexpected: %+v", cfg)
	}
	ideal := floodgate.IdealFloodgateConfig(64 * floodgate.KB)
	if ideal.Mode != floodgate.Ideal || !ideal.PerDstPause {
		t.Fatalf("ideal config unexpected: %+v", ideal)
	}
}

func TestRawNetworkAPI(t *testing.T) {
	tp := floodgate.TestbedConfig{
		ToRs: 2, HostsPerToR: 2,
		HostRate: 10 * floodgate.Gbps, CoreRate: 20 * floodgate.Gbps,
		Prop: 4500 * floodgate.Nanosecond,
	}.Build()
	eng := floodgate.NewEngine()
	n := floodgate.NewNetwork(floodgate.NetworkConfig{
		Topo:   tp,
		Engine: eng,
		FC:     floodgate.NewFloodgate(floodgate.DefaultFloodgateConfig(45 * floodgate.KB)),
	})
	f := n.AddFlow(tp.Hosts[0], tp.Hosts[3], 90*floodgate.KB, 0, floodgate.CatIncast)
	n.Run(floodgate.Time(50 * floodgate.Millisecond))
	if !f.Done() {
		t.Fatal("raw API flow incomplete")
	}
}
