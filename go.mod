module floodgate

go 1.22
